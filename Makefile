# Convenience targets for the SQL/XNF reproduction.
#
#   make build      - compile everything (libraries, shell, bench, tests)
#   make test       - run the test suites (tier-1 gate)
#   make check      - run ci.sh: every CI stage in order
#   make ci-<stage> - run one CI stage (build, test, lint, fuzz, crash,
#                     converge, bench), e.g. `make ci-converge`
#   make ci-nightly - ci.sh with 5000-iteration fuzz + 600-op crash budgets,
#                     the full bench suite, and E12/E13 at 10x scale
#   make fuzz       - differential fuzzing + crash-point oracle + mutation/defect smoke
#   make bench      - run the full benchmark suite
#   make clean      - remove build artifacts

.PHONY: build test check ci-nightly fuzz bench clean \
	ci-build ci-test ci-lint ci-fuzz ci-crash ci-converge ci-bench

build:
	dune build @all

test:
	dune runtest

# the CI entry point is the single source of truth; `make check` == CI
check:
	./ci.sh

# one stage each, same source of truth
ci-build ci-test ci-lint ci-fuzz ci-crash ci-converge ci-bench: ci-%:
	./ci.sh $*

ci-nightly:
	FUZZ_ITERS=5000 CRASH_ITERS=600 ./ci.sh
	dune exec bench/main.exe
	E12_SCALE=10 dune exec bench/main.exe -- --only E12
	E13_SCALE=10 dune exec bench/main.exe -- --only E13

fuzz: build
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters $${FUZZ_ITERS:-500} --quiet
	dune exec bin/xnf_fuzz.exe -- --replay-dir examples/fuzz-corpus
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-conn --no-shrink --quiet
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-tuple --no-shrink --quiet
	dune exec bin/xnf_fuzz.exe -- --crash --seed 42 --iters $${CRASH_ITERS:-120} --quiet
	dune exec bin/xnf_fuzz.exe -- --crash-defect all --seed 5 --iters 60 --quiet

bench:
	dune exec bench/main.exe

clean:
	dune clean
