# Convenience targets for the SQL/XNF reproduction.
#
#   make build   - compile everything (libraries, shell, bench, tests)
#   make test    - run the test suites (tier-1 gate)
#   make check   - build + test (validators on) + lint corpus + bench smoke (what CI runs)
#   make bench   - run the full benchmark suite
#   make clean   - remove build artifacts

.PHONY: build test check bench clean

build:
	dune build @all

test:
	dune runtest

check: build test
	XNF_CHECK=1 dune runtest --force
	dune exec bin/xnf_shell.exe -- --demo --lint examples/corpus.xnf
	dune exec bench/main.exe -- --list

bench:
	dune exec bench/main.exe

clean:
	dune clean
