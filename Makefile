# Convenience targets for the SQL/XNF reproduction.
#
#   make build   - compile everything (libraries, shell, bench, tests)
#   make test    - run the test suites (tier-1 gate)
#   make check   - build + test + bench smoke (what CI runs)
#   make bench   - run the full benchmark suite
#   make clean   - remove build artifacts

.PHONY: build test check bench clean

build:
	dune build @all

test:
	dune runtest

check: build test
	dune exec bench/main.exe -- --list

bench:
	dune exec bench/main.exe

clean:
	dune clean
