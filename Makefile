# Convenience targets for the SQL/XNF reproduction.
#
#   make build      - compile everything (libraries, shell, bench, tests)
#   make test       - run the test suites (tier-1 gate)
#   make check      - run ci.sh: build, tests (twice), lint, fuzz, bench gate
#   make ci-nightly - ci.sh with a 5000-iteration fuzz budget + the full bench suite
#   make fuzz       - differential fuzzing: seeded run + corpus replay + mutation smoke
#   make bench      - run the full benchmark suite
#   make clean      - remove build artifacts

.PHONY: build test check ci-nightly fuzz bench clean

build:
	dune build @all

test:
	dune runtest

# the CI entry point is the single source of truth; `make check` == CI
check:
	./ci.sh

ci-nightly:
	FUZZ_ITERS=5000 ./ci.sh
	dune exec bench/main.exe
	E12_SCALE=10 dune exec bench/main.exe -- --only E12

fuzz: build
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters $${FUZZ_ITERS:-500} --quiet
	dune exec bin/xnf_fuzz.exe -- --replay-dir examples/fuzz-corpus
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-conn --no-shrink --quiet
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-tuple --no-shrink --quiet

bench:
	dune exec bench/main.exe

clean:
	dune clean
