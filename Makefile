# Convenience targets for the SQL/XNF reproduction.
#
#   make build   - compile everything (libraries, shell, bench, tests)
#   make test    - run the test suites (tier-1 gate)
#   make check   - build + test (validators on) + lint corpus + bench smoke (what CI runs)
#   make fuzz    - differential fuzzing: seeded run + corpus replay + mutation smoke
#   make bench   - run the full benchmark suite
#   make clean   - remove build artifacts

.PHONY: build test check fuzz bench clean

build:
	dune build @all

test:
	dune runtest

check: build test
	XNF_CHECK=1 dune runtest --force
	dune exec bin/xnf_shell.exe -- --demo --lint examples/corpus.xnf
	dune exec bench/main.exe -- --list

fuzz: build
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters $${FUZZ_ITERS:-500} --quiet
	dune exec bin/xnf_fuzz.exe -- --replay-dir examples/fuzz-corpus
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-conn --no-shrink --quiet
	dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-tuple --no-shrink --quiet

bench:
	dune exec bench/main.exe

clean:
	dune clean
