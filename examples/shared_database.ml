(* The shared-database architecture of Fig. 7, live:

     dune exec examples/shared_database.exe

   One relational database; a traditional SQL application and an XNF
   composite-object application working on it side by side. Shows: both see
   each other's changes, materialized COs refresh when the SQL side writes,
   and optimistic validation catches a write/write conflict so the CO
   application refetches instead of clobbering. *)

open Relational

let () =
  (* the shared database *)
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'toys', 'NY', 1000), (2, 'tools', 'SF', 2000)";
      "INSERT INTO emp VALUES (10, 'alice', 1500, 1), (11, 'bob', 900, 1), (12, 'carol', 2500, 2)" ];

  (* the XNF application *)
  let api = Xnf.Api.create db in
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW ORG AS OUT OF Xdept AS DEPT, Xemp AS EMP, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *");
  let mat = Xnf.Materialized.create db (Xnf.Api.registry api) in
  Xnf.Materialized.define_string mat ~name:"org" "OUT OF ORG TAKE *";

  Fmt.pr "== both applications read the same data ==@.";
  let cache = Xnf.Materialized.get mat "org" in
  Fmt.pr "XNF application sees %d employees@."
    (Xnf.Cache.live_count (Xnf.Cache.node cache "xemp"));
  Fmt.pr "SQL application sees  %s employees@."
    (Value.to_string (List.hd (Db.rows_of db "SELECT COUNT(*) FROM emp")).(0));

  Fmt.pr "@.== the SQL application hires someone; the materialized CO notices ==@.";
  ignore (Db.exec db "INSERT INTO emp VALUES (13, 'dave', 800, 2)");
  let cache = Xnf.Materialized.get mat "org" in
  Fmt.pr "XNF application now sees %d employees (reloads: %d)@."
    (Xnf.Cache.live_count (Xnf.Cache.node cache "xemp"))
    (fst (Xnf.Materialized.stats mat "org"));

  Fmt.pr "@.== the XNF application raises alice; SQL sees it at once ==@.";
  let ses = Xnf.Api.session api cache in
  let ni = Xnf.Cache.node cache "xemp" in
  let alice =
    List.find
      (fun t -> Value.equal (Xnf.Cache.col t 1) (Value.Str "alice"))
      (Xnf.Cache.live_tuples ni)
  in
  Xnf.Udi.update ses ~node:"xemp" ~pos:alice.Xnf.Cache.t_pos [ ("sal", Value.Int 1600) ];
  Fmt.pr "SQL application reads alice's salary: %s@."
    (Value.to_string (List.hd (Db.rows_of db "SELECT sal FROM emp WHERE eno = 10")).(0));

  Fmt.pr "@.== a write/write conflict is caught, not clobbered ==@.";
  let stale_cache = Xnf.Api.fetch_string api "OUT OF ORG TAKE *" in
  let stale_ses = Xnf.Api.session api stale_cache in
  (* meanwhile the SQL application gives bob a raise *)
  ignore (Db.exec db "UPDATE emp SET sal = 950 WHERE eno = 11");
  (try
     Xnf.Udi.update stale_ses ~node:"xemp" ~pos:0 [ ("sal", Value.Int 1) ];
     Fmt.pr "!! conflict missed@."
   with Xnf.Udi.Udi_error msg -> Fmt.pr "XNF application told to refetch: %s@." msg);
  (* the recovery path: refetch and reapply *)
  let fresh = Xnf.Api.fetch_string api "OUT OF ORG TAKE *" in
  let ses2 = Xnf.Api.session api fresh in
  let bob =
    List.find
      (fun t -> Value.equal (Xnf.Cache.col t 1) (Value.Str "bob"))
      (Xnf.Cache.live_tuples (Xnf.Cache.node fresh "xemp"))
  in
  Xnf.Udi.update ses2 ~node:"xemp" ~pos:bob.Xnf.Cache.t_pos [ ("sal", Value.Int 1000) ];
  Fmt.pr "after refetch+reapply, bob earns %s@."
    (Value.to_string (List.hd (Db.rows_of db "SELECT sal FROM emp WHERE eno = 11")).(0));

  Fmt.pr "@.== CO-level DML from the prompt language ==@.";
  (match Xnf.Api.exec api "OUT OF ORG WHERE Xdept SUCH THAT loc = 'SF' UPDATE Xemp SET sal = sal + 10" with
  | Xnf.Api.Co_updated n -> Fmt.pr "CO UPDATE touched %d SF employees@." n
  | _ -> assert false);
  Fmt.pr "payroll by location (plain SQL over the shared data):@.";
  List.iter
    (fun row -> Fmt.pr "  %s@." (Row.to_string row))
    (Db.rows_of db
       "SELECT d.loc, SUM(e.sal) FROM dept d JOIN emp e ON d.dno = e.edno GROUP BY d.loc ORDER BY d.loc")
