(* The paper's running example, end to end (Figs. 1-6, §2-§3).

     dune exec examples/company_org.exe

   Builds the company database of the paper, defines every view from §3,
   runs every query family the paper shows, and prints the schema graphs
   and instance contents the figures depict. *)

open Relational

let header title = Fmt.pr "@.=== %s ===@." title

let show_instance cache =
  Fmt.pr "%a" Xnf.Cache.pp cache;
  List.iter
    (fun (name, ni) ->
      Fmt.pr "  %s tuples:@." name;
      List.iter
        (fun t -> Fmt.pr "    %s@." (Row.to_string (Xnf.Cache.row t)))
        (Xnf.Cache.live_tuples ni))
    cache.Xnf.Cache.c_nodes

let show_connections cache edge =
  let ei = Xnf.Cache.edge cache edge in
  let pn = Xnf.Cache.node cache ei.Xnf.Cache.ei_parent in
  let cn = Xnf.Cache.node cache ei.Xnf.Cache.ei_child in
  Fmt.pr "  %s connections:@." edge;
  List.iter
    (fun c ->
      let p = Xnf.Cache.tuple pn c.Xnf.Cache.cn_parent in
      let ch = Xnf.Cache.tuple cn c.Xnf.Cache.cn_child in
      Fmt.pr "    %s -- %s%s@."
        (Value.to_string (Xnf.Cache.col p 1))
        (Value.to_string (Xnf.Cache.col ch 1))
        (if Array.length (Xnf.Cache.conn_attrs c) > 0 then
           " " ^ Row.to_string (Xnf.Cache.conn_attrs c)
         else ""))
    (Xnf.Cache.conns_live ei)

let () =
  let db = Db.create () in
  (* the Fig. 1 / Fig. 4 company: two departments, six employees, four
     projects, five skills *)
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER, descr VARCHAR)";
      "CREATE TABLE proj (pno INTEGER PRIMARY KEY, pname VARCHAR, pdno INTEGER, pmgrno INTEGER, pbudget INTEGER)";
      "CREATE TABLE skills (sno INTEGER PRIMARY KEY, sname VARCHAR)";
      "CREATE TABLE empskill (eseno INTEGER, essno INTEGER)";
      "CREATE TABLE projskill (pspno INTEGER, pssno INTEGER)";
      "CREATE TABLE empproj (epeno INTEGER, eppno INTEGER, percentage INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 'NY', 1000), (2, 'd2', 'SF', 2000)";
      "INSERT INTO emp VALUES (1, 'e1', 1000, 1, 'regular'), (2, 'e2', 1800, 1, 'staff'), \
       (3, 'e3', 900, NULL, 'regular'), (4, 'e4', 2500, NULL, 'staff'), \
       (5, 'e5', 1200, 2, 'regular'), (6, 'e6', 700, 2, 'regular')";
      "INSERT INTO proj VALUES (1, 'p1', 2, 5, 500), (2, 'p2', 1, 2, 1500), \
       (3, 'p3', 1, 2, 800), (4, 'p4', 1, 3, 3000)";
      "INSERT INTO skills VALUES (1, 's1'), (2, 's2'), (3, 's3'), (4, 's4'), (5, 's5')";
      "INSERT INTO empskill VALUES (1, 1), (2, 3), (4, 3), (5, 4)";
      "INSERT INTO projskill VALUES (1, 3), (2, 3), (2, 5), (4, 4)";
      "INSERT INTO empproj VALUES (3, 2, 50), (4, 2, 50), (4, 4, 100)" ];
  let api = Xnf.Api.create db in

  header "Fig. 1 — CO 'Company Organizational Unit' (nodes, edges, sharing)";
  let fig1 =
    Xnf.Api.fetch_string api
      "OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ, Xskill AS SKILLS, \
       employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
       ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno), \
       empproperty AS (RELATE Xemp, Xskill USING EMPSKILL es \
       WHERE Xemp.eno = es.eseno AND Xskill.sno = es.essno), \
       projproperty AS (RELATE Xproj, Xskill USING PROJSKILL ps \
       WHERE Xproj.pno = ps.pspno AND Xskill.sno = ps.pssno) TAKE *"
  in
  Fmt.pr "%a" Xnf.Co_schema.pp fig1.Xnf.Cache.c_def;
  show_instance fig1;
  show_connections fig1 "empproperty";
  Fmt.pr "  (skill s3 is instance-shared by e2/e4 and p1/p2; s2 is unreachable)@.";

  header "§3.1 — the introductory CO constructor (NY only)";
  let intro =
    Xnf.Api.fetch_string api
      "OUT OF Xdept AS (SELECT * FROM DEPT WHERE loc = 'NY'), Xemp AS EMP, Xproj AS PROJ, \
       employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
       ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno) TAKE *"
  in
  show_instance intro;

  header "§3.2 — CO views and views over views (ALL-DEPS, ALL-DEPS-ORG)";
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW ALL-DEPS AS OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
        ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno) TAKE *");
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW ALL-DEPS-ORG AS OUT OF ALL-DEPS, \
        membership AS (RELATE Xproj, Xemp WITH ATTRIBUTES ep.percentage AS percentage \
        USING EMPPROJ ep WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno) TAKE *");
  let org = Xnf.Api.fetch_string api "OUT OF ALL-DEPS-ORG TAKE *" in
  Fmt.pr "employees e3/e4 become reachable through 'membership':@.";
  show_connections org "membership";

  header "§3.3 — node restriction (employees under 2000)";
  show_instance (Xnf.Api.fetch_string api "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 2000 TAKE *");

  header "§3.3 — edge restriction and structural projection";
  let restricted =
    Xnf.Api.fetch_string api
      "OUT OF ALL-DEPS WHERE employment (d, e) SUCH THAT e.sal < d.budget / 100 * 150 \
       TAKE Xdept(*), Xemp(*), employment"
  in
  show_instance restricted;
  Fmt.pr "  (Xproj was projected away; 'ownership' was discarded implicitly)@.";

  header "§3.4 — recursive CO (EXT-ALL-DEPS-ORG), restriction as in Fig. 5";
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW EXT-ALL-DEPS-ORG AS OUT OF ALL-DEPS-ORG, \
        projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno) TAKE *");
  let fig5 =
    Xnf.Api.fetch_string api
      "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept SUCH THAT loc = 'NY' \
       TAKE Xdept(*), employment, Xemp(*), projmanagement, membership, Xproj(*)"
  in
  show_instance fig5;
  show_connections fig5 "projmanagement";

  header "§3.5 — path expressions";
  let busy =
    Xnf.Api.fetch_string api
      "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept d SUCH THAT \
       COUNT(d->employment->projmanagement) >= 2 AND d.budget > 500 TAKE *"
  in
  Fmt.pr "departments whose staff manages >= 2 projects:@.";
  List.iter
    (fun t -> Fmt.pr "  %s@." (Row.to_string (Xnf.Cache.row t)))
    (Xnf.Cache.live_tuples (Xnf.Cache.node busy "xdept"));
  let staffed =
    Xnf.Api.fetch_string api
      "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept d SUCH THAT \
       EXISTS d->employment->(Xemp e WHERE e.descr = 'staff')->projmanagement->\
       (Xproj p WHERE p.pbudget > d.budget) TAKE *"
  in
  Fmt.pr "departments where staff manages a project bigger than the department budget:@.";
  List.iter
    (fun t -> Fmt.pr "  %s@." (Row.to_string (Xnf.Cache.row t)))
    (Xnf.Cache.live_tuples (Xnf.Cache.node staffed "xdept"));

  header "§3.6 — closure: the four query classes of Fig. 6";
  (* (1) NF -> XNF: done throughout; (2) XNF -> XNF: queries over views;
     (4) NF -> NF: plain SQL through the same session *)
  (match Xnf.Api.exec api "SELECT loc, COUNT(*) FROM dept GROUP BY loc ORDER BY loc" with
  | Xnf.Api.Sql (Db.Rows r) ->
    Fmt.pr "type (4) plain SQL through the XNF session:@.";
    List.iter (fun row -> Fmt.pr "  %s@." (Row.to_string row)) r.Db.rrows
  | _ -> assert false);
  (* (3) XNF -> NF: a single component of a CO view used as a table *)
  let single = Xnf.Api.fetch_string api "OUT OF ALL-DEPS WHERE Xdept SUCH THAT loc = 'NY' TAKE Xemp(*)" in
  Fmt.pr "type (3) XNF to NF — the Xemp component as a plain table:@.";
  List.iter
    (fun t -> Fmt.pr "  %s@." (Row.to_string (Xnf.Cache.row t)))
    (Xnf.Cache.live_tuples (Xnf.Cache.node single "xemp"))
