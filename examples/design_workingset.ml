(* Working-set extraction for a design database — the paper's motivating
   scenario (§1):

     dune exec examples/design_workingset.exe

   Design applications work on a well-specified subset of a much larger
   database (a configuration of documents/versions/components), extract it
   into memory close to the application, edit it there at memory speed,
   and propagate the changes back. One set-oriented XNF query replaces the
   thousands of navigational calls a per-object loader issues. *)

open Relational

let () =
  let db = Db.create () in
  (* a database ~2000x larger than the working set *)
  let scale =
    { Workload.Design.n_docs = 500; versions_per_doc = 4; components_per_version = 8;
      n_configs = 5; docs_per_config = 4 }
  in
  Workload.Design.populate db ~seed:42 ~scale;
  let total = Workload.Design.total_rows db in
  Fmt.pr "design database: %d rows@." total;

  let api = Xnf.Api.create db in

  (* extract configuration 0's working set as ONE composite object *)
  Xnf.Translate.reset_stats ();
  let t0 = Sys.time () in
  let ws = Xnf.Api.fetch_string api (Workload.Design.working_set_query 0) in
  let dt = Sys.time () -. t0 in
  let ws_rows = Xnf.Cache.total_tuples ws in
  Fmt.pr "working set: %d tuples (%d connections) = selectivity %.5f, fetched in %.3f ms with %d queries@."
    ws_rows (Xnf.Cache.total_conns ws)
    (float_of_int ws_rows /. float_of_int total)
    (dt *. 1000.)
    Xnf.Translate.stats.Xnf.Translate.queries_issued;

  (* browse: configuration -> versions -> components *)
  let cfg = Xnf.Cursor.open_independent ws "xcfg" in
  let vers = Xnf.Cursor.open_dependent ~parent:cfg (Xnf.Cursor.via "selection") in
  let comps = Xnf.Cursor.open_dependent ~parent:vers (Xnf.Cursor.via "content") in
  let docs = Xnf.Cursor.open_dependent ~parent:vers (Xnf.Cursor.via "described_by") in
  Xnf.Cursor.iter
    (fun c ->
      Fmt.pr "configuration %s@." (Row.to_string (Xnf.Cache.row c));
      Xnf.Cursor.iter
        (fun v ->
          let doc_title =
            match Xnf.Cursor.to_list docs with
            | d :: _ -> Value.to_string (Xnf.Cache.col d 1)
            | [] -> "?"
          in
          Fmt.pr "  version %s of %s: %d components@."
            (Value.to_string (Xnf.Cache.col v 0))
            doc_title
            (List.length (Xnf.Cursor.to_list comps)))
        vers)
    cfg;

  (* edit the working set in memory, then save the batch *)
  let ses = Xnf.Api.session api ws in
  let comp_node = Xnf.Cache.node ws "xcomp" in
  let edited = ref 0 in
  Xnf.Udi.with_deferred ses (fun () ->
      List.iter
        (fun t ->
          let w = Value.as_int (Xnf.Cache.col t 3) in
          if w > 250 then begin
            Xnf.Udi.update ses ~node:"xcomp" ~pos:t.Xnf.Cache.t_pos
              [ ("weight", Value.Int (w - 10)) ];
            incr edited
          end)
        (Xnf.Cache.live_tuples comp_node));
  Fmt.pr "edited %d components in the cache; changes propagated on save@." !edited;

  (* verify through plain SQL that the base tables saw the changes *)
  let heavy =
    List.hd (Db.rows_of db "SELECT COUNT(*) FROM component WHERE weight > 490")
  in
  Fmt.pr "components with weight > 490 after save (whole database): %s@." (Row.to_string heavy)
