(* Quickstart: the SQL/XNF API in ~60 lines.

     dune exec examples/quickstart.exe

   Builds a small company database (plain SQL), defines a composite-object
   view over it (XNF), loads it into the cache, browses it with cursors,
   and pushes an update back to the base tables. *)

open Relational

let () =
  (* 1. a plain relational database — ordinary SQL *)
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'toys', 'NY', 1000), (2, 'tools', 'SF', 2000)";
      "INSERT INTO emp VALUES (10, 'alice', 1500, 1), (11, 'bob', 900, 1), (12, 'carol', 2500, 2)" ];

  (* 2. an XNF session over the SAME database: SQL applications and CO
     applications share the data *)
  let api = Xnf.Api.create db in
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW ALL-DEPS AS \
        OUT OF Xdept AS DEPT, Xemp AS EMP, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) \
        TAKE *");

  (* 3. load the composite object into the cache *)
  let cache = Xnf.Api.fetch_string api "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 2000 TAKE *" in
  Fmt.pr "%a@." Xnf.Cache.pp cache;

  (* 4. browse with an independent cursor and a dependent cursor *)
  let depts = Xnf.Cursor.open_independent cache "xdept" in
  let emps = Xnf.Cursor.open_dependent ~parent:depts (Xnf.Cursor.via "employment") in
  Xnf.Cursor.iter
    (fun d ->
      Fmt.pr "dept %s@." (Row.to_string (Xnf.Cache.row d));
      Xnf.Cursor.iter (fun e -> Fmt.pr "  employs %s@." (Row.to_string (Xnf.Cache.row e))) emps)
    depts;

  (* 5. update through the cache; the change lands in the base table *)
  let ses = Xnf.Api.session api cache in
  let ni = Xnf.Cache.node cache "xemp" in
  let bob =
    List.find
      (fun t -> Value.equal (Xnf.Cache.col t 1) (Value.Str "bob"))
      (Xnf.Cache.live_tuples ni)
  in
  Xnf.Udi.update ses ~node:"xemp" ~pos:bob.Xnf.Cache.t_pos [ ("sal", Value.Int 1000) ];
  Fmt.pr "bob's salary in the base table is now %s@."
    (Row.to_string (List.hd (Db.rows_of db "SELECT sal FROM emp WHERE eno = 11")));

  (* 6. the same data is still just SQL for everyone else *)
  Fmt.pr "SQL view of the shared database: %d employees, total payroll %s@."
    (List.length (Db.rows_of db "SELECT * FROM emp"))
    (Row.to_string (List.hd (Db.rows_of db "SELECT SUM(sal) FROM emp")))
