(* Unit tests: tables, indexes, schemas, rows, vec. *)

open Relational

let mk_schema () =
  Schema.make
    [ Schema.column ~nullable:false "id" Schema.Ty_int;
      Schema.column "name" Schema.Ty_string;
      Schema.column "score" Schema.Ty_float ]

let mk_table () = Table.create ~name:"t" (mk_schema ())

let test_insert_get_delete () =
  let t = mk_table () in
  let r1 = Table.insert t [| Value.Int 1; Value.Str "a"; Value.Float 1.5 |] in
  let r2 = Table.insert t [| Value.Int 2; Value.Str "b"; Value.Null |] in
  Alcotest.(check int) "cardinality" 2 (Table.cardinality t);
  Alcotest.(check bool) "get r1" true (Option.is_some (Table.get t r1));
  ignore (Table.delete t r1);
  Alcotest.(check int) "after delete" 1 (Table.cardinality t);
  Alcotest.(check bool) "tombstoned" true (Table.get t r1 = None);
  Alcotest.(check bool) "r2 intact" true (Option.is_some (Table.get t r2))

let test_schema_violations () =
  let t = mk_table () in
  Alcotest.check_raises "arity" (Table.Schema_violation "t: arity 3, got 2") (fun () ->
      ignore (Table.insert t [| Value.Int 1; Value.Str "a" |]));
  (try
     ignore (Table.insert t [| Value.Str "bad"; Value.Str "a"; Value.Null |]);
     Alcotest.fail "expected type violation"
   with Table.Schema_violation _ -> ());
  try
    ignore (Table.insert t [| Value.Null; Value.Str "a"; Value.Null |]);
    Alcotest.fail "expected NOT NULL violation"
  with Table.Schema_violation _ -> ()

let test_update_restore () =
  let t = mk_table () in
  let r = Table.insert t [| Value.Int 1; Value.Str "a"; Value.Null |] in
  ignore (Table.update t r [| Value.Int 1; Value.Str "b"; Value.Null |]);
  (match Table.get t r with
  | Some row -> Alcotest.(check bool) "updated" true (Value.equal row.(1) (Value.Str "b"))
  | None -> Alcotest.fail "row missing");
  let old = Option.get (Table.delete t r) in
  Table.restore t r old;
  Alcotest.(check int) "restored" 1 (Table.cardinality t);
  Alcotest.(check bool) "restored content" true
    (match Table.get t r with Some row -> Value.equal row.(1) (Value.Str "b") | None -> false)

let test_version_bumps () =
  let t = mk_table () in
  let v0 = Table.version t in
  let r = Table.insert t [| Value.Int 1; Value.Null; Value.Null |] in
  let v1 = Table.version t in
  ignore (Table.update t r [| Value.Int 2; Value.Null; Value.Null |]);
  let v2 = Table.version t in
  ignore (Table.delete t r);
  let v3 = Table.version t in
  Alcotest.(check bool) "monotone" true (v0 < v1 && v1 < v2 && v2 < v3)

let test_hash_index_maintenance () =
  let t = mk_table () in
  let idx = Table.add_index t ~name:"by_name" ~cols:[| 1 |] Index.Hash in
  let r1 = Table.insert t [| Value.Int 1; Value.Str "x"; Value.Null |] in
  let _r2 = Table.insert t [| Value.Int 2; Value.Str "x"; Value.Null |] in
  Alcotest.(check int) "two hits" 2 (List.length (Table.lookup_index t idx [| Value.Str "x" |]));
  ignore (Table.delete t r1);
  Alcotest.(check int) "one hit after delete" 1
    (List.length (Table.lookup_index t idx [| Value.Str "x" |]));
  ignore
    (Table.update t _r2 [| Value.Int 2; Value.Str "y"; Value.Null |]);
  Alcotest.(check int) "zero after update" 0
    (List.length (Table.lookup_index t idx [| Value.Str "x" |]));
  Alcotest.(check int) "moved to new key" 1
    (List.length (Table.lookup_index t idx [| Value.Str "y" |]))

let test_index_backfill () =
  let t = mk_table () in
  for i = 1 to 10 do
    ignore (Table.insert t [| Value.Int i; Value.Str (string_of_int (i mod 3)); Value.Null |])
  done;
  let idx = Table.add_index t ~name:"late" ~cols:[| 1 |] Index.Hash in
  (* i mod 3 = 1 for i in {1, 4, 7, 10} *)
  Alcotest.(check int) "backfilled" 4 (List.length (Table.lookup_index t idx [| Value.Str "1" |]))

let test_ordered_index_range () =
  let idx = Index.create ~name:"ord" ~cols:[| 0 |] Index.Ordered in
  List.iteri (fun i v -> Index.insert idx [| Value.Int v |] i) [ 5; 1; 9; 3; 7 ];
  let hits = Index.range idx ~lo:(`Incl [| Value.Int 3 |]) ~hi:(`Excl [| Value.Int 9 |]) () in
  Alcotest.(check int) "range [3,9)" 3 (List.length hits);
  Alcotest.(check int) "distinct keys" 5 (Index.distinct_keys idx)

let test_schema_lookup () =
  let s = mk_schema () in
  Alcotest.(check int) "find name" 1 (Schema.find s "name");
  Alcotest.(check int) "find NAME case-insensitive" 1 (Schema.find s "NAME");
  Alcotest.check_raises "unknown" (Schema.Unknown_column "zzz") (fun () ->
      ignore (Schema.find s "zzz"));
  let s2 = Schema.concat (Schema.requalify "a" s) (Schema.requalify "b" s) in
  Alcotest.(check int) "qualified b.name" 4 (Schema.find s2 ~qualifier:"b" "name");
  Alcotest.check_raises "ambiguous" (Schema.Ambiguous_column "name") (fun () ->
      ignore (Schema.find s2 "name"))

let test_row_ops () =
  let a = [| Value.Int 1; Value.Str "x" |] and b = [| Value.Int 1; Value.Str "x" |] in
  Alcotest.(check bool) "equal" true (Row.equal a b);
  Alcotest.(check int) "hash equal" (Row.hash a) (Row.hash b);
  Alcotest.(check bool) "project" true
    (Row.equal (Row.project a [| 1 |]) [| Value.Str "x" |]);
  Alcotest.(check bool) "concat" true (Array.length (Row.concat a b) = 4);
  Alcotest.(check bool) "lexicographic" true (Row.compare a [| Value.Int 2; Value.Str "a" |] < 0)

let test_vec () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 42);
  Alcotest.(check int) "fold sum" (4950 - 42 + 1000) (Vec.fold ( + ) 0 v);
  Vec.truncate v 10;
  Alcotest.(check int) "truncate" 10 (Vec.length v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get") (fun () -> ignore (Vec.get v 10))

let test_distinct_estimate () =
  let t = mk_table () in
  for i = 0 to 29 do
    ignore (Table.insert t [| Value.Int i; Value.Str (string_of_int (i mod 7)); Value.Null |])
  done;
  Alcotest.(check int) "distinct names" 7 (Table.distinct_estimate t 1);
  Alcotest.(check int) "distinct ids" 30 (Table.distinct_estimate t 0)

let test_touch_hook () =
  let t = mk_table () in
  for i = 0 to 9 do
    ignore (Table.insert t [| Value.Int i; Value.Null; Value.Null |])
  done;
  let touched = ref 0 in
  Table.set_touch t (Some (fun _ -> incr touched));
  Table.iter (fun _ _ -> ()) t;
  Alcotest.(check int) "scan touches all" 10 !touched;
  Table.set_touch t None;
  Table.iter (fun _ _ -> ()) t;
  Alcotest.(check int) "hook removed" 10 !touched

let suite =
  [ Alcotest.test_case "insert/get/delete" `Quick test_insert_get_delete;
    Alcotest.test_case "schema violations" `Quick test_schema_violations;
    Alcotest.test_case "update and restore" `Quick test_update_restore;
    Alcotest.test_case "version bumps" `Quick test_version_bumps;
    Alcotest.test_case "hash index maintenance" `Quick test_hash_index_maintenance;
    Alcotest.test_case "index backfill" `Quick test_index_backfill;
    Alcotest.test_case "ordered index range" `Quick test_ordered_index_range;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "row operations" `Quick test_row_ops;
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "distinct estimate" `Quick test_distinct_estimate;
    Alcotest.test_case "touch hook" `Quick test_touch_hook ]
