(* Unit tests: workload generators and the deterministic PRNG. *)

open Relational

let test_rng_deterministic () =
  let a = Workload.Rng.create 42 and b = Workload.Rng.create 42 in
  let seq r = List.init 50 (fun _ -> Workload.Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Workload.Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true (seq (Workload.Rng.create 42) <> seq c)

let test_rng_ranges () =
  let r = Workload.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Workload.Rng.in_range r 5 10 in
    Alcotest.(check bool) "in range" true (v >= 5 && v <= 10);
    let f = Workload.Rng.float r in
    Alcotest.(check bool) "unit float" true (f >= 0. && f < 1.)
  done

let test_rng_split_independent () =
  let r = Workload.Rng.create 1 in
  let s = Workload.Rng.split r in
  (* drawing from the split does not perturb the parent's stream *)
  let r2 = Workload.Rng.create 1 in
  let _ = Workload.Rng.split r2 in
  ignore (Workload.Rng.int s 100);
  ignore (Workload.Rng.int s 100);
  Alcotest.(check int) "parent stream unperturbed" (Workload.Rng.int r2 1000000)
    (Workload.Rng.int r 1000000)

let test_rng_shuffle_permutes () =
  let r = Workload.Rng.create 5 in
  let arr = Array.init 20 Fun.id in
  Workload.Rng.shuffle r arr;
  Alcotest.(check (list int)) "same multiset" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list arr))

let test_company_cardinalities () =
  let db = Db.create () in
  let scale = Workload.Company.medium in
  Workload.Company.populate db ~seed:9 ~scale ~repr:Workload.Company.Cdb1;
  let count t = Table.cardinality (Catalog.table (Db.catalog db) t) in
  Alcotest.(check int) "depts" scale.Workload.Company.n_depts (count "dept");
  Alcotest.(check int) "emps"
    (scale.Workload.Company.n_depts * scale.Workload.Company.emps_per_dept)
    (count "emp");
  Alcotest.(check int) "projs"
    (scale.Workload.Company.n_depts * scale.Workload.Company.projs_per_dept)
    (count "proj");
  Alcotest.(check int) "skills" scale.Workload.Company.n_skills (count "skills");
  (* every employee's edno references an existing department (CDB1) *)
  Alcotest.(check int) "FK closure" 0
    (List.length
       (Db.rows_of db "SELECT * FROM emp WHERE edno NOT IN (SELECT dno FROM dept)"))

let test_company_cdb2_representation () =
  let db = Db.create () in
  Workload.Company.populate db ~seed:9 ~scale:Workload.Company.small ~repr:Workload.Company.Cdb2;
  (* employment lives in the link table, not in emp.edno *)
  Alcotest.(check int) "edno all null"
    (Table.cardinality (Catalog.table (Db.catalog db) "emp"))
    (List.length (Db.rows_of db "SELECT * FROM emp WHERE edno IS NULL"));
  Alcotest.(check bool) "deptemp populated" true
    (Table.cardinality (Catalog.table (Db.catalog db) "deptemp") > 0)

let test_oo1_invariants () =
  let db = Db.create () in
  let n_parts = 500 in
  Workload.Oo1.populate db ~seed:13 ~n_parts;
  Alcotest.(check int) "parts" n_parts
    (Table.cardinality (Catalog.table (Db.catalog db) "part"));
  Alcotest.(check int) "3 connections per part" (3 * n_parts)
    (Table.cardinality (Catalog.table (Db.catalog db) "connection"));
  (* every part has exactly 3 outgoing connections *)
  let rows =
    Db.rows_of db "SELECT from_id, COUNT(*) FROM connection GROUP BY from_id HAVING COUNT(*) <> 3"
  in
  Alcotest.(check int) "uniform out-degree" 0 (List.length rows);
  (* locality: most connections stay within the reference zone *)
  let zone = n_parts / 100 in
  let local =
    Db.rows_of db
      (Printf.sprintf
         "SELECT COUNT(*) FROM connection WHERE ABS(from_id - to_id) <= %d OR ABS(from_id - to_id) >= %d"
         zone (n_parts - zone))
  in
  let local_count = Value.as_int (List.hd local).(0) in
  Alcotest.(check bool) "~90% locality" true
    (float_of_int local_count /. float_of_int (3 * n_parts) > 0.8)

let test_design_selectivity () =
  let db = Db.create () in
  let scale =
    { Workload.Design.n_docs = 100; versions_per_doc = 3; components_per_version = 5;
      n_configs = 2; docs_per_config = 4 }
  in
  Workload.Design.populate db ~seed:21 ~scale;
  let count t = Table.cardinality (Catalog.table (Db.catalog db) t) in
  Alcotest.(check int) "docs" 100 (count "doc");
  Alcotest.(check int) "versions" 300 (count "version");
  Alcotest.(check int) "components" 1500 (count "component");
  Alcotest.(check int) "configver rows" 8 (count "configver");
  Alcotest.(check int) "total" (Workload.Design.total_rows db)
    (count "doc" + count "version" + count "component" + count "config" + count "configver")

let test_design_working_set () =
  let db = Db.create () in
  let scale =
    { Workload.Design.n_docs = 50; versions_per_doc = 3; components_per_version = 4;
      n_configs = 1; docs_per_config = 3 }
  in
  Workload.Design.populate db ~seed:22 ~scale;
  let api = Xnf.Api.create db in
  let ws = Xnf.Api.fetch_string api (Workload.Design.working_set_query 0) in
  (* 1 config + 3 versions + 12 components + <=3 docs *)
  let n = Xnf.Cache.total_tuples ws in
  Alcotest.(check bool) "working set size plausible" true (n >= 17 && n <= 19);
  Alcotest.(check int) "3 selected versions" 3
    (Xnf.Cache.live_count (Xnf.Cache.node ws "xver"))

let test_chain_structure () =
  let db = Db.create () in
  Workload.Chain.populate db ~seed:3 ~depth:3 ~n_roots:2 ~fanout:3;
  let count t = Table.cardinality (Catalog.table (Db.catalog db) t) in
  Alcotest.(check int) "t0" 4 (count "t0");
  Alcotest.(check int) "t1" 12 (count "t1");
  Alcotest.(check int) "t3" 108 (count "t3");
  let api = Xnf.Api.create db in
  let cache = Xnf.Api.fetch_string api (Workload.Chain.co_query ~depth:3) in
  (* tagged half: 2 roots, then 6, 18, 54 *)
  Alcotest.(check int) "CO tuples" (2 + 6 + 18 + 54) (Xnf.Cache.total_tuples cache)

let test_mgmt_chain () =
  let db = Db.create () in
  Workload.Chain.mgmt_chain db ~chain_len:10;
  let api = Xnf.Api.create db in
  let cache = Xnf.Api.fetch_string api Workload.Chain.mgmt_query in
  (* root + all 9 subordinates reachable through the recursive edge *)
  Alcotest.(check int) "whole chain reachable" 10
    (Xnf.Cache.live_count (Xnf.Cache.node cache "xroot")
    + Xnf.Cache.live_count (Xnf.Cache.node cache "xemp"))

let suite =
  [ Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "company cardinalities" `Quick test_company_cardinalities;
    Alcotest.test_case "company CDB2 representation" `Quick test_company_cdb2_representation;
    Alcotest.test_case "OO1 invariants" `Quick test_oo1_invariants;
    Alcotest.test_case "design database" `Quick test_design_selectivity;
    Alcotest.test_case "design working set" `Quick test_design_working_set;
    Alcotest.test_case "chain structure" `Quick test_chain_structure;
    Alcotest.test_case "management chain" `Quick test_mgmt_chain ]
