(* Unit tests: XNF parser and pretty-printer round trips. *)

open Xnf
open Xnf_ast

let parse = Xnf_parser.parse_stmt

let parses s =
  match parse s with
  | _ -> true
  | exception Relational.Sql_lexer.Parse_error _ -> false

let roundtrip s =
  let ast1 = parse s in
  let ast2 = parse (stmt_to_string ast1) in
  ast1 = ast2

let test_basic_constructor () =
  match
    parse
      "OUT OF Xdept AS (SELECT * FROM dept WHERE loc = 'NY'), Xemp AS EMP, \
       employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *"
  with
  | X_query q ->
    Alcotest.(check int) "three bindings" 3 (List.length q.q_out_of);
    Alcotest.(check bool) "take star" true (q.q_take = Take_star);
    (match List.nth q.q_out_of 1 with
    | B_node { bn_name = "xemp"; bn_query } ->
      Alcotest.(check bool) "shorthand expands" true
        (bn_query = Relational.Sql_ast.select_star_from "emp")
    | _ -> Alcotest.fail "shorthand binding wrong")
  | _ -> Alcotest.fail "expected query"

let test_relate_with_attributes_using () =
  match
    parse
      "OUT OF Xproj AS PROJ, Xemp AS EMP, membership AS (RELATE Xproj, Xemp \
       WITH ATTRIBUTES ep.percentage AS percentage USING EMPPROJ ep \
       WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno) TAKE *"
  with
  | X_query q -> begin
    match List.nth q.q_out_of 2 with
    | B_edge e ->
      Alcotest.(check int) "one attribute" 1 (List.length e.be_attrs);
      Alcotest.(check bool) "using table" true (e.be_using = Some ("empproj", "ep"))
    | _ -> Alcotest.fail "expected edge binding"
  end
  | _ -> Alcotest.fail "expected query"

let test_node_restriction () =
  match parse "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 2000 TAKE *" with
  | X_query { q_where = [ R_node { rn_node = "xemp"; rn_var = Some "e"; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "node restriction AST wrong"

let test_edge_restriction () =
  match
    parse
      "OUT OF ALL-DEPS WHERE employment (d, e) SUCH THAT e.sal < d.budget / 100 TAKE *"
  with
  | X_query
      { q_where = [ R_edge { re_edge = "employment"; re_parent_var = "d"; re_child_var = "e"; _ } ];
        _ } ->
    ()
  | _ -> Alcotest.fail "edge restriction AST wrong"

let test_take_projection () =
  match parse "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(ename, sal), employment" with
  | X_query { q_take = Take_items items; _ } ->
    Alcotest.(check int) "three items" 3 (List.length items);
    (match List.nth items 1 with
    | Take_node ("xemp", Take_cols [ "ename"; "sal" ]) -> ()
    | _ -> Alcotest.fail "column projection wrong")
  | _ -> Alcotest.fail "take items wrong"

let test_path_in_restriction () =
  match
    parse
      "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept d SUCH THAT \
       COUNT(d->employment->projmanagement) > 2 AND d.budget > 1000 TAKE *"
  with
  | X_query { q_where = [ R_node { rn_pred; _ } ]; _ } ->
    Alcotest.(check bool) "has path" true (has_path rn_pred);
    (match rn_pred with
    | X_and (X_cmp (Relational.Expr.Gt, X_count_path p, _), _) ->
      Alcotest.(check string) "path start" "d" p.p_start;
      Alcotest.(check int) "two steps" 2 (List.length p.p_steps)
    | _ -> Alcotest.fail "COUNT(path) shape wrong")
  | _ -> Alcotest.fail "path restriction wrong"

let test_qualified_path () =
  match
    parse
      "OUT OF V WHERE Xdept d SUCH THAT EXISTS d->employment->\
       (Xemp e WHERE e.descr = 'staff')->projmanagement->\
       (Xproj p WHERE p.pbudget > d.budget) TAKE *"
  with
  | X_query { q_where = [ R_node { rn_pred = X_exists_path p; _ } ]; _ } ->
    Alcotest.(check int) "four steps" 4 (List.length p.p_steps);
    (match List.nth p.p_steps 1 with
    | Step_node { sn_node = "xemp"; sn_var = Some "e"; sn_pred = Some _ } -> ()
    | _ -> Alcotest.fail "qualified step wrong")
  | _ -> Alcotest.fail "qualified path wrong"

let test_create_view_and_delete () =
  (match parse "CREATE VIEW ALL-DEPS AS OUT OF Xdept AS DEPT TAKE *" with
  | X_create_view ("all-deps", _) -> ()
  | _ -> Alcotest.fail "create view wrong");
  match parse "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 2000 DELETE *" with
  | X_delete _ -> ()
  | _ -> Alcotest.fail "CO delete wrong"

let test_sql_passthrough () =
  (match parse "SELECT * FROM t" with
  | X_sql (Relational.Sql_ast.S_select _) -> ()
  | _ -> Alcotest.fail "select passthrough");
  match parse "CREATE VIEW v AS SELECT a FROM t" with
  | X_sql (Relational.Sql_ast.S_create_view _) -> ()
  | _ -> Alcotest.fail "sql view passthrough"

let test_roundtrips () =
  List.iter
    (fun s -> Alcotest.(check bool) ("roundtrip: " ^ s) true (roundtrip s))
    [ "OUT OF xdept AS (SELECT * FROM dept), xemp AS (SELECT * FROM emp), employment AS \
       (RELATE xdept, xemp WHERE (xdept.dno = xemp.edno)) TAKE *";
      "OUT OF all-deps WHERE xemp e SUCH THAT (e.sal < 2000) TAKE xdept(*), xemp(ename), employment";
      "OUT OF v WHERE employment (d, e) SUCH THAT (e.sal < (d.budget / 100)) TAKE *";
      "CREATE VIEW x AS OUT OF v, pm AS (RELATE xemp m, xproj p WHERE (m.eno = p.pmgrno)) TAKE *";
      "OUT OF all-deps WHERE xemp e SUCH THAT (e.sal < 2000) DELETE *" ]

let test_errors () =
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects: " ^ s) false (parses s))
    [ "OUT OF TAKE *"; "OUT OF x AS"; "OUT OF x AS (RELATE a) TAKE *";
      "OUT OF x AS DEPT WHERE TAKE *"; "OUT OF x AS DEPT"; "OUT OF x AS DEPT TAKE" ]

let suite =
  [ Alcotest.test_case "CO constructor" `Quick test_basic_constructor;
    Alcotest.test_case "RELATE with attributes/USING" `Quick test_relate_with_attributes_using;
    Alcotest.test_case "node restriction" `Quick test_node_restriction;
    Alcotest.test_case "edge restriction" `Quick test_edge_restriction;
    Alcotest.test_case "TAKE projection" `Quick test_take_projection;
    Alcotest.test_case "COUNT(path) restriction" `Quick test_path_in_restriction;
    Alcotest.test_case "qualified path expression" `Quick test_qualified_path;
    Alcotest.test_case "CREATE VIEW and DELETE" `Quick test_create_view_and_delete;
    Alcotest.test_case "plain SQL passthrough" `Quick test_sql_passthrough;
    Alcotest.test_case "pretty-print round trips" `Quick test_roundtrips;
    Alcotest.test_case "parse errors" `Quick test_errors ]
