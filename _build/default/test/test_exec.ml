(* Integration tests: SQL end-to-end through the full pipeline. *)

open Relational

let mk_db () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1,'toys','NY',1000),(2,'tools','SF',2000),(3,'books','NY',500)";
      "INSERT INTO emp VALUES (10,'alice',1500,1),(11,'bob',900,1),(12,'carol',2500,2),(13,'dave',800,NULL)" ];
  db

let ints rows = List.map (fun r -> Value.as_int r.(0)) rows

let strs rows = List.map (fun r -> Value.as_string r.(0)) rows

let test_filter_and_project () =
  let db = mk_db () in
  Alcotest.(check (list string)) "NY depts" [ "toys"; "books" ]
    (strs (Db.rows_of db "SELECT dname FROM dept WHERE loc = 'NY'"))

let test_join_comma_and_explicit () =
  let db = mk_db () in
  let a = Db.rows_of db "SELECT e.ename FROM dept d, emp e WHERE d.dno = e.edno ORDER BY e.ename" in
  let b = Db.rows_of db "SELECT e.ename FROM dept d JOIN emp e ON d.dno = e.edno ORDER BY e.ename" in
  Alcotest.(check (list string)) "same result" (strs a) (strs b);
  Alcotest.(check (list string)) "content" [ "alice"; "bob"; "carol" ] (strs a)

let test_left_join_null_padding () =
  let db = mk_db () in
  let rows =
    Db.rows_of db "SELECT e.ename, d.dname FROM emp e LEFT JOIN dept d ON e.edno = d.dno ORDER BY e.ename"
  in
  Alcotest.(check int) "all four emps" 4 (List.length rows);
  let dave = List.find (fun r -> Value.equal r.(0) (Value.Str "dave")) rows in
  Alcotest.(check bool) "dave unmatched" true (Value.is_null dave.(1))

let test_group_by_having () =
  let db = mk_db () in
  let rows =
    Db.rows_of db
      "SELECT d.loc, COUNT(*), SUM(e.sal), AVG(e.sal), MIN(e.sal), MAX(e.sal) \
       FROM dept d JOIN emp e ON d.dno = e.edno GROUP BY d.loc HAVING COUNT(*) >= 1 ORDER BY d.loc"
  in
  Alcotest.(check int) "two groups" 2 (List.length rows);
  let ny = List.hd rows in
  Alcotest.(check bool) "count" true (Value.equal ny.(1) (Value.Int 2));
  Alcotest.(check bool) "sum" true (Value.equal ny.(2) (Value.Int 2400));
  Alcotest.(check bool) "avg" true (Value.equal ny.(3) (Value.Float 1200.0));
  Alcotest.(check bool) "min" true (Value.equal ny.(4) (Value.Int 900));
  Alcotest.(check bool) "max" true (Value.equal ny.(5) (Value.Int 1500))

let test_global_aggregate_empty () =
  let db = mk_db () in
  let rows = Db.rows_of db "SELECT COUNT(*), SUM(sal) FROM emp WHERE sal > 99999" in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "count 0" true (Value.equal r.(0) (Value.Int 0));
  Alcotest.(check bool) "sum null" true (Value.is_null r.(1))

let test_distinct_order_limit () =
  let db = mk_db () in
  Alcotest.(check (list string)) "distinct locs" [ "NY"; "SF" ]
    (strs (Db.rows_of db "SELECT DISTINCT loc FROM dept ORDER BY loc"));
  Alcotest.(check (list int)) "top 2 salaries" [ 2500; 1500 ]
    (ints (Db.rows_of db "SELECT sal FROM emp ORDER BY sal DESC LIMIT 2"))

let test_correlated_exists () =
  let db = mk_db () in
  Alcotest.(check (list string)) "depts with emps" [ "tools"; "toys" ]
    (strs
       (Db.rows_of db
          "SELECT dname FROM dept d WHERE EXISTS (SELECT * FROM emp e WHERE e.edno = d.dno) ORDER BY dname"))

let test_not_exists_and_not_in () =
  let db = mk_db () in
  Alcotest.(check (list string)) "empty depts" [ "books" ]
    (strs
       (Db.rows_of db
          "SELECT dname FROM dept d WHERE NOT EXISTS (SELECT * FROM emp e WHERE e.edno = d.dno)"));
  Alcotest.(check (list string)) "not in" [ "books" ]
    (strs
       (Db.rows_of db
          "SELECT dname FROM dept WHERE dno NOT IN (SELECT edno FROM emp WHERE edno IS NOT NULL)"))

let test_scalar_subquery () =
  let db = mk_db () in
  Alcotest.(check (list string)) "top earner" [ "carol" ]
    (strs (Db.rows_of db "SELECT ename FROM emp WHERE sal = (SELECT MAX(sal) FROM emp)"))

let test_correlated_scalar () =
  let db = mk_db () in
  let rows =
    Db.rows_of db
      "SELECT ename FROM emp e WHERE sal > (SELECT AVG(sal) FROM emp e2 WHERE e2.edno = e.edno) ORDER BY ename"
  in
  (* alice earns above the dept-1 average; carol is the only dept-2 emp (not >) *)
  Alcotest.(check (list string)) "above dept average" [ "alice" ] (strs rows)

let test_insert_update_delete () =
  let db = mk_db () in
  (match Db.exec db "INSERT INTO emp VALUES (14, 'erin', 2000, 3)" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "insert");
  (match Db.exec db "UPDATE emp SET sal = sal * 2 WHERE edno = 3" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "update");
  Alcotest.(check (list int)) "doubled" [ 4000 ]
    (ints (Db.rows_of db "SELECT sal FROM emp WHERE eno = 14"));
  (match Db.exec db "DELETE FROM emp WHERE eno = 14" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "delete");
  Alcotest.(check int) "back to 4" 4 (List.length (Db.rows_of db "SELECT * FROM emp"))

let test_primary_key_enforced () =
  let db = mk_db () in
  try
    ignore (Db.exec db "INSERT INTO dept VALUES (1, 'dup', 'LA', 0)");
    Alcotest.fail "expected duplicate key error"
  with Db.Exec_error _ -> ()

let test_view_expansion () =
  let db = mk_db () in
  ignore (Db.exec db "CREATE VIEW ny_depts AS SELECT dno, dname FROM dept WHERE loc = 'NY'");
  Alcotest.(check (list string)) "view rows" [ "books"; "toys" ]
    (strs (Db.rows_of db "SELECT dname FROM ny_depts ORDER BY dname"));
  (* views compose with joins *)
  Alcotest.(check (list string)) "view join" [ "alice"; "bob" ]
    (strs
       (Db.rows_of db
          "SELECT e.ename FROM ny_depts v JOIN emp e ON v.dno = e.edno ORDER BY e.ename"))

let test_insert_partial_columns () =
  let db = mk_db () in
  ignore (Db.exec db "INSERT INTO emp (eno, ename) VALUES (20, 'zoe')");
  let rows = Db.rows_of db "SELECT sal FROM emp WHERE eno = 20" in
  Alcotest.(check bool) "missing cols null" true (Value.is_null (List.hd rows).(0))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_index_scan_used () =
  let db = mk_db () in
  ignore (Db.exec db "CREATE INDEX emp_edno ON emp (edno)");
  let plan = Db.explain db "SELECT * FROM emp WHERE edno = 1" in
  Alcotest.(check bool) "uses index" true (contains ~sub:"IndexScan" plan)

let test_union_sql () =
  let db = mk_db () in
  (* UNION ALL keeps duplicates, UNION deduplicates *)
  Alcotest.(check int) "union all" 6
    (List.length (Db.rows_of db "SELECT loc FROM dept UNION ALL SELECT loc FROM dept"));
  Alcotest.(check (list string)) "union dedups + order" [ "NY"; "SF" ]
    (strs (Db.rows_of db "SELECT loc FROM dept UNION SELECT loc FROM dept ORDER BY loc"));
  (* heterogeneous sources, ORDER BY and LIMIT over the whole chain *)
  Alcotest.(check (list string)) "mixed chain" [ "alice"; "books" ]
    (strs
       (Db.rows_of db
          "SELECT dname FROM dept WHERE loc = 'NY' UNION SELECT ename FROM emp WHERE eno = 10 \
           ORDER BY 1 LIMIT 2"));
  (* arity mismatch is a bind error *)
  try
    ignore (Db.rows_of db "SELECT dno, dname FROM dept UNION SELECT eno FROM emp");
    Alcotest.fail "expected arity error"
  with Binder.Bind_error _ -> ()

let test_group_by_expression () =
  let db = mk_db () in
  (* grouping on a computed key, matched structurally in the select list *)
  let rows =
    Db.rows_of db "SELECT sal / 1000, COUNT(*) FROM emp GROUP BY sal / 1000 ORDER BY 1"
  in
  Alcotest.(check int) "three buckets" 3 (List.length rows);
  Alcotest.(check bool) "bucket 0" true (Value.equal (List.hd rows).(0) (Value.Int 0))

let test_having_only_aggregate () =
  let db = mk_db () in
  (* the HAVING aggregate does not appear in the select list *)
  (* dept 1 payroll = 2400, dept 2 = 2500: only dept 2 passes 2450 *)
  let rows =
    Db.rows_of db
      "SELECT edno FROM emp WHERE edno IS NOT NULL GROUP BY edno HAVING SUM(sal) > 2450"
  in
  Alcotest.(check int) "one qualifying dept" 1 (List.length rows);
  Alcotest.(check bool) "it is dept 2" true (Value.equal (List.hd rows).(0) (Value.Int 2))

let test_count_distinct () =
  let db = mk_db () in
  let rows =
    Db.rows_of db
      "SELECT COUNT(DISTINCT loc), COUNT(loc), SUM(DISTINCT budget) FROM dept"
  in
  let r = List.hd rows in
  Alcotest.(check bool) "two distinct locs" true (Value.equal r.(0) (Value.Int 2));
  Alcotest.(check bool) "three rows counted" true (Value.equal r.(1) (Value.Int 3));
  (* budgets 1000, 2000, 500 are all distinct *)
  Alcotest.(check bool) "sum distinct" true (Value.equal r.(2) (Value.Int 3500));
  (* per-group distinct counting *)
  let rows =
    Db.rows_of db
      "SELECT d.loc, COUNT(DISTINCT e.edno) FROM dept d JOIN emp e ON d.dno = e.edno \
       GROUP BY d.loc ORDER BY d.loc"
  in
  Alcotest.(check bool) "NY has one distinct dept among its emps" true
    (Value.equal (List.hd rows).(1) (Value.Int 1))

let test_explain_statement () =
  let db = mk_db () in
  match Db.exec db "EXPLAIN SELECT * FROM dept WHERE dno = 1" with
  | Db.Done text ->
    Alcotest.(check bool) "shows a plan" true (contains ~sub:"Plan:" text);
    Alcotest.(check bool) "uses the PK index" true (contains ~sub:"IndexScan" text)
  | _ -> Alcotest.fail "expected Done"

let test_union_via_qgm () =
  (* UNION ALL is a QGM/plan-level operator used by the XNF translator *)
  let db = mk_db () in
  let q1 = Db.bind_select db (Sql_parser.parse_select "SELECT dno FROM dept WHERE loc = 'NY'") in
  let q2 = Db.bind_select db (Sql_parser.parse_select "SELECT dno FROM dept WHERE loc = 'SF'") in
  let rows = List.of_seq (Db.run_qgm db (Qgm.Union_all (q1, q2))) in
  Alcotest.(check int) "all three" 3 (List.length rows)

let suite =
  [ Alcotest.test_case "filter and project" `Quick test_filter_and_project;
    Alcotest.test_case "comma vs explicit join" `Quick test_join_comma_and_explicit;
    Alcotest.test_case "left join padding" `Quick test_left_join_null_padding;
    Alcotest.test_case "group by / having / aggregates" `Quick test_group_by_having;
    Alcotest.test_case "global aggregate over empty" `Quick test_global_aggregate_empty;
    Alcotest.test_case "distinct / order / limit" `Quick test_distinct_order_limit;
    Alcotest.test_case "correlated EXISTS" `Quick test_correlated_exists;
    Alcotest.test_case "NOT EXISTS / NOT IN" `Quick test_not_exists_and_not_in;
    Alcotest.test_case "scalar subquery" `Quick test_scalar_subquery;
    Alcotest.test_case "correlated scalar subquery" `Quick test_correlated_scalar;
    Alcotest.test_case "insert/update/delete" `Quick test_insert_update_delete;
    Alcotest.test_case "primary key enforcement" `Quick test_primary_key_enforced;
    Alcotest.test_case "tabular views" `Quick test_view_expansion;
    Alcotest.test_case "insert with column list" `Quick test_insert_partial_columns;
    Alcotest.test_case "index scan selection" `Quick test_index_scan_used;
    Alcotest.test_case "UNION / UNION ALL" `Quick test_union_sql;
    Alcotest.test_case "GROUP BY expression" `Quick test_group_by_expression;
    Alcotest.test_case "HAVING-only aggregate" `Quick test_having_only_aggregate;
    Alcotest.test_case "COUNT(DISTINCT)" `Quick test_count_distinct;
    Alcotest.test_case "EXPLAIN statement" `Quick test_explain_statement;
    Alcotest.test_case "union all at QGM level" `Quick test_union_via_qgm ]
