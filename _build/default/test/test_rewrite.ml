(* Unit tests: QGM rewrite rules and plan optimization choices. *)

open Relational

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let mk_db () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE a (x INTEGER PRIMARY KEY, y INTEGER)";
      "CREATE TABLE b (u INTEGER PRIMARY KEY, v INTEGER)";
      "INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)";
      "INSERT INTO b VALUES (1, 100), (2, 200), (4, 400)" ];
  db

let test_pushdown_to_scans () =
  let db = mk_db () in
  (* the cross join + WHERE should become a hash join with the per-table
     predicates pushed below it *)
  let plan = Db.explain db "SELECT * FROM a, b WHERE a.x = b.u AND a.y > 5 AND b.v < 300" in
  Alcotest.(check bool) "hash join" true (contains ~sub:"HashJoin" plan);
  Alcotest.(check bool) "no cross nl-join" true (not (contains ~sub:"NLJoin" plan))

let test_rewrite_off_keeps_cross_join () =
  let db = mk_db () in
  Db.set_rewrite db false;
  let plan = Db.explain db "SELECT * FROM a, b WHERE a.x = b.u" in
  Alcotest.(check bool) "nl join without rewrite" true (contains ~sub:"NLJoin" plan);
  (* results must still be identical *)
  let off = Db.rows_of db "SELECT * FROM a, b WHERE a.x = b.u" in
  Db.set_rewrite db true;
  let on_ = Db.rows_of db "SELECT * FROM a, b WHERE a.x = b.u" in
  Alcotest.(check int) "same cardinality" (List.length off) (List.length on_);
  Alcotest.(check bool) "same rows" true (List.for_all2 Row.equal off on_)

let test_view_merging () =
  let db = mk_db () in
  ignore (Db.exec db "CREATE VIEW big_a AS SELECT x, y FROM a WHERE y > 5");
  (* the view filter and the query filter should both reach the base scan:
     no nested Project stacks left *)
  let plan = Db.explain db "SELECT x FROM big_a WHERE x < 3" in
  Alcotest.(check bool) "single filter region" true (contains ~sub:"Filter" plan);
  let rows = Db.rows_of db "SELECT x FROM big_a WHERE x < 3 ORDER BY x" in
  Alcotest.(check int) "correct rows" 2 (List.length rows)

let test_semi_join_from_exists () =
  let db = mk_db () in
  let rows =
    Db.rows_of db "SELECT x FROM a WHERE EXISTS (SELECT * FROM b WHERE b.u = a.x) ORDER BY x"
  in
  Alcotest.(check int) "two matches" 2 (List.length rows)

let test_index_nl_join_choice () =
  let db = mk_db () in
  (* b.u is the PK: an index nested-loop join should be chosen when b is
     the inner side of an equi-join on u *)
  let plan = Db.explain db "SELECT * FROM a JOIN b ON a.x = b.u" in
  Alcotest.(check bool) "index nl join" true (contains ~sub:"IndexNLJoin" plan)

let test_subplan_pred_not_moved () =
  let db = mk_db () in
  (* a predicate with a correlated subplan must not be pushed through the
     join (its closure captured the outer layout); just check the query
     still computes correctly through rewrite *)
  let rows =
    Db.rows_of db
      "SELECT a.x FROM a, b WHERE a.x = b.u AND EXISTS (SELECT * FROM b b2 WHERE b2.u = a.x) ORDER BY a.x"
  in
  Alcotest.(check int) "correct under rewrite" 2 (List.length rows)

let test_group_pushdown () =
  let db = mk_db () in
  let qgm =
    Db.bind_select db
      (Sql_parser.parse_select "SELECT y, COUNT(*) FROM a GROUP BY y")
  in
  (* wrap with a key-only restriction and check it lands below the group *)
  let restricted = Qgm.Select { input = qgm; pred = Expr.(Cmp (Gt, Col 0, Lit (Value.Int 15))) } in
  let rewritten = Rewrite.rewrite (Db.catalog db) restricted in
  let str = Qgm.to_string rewritten in
  (* after pushdown the Select sits under the Group box *)
  let group_pos =
    let rec find i =
      if i + 5 > String.length str then max_int
      else if String.sub str i 5 = "Group" then i
      else find (i + 1)
    in
    find 0
  in
  let select_pos =
    let rec find i =
      if i + 6 > String.length str then max_int
      else if String.sub str i 6 = "Select" then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "select below group" true (select_pos > group_pos);
  let rows = List.of_seq (Db.run_qgm db restricted) in
  Alcotest.(check int) "two groups pass" 2 (List.length rows)

let test_rewrite_preserves_results_random () =
  (* the same query with rewrite on and off must agree on a variety of
     shapes *)
  let queries =
    [ "SELECT * FROM a WHERE y > 10";
      "SELECT a.x, b.v FROM a, b WHERE a.x = b.u AND b.v >= 100";
      "SELECT a.y FROM a LEFT JOIN b ON a.x = b.u WHERE a.y > 5";
      "SELECT y, COUNT(*) FROM a GROUP BY y HAVING COUNT(*) >= 1";
      "SELECT DISTINCT v FROM b ORDER BY v DESC" ]
  in
  List.iter
    (fun q ->
      let db = mk_db () in
      Db.set_rewrite db true;
      let a = Db.rows_of db q in
      Db.set_rewrite db false;
      let b = Db.rows_of db q in
      Alcotest.(check int) ("cardinality: " ^ q) (List.length a) (List.length b);
      List.iter2
        (fun ra rb -> Alcotest.(check bool) ("row: " ^ q) true (Row.equal ra rb))
        a b)
    queries

let suite =
  [ Alcotest.test_case "predicate pushdown to scans" `Quick test_pushdown_to_scans;
    Alcotest.test_case "rewrite off keeps cross join" `Quick test_rewrite_off_keeps_cross_join;
    Alcotest.test_case "view merging" `Quick test_view_merging;
    Alcotest.test_case "EXISTS evaluation" `Quick test_semi_join_from_exists;
    Alcotest.test_case "index NL join selection" `Quick test_index_nl_join_choice;
    Alcotest.test_case "subplan predicates stay put" `Quick test_subplan_pred_not_moved;
    Alcotest.test_case "pushdown below group" `Quick test_group_pushdown;
    Alcotest.test_case "rewrite preserves results" `Quick test_rewrite_preserves_results_random ]
