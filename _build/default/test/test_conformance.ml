(* Language conformance: every construct documented in LANGUAGE.md parses
   and executes against the demo company database. This suite pins the
   documented surface — if a grammar change breaks a documented form, it
   fails here first. *)

let mk () =
  let db = Relational.Db.create () in
  Workload.Company.populate db ~seed:77 ~scale:Workload.Company.small
    ~repr:Workload.Company.Cdb1;
  let api = Xnf.Api.create db in
  Workload.Company.register_views api ~repr:Workload.Company.Cdb1;
  api

let sql_statements =
  [ "SELECT * FROM dept";
    "SELECT DISTINCT loc FROM dept";
    "SELECT d.* FROM dept d";
    "SELECT dname AS n FROM dept WHERE loc = 'NY' OR budget > 100";
    "SELECT * FROM dept d, emp e WHERE d.dno = e.edno";
    "SELECT * FROM dept d INNER JOIN emp e ON d.dno = e.edno";
    "SELECT * FROM dept d LEFT JOIN emp e ON d.dno = e.edno";
    "SELECT * FROM (SELECT dno FROM dept) sub WHERE sub.dno >= 0";
    "SELECT edno, COUNT(*), SUM(sal), AVG(sal), MIN(sal), MAX(sal) FROM emp GROUP BY edno HAVING COUNT(*) >= 1";
    "SELECT COUNT(DISTINCT loc) FROM dept";
    "SELECT dno FROM dept UNION ALL SELECT eno FROM emp";
    "SELECT dno FROM dept UNION SELECT dno FROM dept ORDER BY 1 LIMIT 2";
    "SELECT * FROM emp ORDER BY sal DESC, ename LIMIT 3";
    "SELECT * FROM emp WHERE sal BETWEEN 100 AND 10000";
    "SELECT * FROM emp WHERE ename LIKE 'emp%' AND edno IS NOT NULL";
    "SELECT * FROM emp WHERE edno IN (0, 1, 2)";
    "SELECT * FROM emp WHERE edno IN (SELECT dno FROM dept WHERE budget > 0)";
    "SELECT * FROM emp WHERE edno NOT IN (SELECT dno FROM dept WHERE budget < 0)";
    "SELECT * FROM dept d WHERE EXISTS (SELECT * FROM emp e WHERE e.edno = d.dno)";
    "SELECT * FROM dept d WHERE NOT EXISTS (SELECT * FROM emp e WHERE e.edno = d.dno AND e.sal > 999999)";
    "SELECT (SELECT MAX(sal) FROM emp) FROM dept";
    "SELECT CASE WHEN budget > 1000 THEN 'big' ELSE 'small' END FROM dept";
    "SELECT ABS(0 - dno), LOWER(dname), UPPER(loc), LENGTH(dname), MOD(dno, 2), COALESCE(NULL, dno) FROM dept";
    "INSERT INTO skills (sno, sname) VALUES (900, 'conformance')";
    "UPDATE skills SET slevel = 1 WHERE sno = 900";
    "DELETE FROM skills WHERE sno = 900";
    "CREATE TABLE conf_t (id INTEGER PRIMARY KEY, v VARCHAR(10) NOT NULL, f FLOAT, b BOOLEAN)";
    "CREATE INDEX conf_i ON conf_t (v) USING ORDERED";
    "CREATE VIEW conf_v AS SELECT id FROM conf_t";
    "SELECT * FROM conf_v";
    "DROP VIEW conf_v";
    "DROP TABLE conf_t";
    "EXPLAIN SELECT * FROM dept WHERE dno = 1";
    "BEGIN";
    "INSERT INTO skills (sno, sname) VALUES (901, 'txn')";
    "ROLLBACK" ]

let xnf_statements =
  [ (* constructor forms *)
    "OUT OF x AS DEPT TAKE *";
    "OUT OF x AS (SELECT * FROM dept WHERE loc = 'NY') TAKE *";
    "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x, y WHERE x.dno = y.edno) TAKE *";
    "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x p, y c WHERE p.dno = c.edno) TAKE *";
    "OUT OF p AS PROJ, e AS EMP, m AS (RELATE p, e WITH ATTRIBUTES ep.percentage AS pct \
     USING EMPPROJ ep WHERE p.pno = ep.eppno AND e.eno = ep.epeno) TAKE *";
    (* view import, closure *)
    "OUT OF ALL-DEPS TAKE *";
    "OUT OF ALL-DEPS-ORG TAKE *";
    "OUT OF EXT-ALL-DEPS-ORG TAKE *";
    "OUT OF ORG-UNIT TAKE *";
    (* restrictions *)
    "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 5000 TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept SUCH THAT budget > 0 TAKE *";
    "OUT OF ALL-DEPS WHERE employment (d, e) SUCH THAT e.sal < d.budget * 100 TAKE *";
    "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 5000 AND Xdept SUCH THAT budget > 0 TAKE *";
    (* path expressions *)
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment) >= 0 TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT EXISTS d->employment TAKE *";
    "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept d SUCH THAT \
     EXISTS d->employment->(Xemp e WHERE e.sal > 0)->projmanagement TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment->Xemp) >= 0 TAKE *";
    (* projection *)
    "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(*), employment";
    "OUT OF ALL-DEPS TAKE Xdept(dname), Xemp(ename, sal), employment";
    "OUT OF ALL-DEPS WHERE Xdept SUCH THAT loc = 'NY' TAKE Xemp(*)";
    (* views *)
    "CREATE VIEW CONF-V AS OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal > 0 TAKE *";
    "OUT OF CONF-V TAKE *";
    "DROP VIEW CONF-V";
    (* CO DML *)
    "OUT OF x AS (SELECT * FROM skills WHERE sno < 0) DELETE *";
    "OUT OF ALL-DEPS UPDATE Xemp SET sal = sal + 0" ]

let test_sql () =
  let api = mk () in
  List.iter
    (fun s ->
      match Xnf.Api.exec api s with
      | _ -> ()
      | exception e ->
        Alcotest.failf "documented SQL failed: %s (%s)" s (Printexc.to_string e))
    sql_statements

let test_xnf () =
  let api = mk () in
  List.iter
    (fun s ->
      match Xnf.Api.exec api s with
      | _ -> ()
      | exception e ->
        Alcotest.failf "documented XNF failed: %s (%s)" s (Printexc.to_string e))
    xnf_statements

let suite =
  [ Alcotest.test_case "documented SQL surface" `Quick test_sql;
    Alcotest.test_case "documented XNF surface" `Quick test_xnf ]
