(* Unit tests: SQL values and three-valued logic. *)

open Relational

let check_truth = Alcotest.(check bool)

let test_truth_tables () =
  let open Value in
  (* Kleene AND *)
  Alcotest.(check bool) "T and T" true (truth_and True True = True);
  Alcotest.(check bool) "T and U" true (truth_and True Unknown = Unknown);
  Alcotest.(check bool) "F and U" true (truth_and False Unknown = False);
  Alcotest.(check bool) "U and U" true (truth_and Unknown Unknown = Unknown);
  (* Kleene OR *)
  Alcotest.(check bool) "T or U" true (truth_or True Unknown = True);
  Alcotest.(check bool) "F or U" true (truth_or False Unknown = Unknown);
  Alcotest.(check bool) "F or F" true (truth_or False False = False);
  (* NOT *)
  Alcotest.(check bool) "not U" true (truth_not Unknown = Unknown);
  Alcotest.(check bool) "not T" true (truth_not True = False)

let test_compare_sql_null () =
  Alcotest.(check bool) "null vs int" true (Value.compare_sql Value.Null (Value.Int 1) = None);
  Alcotest.(check bool) "int vs null" true (Value.compare_sql (Value.Int 1) Value.Null = None);
  Alcotest.(check bool) "1 < 2" true (Value.compare_sql (Value.Int 1) (Value.Int 2) = Some (-1))

let test_numeric_cross_compare () =
  Alcotest.(check bool) "1 = 1.0" true (Value.compare_sql (Value.Int 1) (Value.Float 1.0) = Some 0);
  Alcotest.(check bool) "2 > 1.5" true
    (match Value.compare_sql (Value.Int 2) (Value.Float 1.5) with Some c -> c > 0 | None -> false)

let test_total_order_nulls_first () =
  Alcotest.(check bool) "null first" true (Value.compare_total Value.Null (Value.Int (-100)) < 0);
  Alcotest.(check bool) "null = null" true (Value.compare_total Value.Null Value.Null = 0)

let test_hash_consistent_with_equal () =
  let a = Value.Int 42 and b = Value.Float 42.0 in
  Alcotest.(check bool) "equal cross-type" true (Value.equal a b);
  Alcotest.(check int) "hash matches" (Value.hash a) (Value.hash b)

let test_arith_null_propagation () =
  Alcotest.(check bool) "null + 1" true (Value.arith `Add Value.Null (Value.Int 1) = Value.Null);
  Alcotest.(check bool) "1 / 0 is null" true (Value.arith `Div (Value.Int 1) (Value.Int 0) = Value.Null);
  Alcotest.(check bool) "7 mod 3" true (Value.arith `Mod (Value.Int 7) (Value.Int 3) = Value.Int 1)

let test_arith_mixed_types () =
  Alcotest.(check bool) "int+float widens" true
    (Value.arith `Add (Value.Int 1) (Value.Float 0.5) = Value.Float 1.5);
  Alcotest.(check bool) "string concat" true
    (Value.arith `Add (Value.Str "a") (Value.Str "b") = Value.Str "ab")

let test_sql_literal_quoting () =
  Alcotest.(check string) "escaped quote" "'it''s'" (Value.to_sql_literal (Value.Str "it's"));
  Alcotest.(check string) "null literal" "NULL" (Value.to_sql_literal Value.Null)

let test_is_true_strict () =
  Alcotest.(check bool) "unknown is not true" false (Value.is_true Value.Unknown);
  Alcotest.(check bool) "false is not true" false (Value.is_true Value.False);
  Alcotest.(check bool) "true is true" true (Value.is_true Value.True)

let suite =
  [ Alcotest.test_case "3VL truth tables" `Quick test_truth_tables;
    Alcotest.test_case "SQL compare with NULL" `Quick test_compare_sql_null;
    Alcotest.test_case "numeric cross-type compare" `Quick test_numeric_cross_compare;
    Alcotest.test_case "total order: NULLs first" `Quick test_total_order_nulls_first;
    Alcotest.test_case "hash consistent with equal" `Quick test_hash_consistent_with_equal;
    Alcotest.test_case "arithmetic NULL propagation" `Quick test_arith_null_propagation;
    Alcotest.test_case "arithmetic type widening" `Quick test_arith_mixed_types;
    Alcotest.test_case "SQL literal quoting" `Quick test_sql_literal_quoting;
    Alcotest.test_case "is_true strictness" `Quick test_is_true_strict ]

let () = ignore check_truth
