(* Unit tests: bound expression evaluation. *)

open Relational

let row = [| Value.Int 10; Value.Str "abc"; Value.Null; Value.Float 2.5; Value.Bool true |]

let eval e = Expr.eval row e

let test_col_and_lit () =
  Alcotest.(check bool) "col" true (eval (Expr.Col 0) = Value.Int 10);
  Alcotest.(check bool) "lit" true (eval (Expr.Lit (Value.Str "x")) = Value.Str "x")

let test_cmp_3vl () =
  Alcotest.(check bool) "10 = 10" true (eval Expr.(Cmp (Eq, Col 0, Lit (Value.Int 10))) = Value.Bool true);
  Alcotest.(check bool) "null cmp is null" true
    (eval Expr.(Cmp (Eq, Col 2, Lit (Value.Int 1))) = Value.Null);
  Alcotest.(check bool) "10 < 2.5 false" true
    (eval Expr.(Cmp (Lt, Col 0, Col 3)) = Value.Bool false)

let test_and_or_short_3vl () =
  (* FALSE AND UNKNOWN = FALSE, TRUE OR UNKNOWN = TRUE *)
  let unknown = Expr.(Cmp (Eq, Col 2, Lit (Value.Int 1))) in
  Alcotest.(check bool) "false and unknown" true
    (eval Expr.(And (Lit (Value.Bool false), unknown)) = Value.Bool false);
  Alcotest.(check bool) "true or unknown" true
    (eval Expr.(Or (Lit (Value.Bool true), unknown)) = Value.Bool true);
  Alcotest.(check bool) "true and unknown" true (eval Expr.(And (Lit (Value.Bool true), unknown)) = Value.Null)

let test_is_null () =
  Alcotest.(check bool) "is null" true (eval Expr.(Is_null (Col 2)) = Value.Bool true);
  Alcotest.(check bool) "is not null" true (eval Expr.(Is_not_null (Col 0)) = Value.Bool true)

let test_like () =
  let like s p = Expr.(Like (Lit (Value.Str s), Lit (Value.Str p))) in
  Alcotest.(check bool) "prefix" true (eval (like "hello" "he%") = Value.Bool true);
  Alcotest.(check bool) "underscore" true (eval (like "cat" "c_t") = Value.Bool true);
  Alcotest.(check bool) "middle" true (eval (like "xyz" "%y%") = Value.Bool true);
  Alcotest.(check bool) "no match" true (eval (like "abc" "b%") = Value.Bool false);
  Alcotest.(check bool) "empty pattern vs empty" true (eval (like "" "") = Value.Bool true);
  Alcotest.(check bool) "percent matches empty" true (eval (like "" "%") = Value.Bool true)

let test_in_list_unknown () =
  (* 1 IN (2, NULL) is UNKNOWN; 1 IN (1, NULL) is TRUE *)
  let e items = Expr.(In_list (Lit (Value.Int 1), List.map (fun v -> Expr.Lit v) items)) in
  Alcotest.(check bool) "unknown" true (eval (e [ Value.Int 2; Value.Null ]) = Value.Null);
  Alcotest.(check bool) "found" true (eval (e [ Value.Int 1; Value.Null ]) = Value.Bool true);
  Alcotest.(check bool) "not found" true (eval (e [ Value.Int 2; Value.Int 3 ]) = Value.Bool false)

let test_case () =
  let c =
    Expr.(
      Case
        ( [ (Cmp (Gt, Col 0, Lit (Value.Int 100)), Lit (Value.Str "big"));
            (Cmp (Gt, Col 0, Lit (Value.Int 5)), Lit (Value.Str "mid")) ],
          Some (Lit (Value.Str "small")) ))
  in
  Alcotest.(check bool) "case picks mid" true (eval c = Value.Str "mid")

let test_functions () =
  Alcotest.(check bool) "lower" true
    (eval Expr.(Fn ("LOWER", [ Lit (Value.Str "ABC") ])) = Value.Str "abc");
  Alcotest.(check bool) "length" true (eval Expr.(Fn ("length", [ Col 1 ])) = Value.Int 3);
  Alcotest.(check bool) "abs" true (eval Expr.(Fn ("abs", [ Lit (Value.Int (-4)) ])) = Value.Int 4);
  Alcotest.(check bool) "coalesce" true
    (eval Expr.(Fn ("coalesce", [ Col 2; Lit (Value.Int 7) ])) = Value.Int 7)

let test_shift_and_map_cols () =
  let e = Expr.(Cmp (Eq, Col 1, Arith (Add, Col 0, Lit (Value.Int 1)))) in
  let shifted = Expr.shift 3 e in
  Alcotest.(check (list int)) "shifted cols" [ 3; 4 ] (Expr.cols shifted);
  let mapped = Expr.map_cols (fun i -> i * 10) e in
  Alcotest.(check (list int)) "mapped cols" [ 0; 10 ] (Expr.cols mapped)

let test_conjuncts_roundtrip () =
  let a = Expr.Lit (Value.Bool true)
  and b = Expr.(Cmp (Eq, Col 0, Col 1))
  and c = Expr.(Is_null (Col 2)) in
  let e = Expr.And (Expr.And (a, b), c) in
  Alcotest.(check int) "three conjuncts" 3 (List.length (Expr.conjuncts e));
  let rebuilt = Expr.conjoin (Expr.conjuncts e) in
  Alcotest.(check int) "rebuild count" 3 (List.length (Expr.conjuncts rebuilt))

let test_subst_params () =
  let e = Expr.(Cmp (Eq, Col 0, Param 1)) in
  Alcotest.(check bool) "has param" true (Expr.has_param e);
  let s = Expr.subst_params [| Value.Int 0; Value.Int 10 |] e in
  Alcotest.(check bool) "no param after subst" false (Expr.has_param s);
  Alcotest.(check bool) "evaluates" true (Expr.eval row s = Value.Bool true)

let test_scalar_subplan () =
  let sp =
    { Expr.sp_eval = (fun _ -> List.to_seq [ [| Value.Int 99 |] ]); sp_descr = "test";
      sp_ty = Expr.Hint_int }
  in
  Alcotest.(check bool) "scalar" true (eval (Expr.Scalar_plan sp) = Value.Int 99);
  let empty = { sp with Expr.sp_eval = (fun _ -> Seq.empty) } in
  Alcotest.(check bool) "empty scalar is null" true (eval (Expr.Scalar_plan empty) = Value.Null);
  Alcotest.(check bool) "exists" true (eval (Expr.Exists_plan sp) = Value.Bool true);
  Alcotest.(check bool) "not exists" true (eval (Expr.Exists_plan empty) = Value.Bool false)

let test_in_plan_null_semantics () =
  let sp vals =
    { Expr.sp_eval = (fun _ -> List.to_seq (List.map (fun v -> [| v |]) vals)); sp_descr = "t";
      sp_ty = Expr.Hint_int }
  in
  Alcotest.(check bool) "in finds" true
    (eval (Expr.In_plan (Expr.Col 0, sp [ Value.Int 10 ])) = Value.Bool true);
  Alcotest.(check bool) "in with null is unknown" true
    (eval (Expr.In_plan (Expr.Col 0, sp [ Value.Int 1; Value.Null ])) = Value.Null);
  Alcotest.(check bool) "in empty is false" true
    (eval (Expr.In_plan (Expr.Col 0, sp [])) = Value.Bool false)

let suite =
  [ Alcotest.test_case "column and literal" `Quick test_col_and_lit;
    Alcotest.test_case "comparison 3VL" `Quick test_cmp_3vl;
    Alcotest.test_case "AND/OR with UNKNOWN" `Quick test_and_or_short_3vl;
    Alcotest.test_case "IS NULL" `Quick test_is_null;
    Alcotest.test_case "LIKE patterns" `Quick test_like;
    Alcotest.test_case "IN list with NULL" `Quick test_in_list_unknown;
    Alcotest.test_case "CASE" `Quick test_case;
    Alcotest.test_case "scalar functions" `Quick test_functions;
    Alcotest.test_case "shift and map_cols" `Quick test_shift_and_map_cols;
    Alcotest.test_case "conjuncts/conjoin" `Quick test_conjuncts_roundtrip;
    Alcotest.test_case "parameter substitution" `Quick test_subst_params;
    Alcotest.test_case "scalar/exists subplans" `Quick test_scalar_subplan;
    Alcotest.test_case "IN subplan NULL semantics" `Quick test_in_plan_null_semantics ]
