(* Unit tests: CSV import/export. *)

open Relational

let mk_db () =
  let db = Db.create () in
  ignore
    (Db.exec db
       "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR, score FLOAT, ok BOOLEAN)");
  db

let test_roundtrip () =
  let db = mk_db () in
  ignore
    (Db.exec db
       "INSERT INTO t VALUES (1, 'plain', 1.5, TRUE), (2, 'with,comma', NULL, FALSE), \
        (3, 'with \"quotes\"', 2.25, TRUE), (4, '', NULL, NULL), (5, NULL, 0.5, FALSE)");
  let table = Catalog.table (Db.catalog db) "t" in
  let csv = Csv_io.export table in
  (* re-import into a fresh database *)
  let db2 = mk_db () in
  let table2 = Catalog.table (Db.catalog db2) "t" in
  let n = Csv_io.import db2 table2 csv in
  Alcotest.(check int) "five rows" 5 n;
  let a = List.sort Row.compare (Table.rows table) in
  let b = List.sort Row.compare (Table.rows table2) in
  List.iter2 (fun x y -> Alcotest.(check bool) "row round-trips" true (Row.equal x y)) a b

let test_null_vs_empty_string () =
  let db = mk_db () in
  let table = Catalog.table (Db.catalog db) "t" in
  ignore (Csv_io.import db table "id,name,score,ok\n1,,,\n2,\"\",,\n");
  let rows = Db.rows_of db "SELECT name FROM t ORDER BY id" in
  Alcotest.(check bool) "unquoted empty is NULL" true (Value.is_null (List.nth rows 0).(0));
  Alcotest.(check bool) "quoted empty is ''" true
    (Value.equal (List.nth rows 1).(0) (Value.Str ""))

let test_quoting_edge_cases () =
  let parsed = Csv_io.parse "a,\"b\"\"c\",\"multi\nline\"\n" in
  match parsed with
  | [ [ Some "a"; Some "b\"c"; Some "multi\nline" ] ] -> ()
  | _ -> Alcotest.fail "quoting parse wrong"

let test_crlf_and_no_trailing_newline () =
  let parsed = Csv_io.parse "a,b\r\nc,d" in
  Alcotest.(check int) "two rows" 2 (List.length parsed)

let test_errors () =
  let db = mk_db () in
  let table = Catalog.table (Db.catalog db) "t" in
  (try
     ignore (Csv_io.import db table "id,name,score,ok\nnotanint,x,1.0,true\n");
     Alcotest.fail "expected type error"
   with Csv_io.Csv_error _ -> ());
  (try
     ignore (Csv_io.import db table "id,name,score,ok\n1,onlytwo\n");
     Alcotest.fail "expected arity error"
   with Csv_io.Csv_error _ -> ());
  try
    ignore (Csv_io.parse "\"unterminated\n");
    Alcotest.fail "expected parse error"
  with Csv_io.Csv_error _ -> ()

let test_import_respects_pk () =
  let db = mk_db () in
  let table = Catalog.table (Db.catalog db) "t" in
  try
    ignore (Csv_io.import db table "id,name,score,ok\n1,a,,\n1,b,,\n");
    Alcotest.fail "expected duplicate key"
  with Db.Exec_error _ -> ()

let suite =
  [ Alcotest.test_case "export/import round-trip" `Quick test_roundtrip;
    Alcotest.test_case "NULL vs empty string" `Quick test_null_vs_empty_string;
    Alcotest.test_case "quoting edge cases" `Quick test_quoting_edge_cases;
    Alcotest.test_case "CRLF and missing trailing newline" `Quick test_crlf_and_no_trailing_newline;
    Alcotest.test_case "import errors" `Quick test_errors;
    Alcotest.test_case "import respects primary keys" `Quick test_import_respects_pk ]
