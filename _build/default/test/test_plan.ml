(* Unit tests: physical operators, constructed directly. *)

open Relational

let mk_table name rows_spec =
  let cols = List.map (fun (n, ty) -> Schema.column n ty) rows_spec in
  Table.create ~name (Schema.make cols)

let fill t rows = List.iter (fun r -> ignore (Table.insert t (Array.of_list r))) rows

let run p = List.of_seq (Plan.run p)

let ab () =
  let a = mk_table "a" [ ("x", Schema.Ty_int); ("y", Schema.Ty_int) ] in
  fill a [ [ Value.Int 1; Value.Int 10 ]; [ Value.Int 2; Value.Int 20 ]; [ Value.Int 3; Value.Int 30 ] ];
  let b = mk_table "b" [ ("u", Schema.Ty_int); ("v", Schema.Ty_string) ] in
  fill b [ [ Value.Int 1; Value.Str "one" ]; [ Value.Int 3; Value.Str "three" ];
           [ Value.Int 4; Value.Str "four" ] ];
  (a, b)

let test_scan_filter_project () =
  let a, _ = ab () in
  let p =
    Plan.Project
      ( Plan.Filter (Plan.Seq_scan a, Expr.(Cmp (Ge, Col 1, Lit (Value.Int 20)))),
        [| Expr.Col 0 |] )
  in
  Alcotest.(check int) "two rows" 2 (List.length (run p));
  Alcotest.(check bool) "projected" true (Row.equal (List.hd (run p)) [| Value.Int 2 |])

let nl kind a b pred =
  Plan.Nl_join { kind; left = Plan.Seq_scan a; right = Plan.Seq_scan b; pred;
                 right_width = Schema.arity (Table.schema b) }

let eq_pred = Expr.(Cmp (Eq, Col 0, Col 2))

let test_nl_join_kinds () =
  let a, b = ab () in
  Alcotest.(check int) "inner: 2 matches" 2 (List.length (run (nl Plan.Inner a b (Some eq_pred))));
  let left = run (nl Plan.Left a b (Some eq_pred)) in
  Alcotest.(check int) "left: all 3" 3 (List.length left);
  let unmatched = List.find (fun r -> Value.equal r.(0) (Value.Int 2)) left in
  Alcotest.(check bool) "padded with nulls" true
    (Value.is_null unmatched.(2) && Value.is_null unmatched.(3));
  Alcotest.(check int) "semi: 2" 2 (List.length (run (nl Plan.Semi a b (Some eq_pred))));
  let anti = run (nl Plan.Anti a b (Some eq_pred)) in
  Alcotest.(check int) "anti: 1" 1 (List.length anti);
  Alcotest.(check bool) "anti keeps x=2" true (Value.equal (List.hd anti).(0) (Value.Int 2));
  Alcotest.(check bool) "semi/anti keep left arity" true
    (Array.length (List.hd anti) = 2)

let hash kind a b =
  Plan.Hash_join
    { kind; left = Plan.Seq_scan a; right = Plan.Seq_scan b; left_keys = [ Expr.Col 0 ];
      right_keys = [ Expr.Col 0 ]; extra = None; right_width = Schema.arity (Table.schema b) }

let test_hash_join_matches_nl () =
  let a, b = ab () in
  List.iter
    (fun kind ->
      let h = List.sort Row.compare (run (hash kind a b)) in
      let n = List.sort Row.compare (run (nl kind a b (Some eq_pred))) in
      Alcotest.(check int) "same cardinality" (List.length n) (List.length h);
      List.iter2 (fun x y -> Alcotest.(check bool) "same rows" true (Row.equal x y)) n h)
    [ Plan.Inner; Plan.Left; Plan.Semi; Plan.Anti ]

let test_hash_join_null_keys_never_match () =
  let a = mk_table "a" [ ("x", Schema.Ty_int) ] in
  fill a [ [ Value.Null ]; [ Value.Int 1 ] ];
  let b = mk_table "b" [ ("u", Schema.Ty_int) ] in
  fill b [ [ Value.Null ]; [ Value.Int 1 ] ];
  let p =
    Plan.Hash_join
      { kind = Plan.Inner; left = Plan.Seq_scan a; right = Plan.Seq_scan b;
        left_keys = [ Expr.Col 0 ]; right_keys = [ Expr.Col 0 ]; extra = None; right_width = 1 }
  in
  Alcotest.(check int) "only 1=1" 1 (List.length (run p))

let test_index_scan_and_join () =
  let a, b = ab () in
  let idx = Table.add_index b ~name:"b_u" ~cols:[| 0 |] Index.Hash in
  let scan = Plan.Index_scan { table = b; index = idx; key = [ Expr.Lit (Value.Int 3) ] } in
  Alcotest.(check int) "point lookup" 1 (List.length (run scan));
  let j =
    Plan.Index_nl_join
      { kind = Plan.Inner; left = Plan.Seq_scan a; table = b; index = idx;
        key_of_left = [ Expr.Col 0 ]; extra = None; right_width = 2 }
  in
  let h = List.sort Row.compare (run (hash Plan.Inner a b)) in
  let ij = List.sort Row.compare (run j) in
  Alcotest.(check int) "index join = hash join" (List.length h) (List.length ij);
  List.iter2 (fun x y -> Alcotest.(check bool) "rows agree" true (Row.equal x y)) h ij

let test_group () =
  let a = mk_table "a" [ ("g", Schema.Ty_string); ("v", Schema.Ty_int) ] in
  fill a
    [ [ Value.Str "x"; Value.Int 1 ]; [ Value.Str "y"; Value.Int 2 ]; [ Value.Str "x"; Value.Int 3 ];
      [ Value.Str "x"; Value.Null ] ];
  let p =
    Plan.Group
      { input = Plan.Seq_scan a; keys = [ Expr.Col 0 ];
        aggs =
          [ (Expr.Count_star, None, false); (Expr.Count, Some (Expr.Col 1), false);
            (Expr.Sum, Some (Expr.Col 1), false); (Expr.Avg, Some (Expr.Col 1), false);
            (Expr.Min, Some (Expr.Col 1), false); (Expr.Max, Some (Expr.Col 1), false) ] }
  in
  let rows = run p in
  Alcotest.(check int) "two groups" 2 (List.length rows);
  let x = List.find (fun r -> Value.equal r.(0) (Value.Str "x")) rows in
  Alcotest.(check bool) "count*" true (Value.equal x.(1) (Value.Int 3));
  Alcotest.(check bool) "count v skips null" true (Value.equal x.(2) (Value.Int 2));
  Alcotest.(check bool) "sum" true (Value.equal x.(3) (Value.Int 4));
  Alcotest.(check bool) "avg" true (Value.equal x.(4) (Value.Float 2.0));
  Alcotest.(check bool) "min" true (Value.equal x.(5) (Value.Int 1));
  Alcotest.(check bool) "max" true (Value.equal x.(6) (Value.Int 3))

let test_group_global_empty () =
  let a = mk_table "a" [ ("v", Schema.Ty_int) ] in
  let p =
    Plan.Group
      { input = Plan.Seq_scan a; keys = [];
        aggs = [ (Expr.Count_star, None, false); (Expr.Sum, Some (Expr.Col 0), false) ] }
  in
  match run p with
  | [ row ] ->
    Alcotest.(check bool) "count 0" true (Value.equal row.(0) (Value.Int 0));
    Alcotest.(check bool) "sum null" true (Value.is_null row.(1))
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let test_sort_distinct_limit_union () =
  let a = mk_table "a" [ ("v", Schema.Ty_int) ] in
  fill a [ [ Value.Int 3 ]; [ Value.Int 1 ]; [ Value.Int 3 ]; [ Value.Null ]; [ Value.Int 2 ] ];
  let sorted = run (Plan.Sort { input = Plan.Seq_scan a; keys = [ (Expr.Col 0, Sql_ast.Asc) ] }) in
  Alcotest.(check bool) "nulls first" true (Value.is_null (List.hd sorted).(0));
  let desc = run (Plan.Sort { input = Plan.Seq_scan a; keys = [ (Expr.Col 0, Sql_ast.Desc) ] }) in
  Alcotest.(check bool) "desc starts at 3" true (Value.equal (List.hd desc).(0) (Value.Int 3));
  Alcotest.(check int) "distinct" 4 (List.length (run (Plan.Distinct (Plan.Seq_scan a))));
  Alcotest.(check int) "limit" 2 (List.length (run (Plan.Limit (Plan.Seq_scan a, 2))));
  Alcotest.(check int) "union all" 10
    (List.length (run (Plan.Union_all (Plan.Seq_scan a, Plan.Seq_scan a))))

let test_params () =
  let a, b = ab () in
  ignore b;
  let p = Plan.Filter (Plan.Seq_scan a, Expr.(Cmp (Eq, Col 0, Param 0))) in
  Alcotest.(check bool) "has params" true (Plan.has_params p);
  let bound = Plan.subst_params [| Value.Int 2 |] p in
  Alcotest.(check bool) "no params" false (Plan.has_params bound);
  Alcotest.(check int) "one row" 1 (List.length (run bound));
  Alcotest.(check int) "run_with_params" 1
    (List.length (List.of_seq (Plan.run_with_params [| Value.Int 2 |] p)))

let test_values_materialize () =
  let p = Plan.Values [ [| Value.Int 1 |]; [| Value.Int 2 |] ] in
  Alcotest.(check int) "two rows" 2 (List.length (run p))

let suite =
  [ Alcotest.test_case "scan/filter/project" `Quick test_scan_filter_project;
    Alcotest.test_case "NL join kinds" `Quick test_nl_join_kinds;
    Alcotest.test_case "hash join = NL join" `Quick test_hash_join_matches_nl;
    Alcotest.test_case "NULL keys never match" `Quick test_hash_join_null_keys_never_match;
    Alcotest.test_case "index scan and index NL join" `Quick test_index_scan_and_join;
    Alcotest.test_case "group aggregates" `Quick test_group;
    Alcotest.test_case "global aggregate over empty" `Quick test_group_global_empty;
    Alcotest.test_case "sort/distinct/limit/union" `Quick test_sort_distinct_limit_union;
    Alcotest.test_case "parameter substitution" `Quick test_params;
    Alcotest.test_case "values" `Quick test_values_materialize ]
