(* Unit tests: updatability analysis (§3.7). *)

open Relational

let mk_catalog () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "CREATE TABLE empproj (epeno INTEGER, eppno INTEGER, percentage INTEGER)" ];
  Db.catalog db

let analyze cat s = Xnf.Semantic.analyze_node_query cat (Sql_parser.parse_select s)

let test_node_star () =
  let cat = mk_catalog () in
  match analyze cat "SELECT * FROM emp" with
  | Some u ->
    Alcotest.(check string) "base" "emp" u.Xnf.Semantic.nu_table;
    Alcotest.(check (array int)) "identity map" [| 0; 1; 2; 3 |] u.Xnf.Semantic.nu_col_map
  | None -> Alcotest.fail "star select should be updatable"

let test_node_column_projection () =
  let cat = mk_catalog () in
  match analyze cat "SELECT ename, sal FROM emp" with
  | Some u -> Alcotest.(check (array int)) "col map" [| 1; 2 |] u.Xnf.Semantic.nu_col_map
  | None -> Alcotest.fail "column projection should be updatable"

let test_node_restriction_wrapper () =
  let cat = mk_catalog () in
  (* the shape View_registry produces when folding node restrictions *)
  match analyze cat "SELECT * FROM (SELECT * FROM emp WHERE sal > 100) e WHERE e.sal < 900" with
  | Some u -> Alcotest.(check string) "unwraps to emp" "emp" u.Xnf.Semantic.nu_table
  | None -> Alcotest.fail "wrapped restriction should stay updatable"

let test_node_not_updatable () =
  let cat = mk_catalog () in
  Alcotest.(check bool) "join" true (analyze cat "SELECT * FROM emp, dept" = None);
  Alcotest.(check bool) "group" true (analyze cat "SELECT edno FROM emp GROUP BY edno" = None);
  Alcotest.(check bool) "distinct" true (analyze cat "SELECT DISTINCT sal FROM emp" = None);
  Alcotest.(check bool) "expression item" true (analyze cat "SELECT sal + 1 FROM emp" = None);
  Alcotest.(check bool) "alias rename" true (analyze cat "SELECT sal AS pay FROM emp" = None);
  Alcotest.(check bool) "unknown table" true (analyze cat "SELECT * FROM nosuch" = None)

let edge_def ?using ?(attrs = []) pred =
  { Xnf.Co_schema.ed_name = "e"; ed_parent = "xdept"; ed_child = "xemp";
    ed_parent_alias = "xdept"; ed_child_alias = "xemp"; ed_using = using; ed_attrs = attrs;
    ed_pred = Sql_parser.parse_expr_string pred }

let schemas cat =
  let dept = Schema.requalify "" (Table.schema (Catalog.table cat "dept")) in
  let emp = Schema.requalify "" (Table.schema (Catalog.table cat "emp")) in
  (dept, emp)

let test_edge_fk () =
  let cat = mk_catalog () in
  let dept, emp = schemas cat in
  match
    Xnf.Semantic.analyze_edge cat (edge_def "xdept.dno = xemp.edno") ~parent_schema:dept
      ~child_schema:emp
  with
  | Xnf.Semantic.Upd_fk { fk_parent_col = 0; fk_child_col = 3 } -> ()
  | _ -> Alcotest.fail "expected FK updatability"

let test_edge_fk_flipped () =
  let cat = mk_catalog () in
  let dept, emp = schemas cat in
  (* equality written child-first still resolves: FK stays on the child *)
  match
    Xnf.Semantic.analyze_edge cat (edge_def "xemp.edno = xdept.dno") ~parent_schema:dept
      ~child_schema:emp
  with
  | Xnf.Semantic.Upd_fk { fk_parent_col = 0; fk_child_col = 3 } -> ()
  | _ -> Alcotest.fail "expected FK updatability"

let test_edge_link () =
  let cat = mk_catalog () in
  let dept, emp = schemas cat in
  match
    Xnf.Semantic.analyze_edge cat
      (edge_def ~using:("empproj", "ep")
         ~attrs:[ (Sql_parser.parse_expr_string "ep.percentage", "percentage") ]
         "xdept.dno = ep.eppno AND xemp.eno = ep.epeno")
      ~parent_schema:dept ~child_schema:emp
  with
  | Xnf.Semantic.Upd_link { link_table = "empproj"; parent_bind = [ ("eppno", 0) ];
                            child_bind = [ ("epeno", 0) ]; attr_cols = [ ("percentage", 0) ] } ->
    ()
  | Xnf.Semantic.Upd_link _ -> Alcotest.fail "link bindings wrong"
  | _ -> Alcotest.fail "expected link updatability"

let test_edge_readonly_cases () =
  let cat = mk_catalog () in
  let dept, emp = schemas cat in
  let readonly def =
    match Xnf.Semantic.analyze_edge cat def ~parent_schema:dept ~child_schema:emp with
    | Xnf.Semantic.Upd_readonly _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "inequality" true (readonly (edge_def "xdept.dno < xemp.edno"));
  Alcotest.(check bool) "composite without USING" true
    (readonly (edge_def "xdept.dno = xemp.edno AND xdept.budget > xemp.sal"));
  Alcotest.(check bool) "expression predicate" true
    (readonly (edge_def "xdept.dno = xemp.edno + 1"));
  (* projected-away FK column makes the edge read-only *)
  let narrow_emp = Schema.make [ Schema.column "eno" Schema.Ty_int ] in
  match
    Xnf.Semantic.analyze_edge cat (edge_def "xdept.dno = xemp.edno") ~parent_schema:dept
      ~child_schema:narrow_emp
  with
  | Xnf.Semantic.Upd_readonly _ -> ()
  | _ -> Alcotest.fail "projected FK should be read-only"

let test_relationship_columns () =
  let cat = mk_catalog () in
  let dept, emp = schemas cat in
  let pcols, ccols =
    Xnf.Semantic.relationship_columns (edge_def "xdept.dno = xemp.edno") ~parent_schema:dept
      ~child_schema:emp
  in
  Alcotest.(check (list int)) "parent cols" [ 0 ] pcols;
  Alcotest.(check (list int)) "child cols" [ 3 ] ccols

let suite =
  [ Alcotest.test_case "node: star select" `Quick test_node_star;
    Alcotest.test_case "node: column projection" `Quick test_node_column_projection;
    Alcotest.test_case "node: restriction wrapper" `Quick test_node_restriction_wrapper;
    Alcotest.test_case "node: non-updatable shapes" `Quick test_node_not_updatable;
    Alcotest.test_case "edge: FK form" `Quick test_edge_fk;
    Alcotest.test_case "edge: FK form, flipped equality" `Quick test_edge_fk_flipped;
    Alcotest.test_case "edge: USING link form" `Quick test_edge_link;
    Alcotest.test_case "edge: read-only cases" `Quick test_edge_readonly_cases;
    Alcotest.test_case "relationship columns" `Quick test_relationship_columns ]
