(* Unit tests: CO schema graphs (§2) — structure, well-formedness,
   recursion, sharing, projection. *)

open Xnf

let nd name query =
  { Co_schema.nd_name = name; nd_query = Relational.Sql_parser.parse_select query; nd_cols = None }

let ed name parent child pred =
  { Co_schema.ed_name = name; ed_parent = parent; ed_child = child; ed_parent_alias = parent;
    ed_child_alias = child; ed_using = None; ed_attrs = [];
    ed_pred = Relational.Sql_parser.parse_expr_string pred }

let sample () =
  (* dept -> emp, dept -> proj, emp -> skill, proj -> skill (Fig. 1) *)
  let def = Co_schema.empty in
  let def = Co_schema.add_node def (nd "xdept" "SELECT * FROM dept") in
  let def = Co_schema.add_node def (nd "xemp" "SELECT * FROM emp") in
  let def = Co_schema.add_node def (nd "xproj" "SELECT * FROM proj") in
  let def = Co_schema.add_node def (nd "xskill" "SELECT * FROM skills") in
  let def = Co_schema.add_edge def (ed "employment" "xdept" "xemp" "xdept.dno = xemp.edno") in
  let def = Co_schema.add_edge def (ed "ownership" "xdept" "xproj" "xdept.dno = xproj.pdno") in
  let def = Co_schema.add_edge def (ed "empskill" "xemp" "xskill" "xemp.eno = xskill.sno") in
  let def = Co_schema.add_edge def (ed "projskill" "xproj" "xskill" "xproj.pno = xskill.sno") in
  def

let test_roots () =
  let def = sample () in
  Alcotest.(check (list string)) "dept is the only root" [ "xdept" ]
    (List.map (fun n -> n.Co_schema.nd_name) (Co_schema.roots def))

let test_incoming_outgoing () =
  let def = sample () in
  Alcotest.(check int) "skill has two incoming" 2 (List.length (Co_schema.incoming def "xskill"));
  Alcotest.(check int) "dept has two outgoing" 2 (List.length (Co_schema.outgoing def "xdept"));
  Alcotest.(check int) "dept has no incoming" 0 (List.length (Co_schema.incoming def "xdept"))

let test_sharing_and_recursion () =
  let def = sample () in
  Alcotest.(check bool) "schema sharing (skill)" true (Co_schema.has_schema_sharing def);
  Alcotest.(check bool) "not recursive" false (Co_schema.is_recursive def);
  (* close a cycle: skill -> emp *)
  let cyclic = Co_schema.add_edge def (ed "back" "xskill" "xemp" "xskill.sno = xemp.eno") in
  Alcotest.(check bool) "recursive after back edge" true (Co_schema.is_recursive cyclic);
  Alcotest.(check bool) "no topo order for recursive" true (Co_schema.topo_order cyclic = None)

let test_topo_order () =
  let def = sample () in
  match Co_schema.topo_order def with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
    let pos n =
      let rec go i = function
        | [] -> Alcotest.failf "%s missing from order" n
        | x :: _ when String.equal x n -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 order
    in
    Alcotest.(check bool) "dept before emp" true (pos "xdept" < pos "xemp");
    Alcotest.(check bool) "emp before skill" true (pos "xemp" < pos "xskill");
    Alcotest.(check bool) "proj before skill" true (pos "xproj" < pos "xskill")

let test_well_formedness () =
  (* an edge may only relate component tables *)
  let def = Co_schema.add_node Co_schema.empty (nd "a" "SELECT * FROM a") in
  (try
     ignore (Co_schema.add_edge def (ed "e" "a" "missing" "a.x = missing.y"));
     Alcotest.fail "expected schema error"
   with Co_schema.Schema_error _ -> ());
  (* duplicate component names are rejected, across nodes and edges *)
  (try
     ignore (Co_schema.add_node def (nd "a" "SELECT * FROM other"));
     Alcotest.fail "expected duplicate error"
   with Co_schema.Schema_error _ -> ());
  let def2 = Co_schema.add_node def (nd "b" "SELECT * FROM b") in
  let def2 = Co_schema.add_edge def2 (ed "a_b" "a" "b" "a.x = b.y") in
  try
    ignore (Co_schema.add_node def2 (nd "a_b" "SELECT * FROM c"));
    Alcotest.fail "expected duplicate edge/node name error"
  with Co_schema.Schema_error _ -> ()

let test_validate_requires_root () =
  let def = Co_schema.add_node Co_schema.empty (nd "a" "SELECT * FROM a") in
  let def = Co_schema.add_node def (nd "b" "SELECT * FROM b") in
  let def = Co_schema.add_edge def (ed "ab" "a" "b" "a.x = b.y") in
  let def = Co_schema.add_edge def (ed "ba" "b" "a" "b.y = a.x") in
  try
    Co_schema.validate def;
    Alcotest.fail "expected no-root error"
  with Co_schema.Schema_error _ -> ()

let test_merge () =
  let left = Co_schema.add_node Co_schema.empty (nd "a" "SELECT * FROM a") in
  let right = Co_schema.add_node Co_schema.empty (nd "b" "SELECT * FROM b") in
  let merged = Co_schema.merge left right in
  Alcotest.(check int) "two nodes" 2 (List.length merged.Co_schema.co_nodes);
  try
    ignore (Co_schema.merge left left);
    Alcotest.fail "expected clash"
  with Co_schema.Schema_error _ -> ()

let test_projection_drops_incident_edges () =
  let def = sample () in
  let take =
    Xnf_ast.Take_items
      [ Xnf_ast.Take_node ("xdept", Xnf_ast.Take_all_cols);
        Xnf_ast.Take_node ("xemp", Xnf_ast.Take_all_cols); Xnf_ast.Take_edge "employment" ]
  in
  let projected = Co_schema.project def take in
  Alcotest.(check int) "two nodes" 2 (List.length projected.Co_schema.co_nodes);
  Alcotest.(check int) "one edge" 1 (List.length projected.Co_schema.co_edges);
  Alcotest.(check bool) "ownership gone" true (Co_schema.edge_opt projected "ownership" = None)

let test_projection_keeps_edge_without_partner_fails () =
  let def = sample () in
  let take =
    Xnf_ast.Take_items
      [ Xnf_ast.Take_node ("xdept", Xnf_ast.Take_all_cols); Xnf_ast.Take_edge "employment" ]
  in
  try
    ignore (Co_schema.project def take);
    Alcotest.fail "expected well-formedness error"
  with Co_schema.Schema_error _ -> ()

let test_projection_column_list () =
  let def = sample () in
  let take =
    Xnf_ast.Take_items [ Xnf_ast.Take_node ("xdept", Xnf_ast.Take_cols [ "dno"; "dname" ]) ]
  in
  let projected = Co_schema.project def take in
  match (Co_schema.node projected "xdept").Co_schema.nd_cols with
  | Some [ "dno"; "dname" ] -> ()
  | _ -> Alcotest.fail "column projection not recorded"

let test_projection_unknown_component () =
  let def = sample () in
  try
    ignore (Co_schema.project def (Xnf_ast.Take_items [ Xnf_ast.Take_edge "nope" ]));
    Alcotest.fail "expected unknown component error"
  with Co_schema.Schema_error _ -> ()

let suite =
  [ Alcotest.test_case "roots" `Quick test_roots;
    Alcotest.test_case "incoming/outgoing" `Quick test_incoming_outgoing;
    Alcotest.test_case "sharing and recursion" `Quick test_sharing_and_recursion;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "edge well-formedness" `Quick test_well_formedness;
    Alcotest.test_case "validation requires a root" `Quick test_validate_requires_root;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "projection drops incident edges" `Quick test_projection_drops_incident_edges;
    Alcotest.test_case "projection cannot orphan an edge" `Quick
      test_projection_keeps_edge_without_partner_fails;
    Alcotest.test_case "projection column list" `Quick test_projection_column_list;
    Alcotest.test_case "projection unknown component" `Quick test_projection_unknown_component ]
