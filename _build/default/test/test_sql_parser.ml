(* Unit tests: SQL lexer and parser, including pretty-print round trips. *)

open Relational

let parses s =
  match Sql_parser.parse_stmt s with
  | _ -> true
  | exception Sql_lexer.Parse_error _ -> false

let roundtrip s =
  (* parse, print, re-parse: the two ASTs must agree *)
  let ast1 = Sql_parser.parse_stmt s in
  let printed = Sql_ast.stmt_to_string ast1 in
  let ast2 = Sql_parser.parse_stmt printed in
  ast1 = ast2

let test_lexer_basics () =
  let toks = Sql_lexer.tokenize "SELECT a, 'it''s', 3.5, 42 FROM t WHERE x <= 1" in
  Alcotest.(check bool) "keyword" true (Array.exists (fun t -> t = Sql_lexer.KW "SELECT") toks);
  Alcotest.(check bool) "string escape" true
    (Array.exists (fun t -> t = Sql_lexer.STRING "it's") toks);
  Alcotest.(check bool) "float" true (Array.exists (fun t -> t = Sql_lexer.FLOAT 3.5) toks);
  Alcotest.(check bool) "le" true (Array.exists (fun t -> t = Sql_lexer.SYM "<=") toks)

let test_lexer_hyphenated_names () =
  (* the paper spells view names like ALL-DEPS *)
  let toks = Sql_lexer.tokenize "ALL-DEPS" in
  Alcotest.(check bool) "one identifier" true (toks.(0) = Sql_lexer.IDENT "all-deps");
  (* but digits after a hyphen terminate the identifier (arithmetic) *)
  let toks2 = Sql_lexer.tokenize "budget-100" in
  Alcotest.(check int) "three tokens + eof" 4 (Array.length toks2)

let test_lexer_comments () =
  let toks = Sql_lexer.tokenize "SELECT a -- trailing comment\nFROM t" in
  Alcotest.(check bool) "comment skipped" true
    (not (Array.exists (fun t -> t = Sql_lexer.IDENT "trailing") toks))

let test_select_forms () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (parses s))
    [ "SELECT * FROM t";
      "SELECT DISTINCT a, b AS bee FROM t WHERE a > 1";
      "SELECT t.* FROM t";
      "SELECT a FROM t1, t2 WHERE t1.x = t2.y";
      "SELECT a FROM t1 JOIN t2 ON t1.x = t2.y LEFT JOIN t3 ON t2.z = t3.w";
      "SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a HAVING COUNT(*) > 2";
      "SELECT a FROM t ORDER BY a DESC, b LIMIT 10";
      "SELECT a FROM t WHERE b IN (1, 2, 3)";
      "SELECT a FROM t WHERE b IN (SELECT c FROM u)";
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.a)";
      "SELECT a FROM t WHERE b BETWEEN 1 AND 10";
      "SELECT a FROM t WHERE name LIKE 'ab%' AND x IS NOT NULL";
      "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t";
      "SELECT a FROM (SELECT * FROM t) sub WHERE sub.a = 1";
      "SELECT (SELECT MAX(x) FROM u) FROM t" ]

let test_dml_ddl_forms () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (parses s))
    [ "INSERT INTO t VALUES (1, 'a'), (2, 'b')";
      "INSERT INTO t (a, b) VALUES (1, 2)";
      "UPDATE t SET a = a + 1, b = 'x' WHERE c < 3";
      "DELETE FROM t WHERE a = 1";
      "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(30) NOT NULL, f FLOAT, b BOOLEAN)";
      "CREATE INDEX i ON t (a, b) USING ORDERED";
      "CREATE VIEW v AS SELECT a FROM t";
      "DROP TABLE t";
      "DROP VIEW v";
      "BEGIN";
      "COMMIT";
      "ROLLBACK" ]

let test_precedence () =
  (* a OR b AND c parses as a OR (b AND c) *)
  match Sql_parser.parse_expr_string "x = 1 OR y = 2 AND z = 3" with
  | Sql_ast.E_or (_, Sql_ast.E_and (_, _)) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_arith_precedence () =
  (* 1 + 2 * 3 = 1 + (2 * 3) *)
  match Sql_parser.parse_expr_string "1 + 2 * 3" with
  | Sql_ast.E_arith (Expr.Add, _, Sql_ast.E_arith (Expr.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "arith precedence wrong"

let test_not_in () =
  match Sql_parser.parse_expr_string "a NOT IN (1, 2)" with
  | Sql_ast.E_not (Sql_ast.E_in_list _) -> ()
  | _ -> Alcotest.fail "NOT IN wrong"

let test_roundtrips () =
  List.iter
    (fun s -> Alcotest.(check bool) ("roundtrip: " ^ s) true (roundtrip s))
    [ "SELECT DISTINCT a, b AS bee FROM t WHERE (a > 1) AND (b LIKE 'x%')";
      "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5";
      "SELECT t1.a FROM t1 LEFT JOIN t2 ON t1.x = t2.y";
      "INSERT INTO t (a, b) VALUES (1, 'it''s')";
      "UPDATE t SET a = (a + 1) WHERE c IS NULL";
      "DELETE FROM t WHERE a IN (SELECT b FROM u)";
      "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR)";
      "CREATE VIEW v AS SELECT a FROM t WHERE a > 0";
      "SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM w ORDER BY 1 LIMIT 3" ]

let test_errors () =
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects: " ^ s) false (parses s))
    [ "SELECT"; "SELECT FROM t"; "SELECT * FROM"; "INSERT t VALUES (1)";
      "SELECT * FROM t WHERE"; "SELECT * FROM t GROUP"; "CREATE t"; "SELECT * FROM t extra garbage (" ]

let test_unterminated_string () =
  Alcotest.(check bool) "unterminated" false (parses "SELECT 'oops FROM t")

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "hyphenated identifiers" `Quick test_lexer_hyphenated_names;
    Alcotest.test_case "line comments" `Quick test_lexer_comments;
    Alcotest.test_case "SELECT forms" `Quick test_select_forms;
    Alcotest.test_case "DML/DDL forms" `Quick test_dml_ddl_forms;
    Alcotest.test_case "boolean precedence" `Quick test_precedence;
    Alcotest.test_case "arithmetic precedence" `Quick test_arith_precedence;
    Alcotest.test_case "NOT IN" `Quick test_not_in;
    Alcotest.test_case "pretty-print round trips" `Quick test_roundtrips;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "unterminated string" `Quick test_unterminated_string ]
