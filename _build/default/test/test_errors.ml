(* Failure-injection tests: every user-facing error path raises the typed
   exception with a usable message, and never a generic crash. *)

open Relational

let mk () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 'NY')";
      "INSERT INTO emp VALUES (1, 'e1', 100, 1)" ];
  (db, Xnf.Api.create db)

let expect_bind db sql =
  match Db.rows_of db sql with
  | _ -> Alcotest.failf "expected bind error for: %s" sql
  | exception Binder.Bind_error _ -> ()

let test_binder_errors () =
  let db, _ = mk () in
  expect_bind db "SELECT nosuch FROM dept";
  expect_bind db "SELECT * FROM nosuch";
  expect_bind db "SELECT d.dname FROM dept d, dept d2 WHERE dname = 'x'";
  (* ambiguous *)
  expect_bind db "SELECT * FROM emp WHERE SUM(sal) > 1";
  (* aggregate in WHERE *)
  expect_bind db "SELECT * FROM emp GROUP BY edno";
  (* star with group by *)
  expect_bind db "SELECT ename FROM emp GROUP BY edno";
  (* non-key column outside aggregate *)
  expect_bind db "SELECT dno FROM dept UNION SELECT dno, dname FROM dept"
(* arity mismatch *)

let test_cyclic_tabular_view () =
  let db, _ = mk () in
  (* v2 -> v1 -> v2 *)
  Catalog.add_view (Db.catalog db) ~name:"v1" (Sql_parser.parse_select "SELECT * FROM v2");
  Catalog.add_view (Db.catalog db) ~name:"v2" (Sql_parser.parse_select "SELECT * FROM v1");
  expect_bind db "SELECT * FROM v1"

let test_catalog_errors () =
  let db, _ = mk () in
  (try
     ignore (Db.exec db "CREATE TABLE dept (x INTEGER)");
     Alcotest.fail "expected duplicate"
   with Catalog.Duplicate_name _ -> ());
  try
    ignore (Db.exec db "DROP TABLE nosuch");
    Alcotest.fail "expected unknown table"
  with Catalog.Unknown_table _ -> ()

let expect_compose api q =
  match Xnf.Api.fetch_string api q with
  | _ -> Alcotest.failf "expected composition error for: %s" q
  | exception (Xnf.View_registry.View_error _ | Xnf.Co_schema.Schema_error _) -> ()

let test_compose_errors () =
  let _, api = mk () in
  (* unknown view import *)
  expect_compose api "OUT OF NOSUCH-VIEW TAKE *";
  (* duplicate component names *)
  expect_compose api "OUT OF x AS DEPT, x AS EMP TAKE *";
  (* edge partner is not a component *)
  expect_compose api "OUT OF x AS DEPT, e AS (RELATE x, ghost WHERE x.dno = ghost.a) TAKE *";
  (* cyclic relationship without role names *)
  expect_compose api "OUT OF x AS EMP, m AS (RELATE x, x WHERE x.eno = x.edno) TAKE *";
  (* restriction on unknown component *)
  expect_compose api "OUT OF x AS DEPT WHERE ghost SUCH THAT dno = 1 TAKE *";
  (* restriction on unknown relationship *)
  expect_compose api "OUT OF x AS DEPT WHERE ghost (a, b) SUCH THAT a.dno = 1 TAKE *";
  (* TAKE of unknown component *)
  expect_compose api "OUT OF x AS DEPT TAKE ghost";
  (* no root: mutual recursion with no entry point *)
  expect_compose api
    "OUT OF a AS DEPT, b AS EMP, ab AS (RELATE a, b WHERE a.dno = b.edno), \
     ba AS (RELATE b, a WHERE b.edno = a.dno) TAKE *";
  (* explicitly kept edge with projected-away partner *)
  expect_compose api
    "OUT OF a AS DEPT, b AS EMP, ab AS (RELATE a, b WHERE a.dno = b.edno) TAKE a(*), ab"

let test_duplicate_xnf_view () =
  let _, api = mk () in
  ignore (Xnf.Api.exec api "CREATE VIEW W AS OUT OF x AS DEPT TAKE *");
  try
    ignore (Xnf.Api.exec api "CREATE VIEW W AS OUT OF x AS DEPT TAKE *");
    Alcotest.fail "expected duplicate view error"
  with Xnf.View_registry.View_error _ -> ()

let test_translate_missing_using_table () =
  let _, api = mk () in
  try
    ignore
      (Xnf.Api.fetch_string api
         "OUT OF a AS DEPT, b AS EMP, \
          e AS (RELATE a, b USING ghostlink g WHERE a.dno = g.x AND b.eno = g.y) TAKE *");
    Alcotest.fail "expected translate error"
  with Xnf.Translate.Translate_error _ -> ()

let test_take_unknown_column () =
  let _, api = mk () in
  try
    ignore (Xnf.Api.fetch_string api "OUT OF a AS DEPT TAKE a(ghostcol)");
    Alcotest.fail "expected translate error"
  with Xnf.Translate.Translate_error _ -> ()

let test_udi_errors () =
  let db, api = mk () in
  let cache =
    Xnf.Api.fetch_string api
      "OUT OF a AS DEPT, b AS EMP, e AS (RELATE a, b WHERE a.dno = b.edno) TAKE *"
  in
  let ses = Xnf.Udi.session db cache in
  (* wrong arity on insert *)
  (try
     ignore (Xnf.Udi.insert ses ~node:"b" [| Value.Int 9 |]);
     Alcotest.fail "expected arity error"
   with Xnf.Udi.Udi_error _ -> ());
  (* disconnect a connection that does not exist *)
  (try
     Xnf.Udi.disconnect ses ~edge:"e" ~parent:0 ~child:0;
     (* parent 0 / child 0 IS connected (e1 in d1) — disconnect again fails *)
     Xnf.Udi.disconnect ses ~edge:"e" ~parent:0 ~child:0;
     Alcotest.fail "expected missing-connection error"
   with Xnf.Udi.Udi_error _ -> ());
  (* operations on a dead tuple *)
  let ni = Xnf.Cache.node cache "b" in
  let t = Xnf.Cache.tuple ni 0 in
  Alcotest.(check bool) "tuple left CO after disconnect" false t.Xnf.Cache.t_live;
  (try
     Xnf.Udi.update ses ~node:"b" ~pos:0 [ ("sal", Value.Int 7) ];
     Alcotest.fail "expected dead-tuple error"
   with Xnf.Udi.Udi_error _ -> ());
  (* unknown column in update *)
  let cache2 =
    Xnf.Api.fetch_string api
      "OUT OF a AS DEPT, b AS EMP, e AS (RELATE a, b WHERE a.dno = b.edno) TAKE *"
  in
  let ses2 = Xnf.Udi.session db cache2 in
  try
    Xnf.Udi.update ses2 ~node:"a" ~pos:0 [ ("ghost", Value.Int 1) ];
    Alcotest.fail "expected unknown column error"
  with Xnf.Udi.Udi_error _ -> ()

let test_readonly_edge_connect () =
  let db, api = mk () in
  let cache =
    Xnf.Api.fetch_string api
      "OUT OF a AS DEPT, b AS EMP, e AS (RELATE a, b WHERE a.dno < b.edno + 1) TAKE *"
  in
  let ses = Xnf.Udi.session db cache in
  try
    Xnf.Udi.connect ses ~edge:"e" ~parent:0 ~child:0 ();
    Alcotest.fail "expected read-only edge error"
  with Xnf.Udi.Udi_error _ -> ()

let test_api_drop_unknown_view () =
  let _, api = mk () in
  try
    ignore (Xnf.Api.exec api "DROP VIEW ghost");
    Alcotest.fail "expected api error"
  with Xnf.Api.Api_error _ -> ()

let test_co_delete_readonly_component () =
  let _, api = mk () in
  try
    ignore
      (Xnf.Api.exec api
         "OUT OF a AS (SELECT loc, COUNT(*) AS n FROM dept GROUP BY loc) DELETE *");
    Alcotest.fail "expected non-updatable error"
  with Xnf.Api.Api_error _ -> ()

let test_cursor_errors () =
  let _, api = mk () in
  let cache = Xnf.Api.fetch_string api "OUT OF a AS DEPT TAKE *" in
  (try
     ignore (Xnf.Cursor.open_dependent ~parent:(Xnf.Cursor.open_independent cache "a") []);
     Alcotest.fail "expected empty-path error"
   with Xnf.Cursor.Cursor_error _ -> ());
  try
    ignore (Xnf.Cache.node cache "ghost");
    Alcotest.fail "expected cache error"
  with Xnf.Cache.Cache_error _ -> ()

let suite =
  [ Alcotest.test_case "binder errors" `Quick test_binder_errors;
    Alcotest.test_case "cyclic tabular views" `Quick test_cyclic_tabular_view;
    Alcotest.test_case "catalog errors" `Quick test_catalog_errors;
    Alcotest.test_case "composition errors" `Quick test_compose_errors;
    Alcotest.test_case "duplicate XNF view" `Quick test_duplicate_xnf_view;
    Alcotest.test_case "missing USING table" `Quick test_translate_missing_using_table;
    Alcotest.test_case "TAKE of unknown column" `Quick test_take_unknown_column;
    Alcotest.test_case "udi errors" `Quick test_udi_errors;
    Alcotest.test_case "read-only edge connect" `Quick test_readonly_edge_connect;
    Alcotest.test_case "drop unknown view" `Quick test_api_drop_unknown_view;
    Alcotest.test_case "CO DELETE on read-only component" `Quick test_co_delete_readonly_component;
    Alcotest.test_case "cursor/cache errors" `Quick test_cursor_errors ]
