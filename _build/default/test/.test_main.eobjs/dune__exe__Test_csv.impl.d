test/test_csv.ml: Alcotest Array Catalog Csv_io Db List Relational Row Table Value
