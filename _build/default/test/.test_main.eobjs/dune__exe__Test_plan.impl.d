test/test_plan.ml: Alcotest Array Expr Index List Plan Relational Row Schema Sql_ast Table Value
