test/test_txn.ml: Alcotest Array Buffer_pool Db List Page Relational Row Schema Table Txn Value Wal
