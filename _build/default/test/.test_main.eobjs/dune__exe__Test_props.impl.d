test/test_props.ml: Array Baseline Catalog Db Expr Float Index List Printf QCheck QCheck_alcotest Relational Row Schema String Table Value Workload Xnf
