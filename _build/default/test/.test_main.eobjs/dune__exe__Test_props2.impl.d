test/test_props2.ml: Array Db Fun List Printf QCheck QCheck_alcotest Relational Row Value Workload Xnf
