test/test_value.ml: Alcotest Relational Value
