test/test_exec.ml: Alcotest Array Binder Db List Qgm Relational Sql_parser String Value
