test/test_baseline.ml: Alcotest Baseline Db List Relational Row Workload Xnf
