test/test_expr.ml: Alcotest Expr List Relational Seq Value
