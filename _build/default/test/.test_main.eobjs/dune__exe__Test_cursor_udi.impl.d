test/test_cursor_udi.ml: Alcotest Array Db List Relational Txn Value Wal Xnf
