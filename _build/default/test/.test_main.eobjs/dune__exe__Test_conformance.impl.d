test/test_conformance.ml: Alcotest List Printexc Relational Workload Xnf
