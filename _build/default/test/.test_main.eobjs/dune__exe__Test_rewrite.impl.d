test/test_rewrite.ml: Alcotest Db Expr List Qgm Relational Rewrite Row Sql_parser String Value
