test/test_errors.ml: Alcotest Binder Catalog Db List Relational Sql_parser Value Xnf
