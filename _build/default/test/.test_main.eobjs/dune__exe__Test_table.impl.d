test/test_table.ml: Alcotest Array Index List Option Relational Row Schema Table Value Vec
