test/test_xnf_parser.ml: Alcotest List Relational Xnf Xnf_ast Xnf_parser
