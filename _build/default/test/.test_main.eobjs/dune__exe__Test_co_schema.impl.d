test/test_co_schema.ml: Alcotest Co_schema List Relational String Xnf Xnf_ast
