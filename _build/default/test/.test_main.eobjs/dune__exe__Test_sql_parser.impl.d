test/test_sql_parser.ml: Alcotest Array Expr List Relational Sql_ast Sql_lexer Sql_parser
