test/test_path.ml: Alcotest Array Db List Printf Relational Value Xnf
