test/test_cache_extras.ml: Alcotest Array Db List Option Relational Value Xnf
