test/test_workload.ml: Alcotest Array Catalog Db Fun List Printf Relational Table Value Workload Xnf
