test/test_translate.ml: Alcotest Array Db List Printf Relational Schema Value Xnf
