test/test_semantic.ml: Alcotest Catalog Db List Relational Schema Sql_parser Table Xnf
