examples/oo1_demo.ml: Array Baseline Db Fmt Hashtbl List Printf Relational Unix Value Workload Xnf
