examples/shared_database.ml: Array Db Fmt List Relational Row Value Xnf
