examples/shared_database.mli:
