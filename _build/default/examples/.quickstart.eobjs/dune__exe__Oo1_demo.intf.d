examples/oo1_demo.mli:
