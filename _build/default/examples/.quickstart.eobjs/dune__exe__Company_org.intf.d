examples/company_org.mli:
