examples/quickstart.mli:
