examples/design_workingset.mli:
