examples/design_workingset.ml: Array Db Fmt List Relational Row Sys Value Workload Xnf
