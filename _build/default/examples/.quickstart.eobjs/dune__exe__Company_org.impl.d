examples/company_org.ml: Array Db Fmt List Relational Row Value Xnf
