examples/quickstart.ml: Array Db Fmt List Relational Row Value Xnf
