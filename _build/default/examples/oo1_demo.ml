(* OO1 (Cattell) traversal: XNF cache vs the regular SQL interface.

     dune exec examples/oo1_demo.exe

   The paper claims cache browsing beats per-call SQL navigation by orders
   of magnitude, "comparable to the performance improvement of OODBMS over
   relational DBMSs reported in Cattell's benchmark" (§4.2). This example
   runs one OO1-style depth-3 traversal both ways and reports the factor
   (the full benchmark with lookup/insert and depth 7 lives in
   bench/main.exe, experiment E2). *)

open Relational

let n_parts = 2000

let () =
  let db = Db.create () in
  Workload.Oo1.populate db ~seed:11 ~n_parts;
  let api = Xnf.Api.create db in

  (* load the parts database as a recursive composite object *)
  let cache = Xnf.Api.fetch_string api Workload.Oo1.parts_co_query in
  Fmt.pr "loaded: %a" Xnf.Cache.pp cache;

  let part_node = Xnf.Cache.node cache "xpart" in
  let out_edge = Xnf.Cache.edge cache "outgoing" in
  let target_edge = Xnf.Cache.edge cache "target" in

  (* depth-3 traversal over the cache: pure pointer chasing; the second
     hop crosses the 'target' relationship child-to-parent *)
  let visits = ref 0 in
  let rec traverse_cache pos depth =
    incr visits;
    if depth > 0 then
      List.iter
        (fun conn_pos ->
          List.iter
            (fun part_pos -> traverse_cache part_pos (depth - 1))
            (Xnf.Cache.parents cache target_edge conn_pos))
        (Xnf.Cache.children cache out_edge pos)
  in
  let t0 = Unix.gettimeofday () in
  for root = 0 to 99 do
    traverse_cache (Hashtbl.hash root mod Xnf.Cache.live_count part_node) 3
  done;
  let cache_time = Unix.gettimeofday () -. t0 in
  Fmt.pr "cache traversal: %d part visits in %.3f ms@." !visits (cache_time *. 1000.);

  (* the same traversal through the SQL interface: one query per hop *)
  let nav = Baseline.Sql_navigator.create db in
  let sql_visits = ref 0 in
  let rec traverse_sql id depth =
    incr sql_visits;
    if depth > 0 then begin
      let rows =
        Baseline.Sql_navigator.query nav
          (Printf.sprintf "SELECT to_id FROM connection WHERE from_id = %d" id)
      in
      List.iter (fun r -> traverse_sql (Value.as_int r.(0)) (depth - 1)) rows
    end
  in
  let t0 = Unix.gettimeofday () in
  for root = 0 to 99 do
    traverse_sql (Hashtbl.hash root mod n_parts) 3
  done;
  let sql_time = Unix.gettimeofday () -. t0 in
  Fmt.pr "SQL-interface traversal: %d part visits, %d SQL calls in %.3f ms@." !sql_visits
    (Baseline.Sql_navigator.calls nav) (sql_time *. 1000.);

  let ipc = Baseline.Sql_navigator.modeled_ipc_seconds nav ~ipc_us:100. in
  Fmt.pr "speedup (measured, in-process): %.0fx@." (sql_time /. cache_time);
  Fmt.pr "speedup (with 100us/call IPC as in the paper's setting): %.0fx@."
    ((sql_time +. ipc) /. cache_time)
