(** Manipulation operations on the XNF cache (§3.7 of the paper): update /
    delete / insert on component tuples and connect / disconnect on
    relationships, propagated to the base tables through the view
    updatability analysis:

    - FK relationships: connect sets the child's foreign key to the parent
      key, disconnect nullifies it;
    - USING (M:N) relationships: connect inserts a link tuple, disconnect
      deletes it;
    - columns mentioned in a relationship predicate change only through
      connect/disconnect;
    - deleting a tuple disconnects the relationship instances attached to
      it (no cascading deletes), then removes the base row.

    Propagation is immediate by default; {!with_deferred}/{!save} batch it,
    coalescing repeated updates per tuple into a single base write. *)

open Relational

exception Udi_error of string

type t

(** [session db cache] is a manipulation session with immediate
    propagation. *)
val session : Db.t -> Cache.t -> t

(** [set_deferred ses flag] switches between immediate and deferred
    propagation; call {!save} to flush deferred work. *)
val set_deferred : t -> bool -> unit

(** [set_validation ses flag] enables/disables optimistic conflict
    detection (default on): before every base write the session checks that
    no other writer changed the table since the composite object was
    loaded; a conflict raises {!Udi_error} without writing. The session's
    own writes do not conflict. *)
val set_validation : t -> bool -> unit

(** [update ses ~node ~pos updates] changes columns of a cached tuple and
    propagates to the base table.
    @raise Udi_error on non-updatable nodes or relationship columns. *)
val update : t -> node:string -> pos:int -> (string * Value.t) list -> unit

(** [delete ses ~node ~pos] removes a component tuple: disconnects attached
    relationship instances, deletes the base row, re-applies reachability
    in the cache.
    @raise Udi_error on non-updatable nodes. *)
val delete : t -> node:string -> pos:int -> unit

(** [insert ses ~node row] adds a tuple to a component and its base table;
    the tuple is initially unconnected. Returns its cache position.
    @raise Udi_error on non-updatable nodes. *)
val insert : t -> node:string -> Row.t -> int

(** [connect ses ~edge ~parent ~child ?attrs ()] creates a relationship
    instance between the tuples at the two cache positions, propagating per
    the relationship's updatability. [attrs] sets relationship attributes
    on USING relationships (by attribute name).
    @raise Udi_error on read-only relationships. *)
val connect :
  t -> edge:string -> parent:int -> child:int -> ?attrs:(string * Value.t) list -> unit -> unit

(** [disconnect ses ~edge ~parent ~child] removes the relationship
    instance(s) between the two tuples; reachability is re-applied (the
    child may leave the CO).
    @raise Udi_error when no such connection exists or the relationship is
    read-only. *)
val disconnect : t -> edge:string -> parent:int -> child:int -> unit

(** [pending_count ses] is the number of queued operations plus dirty
    tuples awaiting {!save}. *)
val pending_count : t -> int

(** [save ses] flushes deferred work: dirty tuples coalesce to one base
    write each; queued operations apply in issue order; the cache's
    staleness baseline is refreshed. *)
val save : t -> unit

(** [with_deferred ses f] runs [f ()] with propagation deferred, then
    saves. *)
val with_deferred : t -> (unit -> 'a) -> 'a
