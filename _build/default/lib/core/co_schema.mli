(** Composite-object schema graphs (§2 of the paper).

    A CO definition is the fully composed form of an XNF view or query:
    every node carries its (possibly restriction-wrapped) SQL derivation,
    every edge its predicate, optional USING link table, optional
    attributes, and the aliases its predicate uses for the partner tables.
    View composition merges definitions at this level, which is why adding
    a relationship can make new tuples reachable (Fig. 3). *)

open Relational

type node_def = {
  nd_name : string;  (** lowercased component-table name *)
  nd_query : Sql_ast.select;  (** derivation, including merged node restrictions *)
  nd_cols : string list option;  (** TAKE column projection; [None] = all *)
}

type edge_def = {
  ed_name : string;
  ed_parent : string;  (** parent node name *)
  ed_child : string;  (** child node name *)
  ed_parent_alias : string;  (** qualifier for the parent in [ed_pred] *)
  ed_child_alias : string;
  ed_using : (string * string) option;  (** USING base table and its alias *)
  ed_attrs : (Sql_ast.expr * string) list;  (** relationship attributes *)
  ed_pred : Sql_ast.expr;  (** connection predicate over parent x child [x using] *)
}

type t = { co_nodes : node_def list; co_edges : edge_def list }

exception Schema_error of string

val empty : t

(** Lookups are case-insensitive. @raise Schema_error when absent. *)

val node : t -> string -> node_def
val node_opt : t -> string -> node_def option
val edge : t -> string -> edge_def
val edge_opt : t -> string -> edge_def option

(** [incoming def name] / [outgoing def name]: edges by child / parent. *)

val incoming : t -> string -> edge_def list
val outgoing : t -> string -> edge_def list

(** [roots def] lists components with no incoming edge — the reachability
    sources. *)
val roots : t -> node_def list

(** [add_node def nd] / [add_edge def ed]: well-formedness is enforced —
    unique component names, edge partners must be component tables.
    @raise Schema_error on violations. *)

val add_node : t -> node_def -> t
val add_edge : t -> edge_def -> t

(** [merge a b] composes two definitions (view import).
    @raise Schema_error when component names clash. *)
val merge : t -> t -> t

(** [is_recursive def] detects schema-graph cycles (§2: recursive COs). *)
val is_recursive : t -> bool

(** [has_schema_sharing def] holds when some node has two incoming edges. *)
val has_schema_sharing : t -> bool

(** [topo_order def] orders nodes parents-before-children for DAGs; [None]
    for recursive schemas. *)
val topo_order : t -> string list option

(** [validate def] checks global well-formedness (non-empty, edge partners
    present, at least one root).
    @raise Schema_error on violations. *)
val validate : t -> unit

(** [project def take] applies a TAKE structural projection: named
    components survive; edges survive only when both partners do; an
    explicitly kept edge with a dropped partner is an error.
    @raise Schema_error on violations. *)
val project : t -> Xnf_ast.take -> t

val pp : Format.formatter -> t -> unit
