(** Materialized composite objects — the "base (materialized)
    relationships" the paper mentions in §5 but does not report: a named
    XNF view whose instance is kept loaded, served from memory while the
    underlying base tables are unchanged, and re-evaluated when they
    change. *)

open Relational

type t

exception Materialized_error of string

(** [create db reg] is an empty materialization manager for the session. *)
val create : Db.t -> View_registry.t -> t

(** [define t ~name query] registers [query] for materialization (loaded
    lazily on first {!get}).
    @raise Materialized_error on duplicate name. *)
val define : t -> name:string -> Xnf_ast.query -> unit

(** [define_string t ~name text] parses and registers an
    [OUT OF ... TAKE] query. *)
val define_string : t -> name:string -> string -> unit

(** [get t name] is the materialized instance, re-evaluated only when a
    base table changed since the last load.
    @raise Materialized_error on unknown name. *)
val get : t -> string -> Cache.t

(** [invalidate t name] drops the materialized instance; the next {!get}
    reloads. *)
val invalidate : t -> string -> unit

(** [stats t name] is [(loads, hits)]. *)
val stats : t -> string -> int * int

(** [names t] lists registered materializations, sorted. *)
val names : t -> string list
