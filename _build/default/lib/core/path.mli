(** Path expressions over a loaded composite object (§3.5 of the paper).

    A path denotes a subset of the tuples of its target component: those
    reachable from the start designator along the named relationships, with
    qualified steps filtering intermediate tuples. Traversal direction is
    inferred per step (forward from the parent side, backward from the
    child side).

    SUCH THAT predicates are evaluated here too: SQL expressions extended
    with [COUNT(path)] and [EXISTS path] atoms, against an environment
    binding restriction variables to cache tuples. *)

open Relational

exception Path_error of string

(** A variable binding: a specific tuple of a component table. *)
type binding = { b_node : string; b_pos : int }

(** Evaluation environment: restriction / path variables, lowercased. *)
type env = (string * binding) list

(** [eval_xexpr cache env e] evaluates a predicate expression; boolean
    results use the 3VL encoding (Bool/Null). *)
val eval_xexpr : Cache.t -> env -> Xnf_ast.xexpr -> Value.t

(** [eval_pred cache env e] evaluates [e] as a predicate. *)
val eval_pred : Cache.t -> env -> Xnf_ast.xexpr -> Value.truth

(** [eval_path cache env p] is the target component's name and the distinct
    live positions the path denotes. *)
val eval_path : Cache.t -> env -> Xnf_ast.path -> string * int list

(** [eval_node_restriction cache ~node ~var pred] is the set of live
    positions of [node] satisfying [pred], with [var] (default: the node
    name) bound per tuple. *)
val eval_node_restriction :
  Cache.t -> node:string -> var:string option -> Xnf_ast.xexpr -> int list
