(* Materialized composite objects.

   The paper mentions (footnote in §5) that "base (materialized)
   relationships are part of XNF but not reported here due to space
   limitation". This module provides the natural reading: a named XNF view
   whose instance is kept loaded, served from memory while fresh, and
   re-evaluated when the underlying base tables change.

   Freshness uses the cache's base-table version snapshot; writes performed
   through a materialized CO's own udi sessions count as changes too, so a
   [get] after them re-validates (the Udi layer refreshes the snapshot on
   save, making self-inflicted changes cheap no-ops). *)

open Relational

type entry = {
  m_name : string;
  m_query : Xnf_ast.query;
  mutable m_cache : Cache.t option;
  mutable m_loads : int;  (** re-evaluations performed *)
  mutable m_hits : int;  (** gets served from the materialized instance *)
}

type t = { m_db : Db.t; m_reg : View_registry.t; entries : (string, entry) Hashtbl.t }

exception Materialized_error of string

let err fmt = Fmt.kstr (fun s -> raise (Materialized_error s)) fmt

(** [create db reg] is an empty materialization manager for the session. *)
let create db reg = { m_db = db; m_reg = reg; entries = Hashtbl.create 8 }

(** [define t ~name query] registers [query] for materialization (lazily
    loaded on first [get]).
    @raise Materialized_error on duplicate name. *)
let define t ~name query =
  let key = String.lowercase_ascii name in
  if Hashtbl.mem t.entries key then err "materialized CO %s already exists" name;
  Hashtbl.replace t.entries key
    { m_name = name; m_query = query; m_cache = None; m_loads = 0; m_hits = 0 }

(** [define_string t ~name text] parses and registers an [OUT OF ... TAKE]
    query. *)
let define_string t ~name text = define t ~name (Xnf_parser.parse_query text)

(** [get t name] is the materialized instance, re-evaluated only when a
    base table changed since the last load.
    @raise Materialized_error on unknown name. *)
let get t name =
  let key = String.lowercase_ascii name in
  match Hashtbl.find_opt t.entries key with
  | None -> err "unknown materialized CO %s" name
  | Some entry -> begin
    match entry.m_cache with
    | Some cache when not (Cache.stale cache t.m_db) ->
      entry.m_hits <- entry.m_hits + 1;
      cache
    | _ ->
      let cache = Translate.fetch t.m_db t.m_reg entry.m_query in
      entry.m_cache <- Some cache;
      entry.m_loads <- entry.m_loads + 1;
      cache
  end

(** [invalidate t name] drops the materialized instance (next [get]
    reloads). *)
let invalidate t name =
  match Hashtbl.find_opt t.entries (String.lowercase_ascii name) with
  | Some entry -> entry.m_cache <- None
  | None -> err "unknown materialized CO %s" name

(** [stats t name] is [(loads, hits)] for introspection and benchmarks. *)
let stats t name =
  match Hashtbl.find_opt t.entries (String.lowercase_ascii name) with
  | Some entry -> (entry.m_loads, entry.m_hits)
  | None -> err "unknown materialized CO %s" name

(** [names t] lists registered materializations, sorted. *)
let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [])
