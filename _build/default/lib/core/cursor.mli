(** XNF cursors over the cache (§3.7, §4.2 of the paper).

    Independent cursors enumerate all live tuples of a component table;
    dependent cursors are bound to another cursor through a relationship or
    a longer path and enumerate only tuples reachable from the parent
    cursor's current tuple, recomputing whenever the parent moves. Cursor
    steps are pure in-memory adjacency walks. *)

exception Cursor_error of string

type t

(** [open_independent ?order cache node] opens a cursor over all live
    tuples of [node]. [order] optionally sorts the enumeration by a column;
    the default is cache position order.
    @raise Cursor_error on unknown node or order column. *)
val open_independent : ?order:string * [ `Asc | `Desc ] -> Cache.t -> string -> t

(** [open_dependent ~parent path] opens a cursor bound to [parent] through
    [path] (typically a single relationship step). The target node is
    resolved statically; traversal direction is inferred per step.
    @raise Cursor_error on an empty or unresolvable path. *)
val open_dependent : parent:t -> Xnf_ast.step list -> t

(** [via edge] is the single-step path crossing [edge]. *)
val via : string -> Xnf_ast.step list

(** [next c] advances to the next live tuple; [None] at end of enumeration.
    A dependent cursor whose parent is unpositioned yields [None]. *)
val next : t -> Cache.tuple option

(** [current c] is the tuple the cursor is positioned on, if live. *)
val current : t -> Cache.tuple option

(** [reset c] rewinds to before the first tuple (dependent cursors
    recompute from the parent's current position). *)
val reset : t -> unit

(** [node_name c] is the component table this cursor ranges over. *)
val node_name : t -> string

(** [iter f c] resets [c] and applies [f] to every enumerated tuple. *)
val iter : (Cache.tuple -> unit) -> t -> unit

(** [to_list c] resets [c] and collects the enumeration. *)
val to_list : t -> Cache.tuple list
