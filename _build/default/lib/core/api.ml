(* The SQL/XNF application programming interface (Fig. 7).

   One [Api.t] is a session against a shared relational database: plain
   SQL statements execute on the relational engine unchanged, XNF
   statements go through composition → semantic rewrite → relational
   execution → cache load. The same database is freely shared between SQL
   applications and XNF applications — the central architectural claim of
   the paper. *)

open Relational

type t = {
  db : Db.t;
  reg : View_registry.t;
  mutable fetch_count : int;  (** composite objects loaded this session *)
}

(** Result of executing one statement through [exec]. *)
type outcome =
  | Fetched of Cache.t  (** an OUT OF ... TAKE query: the loaded CO *)
  | Co_deleted of int  (** OUT OF ... DELETE: number of base rows removed *)
  | Co_updated of int  (** OUT OF ... UPDATE: number of component tuples changed *)
  | View_defined of string
  | View_dropped of string
  | Sql of Db.exec_result  (** a plain SQL statement's result *)

exception Api_error of string

let err fmt = Fmt.kstr (fun s -> raise (Api_error s)) fmt

(** [create db] opens an XNF session over [db]. *)
let create db = { db; reg = View_registry.create (); fetch_count = 0 }

(** [db api] is the underlying relational session. *)
let db api = api.db

(** [registry api] is the XNF view registry. *)
let registry api = api.reg

(** [fetch ?fixpoint api q] evaluates a parsed XNF query into a cache. *)
let fetch ?fixpoint api q =
  api.fetch_count <- api.fetch_count + 1;
  Translate.fetch ?fixpoint api.db api.reg q

(** [fetch_string api sql] parses and evaluates an [OUT OF ... TAKE]
    query. *)
let fetch_string ?fixpoint api sql = fetch ?fixpoint api (Xnf_parser.parse_query sql)

(* CO deletion (§3.7): all component tuples of the target CO are removed
   from their base tables. Every component must be updatable. *)
let delete_co api (q : Xnf_ast.query) =
  let cache = fetch api q in
  (* validate updatability up front so we fail before deleting anything *)
  List.iter
    (fun (name, ni) ->
      if Cache.live_count ni > 0 && ni.Cache.ni_upd = None then
        err "CO DELETE: component %s is not updatable" name)
    cache.Cache.c_nodes;
  let deleted = ref 0 in
  List.iter
    (fun (_, ni) ->
      match ni.Cache.ni_upd with
      | None -> ()
      | Some u ->
        let table = Catalog.table (Db.catalog api.db) u.Semantic.nu_table in
        List.iter
          (fun t ->
            match t.Cache.t_rowid with
            | Some rowid -> if Db.delete_row api.db table rowid then incr deleted
            | None -> ())
          (Cache.live_tuples ni))
    cache.Cache.c_nodes;
  !deleted

(* CO-level update (§3.7): the assignments apply to every tuple of the
   named component in the target CO, propagated through the udi layer
   (which enforces updatability and relationship-column locking). *)
let update_co api (q : Xnf_ast.query) (cu : Xnf_ast.co_update) =
  let cache = fetch api q in
  let ni = Cache.node cache cu.Xnf_ast.cu_node in
  let schema = ni.Cache.ni_schema in
  let env = Db.bind_env api.db in
  let sets =
    List.map (fun (col, e) -> (col, Binder.bind_expr env schema e)) cu.Xnf_ast.cu_sets
  in
  let ses = Udi.session api.db cache in
  let count = ref 0 in
  Udi.with_deferred ses (fun () ->
      List.iter
        (fun t ->
          let updates =
            List.map (fun (col, e) -> (col, Expr.eval t.Cache.t_row e)) sets
          in
          Udi.update ses ~node:cu.Xnf_ast.cu_node ~pos:t.Cache.t_pos updates;
          incr count)
        (Cache.live_tuples ni));
  !count

(** [exec api text] parses and executes one statement — XNF or plain SQL. *)
let exec api text : outcome =
  match Xnf_parser.parse_stmt text with
  | Xnf_ast.X_query q -> Fetched (fetch api q)
  | Xnf_ast.X_create_view (name, q) ->
    View_registry.define api.reg ~name q;
    View_defined name
  | Xnf_ast.X_delete q -> Co_deleted (delete_co api q)
  | Xnf_ast.X_update (q, cu) -> Co_updated (update_co api q cu)
  | Xnf_ast.X_drop_view name -> begin
    match View_registry.find_opt api.reg name with
    | Some _ ->
      View_registry.drop api.reg name;
      View_dropped name
    | None -> begin
      (* fall through to tabular views *)
      match Catalog.view_opt (Db.catalog api.db) name with
      | Some _ ->
        Catalog.drop_view (Db.catalog api.db) name;
        View_dropped name
      | None -> err "unknown view %s" name
    end
  end
  | Xnf_ast.X_sql stmt -> Sql (Db.exec_stmt_ast api.db stmt)

(** [session api cache] opens a manipulation session on a loaded CO. *)
let session api cache = Udi.session api.db cache

(** [fetch_count api] counts COs loaded so far. *)
let fetch_count api = api.fetch_count
