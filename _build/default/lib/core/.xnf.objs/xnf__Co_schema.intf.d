lib/core/co_schema.mli: Format Relational Sql_ast Xnf_ast
