lib/core/translate.mli: Cache Co_schema Db Relational View_registry Xnf_ast
