lib/core/co_schema.ml: Fmt Hashtbl List Relational Sql_ast String Xnf_ast
