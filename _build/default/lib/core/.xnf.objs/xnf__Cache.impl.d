lib/core/cache.ml: Array Catalog Co_schema Db Fmt Hashtbl List Option Queue Relational Row Schema Semantic String Table Value Vec
