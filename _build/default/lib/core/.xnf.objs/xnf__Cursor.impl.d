lib/core/cursor.ml: Array Cache Fmt List Path Relational String Xnf_ast
