lib/core/cache.mli: Co_schema Db Format Hashtbl Relational Row Schema Semantic Value Vec
