lib/core/translate.ml: Array Binder Cache Catalog Co_schema Db Expr Fmt Fun Hashtbl List Option Path Printf Qgm Relational Row Schema Semantic Seq Sql_ast String Table Value Vec View_registry Xnf_ast
