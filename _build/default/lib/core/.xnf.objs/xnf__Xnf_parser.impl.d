lib/core/xnf_parser.ml: Array Expr List Relational Sql_ast Sql_lexer Sql_parser String Value Xnf_ast
