lib/core/materialized.ml: Cache Db Fmt Hashtbl List Relational String Translate View_registry Xnf_ast Xnf_parser
