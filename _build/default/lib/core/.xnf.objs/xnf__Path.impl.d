lib/core/path.ml: Array Cache Expr Fmt List Option Relational Schema String Value Xnf_ast
