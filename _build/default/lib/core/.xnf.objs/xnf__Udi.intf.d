lib/core/udi.mli: Cache Db Relational Row Value
