lib/core/path.mli: Cache Relational Value Xnf_ast
