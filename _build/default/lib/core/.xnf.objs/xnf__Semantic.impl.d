lib/core/semantic.ml: Array Catalog Co_schema Expr Fun List Option Printf Relational Schema Sql_ast String Table
