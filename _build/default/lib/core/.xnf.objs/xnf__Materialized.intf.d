lib/core/materialized.mli: Cache Db Relational View_registry Xnf_ast
