lib/core/view_registry.mli: Co_schema Xnf_ast
