lib/core/xnf_parser.mli: Relational Xnf_ast
