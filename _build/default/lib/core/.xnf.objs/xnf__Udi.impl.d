lib/core/udi.ml: Array Cache Catalog Db Fmt Fun Hashtbl List Option Relational Row Schema Semantic String Table Value Vec
