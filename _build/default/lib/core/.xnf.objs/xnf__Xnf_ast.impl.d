lib/core/xnf_ast.ml: Expr Fmt List Option Relational Sql_ast Value
