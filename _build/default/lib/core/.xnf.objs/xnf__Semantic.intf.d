lib/core/semantic.mli: Catalog Co_schema Relational Schema Sql_ast
