lib/core/cursor.mli: Cache Xnf_ast
