lib/core/api.ml: Binder Cache Catalog Db Expr Fmt List Relational Semantic Translate Udi View_registry Xnf_ast Xnf_parser
