lib/core/view_registry.ml: Co_schema Fmt Hashtbl List Option Relational Sql_ast String Xnf_ast
