lib/core/api.mli: Cache Db Relational Translate Udi View_registry Xnf_ast
