(** Semantic analysis for XNF: node and relationship updatability (§3.7 of
    the paper).

    Nodes derived like ordinary updatable views (single base table, column
    projection, restriction) propagate udi operations to their base table;
    relationships defined by a foreign-key equality support
    connect/disconnect by setting/nullifying the FK; M:N relationships over
    a USING link table connect by inserting and disconnect by deleting the
    link tuple; anything else is readable but not updatable. *)

open Relational

(** Updatability of a node: where its tuples come from and how output
    columns map to base columns. *)
type node_updatability = {
  nu_table : string;  (** base table name *)
  nu_col_map : int array;  (** node output column -> base column index *)
}

(** Updatability of a relationship. *)
type edge_updatability =
  | Upd_fk of {
      fk_parent_col : int;  (** parent node column supplying the key *)
      fk_child_col : int;  (** child node column holding the foreign key *)
    }
  | Upd_link of {
      link_table : string;
      parent_bind : (string * int) list;  (** (link column name, parent node col) *)
      child_bind : (string * int) list;
      attr_cols : (string * int) list;
          (** (link column name, attribute position): attributes drawn
              directly from the link table, settable at connect time *)
    }
  | Upd_readonly of string  (** reason the relationship is read-only *)

(** [analyze_node_query catalog q] is the node updatability of derivation
    [q], or [None] when the shape is not a simple view (joins, grouping,
    expressions, alias renames, unions, ...). *)
val analyze_node_query : Catalog.t -> Sql_ast.select -> node_updatability option

(** [analyze_edge catalog def ~parent_schema ~child_schema] derives the
    updatability of edge [def] against the node output schemas (a
    projected-away FK makes the edge read-only). *)
val analyze_edge :
  Catalog.t -> Co_schema.edge_def -> parent_schema:Schema.t -> child_schema:Schema.t ->
  edge_updatability

(** [relationship_columns def ~parent_schema ~child_schema] is, per side,
    the node columns mentioned in the edge predicate — the columns whose
    direct update is forbidden (§3.7). *)
val relationship_columns :
  Co_schema.edge_def -> parent_schema:Schema.t -> child_schema:Schema.t -> int list * int list
