(** The on-top object-instantiation baseline of [LW90]/[BW89] (§5 of the
    paper): application objects instantiated from acyclic
    select-project-join views, one object at a time, without subobject
    sharing, recursion or relationship restriction. *)

open Relational

(** A materialized application object: a node row plus, per outgoing
    relationship, its instantiated children. *)
type obj = { o_node : string; o_row : Row.t; mutable o_children : (string * obj list) list }

exception Lw90_error of string

(** [supported def] checks the LW90 view-model restriction: acyclic schema
    graphs only. *)
val supported : Xnf.Co_schema.t -> bool

(** [instantiate nav def] materializes the object forest for [def] with
    per-object queries issued through [nav] (whose counters record the
    cost).
    @raise Lw90_error on recursive definitions. *)
val instantiate : Sql_navigator.t -> Xnf.Co_schema.t -> obj list

(** [count_objects objs] counts instantiated objects — shared children are
    counted once per parent, exposing the duplication XNF's instance
    representation avoids. *)
val count_objects : obj list -> int
