(* The on-top object-instantiation baseline of [LW90/BW89] (§5).

   Lee/Wiederhold instantiate application objects from relational databases
   through *acyclic select-project-join* view queries, one object type at a
   time: the root objects are fetched set-orientedly, but sub-objects are
   instantiated per parent object by parameterized queries, and the view
   model supports neither recursion nor relationship restriction nor
   subobject sharing across parents (shared children are re-instantiated).

   The module reuses the navigator's per-object query machinery; what it
   adds is the object-tree materialization (nested records), matching the
   "final mapping to the application's favorable data structure" the paper
   says XNF's abstraction level mostly avoids. *)

open Relational

type obj = { o_node : string; o_row : Row.t; mutable o_children : (string * obj list) list }

exception Lw90_error of string

(** [supported def] checks the [LW90] view-model restrictions: acyclic
    schema graph. *)
let supported (def : Xnf.Co_schema.t) = not (Xnf.Co_schema.is_recursive def)

(** [instantiate nav def] materializes the object forest for [def] using
    per-object queries. Returns the root objects and leaves call/row
    counters on [nav].
    @raise Lw90_error on recursive definitions (unsupported by the view
    model). *)
let instantiate (nav : Sql_navigator.t) (def : Xnf.Co_schema.t) : obj list =
  if not (supported def) then
    raise (Lw90_error "the LW90 view model supports only acyclic select-project-join views");
  let catalog = Db.catalog nav.Sql_navigator.nav_db in
  let schema_of_node (nd : Xnf.Co_schema.node_def) =
    let qgm = Db.bind_select nav.Sql_navigator.nav_db nd.Xnf.Co_schema.nd_query in
    Qgm.schema_of catalog qgm
  in
  let rec build (nd : Xnf.Co_schema.node_def) (row : Row.t) : obj =
    let o = { o_node = nd.Xnf.Co_schema.nd_name; o_row = row; o_children = [] } in
    o.o_children <-
      List.map
        (fun (ed : Xnf.Co_schema.edge_def) ->
          let child_nd = Xnf.Co_schema.node def ed.Xnf.Co_schema.ed_child in
          let rows =
            Sql_navigator.children_of nav ed ~child_query:child_nd.Xnf.Co_schema.nd_query
              ~parent_schema:(schema_of_node nd) ~parent_row:row
          in
          (ed.Xnf.Co_schema.ed_name, List.map (fun r -> build child_nd r) rows))
        (Xnf.Co_schema.outgoing def nd.Xnf.Co_schema.nd_name);
    o
  in
  List.concat_map
    (fun (root : Xnf.Co_schema.node_def) ->
      let rows = Sql_navigator.query nav (Sql_ast.select_to_string root.Xnf.Co_schema.nd_query) in
      List.map (fun r -> build root r) rows)
    (Xnf.Co_schema.roots def)

(** [count_objects objs] is the total number of instantiated objects —
    shared children are counted once per parent, exposing the duplication
    the XNF instance representation avoids. *)
let rec count_objects objs =
  List.fold_left
    (fun acc o ->
      acc + 1
      + List.fold_left (fun a (_, cs) -> a + count_objects cs) 0 o.o_children)
    0 objs
