lib/baseline/sql_navigator.ml: Array Db List Option Qgm Relational Row Schema Sql_ast String Xnf
