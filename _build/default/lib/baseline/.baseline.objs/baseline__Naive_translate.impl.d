lib/baseline/naive_translate.ml: Array Db Hashtbl List Relational Row Sql_ast Xnf
