lib/baseline/lw90.mli: Relational Row Sql_navigator Xnf
