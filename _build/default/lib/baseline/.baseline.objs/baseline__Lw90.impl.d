lib/baseline/lw90.ml: Db List Qgm Relational Row Sql_ast Sql_navigator Xnf
