lib/baseline/sql_navigator.mli: Db Relational Row Schema Sql_ast Xnf
