lib/baseline/naive_translate.mli: Db Relational Row Xnf
