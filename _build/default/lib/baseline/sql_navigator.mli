(** The "regular SQL interface" baseline (experiments E1/E2/E3).

    Applications without the XNF cache navigate structured data by issuing
    one SQL statement per step; every call pays the full query pipeline and,
    in the paper's setting, an inter-process round trip. This module counts
    calls and fetched rows so benchmarks can report measured cost and
    modeled IPC cost side by side. *)

open Relational

type t = {
  nav_db : Db.t;
  mutable calls : int;  (** SQL statements issued so far *)
  mutable rows_fetched : int;
}

(** [create db] is a navigator session over [db]. *)
val create : Db.t -> t

val calls : t -> int
val rows_fetched : t -> int

(** [reset nav] zeroes the counters. *)
val reset : t -> unit

(** [query nav sql] issues one SQL call and returns its rows. *)
val query : t -> string -> Row.t list

(** [query_one nav sql] issues one call expecting at most one row. *)
val query_one : t -> string -> Row.t option

(** [modeled_ipc_seconds nav ~ipc_us] is the additional time the paper's
    setting would have spent on inter-process round trips: one per call at
    [ipc_us] microseconds. *)
val modeled_ipc_seconds : t -> ipc_us:float -> float

(** [children_of nav ed ~child_query ~parent_schema ~parent_row] issues the
    per-step query of relationship [ed] for one parent tuple: the child
    derivation (joined with the USING table if any) with the parent's
    values substituted into the predicate — what a hand-written application
    does on every navigation step. *)
val children_of :
  t ->
  Xnf.Co_schema.edge_def ->
  child_query:Sql_ast.select ->
  parent_schema:Schema.t ->
  parent_row:Row.t ->
  Row.t list

(** [extract_navigational nav def] loads a whole CO the pre-XNF way: one
    query per root extent, then one query per (parent tuple, relationship).
    Returns the number of tuples fetched, counting the repeats sharing
    induces. *)
val extract_navigational : t -> Xnf.Co_schema.t -> int
