(* The paper's running example: the company database (Figs. 1-4).

   Two representations of the same information, as in Fig. 2:
     - CDB1 (implicit / FK): EMP.edno references DEPT, PROJ.pdno references
       DEPT, PROJ.pmgrno references EMP;
     - CDB2 (explicit link table): DEPTEMP(dedno, deeno) carries the
       EMPLOYMENT relationship.
   Skills and project membership are M:N link tables in both.

   [register_views] defines the paper's XNF views §3.2-§3.4 (ALL-DEPS,
   ALL-DEPS-ORG, EXT-ALL-DEPS-ORG) over whichever representation was
   populated. *)

open Relational

type scale = {
  n_depts : int;
  emps_per_dept : int;
  projs_per_dept : int;
  n_skills : int;
  skills_per_emp : int;
  skills_per_proj : int;
  emps_per_proj : int;
}

(** [small] is the hand-checkable scale used by tests and examples. *)
let small =
  { n_depts = 3; emps_per_dept = 2; projs_per_dept = 2; n_skills = 5; skills_per_emp = 2;
    skills_per_proj = 2; emps_per_proj = 2 }

(** [medium] is the default benchmark scale. *)
let medium =
  { n_depts = 50; emps_per_dept = 20; projs_per_dept = 5; n_skills = 100; skills_per_emp = 3;
    skills_per_proj = 2; emps_per_proj = 4 }

let locations = [| "NY"; "SF"; "LA"; "CHI"; "AUS" |]

type representation = Cdb1 | Cdb2

(** [populate db ~seed ~scale ~repr] creates and fills the company schema.
    [Cdb1] stores EMPLOYMENT implicitly (EMP.edno); [Cdb2] adds the
    explicit DEPTEMP link table and leaves EMP.edno NULL. *)
let populate db ~seed ~(scale : scale) ~repr =
  let rng = Rng.create seed in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER, dmgrno INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER, descr VARCHAR)";
      "CREATE TABLE proj (pno INTEGER PRIMARY KEY, pname VARCHAR, pdno INTEGER, pmgrno INTEGER, pbudget INTEGER)";
      "CREATE TABLE skills (sno INTEGER PRIMARY KEY, sname VARCHAR, slevel INTEGER)";
      "CREATE TABLE empskill (eseno INTEGER, essno INTEGER)";
      "CREATE TABLE projskill (pspno INTEGER, pssno INTEGER)";
      "CREATE TABLE empproj (epeno INTEGER, eppno INTEGER, percentage INTEGER)";
      "CREATE INDEX emp_edno ON emp (edno)";
      "CREATE INDEX proj_pdno ON proj (pdno)";
      "CREATE INDEX empproj_eno ON empproj (epeno)";
      "CREATE INDEX empproj_pno ON empproj (eppno)" ];
  if repr = Cdb2 then begin
    ignore (Db.exec db "CREATE TABLE deptemp (dedno INTEGER, deeno INTEGER)");
    ignore (Db.exec db "CREATE INDEX deptemp_dno ON deptemp (dedno)")
  end;
  let catalog = Db.catalog db in
  let dept = Catalog.table catalog "dept"
  and emp = Catalog.table catalog "emp"
  and proj = Catalog.table catalog "proj"
  and skills = Catalog.table catalog "skills"
  and empskill = Catalog.table catalog "empskill"
  and projskill = Catalog.table catalog "projskill"
  and empproj = Catalog.table catalog "empproj" in
  for s = 0 to scale.n_skills - 1 do
    ignore
      (Table.insert skills
         [| Value.Int s; Value.Str (Printf.sprintf "skill%d" s); Value.Int (Rng.in_range rng 1 5) |])
  done;
  let eno = ref 0 and pno = ref 0 in
  let all_emps = ref [] in
  for d = 0 to scale.n_depts - 1 do
    let demps = ref [] in
    for _ = 1 to scale.emps_per_dept do
      let e = !eno in
      incr eno;
      demps := e :: !demps;
      all_emps := e :: !all_emps;
      let edno = match repr with Cdb1 -> Value.Int d | Cdb2 -> Value.Null in
      ignore
        (Table.insert emp
           [| Value.Int e; Value.Str (Printf.sprintf "emp%d" e);
              Value.Int (Rng.in_range rng 500 5000); edno;
              Value.Str (if Rng.bool rng 0.2 then "staff" else "regular") |]);
      if repr = Cdb2 then
        ignore
          (Table.insert (Catalog.table catalog "deptemp") [| Value.Int d; Value.Int e |]);
      for _ = 1 to scale.skills_per_emp do
        ignore
          (Table.insert empskill [| Value.Int e; Value.Int (Rng.int rng scale.n_skills) |])
      done
    done;
    let demps = Array.of_list !demps in
    ignore
      (Table.insert dept
         [| Value.Int d; Value.Str (Printf.sprintf "dept%d" d); Value.Str (Rng.choice rng locations);
            Value.Int (Rng.in_range rng 100 5000); Value.Int (Rng.choice rng demps) |]);
    for _ = 1 to scale.projs_per_dept do
      let p = !pno in
      incr pno;
      ignore
        (Table.insert proj
           [| Value.Int p; Value.Str (Printf.sprintf "proj%d" p); Value.Int d;
              Value.Int (Rng.choice rng demps); Value.Int (Rng.in_range rng 50 3000) |]);
      for _ = 1 to scale.skills_per_proj do
        ignore (Table.insert projskill [| Value.Int p; Value.Int (Rng.int rng scale.n_skills) |])
      done;
      let members = Array.of_list !all_emps in
      for _ = 1 to scale.emps_per_proj do
        ignore
          (Table.insert empproj
             [| Value.Int (Rng.choice rng members); Value.Int p; Value.Int (Rng.in_range rng 10 100) |])
      done
    done
  done

(** The paper's ALL-DEPS view (§3.2), for the CDB1 representation. *)
let all_deps_cdb1 =
  "CREATE VIEW ALL-DEPS AS OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ, \
   employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
   ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno) TAKE *"

(** ALL-DEPS over the CDB2 representation: the EMPLOYMENT relationship is
    derived from the DEPTEMP link table instead of the FK — same abstract
    CO, different derivation (Fig. 2). *)
let all_deps_cdb2 =
  "CREATE VIEW ALL-DEPS AS OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ, \
   employment AS (RELATE Xdept, Xemp USING DEPTEMP de \
   WHERE Xdept.dno = de.dedno AND Xemp.eno = de.deeno), \
   ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno) TAKE *"

(** ALL-DEPS-ORG (§3.2): adds the attributed M:N 'membership' relationship
    over EMPPROJ. *)
let all_deps_org =
  "CREATE VIEW ALL-DEPS-ORG AS OUT OF ALL-DEPS, \
   membership AS (RELATE Xproj, Xemp WITH ATTRIBUTES ep.percentage AS percentage \
   USING EMPPROJ ep WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno) TAKE *"

(** EXT-ALL-DEPS-ORG (§3.4): adds 'projmanagement', closing a cycle with
    'membership' — a structurally recursive CO. *)
let ext_all_deps_org =
  "CREATE VIEW EXT-ALL-DEPS-ORG AS OUT OF ALL-DEPS-ORG, \
   projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno) TAKE *"

(** The full-organization view with skills, matching Fig. 1. *)
let org_unit =
  "CREATE VIEW ORG-UNIT AS OUT OF ALL-DEPS, Xskill AS SKILLS, \
   empproperty AS (RELATE Xemp, Xskill USING EMPSKILL es \
   WHERE Xemp.eno = es.eseno AND Xskill.sno = es.essno), \
   projproperty AS (RELATE Xproj, Xskill USING PROJSKILL ps \
   WHERE Xproj.pno = ps.pspno AND Xskill.sno = ps.pssno) TAKE *"

(** [register_views api ~repr] defines the paper's views for the chosen
    representation. *)
let register_views api ~repr =
  let defs =
    [ (match repr with Cdb1 -> all_deps_cdb1 | Cdb2 -> all_deps_cdb2);
      all_deps_org; ext_all_deps_org; org_unit ]
  in
  List.iter (fun d -> ignore (Xnf.Api.exec api d)) defs
