(* A CAD/design database with versions, alternatives and configurations —
   the working-set scenario of the paper's introduction.

   Documents have versions; versions aggregate components; a configuration
   selects one version of each of a few documents. The working set of an
   application is one configuration: its versions, their components, and
   the referenced documents. With many configurations and large documents
   the working-set selectivity reaches the 10^-4..10^-5 regime the paper
   quotes for design databases (E3). *)

open Relational

type scale = {
  n_docs : int;
  versions_per_doc : int;
  components_per_version : int;
  n_configs : int;
  docs_per_config : int;
}

(** [scale_for ~selectivity ~working_set_rows] derives a database size such
    that one configuration's rows are roughly [working_set_rows] and the
    working set is the fraction [selectivity] of the database. *)
let scale_for ~selectivity ~working_set_rows =
  let docs_per_config = 4 in
  let components_per_version = max 1 ((working_set_rows / docs_per_config) - 2) in
  let total_rows = int_of_float (float_of_int working_set_rows /. selectivity) in
  let rows_per_doc_version = components_per_version + 2 in
  let n_versions = max docs_per_config (total_rows / rows_per_doc_version) in
  let versions_per_doc = 4 in
  { n_docs = max 1 (n_versions / versions_per_doc); versions_per_doc; components_per_version;
    n_configs = 1; docs_per_config }

(** [populate db ~seed ~scale] creates and fills DOC/VERSION/COMPONENT/
    CONFIG/CONFIGVER. *)
let populate db ~seed ~(scale : scale) =
  let rng = Rng.create seed in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE doc (docid INTEGER PRIMARY KEY, title VARCHAR, dtype VARCHAR)";
      "CREATE TABLE version (vid INTEGER PRIMARY KEY, vdocid INTEGER, vnum INTEGER, status VARCHAR)";
      "CREATE TABLE component (cid INTEGER PRIMARY KEY, cvid INTEGER, cname VARCHAR, weight INTEGER)";
      "CREATE TABLE config (cfgid INTEGER PRIMARY KEY, cfgname VARCHAR)";
      "CREATE TABLE configver (cvcfgid INTEGER, cvvid INTEGER)";
      "CREATE INDEX version_doc ON version (vdocid)";
      "CREATE INDEX component_vid ON component (cvid)";
      "CREATE INDEX configver_cfg ON configver (cvcfgid)" ];
  let catalog = Db.catalog db in
  let doc = Catalog.table catalog "doc"
  and version = Catalog.table catalog "version"
  and component = Catalog.table catalog "component"
  and config = Catalog.table catalog "config"
  and configver = Catalog.table catalog "configver" in
  let vid = ref 0 and cid = ref 0 in
  let dtypes = [| "wing"; "fuselage"; "engine"; "gear" |] in
  for d = 0 to scale.n_docs - 1 do
    ignore
      (Table.insert doc
         [| Value.Int d; Value.Str (Printf.sprintf "doc%d" d); Value.Str (Rng.choice rng dtypes) |]);
    for v = 0 to scale.versions_per_doc - 1 do
      let this_vid = !vid in
      incr vid;
      ignore
        (Table.insert version
           [| Value.Int this_vid; Value.Int d; Value.Int v;
              Value.Str (if v = scale.versions_per_doc - 1 then "current" else "frozen") |]);
      for _ = 1 to scale.components_per_version do
        let this_cid = !cid in
        incr cid;
        ignore
          (Table.insert component
             [| Value.Int this_cid; Value.Int this_vid; Value.Str (Printf.sprintf "c%d" this_cid);
                Value.Int (Rng.in_range rng 1 500) |])
      done
    done
  done;
  (* configurations pick one version of [docs_per_config] random docs *)
  for cfg = 0 to scale.n_configs - 1 do
    ignore (Table.insert config [| Value.Int cfg; Value.Str (Printf.sprintf "cfg%d" cfg) |]);
    for _ = 1 to scale.docs_per_config do
      let d = Rng.int rng scale.n_docs in
      let v = Rng.int rng scale.versions_per_doc in
      let picked_vid = (d * scale.versions_per_doc) + v in
      ignore (Table.insert configver [| Value.Int cfg; Value.Int picked_vid |])
    done
  done

(** [working_set_query cfgid] is the XNF query extracting configuration
    [cfgid]'s working set as one composite object. *)
let working_set_query cfgid =
  Printf.sprintf
    "OUT OF Xcfg AS (SELECT * FROM config WHERE cfgid = %d), Xver AS VERSION, \
     Xcomp AS COMPONENT, Xdoc AS DOC, \
     selection AS (RELATE Xcfg, Xver USING CONFIGVER cv \
     WHERE Xcfg.cfgid = cv.cvcfgid AND Xver.vid = cv.cvvid), \
     content AS (RELATE Xver, Xcomp WHERE Xver.vid = Xcomp.cvid), \
     described_by AS (RELATE Xver, Xdoc WHERE Xver.vdocid = Xdoc.docid) TAKE *"
    cfgid

(** [total_rows db] is the database size in rows (for selectivity
    reporting). *)
let total_rows db =
  let catalog = Db.catalog db in
  List.fold_left
    (fun acc name -> acc + Table.cardinality (Catalog.table catalog name))
    0
    [ "doc"; "version"; "component"; "config"; "configver" ]
