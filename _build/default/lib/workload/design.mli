(** A CAD/design database with versions and configurations — the
    working-set scenario of the paper's introduction (experiment E3).

    Documents have versions; versions aggregate components; a configuration
    selects one version of each of a few documents. The working set of an
    application is one configuration: its versions, their components, and
    the referenced documents. *)

open Relational

type scale = {
  n_docs : int;
  versions_per_doc : int;
  components_per_version : int;
  n_configs : int;
  docs_per_config : int;
}

(** [scale_for ~selectivity ~working_set_rows] derives a database size such
    that one configuration holds roughly [working_set_rows] rows at the
    given selectivity. *)
val scale_for : selectivity:float -> working_set_rows:int -> scale

(** [populate db ~seed ~scale] creates and fills
    DOC/VERSION/COMPONENT/CONFIG/CONFIGVER with FK indexes. *)
val populate : Db.t -> seed:int -> scale:scale -> unit

(** [working_set_query cfgid] is the XNF query extracting configuration
    [cfgid]'s working set as one composite object. *)
val working_set_query : int -> string

(** [total_rows db] is the database size in rows, for selectivity
    reporting. *)
val total_rows : Db.t -> int
