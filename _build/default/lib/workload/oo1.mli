(** The Cattell OO1 ("Sun") engineering-database benchmark.

    Regenerates the published benchmark database — PART with N parts,
    CONNECTION with exactly 3 outgoing connections per part, 90% of them
    within the nearest 1% of part ids — and the draw sequences for its
    lookup / traversal / insert workloads (used by experiment E2). *)

open Relational

(** [populate db ~seed ~n_parts] creates PART/CONNECTION (with indexes on
    both connection endpoints) and fills them per the OO1 rules. *)
val populate : Db.t -> seed:int -> n_parts:int -> unit

(** The OO1 database as a composite object: PART is the root component and
    CONNECTION is schema-shared between the 'outgoing' (source side) and
    'target' (destination side) relationships; a traversal hop crosses
    'outgoing' forward and 'target' backward. *)
val parts_co_query : string

(** [lookup_ids rng ~n_parts ~count] draws the id sequence for the lookup
    workload. *)
val lookup_ids : Rng.t -> n_parts:int -> count:int -> int list

(** [traversal_roots rng ~n_parts ~count] draws the start parts for the
    traversal workload. *)
val traversal_roots : Rng.t -> n_parts:int -> count:int -> int list

(** [insert_batch rng ~n_parts ~count] builds the insert workload: [count]
    new parts (fresh ids from [n_parts]) each with 3 connection targets. *)
val insert_batch : Rng.t -> n_parts:int -> count:int -> (Row.t * int list) list
