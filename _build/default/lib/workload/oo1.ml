(* The Cattell OO1 ("Sun") engineering-database benchmark.

   The paper positions XNF's cache-navigation speedup as "comparable to the
   performance improvement of OODBMS over relational DBMSs reported in
   Cattell's benchmark" (§4.2) — this module regenerates that benchmark's
   database and workloads so E2 can test the claim:

     - PART(id, type, x, y, build): N parts;
     - CONNECTION(from_id, to_id, type, length): exactly 3 outgoing
       connections per part, 90% of them to the nearest 1% of part ids
       (locality of reference), the rest uniform;
     - workloads: lookup (1000 random parts), traversal (depth-7 DFS along
       connections from a random part, counting visits with repeats),
       insert (100 parts with 3 connections each). *)

open Relational

let part_types = [| "part-type0"; "part-type1"; "part-type2"; "part-type3" |]
let conn_types = [| "conn-type0"; "conn-type1" |]

(** [populate db ~seed ~n_parts] creates PART/CONNECTION and fills them per
    the OO1 rules. *)
let populate db ~seed ~n_parts =
  let rng = Rng.create seed in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE part (id INTEGER PRIMARY KEY, ptype VARCHAR, x INTEGER, y INTEGER, build INTEGER)";
      "CREATE TABLE connection (from_id INTEGER, to_id INTEGER, ctype VARCHAR, clength INTEGER)";
      "CREATE INDEX conn_from ON connection (from_id)";
      "CREATE INDEX conn_to ON connection (to_id)" ];
  let part = Catalog.table (Db.catalog db) "part"
  and conn = Catalog.table (Db.catalog db) "connection" in
  for i = 0 to n_parts - 1 do
    ignore
      (Table.insert part
         [| Value.Int i; Value.Str (Rng.choice rng part_types); Value.Int (Rng.int rng 100000);
            Value.Int (Rng.int rng 100000); Value.Int (Rng.int rng 10000) |])
  done;
  let zone = max 1 (n_parts / 100) in
  for i = 0 to n_parts - 1 do
    for _ = 1 to 3 do
      let target =
        if Rng.bool rng 0.9 then begin
          (* 90% locality: within +-zone/2 of i *)
          let t = i + Rng.in_range rng (-zone / 2) (zone / 2) in
          ((t mod n_parts) + n_parts) mod n_parts
        end
        else Rng.int rng n_parts
      in
      ignore
        (Table.insert conn
           [| Value.Int i; Value.Int target; Value.Str (Rng.choice rng conn_types);
              Value.Int (Rng.in_range rng 1 100) |])
    done
  done

(** The OO1 database as a composite object: PART is the root component and
    CONNECTION is schema-shared between the 'outgoing' (source side) and
    'target' (destination side) relationships. A traversal hop is
    part -(outgoing)-> connection -(target, reverse direction)-> part;
    XNF relationships are traversable in either direction (§2). *)
let parts_co_query =
  "OUT OF Xpart AS PART, Xconn AS CONNECTION, \
   outgoing AS (RELATE Xpart, Xconn WHERE Xpart.id = Xconn.from_id), \
   target AS (RELATE Xpart, Xconn WHERE Xpart.id = Xconn.to_id) TAKE *"

(** [lookup_ids rng ~n_parts ~count] draws the id sequence for the lookup
    workload. *)
let lookup_ids rng ~n_parts ~count = List.init count (fun _ -> Rng.int rng n_parts)

(** [traversal_roots rng ~n_parts ~count] draws the start parts for the
    traversal workload. *)
let traversal_roots rng ~n_parts ~count = List.init count (fun _ -> Rng.int rng n_parts)

(** [insert_batch rng ~n_parts ~count] builds the rows for the insert
    workload: [count] new parts, each with 3 connections to random existing
    parts. Returns [(part_row, connection_targets)] with fresh ids starting
    at [n_parts]. *)
let insert_batch rng ~n_parts ~count =
  List.init count (fun k ->
      let id = n_parts + k in
      let row =
        [| Value.Int id; Value.Str (Rng.choice rng part_types); Value.Int (Rng.int rng 100000);
           Value.Int (Rng.int rng 100000); Value.Int (Rng.int rng 10000) |]
      in
      (row, List.init 3 (fun _ -> Rng.int rng n_parts)))
