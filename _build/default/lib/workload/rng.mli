(** Deterministic splittable PRNG (splitmix64).

    Every workload generator and benchmark draw goes through this module so
    that all experiments are bit-for-bit reproducible across runs and
    machines. *)

type t

(** [create seed] is a generator seeded with [seed]. *)
val create : int -> t

(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** [in_range t lo hi] is uniform in [lo, hi] inclusive. *)
val in_range : t -> int -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool

(** [choice t arr] picks a uniform element of [arr]. *)
val choice : t -> 'a array -> 'a

(** [split t] derives an independent generator whose draws do not perturb
    [t]'s stream. *)
val split : t -> t

(** [shuffle t arr] shuffles [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
