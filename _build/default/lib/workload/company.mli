(** The paper's running example: the company database (Figs. 1–4).

    Two representations of the same information, as in Fig. 2 of the paper:
    [Cdb1] stores the EMPLOYMENT relationship implicitly (EMP.edno foreign
    key); [Cdb2] stores it explicitly in the DEPTEMP link table. Skills and
    project membership are M:N link tables in both. *)

open Relational

type scale = {
  n_depts : int;
  emps_per_dept : int;
  projs_per_dept : int;
  n_skills : int;
  skills_per_emp : int;
  skills_per_proj : int;
  emps_per_proj : int;
}

(** Hand-checkable scale used by tests and examples (3 departments). *)
val small : scale

(** Default benchmark scale (50 departments, 1000 employees). *)
val medium : scale

type representation = Cdb1 | Cdb2

(** [populate db ~seed ~scale ~repr] creates and fills the company schema
    (tables, FK indexes, link tables) deterministically. *)
val populate : Db.t -> seed:int -> scale:scale -> repr:representation -> unit

(** The XNF view definitions of §3.2–§3.4, as statement text. *)

val all_deps_cdb1 : string
val all_deps_cdb2 : string
val all_deps_org : string
val ext_all_deps_org : string
val org_unit : string

(** [register_views api ~repr] defines ALL-DEPS (for the chosen
    representation), ALL-DEPS-ORG, EXT-ALL-DEPS-ORG and ORG-UNIT. *)
val register_views : Xnf.Api.t -> repr:representation -> unit
