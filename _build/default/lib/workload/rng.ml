(* Deterministic splittable PRNG (splitmix64).

   Every workload generator and benchmark draw goes through this module so
   that all experiments are bit-for-bit reproducible across runs and
   machines. *)

type t = { mutable state : int64 }

(** [create seed] is a generator seeded with [seed]. *)
let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

(** [in_range t lo hi] is uniform in [lo, hi] inclusive. *)
let in_range t lo hi = lo + int t (hi - lo + 1)

(** [float t] is uniform in [0, 1). *)
let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) /. 9007199254740992.0

(** [bool t p] is true with probability [p]. *)
let bool t p = float t < p

(** [choice t arr] picks a uniform element of [arr]. *)
let choice t arr = arr.(int t (Array.length arr))

(** [split t] derives an independent generator (for parallel streams that
    must not perturb each other's sequences). *)
let split t = { state = next_int64 t }

(** [shuffle t arr] shuffles [arr] in place (Fisher–Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
