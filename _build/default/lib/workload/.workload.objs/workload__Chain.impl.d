lib/workload/chain.ml: Buffer Catalog Db Printf Relational Rng Table Value
