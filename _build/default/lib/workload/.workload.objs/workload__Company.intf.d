lib/workload/company.mli: Db Relational Xnf
