lib/workload/design.ml: Catalog Db List Printf Relational Rng Table Value
