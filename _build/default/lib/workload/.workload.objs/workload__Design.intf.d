lib/workload/design.mli: Db Relational
