lib/workload/rng.mli:
