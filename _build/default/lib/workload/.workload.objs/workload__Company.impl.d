lib/workload/company.ml: Array Catalog Db List Printf Relational Rng Table Value Xnf
