lib/workload/oo1.ml: Catalog Db List Relational Rng Table Value
