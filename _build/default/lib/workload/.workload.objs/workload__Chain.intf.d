lib/workload/chain.mli: Db Relational
