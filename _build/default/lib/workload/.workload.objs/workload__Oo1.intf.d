lib/workload/oo1.mli: Db Relational Rng Row
