(** Table schemas: ordered columns with names, types, nullability and the
    qualifier (table alias) they are visible under. Joins concatenate
    schemas; qualified lookup resolves ambiguity. *)

type ty = Ty_int | Ty_float | Ty_string | Ty_bool

val ty_to_string : ty -> string

type column = {
  col_name : string;  (** unqualified column name (lowercased) *)
  col_qualifier : string;  (** table alias the column comes from ("" if none) *)
  col_ty : ty;
  col_nullable : bool;
}

type t

(** [column ?qualifier ?nullable name ty] builds a column definition
    (names are lowercased; [nullable] defaults to [true]). *)
val column : ?qualifier:string -> ?nullable:bool -> string -> ty -> column

val make : column list -> t
val arity : t -> int
val col : t -> int -> column
val columns : t -> column list

(** [requalify alias s] re-tags all columns with [alias] — used when a
    table comes into scope under an alias. *)
val requalify : string -> t -> t

(** [concat a b] is the schema of a join output. *)
val concat : t -> t -> t

exception Ambiguous_column of string
exception Unknown_column of string

(** [find s ?qualifier name] is the index of the named column.
    @raise Unknown_column when absent.
    @raise Ambiguous_column when several match. *)
val find : t -> ?qualifier:string -> string -> int

(** [find_opt] is {!find} returning [None] when absent or ambiguous. *)
val find_opt : t -> ?qualifier:string -> string -> int option

val pp : Format.formatter -> t -> unit

(** [value_matches ty v] checks that [v] inhabits [ty] (NULL inhabits every
    type; Int widens into Float columns). *)
val value_matches : ty -> Value.t -> bool
