(* Plan optimization: QGM -> physical plan.

   Responsibilities, in the spirit of the Starburst plan optimizer the
   paper reuses (§4.3):
     - access-path selection: equality predicates against literals become
       index scans when a matching index exists;
     - join-method selection: indexed nested-loop when the inner is a base
       table with a matching index on the equi-join key, hash join for other
       equi-joins, nested loop otherwise;
     - build/probe side choice for hash joins by cardinality estimate.

   Join *ordering* is inherited from the rewritten QGM (left-deep in FROM
   order with pushed-down predicates); the paper notes that handling of
   parent/child joins dominates XNF workloads, and those arrive here as
   indexed equi-joins. *)

exception Plan_error of string

(* split [pred] into (equi-join key pairs, residual) over a join with
   [lw] left columns *)
let split_equi lw pred =
  let conjuncts = Expr.conjuncts pred in
  let is_left e = List.for_all (fun i -> i < lw) (Expr.cols e) in
  let is_right e = List.for_all (fun i -> i >= lw) (Expr.cols e) in
  let no_sub e = not (Expr.has_subplan e) in
  List.fold_left
    (fun (keys, residual) c ->
      match c with
      | Expr.Cmp (Expr.Eq, a, b) when no_sub a && no_sub b ->
        if is_left a && is_right b then ((a, Expr.shift (-lw) b) :: keys, residual)
        else if is_right a && is_left b then ((b, Expr.shift (-lw) a) :: keys, residual)
        else (keys, c :: residual)
      | c -> (keys, c :: residual))
    ([], []) conjuncts

let plan_kind = function
  | Qgm.Inner -> Plan.Inner
  | Qgm.Left -> Plan.Left
  | Qgm.Semi -> Plan.Semi
  | Qgm.Anti -> Plan.Anti

(* try to see through trivial wrappers to a base-table access whose row
   layout equals the node's output (so index column positions line up) *)
let rec base_table catalog = function
  | Qgm.Access { table; _ } -> Some (Catalog.table catalog table, [])
  | Qgm.Temp { table; _ } -> Some (table, [])
  | Qgm.Select { input; pred } -> begin
    match base_table catalog input with
    | Some (t, preds) -> Some (t, pred :: preds)
    | None -> None
  end
  | _ -> None

(** [lower catalog node] translates rewritten QGM to a physical plan. *)
let rec lower catalog node : Plan.t =
  match node with
  | Qgm.Access { table; _ } -> Plan.Seq_scan (Catalog.table catalog table)
  | Qgm.Temp { table; _ } -> Plan.Seq_scan table
  | Qgm.Values { rows; _ } -> Plan.Values rows
  | Qgm.Select { input; pred } -> begin
    (* access-path selection: constant equality conjuncts -> index scan *)
    match base_table catalog input with
    | Some (table, extra_preds) -> begin
      let conjuncts = List.concat_map Expr.conjuncts (pred :: extra_preds) in
      let const_eq =
        List.filter_map
          (fun c ->
            match c with
            | Expr.Cmp (Expr.Eq, Expr.Col i, (Expr.Lit _ as v))
            | Expr.Cmp (Expr.Eq, (Expr.Lit _ as v), Expr.Col i) ->
              Some (i, v, c)
            | _ -> None)
          conjuncts
      in
      let pick =
        List.find_map
          (fun idx ->
            let key_cols = Array.to_list (Index.cols idx) in
            let bindings =
              List.map
                (fun kc -> List.find_opt (fun (i, _, _) -> i = kc) const_eq)
                key_cols
            in
            if List.for_all Option.is_some bindings then
              Some (idx, List.map Option.get bindings)
            else None)
          (Table.indexes table)
      in
      match pick with
      | Some (idx, bindings) ->
        let used = List.map (fun (_, _, c) -> c) bindings in
        let residual = List.filter (fun c -> not (List.memq c used)) conjuncts in
        let scan = Plan.Index_scan { table; index = idx; key = List.map (fun (_, v, _) -> v) bindings } in
        if residual = [] then scan else Plan.Filter (scan, Expr.conjoin residual)
      | None -> Plan.Filter (lower catalog input, pred)
    end
    | None -> Plan.Filter (lower catalog input, pred)
  end
  | Qgm.Project { input; cols } ->
    Plan.Project (lower catalog input, Array.of_list (List.map fst cols))
  | Qgm.Join { kind; left; right; pred } -> begin
    let lw = Schema.arity (Qgm.schema_of catalog left) in
    let rw = Schema.arity (Qgm.schema_of catalog right) in
    let kind' = plan_kind kind in
    match pred with
    | None ->
      Plan.Nl_join { kind = kind'; left = lower catalog left; right = lower catalog right;
                     pred = None; right_width = rw }
    | Some pred -> begin
      let keys, residual = split_equi lw pred in
      if keys = [] then
        Plan.Nl_join { kind = kind'; left = lower catalog left; right = lower catalog right;
                       pred = Some pred; right_width = rw }
      else begin
        let left_keys = List.map fst keys and right_keys = List.map snd keys in
        let extra = match residual with [] -> None | cs -> Some (Expr.conjoin cs) in
        (* indexed nested loop when the inner side is a bare table with an
           index on exactly the join key columns *)
        let indexed =
          match right with
          | Qgm.Access { table; _ } -> begin
            let table = Catalog.table catalog table in
            let key_cols =
              List.map (function Expr.Col j -> Some j | _ -> None) right_keys
            in
            if List.for_all Option.is_some key_cols then begin
              let key_cols = List.map Option.get key_cols in
              match Table.find_index table ~cols:(Array.of_list key_cols) with
              | Some idx -> Some (table, idx)
              | None -> None
            end
            else None
          end
          | _ -> None
        in
        match indexed with
        | Some (table, index) ->
          Plan.Index_nl_join
            { kind = kind'; left = lower catalog left; table; index; key_of_left = left_keys;
              extra; right_width = rw }
        | None ->
          Plan.Hash_join
            { kind = kind'; left = lower catalog left; right = lower catalog right;
              left_keys; right_keys; extra; right_width = rw }
      end
    end
  end
  | Qgm.Group { input; keys; aggs } ->
    Plan.Group
      { input = lower catalog input; keys = List.map fst keys;
        aggs = List.map (fun a -> (a.Qgm.agg_fn, a.Qgm.agg_arg, a.Qgm.agg_distinct)) aggs }
  | Qgm.Distinct input -> Plan.Distinct (lower catalog input)
  | Qgm.Order { input; keys } -> Plan.Sort { input = lower catalog input; keys }
  | Qgm.Limit (input, n) -> Plan.Limit (lower catalog input, n)
  | Qgm.Union_all (a, b) -> Plan.Union_all (lower catalog a, lower catalog b)

(** [optimize ?rewrite catalog node] runs query rewrite (unless disabled)
    and lowers to a physical plan. *)
let optimize ?(rewrite = true) catalog node =
  let node = if rewrite then Rewrite.rewrite catalog node else node in
  lower catalog node
