(** Name resolution and typing: SQL AST -> QGM.

    The binder resolves table and column names against the catalog, expands
    tabular views inline, types projection outputs, lowers subqueries to
    subplan expression nodes, and folds UNION chains. Correlated subqueries
    may reference the immediately enclosing scope; such references become
    {!Expr.Param} indexes into the outer row, and subquery bodies are
    compiled through the [compile] callback supplied by the session (which
    keeps the binder independent of the optimizer). *)

exception Bind_error of string

type env

(** [make_env catalog ~compile] is a top-level binding environment;
    [compile] turns a (possibly parameterized) subquery body into its
    evaluation function. *)
val make_env : Catalog.t -> compile:(Qgm.t -> Row.t -> Row.t Seq.t) -> env

(** [bind_expr env schema e] resolves and binds one expression against
    [schema]. @raise Bind_error on unknown/ambiguous names. *)
val bind_expr : env -> Schema.t -> Sql_ast.expr -> Expr.t

(** [infer_ty env schema e] is the static type of a bound expression. *)
val infer_ty : env -> Schema.t -> Expr.t -> Schema.ty

(** [bind env q] binds a parsed SELECT to QGM.
    @raise Bind_error on semantic errors. *)
val bind : env -> Sql_ast.select -> Qgm.t
