(** SQL values and three-valued logic.

    Values are dynamically typed at this layer; static typing is enforced
    by the binder. Comparison follows SQL semantics: any comparison
    involving NULL is unknown; numeric values compare across Int/Float. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** SQL's TRUE / FALSE / UNKNOWN. *)
type truth = True | False | Unknown

val truth_of_bool : bool -> truth

(** [is_true t] holds only for [True] — SQL WHERE semantics (UNKNOWN rows
    are rejected). *)
val is_true : truth -> bool

(** Kleene conjunction / disjunction / negation. *)

val truth_and : truth -> truth -> truth
val truth_or : truth -> truth -> truth
val truth_not : truth -> truth

val is_null : t -> bool

(** [compare_total a b] is a total order used for sorting and index keys:
    NULLs first, numbers compare across Int/Float, distinct runtime types
    in a fixed arbitrary order. *)
val compare_total : t -> t -> int

(** [compare_sql a b] is SQL comparison: [None] when either side is NULL,
    otherwise [Some c] as in {!compare_total}. *)
val compare_sql : t -> t -> int option

(** Equality under the total order (NULL = NULL; [Int 1] = [Float 1.]). *)
val equal : t -> t -> bool

(** Hashing consistent with {!equal}. *)
val hash : t -> int

val to_string : t -> string

(** [to_sql_literal v] renders [v] as a SQL literal (strings quoted and
    escaped). *)
val to_sql_literal : t -> string

val pp : Format.formatter -> t -> unit

(** Numeric coercions. @raise Invalid_argument on non-numeric input. *)

val as_float : t -> float
val as_int : t -> int

(** @raise Invalid_argument on non-strings. *)
val as_string : t -> string

(** [arith op a b] applies SQL arithmetic with NULL propagation; division
    by zero yields NULL; [`Add] on strings concatenates.
    @raise Invalid_argument on type mismatches. *)
val arith : [ `Add | `Sub | `Mul | `Div | `Mod ] -> t -> t -> t
