(** Plan optimization: QGM -> physical plan.

    Responsibilities, in the spirit of the Starburst plan optimizer the
    paper reuses (§4.3): access-path selection (constant equality
    predicates become index scans when a matching index exists) and
    join-method selection (indexed nested-loop when the inner side is a
    base table with an index on the equi-join key, hash join for other
    equi-joins, nested loop otherwise). Join ordering is inherited from the
    rewritten QGM. *)

exception Plan_error of string

(** [lower catalog node] translates (rewritten) QGM to a physical plan. *)
val lower : Catalog.t -> Qgm.t -> Plan.t

(** [optimize ?rewrite catalog node] runs query rewrite (unless disabled)
    and lowers to a physical plan. *)
val optimize : ?rewrite:bool -> Catalog.t -> Qgm.t -> Plan.t
