(** Transaction manager: explicit BEGIN/COMMIT/ROLLBACK with WAL-based
    undo. Outside an explicit transaction every statement auto-commits. *)

type t

exception Txn_error of string

(** [create catalog] is a transaction manager logging to a fresh WAL. *)
val create : Catalog.t -> t

(** [wal t] exposes the log (recovery tests, inspection). *)
val wal : t -> Wal.t

(** [in_txn t] is whether an explicit transaction is open. *)
val in_txn : t -> bool

(** @raise Txn_error if a transaction is already open. *)
val begin_txn : t -> unit

(** @raise Txn_error if none is open. *)
val commit : t -> unit

(** Undoes the open transaction's DML newest-first using the log's
    before-images. @raise Txn_error if none is open. *)
val rollback : t -> unit

(** [log_dml t r] appends a DML record, tracking it for rollback when a
    transaction is open. *)
val log_dml : t -> Wal.record -> unit
