(** QGM query rewrite — the rule-based rewrite stage of the paper's Fig. 8.

    Rules, applied to fixpoint (bounded): select-merge, select-through-
    project (column remapping), select-through-join (per-side pushdown;
    conjuncts spanning an inner join become join predicates, enabling hash
    joins), select-through-group (key-only conjuncts), pushdown into
    Distinct/Order/Union, project-merge, and name-preserving identity-
    projection elimination. Predicates containing subplans or parameters
    are never moved (their correlation closures capture the bind layout).

    The XNF translator deliberately emits straightforward operator stacks
    and defers cleanup here, exactly as the paper describes (§4.3). *)

(** [rewrite catalog node] applies the rule set to fixpoint and returns the
    rewritten tree. *)
val rewrite : Catalog.t -> Qgm.t -> Qgm.t
