(* Query Graph Model — the engine's internal query representation.

   Starburst's QGM represents a query as boxes (SELECT, GROUP BY, UNION)
   whose bodies range over quantifiers; here each box is a node of a logical
   operator tree and quantifiers correspond to join inputs: F-quantifiers
   are [Inner]/[Left] joins, E- and A-quantifiers are [Semi] and [Anti]
   joins. The XNF translator (lib/core) produces trees in this
   representation, exactly as the paper's "XNF semantic rewrite" targets
   QGM SELECT operators (§4.3).

   Expressions are positional over the node's input row; [Project] and
   [Group] carry their output schemas (computed by the binder) so that
   schema derivation needs no type inference. *)

type join_kind = Inner | Left | Semi | Anti

type agg = {
  agg_fn : Expr.agg_fn;
  agg_arg : Expr.t option;  (** [None] only for [Count_star] *)
  agg_distinct : bool;  (** aggregate over distinct argument values *)
  agg_out : Schema.column;
}

type t =
  | Access of { table : string; alias : string }  (** base-table quantifier *)
  | Temp of { table : Table.t; alias : string }
      (** shared materialized intermediate — the common-subexpression
          mechanism used by the XNF translator *)
  | Values of { schema : Schema.t; rows : Row.t list }
  | Select of { input : t; pred : Expr.t }
  | Project of { input : t; cols : (Expr.t * Schema.column) list }
  | Join of { kind : join_kind; left : t; right : t; pred : Expr.t option }
  | Group of { input : t; keys : (Expr.t * Schema.column) list; aggs : agg list }
  | Distinct of t
  | Order of { input : t; keys : (Expr.t * Sql_ast.order_dir) list }
  | Limit of t * int
  | Union_all of t * t

(** [schema_of catalog q] derives the output schema of [q]. *)
let rec schema_of catalog q =
  match q with
  | Access { table; alias } -> Schema.requalify alias (Table.schema (Catalog.table catalog table))
  | Temp { table; alias } -> Schema.requalify alias (Table.schema table)
  | Values { schema; _ } -> schema
  | Select { input; _ } -> schema_of catalog input
  | Project { cols; _ } -> Schema.make (List.map snd cols)
  | Join { kind; left; right; _ } -> begin
    match kind with
    | Inner -> Schema.concat (schema_of catalog left) (schema_of catalog right)
    | Left ->
      let r = schema_of catalog right in
      let r = Schema.make (List.map (fun c -> { c with Schema.col_nullable = true }) (Schema.columns r)) in
      Schema.concat (schema_of catalog left) r
    | Semi | Anti -> schema_of catalog left
  end
  | Group { keys; aggs; _ } ->
    Schema.make (List.map snd keys @ List.map (fun a -> a.agg_out) aggs)
  | Distinct input -> schema_of catalog input
  | Order { input; _ } -> schema_of catalog input
  | Limit (input, _) -> schema_of catalog input
  | Union_all (left, _) -> schema_of catalog left

let kind_to_string = function Inner -> "JOIN" | Left -> "LEFT JOIN" | Semi -> "SEMIJOIN" | Anti -> "ANTIJOIN"

let agg_to_string a =
  let fn =
    match a.agg_fn with
    | Expr.Count_star -> "COUNT(*)"
    | Expr.Count -> "COUNT"
    | Expr.Sum -> "SUM"
    | Expr.Avg -> "AVG"
    | Expr.Min -> "MIN"
    | Expr.Max -> "MAX"
  in
  match a.agg_arg with
  | None -> fn
  | Some e -> Fmt.str "%s(%a)" fn Expr.pp e

(** [pp] prints an indented operator tree (for plan inspection and tests). *)
let pp ppf q =
  let rec go indent q =
    let pad = String.make indent ' ' in
    match q with
    | Access { table; alias } -> Fmt.pf ppf "%sAccess %s as %s@." pad table alias
    | Temp { table; alias } ->
      Fmt.pf ppf "%sTemp %s as %s (%d rows)@." pad (Table.name table) alias (Table.cardinality table)
    | Values { rows; _ } -> Fmt.pf ppf "%sValues (%d rows)@." pad (List.length rows)
    | Select { input; pred } ->
      Fmt.pf ppf "%sSelect %a@." pad Expr.pp pred;
      go (indent + 2) input
    | Project { input; cols } ->
      Fmt.pf ppf "%sProject %a@." pad
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, c) -> Fmt.pf ppf "%a as %s" Expr.pp e c.Schema.col_name))
        cols;
      go (indent + 2) input
    | Join { kind; left; right; pred } ->
      Fmt.pf ppf "%s%s%a@." pad (kind_to_string kind)
        (Fmt.option (fun ppf e -> Fmt.pf ppf " on %a" Expr.pp e))
        pred;
      go (indent + 2) left;
      go (indent + 2) right
    | Group { input; keys; aggs } ->
      Fmt.pf ppf "%sGroup keys=[%a] aggs=[%a]@." pad
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, _) -> Expr.pp ppf e))
        keys
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf a -> Fmt.string ppf (agg_to_string a)))
        aggs;
      go (indent + 2) input
    | Distinct input ->
      Fmt.pf ppf "%sDistinct@." pad;
      go (indent + 2) input
    | Order { input; keys } ->
      Fmt.pf ppf "%sOrder %a@." pad
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, d) ->
             Fmt.pf ppf "%a%s" Expr.pp e (match d with Sql_ast.Asc -> "" | Sql_ast.Desc -> " DESC")))
        keys;
      go (indent + 2) input
    | Limit (input, n) ->
      Fmt.pf ppf "%sLimit %d@." pad n;
      go (indent + 2) input
    | Union_all (left, right) ->
      Fmt.pf ppf "%sUnionAll@." pad;
      go (indent + 2) left;
      go (indent + 2) right
  in
  go 0 q

(** [to_string q] renders the tree for debugging. *)
let to_string q = Fmt.str "%a" pp q
