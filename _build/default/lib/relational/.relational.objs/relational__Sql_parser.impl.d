lib/relational/sql_parser.ml: Array Expr List Schema Sql_ast Sql_lexer String Value
