lib/relational/db.mli: Binder Catalog Qgm Row Schema Seq Sql_ast Table Txn
