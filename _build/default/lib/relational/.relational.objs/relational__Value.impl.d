lib/relational/value.ml: Buffer Float Fmt Hashtbl Printf String
