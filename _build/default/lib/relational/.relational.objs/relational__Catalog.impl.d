lib/relational/catalog.ml: Hashtbl List Sql_ast String Table
