lib/relational/binder.mli: Catalog Expr Qgm Row Schema Seq Sql_ast
