lib/relational/page.mli: Buffer_pool Table
