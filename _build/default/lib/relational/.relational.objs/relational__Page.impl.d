lib/relational/page.ml: Buffer_pool Hashtbl List Seq Table
