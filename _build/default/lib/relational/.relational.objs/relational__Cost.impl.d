lib/relational/cost.ml: Catalog Expr Float List Qgm Schema Table
