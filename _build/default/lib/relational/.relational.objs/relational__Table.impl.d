lib/relational/table.ml: Array Hashtbl Index List Option Printf Row Schema Seq Value Vec
