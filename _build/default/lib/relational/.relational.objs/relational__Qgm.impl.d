lib/relational/qgm.ml: Catalog Expr Fmt List Row Schema Sql_ast String Table
