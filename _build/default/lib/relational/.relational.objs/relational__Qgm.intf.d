lib/relational/qgm.mli: Catalog Expr Format Row Schema Sql_ast Table
