lib/relational/binder.ml: Catalog Expr Fmt Fun List Option Printf Qgm Row Schema Seq Sql_ast String Value
