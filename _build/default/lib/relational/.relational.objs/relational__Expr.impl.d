lib/relational/expr.ml: Array Char Float Fmt Hashtbl List Option Printf Row Seq String Value
