lib/relational/db.ml: Array Binder Catalog Expr Fmt Fun Index Lazy List Optimizer Option Plan Printf Qgm Rewrite Row Schema Sql_ast Sql_parser String Table Txn Value Wal
