lib/relational/optimizer.ml: Array Catalog Expr Index List Option Plan Qgm Rewrite Schema Table
