lib/relational/expr.mli: Format Row Seq Value
