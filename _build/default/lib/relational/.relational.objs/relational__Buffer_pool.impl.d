lib/relational/buffer_pool.ml: Hashtbl
