lib/relational/index.ml: Hashtbl List Map Option Row
