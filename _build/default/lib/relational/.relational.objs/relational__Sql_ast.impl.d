lib/relational/sql_ast.ml: Expr Fmt List Option Schema Value
