lib/relational/txn.mli: Catalog Wal
