lib/relational/csv_io.ml: Array Buffer Db Fmt Fun List Schema String Table Value
