lib/relational/index.mli: Row
