lib/relational/plan.ml: Array Expr Fmt Hashtbl Index Lazy List Option Row Seq Sql_ast String Table Value
