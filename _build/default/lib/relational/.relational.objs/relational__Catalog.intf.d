lib/relational/catalog.mli: Schema Sql_ast Table
