lib/relational/rewrite.mli: Catalog Qgm
