lib/relational/wal.mli: Catalog Row
