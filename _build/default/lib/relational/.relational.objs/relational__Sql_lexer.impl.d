lib/relational/sql_lexer.ml: Array Buffer Hashtbl List Printf String
