lib/relational/plan.mli: Expr Format Index Row Seq Sql_ast Table Value
