lib/relational/txn.ml: Catalog List Option Wal
