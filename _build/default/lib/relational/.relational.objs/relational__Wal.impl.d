lib/relational/wal.ml: Catalog Hashtbl List Row Table
