lib/relational/schema.ml: Array Fmt List Option String Value
