lib/relational/table.mli: Index Row Schema Seq
