lib/relational/cost.mli: Catalog Expr Qgm
