lib/relational/csv_io.mli: Db Table
