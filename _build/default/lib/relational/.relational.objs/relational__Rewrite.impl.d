lib/relational/rewrite.ml: Array Expr List Option Qgm Schema String
