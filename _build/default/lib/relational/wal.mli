(** Write-ahead log: logical records with before-images, serving
    transaction rollback (undo) and recovery replay. *)

type record =
  | R_insert of { table : string; rowid : int; row : Row.t }
  | R_delete of { table : string; rowid : int; row : Row.t  (** before-image *) }
  | R_update of { table : string; rowid : int; before : Row.t; after : Row.t }
  | R_begin of int  (** transaction id *)
  | R_commit of int
  | R_abort of int

type t

val create : unit -> t

(** [append log r] appends [r] and returns its LSN. *)
val append : t -> record -> int

(** [records log] lists records oldest-first. *)
val records : t -> record list

val length : t -> int

(** [undo_record catalog r] reverses the effect of a DML record on the
    current table state. *)
val undo_record : Catalog.t -> record -> unit

(** [replay log catalog] re-applies the committed history onto [catalog]
    (whose tables must be empty with the right schemas): committed and
    auto-committed records are redone; aborted/unfinished transactions are
    skipped. *)
val replay : t -> Catalog.t -> unit
