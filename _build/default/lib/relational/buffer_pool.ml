(* LRU buffer pool over simulated pages.

   The paged-storage simulation (experiment E4) maps every row of the
   database to a page id through a {!Page.layout}; the executor's row
   accesses are funneled here via {!Table.set_touch}. The pool tracks hits
   and faults; a fault on a full pool evicts the least recently used page.
   There is no data movement — only accounting — because the observable of
   the clustering experiment is the fault count, not the bytes. *)

type t = {
  capacity : int;  (** number of page frames *)
  mutable clock : int;
  resident : (int, int) Hashtbl.t;  (** page id -> last-use time *)
  mutable faults : int;
  mutable hits : int;
}

(** [create ~capacity] is an empty pool with [capacity] frames. *)
let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create";
  { capacity; clock = 0; resident = Hashtbl.create (2 * capacity); faults = 0; hits = 0 }

(** [access pool page] records an access to [page], faulting it in (with
    LRU eviction) when non-resident. *)
let access pool page =
  pool.clock <- pool.clock + 1;
  match Hashtbl.find_opt pool.resident page with
  | Some _ ->
    pool.hits <- pool.hits + 1;
    Hashtbl.replace pool.resident page pool.clock
  | None ->
    pool.faults <- pool.faults + 1;
    if Hashtbl.length pool.resident >= pool.capacity then begin
      (* evict the LRU page *)
      let victim =
        Hashtbl.fold
          (fun p t acc ->
            match acc with
            | Some (_, bt) when bt <= t -> acc
            | _ -> Some (p, t))
          pool.resident None
      in
      match victim with
      | Some (p, _) -> Hashtbl.remove pool.resident p
      | None -> ()
    end;
    Hashtbl.replace pool.resident page pool.clock

(** [faults pool] is the number of page faults since creation/reset. *)
let faults pool = pool.faults

(** [hits pool] is the number of hits since creation/reset. *)
let hits pool = pool.hits

(** [reset pool] clears residency and counters. *)
let reset pool =
  Hashtbl.reset pool.resident;
  pool.clock <- 0;
  pool.faults <- 0;
  pool.hits <- 0
