(* QGM query rewrite — the rule-based rewrite stage of Fig. 8.

   The XNF semantic rewrite (lib/core) deliberately emits straightforward
   operator stacks and defers cleanup here, exactly as the paper describes:
   "we were able to go for straightforward transformations from XNF to SQL
   QGM operators; any optimization of the resulting QGM can be deferred to
   the query rewrite step".

   Rules (applied to fixpoint, bounded):
     - select-merge:         Select(Select(x)) = Select(x, p1 AND p2)
     - select-through-project: remap predicate columns through projections
     - select-through-join:  push conjuncts to the side(s) they mention;
                             conjuncts spanning both sides of an inner join
                             become join predicates (enables hash joins)
     - select-through-group: push key-only conjuncts below the group box
     - select-through-setops: push into Distinct / Order / Union_all
     - project-merge:        Project(Project(x)) composes the expressions
     - identity-project elimination (name-preserving only)

   Predicates containing subplans or parameters are never moved: a subplan's
   correlation closure captures the row layout at its bind position. *)

let movable pred = not (Expr.has_subplan pred || Expr.has_param pred)

(* substitute project expressions into a predicate: every Col i becomes the
   i-th projection expression *)
let subst_through_project cols pred =
  let arr = Array.of_list (List.map fst cols) in
  let rec go = function
    | Expr.Col i -> arr.(i)
    | Expr.Param _ | Expr.Lit _ as e -> e
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
    | Expr.Arith (op, a, b) -> Expr.Arith (op, go a, go b)
    | Expr.Neg a -> Expr.Neg (go a)
    | Expr.And (a, b) -> Expr.And (go a, go b)
    | Expr.Or (a, b) -> Expr.Or (go a, go b)
    | Expr.Not a -> Expr.Not (go a)
    | Expr.Is_null a -> Expr.Is_null (go a)
    | Expr.Is_not_null a -> Expr.Is_not_null (go a)
    | Expr.Like (a, p) -> Expr.Like (go a, go p)
    | Expr.In_list (a, items) -> Expr.In_list (go a, List.map go items)
    | Expr.Case (branches, else_) ->
      Expr.Case (List.map (fun (c, r) -> (go c, go r)) branches, Option.map go else_)
    | Expr.Fn (name, args) -> Expr.Fn (name, List.map go args)
    | Expr.Exists_plan _ | Expr.In_plan _ | Expr.Scalar_plan _ as e -> e
  in
  go pred

type stats = { mutable applied : int }

let rec pass catalog stats node =
  let recurse = pass catalog stats in
  match node with
  | Qgm.Access _ | Qgm.Temp _ | Qgm.Values _ -> node
  | Qgm.Select { input; pred } -> begin
    let hit () = stats.applied <- stats.applied + 1 in
    match input with
    | Qgm.Select { input = inner; pred = p2 } ->
      hit ();
      recurse (Qgm.Select { input = inner; pred = Expr.And (p2, pred) })
    | Qgm.Project { input = inner; cols }
      when movable pred
           && not (List.exists (fun (e, _) -> Expr.has_subplan e || Expr.has_param e) cols) ->
      hit ();
      let pred' = subst_through_project cols pred in
      recurse (Qgm.Project { input = Qgm.Select { input = inner; pred = pred' }; cols })
    | Qgm.Join { kind; left; right; pred = jpred } -> begin
      let lw = Schema.arity (Qgm.schema_of catalog left) in
      let rw =
        match kind with
        | Qgm.Inner | Qgm.Left -> Schema.arity (Qgm.schema_of catalog right)
        | Qgm.Semi | Qgm.Anti -> 0
      in
      let classify c =
        if not (movable c) then `Keep
        else begin
          let cols = Expr.cols c in
          let left_only = List.for_all (fun i -> i < lw) cols in
          let right_only = rw > 0 && List.for_all (fun i -> i >= lw) cols in
          if left_only then `Left
          else if right_only && kind = Qgm.Inner then `Right
          else if kind = Qgm.Inner then `Join
          else `Keep
        end
      in
      let groups = List.map (fun c -> (classify c, c)) (Expr.conjuncts pred) in
      let pick tag = List.filter_map (fun (t, c) -> if t = tag then Some c else None) groups in
      let to_left = pick `Left and to_right = pick `Right and to_join = pick `Join in
      let keep = pick `Keep in
      if to_left = [] && to_right = [] && to_join = [] then
        Qgm.Select { input = recurse input; pred }
      else begin
        stats.applied <- stats.applied + 1;
        let left = if to_left = [] then left else Qgm.Select { input = left; pred = Expr.conjoin to_left } in
        let right =
          if to_right = [] then right
          else
            Qgm.Select
              { input = right; pred = Expr.conjoin (List.map (Expr.shift (-lw)) to_right) }
        in
        let jpred =
          match jpred, to_join with
          | p, [] -> p
          | None, js -> Some (Expr.conjoin js)
          | Some p, js -> Some (Expr.And (p, Expr.conjoin js))
        in
        let joined = Qgm.Join { kind; left = recurse left; right = recurse right; pred = jpred } in
        if keep = [] then joined else Qgm.Select { input = joined; pred = Expr.conjoin keep }
      end
    end
    | Qgm.Group { input = inner; keys; aggs } -> begin
      let key_count = List.length keys in
      let key_exprs = Array.of_list (List.map fst keys) in
      let pushable c =
        movable c && List.for_all (fun i -> i < key_count) (Expr.cols c)
      in
      let push, keep = List.partition pushable (Expr.conjuncts pred) in
      if push = [] then Qgm.Select { input = recurse input; pred }
      else begin
        stats.applied <- stats.applied + 1;
        let remap c =
          subst_through_project
            (Array.to_list (Array.map (fun e -> (e, Schema.column "k" Schema.Ty_int)) key_exprs))
            c
        in
        let inner' = Qgm.Select { input = inner; pred = Expr.conjoin (List.map remap push) } in
        let grouped = Qgm.Group { input = recurse inner'; keys; aggs } in
        if keep = [] then grouped else Qgm.Select { input = grouped; pred = Expr.conjoin keep }
      end
    end
    | Qgm.Distinct inner when movable pred ->
      hit ();
      Qgm.Distinct (recurse (Qgm.Select { input = inner; pred }))
    | Qgm.Order { input = inner; keys } when movable pred ->
      hit ();
      Qgm.Order { input = recurse (Qgm.Select { input = inner; pred }); keys }
    | Qgm.Union_all (a, b) when movable pred ->
      hit ();
      Qgm.Union_all
        (recurse (Qgm.Select { input = a; pred }), recurse (Qgm.Select { input = b; pred }))
    | _ -> Qgm.Select { input = recurse input; pred }
  end
  | Qgm.Project { input; cols } -> begin
    match input with
    | Qgm.Project { input = inner; cols = inner_cols }
      when not (List.exists (fun (e, _) -> Expr.has_subplan e) (cols @ inner_cols)) ->
      stats.applied <- stats.applied + 1;
      let cols' = List.map (fun (e, c) -> (subst_through_project inner_cols e, c)) cols in
      recurse (Qgm.Project { input = inner; cols = cols' })
    | _ -> begin
      let input' = recurse input in
      (* identity-projection elimination, only when names survive *)
      let in_schema = Qgm.schema_of catalog input' in
      let identity =
        List.length cols = Schema.arity in_schema
        && List.for_all2
             (fun (i, (e, c)) ic ->
               e = Expr.Col i
               && String.equal c.Schema.col_name ic.Schema.col_name
               && String.equal c.Schema.col_qualifier ic.Schema.col_qualifier)
             (List.mapi (fun i col -> (i, col)) cols)
             (Schema.columns in_schema)
      in
      if identity then begin
        stats.applied <- stats.applied + 1;
        input'
      end
      else Qgm.Project { input = input'; cols }
    end
  end
  | Qgm.Join { kind; left; right; pred } ->
    Qgm.Join { kind; left = recurse left; right = recurse right; pred }
  | Qgm.Group { input; keys; aggs } -> Qgm.Group { input = recurse input; keys; aggs }
  | Qgm.Distinct input -> Qgm.Distinct (recurse input)
  | Qgm.Order { input; keys } -> Qgm.Order { input = recurse input; keys }
  | Qgm.Limit (input, n) -> Qgm.Limit (recurse input, n)
  | Qgm.Union_all (a, b) -> Qgm.Union_all (recurse a, recurse b)

(** [rewrite catalog node] applies the rule set to fixpoint (bounded at 10
    passes) and returns the rewritten tree. *)
let rewrite catalog node =
  let rec go n node =
    if n = 0 then node
    else begin
      let stats = { applied = 0 } in
      let node' = pass catalog stats node in
      if stats.applied = 0 then node' else go (n - 1) node'
    end
  in
  go 10 node
