(** Query Graph Model — the engine's internal query representation.

    Starburst's QGM represents a query as boxes (SELECT, GROUP BY, UNION)
    ranging over quantifiers; here each box is a node of a logical operator
    tree and quantifiers correspond to join inputs (F-quantifiers are
    [Inner]/[Left] joins, E- and A-quantifiers [Semi] and [Anti] joins).
    The XNF translator produces trees in this representation, exactly as
    the paper's "XNF semantic rewrite" targets QGM operators (§4.3).

    Expressions are positional over the node's input row; [Project] and
    [Group] carry their output schemas (computed by the binder). *)

type join_kind = Inner | Left | Semi | Anti

type agg = {
  agg_fn : Expr.agg_fn;
  agg_arg : Expr.t option;  (** [None] only for [Count_star] *)
  agg_distinct : bool;  (** aggregate over distinct argument values *)
  agg_out : Schema.column;
}

type t =
  | Access of { table : string; alias : string }  (** base-table quantifier *)
  | Temp of { table : Table.t; alias : string }
      (** shared materialized intermediate — the common-subexpression
          mechanism used by the XNF translator *)
  | Values of { schema : Schema.t; rows : Row.t list }
  | Select of { input : t; pred : Expr.t }
  | Project of { input : t; cols : (Expr.t * Schema.column) list }
  | Join of { kind : join_kind; left : t; right : t; pred : Expr.t option }
  | Group of { input : t; keys : (Expr.t * Schema.column) list; aggs : agg list }
  | Distinct of t
  | Order of { input : t; keys : (Expr.t * Sql_ast.order_dir) list }
  | Limit of t * int
  | Union_all of t * t

(** [schema_of catalog q] derives the output schema of [q]. *)
val schema_of : Catalog.t -> t -> Schema.t

(** [pp] prints an indented operator tree; [to_string] renders it. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
