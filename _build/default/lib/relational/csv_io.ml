(* CSV import/export for tables — the "bulk I/O capabilities" the paper
   counts among the industrial-strength RDBMS features worth reusing (§1).

   Format: RFC-4180-style quoting (fields containing the separator, quotes
   or newlines are wrapped in double quotes; embedded quotes double).
   Export writes a header row of column names; import can consume or skip
   it. NULL is represented by the empty unquoted field; typed parsing
   follows the target table's schema. *)

exception Csv_error of string

let err fmt = Fmt.kstr (fun s -> raise (Csv_error s)) fmt

let needs_quoting ~sep s =
  String.exists (fun c -> c = sep || c = '"' || c = '\n' || c = '\r') s

let quote_field ~sep s =
  if not (needs_quoting ~sep s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let field_of_value ~sep (v : Value.t) =
  match v with
  | Value.Null -> ""
  | Value.Str "" -> "\"\""  (* quoted empty: distinct from NULL *)
  | Value.Str s -> quote_field ~sep s
  | v -> quote_field ~sep (Value.to_string v)

(** [export ?sep table] renders [table]'s live rows as CSV text with a
    header row of column names. *)
let export ?(sep = ',') table =
  let buf = Buffer.create 4096 in
  let schema = Table.schema table in
  Buffer.add_string buf
    (String.concat (String.make 1 sep)
       (List.map (fun c -> quote_field ~sep c.Schema.col_name) (Schema.columns schema)));
  Buffer.add_char buf '\n';
  Table.iter
    (fun _ row ->
      Buffer.add_string buf
        (String.concat (String.make 1 sep)
           (List.map (field_of_value ~sep) (Array.to_list row)));
      Buffer.add_char buf '\n')
    table;
  Buffer.contents buf

(** [export_file ?sep table path] writes {!export} output to [path]. *)
let export_file ?sep table path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (export ?sep table))

(* parse one CSV text into rows of raw fields; [None] field = unquoted
   empty = NULL, [Some s] = literal text *)
let parse ?(sep = ',') (text : string) : string option list list =
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted = ref false in
  (* whether the current field ever entered quotes: distinguishes the empty
     unquoted field (NULL) from "" (empty string) *)
  let saw_quote = ref false in
  let n = String.length text in
  let flush_field () =
    let s = Buffer.contents buf in
    let field = if s = "" && not !saw_quote then None else Some s in
    fields := field :: !fields;
    Buffer.clear buf;
    saw_quote := false
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if !quoted then begin
      if c = '"' then
        if !i + 1 < n && text.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else quoted := false
      else Buffer.add_char buf c
    end
    else if c = '"' then begin
      quoted := true;
      saw_quote := true
    end
    else if c = sep then flush_field ()
    else if c = '\n' then flush_row ()
    else if c = '\r' then () (* tolerate CRLF *)
    else Buffer.add_char buf c;
    incr i
  done;
  if !quoted then err "unterminated quoted field";
  if Buffer.length buf > 0 || !saw_quote || !fields <> [] then flush_row ();
  List.rev !rows

let value_of_field ty (field : string option) : Value.t =
  match field with
  | None -> Value.Null
  | Some s -> begin
    match ty with
    | Schema.Ty_int -> begin
      match int_of_string_opt (String.trim s) with
      | Some i -> Value.Int i
      | None -> err "not an integer: %S" s
    end
    | Schema.Ty_float -> begin
      match float_of_string_opt (String.trim s) with
      | Some f -> Value.Float f
      | None -> err "not a float: %S" s
    end
    | Schema.Ty_bool -> begin
      match String.lowercase_ascii (String.trim s) with
      | "true" | "t" | "1" -> Value.Bool true
      | "false" | "f" | "0" -> Value.Bool false
      | _ -> err "not a boolean: %S" s
    end
    | Schema.Ty_string -> Value.Str s
  end

(** [import ?sep ?header db table text] parses [text] and inserts every row
    into [table] (through the session's DML path: WAL-logged, PK-enforced).
    [header] (default true) skips the first row. Returns the number of rows
    inserted.
    @raise Csv_error on malformed input, arity or type mismatches. *)
let import ?(sep = ',') ?(header = true) db table text =
  let schema = Table.schema table in
  let rows = parse ~sep text in
  let rows = if header then match rows with _ :: r -> r | [] -> [] else rows in
  let count = ref 0 in
  List.iteri
    (fun lineno fields ->
      if List.length fields <> Schema.arity schema then
        err "row %d: expected %d fields, got %d" (lineno + 1) (Schema.arity schema)
          (List.length fields);
      let row =
        Array.of_list
          (List.mapi (fun i f -> value_of_field (Schema.col schema i).Schema.col_ty f) fields)
      in
      ignore (Db.insert_row db table row);
      incr count)
    rows;
  !count

(** [import_file ?sep ?header db table path] is {!import} over the contents
    of [path]. *)
let import_file ?sep ?header db table path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      import ?sep ?header db table text)
