(** Recursive-descent SQL parser.

    Cursor-based entry points are shared with the XNF parser, which parses
    embedded SELECTs and predicates by calling back in here. All entry
    points raise {!Sql_lexer.Parse_error} on malformed input. *)

(** [parse_expr c] parses an expression at the cursor. *)
val parse_expr : Sql_lexer.cursor -> Sql_ast.expr

(** [parse_select_cursor c] parses a SELECT starting at the cursor (the
    [SELECT] keyword must be next). *)
val parse_select_cursor : Sql_lexer.cursor -> Sql_ast.select

(** [parse_stmt_cursor c] parses one statement at the cursor. *)
val parse_stmt_cursor : Sql_lexer.cursor -> Sql_ast.stmt

(** [parse_stmt s] parses exactly one statement from [s]. *)
val parse_stmt : string -> Sql_ast.stmt

(** [parse_select s] parses exactly one SELECT query from [s]. *)
val parse_select : string -> Sql_ast.select

(** [parse_expr_string s] parses a standalone expression. *)
val parse_expr_string : string -> Sql_ast.expr
