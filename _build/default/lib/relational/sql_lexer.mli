(** Hand-written lexer shared by the SQL and XNF parsers, plus the token
    cursor both recursive-descent parsers drive.

    Keywords cover plain SQL and the XNF extensions (OUT OF, TAKE, RELATE,
    SUCH THAT, ...). Identifiers may contain hyphens between letters (the
    paper's [ALL-DEPS] style); [--] starts a line comment; strings use SQL
    [''] escaping. *)

type token =
  | IDENT of string  (** lowercased identifier *)
  | KW of string  (** uppercased keyword *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | SYM of string  (** punctuation / operator, e.g. "(", ",", "<=", "->" *)
  | EOF

exception Parse_error of string

(** [tokenize s] lexes [s] into tokens terminated by [EOF].
    @raise Parse_error on malformed input. *)
val tokenize : string -> token array

(** Mutable cursor with arbitrary lookahead over a token array. *)
type cursor = { toks : token array; mutable pos : int }

val cursor_of_string : string -> cursor
val token_to_string : token -> string

(** [peek c] / [peek2 c]: current and next token, without consuming. *)

val peek : cursor -> token
val peek2 : cursor -> token

(** [advance c] consumes and returns the current token ([EOF] sticks). *)
val advance : cursor -> token

(** [error c msg] raises a parse error mentioning the current token. *)
val error : cursor -> string -> 'a

(** [accept_kw] / [accept_sym] consume the token if it matches and report
    whether they did; [expect_*] fail instead. *)

val accept_kw : cursor -> string -> bool
val expect_kw : cursor -> string -> unit
val accept_sym : cursor -> string -> bool
val expect_sym : cursor -> string -> unit

(** [expect_ident c] consumes and returns an identifier or fails. *)
val expect_ident : cursor -> string

(** [at_kw] / [at_sym] test the current token without consuming. *)

val at_kw : cursor -> string -> bool
val at_sym : cursor -> string -> bool
