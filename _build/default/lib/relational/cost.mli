(** Cardinality estimation over QGM trees.

    Estimates drive join-method selection in the optimizer. They use exact
    base-table cardinalities (tables are in memory) and textbook default
    selectivities: 1/distinct for equality, fixed fractions for other
    predicate shapes, independence across conjuncts. *)

(** [estimate catalog node] is the estimated output cardinality of
    [node]. *)
val estimate : Catalog.t -> Qgm.t -> float

(** [conjunct_selectivity catalog node pred] estimates the fraction of
    [node]'s output satisfying [pred]. *)
val conjunct_selectivity : Catalog.t -> Qgm.t -> Expr.t -> float

(** [distinct_of catalog node col] estimates the number of distinct values
    in output column [col]. *)
val distinct_of : Catalog.t -> Qgm.t -> int -> int
