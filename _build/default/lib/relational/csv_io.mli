(** CSV import/export for tables — bulk I/O (§1 of the paper counts bulk
    I/O among the industrial-strength RDBMS features worth reusing).

    RFC-4180-style quoting; NULL is the empty unquoted field, the empty
    string is [""]; typed parsing follows the target table's schema. *)

exception Csv_error of string

(** [export ?sep table] renders the live rows as CSV text with a header row
    of column names. *)
val export : ?sep:char -> Table.t -> string

(** [export_file ?sep table path] writes {!export} output to [path]. *)
val export_file : ?sep:char -> Table.t -> string -> unit

(** [parse ?sep text] splits CSV text into rows of raw fields ([None] =
    unquoted empty = NULL). @raise Csv_error on malformed quoting. *)
val parse : ?sep:char -> string -> string option list list

(** [import ?sep ?header db table text] inserts every parsed row through
    the session's DML path (WAL-logged, PK-enforced). [header] (default
    true) skips the first row. Returns the number of rows inserted.
    @raise Csv_error on malformed input, arity or type mismatches. *)
val import : ?sep:char -> ?header:bool -> Db.t -> Table.t -> string -> int

(** [import_file ?sep ?header db table path] is {!import} over the file
    contents. *)
val import_file : ?sep:char -> ?header:bool -> Db.t -> Table.t -> string -> int
