(* Table schemas: column names, types, nullability.

   A schema is an ordered array of columns. Column lookup is by
   (optionally qualified) name; joins concatenate schemas, keeping the
   qualifier of each side so that ambiguous names can be resolved. *)

type ty = Ty_int | Ty_float | Ty_string | Ty_bool

(** [ty_to_string ty] is the SQL spelling of [ty]. *)
let ty_to_string = function
  | Ty_int -> "INTEGER"
  | Ty_float -> "FLOAT"
  | Ty_string -> "VARCHAR"
  | Ty_bool -> "BOOLEAN"

type column = {
  col_name : string;      (** unqualified column name (lowercased) *)
  col_qualifier : string; (** table alias the column comes from ("" if none) *)
  col_ty : ty;
  col_nullable : bool;
}

type t = { cols : column array }

(** [column ?qualifier ?nullable name ty] builds a column definition. *)
let column ?(qualifier = "") ?(nullable = true) name ty =
  { col_name = String.lowercase_ascii name; col_qualifier = String.lowercase_ascii qualifier;
    col_ty = ty; col_nullable = nullable }

(** [make cols] is a schema from a column list. *)
let make cols = { cols = Array.of_list cols }

(** [arity s] is the number of columns. *)
let arity s = Array.length s.cols

(** [col s i] is the [i]-th column definition. *)
let col s i = s.cols.(i)

(** [columns s] lists the column definitions in order. *)
let columns s = Array.to_list s.cols

(** [requalify alias s] re-tags all columns of [s] with [alias] — used when
    a table is brought into scope under an alias. *)
let requalify alias s =
  let alias = String.lowercase_ascii alias in
  { cols = Array.map (fun c -> { c with col_qualifier = alias }) s.cols }

(** [concat a b] is the schema of a join output: columns of [a] then [b]. *)
let concat a b = { cols = Array.append a.cols b.cols }

exception Ambiguous_column of string
exception Unknown_column of string

(** [find s ?qualifier name] is the index of the column named [name]
    (restricted to [qualifier] if given).
    @raise Unknown_column when absent.
    @raise Ambiguous_column when several match. *)
let find s ?qualifier name =
  let name = String.lowercase_ascii name in
  let qualifier = Option.map String.lowercase_ascii qualifier in
  let matches =
    List.filter
      (fun (_, c) ->
        String.equal c.col_name name
        && match qualifier with None -> true | Some q -> String.equal c.col_qualifier q)
      (List.mapi (fun i c -> (i, c)) (Array.to_list s.cols))
  in
  match matches with
  | [ (i, _) ] -> i
  | [] ->
    let shown = match qualifier with Some q -> q ^ "." ^ name | None -> name in
    raise (Unknown_column shown)
  | _ :: _ ->
    let shown = match qualifier with Some q -> q ^ "." ^ name | None -> name in
    raise (Ambiguous_column shown)

(** [find_opt s ?qualifier name] is [find] returning [None] when absent or
    ambiguous. *)
let find_opt s ?qualifier name =
  match find s ?qualifier name with
  | i -> Some i
  | exception (Unknown_column _ | Ambiguous_column _) -> None

(** [pp] prints a schema as [(name TYPE, ...)]. *)
let pp ppf s =
  let pp_col ppf c =
    if String.equal c.col_qualifier "" then
      Fmt.pf ppf "%s %s" c.col_name (ty_to_string c.col_ty)
    else Fmt.pf ppf "%s.%s %s" c.col_qualifier c.col_name (ty_to_string c.col_ty)
  in
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_col) (columns s)

(** [value_matches ty v] checks that value [v] inhabits type [ty] (NULL
    inhabits every type; Int widens into Float columns). *)
let value_matches ty (v : Value.t) =
  match ty, v with
  | _, Value.Null -> true
  | Ty_int, Value.Int _ -> true
  | Ty_float, (Value.Float _ | Value.Int _) -> true
  | Ty_string, Value.Str _ -> true
  | Ty_bool, Value.Bool _ -> true
  | (Ty_int | Ty_float | Ty_string | Ty_bool), _ -> false
