(* The SQL/XNF benchmark harness.

     dune exec bench/main.exe                 -- run every experiment
     dune exec bench/main.exe -- --only E2    -- run one experiment
     dune exec bench/main.exe -- --list       -- list experiments

   The paper's evaluation section reports no data tables or figures (the
   measurements were deferred to a later publication); each experiment here
   regenerates one *quantitative claim* of the paper — see DESIGN.md §4 for
   the experiment index and EXPERIMENTS.md for paper-vs-measured notes.
   All workloads are seeded; numbers are deterministic up to machine speed.

   Per-operation costs are estimated with Bechamel (OLS over monotonic
   clock); bulk phases are wall-clocked. "IPC" columns add the modeled
   per-call inter-process cost the paper's setting paid for every SQL-API
   call (the XNF cache runs in-process, §4.2). *)

open Relational

let ipc_us = 100.

(* ---- small measurement toolkit ---- *)

let now () = Unix.gettimeofday ()

(* wall-clock milliseconds of one run *)
let time_ms f =
  let t0 = now () in
  let r = f () in
  (r, (now () -. t0) *. 1000.)

(* average wall-clock over [reps] runs, milliseconds *)
let time_avg_ms ~reps f =
  let t0 = now () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (now () -. t0) *. 1000. /. float_of_int reps

(* Bechamel OLS estimate, ns/run *)
let bech_ns ~name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  match Hashtbl.fold (fun _ v acc -> v :: acc) analyzed [] with
  | [ est ] -> begin
    match Analyze.OLS.estimates est with
    | Some (ns :: _) -> ns
    | _ -> Float.nan
  end
  | _ -> Float.nan

let pr fmt = Fmt.pr fmt

let header id title claim =
  pr "@.== %s: %s ==@." id title;
  pr "   paper: %s@." claim

let table ~cols rows =
  let widths =
    List.mapi (fun i c -> List.fold_left (fun w r -> max w (String.length (List.nth r i)))
                 (String.length c) rows)
      cols
  in
  let line cells =
    pr "   ";
    List.iteri (fun i cell -> pr "%-*s  " (List.nth widths i) cell) cells;
    pr "@."
  in
  line cols;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let fx v = Printf.sprintf "%.0fx" v

(* ---- shared setup ---- *)

let company_db ?(scale = Workload.Company.medium) () =
  let db = Db.create () in
  Workload.Company.populate db ~seed:1 ~scale ~repr:Workload.Company.Cdb1;
  let api = Xnf.Api.create db in
  Workload.Company.register_views api ~repr:Workload.Company.Cdb1;
  (db, api)

(* =====================================================================
   E1 — cache navigation vs the regular SQL interface
   ===================================================================== *)

let e1 () =
  header "E1" "cache navigation vs regular SQL interface"
    "\"browsing is very fast ... performance improvement over regular SQL DBMS \
     interface is in orders of magnitude\" (4.2)";
  let db, api = company_db () in
  let cache = Xnf.Api.fetch_string api "OUT OF ALL-DEPS-ORG TAKE *" in
  let dept_node = Xnf.Cache.node cache "xdept" in
  let employment = Xnf.Cache.edge cache "employment" in
  let n_depts = Xnf.Cache.live_count dept_node in
  (* per-step cost: expand one department's employees *)
  let i = ref 0 in
  let cache_step () =
    i := (!i + 1) mod n_depts;
    Sys.opaque_identity (Xnf.Cache.children cache employment !i)
  in
  let def, _, _ =
    Xnf.View_registry.compose (Xnf.Api.registry api)
      (Xnf.Xnf_parser.parse_query "OUT OF ALL-DEPS TAKE *")
  in
  let employment_def = Xnf.Co_schema.edge def "employment" in
  let emp_def = Xnf.Co_schema.node def "xemp" in
  let nav = Baseline.Sql_navigator.create db in
  let dept_schema = Schema.requalify "xdept" (Table.schema (Catalog.table (Db.catalog db) "dept")) in
  let dept_rows = Array.of_list (List.map Xnf.Cache.row (Xnf.Cache.live_tuples dept_node)) in
  let j = ref 0 in
  let sql_step () =
    j := (!j + 1) mod n_depts;
    Sys.opaque_identity
      (Baseline.Sql_navigator.children_of nav employment_def
         ~child_query:emp_def.Xnf.Co_schema.nd_query ~parent_schema:dept_schema
         ~parent_row:dept_rows.(!j))
  in
  let cache_ns = bech_ns ~name:"e1-cache-step" (fun () -> ignore (cache_step ())) in
  let sql_ns = bech_ns ~name:"e1-sql-step" (fun () -> ignore (sql_step ())) in
  let sql_ipc_ns = sql_ns +. (ipc_us *. 1000.) in
  table
    ~cols:[ "navigation step (one dept -> its emps)"; "ns/step"; "vs cache" ]
    [ [ "XNF cache (dependent-cursor expansion)"; f1 cache_ns; "1x" ];
      [ "SQL interface (in-process)"; f1 sql_ns; fx (sql_ns /. cache_ns) ];
      [ Printf.sprintf "SQL interface (+%.0fus IPC)" ipc_us; f1 sql_ipc_ns;
        fx (sql_ipc_ns /. cache_ns) ] ]

(* =====================================================================
   E2 — the Cattell OO1 benchmark
   ===================================================================== *)

let e2 () =
  header "E2" "OO1 (Cattell) lookup / traversal / insert"
    "cache speedup \"comparable to the performance improvement of OODBMS over \
     relational DBMSs reported in Cattell's benchmark\" (4.2)";
  let n_parts = 5000 in
  let db = Db.create () in
  Workload.Oo1.populate db ~seed:3 ~n_parts;
  let api = Xnf.Api.create db in
  let load, load_ms = time_ms (fun () -> Xnf.Api.fetch_string api Workload.Oo1.parts_co_query) in
  let cache = load in
  pr "   database: %d parts, %d connections; cache load %.1f ms@." n_parts (3 * n_parts) load_ms;
  let part_node = Xnf.Cache.node cache "xpart" in
  let outgoing = Xnf.Cache.edge cache "outgoing" in
  let target = Xnf.Cache.edge cache "target" in
  (* application-level id index over the cache (OO1 allows it) *)
  let by_id = Hashtbl.create n_parts in
  List.iter
    (fun t -> Hashtbl.replace by_id (Value.as_int (Xnf.Cache.col t 0)) t.Xnf.Cache.t_pos)
    (Xnf.Cache.live_tuples part_node);
  let rng = Workload.Rng.create 99 in
  let lookups = Array.of_list (Workload.Oo1.lookup_ids rng ~n_parts ~count:1000) in
  let nav = Baseline.Sql_navigator.create db in

  (* lookup *)
  let cache_lookup () =
    Array.iter
      (fun id ->
        let pos = Hashtbl.find by_id id in
        ignore (Sys.opaque_identity (Xnf.Cache.tuple part_node pos).Xnf.Cache.t_row))
      lookups
  in
  let sql_lookup () =
    Array.iter
      (fun id ->
        ignore
          (Sys.opaque_identity
             (Baseline.Sql_navigator.query nav
                (Printf.sprintf "SELECT * FROM part WHERE id = %d" id))))
      lookups
  in
  let cache_lookup_ms = time_avg_ms ~reps:5 cache_lookup in
  Baseline.Sql_navigator.reset nav;
  let sql_lookup_ms = time_avg_ms ~reps:3 sql_lookup in
  let lookup_calls = Baseline.Sql_navigator.calls nav / 3 in

  (* traversal, depth 7, 5 roots *)
  let visits = ref 0 in
  let rec traverse_cache pos depth =
    incr visits;
    if depth > 0 then
      List.iter
        (fun conn ->
          List.iter (fun p -> traverse_cache p (depth - 1)) (Xnf.Cache.parents cache target conn))
        (Xnf.Cache.children cache outgoing pos)
  in
  let roots = Workload.Oo1.traversal_roots rng ~n_parts ~count:5 in
  let cache_trav () =
    visits := 0;
    List.iter (fun r -> traverse_cache (Hashtbl.find by_id r) 7) roots
  in
  let rec traverse_sql id depth =
    incr visits;
    if depth > 0 then
      List.iter
        (fun row -> traverse_sql (Value.as_int row.(0)) (depth - 1))
        (Baseline.Sql_navigator.query nav
           (Printf.sprintf "SELECT to_id FROM connection WHERE from_id = %d" id))
  in
  let sql_trav () =
    visits := 0;
    List.iter (fun r -> traverse_sql r 7) roots
  in
  let cache_trav_ms = time_avg_ms ~reps:3 cache_trav in
  let cache_visits = !visits in
  Baseline.Sql_navigator.reset nav;
  let sql_trav_ms = time_avg_ms ~reps:1 sql_trav in
  let trav_calls = Baseline.Sql_navigator.calls nav in

  (* reverse traversal (OO1's fourth operation): who connects TO this part,
     recursively — exercises backward relationship traversal *)
  let rec reverse_cache pos depth =
    incr visits;
    if depth > 0 then
      List.iter
        (fun conn ->
          List.iter (fun p -> reverse_cache p (depth - 1)) (Xnf.Cache.parents cache outgoing conn))
        (Xnf.Cache.children cache target pos)
  in
  let cache_rev () =
    visits := 0;
    List.iter (fun r -> reverse_cache (Hashtbl.find by_id r) 4) roots
  in
  let rec reverse_sql id depth =
    incr visits;
    if depth > 0 then
      List.iter
        (fun row -> reverse_sql (Value.as_int row.(0)) (depth - 1))
        (Baseline.Sql_navigator.query nav
           (Printf.sprintf "SELECT from_id FROM connection WHERE to_id = %d" id))
  in
  let sql_rev () =
    visits := 0;
    List.iter (fun r -> reverse_sql r 4) roots
  in
  let cache_rev_ms = time_avg_ms ~reps:3 cache_rev in
  let rev_visits = !visits in
  Baseline.Sql_navigator.reset nav;
  let sql_rev_ms = time_avg_ms ~reps:1 sql_rev in
  let rev_calls = Baseline.Sql_navigator.calls nav in

  (* insert: 100 parts with 3 connections each *)
  let batch = Workload.Oo1.insert_batch rng ~n_parts ~count:100 in
  let ses = Xnf.Api.session api cache in
  let xnf_insert () =
    Xnf.Udi.with_deferred ses (fun () ->
        List.iter
          (fun (row, targets) ->
            ignore (Xnf.Udi.insert ses ~node:"xpart" row);
            List.iter
              (fun tgt ->
                ignore
                  (Xnf.Udi.insert ses ~node:"xconn"
                     [| row.(0); Value.Int tgt; Value.Str "conn-type0"; Value.Int 1 |]))
              targets)
          batch)
  in
  let _, xnf_insert_ms = time_ms xnf_insert in
  let batch2 = Workload.Oo1.insert_batch rng ~n_parts:(n_parts + 100) ~count:100 in
  Baseline.Sql_navigator.reset nav;
  let sql_insert () =
    List.iter
      (fun ((row : Row.t), targets) ->
        ignore
          (Baseline.Sql_navigator.query nav
             (Printf.sprintf "SELECT * FROM part WHERE id = %d" (Value.as_int row.(0))));
        ignore
          (Db.exec db
             (Printf.sprintf "INSERT INTO part VALUES (%d, '%s', %d, %d, %d)"
                (Value.as_int row.(0)) (Value.as_string row.(1)) (Value.as_int row.(2))
                (Value.as_int row.(3)) (Value.as_int row.(4))));
        List.iter
          (fun tgt ->
            ignore
              (Db.exec db
                 (Printf.sprintf "INSERT INTO connection VALUES (%d, %d, 'conn-type0', 1)"
                    (Value.as_int row.(0)) tgt)))
          targets)
      batch2
  in
  let _, sql_insert_ms = time_ms sql_insert in
  let sql_insert_calls = 500 in
  let ipc ms calls = ms +. (float_of_int calls *. ipc_us /. 1000.) in
  table
    ~cols:[ "OO1 operation"; "XNF ms"; "SQL ms"; "SQL+IPC ms"; "speedup"; "speedup+IPC" ]
    [ [ "lookup (1000 parts)"; f2 cache_lookup_ms; f2 sql_lookup_ms;
        f2 (ipc sql_lookup_ms lookup_calls); fx (sql_lookup_ms /. cache_lookup_ms);
        fx (ipc sql_lookup_ms lookup_calls /. cache_lookup_ms) ];
      [ Printf.sprintf "traversal (depth 7, %d visits)" cache_visits; f2 cache_trav_ms;
        f2 sql_trav_ms; f2 (ipc sql_trav_ms trav_calls); fx (sql_trav_ms /. cache_trav_ms);
        fx (ipc sql_trav_ms trav_calls /. cache_trav_ms) ];
      [ Printf.sprintf "reverse traversal (depth 4, %d visits)" rev_visits; f2 cache_rev_ms;
        f2 sql_rev_ms; f2 (ipc sql_rev_ms rev_calls); fx (sql_rev_ms /. cache_rev_ms);
        fx (ipc sql_rev_ms rev_calls /. cache_rev_ms) ];
      [ "insert (100 parts + 300 conns)"; f2 xnf_insert_ms; f2 sql_insert_ms;
        f2 (ipc sql_insert_ms sql_insert_calls); fx (sql_insert_ms /. xnf_insert_ms);
        fx (ipc sql_insert_ms sql_insert_calls /. xnf_insert_ms) ] ];
  pr "   (insert gap is small by design: both paths pay the base-table writes)@."

(* =====================================================================
   E3 — working-set extraction at falling selectivity
   ===================================================================== *)

let e3 () =
  header "E3" "set-oriented working-set extraction vs navigational loading"
    "working sets select ~1 tuple in 10^4..10^5; \"this calls for set-oriented \
     query facilities for efficient data extraction\" (1)";
  let rows = ref [] in
  List.iter
    (fun docs_per_config ->
      let scale =
        { Workload.Design.n_docs = 2000; versions_per_doc = 4; components_per_version = 8;
          n_configs = 1; docs_per_config }
      in
      let db = Db.create () in
      Workload.Design.populate db ~seed:5 ~scale;
      let api = Xnf.Api.create db in
      let total = Workload.Design.total_rows db in
      let q = Xnf.Xnf_parser.parse_query (Workload.Design.working_set_query 0) in
      Xnf.Translate.reset_stats ();
      let cache, set_ms = time_ms (fun () -> Xnf.Api.fetch api q) in
      let set_queries = Xnf.Translate.stats.Xnf.Translate.queries_issued in
      let ws = Xnf.Cache.total_tuples cache in
      let def, _, _ = Xnf.View_registry.compose (Xnf.Api.registry api) q in
      let nav = Baseline.Sql_navigator.create db in
      let _, nav_ms = time_ms (fun () -> Baseline.Sql_navigator.extract_navigational nav def) in
      let nav_calls = Baseline.Sql_navigator.calls nav in
      let nav_ipc = nav_ms +. (float_of_int nav_calls *. ipc_us /. 1000.) in
      let set_ipc = set_ms +. (float_of_int set_queries *. ipc_us /. 1000.) in
      rows :=
        [ string_of_int ws; Printf.sprintf "%.1e" (float_of_int ws /. float_of_int total);
          f1 set_ms; string_of_int set_queries; f1 nav_ms; string_of_int nav_calls;
          f1 set_ipc; f1 nav_ipc; fx (nav_ipc /. set_ipc) ]
        :: !rows)
    [ 2; 20; 200 ];
  pr "   database: ~74k rows; working set = one configuration@.";
  table
    ~cols:[ "ws tuples"; "selectivity"; "set ms"; "set q"; "nav ms"; "nav calls"; "set+IPC";
            "nav+IPC"; "advantage" ]
    (List.rev !rows);
  pr "   (set-oriented extraction issues O(components) queries; navigation O(tuples))@."

(* =====================================================================
   E4 — composite-object clustering vs table clustering
   ===================================================================== *)

let e4 () =
  header "E4" "CO clustering cuts page faults on working-set loads"
    "\"the new system will need composite object data clustering for I/O \
     reduction\" (4); cf. DB2 catalog clusters / Starburst IMS attachment";
  (* a company database that grew over time: employees and projects arrive
     round-robin across departments, so plain insertion-order (table)
     clustering scatters each department's rows over many pages *)
  let n_depts = 40 and emps_per_dept = 25 and projs_per_dept = 8 in
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "CREATE TABLE proj (pno INTEGER PRIMARY KEY, pname VARCHAR, pdno INTEGER)";
      "CREATE INDEX emp_edno ON emp (edno)"; "CREATE INDEX proj_pdno ON proj (pdno)" ];
  let deptt = Catalog.table (Db.catalog db) "dept"
  and empt = Catalog.table (Db.catalog db) "emp"
  and projt = Catalog.table (Db.catalog db) "proj" in
  for d = 0 to n_depts - 1 do
    ignore
      (Table.insert deptt
         [| Value.Int d; Value.Str (Printf.sprintf "d%d" d); Value.Str "NY"; Value.Int 1000 |])
  done;
  for i = 0 to (n_depts * emps_per_dept) - 1 do
    ignore
      (Table.insert empt
         [| Value.Int i; Value.Str (Printf.sprintf "e%d" i); Value.Int 1000;
            Value.Int (i mod n_depts) |])
  done;
  for i = 0 to (n_depts * projs_per_dept) - 1 do
    ignore
      (Table.insert projt
         [| Value.Int i; Value.Str (Printf.sprintf "p%d" i); Value.Int (i mod n_depts) |])
  done;
  let api = Xnf.Api.create db in
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW ALL-DEPS AS OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
        ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno) TAKE *");
  let cache = Xnf.Api.fetch_string api "OUT OF ALL-DEPS TAKE *" in
  let catalog = Db.catalog db in
  let dept = Catalog.table catalog "dept"
  and emp = Catalog.table catalog "emp"
  and proj = Catalog.table catalog "proj" in
  let tables = [ dept; emp; proj ] in
  let employment = Xnf.Cache.edge cache "employment" in
  let ownership = Xnf.Cache.edge cache "ownership" in
  let dept_node = Xnf.Cache.node cache "xdept" in
  let emp_node = Xnf.Cache.node cache "xemp" in
  let proj_node = Xnf.Cache.node cache "xproj" in
  let rowid node pos = (Xnf.Cache.tuple node pos).Xnf.Cache.t_rowid in
  (* the storage order a CO-clustered layout would choose: each dept
     followed by its employees and projects *)
  let co_order =
    List.concat_map
      (fun t ->
        let d = t.Xnf.Cache.t_pos in
        ((dept, rowid dept_node d)
         :: List.map (fun e -> (emp, rowid emp_node e)) (Xnf.Cache.children cache employment d))
        @ List.map (fun p -> (proj, rowid proj_node p)) (Xnf.Cache.children cache ownership d))
      (Xnf.Cache.live_tuples dept_node)
  in
  let rows_per_page = 20 in
  let table_layout = Page.table_clustered ~rows_per_page tables in
  let co_layout = Page.co_clustered ~rows_per_page ~order:co_order tables in
  (* materialize both layouts into real page files: every fault below is
     a page read from disk, and saving a working set writes dirty pages
     back through the pool's writeback path *)
  let page_bytes = 1024 in
  let store_of layout =
    let path = Filename.temp_file "xnf-e4" ".pages" in
    let store = Page_store.create ~path ~page_bytes in
    ignore (Page.materialize layout store tables);
    (store, path)
  in
  let table_store, table_path = store_of table_layout in
  let co_store, co_path = store_of co_layout in
  (* replay the access pattern of loading ONE department's CO *)
  let accesses d =
    (dept, rowid dept_node d)
    :: List.map (fun e -> (emp, rowid emp_node e)) (Xnf.Cache.children cache employment d)
    @ List.map (fun p -> (proj, rowid proj_node p)) (Xnf.Cache.children cache ownership d)
  in
  let replay layout store capacity =
    let r0 = Page_store.reads store and w0 = Page_store.writes store in
    let pool = Buffer_pool.create ~store ~capacity () in
    let detach = Page.attach layout pool tables in
    (* load 8 different single-department working sets *)
    List.iter
      (fun d -> List.iter (fun (t, rid) -> ignore (Table.get t rid)) (accesses d))
      [ 0; 5; 10; 15; 20; 25; 30; 35 ];
    detach ();
    (* save department 0's working set: its pages go back out dirty *)
    List.iter
      (fun (t, rid) -> Buffer_pool.access ~dirty:true pool (Page.page_of layout t rid))
      (accesses 0);
    Buffer_pool.flush pool;
    (Buffer_pool.faults pool, Page_store.reads store - r0, Page_store.writes store - w0)
  in
  let rows =
    List.map
      (fun capacity ->
        let tf, tr, tw = replay table_layout table_store capacity in
        let cf, cr, cw = replay co_layout co_store capacity in
        let ratio = float_of_int tf /. float_of_int cf in
        if capacity = 64 then begin
          (* the CI-gated contract: CO clustering must keep beating table
             clustering on real page I/O at a realistic pool size *)
          Obs.Metrics.set (Obs.Metrics.gauge "bench.e4.table_faults") (float_of_int tf);
          Obs.Metrics.set (Obs.Metrics.gauge "bench.e4.co_faults") (float_of_int cf);
          Obs.Metrics.set (Obs.Metrics.gauge "bench.e4.fault_ratio") ratio;
          Obs.Metrics.set (Obs.Metrics.gauge "bench.e4.table_writebacks") (float_of_int tw);
          Obs.Metrics.set (Obs.Metrics.gauge "bench.e4.co_writebacks") (float_of_int cw)
        end;
        [ string_of_int capacity; string_of_int tf; string_of_int cf; f2 ratio;
          Printf.sprintf "%d/%d" tr tw; Printf.sprintf "%d/%d" cr cw ])
      [ 4; 16; 64; 256 ]
  in
  Page_store.close table_store;
  Page_store.close co_store;
  Sys.remove table_path;
  Sys.remove co_path;
  pr "   load of 8 single-department working sets (34 tuples each), %d rows/page,@."
    rows_per_page;
  pr "   rows arrived round-robin across departments (a database that grew over time);@.";
  pr "   layouts materialized to page files -- faults are reads, saves write back dirty pages@.";
  table
    ~cols:[ "buffer frames"; "table-clustered faults"; "CO-clustered faults"; "ratio";
            "table r/w"; "CO r/w" ]
    rows

(* =====================================================================
   E5 — common-subexpression sharing in the translation
   ===================================================================== *)

let e5 () =
  header "E5" "shared parent extents vs naive recomputation"
    "\"when we generate the tuples of a parent node, we output them, and also \
     use them again to find the tuples of the associated children\" (4.3)";
  let rows =
    List.map
      (fun depth ->
        let db = Db.create () in
        Workload.Chain.populate db ~seed:2 ~depth ~n_roots:4 ~fanout:4;
        let api = Xnf.Api.create db in
        let q = Xnf.Xnf_parser.parse_query (Workload.Chain.co_query ~depth) in
        let def, _, _ = Xnf.View_registry.compose (Xnf.Api.registry api) q in
        (* chain COs are DAGs by construction; classify rather than catch *)
        assert (Baseline.Naive_translate.supported def);
        (* warm both paths once before measuring *)
        ignore (Xnf.Api.fetch api q);
        ignore (Baseline.Naive_translate.extract_unshared db def);
        Xnf.Translate.reset_stats ();
        let cache = Xnf.Api.fetch api q in
        let shared_ms = time_avg_ms ~reps:3 (fun () -> Xnf.Api.fetch api q) in
        let shared_q = Xnf.Translate.stats.Xnf.Translate.queries_issued / 4 in
        let naive = Baseline.Naive_translate.extract_unshared db def in
        let naive_ms =
          time_avg_ms ~reps:3 (fun () -> Baseline.Naive_translate.extract_unshared db def)
        in
        [ string_of_int depth; string_of_int (Xnf.Cache.total_tuples cache); f2 shared_ms;
          string_of_int shared_q; f2 naive_ms;
          string_of_int naive.Baseline.Naive_translate.queries_issued;
          fx (naive_ms /. shared_ms) ])
      [ 1; 2; 3; 4; 5 ]
  in
  pr "   chain CO of increasing depth (4 tagged roots, fanout 4)@.";
  table
    ~cols:[ "depth"; "CO tuples"; "shared ms"; "shared q"; "naive ms"; "naive q"; "advantage" ]
    rows

(* =====================================================================
   E6 — semi-naive vs naive reachability fixpoint
   ===================================================================== *)

let e6 () =
  header "E6" "recursive COs: semi-naive vs naive fixpoint"
    "recursive composite objects are evaluated by reachability (3.4); the \
     translator uses delta iteration";
  let rows =
    List.map
      (fun len ->
        let db = Db.create () in
        Workload.Chain.mgmt_chain db ~chain_len:len;
        let api = Xnf.Api.create db in
        let q = Xnf.Xnf_parser.parse_query Workload.Chain.mgmt_query in
        Xnf.Translate.reset_stats ();
        let _, semi_ms = time_ms (fun () -> Xnf.Api.fetch ~fixpoint:Xnf.Translate.Semi_naive api q) in
        let semi_probed = Xnf.Translate.stats.Xnf.Translate.tuples_probed in
        let semi_rounds = Xnf.Translate.stats.Xnf.Translate.fixpoint_rounds in
        Xnf.Translate.reset_stats ();
        let _, naive_ms = time_ms (fun () -> Xnf.Api.fetch ~fixpoint:Xnf.Translate.Naive api q) in
        let naive_probed = Xnf.Translate.stats.Xnf.Translate.tuples_probed in
        [ string_of_int len; string_of_int semi_rounds; string_of_int semi_probed; f1 semi_ms;
          string_of_int naive_probed; f1 naive_ms; fx (naive_ms /. semi_ms) ])
      [ 25; 50; 100; 200 ]
  in
  pr "   management chain of increasing depth (one root, 'manages' closes the cycle)@.";
  table
    ~cols:[ "chain"; "rounds"; "semi probes"; "semi ms"; "naive probes"; "naive ms"; "advantage" ]
    rows;
  pr "   (semi-naive probes O(n) tuples, naive O(n^2) — the crossover widens with depth)@."

(* =====================================================================
   E7 — reuse of the relational rewrite/optimizer
   ===================================================================== *)

let e7 () =
  header "E7" "query rewrite on XNF-generated queries"
    "\"processing of XNF does not require any change to query rewrite\"; merging \
     of views and predicate pushdown apply to CO queries unchanged (4.3)";
  (* no FK indexes: the translator's probes run as generic plans through
     the engine, where the rewrite decides between cross nested loops and
     hash joins *)
  let mk () =
    let db = Db.create () in
    Workload.Chain.populate ~indexes:false db ~seed:4 ~depth:2 ~n_roots:15 ~fanout:8;
    (db, Xnf.Api.create db)
  in
  let q = Xnf.Xnf_parser.parse_query (Workload.Chain.co_query ~depth:2) in
  let db_on, api_on = mk () in
  Db.set_rewrite db_on true;
  ignore (Xnf.Api.fetch api_on q);
  let on_ms = time_avg_ms ~reps:3 (fun () -> Xnf.Api.fetch api_on q) in
  let db_off, api_off = mk () in
  Db.set_rewrite db_off false;
  let off_ms = time_avg_ms ~reps:3 (fun () -> Xnf.Api.fetch api_off q) in
  (* the same effect on a plain SQL join, for reference *)
  let sql = "SELECT * FROM t1 a, t2 b WHERE a.k1 = b.parent2 AND a.parent1 < 10" in
  Db.set_rewrite db_on true;
  let sql_on = time_avg_ms ~reps:3 (fun () -> Db.rows_of db_on sql) in
  Db.set_rewrite db_on false;
  let sql_off = time_avg_ms ~reps:3 (fun () -> Db.rows_of db_on sql) in
  table
    ~cols:[ "workload"; "rewrite on ms"; "rewrite off ms"; "speedup" ]
    [ [ "XNF fetch (chain CO, depth 2)"; f1 on_ms; f1 off_ms; fx (off_ms /. on_ms) ];
      [ "plain SQL join (reference)"; f2 sql_on; f2 sql_off; fx (sql_off /. sql_on) ] ];
  pr "   (without rewrite the translator's cross joins stay nested loops;@.";
  pr "    with rewrite the same QGM becomes hash/index joins — shared machinery)@."

(* =====================================================================
   E8 — blocked transfer of heterogeneous answer sets
   ===================================================================== *)

let e8 () =
  header "E8" "blocked heterogeneous answer streams"
    "\"the answer to all these queries are combined. This allows the DBMS to \
     more efficiently block the heterogeneous answer tuples\" (4.3)";
  let block = 20 in
  let rows =
    List.map
      (fun depth ->
        let db = Db.create () in
        Workload.Chain.populate db ~seed:6 ~depth ~n_roots:4 ~fanout:3;
        let api = Xnf.Api.create db in
        let cache = Xnf.Api.fetch_string api (Workload.Chain.co_query ~depth) in
        let node_sizes =
          List.map (fun (_, ni) -> Xnf.Cache.live_count ni) cache.Xnf.Cache.c_nodes
        in
        let conns =
          List.map
            (fun (_, ei) -> List.length (Xnf.Cache.conns_live ei))
            cache.Xnf.Cache.c_edges
        in
        let total = List.fold_left ( + ) 0 node_sizes + List.fold_left ( + ) 0 conns in
        let ceil_div a b = (a + b - 1) / b in
        (* one combined stream vs one stream per node/edge query *)
        let blocked_trips = ceil_div total block in
        let unblocked_trips =
          List.fold_left (fun acc n -> acc + max 1 (ceil_div n block)) 0 (node_sizes @ conns)
        in
        (* the tuple-at-a-time SQL cursor loop an application without XNF
           uses: one round trip per FETCH, plus one per OPEN *)
        let per_tuple_trips = total + List.length node_sizes + List.length conns in
        let ms trips = float_of_int trips *. ipc_us /. 1000. in
        [ string_of_int (List.length node_sizes + List.length conns); string_of_int total;
          string_of_int blocked_trips; string_of_int unblocked_trips;
          string_of_int per_tuple_trips; f1 (ms blocked_trips); f1 (ms per_tuple_trips);
          fx (float_of_int per_tuple_trips /. float_of_int blocked_trips) ])
      [ 2; 4; 6; 8 ]
  in
  pr "   modeled transfer: %d tuples per round trip, %.0fus per trip@." block ipc_us;
  table
    ~cols:[ "streams"; "answer tuples"; "blocked trips"; "per-stream trips"; "FETCH trips";
            "blocked ms"; "FETCH ms"; "advantage" ]
    rows;
  pr "   (combining all node/edge answers into one blocked heterogeneous stream@.";
  pr "    replaces per-tuple cursor FETCH round trips; the per-stream column shows@.";
  pr "    the residual cost of separate per-query streams)@."

(* =====================================================================
   E9 — deferred propagation of cache updates
   ===================================================================== *)

let e9 () =
  header "E9" "immediate vs deferred/coalesced update propagation"
    "\"the cache is maintained in such a way that cache changes can be \
     propagated in an efficient fashion [KDG87]\" (3.7)";
  let rows =
    List.map
      (fun k ->
        let _, api = company_db ~scale:Workload.Company.small () in
        let run deferred =
          let cache = Xnf.Api.fetch_string api "OUT OF ALL-DEPS TAKE *" in
          let ses = Xnf.Api.session api cache in
          let emp_node = Xnf.Cache.node cache "xemp" in
          let positions =
            Array.of_list (List.map (fun t -> t.Xnf.Cache.t_pos) (Xnf.Cache.live_tuples emp_node))
          in
          let db = Xnf.Api.db api in
          let wal0 = Wal.length (Txn.wal (Db.txn db)) in
          let work () =
            for i = 0 to k - 1 do
              Xnf.Udi.update ses ~node:"xemp" ~pos:positions.(i mod Array.length positions)
                [ ("sal", Value.Int (1000 + i)) ]
            done
          in
          let _, ms =
            time_ms (fun () -> if deferred then Xnf.Udi.with_deferred ses work else work ())
          in
          (ms, Wal.length (Txn.wal (Db.txn db)) - wal0)
        in
        let imm_ms, imm_writes = run false in
        let def_ms, def_writes = run true in
        [ string_of_int k; f2 imm_ms; string_of_int imm_writes; f2 def_ms;
          string_of_int def_writes; fx (imm_ms /. def_ms) ])
      [ 10; 100; 1000 ]
  in
  pr "   k salary updates cycling over the 6 cached employees@.";
  table
    ~cols:[ "updates"; "immediate ms"; "base writes"; "deferred ms"; "base writes (coalesced)";
            "advantage" ]
    rows

(* =====================================================================
   E10 — extraction scales with the working set, not the database
   ===================================================================== *)

let e10 () =
  header "E10" "extraction cost scales with the working set, not the database"
    "databases are \"in the gigabytes to terabytes range, whereas working sets \
     are typically in the range of 1 to 100 megabytes\" (1): loading must not \
     pay for the data it does not touch";
  let rows =
    List.map
      (fun n_parts ->
        let db = Db.create () in
        Workload.Oo1.populate db ~seed:8 ~n_parts;
        let api = Xnf.Api.create db in
        (* a fixed-size working set: one locality zone of ~60 parts *)
        let lo = n_parts / 2 and hi = (n_parts / 2) + 59 in
        let q =
          Printf.sprintf
            "OUT OF Xpart AS (SELECT * FROM part WHERE id >= %d AND id <= %d), \
             Xconn AS CONNECTION, \
             outgoing AS (RELATE Xpart, Xconn WHERE Xpart.id = Xconn.from_id) TAKE *"
            lo hi
        in
        ignore (Xnf.Api.fetch_string api q);
        let cache = ref None in
        let ms = time_avg_ms ~reps:3 (fun () -> cache := Some (Xnf.Api.fetch_string api q)) in
        let tuples = match !cache with Some c -> Xnf.Cache.total_tuples c | None -> 0 in
        [ string_of_int n_parts; string_of_int tuples; f2 ms ])
      [ 2000; 8000; 32000 ]
  in
  pr "   fixed ~240-tuple working set extracted from growing OO1 databases@.";
  table ~cols:[ "database parts"; "working-set tuples"; "extraction ms" ] rows;
  pr "   (the root scan is the only O(database) term; probes touch only the@.";
  pr "    working set — extraction stays near-flat as the database grows 16x)@."

(* =====================================================================
   E11 — repeated fetches through the prepared-plan cache
   ===================================================================== *)

(* Fixed wall-clock repetitions (no Bechamel: the bench.e11.* counters
   asserted by the CI baseline gate must be deterministic). Gauges land
   in the metrics registry so `--json` snapshots feed bin/bench_compare. *)
let e11 () =
  header "E11" "repeated fetches: cold compile-per-fetch vs plan cache vs PREPARE/EXECUTE"
    "\"the XNF query ... is parsed, semantically checked and translated\" once per \
     preparation, not once per fetch (4.3): repeated working-set extraction \
     should pay compilation once";
  let _, api = company_db ~scale:Workload.Company.small () in
  let q = "OUT OF ALL-DEPS WHERE Xdept SUCH THAT dno = 1 TAKE *" in
  let reps = 400 in
  (* best-of-3 averaging windows: these microsecond-scale gauges feed the
     CI baseline gate, and a single GC major or scheduler preemption
     inside one 400-rep window would spike the lone average *)
  let rounds = 3 in
  let avg_best f =
    let best = ref infinity in
    for _ = 1 to rounds do
      let ms = time_avg_ms ~reps f in
      if ms < !best then best := ms
    done;
    !best
  in
  (* time the work, not the tracer: spans off during the measured loops *)
  Obs.Trace.set_enabled false;
  (* cold: plan cache off — every fetch parses, composes, analyzes and
     access-path selects again *)
  Xnf.Api.set_plan_cache api 0;
  ignore (Xnf.Api.fetch_string api q);
  let cold_ms = avg_best (fun () -> Xnf.Api.fetch_string api q) in
  (* warm: plan cache on — the text-keyed hit skips straight to execution *)
  Xnf.Api.set_plan_cache api 8;
  let h0 = Obs.Metrics.counter_get "xnf.plancache.hits" in
  let c0 = Obs.Metrics.counter_get "xnf.plan.compiles" in
  ignore (Xnf.Api.fetch_string api q);
  let warm_ms = avg_best (fun () -> Xnf.Api.fetch_string api q) in
  let warm_hits = Obs.Metrics.counter_get "xnf.plancache.hits" - h0 in
  let warm_compiles = Obs.Metrics.counter_get "xnf.plan.compiles" - c0 in
  (* prepared: one compiled plan, EXECUTE rebinding the parameter *)
  ignore
    (Xnf.Api.exec api "PREPARE e11 AS OUT OF ALL-DEPS WHERE Xdept SUCH THAT dno = ? TAKE *");
  let prepared_ms =
    avg_best (fun () -> Xnf.Api.execute_prepared api "e11" [ Value.Int 1 ])
  in
  Obs.Trace.set_enabled true;
  let speedup = cold_ms /. warm_ms in
  table
    ~cols:[ "fetch path"; "ms/fetch"; "speedup" ]
    [ [ "cold (compile per fetch)"; f2 cold_ms; "1x" ];
      [ "warm (plan cache)"; f2 warm_ms; fx speedup ];
      [ "prepared (EXECUTE ?)"; f2 prepared_ms; fx (cold_ms /. prepared_ms) ] ];
  pr "   warm loop: %d plan-cache hits, %d compilation(s)@." warm_hits warm_compiles;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e11.cold_ms") cold_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e11.warm_ms") warm_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e11.prepared_ms") prepared_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e11.warm_speedup") speedup;
  Obs.Metrics.incr ~by:warm_hits (Obs.Metrics.counter "bench.e11.warm_plan_hits");
  Obs.Metrics.incr ~by:warm_compiles (Obs.Metrics.counter "bench.e11.warm_plan_compiles")

(* =====================================================================
   E12 — set-oriented batch edge execution
   ===================================================================== *)

(* Forced-strategy fetches over the deep unindexed chain and the
   recursive management tree. The bench.e12.* metrics feed the CI gate:
   batch hash probing must beat the engine-planned generic path by a
   --min floor on the large deep schema, and the warm loop must reuse
   every hash build (exact counters). E12_SCALE multiplies the row
   counts; the nightly target runs at 10x. *)
let e12 () =
  header "E12" "set-oriented batch edge execution"
    "\"set-oriented processing whenever possible\" (4.1): per-round batch hash \
     probes against a build computed once per fetch — and, across warm \
     executions of the same plan, not even once per fetch";
  let scale = match Sys.getenv_opt "E12_SCALE" with Some s -> max 1 (int_of_string s) | None -> 1 in
  let s = Xnf.Translate.stats in
  (* cold fetch per strategy: compile with the access path pinned, then
     time executions (hash builds included — that is the cold cost).
     Every repetition recompiles, so no build survives into the next
     run; best-of-N damps scheduler noise for the CI-gated gauges. *)
  let cold_reps = 5 in
  let forced_run api q force =
    let def, restrs, _ =
      Xnf.View_registry.compose (Xnf.Api.registry api) (Xnf.Xnf_parser.parse_query q)
    in
    let db = Xnf.Api.db api in
    let cp = ref (Xnf.Translate.compile_def ~force db def) in
    let cache = ref (Xnf.Translate.execute_def db !cp restrs) in
    let best = ref infinity in
    for _ = 1 to cold_reps do
      cp := Xnf.Translate.compile_def ~force db def;
      let c, ms = time_ms (fun () -> Xnf.Translate.execute_def db !cp restrs) in
      cache := c;
      if ms < !best then best := ms
    done;
    (Xnf.Cache.total_tuples !cache, !best, !cp, db, restrs)
  in
  Obs.Trace.set_enabled false;
  (* --- deep chain (depth 3, no FK indexes), ~10k and ~100k rows ---
     the extracted working set is pinned to 64 roots (5440 CO tuples)
     while the database scales, the paper's extraction scenario: the
     generic path re-copies and re-joins whole child extents through the
     engine, batch hash pays one cheap build per extent *)
  let deep n_roots =
    let db = Db.create () in
    Workload.Chain.populate ~indexes:false db ~seed:12 ~depth:3 ~n_roots ~fanout:4;
    (* levels hold 2n, 8n, 32n, 128n rows *)
    (170 * n_roots, Xnf.Api.create db, Workload.Chain.co_query_sel ~max_root:64 ~depth:3)
  in
  let deep_rows = ref [] in
  let deep_speedup = ref 0. and deep_generic_ms = ref 0. and deep_hash_ms = ref 0. in
  List.iter
    (fun n_roots ->
      let total, api, q = deep (n_roots * scale) in
      let co, generic_ms, _, _, _ = forced_run api q Xnf.Translate.S_generic in
      let co', hash_ms, _, _, _ = forced_run api q Xnf.Translate.S_hash in
      assert (co = co');
      deep_speedup := generic_ms /. hash_ms;
      deep_generic_ms := generic_ms;
      deep_hash_ms := hash_ms;
      deep_rows :=
        [ string_of_int total; string_of_int co; f2 generic_ms; f2 hash_ms; fx !deep_speedup ]
        :: !deep_rows)
    [ 60; 600 ];
  table
    ~cols:[ "base rows"; "CO tuples"; "generic ms"; "hash ms"; "speedup" ]
    (List.rev !deep_rows);
  (* --- warm executions of the large deep plan: builds reused --- *)
  let _, api, q = deep (600 * scale) in
  let _, cold_ms, cp, db, restrs = forced_run api q Xnf.Translate.S_hash in
  let reps = 20 in
  let b0 = s.hash_builds and r0 = s.hash_build_reuses in
  let warm_ms =
    time_avg_ms ~reps (fun () -> Xnf.Translate.execute_def db cp restrs)
  in
  let warm_builds = s.hash_builds - b0 and warm_reuses = s.hash_build_reuses - r0 in
  let warm_speedup = cold_ms /. warm_ms in
  (* allocation per frontier probe on the warm path (builds reused, so
     this is pure probe-side allocation): one extra execution bracketed
     by Gc.allocated_bytes, normalized by the frontier rows probed *)
  let alloc_per_probe =
    let p0 = s.tuples_probed in
    (* drain the minor heap on both sides: OCaml 5's [Gc.allocated_bytes]
       only advances at minor collections, so an undrained bracket is
       quantized by the minor-heap size (~2MB) and flaps run to run *)
    Gc.minor ();
    let a0 = Gc.allocated_bytes () in
    ignore (Xnf.Translate.execute_def db cp restrs);
    Gc.minor ();
    let bytes = Gc.allocated_bytes () -. a0 in
    bytes /. float_of_int (max 1 (s.tuples_probed - p0))
  in
  pr "   warm: %.2f ms/fetch vs %.2f cold (%s) — %d rebuilds, %d build reuses over %d fetches@."
    warm_ms cold_ms (fx warm_speedup) warm_builds warm_reuses reps;
  pr "   allocation: %.0f bytes per frontier probe (warm hash path)@." alloc_per_probe;
  (* --- recursive management tree, ~10k employees --- *)
  let rec_target = 10_000 * scale in
  let levels =
    let rec go l n = if n >= rec_target then l else go (l + 1) ((n * 10) + 1) in
    go 1 1
  in
  let rec_db indexes =
    let db = Db.create () in
    let n = Workload.Chain.mgmt_tree ~indexes db ~levels ~fanout:10 in
    (n, Xnf.Api.create db)
  in
  let n, api_noidx = rec_db false in
  let _, api_idx = rec_db true in
  let co, rec_generic_ms, _, _, _ = forced_run api_noidx Workload.Chain.mgmt_query Xnf.Translate.S_generic in
  let co', rec_hash_ms, _, _, _ = forced_run api_noidx Workload.Chain.mgmt_query Xnf.Translate.S_hash in
  let co'', rec_indexed_ms, _, _, _ = forced_run api_idx Workload.Chain.mgmt_query Xnf.Translate.S_indexed in
  assert (co = co' && co = co'');
  let rec_speedup = rec_generic_ms /. rec_hash_ms in
  Obs.Trace.set_enabled true;
  table
    ~cols:[ "recursive CO"; "employees"; "ms/fetch"; "speedup" ]
    [ [ "generic (engine-planned)"; string_of_int n; f2 rec_generic_ms; "1x" ];
      [ "batch hash"; string_of_int n; f2 rec_hash_ms; fx rec_speedup ];
      [ "indexed (FK index)"; string_of_int n; f2 rec_indexed_ms; fx (rec_generic_ms /. rec_indexed_ms) ] ];
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.deep_generic_ms") !deep_generic_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.deep_hash_ms") !deep_hash_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.deep_speedup") !deep_speedup;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.warm_ms") warm_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.warm_speedup") warm_speedup;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.alloc_bytes_per_probe") alloc_per_probe;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.rec_generic_ms") rec_generic_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.rec_hash_ms") rec_hash_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.rec_indexed_ms") rec_indexed_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e12.rec_speedup") rec_speedup;
  Obs.Metrics.incr ~by:warm_builds (Obs.Metrics.counter "bench.e12.warm_builds");
  Obs.Metrics.incr ~by:warm_reuses (Obs.Metrics.counter "bench.e12.warm_build_reuses")

(* E13 — cost-picked access paths vs. the forced-worst strategy.

   Two skewed single-edge chains where the static rule and the cost
   model disagree (or where the cost model must avoid an expensive
   rebuild):

     A. composite-key skew: the only index on the child covers a
        2-value column, the second join conjunct carries all the
        selectivity. Static rules pick indexed (an index exists); the
        cost model must pick hash-batch, because every indexed probe
        scans half the child table.
     B. unique probe column on a large child: the cost model must pick
        indexed; forcing hash-batch pays a full build of the child per
        cold fetch.

   bench.e13.cost_pick_speedup — the minimum of the two cost-pick vs
   forced-worst ratios — feeds the CI gate (--min 1.5). E13_SCALE
   multiplies the child row counts; the nightly target runs at 10x. *)
let e13 () =
  header "E13" "cost-based access-path selection"
    "the planner, not a fixed rule, picks the per-edge strategy: with fresh \
     statistics the cost model avoids both the skewed-index trap and the \
     needless hash build";
  let scale = match Sys.getenv_opt "E13_SCALE" with Some s -> max 1 (int_of_string s) | None -> 1 in
  let reps = 3 in
  (* best-of-N cold fetches; fresh compile per rep so no hash build or
     version cache survives into the next run *)
  let run api q force =
    let def, restrs, _ =
      Xnf.View_registry.compose (Xnf.Api.registry api) (Xnf.Xnf_parser.parse_query q)
    in
    let db = Xnf.Api.db api in
    let compile () =
      match force with
      | Some f -> Xnf.Translate.compile_def ~force:f db def
      | None -> Xnf.Translate.compile_def db def
    in
    let cp = ref (compile ()) in
    let cache = ref (Xnf.Translate.execute_def db !cp restrs) in
    let best = ref infinity in
    for _ = 1 to reps do
      cp := compile ();
      let c, ms = time_ms (fun () -> Xnf.Translate.execute_def db !cp restrs) in
      cache := c;
      if ms < !best then best := ms
    done;
    (Xnf.Cache.total_tuples !cache, !best, !cp)
  in
  Obs.Trace.set_enabled false;
  let case ~label ~setup ~q ~expect ~worst =
    let db = Db.create () in
    List.iter (fun stmt -> ignore (Db.exec db stmt)) (setup ());
    ignore (Db.exec db "ANALYZE");
    let api = Xnf.Api.create db in
    let co, cost_ms, cp = run api q None in
    (* the pick itself is part of the claim: fresh stats, no force *)
    assert (Xnf.Translate.cost_based cp);
    List.iter
      (fun (_, s) -> assert (s = expect))
      (Xnf.Translate.edge_strategies cp);
    let co', worst_ms, _ = run api q (Some worst) in
    assert (co = co');
    let speedup = worst_ms /. cost_ms in
    ( [ label;
        string_of_int co;
        Xnf.Translate.strategy_name expect;
        f2 cost_ms;
        Xnf.Translate.strategy_name worst;
        f2 worst_ms;
        fx speedup ],
      cost_ms, worst_ms, speedup )
  in
  let ints n f = List.init n f in
  let row_a, cost_a, worst_a, speedup_a =
    case ~label:"A skewed index"
      ~setup:(fun () ->
        [ "CREATE TABLE sp (k INTEGER PRIMARY KEY, f INTEGER)";
          "CREATE TABLE sc (k INTEGER PRIMARY KEY, g INTEGER, h INTEGER)";
          "CREATE INDEX scix ON sc (g)" ]
        @ ints 200 (fun k -> Printf.sprintf "INSERT INTO sp VALUES (%d, %d)" k (k mod 2))
        @ ints (20_000 * scale) (fun k ->
              Printf.sprintf "INSERT INTO sc VALUES (%d, %d, %d)" k (k mod 2) (k mod 200)))
      ~q:
        "OUT OF p0 AS (SELECT * FROM sp), c0 AS (SELECT * FROM sc), e0 AS (RELATE p0, c0 WHERE \
         (p0.f = c0.g AND p0.k = c0.h)) TAKE *"
      ~expect:Xnf.Translate.S_hash ~worst:Xnf.Translate.S_indexed
  in
  let row_b, cost_b, worst_b, speedup_b =
    case ~label:"B needless build"
      ~setup:(fun () ->
        [ "CREATE TABLE bp (k INTEGER PRIMARY KEY, f INTEGER)";
          "CREATE TABLE bc (k INTEGER PRIMARY KEY, f INTEGER, s VARCHAR(8))";
          "CREATE INDEX bcix ON bc (f)" ]
        @ ints 10 (fun k -> Printf.sprintf "INSERT INTO bp VALUES (%d, %d)" k k)
        @ ints (20_000 * scale) (fun k ->
              Printf.sprintf "INSERT INTO bc VALUES (%d, %d, 'v%d')" k k (k mod 97)))
      ~q:
        "OUT OF p0 AS (SELECT * FROM bp), c0 AS (SELECT * FROM bc), e0 AS (RELATE p0, c0 WHERE \
         (p0.k = c0.f)) TAKE *"
      ~expect:Xnf.Translate.S_indexed ~worst:Xnf.Translate.S_hash
  in
  Obs.Trace.set_enabled true;
  table
    ~cols:[ "case"; "CO tuples"; "cost pick"; "ms"; "forced"; "ms"; "speedup" ]
    [ row_a; row_b ];
  let speedup = Float.min speedup_a speedup_b in
  pr "   cost-pick speedup (min of both cases): %s@." (fx speedup);
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e13.skew_cost_ms") cost_a;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e13.skew_forced_ms") worst_a;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e13.skew_speedup") speedup_a;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e13.build_cost_ms") cost_b;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e13.build_forced_ms") worst_b;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e13.build_speedup") speedup_b;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e13.cost_pick_speedup") speedup

(* =====================================================================
   E14 — dictionary-encoded navigation vs the pre-dictionary boxed path
   ===================================================================== *)

(* OO1-style closure traversal over parts/connections: from a set of seed
   parts, repeatedly expand the frontier through an outgoing-connection
   hash build until the reachable part set is closed — the navigation
   pattern of the paper's engineering-database scenario (Cattell's OO1),
   run to fixpoint instead of a bounded depth.

   Both kernels execute the identical probe loop over the identical OO1
   database loaded through the (encoded) engine; they differ only in the
   row representation the old and the current execution core used:

     - boxed   — [Value.t array] rows, each probe extracts its key into a
                 fresh [Value.t array] and hashes through [Row_key_boxed]
                 ([Value.hash]/[Value.equal] with constructor dispatch):
                 the pre-dictionary hot path;
     - encoded — [Dict] id rows, one scratch [int array] mutated per
                 probe, [Row_key] hashing over raw ints: the current hot
                 path.

   bench.e14.nav_speedup (warm boxed ms / warm encoded ms) feeds the CI
   gate (--min 2); bench.e14.alloc_bytes_per_probe tracks probe-side
   allocation of the encoded kernel. E14_SCALE multiplies the part
   count; the nightly target runs at 10x. *)
let e14 () =
  header "E14" "dictionary-encoded navigation closure (OO1 parts/connections)"
    "the execution core navigates composite objects on raw dictionary ids; \
     values are decoded only at delivery (4.1/4.2)";
  let scale = match Sys.getenv_opt "E14_SCALE" with Some s -> max 1 (int_of_string s) | None -> 1 in
  let n_parts = 20_000 * scale in
  let db = Db.create () in
  Workload.Oo1.populate db ~seed:14 ~n_parts;
  let api = Xnf.Api.create db in
  let cache, load_ms =
    time_ms (fun () -> Xnf.Api.fetch_string api Workload.Oo1.parts_co_query)
  in
  let conns = Xnf.Cache.live_tuples (Xnf.Cache.node cache "xconn") in
  pr "   database: %d parts, %d connections; encoded cache load %.1f ms@." n_parts (3 * n_parts)
    load_ms;
  let roots = [ 0; n_parts / 4; n_parts / 2; 3 * n_parts / 4 ] in

  (* --- encoded kernel: Dict ids end to end ---
     dense int ids admit int-native structures the boxed representation
     cannot use: the build is an {!Intmap} (open addressing, allocation-
     free get) from the key id to the head of a bucket chain threaded
     through two flat int arrays. Key ids of non-negative Int columns are
     non-negative (inline tag 00), which Intmap requires. *)
  let n_conns = List.length conns in
  let enc_tgt = Array.make (max 1 n_conns) 0 in
  let enc_next = Array.make (max 1 n_conns) Intmap.absent in
  let build_encoded () =
    let heads = Intmap.create ~size:(2 * n_parts) in
    List.iteri
      (fun j t ->
        let row = t.Xnf.Cache.t_row in
        let k = Dict.key_cell row.(0) in
        enc_tgt.(j) <- Dict.key_cell row.(1);
        enc_next.(j) <- Intmap.get heads k;
        Intmap.set heads k j)
      conns;
    heads
  in
  let enc_roots = List.map (fun id -> Dict.key_cell (Dict.encode (Value.Int id))) roots in
  (* worklist as a preallocated int stack: every connection is pushed at
     most once (its source is visited exactly once), so total pushes are
     bounded by roots + connections *)
  let enc_stack = Array.make ((3 * n_parts) + 8) 0 in
  let enc_probes = ref 0 in
  let enc_traverse heads =
    let visited = Intmap.create ~size:(2 * n_parts) in
    let top = ref 0 in
    List.iter
      (fun r ->
        enc_stack.(!top) <- r;
        incr top)
      enc_roots;
    let reached = ref 0 in
    let np = ref 0 in
    while !top > 0 do
      decr top;
      let id = enc_stack.(!top) in
      incr np;
      if Intmap.get visited id = Intmap.absent then begin
        Intmap.set visited id 1;
        incr reached;
        incr np;
        let j = ref (Intmap.get heads id) in
        while !j <> Intmap.absent do
          enc_stack.(!top) <- enc_tgt.(!j);
          incr top;
          j := enc_next.(!j)
        done
      end
    done;
    enc_probes := !np;
    !reached
  in

  (* --- boxed kernel: the pre-dictionary representation --- *)
  let boxed_rows = List.map Xnf.Cache.row conns in
  let boxed_build : Value.t list Expr.Row_key_boxed_tbl.t =
    Expr.Row_key_boxed_tbl.create (2 * n_parts)
  in
  let build_boxed () =
    Expr.Row_key_boxed_tbl.reset boxed_build;
    List.iter
      (fun (row : Row.t) ->
        let key = [| row.(0) |] in
        match Expr.Row_key_boxed_tbl.find_opt boxed_build key with
        | Some l -> Expr.Row_key_boxed_tbl.replace boxed_build key (row.(1) :: l)
        | None -> Expr.Row_key_boxed_tbl.add boxed_build key [ row.(1) ])
      boxed_rows
  in
  let boxed_roots = List.map (fun id -> Value.Int id) roots in
  let boxed_stack = Array.make ((3 * n_parts) + 8) Value.Null in
  let boxed_traverse () =
    let visited : unit Expr.Row_key_boxed_tbl.t =
      Expr.Row_key_boxed_tbl.create (2 * n_parts)
    in
    let top = ref 0 in
    List.iter
      (fun r ->
        boxed_stack.(!top) <- r;
        incr top)
      boxed_roots;
    let reached = ref 0 in
    while !top > 0 do
      decr top;
      let v = boxed_stack.(!top) in
      (* per-probe key extraction into a fresh array, exactly what the
         boxed hot path did for every frontier tuple *)
      let key = [| v |] in
      if not (Expr.Row_key_boxed_tbl.mem visited key) then begin
        Expr.Row_key_boxed_tbl.add visited key ();
        incr reached;
        match Expr.Row_key_boxed_tbl.find_opt boxed_build [| v |] with
        | Some tgts ->
          List.iter
            (fun t ->
              boxed_stack.(!top) <- t;
              incr top)
            tgts
        | None -> ()
      end
    done;
    !reached
  in

  (* cold: build + closure, best-of-N with the build redone every rep;
     warm: closure only, the build reused across fetches *)
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let _, ms = time_ms f in
      if ms < !best then best := ms
    done;
    !best
  in
  let enc_cold_ms = best_of 3 (fun () -> ignore (enc_traverse (build_encoded ()))) in
  let boxed_cold_ms = best_of 3 (fun () -> build_boxed (); ignore (boxed_traverse ())) in
  let enc_heads = build_encoded () in
  let enc_reached = enc_traverse enc_heads in
  let boxed_reached = boxed_traverse () in
  assert (enc_reached = boxed_reached);
  let reps = 10 in
  let enc_warm_ms = time_avg_ms ~reps (fun () -> enc_traverse enc_heads) in
  let boxed_warm_ms = time_avg_ms ~reps (fun () -> boxed_traverse ()) in
  let nav_speedup = boxed_warm_ms /. enc_warm_ms in
  let cold_speedup = boxed_cold_ms /. enc_cold_ms in
  (* probe-side allocation of the encoded closure (Gc.allocated_bytes
     only advances at minor collections — drain both sides) *)
  let alloc_per_probe =
    Gc.minor ();
    let a0 = Gc.allocated_bytes () in
    ignore (enc_traverse enc_heads);
    Gc.minor ();
    (Gc.allocated_bytes () -. a0) /. float_of_int (max 1 !enc_probes)
  in
  table
    ~cols:[ "navigation closure"; "cold ms"; "warm ms"; "warm speedup" ]
    [ [ "boxed rows (pre-dictionary hot path)"; f2 boxed_cold_ms; f2 boxed_warm_ms; "1x" ];
      [ "encoded rows (dictionary ids)"; f2 enc_cold_ms; f2 enc_warm_ms; fx nav_speedup ] ];
  pr "   closure: %d of %d parts reached from %d roots; %d key probes per pass@." enc_reached
    n_parts (List.length roots) !enc_probes;
  pr "   allocation: %.0f bytes per probe (encoded); cold speedup %s@." alloc_per_probe
    (fx cold_speedup);
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e14.load_ms") load_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e14.boxed_cold_ms") boxed_cold_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e14.boxed_warm_ms") boxed_warm_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e14.enc_cold_ms") enc_cold_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e14.enc_warm_ms") enc_warm_ms;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e14.cold_speedup") cold_speedup;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e14.nav_speedup") nav_speedup;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.e14.alloc_bytes_per_probe") alloc_per_probe;
  Obs.Metrics.incr ~by:enc_reached (Obs.Metrics.counter "bench.e14.reached_parts")

(* per-experiment observability line: per-stage pipeline time from the
   span.* histograms and the cache hit rate from the counters, both
   sourced from lib/obs *)
let with_obs f =
  let stage n = Obs.Metrics.hist_sum_get ("span." ^ n) in
  let hits () = Obs.Metrics.counter_get "xnf.cache.nav_hits" + Obs.Metrics.counter_get "xnf.fetchcache.hits" in
  let misses () = Obs.Metrics.counter_get "xnf.cache.nav_misses" + Obs.Metrics.counter_get "xnf.fetchcache.misses" in
  let tr0 = stage "translate" and op0 = stage "optimize" and ex0 = stage "execute" in
  let h0 = hits () and m0 = misses () in
  f ();
  let ms v = v /. 1e6 in
  let h = hits () - h0 and m = misses () - m0 in
  let rate = if h + m = 0 then 0. else 100. *. float_of_int h /. float_of_int (h + m) in
  pr "   obs: translate %.1f ms, optimize %.1f ms, execute %.1f ms, cache hit-rate %.1f%% (%d/%d)@."
    (ms (stage "translate" -. tr0)) (ms (stage "optimize" -. op0)) (ms (stage "execute" -. ex0))
    rate h (h + m)

(* ---- driver ---- *)

let experiments =
  [ ("E1", "cache navigation vs SQL interface", e1);
    ("E2", "OO1 lookup/traversal/insert", e2);
    ("E3", "working-set extraction selectivity sweep", e3);
    ("E4", "CO clustering page faults", e4);
    ("E5", "common-subexpression sharing", e5);
    ("E6", "semi-naive vs naive fixpoint", e6);
    ("E7", "query rewrite on XNF queries", e7);
    ("E8", "blocked heterogeneous streams", e8);
    ("E9", "deferred update propagation", e9);
    ("E10", "extraction scaling with database size", e10);
    ("E11", "repeated fetches through the plan cache", e11);
    ("E12", "set-oriented batch edge execution", e12);
    ("E13", "cost-based access-path selection", e13);
    ("E14", "dictionary-encoded navigation closure", e14) ]

let () =
  ignore (Check.Pipeline.install_from_env ());
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then
    List.iter (fun (id, title, _) -> pr "%s  %s@." id title) experiments
  else begin
    (* --only is repeatable: `--only E11 --only E12` runs both *)
    let only =
      let rec find acc = function
        | "--only" :: id :: rest -> find (id :: acc) rest
        | _ :: rest -> find acc rest
        | [] -> List.rev acc
      in
      find [] args
    in
    let selected =
      match only with
      | [] -> experiments
      | ids -> List.filter (fun (eid, _, _) -> List.mem eid ids) experiments
    in
    if selected = [] then begin
      pr "unknown experiment; use --list@.";
      exit 1
    end;
    pr "SQL/XNF benchmark suite — reproduction of the paper's performance claims@.";
    pr "(see DESIGN.md section 4 for the experiment index, EXPERIMENTS.md for discussion)@.";
    List.iter (fun (_, _, f) -> with_obs f) selected;
    let rec find_json = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find_json rest
      | [] -> None
    in
    match find_json args with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      (* splice the top statement aggregates into the metrics object:
         bench_compare gates only on the counters/gauges sections, so the
         extra key is inert for regression gating but keeps the per-
         statement profile alongside the counters it explains *)
      let mj = Obs.Metrics.to_json () in
      let mj = String.trim mj in
      let body = String.sub mj 0 (String.length mj - 1) in
      output_string oc
        (body ^ ",\"statements\":" ^ Obs.Query_stats.to_json_top 10 ^ "}");
      output_char oc '\n';
      close_out oc;
      pr "@.metrics written to %s@." path
  end
