#!/bin/sh
# Minimal CI entry point: build everything, run the test suites, and
# smoke-test that the benchmark harness still starts. Exits non-zero on
# the first failure. Equivalent to `make check`.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build @all

echo "== test =="
dune runtest

echo "== bench smoke =="
dune exec bench/main.exe -- --list
