#!/bin/sh
# Minimal CI entry point: build everything, run the test suites (twice:
# once as-is, once with the pipeline invariant validators forced on via
# XNF_CHECK), lint the statement corpus, and smoke-test that the
# benchmark harness still starts. Exits non-zero on the first failure —
# including any error-severity lint diagnostic. Equivalent to
# `make check`.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build @all

echo "== test =="
dune runtest

echo "== test (pipeline validators installed) =="
XNF_CHECK=1 dune runtest --force

echo "== lint corpus =="
dune exec bin/xnf_shell.exe -- --demo --lint examples/corpus.xnf

echo "== fuzz (differential, seed 42) =="
# short budget by default; raise with FUZZ_ITERS for nightly-style runs
dune exec bin/xnf_fuzz.exe -- --seed 42 --iters "${FUZZ_ITERS:-500}" --quiet

echo "== fuzz corpus replay =="
dune exec bin/xnf_fuzz.exe -- --replay-dir examples/fuzz-corpus

echo "== fuzz mutation smoke =="
# inject a defect into every delivered instance; xnf_fuzz exits non-zero
# unless the harness catches every injected defect
dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-conn --no-shrink --quiet
dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-tuple --no-shrink --quiet

echo "== bench smoke =="
dune exec bench/main.exe -- --list

echo "== bench gate (E11+E12 vs BENCH_seed.json) =="
# re-run the repeated-fetch and batch-edge experiments and diff their
# bench.* metrics against the committed baseline: counters exact, timing
# gauges within BENCH_TOLERANCE (relative; generous because CI machines
# vary), and two absolute floors regardless of the baseline: the warm
# plan-cache speedup >= 2x, and batch hash probing >= 3x over the
# engine-planned generic path on the 100k-row deep schema
dune exec bench/main.exe -- --only E11 --only E12 --json /tmp/bench_fresh_$$.json > /dev/null
dune exec bin/bench_compare.exe -- BENCH_seed.json /tmp/bench_fresh_$$.json \
  --tolerance "${BENCH_TOLERANCE:-0.5}" --min bench.e11.warm_speedup=2 \
  --min bench.e12.deep_speedup=3
rm -f /tmp/bench_fresh_$$.json
