#!/bin/sh
# Minimal CI entry point: build everything, run the test suites (twice:
# once as-is, once with the pipeline invariant validators forced on via
# XNF_CHECK), lint the statement corpus, and smoke-test that the
# benchmark harness still starts. Exits non-zero on the first failure —
# including any error-severity lint diagnostic. Equivalent to
# `make check`.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build @all

echo "== test =="
dune runtest

echo "== test (pipeline validators installed) =="
XNF_CHECK=1 dune runtest --force

echo "== lint corpus =="
dune exec bin/xnf_shell.exe -- --demo --lint examples/corpus.xnf

echo "== bench smoke =="
dune exec bench/main.exe -- --list
