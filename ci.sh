#!/bin/sh
# CI entry point, structured as named stages:
#
#   build     - dune build @all
#   test      - test suites (twice: as-is and with XNF_CHECK validators
#               forced on) + the sys.*/slow-query observability gate
#   lint      - statement-corpus lint + advisor pass + PLAN300 gate
#   fuzz      - differential fuzzing, corpus replay, mutation smoke
#   crash     - crash-point oracle, durability defect smoke, kill -9 gate
#   converge  - plan-convergence corpus (equivalent formulations must
#               load identical instances and cost-pick identical
#               strategies) + the stats-drop mis-pick self-check
#   bench     - bench smoke + baseline gate vs BENCH_seed.json
#
# `./ci.sh` runs every stage in order; `./ci.sh fuzz bench` runs a
# subset (same as `make ci-fuzz ci-bench`). Exits non-zero on the first
# failure; per-stage wall-clock timings print at the end. Equivalent to
# `make check`.
set -eu

cd "$(dirname "$0")"

stage_build() {
  echo "== build =="
  dune build @all
}

stage_test() {
  echo "== test =="
  dune runtest

  echo "== test (pipeline validators installed) =="
  XNF_CHECK=1 dune runtest --force

  echo "== observability gate (sys.* + slow-query log) =="
  # scripted workload: a deliberately slow non-equi self-join must land in
  # sys.slow_queries and join back to its sys.statements aggregate through
  # plain SQL over the sys.* views; re-running the same workload with an
  # enormous threshold must leave the slow log empty, proving the gate
  # observes the threshold rather than an always-on log
  gen_obs_script() {
    echo "CREATE TABLE nums (n INT)"
    seq 1 1500 | awk 'BEGIN{printf "INSERT INTO nums VALUES "} {printf "%s(%d)", (NR>1?", ":""), $1} END{print ""}'
    echo "\\slowlog $1"
    echo "SELECT count(*) FROM nums a, nums b WHERE a.n < b.n"
    echo "SELECT count(*) FROM nums WHERE n = 42"
    echo "\\slowlog off"
    echo "SELECT count(*) AS slow_count FROM sys.slow_queries"
    echo "SELECT count(*) AS joined FROM sys.statements s, sys.slow_queries q WHERE s.fingerprint = q.fingerprint"
  }
  OBS_SCRIPT=/tmp/obs_gate_$$.sql
  OBS_OUT=/tmp/obs_gate_$$.out
  gen_obs_script 40 > "$OBS_SCRIPT"
  dune exec bin/xnf_shell.exe -- -f "$OBS_SCRIPT" > "$OBS_OUT"
  slow_count=$(grep -A2 '^slow_count$' "$OBS_OUT" | tail -1)
  joined=$(grep -A2 '^joined$' "$OBS_OUT" | tail -1)
  if [ "$slow_count" != "1" ]; then
    echo "obs gate: expected 1 slow query, got '$slow_count'"; cat "$OBS_OUT"; exit 1
  fi
  if [ "$joined" != "1" ]; then
    echo "obs gate: slow query did not join back to sys.statements (got '$joined')"; cat "$OBS_OUT"; exit 1
  fi
  gen_obs_script 100000 > "$OBS_SCRIPT"
  dune exec bin/xnf_shell.exe -- -f "$OBS_SCRIPT" > "$OBS_OUT"
  slow_count=$(grep -A2 '^slow_count$' "$OBS_OUT" | tail -1)
  if [ "$slow_count" != "0" ]; then
    echo "obs gate (inverted threshold): expected empty slow log, got '$slow_count'"; cat "$OBS_OUT"; exit 1
  fi
  rm -f "$OBS_SCRIPT" "$OBS_OUT"
}

stage_lint() {
  echo "== lint corpus =="
  dune exec bin/xnf_shell.exe -- --demo --lint examples/corpus.xnf

  echo "== advise corpus =="
  # every corpus query also flows through the static plan advisor; any
  # error-severity advisory (or a statement the advisor cannot compile)
  # exits non-zero. PLAN3xx warnings and infos are expected and pass.
  dune exec bin/xnf_shell.exe -- --demo --advise examples/corpus.xnf > /dev/null

  echo "== advisory gate (PLAN300 missing index) =="
  # a 2000-row child probed from a 60-row frontier with no index on the
  # join column must draw a PLAN300 missing-index advisory; rerunning the
  # identical workload with the suggested index created must clear it,
  # proving the advisory tracks the catalog rather than always firing
  gen_advise_script() {
    echo "CREATE TABLE adv_dept (dno INTEGER PRIMARY KEY, dname VARCHAR)"
    seq 1 60 | awk 'BEGIN{printf "INSERT INTO adv_dept VALUES "} {printf "%s(%d, '\''d%d'\'')", (NR>1?", ":""), $1, $1} END{print ""}'
    echo "CREATE TABLE adv_emp (eno INTEGER PRIMARY KEY, edno INTEGER)"
    seq 1 2000 | awk 'BEGIN{printf "INSERT INTO adv_emp VALUES "} {printf "%s(%d, %d)", (NR>1?", ":""), $1, ($1 % 60) + 1} END{print ""}'
    echo "ANALYZE"
    if [ "$1" = "indexed" ]; then echo "CREATE INDEX idx_adv_emp_edno ON adv_emp (edno)"; fi
    echo "OUT OF d AS ADV_DEPT, e AS ADV_EMP, works AS (RELATE d, e WHERE d.dno = e.edno) TAKE *"
  }
  ADV_SCRIPT=/tmp/advise_gate_$$.xnf
  ADV_OUT=/tmp/advise_gate_$$.out
  gen_advise_script plain > "$ADV_SCRIPT"
  dune exec bin/xnf_shell.exe -- --advise "$ADV_SCRIPT" > "$ADV_OUT"
  if ! grep -q 'PLAN300' "$ADV_OUT"; then
    echo "advisory gate: expected a PLAN300 missing-index advisory"; cat "$ADV_OUT"; exit 1
  fi
  gen_advise_script indexed > "$ADV_SCRIPT"
  dune exec bin/xnf_shell.exe -- --advise "$ADV_SCRIPT" > "$ADV_OUT"
  if grep -q 'PLAN300' "$ADV_OUT"; then
    echo "advisory gate: PLAN300 must clear once the suggested index exists"; cat "$ADV_OUT"; exit 1
  fi
  rm -f "$ADV_SCRIPT" "$ADV_OUT"
}

stage_fuzz() {
  echo "== fuzz (differential, seed 42) =="
  # short budget by default; raise with FUZZ_ITERS for nightly-style runs.
  # --advise folds the plan-advisor purity oracle into every case: the
  # advisor must never raise, must report identically on a cold compile
  # vs. a plan-cache hit, and must not perturb caches or query results.
  # The adaptive differential inside each case re-runs the fetch with a
  # hair-trigger switching threshold and cross-checks the instance.
  dune exec bin/xnf_fuzz.exe -- --seed 42 --iters "${FUZZ_ITERS:-500}" --advise --quiet

  echo "== fuzz corpus replay =="
  dune exec bin/xnf_fuzz.exe -- --replay-dir examples/fuzz-corpus

  echo "== fuzz mutation smoke =="
  # inject a defect into every delivered instance; xnf_fuzz exits non-zero
  # unless the harness catches every injected defect
  dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-conn --no-shrink --quiet
  dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate drop-tuple --no-shrink --quiet
  # dict-swap corrupts one encoded cell to a different valid dictionary id;
  # the decoded comparators must catch every injection, proving the
  # encoded hot path and the decoded oracles are compared cell-exactly
  dune exec bin/xnf_fuzz.exe -- --seed 42 --iters 25 --mutate dict-swap --no-shrink --quiet
}

stage_crash() {
  echo "== crash-point oracle (seeded) =="
  # run a seeded DDL/DML/fetch workload against a durable directory, crash
  # it by truncating the WAL at every record boundary (plus torn mid-frame
  # cuts), recover each truncation, and diff the recovered state against
  # the committed prefix it must equal; any divergence exits non-zero.
  # Raise CRASH_ITERS for nightly-style budgets.
  dune exec bin/xnf_fuzz.exe -- --crash --seed 42 --iters "${CRASH_ITERS:-120}" --quiet

  echo "== durability defect smoke =="
  # inject each durability defect — skipped fsync, corrupted CRC, dropped
  # checkpoint — and require the crash oracle to catch all three; a
  # recovery path that silently tolerates any of them fails the build
  dune exec bin/xnf_fuzz.exe -- --crash-defect all --seed 5 --iters 60 --quiet

  echo "== durability gate (kill -9 + restart with --data) =="
  # a live shell writes through --data, checkpoints mid-way, keeps
  # writing, and is killed with SIGKILL once its final SELECT has printed;
  # a restarted shell on the same directory must recover the identical
  # rows, and an explicit \recover must leave them unchanged
  DUR_DIR=/tmp/dur_gate_$$
  DUR_FIFO=/tmp/dur_fifo_$$
  DUR_LIVE=/tmp/dur_live_$$.out
  DUR_REST=/tmp/dur_rest_$$.out
  DUR_SCRIPT=/tmp/dur_script_$$.sql
  rm -rf "$DUR_DIR" "$DUR_FIFO"
  mkfifo "$DUR_FIFO"
  ./_build/default/bin/xnf_shell.exe --data "$DUR_DIR" < "$DUR_FIFO" > "$DUR_LIVE" 2>&1 &
  DUR_PID=$!
  {
    echo "CREATE TABLE kv (k INTEGER PRIMARY KEY, v VARCHAR)"
    echo "INSERT INTO kv VALUES (1, 'a'), (2, 'b')"
    echo "\\checkpoint"
    echo "INSERT INTO kv VALUES (3, 'c')"
    echo "UPDATE kv SET v = 'z' WHERE k = 1"
    echo "SELECT k, v FROM kv ORDER BY k"
    sleep 30 # hold stdin open so the shell only dies by SIGKILL
  } > "$DUR_FIFO" &
  DUR_FEEDER=$!
  i=0
  until grep -q '(3 rows)' "$DUR_LIVE" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "durability gate: shell never reached the SELECT"; cat "$DUR_LIVE"; exit 1
    fi
    sleep 0.1
  done
  kill -9 "$DUR_PID"
  kill "$DUR_FEEDER" 2>/dev/null || true
  wait "$DUR_PID" 2>/dev/null || true
  wait "$DUR_FEEDER" 2>/dev/null || true
  { echo "\\recover"; echo "SELECT k, v FROM kv ORDER BY k"; } > "$DUR_SCRIPT"
  ./_build/default/bin/xnf_shell.exe --data "$DUR_DIR" -f "$DUR_SCRIPT" > "$DUR_REST" 2>&1
  live_rows=$(grep -E '^[0-9]+ \| ' "$DUR_LIVE")
  rest_rows=$(grep -E '^[0-9]+ \| ' "$DUR_REST")
  if [ -z "$rest_rows" ] || [ "$live_rows" != "$rest_rows" ]; then
    echo "durability gate: restarted state differs from the killed session"
    echo "--- killed session:"; cat "$DUR_LIVE"
    echo "--- restart:"; cat "$DUR_REST"
    exit 1
  fi
  rm -rf "$DUR_DIR" "$DUR_FIFO" "$DUR_LIVE" "$DUR_REST" "$DUR_SCRIPT"
}

stage_converge() {
  echo "== plan-convergence gate (examples/converge) =="
  # every group of semantically-equivalent formulations must load the
  # identical instance AND cost-pick the identical per-edge strategy set
  # (fresh ANALYZE stats, no force), pinned by each file's expect line
  dune exec bin/xnf_fuzz.exe -- --converge examples/converge

  echo "== convergence self-check (stats-drop mis-pick) =="
  # re-run the corpus with ANALYZE statements dropped: the planner falls
  # back to static rules, so the gate must fail — proving it can detect
  # a mis-pick rather than vacuously passing
  dune exec bin/xnf_fuzz.exe -- --converge-defect stats-drop > /dev/null
}

stage_bench() {
  echo "== bench smoke =="
  dune exec bench/main.exe -- --list

  echo "== bench gate (E4+E11+E12+E13+E14 vs BENCH_seed.json) =="
  # re-run the paged-storage, repeated-fetch, batch-edge, cost-pick and
  # encoded-navigation experiments and diff their bench.* metrics against
  # the committed baseline: counters exact, timing gauges within
  # BENCH_TOLERANCE (relative; generous because CI machines vary), and
  # absolute limits regardless of the baseline: the warm plan-cache
  # speedup >= 2x, batch hash probing >= 3x over the engine-planned
  # generic path on the 100k-row deep schema, CO-clustering >= 2x fewer
  # page faults than table clustering, the cost-picked access path
  # >= 1.5x over the forced-worst strategy on both skewed E13 chains,
  # the dictionary-encoded OO1 closure >= 2x over the pre-dictionary
  # boxed kernel, and warm hash probing capped at 684 allocated bytes
  # per frontier probe (5x under the pre-dictionary 3422)
  dune exec bench/main.exe -- --only E4 --only E11 --only E12 --only E13 --only E14 --json /tmp/bench_fresh_$$.json > /dev/null
  dune exec bin/bench_compare.exe -- BENCH_seed.json /tmp/bench_fresh_$$.json \
    --tolerance "${BENCH_TOLERANCE:-0.5}" --min bench.e11.warm_speedup=2 \
    --min bench.e12.deep_speedup=3 --min bench.e4.fault_ratio=2 \
    --min bench.e13.cost_pick_speedup=1.5 --min bench.e14.nav_speedup=2 \
    --max bench.e12.alloc_bytes_per_probe=684
  rm -f /tmp/bench_fresh_$$.json
}

ALL_STAGES="build test lint fuzz crash converge bench"

usage() {
  echo "usage: ./ci.sh [stage ...]   stages: $ALL_STAGES (default: all)" >&2
  exit 2
}

if [ "$#" -eq 0 ]; then
  STAGES=$ALL_STAGES
else
  STAGES="$*"
  for s in $STAGES; do
    case " $ALL_STAGES " in
      *" $s "*) ;;
      *) echo "ci.sh: unknown stage '$s'" >&2; usage ;;
    esac
  done
fi

TIMING_FILE=/tmp/ci_timing_$$
: > "$TIMING_FILE"
trap 'rm -f "$TIMING_FILE"' EXIT

for s in $STAGES; do
  start=$(date +%s)
  "stage_$s"
  end=$(date +%s)
  printf '  %-10s %4ds\n' "$s" "$((end - start))" >> "$TIMING_FILE"
done

echo
echo "== stage timing =="
cat "$TIMING_FILE"
echo "ci: all stages passed ($(echo "$STAGES" | wc -w | tr -d ' ') of 7)"
