(* Language conformance: every construct documented in LANGUAGE.md parses
   and executes against the demo company database. This suite pins the
   documented surface — if a grammar change breaks a documented form, it
   fails here first. *)

let mk () =
  let db = Relational.Db.create () in
  Workload.Company.populate db ~seed:77 ~scale:Workload.Company.small
    ~repr:Workload.Company.Cdb1;
  let api = Xnf.Api.create db in
  Workload.Company.register_views api ~repr:Workload.Company.Cdb1;
  api

let sql_statements =
  [ "SELECT * FROM dept";
    "SELECT DISTINCT loc FROM dept";
    "SELECT d.* FROM dept d";
    "SELECT dname AS n FROM dept WHERE loc = 'NY' OR budget > 100";
    "SELECT * FROM dept d, emp e WHERE d.dno = e.edno";
    "SELECT * FROM dept d INNER JOIN emp e ON d.dno = e.edno";
    "SELECT * FROM dept d LEFT JOIN emp e ON d.dno = e.edno";
    "SELECT * FROM (SELECT dno FROM dept) sub WHERE sub.dno >= 0";
    "SELECT edno, COUNT(*), SUM(sal), AVG(sal), MIN(sal), MAX(sal) FROM emp GROUP BY edno HAVING COUNT(*) >= 1";
    "SELECT COUNT(DISTINCT loc) FROM dept";
    "SELECT dno FROM dept UNION ALL SELECT eno FROM emp";
    "SELECT dno FROM dept UNION SELECT dno FROM dept ORDER BY 1 LIMIT 2";
    "SELECT * FROM emp ORDER BY sal DESC, ename LIMIT 3";
    "SELECT * FROM emp WHERE sal BETWEEN 100 AND 10000";
    "SELECT * FROM emp WHERE ename LIKE 'emp%' AND edno IS NOT NULL";
    "SELECT * FROM emp WHERE edno IN (0, 1, 2)";
    "SELECT * FROM emp WHERE edno IN (SELECT dno FROM dept WHERE budget > 0)";
    "SELECT * FROM emp WHERE edno NOT IN (SELECT dno FROM dept WHERE budget < 0)";
    "SELECT * FROM dept d WHERE EXISTS (SELECT * FROM emp e WHERE e.edno = d.dno)";
    "SELECT * FROM dept d WHERE NOT EXISTS (SELECT * FROM emp e WHERE e.edno = d.dno AND e.sal > 999999)";
    "SELECT (SELECT MAX(sal) FROM emp) FROM dept";
    "SELECT CASE WHEN budget > 1000 THEN 'big' ELSE 'small' END FROM dept";
    "SELECT ABS(0 - dno), LOWER(dname), UPPER(loc), LENGTH(dname), MOD(dno, 2), COALESCE(NULL, dno) FROM dept";
    "INSERT INTO skills (sno, sname) VALUES (900, 'conformance')";
    "UPDATE skills SET slevel = 1 WHERE sno = 900";
    "DELETE FROM skills WHERE sno = 900";
    "CREATE TABLE conf_t (id INTEGER PRIMARY KEY, v VARCHAR(10) NOT NULL, f FLOAT, b BOOLEAN)";
    "CREATE INDEX conf_i ON conf_t (v) USING ORDERED";
    "CREATE VIEW conf_v AS SELECT id FROM conf_t";
    "SELECT * FROM conf_v";
    "DROP VIEW conf_v";
    "DROP TABLE conf_t";
    "EXPLAIN SELECT * FROM dept WHERE dno = 1";
    "BEGIN";
    "INSERT INTO skills (sno, sname) VALUES (901, 'txn')";
    "ROLLBACK" ]

let xnf_statements =
  [ (* constructor forms *)
    "OUT OF x AS DEPT TAKE *";
    "OUT OF x AS (SELECT * FROM dept WHERE loc = 'NY') TAKE *";
    "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x, y WHERE x.dno = y.edno) TAKE *";
    "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x p, y c WHERE p.dno = c.edno) TAKE *";
    "OUT OF p AS PROJ, e AS EMP, m AS (RELATE p, e WITH ATTRIBUTES ep.percentage AS pct \
     USING EMPPROJ ep WHERE p.pno = ep.eppno AND e.eno = ep.epeno) TAKE *";
    (* view import, closure *)
    "OUT OF ALL-DEPS TAKE *";
    "OUT OF ALL-DEPS-ORG TAKE *";
    "OUT OF EXT-ALL-DEPS-ORG TAKE *";
    "OUT OF ORG-UNIT TAKE *";
    (* restrictions *)
    "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 5000 TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept SUCH THAT budget > 0 TAKE *";
    "OUT OF ALL-DEPS WHERE employment (d, e) SUCH THAT e.sal < d.budget * 100 TAKE *";
    "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 5000 AND Xdept SUCH THAT budget > 0 TAKE *";
    (* path expressions *)
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment) >= 0 TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT EXISTS d->employment TAKE *";
    "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept d SUCH THAT \
     EXISTS d->employment->(Xemp e WHERE e.sal > 0)->projmanagement TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment->Xemp) >= 0 TAKE *";
    (* projection *)
    "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(*), employment";
    "OUT OF ALL-DEPS TAKE Xdept(dname), Xemp(ename, sal), employment";
    "OUT OF ALL-DEPS WHERE Xdept SUCH THAT loc = 'NY' TAKE Xemp(*)";
    (* views *)
    "CREATE VIEW CONF-V AS OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal > 0 TAKE *";
    "OUT OF CONF-V TAKE *";
    "DROP VIEW CONF-V";
    (* CO DML *)
    "OUT OF x AS (SELECT * FROM skills WHERE sno < 0) DELETE *";
    "OUT OF ALL-DEPS UPDATE Xemp SET sal = sal + 0" ]

let test_sql () =
  let api = mk () in
  List.iter
    (fun s ->
      match Xnf.Api.exec api s with
      | _ -> ()
      | exception e ->
        Alcotest.failf "documented SQL failed: %s (%s)" s (Printexc.to_string e))
    sql_statements

let test_xnf () =
  let api = mk () in
  List.iter
    (fun s ->
      match Xnf.Api.exec api s with
      | _ -> ()
      | exception e ->
        Alcotest.failf "documented XNF failed: %s (%s)" s (Printexc.to_string e))
    xnf_statements

(* ---- path expressions inside COUNT/EXISTS (paper §3, Fig. 6) ----

   Reduced (ending on a relationship) and qualified (node checkpoint with
   a predicate) path forms, cross-checked three ways with the fuzz oracle
   comparators: equivalent formulations must produce identical instances,
   both reachability fixpoints must agree, and the delivered instance
   must satisfy the structural invariants. *)

let test_path_expr_oracle () =
  let api = mk () in
  let equivalent_pairs =
    [ (* COUNT >= 1 is EXISTS *)
      ( "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment) >= 1 TAKE *",
        "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT EXISTS d->employment TAKE *" );
      (* a reduced path is its node-checkpointed form *)
      ( "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment) >= 2 TAKE *",
        "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment->Xemp) >= 2 TAKE *" );
      (* a qualified step with a tautological predicate reduces away *)
      ( "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT \
         EXISTS d->employment->(Xemp e WHERE e.eno = e.eno) TAKE *",
        "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT EXISTS d->employment TAKE *" );
      (* qualified COUNT keeps only children passing the predicate *)
      ( "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT \
         COUNT(d->employment->(Xemp e WHERE e.sal >= 0)) >= 1 TAKE *",
        "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT \
         EXISTS d->employment->(Xemp e WHERE e.sal >= 0) TAKE *" ) ]
  in
  List.iter
    (fun (qa, qb) ->
      let a = Xnf.Api.fetch_string api qa in
      let b = Xnf.Api.fetch_string api qb in
      (match Fuzz.Oracle.compare_caches a b with
      | Some d -> Alcotest.failf "equivalent path queries diverge:\n  %s\n  %s\n  %s" qa qb d
      | None -> ());
      (match Fuzz.Oracle.check_conn_liveness a with
      | Some d -> Alcotest.failf "conn liveness violated by %s: %s" qa d
      | None -> ());
      match Fuzz.Oracle.check_reachability a with
      | Some d -> Alcotest.failf "reachability violated by %s: %s" qa d
      | None -> ())
    equivalent_pairs;
  (* both fixpoint strategies agree on a qualified two-step path *)
  let q =
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT \
     EXISTS d->employment->(Xemp e WHERE e.sal > 0) TAKE *"
  in
  let semi = Xnf.Api.fetch_string ~fixpoint:Xnf.Translate.Semi_naive api q in
  let naive = Xnf.Api.fetch_string ~fixpoint:Xnf.Translate.Naive api q in
  match Fuzz.Oracle.compare_caches semi naive with
  | Some d -> Alcotest.failf "fixpoints diverge on %s: %s" q d
  | None -> ()

(* the COUNT threshold matches independent adjacency counting on the
   unrestricted instance *)
let test_count_path_threshold () =
  let api = mk () in
  let base = Xnf.Api.fetch_string api "OUT OF ALL-DEPS TAKE *" in
  let ei = Xnf.Cache.edge base "employment" in
  let expected =
    Xnf.Cache.live_tuples (Xnf.Cache.node base "xdept")
    |> List.filter (fun t -> List.length (Xnf.Cache.children base ei t.Xnf.Cache.t_pos) >= 2)
    |> List.map (fun t -> (Xnf.Cache.row t))
    |> List.sort Relational.Row.compare
  in
  let restricted =
    Xnf.Api.fetch_string api
      "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment) >= 2 TAKE *"
  in
  let got = Fuzz.Oracle.node_extent restricted "xdept" in
  Alcotest.(check int) "dept count" (List.length expected) (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "dept row" true (Relational.Row.equal a b))
    expected got

let suite =
  [ Alcotest.test_case "documented SQL surface" `Quick test_sql;
    Alcotest.test_case "documented XNF surface" `Quick test_xnf;
    Alcotest.test_case "path expressions in COUNT/EXISTS vs oracle" `Quick test_path_expr_oracle;
    Alcotest.test_case "COUNT(path) threshold vs adjacency" `Quick test_count_path_threshold ]
