(* The static plan advisor: PLAN300-305 condition-by-condition against
   hand-built schemas, the PLAN310 estimate-vs-actual drift fixture end
   to end (ANALYZE -> skewed bulk load -> drift -> re-ANALYZE clears),
   purity of EXPLAIN ADVISE (no plan-cache or result-cache perturbation),
   and the sys.advisories view including the fingerprint join with
   sys.statements. *)

open Relational

let rows db sql =
  match Db.exec db sql with
  | Db.Rows r -> r.Db.rrows
  | _ -> Alcotest.fail ("expected rows from: " ^ sql)

let one_int db sql =
  match rows db sql with
  | [ [| Value.Int n |] ] -> n
  | _ -> Alcotest.fail ("expected a single int from: " ^ sql)

let execs db stmts = List.iter (fun s -> ignore (Db.exec db s)) stmts

let values_row f lo hi =
  String.concat ", " (List.init (hi - lo + 1) (fun i -> f (lo + i)))

(* dept 1..60 and emp 1..nemp wired emp.edno = eno (one employee per
   department for the first 50); PK indexes only, nothing on edno. *)
let mk ?(nemp = 50) () =
  let db = Db.create () in
  execs db
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES "
      ^ values_row (fun i -> Printf.sprintf "(%d, 'd%d', %d)" i i (100 * i)) 1 60;
      "INSERT INTO emp VALUES "
      ^ values_row (fun i -> Printf.sprintf "(%d, 'e%d', %d, %d)" i i (10 * i) ((i mod 60) + 1)) 1
          nemp ];
  let api = Xnf.Api.create db in
  (db, api)

let q_works = "OUT OF d AS DEPT, e AS EMP, works AS (RELATE d, e WHERE d.dno = e.edno) TAKE *"

let plan_of api text =
  Xnf.Fetch_plan.compile (Xnf.Api.db api) (Xnf.Api.registry api) (Xnf.Xnf_parser.parse_query text)

let analyze api text = Check.Plan_advisor.analyze (Xnf.Api.db api) (plan_of api text)
let codes rp = List.map (fun d -> d.Diag.code) (Check.Plan_advisor.diags rp)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let find_code rp code =
  match List.find_opt (fun d -> d.Diag.code = code) (Check.Plan_advisor.diags rp) with
  | Some d -> d
  | None -> Alcotest.fail ("expected a " ^ code ^ " advisory")

(* ---- PLAN300: missing index on a hot probe ---- *)

let test_plan300 () =
  let db, api = mk ~nemp:2000 () in
  let rp = analyze api q_works in
  let d = find_code rp "PLAN300" in
  Alcotest.(check bool) "hints the index DDL" true
    (contains ~affix:"CREATE INDEX idx_emp_edno ON emp (edno)" (Option.value ~default:"" d.Diag.hint));
  (* the advisory names the probed table and carries warning severity *)
  Alcotest.(check bool) "mentions emp" true (contains ~affix:"emp" d.Diag.message);
  Alcotest.(check bool) "warning severity" true (d.Diag.severity = Diag.Warning);
  (* creating the suggested index flips the edge to indexed and clears
     the advisory on a fresh compile *)
  execs db [ "CREATE INDEX idx_emp_edno ON emp (edno)" ];
  let rp' = analyze api q_works in
  Alcotest.(check bool) "PLAN300 cleared by CREATE INDEX" false (List.mem "PLAN300" (codes rp'));
  match rp'.Check.Plan_advisor.rp_edges with
  | [ ec ] ->
    Alcotest.(check bool) "edge now indexed" true
      (ec.Check.Plan_advisor.ec_strategy = Xnf.Translate.S_indexed)
  | _ -> Alcotest.fail "expected one edge"

(* tiny extents stay quiet: est cost below the probe threshold *)
let test_plan300_quiet_when_small () =
  let _, api = mk ~nemp:20 () in
  Alcotest.(check bool) "no PLAN300 on tiny tables" false
    (List.mem "PLAN300" (codes (analyze api q_works)))

(* ---- PLAN301: ?force contradicting the estimate ---- *)

let test_plan301 () =
  let db, api = mk ~nemp:2000 () in
  execs db [ "CREATE INDEX idx_emp_edno ON emp (edno)" ];
  let q = Xnf.Xnf_parser.parse_query q_works in
  let def, restrs, take = Xnf.View_registry.compose (Xnf.Api.registry api) q in
  let forced = Xnf.Translate.compile_def ~take ~force:Xnf.Translate.S_generic db def in
  let rp = Check.Plan_advisor.analyze_compiled ~take ~restrs db forced in
  let d = find_code rp "PLAN301" in
  Alcotest.(check bool) "names the forced strategy" true (contains ~affix:"generic" d.Diag.message);
  (* the same compile without ?force raises no PLAN301 *)
  let free = Xnf.Translate.compile_def ~take db def in
  Alcotest.(check bool) "no PLAN301 without ?force" false
    (List.mem "PLAN301" (codes (Check.Plan_advisor.analyze_compiled ~take ~restrs db free)))

(* ---- PLAN302: unbounded recursive fixpoint ---- *)

let q_rec root =
  Printf.sprintf
    "OUT OF root AS (%s), x AS EMP, seed AS (RELATE root a, x b WHERE a.eno = b.eno), \
     mgr AS (RELATE x m, x r WHERE m.eno = r.edno) TAKE *"
    root

let test_plan302 () =
  let _, api = mk () in
  let unbounded = analyze api (q_rec "SELECT * FROM emp") in
  Alcotest.(check bool) "unrestricted cycle flagged" true (List.mem "PLAN302" (codes unbounded));
  let bounded = analyze api (q_rec "SELECT * FROM emp WHERE eno = 1") in
  Alcotest.(check bool) "restricted seed derivation bounds it" false
    (List.mem "PLAN302" (codes bounded))

(* ---- PLAN303: components fetched but never delivered ---- *)

let test_plan303 () =
  let _, api = mk () in
  (* e dropped by TAKE, nothing reached through it, nothing references it *)
  let dead =
    analyze api "OUT OF d AS DEPT, e AS EMP, works AS (RELATE d, e WHERE d.dno = e.edno) TAKE d(*)"
  in
  let d = find_code dead "PLAN303" in
  Alcotest.(check bool) "names e" true (contains ~affix:"e" d.Diag.message);
  (* d feeds the kept component: fetched-but-dropped is fine *)
  let feeds =
    analyze api "OUT OF d AS DEPT, e AS EMP, works AS (RELATE d, e WHERE d.dno = e.edno) TAKE e(*)"
  in
  Alcotest.(check bool) "ancestor of a kept node spared" false (List.mem "PLAN303" (codes feeds));
  (* a path restriction through the edge references e: also spared *)
  let referenced =
    analyze api
      "OUT OF d AS DEPT, e AS EMP, works AS (RELATE d, e WHERE d.dno = e.edno) \
       WHERE d dd SUCH THAT EXISTS dd->works TAKE d(*)"
  in
  Alcotest.(check bool) "restriction-referenced node spared" false
    (List.mem "PLAN303" (codes referenced));
  (* TAKE * delivers everything *)
  Alcotest.(check bool) "no PLAN303 under TAKE *" false (List.mem "PLAN303" (codes (analyze api q_works)))

(* ---- PLAN304: missing / stale statistics ---- *)

let test_plan304 () =
  let db, api = mk () in
  let missing = find_code (analyze api q_works) "PLAN304" in
  Alcotest.(check bool) "missing stats reported" true
    (contains ~affix:"no statistics" missing.Diag.message);
  Alcotest.(check bool) "hints ANALYZE" true
    (contains ~affix:"ANALYZE" (Option.value ~default:"" missing.Diag.hint));
  execs db [ "ANALYZE" ];
  Alcotest.(check bool) "fresh stats: no PLAN304" false
    (List.mem "PLAN304" (codes (analyze api q_works)));
  execs db [ "INSERT INTO emp VALUES (9001, 'x', 1, 1)" ];
  let stale = find_code (analyze api q_works) "PLAN304" in
  Alcotest.(check bool) "stale stats reported" true (contains ~affix:"stale" stale.Diag.message)

(* ---- PLAN305: build-side inversion ---- *)

let test_plan305 () =
  let _, api = mk ~nemp:2000 () in
  let rp =
    analyze api
      "OUT OF d AS (SELECT * FROM dept WHERE dno = 1), e AS EMP, \
       works AS (RELATE d, e WHERE d.dno = e.edno) TAKE *"
  in
  let d = find_code rp "PLAN305" in
  Alcotest.(check bool) "describes the inversion" true (contains ~affix:"inversion" d.Diag.message);
  (* the factor is configurable: a 33x build/frontier ratio stays quiet
     under a 100x threshold *)
  let relaxed =
    Check.Plan_advisor.analyze ~inversion_factor:100. (Xnf.Api.db api) (plan_of api q_works)
  in
  Alcotest.(check bool) "quiet under a relaxed inversion factor" false
    (List.mem "PLAN305" (codes relaxed))

(* ---- PLAN310: estimate-vs-actual drift, end to end ---- *)

let test_plan310_drift () =
  let db, api = mk () in
  Check.Plan_advisor.install api;
  execs db [ "ANALYZE" ];
  (* statistics agree with the data: a fetch logs no drift *)
  ignore (Xnf.Api.fetch_string api q_works);
  Alcotest.(check int) "no drift while stats are fresh" 0 (List.length (Xnf.Api.advisories api));
  (* skewed bulk load after ANALYZE: 2000 employees into one department *)
  execs db
    [ "INSERT INTO emp VALUES "
      ^ values_row (fun i -> Printf.sprintf "(%d, 'bulk%d', 1, 55)" i i) 1000 2999 ];
  ignore (Xnf.Api.fetch_string api q_works);
  let advs = Xnf.Api.advisories api in
  Alcotest.(check bool) "PLAN310 logged" true
    (List.exists (fun (a : Xnf.Api.advisory) -> a.Xnf.Api.adv_code = "PLAN310") advs);
  let a =
    List.find (fun (a : Xnf.Api.advisory) -> a.Xnf.Api.adv_code = "PLAN310") (List.rev advs)
  in
  Alcotest.(check string) "drift source" "drift" a.Xnf.Api.adv_source;
  Alcotest.(check bool) "hints ANALYZE" true (contains ~affix:"ANALYZE" a.Xnf.Api.adv_hint);
  (* re-ANALYZE brings the estimates back in line: no further drift *)
  execs db [ "ANALYZE" ];
  Xnf.Api.clear_advisories api;
  ignore (Xnf.Api.fetch_string api q_works);
  Alcotest.(check int) "re-ANALYZE clears the drift" 0 (List.length (Xnf.Api.advisories api))

(* drift compares against the ANALYZE snapshot even when the advisor
   runs standalone (no session hook) *)
let test_drift_direct () =
  let db, api = mk () in
  execs db [ "ANALYZE" ];
  execs db
    [ "INSERT INTO emp VALUES "
      ^ values_row (fun i -> Printf.sprintf "(%d, 'bulk%d', 1, 55)" i i) 1000 2999 ];
  let plan = plan_of api q_works in
  let cache = Xnf.Fetch_plan.execute db plan in
  let advs = Check.Plan_advisor.drift db plan cache in
  Alcotest.(check bool) "standalone drift detects the skew" true
    (List.exists (fun a -> a.Check.Plan_advisor.ad_diag.Diag.code = "PLAN310") advs)

(* ---- purity: advising perturbs no cache and no fetch ---- *)

let test_advise_purity () =
  let _, api = mk () in
  Xnf.Api.set_plan_cache api 4;
  Xnf.Api.set_result_cache api 4;
  ignore (Xnf.Api.fetch_string api q_works);
  let plans_before = List.map fst (Xnf.Api.plans api) in
  (match Check.Plan_advisor.advise_text api q_works with
  | Ok _ -> ()
  | Error ds -> Alcotest.fail (Diag.to_string (List.hd ds)));
  Alcotest.(check (list string)) "plan cache untouched by advise" plans_before
    (List.map fst (Xnf.Api.plans api));
  let h0 = Obs.Metrics.counter_get "xnf.fetchcache.hits" in
  ignore (Xnf.Api.fetch_string api q_works);
  let h1 = Obs.Metrics.counter_get "xnf.fetchcache.hits" in
  Alcotest.(check bool) "refetch still hits the result cache" true (h1 - h0 >= 1);
  (* advising logged its findings under source "advise" *)
  Alcotest.(check bool) "advise findings logged" true
    (List.exists
       (fun (a : Xnf.Api.advisory) -> a.Xnf.Api.adv_source = "advise")
       (Xnf.Api.advisories api))

let test_advise_text_errors () =
  let _, api = mk () in
  (match Check.Plan_advisor.advise_text api "OUT OF x AS NOSUCH TAKE *" with
  | Ok _ -> Alcotest.fail "expected an error for an unknown table"
  | Error ds -> Alcotest.(check bool) "error diagnostics" true (Diag.has_errors ds));
  match Check.Plan_advisor.advise_text api "SELECT 1" with
  | Ok _ -> Alcotest.fail "expected an error for a non-query statement"
  | Error ds ->
    Alcotest.(check bool) "PLAN399 for non-queries" true
      (List.exists (fun d -> d.Diag.code = "PLAN399") ds)

(* ---- rendering ---- *)

let test_render () =
  let _, api = mk ~nemp:2000 () in
  let s = Check.Plan_advisor.render (analyze api q_works) in
  List.iter
    (fun needle -> Alcotest.(check bool) ("render mentions " ^ needle) true (contains ~affix:needle s))
    [ "Cost estimates:"; "node d"; "edge works"; "est_cost="; "Advisories:"; "PLAN300" ]

(* ---- sys.advisories: scan, shape, fingerprint join ---- *)

let test_sys_advisories () =
  let db, api = mk ~nemp:2000 () in
  (match Check.Plan_advisor.advise_text api q_works with
  | Ok _ -> ()
  | Error ds -> Alcotest.fail (Diag.to_string (List.hd ds)));
  let n = one_int db "SELECT COUNT(*) FROM sys.advisories" in
  Alcotest.(check bool) "advisories scannable" true (n >= 1);
  let n300 =
    one_int db "SELECT COUNT(*) FROM sys.advisories WHERE code = 'PLAN300'"
  in
  Alcotest.(check bool) "PLAN300 row present" true (n300 >= 1);
  (* executing the canonical query text makes the fingerprints joinable
     with sys.statements *)
  let canon =
    match Xnf.Api.advisories api with
    | a :: _ -> a.Xnf.Api.adv_query
    | [] -> Alcotest.fail "no advisory logged"
  in
  ignore (Xnf.Api.exec api canon);
  let joined =
    one_int db
      "SELECT COUNT(*) FROM sys.advisories a, sys.statements s WHERE a.fingerprint = s.fingerprint"
  in
  Alcotest.(check bool) "fingerprint joins with sys.statements" true (joined >= 1);
  Xnf.Api.clear_advisories api;
  Alcotest.(check int) "clear empties the view" 0 (one_int db "SELECT COUNT(*) FROM sys.advisories")

let suite =
  [ Alcotest.test_case "plan300 missing index" `Quick test_plan300;
    Alcotest.test_case "plan300 quiet on small extents" `Quick test_plan300_quiet_when_small;
    Alcotest.test_case "plan301 force contradiction" `Quick test_plan301;
    Alcotest.test_case "plan302 unbounded recursion" `Quick test_plan302;
    Alcotest.test_case "plan303 dead components" `Quick test_plan303;
    Alcotest.test_case "plan304 stats health" `Quick test_plan304;
    Alcotest.test_case "plan305 build inversion" `Quick test_plan305;
    Alcotest.test_case "plan310 drift end to end" `Quick test_plan310_drift;
    Alcotest.test_case "drift standalone" `Quick test_drift_direct;
    Alcotest.test_case "advise purity" `Quick test_advise_purity;
    Alcotest.test_case "advise_text errors" `Quick test_advise_text_errors;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "sys.advisories" `Quick test_sys_advisories ]
