(* Scratch-directory fixture shared by the durability tests. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(** [with_dir f] runs [f dir] in a fresh scratch directory and removes it
    afterwards, also on exception. *)
let with_dir f =
  let dir = Filename.temp_file "xnf-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(** [clone_data src dst] copies a data directory's checkpoint/WAL pair —
    a byte-level snapshot, i.e. what a crashed process would leave
    behind. [dst] is created if needed. *)
let clone_data src dst =
  if not (Sys.file_exists dst) then Sys.mkdir dst 0o700;
  List.iter
    (fun name ->
      let p = Filename.concat src name in
      if Sys.file_exists p then write_file (Filename.concat dst name) (read_file p))
    [ "checkpoint.db"; "wal.log" ]
