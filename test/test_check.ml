(* lib/check: CO/XNF semantic linter and pipeline invariant validators.

   Table-driven bad-query fixtures assert the exact diagnostic code; the
   workload view corpus must lint clean; each of the three pipeline hook
   points is driven with a hand-built malformed structure and must report
   the expected QGM1xx/PLAN2xx diagnostic. *)

open Relational

let mk () =
  let db = Db.create () in
  Workload.Company.populate db ~seed:1 ~scale:Workload.Company.small ~repr:Workload.Company.Cdb1;
  let api = Xnf.Api.create db in
  Workload.Company.register_views api ~repr:Workload.Company.Cdb1;
  (db, api)

let codes ds = List.map (fun d -> d.Diag.code) ds

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let lint api src =
  Check.Lint.lint_string (Xnf.Api.db api) (Xnf.Api.registry api) src

(* ---- bad-query fixtures: one expected code each ---- *)

let bad_fixtures =
  [ ("syntax error", "OUT OF x AS DEPT TAK *", "XNF000");
    ("duplicate component", "OUT OF x AS DEPT, x AS EMP TAKE *", "XNF001");
    ("dangling RELATE endpoint", "OUT OF x AS DEPT, e AS (RELATE x, y WHERE x.dno = x.dno) TAKE *",
     "XNF002");
    ("RELATE before partner declared",
     "OUT OF e AS (RELATE x, y WHERE 1 = 1), x AS DEPT, y AS EMP TAKE *", "XNF002");
    ("unknown view import", "OUT OF NO-SUCH-VIEW TAKE *", "XNF003");
    ("cyclic partners without roles", "OUT OF x AS EMP, e AS (RELATE x, x WHERE x.eno = x.edno) TAKE *",
     "XNF004");
    ("USING not a base table",
     "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x, y USING NOSUCH n WHERE x.dno = y.edno) TAKE *",
     "XNF005");
    ("RELATE predicate alias out of scope",
     "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x, y WHERE z.dno = y.edno) TAKE *", "XNF006");
    ("RELATE predicate unknown column",
     "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x, y WHERE x.nosuch = y.edno) TAKE *", "XNF007");
    ("type-incompatible RELATE equality",
     "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x, y WHERE x.dname = y.eno) TAKE *", "XNF008");
    ("invalid derivation", "OUT OF x AS (SELECT nosuch FROM dept) TAKE *", "XNF009");
    ("no root component",
     "OUT OF a AS EMP, b AS DEPT, e1 AS (RELATE a, b WHERE a.edno = b.dno), \
      e2 AS (RELATE b, a WHERE b.dno = a.edno) TAKE *", "XNF010");
    ("orphan unreachable from roots",
     "OUT OF a AS DEPT, b AS EMP, c AS PROJ, e1 AS (RELATE b, c WHERE b.eno = c.pno), \
      e2 AS (RELATE c, b WHERE c.pno = b.eno) TAKE *", "XNF011");
    ("unguarded recursion",
     "OUT OF r0 AS (SELECT * FROM emp WHERE sal < 0), x AS EMP, \
      top AS (RELATE r0 a, x b WHERE a.eno = b.eno), \
      mgmt AS (RELATE x m, x r WHERE m.eno = 0) TAKE *", "XNF012");
    ("restriction on unknown component", "OUT OF ALL-DEPS WHERE Nosuch SUCH THAT sal > 0 TAKE *",
     "XNF013");
    ("unknown path step", "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT EXISTS d->nosuch TAKE *",
     "XNF013");
    ("restriction variable out of scope",
     "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT z.sal > 0 TAKE *", "XNF014");
    ("path start unbound", "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT EXISTS q->employment TAKE *",
     "XNF014");
    ("path step does not follow schema edge",
     "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT EXISTS e->ownership TAKE *", "XNF015");
    ("restriction unknown column", "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.nosuch > 0 TAKE *",
     "XNF007");
    ("TAKE unknown component", "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(*), nosuch", "XNF016");
    ("duplicate TAKE item", "OUT OF ALL-DEPS TAKE Xdept(*), Xdept(*), Xemp(*), employment",
     "XNF017");
    ("column projection on relationship",
     "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(*), employment(dno)", "XNF018");
    ("TAKE keeps edge, drops partner", "OUT OF ALL-DEPS TAKE Xdept(*), employment", "XNF019");
    ("TAKE unknown column", "OUT OF ALL-DEPS TAKE Xdept(nosuch), Xemp(*), employment", "XNF007");
    ("duplicate view name", "CREATE VIEW ALL-DEPS AS OUT OF x AS DEPT TAKE *", "XNF021");
    ("UPDATE on unknown component", "OUT OF ALL-DEPS UPDATE Nosuch SET sal = 1", "XNF013");
    ("UPDATE sets unknown column", "OUT OF ALL-DEPS UPDATE Xemp SET nosuch = 1", "XNF007");
    ("DROP of unknown view", "DROP VIEW NOSUCH", "XNF003");
    ("SQL binding failure", "SELECT nosuch FROM dept", "XNF009") ]

let test_bad_fixtures () =
  let _, api = mk () in
  List.iter
    (fun (name, src, code) ->
      let ds = lint api src in
      if not (List.mem code (codes ds)) then
        Alcotest.failf "%s: expected %s in diagnostics of %S, got [%s]" name code src
          (String.concat "; " (codes ds)))
    bad_fixtures

let test_severities () =
  let _, api = mk () in
  (* XNF012 / XNF017 are warnings, not errors *)
  let ds =
    lint api
      "OUT OF r0 AS (SELECT * FROM emp WHERE sal < 0), x AS EMP, \
       top AS (RELATE r0 a, x b WHERE a.eno = b.eno), \
       mgmt AS (RELATE x m, x r WHERE m.eno = 0) TAKE *"
  in
  Alcotest.(check int) "unguarded recursion: no errors" 0 (Diag.count_errors ds);
  Alcotest.(check bool) "unguarded recursion: warning" true (Diag.count_warnings ds >= 1);
  let ds = lint api "OUT OF ALL-DEPS TAKE Xdept(*), Xdept(*), Xemp(*), employment" in
  Alcotest.(check int) "duplicate TAKE: no errors" 0 (Diag.count_errors ds)

(* the acceptance scenario: an orphan-component query reports the
   reachability violation with a source span *)
let test_orphan_span () =
  let _, api = mk () in
  let src =
    "OUT OF a AS DEPT, b AS EMP, c AS PROJ, e1 AS (RELATE b, c WHERE b.eno = c.pno), \
     e2 AS (RELATE c, b WHERE c.pno = b.eno) TAKE *"
  in
  let ds = lint api src in
  match List.find_opt (fun d -> d.Diag.code = "XNF011") ds with
  | None -> Alcotest.fail "expected XNF011"
  | Some d ->
    Alcotest.(check bool) "has span" true (d.Diag.span <> None);
    Alcotest.(check bool) "span rendered" true (contains ~affix:"line 1" (Diag.to_string d))

(* ---- corpus cleanliness ---- *)

let clean_queries =
  [ "OUT OF x AS DEPT TAKE *";
    "OUT OF x AS (SELECT * FROM dept WHERE loc = 'NY') TAKE *";
    "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x, y WHERE x.dno = y.edno) TAKE *";
    "OUT OF x AS DEPT, y AS EMP, e AS (RELATE x p, y c WHERE p.dno = c.edno) TAKE *";
    "OUT OF p AS PROJ, e AS EMP, m AS (RELATE p, e WITH ATTRIBUTES ep.percentage AS pct \
     USING EMPPROJ ep WHERE p.pno = ep.eppno AND e.eno = ep.epeno) TAKE *";
    "OUT OF ALL-DEPS TAKE *";
    "OUT OF ALL-DEPS-ORG TAKE *";
    "OUT OF EXT-ALL-DEPS-ORG TAKE *";
    "OUT OF ORG-UNIT TAKE *";
    "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 5000 TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept SUCH THAT budget > 0 TAKE *";
    "OUT OF ALL-DEPS WHERE employment (d, e) SUCH THAT e.sal < d.budget * 100 TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment) >= 0 TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT EXISTS d->employment TAKE *";
    "OUT OF ALL-DEPS WHERE Xdept d SUCH THAT COUNT(d->employment->Xemp) >= 0 TAKE *";
    "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(*), employment";
    "OUT OF ALL-DEPS TAKE Xdept(dname), Xemp(ename, sal), employment";
    "OUT OF ALL-DEPS WHERE Xdept SUCH THAT loc = 'NY' TAKE Xemp(*)";
    "OUT OF x AS (SELECT * FROM skills WHERE sno < 0) DELETE *";
    "OUT OF ALL-DEPS UPDATE Xemp SET sal = sal + 0";
    "SELECT dname, budget FROM dept WHERE budget > 100" ]

let expect_clean api src =
  let ds = lint api src in
  if ds <> [] then
    Alcotest.failf "expected clean lint for %S, got:\n%s" src
      (String.concat "\n" (List.map Diag.to_string ds))

let test_clean_corpus () =
  let _, api = mk () in
  List.iter (expect_clean api) clean_queries

(* the workload's paper views lint clean on both representations, checked
   before each definition is registered (views build on earlier ones) *)
let test_workload_views_clean () =
  List.iter
    (fun repr ->
      let db = Db.create () in
      Workload.Company.populate db ~seed:1 ~scale:Workload.Company.small ~repr;
      let api = Xnf.Api.create db in
      List.iter
        (fun def ->
          expect_clean api def;
          ignore (Xnf.Api.exec api def))
        [ (match repr with
          | Workload.Company.Cdb1 -> Workload.Company.all_deps_cdb1
          | Workload.Company.Cdb2 -> Workload.Company.all_deps_cdb2);
          Workload.Company.all_deps_org; Workload.Company.ext_all_deps_org;
          Workload.Company.org_unit ])
    [ Workload.Company.Cdb1; Workload.Company.Cdb2 ]

(* ---- pipeline invariant validators at the three hook points ---- *)

let one_col_schema = Schema.make [ Schema.column "c" Schema.Ty_int ]
let one_col_values = Qgm.Values { schema = one_col_schema; rows = [ [| Value.Int 1 |] ] }

let expect_violation code f =
  match f () with
  | () -> Alcotest.failf "expected Invariant_violation %s" code
  | exception Check.Pipeline.Invariant_violation ds ->
    if not (List.mem code (codes ds)) then
      Alcotest.failf "expected %s, got [%s]" code (String.concat "; " (codes ds))

let test_hook_post_bind () =
  let db, _ = mk () in
  Check.Pipeline.install ();
  (* a well-formed statement passes through the installed hooks *)
  ignore (Db.rows_of db "SELECT dname FROM dept WHERE budget > 0");
  (* the post-bind hook rejects a pred referencing column 9 of a
     1-column input *)
  expect_violation "QGM101" (fun () ->
      !Hooks.post_bind (Db.catalog db) (Qgm.Select { input = one_col_values; pred = Expr.Col 9 }))

let test_hook_post_rewrite () =
  let db, _ = mk () in
  Check.Pipeline.install ();
  (* arity mismatch under UNION ALL *)
  let two_col =
    Qgm.Values
      { schema = Schema.make [ Schema.column "a" Schema.Ty_int; Schema.column "b" Schema.Ty_int ];
        rows = [] }
  in
  expect_violation "QGM102" (fun () ->
      !Hooks.post_rewrite (Db.catalog db) (Qgm.Union_all (one_col_values, two_col)));
  expect_violation "QGM104" (fun () ->
      !Hooks.post_rewrite (Db.catalog db) (Qgm.Access { table = "nosuch"; alias = "n" }))

let test_hook_post_optimize () =
  let db, _ = mk () in
  Check.Pipeline.install ();
  expect_violation "PLAN201" (fun () ->
      !Hooks.post_optimize (Db.catalog db)
        (Plan.Filter (Plan.Values [ [| Value.Int 1 |] ], Expr.Col 5)));
  expect_violation "PLAN202" (fun () ->
      !Hooks.post_optimize (Db.catalog db)
        (Plan.Nl_join
           { kind = Plan.Inner; left = Plan.Values [ [| Value.Int 1 |] ];
             right = Plan.Values [ [| Value.Int 2 |] ]; pred = None; right_width = 3 }))

let test_validators_direct () =
  let db, _ = mk () in
  (* exposed validator bodies work without installation *)
  expect_violation "QGM106" (fun () ->
      Check.Pipeline.validate_qgm (Db.catalog db) (Qgm.Limit (one_col_values, -1)));
  expect_violation "PLAN204" (fun () ->
      Check.Pipeline.validate_plan (Db.catalog db)
        (Plan.Union_all
           (Plan.Values [ [| Value.Int 1 |] ], Plan.Values [ [| Value.Int 1; Value.Int 2 |] ])));
  (* violation counters moved *)
  let before = Obs.Metrics.counter_get "check.qgm.violations" in
  (try Check.Pipeline.validate_qgm (Db.catalog db) (Qgm.Limit (one_col_values, -1))
   with Check.Pipeline.Invariant_violation _ -> ());
  Alcotest.(check bool) "counter incremented" true
    (Obs.Metrics.counter_get "check.qgm.violations" > before)

let test_pipeline_end_to_end () =
  (* with validators installed, the whole workload corpus still executes *)
  let _, api = mk () in
  Check.Pipeline.install ();
  let before = Obs.Metrics.counter_get "check.validations" in
  ignore (Xnf.Api.fetch_string api "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 5000 TAKE *");
  ignore (Db.rows_of (Xnf.Api.db api) "SELECT COUNT(*) FROM emp");
  Alcotest.(check bool) "validations counted" true
    (Obs.Metrics.counter_get "check.validations" > before)

(* ---- diagnostic rendering ---- *)

let test_diag_render () =
  let d =
    Diag.err ~code:"XNF011" ~span:(Srcloc.make ~line:1 ~col:42 ~end_line:1 ~end_col:43)
      ~hint:"relate it" "component b is unreachable"
  in
  let s = Diag.to_string d in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "renders %S" affix) true
        (contains ~affix s))
    [ "error[XNF011]"; "line 1, column 42"; "relate it" ];
  let j = Diag.to_json [ d; Diag.warn ~code:"XNF017" "dup \"take\"" ] in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" affix) true
        (contains ~affix j))
    [ "\"XNF011\""; "\"error\""; "\"warning\""; "\\\"take\\\"" ];
  (* parse errors carry line/column through Diag *)
  match Xnf.Xnf_parser.parse_stmt_diag "OUT OF x AS DEPT TAK *" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error d ->
    Alcotest.(check string) "code" "XNF000" d.Diag.code;
    Alcotest.(check bool) "position in message" true
      (contains ~affix:"line 1" (Diag.to_string d))

let test_diag_sort () =
  let w = Diag.warn ~code:"XNF017" "w" in
  let e = Diag.err ~code:"XNF011" "e" in
  match Diag.sort [ w; e ] with
  | [ first; second ] ->
    Alcotest.(check string) "errors first" "XNF011" first.Diag.code;
    Alcotest.(check string) "warnings after" "XNF017" second.Diag.code
  | _ -> Alcotest.fail "expected two diagnostics"

let test_lint_metrics () =
  let _, api = mk () in
  let runs = Obs.Metrics.counter_get "check.lint.runs" in
  let errs = Obs.Metrics.counter_get "check.lint.errors" in
  ignore (lint api "OUT OF x AS DEPT TAKE *");
  ignore (lint api "OUT OF x AS DEPT, x AS EMP TAKE *");
  Alcotest.(check bool) "runs counted" true (Obs.Metrics.counter_get "check.lint.runs" >= runs + 2);
  Alcotest.(check bool) "errors counted" true (Obs.Metrics.counter_get "check.lint.errors" > errs)

let suite =
  [ Alcotest.test_case "bad-query fixtures report exact codes" `Quick test_bad_fixtures;
    Alcotest.test_case "warning severities" `Quick test_severities;
    Alcotest.test_case "orphan diagnostic carries a source span" `Quick test_orphan_span;
    Alcotest.test_case "clean corpus stays clean" `Quick test_clean_corpus;
    Alcotest.test_case "workload views lint clean (both reprs)" `Quick test_workload_views_clean;
    Alcotest.test_case "post-bind hook rejects malformed QGM" `Quick test_hook_post_bind;
    Alcotest.test_case "post-rewrite hook rejects malformed QGM" `Quick test_hook_post_rewrite;
    Alcotest.test_case "post-optimize hook rejects malformed plan" `Quick test_hook_post_optimize;
    Alcotest.test_case "validators usable directly" `Quick test_validators_direct;
    Alcotest.test_case "validators pass the live pipeline" `Quick test_pipeline_end_to_end;
    Alcotest.test_case "diagnostic rendering (human + json)" `Quick test_diag_render;
    Alcotest.test_case "diagnostic sorting" `Quick test_diag_sort;
    Alcotest.test_case "lint metrics counters" `Quick test_lint_metrics ]
