(* Unit tests: cache key indexes, ordered cursors, materialized COs. *)

open Relational

let mk () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 100), (2, 'd2', 200)";
      "INSERT INTO emp VALUES (1, 'c', 900, 1), (2, 'a', 300, 1), (3, 'b', 500, 2), (4, 'a', 100, 2)" ];
  let api = Xnf.Api.create db in
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW V AS OUT OF Xdept AS DEPT, Xemp AS EMP, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *");
  (db, api)

let test_key_index () =
  let _, api = mk () in
  let cache = Xnf.Api.fetch_string api "OUT OF V TAKE *" in
  let ki = Xnf.Cache.build_key_index cache ~node:"xemp" ~col:"ename" in
  Alcotest.(check int) "two a's" 2 (List.length (Xnf.Cache.lookup_key cache ki (Value.Str "a")));
  Alcotest.(check int) "one b" 1 (List.length (Xnf.Cache.lookup_key cache ki (Value.Str "b")));
  Alcotest.(check bool) "missing" true (Xnf.Cache.lookup_key_one cache ki (Value.Str "z") = None);
  (* tombstoned tuples are filtered out of lookups *)
  let ni = Xnf.Cache.node cache "xemp" in
  let b_pos = Option.get (Xnf.Cache.lookup_key_one cache ki (Value.Str "b")) in
  (Xnf.Cache.tuple ni b_pos).Xnf.Cache.t_live <- false;
  Alcotest.(check int) "dead filtered" 0 (List.length (Xnf.Cache.lookup_key cache ki (Value.Str "b")))

let test_key_index_errors () =
  let _, api = mk () in
  let cache = Xnf.Api.fetch_string api "OUT OF V TAKE *" in
  (try
     ignore (Xnf.Cache.build_key_index cache ~node:"xemp" ~col:"nosuch");
     Alcotest.fail "expected unknown column"
   with Xnf.Cache.Cache_error _ -> ());
  try
    ignore (Xnf.Cache.build_key_index cache ~node:"nosuch" ~col:"eno");
    Alcotest.fail "expected unknown node"
  with Xnf.Cache.Cache_error _ -> ()

let names c = List.map (fun t -> Value.as_string (Xnf.Cache.col t 1)) (Xnf.Cursor.to_list c)

let test_ordered_cursor () =
  let _, api = mk () in
  let cache = Xnf.Api.fetch_string api "OUT OF V TAKE *" in
  let asc = Xnf.Cursor.open_independent ~order:("ename", `Asc) cache "xemp" in
  Alcotest.(check (list string)) "ascending" [ "a"; "a"; "b"; "c" ] (names asc);
  let desc = Xnf.Cursor.open_independent ~order:("sal", `Desc) cache "xemp" in
  Alcotest.(check (list string)) "by salary desc" [ "c"; "b"; "a"; "a" ] (names desc);
  (* reset keeps the ordering *)
  Xnf.Cursor.reset desc;
  Alcotest.(check (list string)) "after reset" [ "c"; "b"; "a"; "a" ] (names desc)

let test_ordered_cursor_unknown_column () =
  let _, api = mk () in
  let cache = Xnf.Api.fetch_string api "OUT OF V TAKE *" in
  try
    ignore (Xnf.Cursor.open_independent ~order:("zzz", `Asc) cache "xemp");
    Alcotest.fail "expected cursor error"
  with Xnf.Cursor.Cursor_error _ -> ()

let test_materialized_serves_fresh () =
  let db, api = mk () in
  let mat = Xnf.Materialized.create db (Xnf.Api.registry api) in
  Xnf.Materialized.define_string mat ~name:"orgs" "OUT OF V TAKE *";
  let c1 = Xnf.Materialized.get mat "orgs" in
  let c2 = Xnf.Materialized.get mat "orgs" in
  Alcotest.(check bool) "same instance while fresh" true (c1 == c2);
  Alcotest.(check (pair int int)) "one load, one hit" (1, 1) (Xnf.Materialized.stats mat "orgs")

let test_materialized_reloads_on_change () =
  let db, api = mk () in
  let mat = Xnf.Materialized.create db (Xnf.Api.registry api) in
  Xnf.Materialized.define_string mat ~name:"orgs" "OUT OF V TAKE *";
  let c1 = Xnf.Materialized.get mat "orgs" in
  ignore (Db.exec db "INSERT INTO emp VALUES (9, 'z', 50, 1)");
  let c2 = Xnf.Materialized.get mat "orgs" in
  Alcotest.(check bool) "reloaded" true (not (c1 == c2));
  Alcotest.(check int) "sees the new employee" 5
    (Xnf.Cache.live_count (Xnf.Cache.node c2 "xemp"))

let test_materialized_own_writes_stay_fresh () =
  let db, api = mk () in
  let mat = Xnf.Materialized.create db (Xnf.Api.registry api) in
  Xnf.Materialized.define_string mat ~name:"orgs" "OUT OF V TAKE *";
  let c1 = Xnf.Materialized.get mat "orgs" in
  (* a udi session on the materialized instance refreshes the snapshot *)
  let ses = Xnf.Udi.session db c1 in
  Xnf.Udi.with_deferred ses (fun () ->
      Xnf.Udi.update ses ~node:"xemp" ~pos:0 [ ("sal", Value.Int 901) ]);
  let c2 = Xnf.Materialized.get mat "orgs" in
  Alcotest.(check bool) "own write does not invalidate" true (c1 == c2)

let test_materialized_invalidate_and_errors () =
  let db, api = mk () in
  let mat = Xnf.Materialized.create db (Xnf.Api.registry api) in
  Xnf.Materialized.define_string mat ~name:"orgs" "OUT OF V TAKE *";
  let c1 = Xnf.Materialized.get mat "orgs" in
  Xnf.Materialized.invalidate mat "orgs";
  let c2 = Xnf.Materialized.get mat "orgs" in
  Alcotest.(check bool) "invalidate forces reload" true (not (c1 == c2));
  (try
     Xnf.Materialized.define_string mat ~name:"orgs" "OUT OF V TAKE *";
     Alcotest.fail "expected duplicate error"
   with Xnf.Materialized.Materialized_error _ -> ());
  try
    ignore (Xnf.Materialized.get mat "nosuch");
    Alcotest.fail "expected unknown error"
  with Xnf.Materialized.Materialized_error _ -> ()

let test_recompute_reachability_rootless () =
  let _, api = mk () in
  (* evaluate-then-project: the output drops the root; maintenance must not
     wipe the instance *)
  let cache = Xnf.Api.fetch_string api "OUT OF V WHERE Xdept SUCH THAT budget > 150 TAKE Xemp(*)" in
  Alcotest.(check int) "emps of big dept" 2 (Xnf.Cache.live_count (Xnf.Cache.node cache "xemp"));
  Xnf.Cache.recompute_reachability cache;
  Alcotest.(check int) "still there" 2 (Xnf.Cache.live_count (Xnf.Cache.node cache "xemp"))

let suite =
  [ Alcotest.test_case "key index" `Quick test_key_index;
    Alcotest.test_case "key index errors" `Quick test_key_index_errors;
    Alcotest.test_case "ordered cursor" `Quick test_ordered_cursor;
    Alcotest.test_case "ordered cursor unknown column" `Quick test_ordered_cursor_unknown_column;
    Alcotest.test_case "materialized: fresh hits" `Quick test_materialized_serves_fresh;
    Alcotest.test_case "materialized: reload on change" `Quick test_materialized_reloads_on_change;
    Alcotest.test_case "materialized: own writes stay fresh" `Quick
      test_materialized_own_writes_stay_fresh;
    Alcotest.test_case "materialized: invalidate and errors" `Quick
      test_materialized_invalidate_and_errors;
    Alcotest.test_case "rootless projected instance" `Quick test_recompute_reachability_rootless ]
