(* The differential fuzzing subsystem: deterministic generation, a clean
   short run, mutation detection (the smoke-test CI relies on), corpus
   round-trips and shrinking. *)

open Relational

let small = { Fuzz.Gen.default with Fuzz.Gen.max_nodes = 4; Fuzz.Gen.max_rows = 6 }

let test_generation_deterministic () =
  List.iter
    (fun index ->
      let a = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:7 ~index ()) in
      let b = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:7 ~index ()) in
      Alcotest.(check (list string)) "same setup" a.Fuzz.Gen.sc_setup b.Fuzz.Gen.sc_setup;
      Alcotest.(check string) "same query" a.Fuzz.Gen.sc_query b.Fuzz.Gen.sc_query;
      let c = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:8 ~index ()) in
      Alcotest.(check bool) "different seed, different case" false
        (a.Fuzz.Gen.sc_setup = c.Fuzz.Gen.sc_setup && a.Fuzz.Gen.sc_query = c.Fuzz.Gen.sc_query))
    [ 0; 1; 2 ]

let test_generated_statements_parse () =
  for index = 0 to 14 do
    let sc = Fuzz.Gen.render (Fuzz.Gen.generate ~config:small ~seed:3 ~index ()) in
    List.iter (fun s -> ignore (Xnf.Xnf_parser.parse_stmt s)) sc.Fuzz.Gen.sc_setup;
    ignore (Xnf.Xnf_parser.parse_query sc.Fuzz.Gen.sc_query)
  done

let test_short_run_clean () =
  let report = Fuzz.Driver.run ~config:small ~seed:11 ~iters:30 () in
  Alcotest.(check int) "cases" 30 report.Fuzz.Driver.r_cases;
  List.iter
    (fun (f : Fuzz.Driver.failure) ->
      Alcotest.failf "case %s diverged: %s" f.Fuzz.Driver.fl_label f.Fuzz.Driver.fl_detail)
    report.Fuzz.Driver.r_failures;
  (* the oracles actually compared something *)
  let cov k = List.assoc k report.Fuzz.Driver.r_coverage in
  Alcotest.(check bool) "naive oracle exercised" true (cov "naive" > 0);
  Alcotest.(check bool) "lw90 oracle exercised" true (cov "lw90" > 0);
  Alcotest.(check bool) "monotonicity exercised" true (cov "mono" > 0)

let test_mutations_caught () =
  List.iter
    (fun m ->
      let report = Fuzz.Driver.run ~config:small ~mutation:m ~seed:11 ~iters:20 () in
      Alcotest.(check bool)
        (Fuzz.Oracle.mutation_name m ^ " applied somewhere")
        true
        (report.Fuzz.Driver.r_mutated > 0);
      Alcotest.(check int)
        (Fuzz.Oracle.mutation_name m ^ " always caught")
        report.Fuzz.Driver.r_mutated report.Fuzz.Driver.r_caught)
    [ Fuzz.Oracle.Drop_conn; Fuzz.Oracle.Drop_tuple ]

let test_corpus_roundtrip () =
  let dir = Filename.temp_file "fuzz-corpus" "" in
  Sys.remove dir;
  let sc = Fuzz.Gen.render (Fuzz.Gen.generate ~config:small ~seed:5 ~index:2 ()) in
  let path = Fuzz.Corpus.write ~dir ~kinds:[ "fixpoint" ] sc in
  Alcotest.(check (list string)) "listed" [ path ] (Fuzz.Corpus.files dir);
  let back = Fuzz.Corpus.load path in
  Alcotest.(check (list string)) "setup round-trips" sc.Fuzz.Gen.sc_setup back.Fuzz.Gen.sc_setup;
  Alcotest.(check string) "query round-trips" sc.Fuzz.Gen.sc_query back.Fuzz.Gen.sc_query;
  Alcotest.(check string) "label from file name" sc.Fuzz.Gen.sc_label back.Fuzz.Gen.sc_label;
  let o = Fuzz.Driver.replay path in
  Alcotest.(check int) "replay clean" 0 (List.length o.Fuzz.Oracle.o_divs);
  Sys.remove path;
  Sys.rmdir dir

let test_repo_corpus_replays_clean () =
  (* the committed regression corpus must stay green; the dune test runs
     sandboxed, so resolve the repo examples directory from the env *)
  let dir =
    match Sys.getenv_opt "DUNE_SOURCEROOT" with
    | Some root -> Filename.concat root "examples/fuzz-corpus"
    | None -> "examples/fuzz-corpus"
  in
  match Fuzz.Corpus.files dir with
  | [] -> ()  (* corpus not visible from the sandbox: covered by ci.sh *)
  | files ->
    List.iter
      (fun path ->
        let o = Fuzz.Driver.replay path in
        List.iter
          (fun (d : Fuzz.Oracle.divergence) ->
            Alcotest.failf "%s: [%s] %s" path d.Fuzz.Oracle.d_kind d.Fuzz.Oracle.d_detail)
          o.Fuzz.Oracle.o_divs)
      files

let test_shrinker () =
  let case = Fuzz.Gen.generate ~seed:9 ~index:4 () in
  let size0 = Fuzz.Shrink.case_size case in
  (* predicate: the case still binds node n1 somewhere — the shrinker must
     strip everything not needed to keep n1 bound *)
  let binds_n1 (c : Fuzz.Gen.case) =
    List.exists
      (function Xnf.Xnf_ast.B_node { bn_name; _ } -> bn_name = "n1" | _ -> false)
      (List.concat_map (fun (_, q) -> q.Xnf.Xnf_ast.q_out_of) c.Fuzz.Gen.cs_views
      @ c.Fuzz.Gen.cs_query.Xnf.Xnf_ast.q_out_of)
  in
  Alcotest.(check bool) "predicate holds initially" true (binds_n1 case);
  let small_case, attempts = Fuzz.Shrink.minimize ~budget:500 ~pred:binds_n1 case in
  Alcotest.(check bool) "shrinking attempted" true (attempts > 0);
  Alcotest.(check bool) "still binds n1" true (binds_n1 small_case);
  Alcotest.(check bool) "strictly smaller" true (Fuzz.Shrink.case_size small_case < size0);
  (* a fully shrunk case keeps nothing but n1's binding and its table *)
  Alcotest.(check int) "one binding left" 1
    (List.length small_case.Fuzz.Gen.cs_query.Xnf.Xnf_ast.q_out_of);
  Alcotest.(check int) "no views left" 0 (List.length small_case.Fuzz.Gen.cs_views);
  (* the shrunk case still renders and parses *)
  let sc = Fuzz.Gen.render small_case in
  List.iter (fun s -> ignore (Xnf.Xnf_parser.parse_stmt s)) sc.Fuzz.Gen.sc_setup;
  ignore (Xnf.Xnf_parser.parse_query sc.Fuzz.Gen.sc_query)

let test_monotone_classifier () =
  let open Xnf.Xnf_ast in
  let p = { p_start = "v"; p_steps = [ Step_edge "e0" ] } in
  let node pred = R_node { rn_node = "n0"; rn_var = Some "v"; rn_pred = pred } in
  Alcotest.(check bool) "EXISTS is monotone" true
    (Fuzz.Oracle.monotone_restrictions [ node (X_exists_path p) ]);
  Alcotest.(check bool) "NOT EXISTS is not" false
    (Fuzz.Oracle.monotone_restrictions [ node (X_not (X_exists_path p)) ]);
  Alcotest.(check bool) "COUNT lower bound is monotone" true
    (Fuzz.Oracle.monotone_restrictions
       [ node (X_cmp (Relational.Expr.Ge, X_count_path p, X_lit (Value.Int 1))) ]);
  Alcotest.(check bool) "COUNT upper bound is not" false
    (Fuzz.Oracle.monotone_restrictions
       [ node (X_cmp (Relational.Expr.Le, X_count_path p, X_lit (Value.Int 1))) ]);
  Alcotest.(check bool) "SQL-only predicates are monotone" true
    (Fuzz.Oracle.monotone_restrictions
       [ node (X_cmp (Relational.Expr.Ge, X_col (Some "v", "g"), X_lit (Value.Int 1))) ])

let test_oracle_flags () =
  (* a recursive case skips the DAG-only oracles; forcing DAGs re-enables
     them (classification, not catch-and-ignore) *)
  let dag = { small with Fuzz.Gen.allow_recursive = false } in
  let report = Fuzz.Driver.run ~config:dag ~seed:13 ~iters:15 () in
  Alcotest.(check int) "no divergences" 0 (List.length report.Fuzz.Driver.r_failures);
  Alcotest.(check int) "no recursion generated" 0
    (List.assoc "recursive" report.Fuzz.Driver.r_coverage);
  Alcotest.(check int) "every case hits the unshared oracle" 15
    (List.assoc "naive" report.Fuzz.Driver.r_coverage)

let suite =
  [ Alcotest.test_case "generation is deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "generated statements parse" `Quick test_generated_statements_parse;
    Alcotest.test_case "short run finds no divergence" `Quick test_short_run_clean;
    Alcotest.test_case "injected mutations are caught" `Quick test_mutations_caught;
    Alcotest.test_case "corpus write/load round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "committed corpus replays clean" `Quick test_repo_corpus_replays_clean;
    Alcotest.test_case "shrinker minimizes to the predicate" `Quick test_shrinker;
    Alcotest.test_case "monotonicity classifier" `Quick test_monotone_classifier;
    Alcotest.test_case "DAG-only oracles classified up front" `Quick test_oracle_flags ]
