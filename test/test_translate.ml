(* Integration tests: XNF query evaluation — every query family of §3 of
   the paper, checked against hand-computed instances (the F1–F6
   demonstrations of DESIGN.md). *)

open Relational

(* The Fig. 4/5 scenario:
     d1 (NY), d2 (SF)
     e1, e2 employed by d1; e5 by d2; e3, e4 unemployed (edno NULL)
     p1 owned+managed in d2 (by e5)
     e2 manages p2, p3;  e3 manages p4
     membership: e3 on p2; e4 on p2 and p4
   Restricting EXT-ALL-DEPS-ORG to NY must keep d1, e1..e4, p2..p4 and
   drop d2, e5, p1 (the paper's Fig. 5 result shape). *)
let mk_db () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER, descr VARCHAR)";
      "CREATE TABLE proj (pno INTEGER PRIMARY KEY, pname VARCHAR, pdno INTEGER, pmgrno INTEGER, pbudget INTEGER)";
      "CREATE TABLE empproj (epeno INTEGER, eppno INTEGER, percentage INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 'NY', 1000), (2, 'd2', 'SF', 2000)";
      "INSERT INTO emp VALUES (1, 'e1', 1000, 1, 'regular'), (2, 'e2', 1800, 1, 'staff'), \
       (3, 'e3', 900, NULL, 'regular'), (4, 'e4', 2500, NULL, 'staff'), (5, 'e5', 1200, 2, 'regular')";
      "INSERT INTO proj VALUES (1, 'p1', 2, 5, 500), (2, 'p2', 1, 2, 1500), \
       (3, 'p3', 1, 2, 800), (4, 'p4', 1, 3, 3000)";
      "INSERT INTO empproj VALUES (3, 2, 50), (4, 2, 50), (4, 4, 100)" ];
  db

let mk_api () =
  let db = mk_db () in
  let api = Xnf.Api.create db in
  List.iter
    (fun v -> ignore (Xnf.Api.exec api v))
    [ "CREATE VIEW ALL-DEPS AS OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ, \
       employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
       ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno) TAKE *";
      "CREATE VIEW ALL-DEPS-ORG AS OUT OF ALL-DEPS, \
       membership AS (RELATE Xproj, Xemp WITH ATTRIBUTES ep.percentage AS percentage \
       USING EMPPROJ ep WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno) TAKE *";
      "CREATE VIEW EXT-ALL-DEPS-ORG AS OUT OF ALL-DEPS-ORG, \
       projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno) TAKE *" ];
  (db, api)

let node_keys cache node =
  Xnf.Cache.live_tuples (Xnf.Cache.node cache node)
  |> List.map (fun t -> Value.as_int (Xnf.Cache.col t 0))
  |> List.sort compare

let conn_count cache edge =
  List.length (Xnf.Cache.conns_live (Xnf.Cache.edge cache edge))

let fetch api s = Xnf.Api.fetch_string api s

(* F1: the basic CO constructor (§3.1) with reachability *)
let test_basic_constructor_reachability () =
  let _, api = mk_api () in
  let cache =
    fetch api
      "OUT OF Xdept AS (SELECT * FROM dept WHERE loc = 'NY'), Xemp AS EMP, Xproj AS PROJ, \
       employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
       ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno) TAKE *"
  in
  Alcotest.(check (list int)) "NY dept" [ 1 ] (node_keys cache "xdept");
  (* only e1,e2 reachable; e3,e4 (NULL edno), e5 (SF) excluded *)
  Alcotest.(check (list int)) "reachable emps" [ 1; 2 ] (node_keys cache "xemp");
  Alcotest.(check (list int)) "owned projects" [ 2; 3; 4 ] (node_keys cache "xproj");
  Alcotest.(check int) "employment conns" 2 (conn_count cache "employment")

(* F2: same CO from the explicit link-table representation (Fig. 2) *)
let test_two_representations_agree () =
  let _, api = mk_api () in
  let db2 = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db2 s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, descr VARCHAR)";
      "CREATE TABLE deptemp (dedno INTEGER, deeno INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 'NY', 1000), (2, 'd2', 'SF', 2000)";
      "INSERT INTO emp VALUES (1, 'e1', 1000, 'regular'), (2, 'e2', 1800, 'staff'), (5, 'e5', 1200, 'regular')";
      "INSERT INTO deptemp VALUES (1, 1), (1, 2), (2, 5)" ];
  let api2 = Xnf.Api.create db2 in
  let q1 =
    "OUT OF Xdept AS (SELECT * FROM dept WHERE loc = 'NY'), Xemp AS EMP, \
     employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *"
  in
  let q2 =
    "OUT OF Xdept AS (SELECT * FROM dept WHERE loc = 'NY'), Xemp AS EMP, \
     employment AS (RELATE Xdept, Xemp USING DEPTEMP de \
     WHERE Xdept.dno = de.dedno AND Xemp.eno = de.deeno) TAKE *"
  in
  let c1 = fetch api q1 and c2 = fetch api2 q2 in
  Alcotest.(check (list int)) "same employees through both representations"
    (node_keys c1 "xemp") (node_keys c2 "xemp");
  Alcotest.(check int) "same connections" (conn_count c1 "employment") (conn_count c2 "employment")

(* F3: views over views make new tuples reachable (§3.2, Fig. 3) *)
let test_view_composition_extends_reachability () =
  let _, api = mk_api () in
  let base = fetch api "OUT OF ALL-DEPS TAKE *" in
  (* without membership, e3/e4 are unreachable *)
  Alcotest.(check (list int)) "ALL-DEPS emps" [ 1; 2; 5 ] (node_keys base "xemp");
  let org = fetch api "OUT OF ALL-DEPS-ORG TAKE *" in
  Alcotest.(check (list int)) "ALL-DEPS-ORG emps" [ 1; 2; 3; 4; 5 ] (node_keys org "xemp");
  Alcotest.(check int) "membership conns" 3 (conn_count org "membership")

(* relationship attributes (§3.2) *)
let test_relationship_attributes () =
  let _, api = mk_api () in
  let org = fetch api "OUT OF ALL-DEPS-ORG TAKE *" in
  let ei = Xnf.Cache.edge org "membership" in
  Alcotest.(check int) "attr schema" 1 (Schema.arity ei.Xnf.Cache.ei_attr_schema);
  let percentages =
    Xnf.Cache.conns_live ei
    |> List.map (fun c -> Value.as_int (Xnf.Cache.conn_attrs c).(0))
    |> List.sort compare
  in
  Alcotest.(check (list int)) "percentages" [ 50; 50; 100 ] percentages

(* node restriction (§3.3) *)
let test_node_restriction () =
  let _, api = mk_api () in
  let cache = fetch api "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 1500 TAKE *" in
  Alcotest.(check (list int)) "cheap emps only" [ 1; 5 ] (node_keys cache "xemp");
  Alcotest.(check int) "conns follow" 2 (conn_count cache "employment");
  (* depts and projects unaffected by the employee restriction *)
  Alcotest.(check (list int)) "depts kept" [ 1; 2 ] (node_keys cache "xdept")

(* edge restriction (§3.3): discards the connection AND (via reachability)
   the child, but not the parent *)
let test_edge_restriction () =
  let _, api = mk_api () in
  let cache =
    fetch api
      "OUT OF ALL-DEPS WHERE employment (d, e) SUCH THAT e.sal < d.budget / 100 TAKE *"
  in
  (* budgets/100: d1 -> 10, d2 -> 20: nobody qualifies *)
  Alcotest.(check (list int)) "no emps" [] (node_keys cache "xemp");
  Alcotest.(check (list int)) "depts stay" [ 1; 2 ] (node_keys cache "xdept");
  Alcotest.(check int) "no employment conns" 0 (conn_count cache "employment")

(* structural projection (§3.3): dropping Xproj implicitly drops ownership *)
let test_structural_projection () =
  let _, api = mk_api () in
  let cache =
    fetch api "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal < 2000 TAKE Xdept(*), Xemp(*), employment"
  in
  Alcotest.(check bool) "no xproj" true (Xnf.Cache.node_opt cache "xproj" = None);
  Alcotest.(check bool) "no ownership" true (Xnf.Cache.edge_opt cache "ownership" = None);
  Alcotest.(check (list int)) "emps" [ 1; 2; 5 ] (node_keys cache "xemp")

(* column projection in TAKE *)
let test_column_projection () =
  let _, api = mk_api () in
  let cache = fetch api "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(ename, sal), employment" in
  let ni = Xnf.Cache.node cache "xemp" in
  Alcotest.(check int) "two columns" 2 (Schema.arity ni.Xnf.Cache.ni_schema);
  let t = List.hd (Xnf.Cache.live_tuples ni) in
  Alcotest.(check int) "row width" 2 (Array.length (Xnf.Cache.row t))

(* F4/F5: recursive CO and restriction on it (§3.4) *)
let test_recursive_co_fig5 () =
  let _, api = mk_api () in
  let cache =
    fetch api
      "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept SUCH THAT loc = 'NY' \
       TAKE Xdept(*), employment, Xemp(*), projmanagement, membership, Xproj(*)"
  in
  Alcotest.(check (list int)) "only NY dept" [ 1 ] (node_keys cache "xdept");
  (* e1,e2 employed; p2,p3 managed by e2; e3,e4 via membership on p2;
     e3 manages p4; e4 works on p4. e5 and p1 are unreachable. *)
  Alcotest.(check (list int)) "Fig.5 employees" [ 1; 2; 3; 4 ] (node_keys cache "xemp");
  Alcotest.(check (list int)) "Fig.5 projects" [ 2; 3; 4 ] (node_keys cache "xproj");
  Alcotest.(check bool) "ownership projected away" true (Xnf.Cache.edge_opt cache "ownership" = None)

(* naive and semi-naive fixpoints agree on recursive COs *)
let test_fixpoint_equivalence () =
  let _, api = mk_api () in
  let q =
    Xnf.Xnf_parser.parse_query
      "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept SUCH THAT loc = 'NY' TAKE *"
  in
  let semi = Xnf.Api.fetch ~fixpoint:Xnf.Translate.Semi_naive api q in
  let naive = Xnf.Api.fetch ~fixpoint:Xnf.Translate.Naive api q in
  List.iter
    (fun node ->
      Alcotest.(check (list int)) ("node " ^ node) (node_keys semi node) (node_keys naive node))
    [ "xdept"; "xemp"; "xproj" ]

(* path expressions in queries (§3.5) *)
let test_count_path_restriction () =
  let _, api = mk_api () in
  let cache =
    fetch api
      "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept d SUCH THAT \
       COUNT(d->employment->projmanagement) >= 2 AND d.budget > 500 TAKE *"
  in
  (* d1: e1,e2 employed; e2 manages p2,p3 -> count 2; d2: e5 manages p1 -> 1 *)
  Alcotest.(check (list int)) "only d1 qualifies" [ 1 ] (node_keys cache "xdept")

let test_qualified_path_exists () =
  let _, api = mk_api () in
  let cache =
    fetch api
      "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept d SUCH THAT \
       EXISTS d->employment->(Xemp e WHERE e.descr = 'staff')->projmanagement->\
       (Xproj p WHERE p.pbudget > d.budget) TAKE *"
  in
  (* d1: staff e2 manages p2 (1500 > 1000) -> kept. d2: e5 is regular -> dropped *)
  Alcotest.(check (list int)) "staff-managed big projects" [ 1 ] (node_keys cache "xdept")

(* closure (§3.6): an XNF query over a view over a view *)
let test_closure_views_over_views () =
  let _, api = mk_api () in
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW CHEAP AS OUT OF ALL-DEPS-ORG WHERE Xemp e SUCH THAT e.sal < 2000 TAKE *");
  let cache = fetch api "OUT OF CHEAP WHERE Xdept SUCH THAT loc = 'NY' TAKE *" in
  Alcotest.(check (list int)) "restriction composes" [ 1 ] (node_keys cache "xdept");
  (* sal < 2000 keeps e1,e2,e3,e5; NY keeps d1's reach: e1,e2 employed,
     e3 via membership on p2 *)
  Alcotest.(check (list int)) "composed emps" [ 1; 2; 3 ] (node_keys cache "xemp")

(* CO deletion (§3.7) *)
let test_co_delete () =
  let db, api = mk_api () in
  match
    Xnf.Api.exec api
      "OUT OF Xdept AS (SELECT * FROM dept WHERE loc = 'SF'), Xproj AS PROJ, \
       ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno) DELETE *"
  with
  | Xnf.Api.Co_deleted n ->
    (* d2 and its project p1 *)
    Alcotest.(check int) "deleted d2+p1" 2 n;
    Alcotest.(check int) "dept gone" 1 (List.length (Db.rows_of db "SELECT * FROM dept"));
    Alcotest.(check int) "proj gone" 3 (List.length (Db.rows_of db "SELECT * FROM proj"))
  | _ -> Alcotest.fail "expected Co_deleted"

(* cyclic self-relationship with role names (§2: manages) *)
let test_cyclic_roles () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, mgrno INTEGER)";
      "INSERT INTO emp VALUES (1, 'boss', NULL), (2, 'mid', 1), (3, 'leaf', 2), (4, 'stray', NULL)" ];
  let api = Xnf.Api.create db in
  let cache =
    fetch api
      "OUT OF Xboss AS (SELECT * FROM emp WHERE mgrno IS NULL AND eno = 1), Xemp AS EMP, \
       toplevel AS (RELATE Xboss b, Xemp e WHERE b.eno = e.mgrno), \
       manages AS (RELATE Xemp m, Xemp r WHERE m.eno = r.mgrno) TAKE *"
  in
  (* reachability through the recursive 'manages' edge: mid, leaf; stray is not *)
  Alcotest.(check (list int)) "management chain" [ 2; 3 ] (node_keys cache "xemp")

(* staleness detection *)
let test_staleness () =
  let db, api = mk_api () in
  let cache = fetch api "OUT OF ALL-DEPS TAKE *" in
  Alcotest.(check bool) "fresh" false (Xnf.Cache.stale cache db);
  ignore (Db.exec db "UPDATE emp SET sal = sal + 1 WHERE eno = 1");
  Alcotest.(check bool) "stale after external write" true (Xnf.Cache.stale cache db)

(* translation statistics: sharing means one materialization per node *)
let test_translate_stats () =
  let _, api = mk_api () in
  Xnf.Translate.reset_stats ();
  ignore (fetch api "OUT OF ALL-DEPS TAKE *");
  let s = Xnf.Translate.stats in
  Alcotest.(check bool) "issued a bounded number of queries" true
    (s.Xnf.Translate.queries_issued >= 5 && s.Xnf.Translate.queries_issued <= 12);
  Alcotest.(check bool) "DAG converges quickly" true (s.Xnf.Translate.fixpoint_rounds <= 3)

(* a node derived from a tabular SQL view: the two view systems compose *)
let test_node_from_sql_view () =
  let db, api = mk_api () in
  ignore (Db.exec db "CREATE VIEW ny_depts AS SELECT * FROM dept WHERE loc = 'NY'");
  let cache =
    fetch api
      "OUT OF Xdept AS (SELECT * FROM ny_depts), Xemp AS EMP, \
       employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *"
  in
  Alcotest.(check (list int)) "view-derived root" [ 1 ] (node_keys cache "xdept");
  Alcotest.(check (list int)) "reachable emps" [ 1; 2 ] (node_keys cache "xemp");
  (* such a node is not directly updatable (its base is a view) *)
  Alcotest.(check bool) "not updatable" true
    ((Xnf.Cache.node cache "xdept").Xnf.Cache.ni_upd = None)

(* udi update through a TAKE column projection: the column map re-bases *)
let test_update_after_column_projection () =
  let db, api = mk_api () in
  let cache = fetch api "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(sal, ename), employment" in
  let ni = Xnf.Cache.node cache "xemp" in
  let t = List.hd (Xnf.Cache.live_tuples ni) in
  let name = Value.as_string (Xnf.Cache.col t 1) in
  let ses = Xnf.Udi.session db cache in
  Xnf.Udi.update ses ~node:"xemp" ~pos:t.Xnf.Cache.t_pos [ ("sal", Value.Int 42) ];
  let base =
    List.hd (Db.rows_of db (Printf.sprintf "SELECT sal, ename FROM emp WHERE ename = '%s'" name))
  in
  Alcotest.(check bool) "projected update lands on the right base column" true
    (Value.equal base.(0) (Value.Int 42) && Value.equal base.(1) (Value.Str name))

let suite =
  [ Alcotest.test_case "CO constructor + reachability (F1)" `Quick test_basic_constructor_reachability;
    Alcotest.test_case "two representations agree (F2)" `Quick test_two_representations_agree;
    Alcotest.test_case "views over views extend reachability (F3)" `Quick
      test_view_composition_extends_reachability;
    Alcotest.test_case "relationship attributes" `Quick test_relationship_attributes;
    Alcotest.test_case "node restriction" `Quick test_node_restriction;
    Alcotest.test_case "edge restriction" `Quick test_edge_restriction;
    Alcotest.test_case "structural projection" `Quick test_structural_projection;
    Alcotest.test_case "column projection" `Quick test_column_projection;
    Alcotest.test_case "recursive CO restriction (F4/F5)" `Quick test_recursive_co_fig5;
    Alcotest.test_case "fixpoint strategies agree" `Quick test_fixpoint_equivalence;
    Alcotest.test_case "COUNT(path) restriction" `Quick test_count_path_restriction;
    Alcotest.test_case "qualified path EXISTS" `Quick test_qualified_path_exists;
    Alcotest.test_case "closure: views over views (F6)" `Quick test_closure_views_over_views;
    Alcotest.test_case "CO deletion" `Quick test_co_delete;
    Alcotest.test_case "cyclic relationship with roles" `Quick test_cyclic_roles;
    Alcotest.test_case "staleness detection" `Quick test_staleness;
    Alcotest.test_case "node derived from SQL view" `Quick test_node_from_sql_view;
    Alcotest.test_case "update after column projection" `Quick test_update_after_column_projection;
    Alcotest.test_case "translation statistics" `Quick test_translate_stats ]
