(* Integration tests: the XNF API — cursors and manipulation operations
   (§3.7), including propagation to base tables. *)

open Relational

let mk () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "CREATE TABLE proj (pno INTEGER PRIMARY KEY, pname VARCHAR, pdno INTEGER)";
      "CREATE TABLE empproj (epeno INTEGER, eppno INTEGER, percentage INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 'NY', 1000), (2, 'd2', 'SF', 2000)";
      "INSERT INTO emp VALUES (1, 'e1', 1000, 1), (2, 'e2', 1800, 1), (3, 'e3', 900, 2)";
      "INSERT INTO proj VALUES (10, 'p10', 1), (11, 'p11', 2)";
      "INSERT INTO empproj VALUES (1, 10, 40), (2, 10, 60)" ];
  let api = Xnf.Api.create db in
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW V AS OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
        ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno), \
        membership AS (RELATE Xproj, Xemp WITH ATTRIBUTES ep.percentage AS percentage \
        USING EMPPROJ ep WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno) TAKE *");
  let cache = Xnf.Api.fetch_string api "OUT OF V TAKE *" in
  (db, api, cache)

let find_by_key cache node k =
  let ni = Xnf.Cache.node cache node in
  (List.find (fun t -> Value.equal (Xnf.Cache.col t 0) (Value.Int k)) (Xnf.Cache.live_tuples ni))
    .Xnf.Cache.t_pos

let int_at db sql =
  match Db.rows_of db sql with
  | [ row ] -> row.(0)
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* ---- cursors ---- *)

let test_independent_cursor () =
  let _, _, cache = mk () in
  let c = Xnf.Cursor.open_independent cache "xemp" in
  let names =
    Xnf.Cursor.to_list c
    |> List.map (fun t -> Value.as_string (Xnf.Cache.col t 1))
    |> List.sort compare
  in
  Alcotest.(check (list string)) "all emps" [ "e1"; "e2"; "e3" ] names;
  Alcotest.(check bool) "exhausted" true (Xnf.Cursor.next c = None)

let test_dependent_cursor_follows_parent () =
  let _, _, cache = mk () in
  let d = Xnf.Cursor.open_independent cache "xdept" in
  let e = Xnf.Cursor.open_dependent ~parent:d (Xnf.Cursor.via "employment") in
  (* before the parent positions, the dependent cursor is empty *)
  Alcotest.(check bool) "empty before parent" true (Xnf.Cursor.next e = None);
  ignore (Xnf.Cursor.next d);
  let first_children = List.length (Xnf.Cursor.to_list e) in
  ignore (Xnf.Cursor.next d);
  let second_children = List.length (Xnf.Cursor.to_list e) in
  Alcotest.(check (list int)) "children per dept" [ 2; 1 ] [ first_children; second_children ]

let test_dependent_cursor_multi_step () =
  let _, _, cache = mk () in
  let d = Xnf.Cursor.open_independent cache "xdept" in
  ignore (Xnf.Cursor.next d);
  (* d1 -> ownership -> p10 -> membership -> e1, e2 *)
  let emps =
    Xnf.Cursor.open_dependent ~parent:d
      [ Xnf.Xnf_ast.Step_edge "ownership"; Xnf.Xnf_ast.Step_edge "membership" ]
  in
  Alcotest.(check int) "two project members" 2 (List.length (Xnf.Cursor.to_list emps))

let test_reverse_traversal () =
  let _, _, cache = mk () in
  let e = Xnf.Cursor.open_independent cache "xemp" in
  ignore (Xnf.Cursor.next e);
  (* child -> parent direction across 'employment' *)
  let d = Xnf.Cursor.open_dependent ~parent:e (Xnf.Cursor.via "employment") in
  Alcotest.(check string) "lands on dept" "xdept" (Xnf.Cursor.node_name d);
  Alcotest.(check int) "one employer" 1 (List.length (Xnf.Cursor.to_list d))

(* ---- udi ---- *)

let test_update_propagates () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let pos = find_by_key cache "xemp" 1 in
  Xnf.Udi.update ses ~node:"xemp" ~pos [ ("sal", Value.Int 1111) ];
  Alcotest.(check bool) "base updated" true
    (Value.equal (int_at db "SELECT sal FROM emp WHERE eno = 1") (Value.Int 1111))

let test_update_locked_column_rejected () =
  let _, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let pos = find_by_key cache "xemp" 1 in
  try
    Xnf.Udi.update ses ~node:"xemp" ~pos [ ("edno", Value.Int 2) ];
    Alcotest.fail "expected locked-column rejection"
  with Xnf.Udi.Udi_error _ -> ()

let test_fk_connect_disconnect () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let d2 = find_by_key cache "xdept" 2 in
  let e1 = find_by_key cache "xemp" 1 in
  Xnf.Udi.disconnect ses ~edge:"employment" ~parent:(find_by_key cache "xdept" 1) ~child:e1;
  Alcotest.(check bool) "FK nullified" true
    (Value.is_null (int_at db "SELECT edno FROM emp WHERE eno = 1"));
  Xnf.Udi.connect ses ~edge:"employment" ~parent:d2 ~child:e1 ();
  Alcotest.(check bool) "FK set to new parent" true
    (Value.equal (int_at db "SELECT edno FROM emp WHERE eno = 1") (Value.Int 2))

let test_link_connect_disconnect () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let p11 = find_by_key cache "xproj" 11 in
  let e3 = find_by_key cache "xemp" 3 in
  Xnf.Udi.connect ses ~edge:"membership" ~parent:p11 ~child:e3
    ~attrs:[ ("percentage", Value.Int 25) ] ();
  Alcotest.(check bool) "link tuple inserted" true
    (Value.equal (int_at db "SELECT percentage FROM empproj WHERE eppno = 11 AND epeno = 3")
       (Value.Int 25));
  Xnf.Udi.disconnect ses ~edge:"membership" ~parent:p11 ~child:e3;
  Alcotest.(check int) "link tuple deleted" 0
    (List.length (Db.rows_of db "SELECT * FROM empproj WHERE eppno = 11 AND epeno = 3"))

let test_disconnect_unreachable_leaves_co () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let d1 = find_by_key cache "xdept" 1 in
  let e2pos = find_by_key cache "xemp" 2 in
  (* e2 is reachable via employment AND membership(p10); kill both *)
  Xnf.Udi.disconnect ses ~edge:"membership" ~parent:(find_by_key cache "xproj" 10) ~child:e2pos;
  Xnf.Udi.disconnect ses ~edge:"employment" ~parent:d1 ~child:e2pos;
  let ni = Xnf.Cache.node cache "xemp" in
  let t = Xnf.Cache.tuple ni e2pos in
  Alcotest.(check bool) "left the CO" false t.Xnf.Cache.t_live;
  (* but the base row is still there (disconnect is not delete) *)
  Alcotest.(check int) "base row kept" 1
    (List.length (Db.rows_of db "SELECT * FROM emp WHERE eno = 2"))

let test_delete_tuple () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let e1 = find_by_key cache "xemp" 1 in
  Xnf.Udi.delete ses ~node:"xemp" ~pos:e1;
  Alcotest.(check int) "base row deleted" 0
    (List.length (Db.rows_of db "SELECT * FROM emp WHERE eno = 1"));
  (* its membership link rows must be gone too (attached instances) *)
  Alcotest.(check int) "link rows deleted" 0
    (List.length (Db.rows_of db "SELECT * FROM empproj WHERE epeno = 1"))

let test_delete_parent_nullifies_children () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let d1 = find_by_key cache "xdept" 1 in
  Xnf.Udi.delete ses ~node:"xdept" ~pos:d1;
  Alcotest.(check int) "dept deleted" 0 (List.length (Db.rows_of db "SELECT * FROM dept WHERE dno = 1"));
  (* children disconnected: FK nullified, rows kept *)
  Alcotest.(check bool) "child FK nullified" true
    (Value.is_null (int_at db "SELECT edno FROM emp WHERE eno = 1"));
  Alcotest.(check int) "children kept" 3 (List.length (Db.rows_of db "SELECT * FROM emp"))

let test_insert_then_connect () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let pos =
    Xnf.Udi.insert ses ~node:"xemp" [| Value.Int 9; Value.Str "new"; Value.Int 700; Value.Null |]
  in
  Alcotest.(check int) "base inserted" 1 (List.length (Db.rows_of db "SELECT * FROM emp WHERE eno = 9"));
  Xnf.Udi.connect ses ~edge:"employment" ~parent:(find_by_key cache "xdept" 1) ~child:pos ();
  Alcotest.(check bool) "connected" true
    (Value.equal (int_at db "SELECT edno FROM emp WHERE eno = 9") (Value.Int 1))

let test_deferred_coalesces () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let pos = find_by_key cache "xemp" 1 in
  let wal_before = Wal.length (Txn.wal (Db.txn db)) in
  Xnf.Udi.with_deferred ses (fun () ->
      for i = 1 to 10 do
        Xnf.Udi.update ses ~node:"xemp" ~pos [ ("sal", Value.Int (1000 + i)) ]
      done);
  let wal_after = Wal.length (Txn.wal (Db.txn db)) in
  Alcotest.(check int) "ten updates, one base write" 1 (wal_after - wal_before);
  Alcotest.(check bool) "final value" true
    (Value.equal (int_at db "SELECT sal FROM emp WHERE eno = 1") (Value.Int 1010))

let test_co_update_statement () =
  let db, api, _ = mk () in
  (match
     Xnf.Api.exec api
       "OUT OF V WHERE Xdept SUCH THAT loc = 'NY' UPDATE Xemp SET sal = sal + 100"
   with
  | Xnf.Api.Co_updated 2 -> ()
  | Xnf.Api.Co_updated n -> Alcotest.failf "expected 2 updates, got %d" n
  | _ -> Alcotest.fail "expected Co_updated");
  (* only NY-reachable employees (e1, e2) were raised *)
  Alcotest.(check bool) "e1 raised" true
    (Value.equal (int_at db "SELECT sal FROM emp WHERE eno = 1") (Value.Int 1100));
  Alcotest.(check bool) "e3 untouched" true
    (Value.equal (int_at db "SELECT sal FROM emp WHERE eno = 3") (Value.Int 900))

let test_co_update_locked_column_rejected () =
  let _, api, _ = mk () in
  try
    ignore (Xnf.Api.exec api "OUT OF V UPDATE Xemp SET edno = 2");
    Alcotest.fail "expected locked-column rejection"
  with Xnf.Udi.Udi_error _ -> ()

let test_optimistic_conflict_detected () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  (* another writer touches emp between fetch and our write *)
  ignore (Db.exec db "UPDATE emp SET sal = sal + 1 WHERE eno = 3");
  (try
     Xnf.Udi.update ses ~node:"xemp" ~pos:(find_by_key cache "xemp" 1) [ ("sal", Value.Int 1) ];
     Alcotest.fail "expected conflict"
   with Xnf.Udi.Udi_error _ -> ());
  (* validation off: last writer wins *)
  Xnf.Udi.set_validation ses false;
  Xnf.Udi.update ses ~node:"xemp" ~pos:(find_by_key cache "xemp" 1) [ ("sal", Value.Int 1) ];
  Alcotest.(check bool) "written" true
    (Value.equal (int_at db "SELECT sal FROM emp WHERE eno = 1") (Value.Int 1))

let test_own_writes_do_not_conflict () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  let e1 = find_by_key cache "xemp" 1 in
  Xnf.Udi.update ses ~node:"xemp" ~pos:e1 [ ("sal", Value.Int 1) ];
  Xnf.Udi.update ses ~node:"xemp" ~pos:e1 [ ("sal", Value.Int 2) ];
  Xnf.Udi.delete ses ~node:"xemp" ~pos:(find_by_key cache "xemp" 2);
  Alcotest.(check bool) "sequence applied" true
    (Value.equal (int_at db "SELECT sal FROM emp WHERE eno = 1") (Value.Int 2))

let test_deferred_conflict_detected_at_save () =
  let db, api, cache = mk () in
  let ses = Xnf.Api.session api cache in
  Xnf.Udi.set_deferred ses true;
  Xnf.Udi.update ses ~node:"xemp" ~pos:(find_by_key cache "xemp" 1) [ ("sal", Value.Int 1) ];
  ignore (Db.exec db "UPDATE emp SET sal = sal + 1 WHERE eno = 3");
  try
    Xnf.Udi.save ses;
    Alcotest.fail "expected conflict at save"
  with Xnf.Udi.Udi_error _ -> ()

let test_readonly_node_rejected () =
  let db, api, _ = mk () in
  (* an aggregated node is not updatable *)
  let cache =
    Xnf.Api.fetch_string api
      "OUT OF Xstat AS (SELECT edno, COUNT(*) AS n FROM emp GROUP BY edno) TAKE *"
  in
  let ses = Xnf.Udi.session db cache in
  let ni = Xnf.Cache.node cache "xstat" in
  Alcotest.(check bool) "not updatable" true (ni.Xnf.Cache.ni_upd = None);
  try
    Xnf.Udi.update ses ~node:"xstat" ~pos:0 [ ("n", Value.Int 0) ];
    Alcotest.fail "expected rejection"
  with Xnf.Udi.Udi_error _ -> ()

let suite =
  [ Alcotest.test_case "independent cursor" `Quick test_independent_cursor;
    Alcotest.test_case "dependent cursor follows parent" `Quick test_dependent_cursor_follows_parent;
    Alcotest.test_case "multi-step dependent cursor" `Quick test_dependent_cursor_multi_step;
    Alcotest.test_case "reverse traversal" `Quick test_reverse_traversal;
    Alcotest.test_case "update propagates" `Quick test_update_propagates;
    Alcotest.test_case "locked column rejected" `Quick test_update_locked_column_rejected;
    Alcotest.test_case "FK connect/disconnect" `Quick test_fk_connect_disconnect;
    Alcotest.test_case "link connect/disconnect" `Quick test_link_connect_disconnect;
    Alcotest.test_case "disconnect leaves CO, keeps base" `Quick test_disconnect_unreachable_leaves_co;
    Alcotest.test_case "delete tuple + attached links" `Quick test_delete_tuple;
    Alcotest.test_case "delete parent nullifies children" `Quick test_delete_parent_nullifies_children;
    Alcotest.test_case "insert then connect" `Quick test_insert_then_connect;
    Alcotest.test_case "deferred save coalesces" `Quick test_deferred_coalesces;
    Alcotest.test_case "CO UPDATE statement" `Quick test_co_update_statement;
    Alcotest.test_case "CO UPDATE locked column" `Quick test_co_update_locked_column_rejected;
    Alcotest.test_case "optimistic conflict detected" `Quick test_optimistic_conflict_detected;
    Alcotest.test_case "own writes do not conflict" `Quick test_own_writes_do_not_conflict;
    Alcotest.test_case "deferred conflict at save" `Quick test_deferred_conflict_detected_at_save;
    Alcotest.test_case "read-only node rejected" `Quick test_readonly_node_rejected ]
