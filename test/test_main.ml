(* Test runner: all suites. The pipeline invariant validators are
   installed unconditionally, so every statement any suite executes is
   checked at the post-bind / post-rewrite / post-optimize boundaries. *)

(* Property suites derive their qcheck random states from one session
   seed. It is printed before the run so a CI failure reproduces locally
   with QCHECK_SEED=<printed value>. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> invalid_arg "QCHECK_SEED must be an integer"
  end
  | None ->
    Random.self_init ();
    Random.int 1_000_000_000

let () =
  Check.Pipeline.install ();
  Printf.printf "qcheck seed: %d (rerun with QCHECK_SEED=%d to reproduce)\n%!" qcheck_seed
    qcheck_seed;
  Alcotest.run "sqlxnf"
    [ ("value", Test_value.suite);
      ("expr", Test_expr.suite);
      ("table", Test_table.suite);
      ("plan", Test_plan.suite);
      ("sql-parser", Test_sql_parser.suite);
      ("sql-exec", Test_exec.suite);
      ("rewrite-optimizer", Test_rewrite.suite);
      ("txn-storage", Test_txn.suite);
      ("co-schema", Test_co_schema.suite);
      ("xnf-parser", Test_xnf_parser.suite);
      ("xnf-semantic", Test_semantic.suite);
      ("xnf-translate", Test_translate.suite);
      ("xnf-path", Test_path.suite);
      ("xnf-cursor-udi", Test_cursor_udi.suite);
      ("xnf-cache-extras", Test_cache_extras.suite);
      ("workload", Test_workload.suite);
      ("baselines", Test_baseline.suite);
      ("conformance", Test_conformance.suite);
      ("csv", Test_csv.suite);
      ("errors", Test_errors.suite);
      ("observability", Test_obs.suite);
      ("properties", Test_props.suite qcheck_seed);
      ("properties-2", Test_props2.suite qcheck_seed);
      ("xnf-fetch-plan", Test_fetch_plan.suite);
      ("fuzz", Test_fuzz.suite);
      ("check", Test_check.suite);
      ("xnf-batch-edge", Test_batch_edge.suite);
      ("sys-catalog", Test_sys.suite);
      ("advisor", Test_advisor.suite);
      ("wal-file", Test_wal_file.suite qcheck_seed);
      ("recovery", Test_recovery.suite);
      ("cost-pick", Test_cost_pick.suite) ]
