(* Test runner: all suites. The pipeline invariant validators are
   installed unconditionally, so every statement any suite executes is
   checked at the post-bind / post-rewrite / post-optimize boundaries. *)

let () =
  Check.Pipeline.install ();
  Alcotest.run "sqlxnf"
    [ ("value", Test_value.suite);
      ("expr", Test_expr.suite);
      ("table", Test_table.suite);
      ("plan", Test_plan.suite);
      ("sql-parser", Test_sql_parser.suite);
      ("sql-exec", Test_exec.suite);
      ("rewrite-optimizer", Test_rewrite.suite);
      ("txn-storage", Test_txn.suite);
      ("co-schema", Test_co_schema.suite);
      ("xnf-parser", Test_xnf_parser.suite);
      ("xnf-semantic", Test_semantic.suite);
      ("xnf-translate", Test_translate.suite);
      ("xnf-path", Test_path.suite);
      ("xnf-cursor-udi", Test_cursor_udi.suite);
      ("xnf-cache-extras", Test_cache_extras.suite);
      ("workload", Test_workload.suite);
      ("baselines", Test_baseline.suite);
      ("conformance", Test_conformance.suite);
      ("csv", Test_csv.suite);
      ("errors", Test_errors.suite);
      ("observability", Test_obs.suite);
      ("properties", Test_props.suite);
      ("properties-2", Test_props2.suite);
      ("check", Test_check.suite) ]
