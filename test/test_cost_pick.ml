(* Cost-based access-path selection and the adaptive mid-fixpoint
   fallback: the stats-health selection matrix (missing / fresh / stale),
   ?force precedence over the cost model, the adaptive switch firing on
   injected drift (exact counter deltas) and staying quiet within
   tolerance, switched-strategy reuse on the next execution of the same
   plan, and PLAN301/PLAN305 consistency with the shared estimator. *)

open Relational

let s = Xnf.Translate.stats

let execs db stmts = List.iter (fun stmt -> ignore (Db.exec db stmt)) stmts

let compose api q =
  let def, restrs, _take =
    Xnf.View_registry.compose (Xnf.Api.registry api) (Xnf.Xnf_parser.parse_query q)
  in
  (def, restrs)

let strat =
  Alcotest.testable
    (fun ppf v -> Fmt.string ppf (Xnf.Translate.strategy_name v))
    (fun a b -> a = b)

let contains ~affix str =
  let n = String.length affix and m = String.length str in
  let rec go i = i + n <= m && (String.sub str i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ---- the skew fixture ----

   10 parents all carrying f=5, 20 children with g = h = k mod 10 and an
   index on the low-NDV column g. The composite join (p.f = c.g AND
   p.k = c.h) keeps the true connection count tiny while every probe
   lands in the g=5 bucket; with fresh stats on THIS data the cost model
   still picks indexed (cand_fan ~2). [drift] then floods the g=5 bucket
   with rows whose h never matches: estimates are untouched (no
   re-ANALYZE), but every indexed probe now scans thousands of
   candidates for nothing. *)

let q_skew =
  "OUT OF p0 AS (SELECT * FROM sp), c0 AS (SELECT * FROM sc), \
   e0 AS (RELATE p0, c0 WHERE (p0.f = c0.g AND p0.k = c0.h)) TAKE *"

let mk_skew () =
  let db = Db.create () in
  execs db
    [ "CREATE TABLE sp (k INTEGER PRIMARY KEY, f INTEGER)";
      "CREATE TABLE sc (k INTEGER PRIMARY KEY, g INTEGER, h INTEGER)";
      "CREATE INDEX scix ON sc (g)";
      "INSERT INTO sp VALUES "
      ^ String.concat ", " (List.init 10 (fun k -> Printf.sprintf "(%d, 5)" k));
      "INSERT INTO sc VALUES "
      ^ String.concat ", "
          (List.init 20 (fun k -> Printf.sprintf "(%d, %d, %d)" k (k mod 10) (k mod 10))) ];
  (db, Xnf.Api.create db)

let drift db =
  execs db
    (List.init 6 (fun b ->
         "INSERT INTO sc VALUES "
         ^ String.concat ", "
             (List.init 500 (fun i ->
                  Printf.sprintf "(%d, 5, 9999)" (1000 + (b * 500) + i)))))

(* with a hair trigger, restored afterwards *)
let with_adaptive ~factor ~min_rows f =
  let f0 = Xnf.Translate.adaptive_factor () and m0 = Xnf.Translate.adaptive_min_rows () in
  Fun.protect
    ~finally:(fun () ->
      Xnf.Translate.set_adaptive_factor f0;
      Xnf.Translate.set_adaptive_min_rows m0)
    (fun () ->
      Xnf.Translate.set_adaptive_factor factor;
      Xnf.Translate.set_adaptive_min_rows min_rows;
      f ())

(* ---- selection matrix: stats health decides cost vs static ---- *)

let test_matrix_missing_stats () =
  let db, api = mk_skew () in
  let def, _ = compose api q_skew in
  let cp = Xnf.Translate.compile_def db def in
  Alcotest.(check bool) "no ANALYZE -> static rules" false (Xnf.Translate.cost_based cp);
  Alcotest.(check strat) "static rules keep the index" Xnf.Translate.S_indexed
    (List.assoc "e0" (Xnf.Translate.edge_strategies cp))

let test_matrix_fresh_stats () =
  let db, api = mk_skew () in
  (* make the skew visible to ANALYZE — and widen the frontier well past
     ndv(g), the regime where per-probe buckets (rows/ndv(g) candidates
     each) cost more than one hash build over the child *)
  drift db;
  ignore
    (Db.exec db
       ("INSERT INTO sp VALUES "
       ^ String.concat ", " (List.init 50 (fun k -> Printf.sprintf "(%d, 5)" (10 + k)))));
  ignore (Db.exec db "ANALYZE");
  let def, _ = compose api q_skew in
  let cp = Xnf.Translate.compile_def db def in
  Alcotest.(check bool) "fresh stats -> cost model" true (Xnf.Translate.cost_based cp);
  Alcotest.(check strat) "cost model sees the skewed bucket" Xnf.Translate.S_hash
    (List.assoc "e0" (Xnf.Translate.edge_strategies cp))

let test_matrix_stale_stats () =
  let db, api = mk_skew () in
  drift db;
  ignore (Db.exec db "ANALYZE");
  ignore (Db.exec db "INSERT INTO sc VALUES (9000, 0, 0)");
  let def, _ = compose api q_skew in
  let cp = Xnf.Translate.compile_def db def in
  Alcotest.(check bool) "DML after ANALYZE -> stale -> static rules" false
    (Xnf.Translate.cost_based cp);
  Alcotest.(check strat) "static fallback" Xnf.Translate.S_indexed
    (List.assoc "e0" (Xnf.Translate.edge_strategies cp))

let switch_t =
  Alcotest.testable (fun ppf (_ : Xnf.Translate.switch_rec) -> Fmt.string ppf "sw") ( = )

let test_force_wins_over_cost () =
  let db, api = mk_skew () in
  drift db;
  ignore (Db.exec db "ANALYZE");
  let def, restrs = compose api q_skew in
  let cp = Xnf.Translate.compile_def ~force:Xnf.Translate.S_indexed db def in
  Alcotest.(check bool) "?force is never cost-based" false (Xnf.Translate.cost_based cp);
  Alcotest.(check strat) "?force=indexed honored despite the stats" Xnf.Translate.S_indexed
    (List.assoc "e0" (Xnf.Translate.edge_strategies cp));
  (* and adaptive switching must leave a forced plan alone *)
  let b0 = s.Xnf.Translate.strategy_switches in
  let _ =
    with_adaptive ~factor:1. ~min_rows:1 (fun () -> Xnf.Translate.execute_def db cp restrs)
  in
  Alcotest.(check int) "no switch on a forced plan" b0 s.Xnf.Translate.strategy_switches;
  Alcotest.(check (list switch_t)) "no switch recorded" [] (Xnf.Translate.switches cp)

(* ---- adaptive fallback ---- *)

let test_adaptive_switch_fires () =
  let db, api = mk_skew () in
  ignore (Db.exec db "ANALYZE");
  let def, restrs = compose api q_skew in
  let cp = Xnf.Translate.compile_def db def in
  Alcotest.(check strat) "uniform data: cost model picks indexed" Xnf.Translate.S_indexed
    (List.assoc "e0" (Xnf.Translate.edge_strategies cp));
  (* inject drift AFTER compile: estimates stand, reality moved *)
  drift db;
  let b0 = s.Xnf.Translate.strategy_switches in
  let cache = Xnf.Translate.execute_def db cp restrs in
  Alcotest.(check int) "exactly one switch" (b0 + 1) s.Xnf.Translate.strategy_switches;
  (match Xnf.Translate.switches cp with
  | [ sw ] ->
    Alcotest.(check string) "switched edge" "e0" sw.Xnf.Translate.sw_edge;
    Alcotest.(check strat) "from the compile-time pick" Xnf.Translate.S_indexed
      sw.Xnf.Translate.sw_from;
    Alcotest.(check strat) "to batch hash" Xnf.Translate.S_hash sw.Xnf.Translate.sw_to
  | sws -> Alcotest.failf "expected one switch, got %d" (List.length sws));
  Alcotest.(check strat) "effective strategy reflects the switch" Xnf.Translate.S_hash
    (List.assoc "e0" (Xnf.Translate.effective_strategies cp));
  (* the switched execution still delivers the correct instance *)
  let oracle = Xnf.Translate.fetch_def ~force:Xnf.Translate.S_generic ~fixpoint:Xnf.Translate.Semi_naive db def restrs in
  (match Fuzz.Oracle.compare_caches oracle cache with
  | None -> ()
  | Some d -> Alcotest.failf "switched instance diverged: %s" d)

let test_adaptive_quiet_within_tolerance () =
  let db, api = mk_skew () in
  ignore (Db.exec db "ANALYZE");
  let def, restrs = compose api q_skew in
  let cp = Xnf.Translate.compile_def db def in
  let b0 = s.Xnf.Translate.strategy_switches in
  (* no drift: observed counters match the estimates, nothing may fire
     even at the default thresholds *)
  let _ = Xnf.Translate.execute_def db cp restrs in
  Alcotest.(check int) "no switch without drift" b0 s.Xnf.Translate.strategy_switches;
  Alcotest.(check int) "switch list empty" 0 (List.length (Xnf.Translate.switches cp));
  Alcotest.(check strat) "effective = compiled" Xnf.Translate.S_indexed
    (List.assoc "e0" (Xnf.Translate.effective_strategies cp))

let test_switch_reused_next_execution () =
  let db, api = mk_skew () in
  ignore (Db.exec db "ANALYZE");
  let def, restrs = compose api q_skew in
  let cp = Xnf.Translate.compile_def db def in
  drift db;
  let _ = Xnf.Translate.execute_def db cp restrs in
  Alcotest.(check int) "switched once" 1 (List.length (Xnf.Translate.switches cp));
  (* a warm re-execution of the same plan starts from the switched
     strategy: the drift is already served by hash, so no new switch *)
  let b0 = s.Xnf.Translate.strategy_switches in
  let cache = Xnf.Translate.execute_def db cp restrs in
  Alcotest.(check int) "no re-switch on the warm run" b0 s.Xnf.Translate.strategy_switches;
  Alcotest.(check int) "still exactly one switch recorded" 1
    (List.length (Xnf.Translate.switches cp));
  Alcotest.(check strat) "hash still effective" Xnf.Translate.S_hash
    (List.assoc "e0" (Xnf.Translate.effective_strategies cp));
  let oracle = Xnf.Translate.fetch_def ~force:Xnf.Translate.S_generic ~fixpoint:Xnf.Translate.Semi_naive db def restrs in
  (match Fuzz.Oracle.compare_caches oracle cache with
  | None -> ()
  | Some d -> Alcotest.failf "warm switched instance diverged: %s" d)

(* ---- advisor consistency with the shared estimator ---- *)

(* tiny frontier, large unique-indexed child: the shared estimator must
   make the planner pick indexed, the advisor raise no PLAN300/PLAN305
   on that plan, and a ?force=hash-batch plan draw PLAN301 recommending
   exactly the planner's unforced pick *)
let mk_unique () =
  let db = Db.create () in
  execs db
    [ "CREATE TABLE bp (k INTEGER PRIMARY KEY, f INTEGER)";
      "CREATE TABLE bc (k INTEGER PRIMARY KEY, f INTEGER)";
      "CREATE INDEX bcix ON bc (f)";
      "INSERT INTO bp VALUES "
      ^ String.concat ", " (List.init 5 (fun k -> Printf.sprintf "(%d, %d)" k k)) ];
  execs db
    (List.init 4 (fun b ->
         "INSERT INTO bc VALUES "
         ^ String.concat ", "
             (List.init 500 (fun i ->
                  let k = (b * 500) + i in
                  Printf.sprintf "(%d, %d)" k k))));
  ignore (Db.exec db "ANALYZE");
  (db, Xnf.Api.create db)

let q_unique =
  "OUT OF p0 AS (SELECT * FROM bp), c0 AS (SELECT * FROM bc), \
   e0 AS (RELATE p0, c0 WHERE (p0.k = c0.f)) TAKE *"

let codes rp = List.map (fun d -> d.Diag.code) (Check.Plan_advisor.diags rp)

let test_advisor_agrees_with_planner () =
  let db, api = mk_unique () in
  let def, _ = compose api q_unique in
  let cp = Xnf.Translate.compile_def db def in
  Alcotest.(check bool) "cost-based" true (Xnf.Translate.cost_based cp);
  Alcotest.(check strat) "planner picks indexed" Xnf.Translate.S_indexed
    (List.assoc "e0" (Xnf.Translate.edge_strategies cp));
  let rp = Check.Plan_advisor.analyze_compiled db cp in
  List.iter
    (fun c ->
      if List.mem c (codes rp) then
        Alcotest.failf "%s raised against the cost-picked plan" c)
    [ "PLAN300"; "PLAN301"; "PLAN305" ];
  (* forcing the strategy the estimator rejects must draw PLAN301, and
     its hint must name the planner's own unforced pick *)
  let forced = Xnf.Translate.compile_def ~force:Xnf.Translate.S_hash db def in
  let rpf = Check.Plan_advisor.analyze_compiled db forced in
  (match
     List.find_opt (fun d -> d.Diag.code = "PLAN301") (Check.Plan_advisor.diags rpf)
   with
  | None -> Alcotest.fail "expected PLAN301 on the forced-worst plan"
  | Some d ->
    Alcotest.(check bool) "PLAN301 recommends the planner's pick" true
      (contains ~affix:"?force=indexed" (Option.value ~default:"" d.Diag.hint)))

let test_advisor_inversion_matches_pick () =
  (* no index anywhere: the shared estimator makes hash both the
     planner's pick and the advisor's PLAN305 inversion subject *)
  let db = Db.create () in
  execs db
    [ "CREATE TABLE ip (k INTEGER PRIMARY KEY, f INTEGER)";
      "CREATE TABLE ic (k INTEGER PRIMARY KEY, f INTEGER)";
      "INSERT INTO ip VALUES "
      ^ String.concat ", " (List.init 8 (fun k -> Printf.sprintf "(%d, %d)" k k)) ];
  execs db
    (List.init 2 (fun b ->
         "INSERT INTO ic VALUES "
         ^ String.concat ", "
             (List.init 400 (fun i ->
                  let k = (b * 400) + i in
                  Printf.sprintf "(%d, %d)" k (k mod 8)))));
  ignore (Db.exec db "ANALYZE");
  let api = Xnf.Api.create db in
  let q =
    "OUT OF p0 AS (SELECT * FROM ip), c0 AS (SELECT * FROM ic), \
     e0 AS (RELATE p0, c0 WHERE (p0.k = c0.f)) TAKE *"
  in
  let def, _ = compose api q in
  let cp = Xnf.Translate.compile_def db def in
  Alcotest.(check strat) "planner picks hash (no index)" Xnf.Translate.S_hash
    (List.assoc "e0" (Xnf.Translate.edge_strategies cp));
  let rp = Check.Plan_advisor.analyze_compiled db cp in
  Alcotest.(check bool) "PLAN305 flags the build-side inversion" true
    (List.mem "PLAN305" (codes rp))

let suite =
  [ Alcotest.test_case "matrix: missing stats -> static" `Quick test_matrix_missing_stats;
    Alcotest.test_case "matrix: fresh stats -> cost pick" `Quick test_matrix_fresh_stats;
    Alcotest.test_case "matrix: stale stats -> static" `Quick test_matrix_stale_stats;
    Alcotest.test_case "?force wins over the cost model" `Quick test_force_wins_over_cost;
    Alcotest.test_case "adaptive switch fires on drift" `Quick test_adaptive_switch_fires;
    Alcotest.test_case "adaptive quiet within tolerance" `Quick test_adaptive_quiet_within_tolerance;
    Alcotest.test_case "switched strategy reused when warm" `Quick test_switch_reused_next_execution;
    Alcotest.test_case "advisor agrees with planner" `Quick test_advisor_agrees_with_planner;
    Alcotest.test_case "PLAN305 subject is the cost pick" `Quick test_advisor_inversion_matches_pick ]
