(* Durability tests: checkpoint round-trip, WAL replay to the last
   commit, torn-tail truncation, CRC rejection, recovery idempotence and
   the cache-invalidation counter deltas recovery promises.

   Crash simulation is byte-level: [Tmpfix.clone_data] copies the
   checkpoint/WAL pair of a live session — exactly what a killed process
   leaves behind — into a second directory, and recovery opens that. *)

open Relational

let c = Obs.Metrics.counter_get
let exec db s = ignore (Db.exec db s)
let xexec api s = ignore (Xnf.Api.exec api s)

let dump db sql =
  (Db.query db sql).Db.rrows |> List.map Row.to_string |> String.concat "\n"

let q_org =
  "OUT OF Xdept AS dept, Xemp AS emp, \
   employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *"

(* a session exercising every durable artifact: base tables, a secondary
   index, a tabular view, an XNF view, ANALYZE statistics *)
let seed_session dir =
  let db = Db.create ~data_dir:dir () in
  let api = Xnf.Api.create db in
  List.iter (exec db)
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 100), (2, 'd2', 200)";
      "INSERT INTO emp VALUES (1, 'c', 900, 1), (2, 'a', 300, 1), (3, 'b', 500, 2), (4, 'a', 100, 2)";
      "CREATE INDEX emp_edno ON emp (edno)";
      "CREATE VIEW rich AS SELECT eno, sal FROM emp WHERE sal > 400";
      "ANALYZE" ];
  xexec api ("CREATE VIEW org AS " ^ q_org);
  (db, api)

let reopen dir =
  let db = Db.create ~data_dir:dir () in
  (db, Xnf.Api.create db)

(* ---- checkpoint round-trip: catalog, tables, views, indexes, stats ---- *)

let test_checkpoint_roundtrip () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db, api = seed_session dir in
  exec db "UPDATE emp SET sal = 950 WHERE eno = 1";
  exec db "DELETE FROM emp WHERE eno = 4";
  ignore (Xnf.Api.checkpoint api);
  Tmpfix.clone_data dir dir2;
  let db2, api2 = reopen dir2 in
  let same sql = Alcotest.(check string) sql (dump db sql) (dump db2 sql) in
  same "SELECT eno, ename, sal, edno FROM emp ORDER BY eno";
  same "SELECT dno, dname, budget FROM dept ORDER BY dno";
  same "SELECT eno, sal FROM rich ORDER BY eno";
  same "SELECT * FROM sys.column_stats ORDER BY 1, 2";
  let idx db =
    List.sort compare (List.map Index.name (Table.indexes (Catalog.table (Db.catalog db) "emp")))
  in
  Alcotest.(check (list string)) "index defs survive" (idx db) (idx db2);
  let cache = Xnf.Api.fetch_string api2 "OUT OF org TAKE *" in
  let live = Xnf.Api.fetch_string api "OUT OF org TAKE *" in
  Alcotest.(check int) "XNF view tuples" (Xnf.Cache.total_tuples live)
    (Xnf.Cache.total_tuples cache);
  Alcotest.(check int) "XNF view connections" (Xnf.Cache.total_conns live)
    (Xnf.Cache.total_conns cache)

(* ---- WAL replay stops at the last commit ---- *)

let test_replay_to_last_commit () =
  Tmpfix.with_dir @@ fun dir ->
  let db = Db.create ~data_dir:dir () in
  exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)";
  exec db "INSERT INTO t VALUES (1, 10)";
  exec db "BEGIN";
  exec db "INSERT INTO t VALUES (2, 20)";
  (* crash with the transaction still open: its work is not durable *)
  Tmpfix.with_dir (fun d2 ->
      Tmpfix.clone_data dir d2;
      let db2 = Db.create ~data_dir:d2 () in
      Alcotest.(check string) "open txn invisible" "(1, 10)"
        (dump db2 "SELECT id, v FROM t ORDER BY id"));
  exec db "COMMIT";
  Tmpfix.with_dir (fun d3 ->
      Tmpfix.clone_data dir d3;
      let db3 = Db.create ~data_dir:d3 () in
      Alcotest.(check string) "committed txn replayed" "(1, 10)\n(2, 20)"
        (dump db3 "SELECT id, v FROM t ORDER BY id"));
  exec db "BEGIN";
  exec db "INSERT INTO t VALUES (3, 30)";
  exec db "ROLLBACK";
  Tmpfix.with_dir (fun d4 ->
      Tmpfix.clone_data dir d4;
      let db4 = Db.create ~data_dir:d4 () in
      Alcotest.(check string) "rolled-back txn skipped" "(1, 10)\n(2, 20)"
        (dump db4 "SELECT id, v FROM t ORDER BY id"))

(* ---- torn tail: a partial final frame is truncated, not fatal ---- *)

let test_torn_tail () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db = Db.create ~data_dir:dir () in
  exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)";
  exec db "INSERT INTO t VALUES (1, 10)";
  exec db "INSERT INTO t VALUES (2, 20)";
  exec db "INSERT INTO t VALUES (3, 30)";
  Tmpfix.clone_data dir dir2;
  let wal2 = Filename.concat dir2 "wal.log" in
  let img = Tmpfix.read_file wal2 in
  (* cut into the last frame: the statement it commits must vanish *)
  let torn = String.sub img 0 (String.length img - 3) in
  Tmpfix.write_file wal2 torn;
  let _, valid = Wal.decode torn in
  let before = c "wal.truncated_bytes" in
  let db2 = Db.create ~data_dir:dir2 () in
  Alcotest.(check int) "torn bytes counted" (String.length torn - valid)
    (c "wal.truncated_bytes" - before);
  Alcotest.(check string) "rolled to last intact commit" "(1, 10)\n(2, 20)"
    (dump db2 "SELECT id, v FROM t ORDER BY id")

(* ---- a CRC mismatch truncates from the corrupted frame on ---- *)

let test_crc_rejection () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db = Db.create ~data_dir:dir () in
  exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)";
  exec db "INSERT INTO t VALUES (1, 10)";
  exec db "INSERT INTO t VALUES (2, 20)";
  exec db "INSERT INTO t VALUES (3, 30)";
  Tmpfix.clone_data dir dir2;
  let wal2 = Filename.concat dir2 "wal.log" in
  let img = Tmpfix.read_file wal2 in
  let bounds = Wal.boundaries img in
  (* flip one payload byte inside the last frame *)
  let last_start = List.nth bounds (List.length bounds - 2) in
  let b = Bytes.of_string img in
  Bytes.set b (last_start + 9) (Char.chr (Char.code (Bytes.get b (last_start + 9)) lxor 0x55));
  Tmpfix.write_file wal2 (Bytes.to_string b);
  let before = c "wal.truncated_bytes" in
  let db2 = Db.create ~data_dir:dir2 () in
  Alcotest.(check int) "corrupt suffix truncated" (String.length img - last_start)
    (c "wal.truncated_bytes" - before);
  Alcotest.(check string) "state from the valid prefix" "(1, 10)\n(2, 20)"
    (dump db2 "SELECT id, v FROM t ORDER BY id")

(* ---- recovering twice is recovering once ---- *)

let test_recover_idempotent () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db, api = seed_session dir in
  ignore (Xnf.Api.checkpoint api);
  exec db "INSERT INTO emp VALUES (5, 'e', 700, 1)";
  exec db "DELETE FROM dept WHERE dno = 2";
  Tmpfix.clone_data dir dir2;
  let db2, api2 = reopen dir2 in
  let snap db =
    dump db "SELECT eno, ename, sal, edno FROM emp ORDER BY eno"
    ^ "|" ^ dump db "SELECT dno FROM dept ORDER BY dno"
    ^ "|" ^ dump db "SELECT eno, sal FROM rich ORDER BY eno"
  in
  let first = snap db2 in
  let s2 = Xnf.Api.recover api2 in
  Alcotest.(check string) "second recover is a no-op on state" first (snap db2);
  let s3 = Xnf.Api.recover api2 in
  Alcotest.(check string) "third recover too" first (snap db2);
  Alcotest.(check int) "replay count is stable" s2.Db.rs_replayed s3.Db.rs_replayed;
  Alcotest.(check int) "nothing left to truncate" 0 s3.Db.rs_truncated_bytes;
  let cache = Xnf.Api.fetch_string api2 "OUT OF org TAKE *" in
  Alcotest.(check bool) "XNF view still fetches" true (Xnf.Cache.total_tuples cache > 0)

(* ---- recovery invalidates stale cached plans: exact counter deltas ---- *)

let test_plan_cache_invalidation () =
  Tmpfix.with_dir @@ fun dir ->
  let _db, api = seed_session dir in
  Xnf.Api.set_plan_cache api 4;
  let compiles () = c "xnf.plan.compiles"
  and hits () = c "xnf.plancache.hits"
  and invals () = c "xnf.plancache.invalidations" in
  let c0 = compiles () and h0 = hits () in
  ignore (Xnf.Api.fetch_string api q_org);
  Alcotest.(check int) "cold fetch compiles once" (c0 + 1) (compiles ());
  ignore (Xnf.Api.fetch_string api q_org);
  Alcotest.(check int) "warm fetch hits the plan cache" (h0 + 1) (hits ());
  Alcotest.(check int) "warm fetch does not recompile" (c0 + 1) (compiles ());
  ignore (Xnf.Api.checkpoint api);
  let c1 = compiles () and i1 = invals () and h1 = hits () in
  ignore (Xnf.Api.recover api);
  ignore (Xnf.Api.fetch_string api q_org);
  Alcotest.(check int) "recovery invalidates exactly one cached plan" (i1 + 1) (invals ());
  Alcotest.(check int) "the stale plan is recompiled exactly once" (c1 + 1) (compiles ());
  Alcotest.(check int) "and was not served from the cache" h1 (hits ());
  ignore (Xnf.Api.fetch_string api q_org);
  Alcotest.(check int) "the recompiled plan hits again" (h1 + 1) (hits ());
  Alcotest.(check int) "with no further compiles" (c1 + 1) (compiles ())

(* ---- XNF view DDL survives as ordered R_ext history ---- *)

let test_xnf_view_drop_order () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db, api = seed_session dir in
  (* compose a second view from the first, then drop the first: the
     replayed history must preserve the order or org2 would fail *)
  xexec api "CREATE VIEW org2 AS OUT OF org WHERE Xdept SUCH THAT budget > 150 TAKE *";
  xexec api "DROP VIEW org";
  Tmpfix.clone_data dir dir2;
  let _db2, api2 = reopen dir2 in
  Alcotest.(check (list string)) "surviving views" [ "org2" ]
    (Xnf.View_registry.names (Xnf.Api.registry api2));
  let live = Xnf.Api.fetch_string api "OUT OF org2 TAKE *" in
  let rec_ = Xnf.Api.fetch_string api2 "OUT OF org2 TAKE *" in
  Alcotest.(check int) "org2 fetch matches" (Xnf.Cache.total_tuples live)
    (Xnf.Cache.total_tuples rec_);
  ignore db

(* ---- sys.recovery surfaces the counters ---- *)

let test_sys_recovery_counters () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db = Db.create ~data_dir:dir () in
  exec db "CREATE TABLE t (id INTEGER PRIMARY KEY)";
  exec db "INSERT INTO t VALUES (1)";
  Tmpfix.clone_data dir dir2;
  let before = c "recovery.recoveries" in
  let db2 = Db.create ~data_dir:dir2 () in
  Alcotest.(check int) "one recovery counted" (before + 1) (c "recovery.recoveries");
  match Db.exec db2 "SELECT * FROM sys.recovery" with
  | Db.Rows { rrows; _ } ->
    Alcotest.(check bool) "sys.recovery has rows" true (List.length rrows >= 4)
  | _ -> Alcotest.fail "sys.recovery did not return rows"

(* ---- dictionary: encode/decode round-trip and checkpoint persistence ---- *)

(* every constructor, plus the edges the id layout carves out: NULL,
   empty and multi-byte strings, inline-range boundary ints, and floats
   that do / do not normalize onto an integer key *)
let gen_dict_value =
  QCheck.Gen.(
    frequency
      [ (1, return Value.Null);
        (1, map (fun b -> Value.Bool b) bool);
        (3, map (fun i -> Value.Int i) (int_range (-1000) 1000));
        ( 1,
          oneofl
            [ Value.Int min_int; Value.Int max_int; Value.Int ((1 lsl 60) - 1);
              Value.Int (1 lsl 60); Value.Int (-(1 lsl 60)); Value.Int (-(1 lsl 60) - 1) ] );
        (2, map (fun f -> Value.Float (Float.of_int f /. 8.)) (int_range (-400) 400));
        ( 1,
          oneofl
            [ Value.Float 0.; Value.Float (-0.); Value.Float Float.nan; Value.Float Float.infinity;
              Value.Float 1e300 ] );
        (2, map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'f') (int_range 0 6)));
        (1, oneofl [ Value.Str ""; Value.Str "n\xc3\xa9"; Value.Str "\xe2\x98\x83" ]) ])

let arb_dict_value = QCheck.make ~print:Value.to_string gen_dict_value

(* constructor-exact equality ([decode] must not merge Int/Float or lose
   NaN); Float.compare treats NaN = NaN and -0. = 0. like the intern table *)
let value_exact a b =
  match a, b with
  | Value.Float x, Value.Float y -> Float.compare x y = 0
  | _ -> a = b

let prop_dict_roundtrip =
  QCheck.Test.make ~name:"dict encode/decode round-trips every constructor" ~count:500
    arb_dict_value (fun v ->
      let id = Dict.encode v in
      value_exact (Dict.decode id) v && Dict.encode v = id)

let gen_dict_pair =
  QCheck.Gen.(
    frequency
      [ (3, pair gen_dict_value gen_dict_value);
        (* force Int/Float cross-equal pairs into the sample *)
        ( 1,
          map
            (fun n -> (Value.Int n, Value.Float (Float.of_int n)))
            (int_range (-1000) 1000) ) ])

let arb_dict_pair =
  QCheck.make
    ~print:(fun (a, b) -> Value.to_string a ^ " / " ^ Value.to_string b)
    gen_dict_pair

let prop_dict_key_equiv =
  QCheck.Test.make ~name:"dict key_cell equality is Value.equal" ~count:500 arb_dict_pair
    (fun (a, b) ->
      Dict.key_cell (Dict.encode a) = Dict.key_cell (Dict.encode b) = Value.equal a b)

let dict_payload dir =
  match Checkpoint.read ~path:(Filename.concat dir "checkpoint.db") with
  | None -> Alcotest.fail "no checkpoint written"
  | Some im -> begin
    match List.assoc_opt "xnf.dict" im.Checkpoint.im_sections with
    | None -> Alcotest.fail "checkpoint carries no xnf.dict section"
    | Some p -> p
  end

let decode_dict_payload p =
  let r = Bincode.reader p in
  let n = Bincode.get_int r in
  Array.init n (fun _ -> Bincode.get_value r)

let test_dict_persistence () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db, api = seed_session dir in
  (* intern through real execution: strings/floats reach the dictionary
     via the encoded caches *)
  ignore (Xnf.Api.fetch_string api q_org);
  exec db "INSERT INTO dept VALUES (3, 'd3-\xc3\xbc', 300)";
  ignore (Xnf.Api.checkpoint api);
  let p1 = dict_payload dir in
  let entries = decode_dict_payload p1 in
  let snap = Dict.snapshot () in
  Alcotest.(check int) "section holds the whole dictionary" (Array.length snap)
    (Array.length entries);
  Array.iteri
    (fun i v ->
      if not (value_exact v snap.(i)) then
        Alcotest.failf "slot %d: section %s <> live %s" i (Value.to_string v)
          (Value.to_string snap.(i)))
    entries;
  (* recovery re-interns the section; in-order restore is idempotent, so
     a second checkpoint must reproduce the section byte-exactly *)
  Tmpfix.clone_data dir dir2;
  let _db2, api2 = reopen dir2 in
  Alcotest.(check int) "recover does not grow the dictionary" (Array.length snap) (Dict.size ());
  ignore (Xnf.Api.checkpoint api2);
  Alcotest.(check string) "dict section round-trips byte-exactly" p1 (dict_payload dir2);
  (* ids never relocate across restore: a pre-recovery id still decodes *)
  let probe = Dict.encode (Value.Str "d3-\xc3\xbc") in
  Dict.restore entries;
  Alcotest.(check bool) "restore keeps existing ids" true
    (value_exact (Dict.decode probe) (Value.Str "d3-\xc3\xbc"))

let qcheck_seed = 0x5eed
let qcheck_case i t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed; i |]) t

let suite =
  [ Alcotest.test_case "checkpoint round-trip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "replay to last commit" `Quick test_replay_to_last_commit;
    Alcotest.test_case "torn tail truncated" `Quick test_torn_tail;
    Alcotest.test_case "CRC corruption rejected" `Quick test_crc_rejection;
    Alcotest.test_case "recovery idempotent" `Quick test_recover_idempotent;
    Alcotest.test_case "plan-cache invalidation deltas" `Quick test_plan_cache_invalidation;
    Alcotest.test_case "XNF view DDL order" `Quick test_xnf_view_drop_order;
    Alcotest.test_case "sys.recovery counters" `Quick test_sys_recovery_counters;
    Alcotest.test_case "dictionary checkpoint persistence" `Quick test_dict_persistence;
    qcheck_case 0 prop_dict_roundtrip;
    qcheck_case 1 prop_dict_key_equiv ]
