(* Durability tests: checkpoint round-trip, WAL replay to the last
   commit, torn-tail truncation, CRC rejection, recovery idempotence and
   the cache-invalidation counter deltas recovery promises.

   Crash simulation is byte-level: [Tmpfix.clone_data] copies the
   checkpoint/WAL pair of a live session — exactly what a killed process
   leaves behind — into a second directory, and recovery opens that. *)

open Relational

let c = Obs.Metrics.counter_get
let exec db s = ignore (Db.exec db s)
let xexec api s = ignore (Xnf.Api.exec api s)

let dump db sql =
  (Db.query db sql).Db.rrows |> List.map Row.to_string |> String.concat "\n"

let q_org =
  "OUT OF Xdept AS dept, Xemp AS emp, \
   employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *"

(* a session exercising every durable artifact: base tables, a secondary
   index, a tabular view, an XNF view, ANALYZE statistics *)
let seed_session dir =
  let db = Db.create ~data_dir:dir () in
  let api = Xnf.Api.create db in
  List.iter (exec db)
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 100), (2, 'd2', 200)";
      "INSERT INTO emp VALUES (1, 'c', 900, 1), (2, 'a', 300, 1), (3, 'b', 500, 2), (4, 'a', 100, 2)";
      "CREATE INDEX emp_edno ON emp (edno)";
      "CREATE VIEW rich AS SELECT eno, sal FROM emp WHERE sal > 400";
      "ANALYZE" ];
  xexec api ("CREATE VIEW org AS " ^ q_org);
  (db, api)

let reopen dir =
  let db = Db.create ~data_dir:dir () in
  (db, Xnf.Api.create db)

(* ---- checkpoint round-trip: catalog, tables, views, indexes, stats ---- *)

let test_checkpoint_roundtrip () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db, api = seed_session dir in
  exec db "UPDATE emp SET sal = 950 WHERE eno = 1";
  exec db "DELETE FROM emp WHERE eno = 4";
  ignore (Xnf.Api.checkpoint api);
  Tmpfix.clone_data dir dir2;
  let db2, api2 = reopen dir2 in
  let same sql = Alcotest.(check string) sql (dump db sql) (dump db2 sql) in
  same "SELECT eno, ename, sal, edno FROM emp ORDER BY eno";
  same "SELECT dno, dname, budget FROM dept ORDER BY dno";
  same "SELECT eno, sal FROM rich ORDER BY eno";
  same "SELECT * FROM sys.column_stats ORDER BY 1, 2";
  let idx db =
    List.sort compare (List.map Index.name (Table.indexes (Catalog.table (Db.catalog db) "emp")))
  in
  Alcotest.(check (list string)) "index defs survive" (idx db) (idx db2);
  let cache = Xnf.Api.fetch_string api2 "OUT OF org TAKE *" in
  let live = Xnf.Api.fetch_string api "OUT OF org TAKE *" in
  Alcotest.(check int) "XNF view tuples" (Xnf.Cache.total_tuples live)
    (Xnf.Cache.total_tuples cache);
  Alcotest.(check int) "XNF view connections" (Xnf.Cache.total_conns live)
    (Xnf.Cache.total_conns cache)

(* ---- WAL replay stops at the last commit ---- *)

let test_replay_to_last_commit () =
  Tmpfix.with_dir @@ fun dir ->
  let db = Db.create ~data_dir:dir () in
  exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)";
  exec db "INSERT INTO t VALUES (1, 10)";
  exec db "BEGIN";
  exec db "INSERT INTO t VALUES (2, 20)";
  (* crash with the transaction still open: its work is not durable *)
  Tmpfix.with_dir (fun d2 ->
      Tmpfix.clone_data dir d2;
      let db2 = Db.create ~data_dir:d2 () in
      Alcotest.(check string) "open txn invisible" "(1, 10)"
        (dump db2 "SELECT id, v FROM t ORDER BY id"));
  exec db "COMMIT";
  Tmpfix.with_dir (fun d3 ->
      Tmpfix.clone_data dir d3;
      let db3 = Db.create ~data_dir:d3 () in
      Alcotest.(check string) "committed txn replayed" "(1, 10)\n(2, 20)"
        (dump db3 "SELECT id, v FROM t ORDER BY id"));
  exec db "BEGIN";
  exec db "INSERT INTO t VALUES (3, 30)";
  exec db "ROLLBACK";
  Tmpfix.with_dir (fun d4 ->
      Tmpfix.clone_data dir d4;
      let db4 = Db.create ~data_dir:d4 () in
      Alcotest.(check string) "rolled-back txn skipped" "(1, 10)\n(2, 20)"
        (dump db4 "SELECT id, v FROM t ORDER BY id"))

(* ---- torn tail: a partial final frame is truncated, not fatal ---- *)

let test_torn_tail () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db = Db.create ~data_dir:dir () in
  exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)";
  exec db "INSERT INTO t VALUES (1, 10)";
  exec db "INSERT INTO t VALUES (2, 20)";
  exec db "INSERT INTO t VALUES (3, 30)";
  Tmpfix.clone_data dir dir2;
  let wal2 = Filename.concat dir2 "wal.log" in
  let img = Tmpfix.read_file wal2 in
  (* cut into the last frame: the statement it commits must vanish *)
  let torn = String.sub img 0 (String.length img - 3) in
  Tmpfix.write_file wal2 torn;
  let _, valid = Wal.decode torn in
  let before = c "wal.truncated_bytes" in
  let db2 = Db.create ~data_dir:dir2 () in
  Alcotest.(check int) "torn bytes counted" (String.length torn - valid)
    (c "wal.truncated_bytes" - before);
  Alcotest.(check string) "rolled to last intact commit" "(1, 10)\n(2, 20)"
    (dump db2 "SELECT id, v FROM t ORDER BY id")

(* ---- a CRC mismatch truncates from the corrupted frame on ---- *)

let test_crc_rejection () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db = Db.create ~data_dir:dir () in
  exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)";
  exec db "INSERT INTO t VALUES (1, 10)";
  exec db "INSERT INTO t VALUES (2, 20)";
  exec db "INSERT INTO t VALUES (3, 30)";
  Tmpfix.clone_data dir dir2;
  let wal2 = Filename.concat dir2 "wal.log" in
  let img = Tmpfix.read_file wal2 in
  let bounds = Wal.boundaries img in
  (* flip one payload byte inside the last frame *)
  let last_start = List.nth bounds (List.length bounds - 2) in
  let b = Bytes.of_string img in
  Bytes.set b (last_start + 9) (Char.chr (Char.code (Bytes.get b (last_start + 9)) lxor 0x55));
  Tmpfix.write_file wal2 (Bytes.to_string b);
  let before = c "wal.truncated_bytes" in
  let db2 = Db.create ~data_dir:dir2 () in
  Alcotest.(check int) "corrupt suffix truncated" (String.length img - last_start)
    (c "wal.truncated_bytes" - before);
  Alcotest.(check string) "state from the valid prefix" "(1, 10)\n(2, 20)"
    (dump db2 "SELECT id, v FROM t ORDER BY id")

(* ---- recovering twice is recovering once ---- *)

let test_recover_idempotent () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db, api = seed_session dir in
  ignore (Xnf.Api.checkpoint api);
  exec db "INSERT INTO emp VALUES (5, 'e', 700, 1)";
  exec db "DELETE FROM dept WHERE dno = 2";
  Tmpfix.clone_data dir dir2;
  let db2, api2 = reopen dir2 in
  let snap db =
    dump db "SELECT eno, ename, sal, edno FROM emp ORDER BY eno"
    ^ "|" ^ dump db "SELECT dno FROM dept ORDER BY dno"
    ^ "|" ^ dump db "SELECT eno, sal FROM rich ORDER BY eno"
  in
  let first = snap db2 in
  let s2 = Xnf.Api.recover api2 in
  Alcotest.(check string) "second recover is a no-op on state" first (snap db2);
  let s3 = Xnf.Api.recover api2 in
  Alcotest.(check string) "third recover too" first (snap db2);
  Alcotest.(check int) "replay count is stable" s2.Db.rs_replayed s3.Db.rs_replayed;
  Alcotest.(check int) "nothing left to truncate" 0 s3.Db.rs_truncated_bytes;
  let cache = Xnf.Api.fetch_string api2 "OUT OF org TAKE *" in
  Alcotest.(check bool) "XNF view still fetches" true (Xnf.Cache.total_tuples cache > 0)

(* ---- recovery invalidates stale cached plans: exact counter deltas ---- *)

let test_plan_cache_invalidation () =
  Tmpfix.with_dir @@ fun dir ->
  let _db, api = seed_session dir in
  Xnf.Api.set_plan_cache api 4;
  let compiles () = c "xnf.plan.compiles"
  and hits () = c "xnf.plancache.hits"
  and invals () = c "xnf.plancache.invalidations" in
  let c0 = compiles () and h0 = hits () in
  ignore (Xnf.Api.fetch_string api q_org);
  Alcotest.(check int) "cold fetch compiles once" (c0 + 1) (compiles ());
  ignore (Xnf.Api.fetch_string api q_org);
  Alcotest.(check int) "warm fetch hits the plan cache" (h0 + 1) (hits ());
  Alcotest.(check int) "warm fetch does not recompile" (c0 + 1) (compiles ());
  ignore (Xnf.Api.checkpoint api);
  let c1 = compiles () and i1 = invals () and h1 = hits () in
  ignore (Xnf.Api.recover api);
  ignore (Xnf.Api.fetch_string api q_org);
  Alcotest.(check int) "recovery invalidates exactly one cached plan" (i1 + 1) (invals ());
  Alcotest.(check int) "the stale plan is recompiled exactly once" (c1 + 1) (compiles ());
  Alcotest.(check int) "and was not served from the cache" h1 (hits ());
  ignore (Xnf.Api.fetch_string api q_org);
  Alcotest.(check int) "the recompiled plan hits again" (h1 + 1) (hits ());
  Alcotest.(check int) "with no further compiles" (c1 + 1) (compiles ())

(* ---- XNF view DDL survives as ordered R_ext history ---- *)

let test_xnf_view_drop_order () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db, api = seed_session dir in
  (* compose a second view from the first, then drop the first: the
     replayed history must preserve the order or org2 would fail *)
  xexec api "CREATE VIEW org2 AS OUT OF org WHERE Xdept SUCH THAT budget > 150 TAKE *";
  xexec api "DROP VIEW org";
  Tmpfix.clone_data dir dir2;
  let _db2, api2 = reopen dir2 in
  Alcotest.(check (list string)) "surviving views" [ "org2" ]
    (Xnf.View_registry.names (Xnf.Api.registry api2));
  let live = Xnf.Api.fetch_string api "OUT OF org2 TAKE *" in
  let rec_ = Xnf.Api.fetch_string api2 "OUT OF org2 TAKE *" in
  Alcotest.(check int) "org2 fetch matches" (Xnf.Cache.total_tuples live)
    (Xnf.Cache.total_tuples rec_);
  ignore db

(* ---- sys.recovery surfaces the counters ---- *)

let test_sys_recovery_counters () =
  Tmpfix.with_dir @@ fun dir ->
  Tmpfix.with_dir @@ fun dir2 ->
  let db = Db.create ~data_dir:dir () in
  exec db "CREATE TABLE t (id INTEGER PRIMARY KEY)";
  exec db "INSERT INTO t VALUES (1)";
  Tmpfix.clone_data dir dir2;
  let before = c "recovery.recoveries" in
  let db2 = Db.create ~data_dir:dir2 () in
  Alcotest.(check int) "one recovery counted" (before + 1) (c "recovery.recoveries");
  match Db.exec db2 "SELECT * FROM sys.recovery" with
  | Db.Rows { rrows; _ } ->
    Alcotest.(check bool) "sys.recovery has rows" true (List.length rrows >= 4)
  | _ -> Alcotest.fail "sys.recovery did not return rows"

let suite =
  [ Alcotest.test_case "checkpoint round-trip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "replay to last commit" `Quick test_replay_to_last_commit;
    Alcotest.test_case "torn tail truncated" `Quick test_torn_tail;
    Alcotest.test_case "CRC corruption rejected" `Quick test_crc_rejection;
    Alcotest.test_case "recovery idempotent" `Quick test_recover_idempotent;
    Alcotest.test_case "plan-cache invalidation deltas" `Quick test_plan_cache_invalidation;
    Alcotest.test_case "XNF view DDL order" `Quick test_xnf_view_drop_order;
    Alcotest.test_case "sys.recovery counters" `Quick test_sys_recovery_counters ]
