(* Observability: metrics registry semantics, span tracing, renderers, and
   end-to-end EXPLAIN ANALYZE through the full stack. *)

open Relational

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let quickstart_api () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'toys', 'NY', 1000), (2, 'tools', 'SF', 2000)";
      "INSERT INTO emp VALUES (10, 'alice', 1500, 1), (11, 'bob', 900, 1), (12, 'carol', 2500, 2)" ];
  let api = Xnf.Api.create db in
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW ALL-DEPS AS \
        OUT OF Xdept AS DEPT, Xemp AS EMP, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) \
        TAKE *");
  (db, api)

(* ---- counters / gauges / histograms ---- *)

let test_counter () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.counter" in
  Alcotest.(check int) "starts at 0" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "incremented" 42 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "by name" 42 (Obs.Metrics.counter_get "test.counter");
  Alcotest.(check int) "absent name reads 0" 0 (Obs.Metrics.counter_get "test.nope");
  let c' = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "memoized by name" 43 (Obs.Metrics.counter_value c)

let test_gauge () =
  Obs.Metrics.reset ();
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "set" 2.5 (Obs.Metrics.gauge_value g);
  Obs.Metrics.set g 1.0;
  Alcotest.(check (float 1e-9)) "overwritten" 1.0 (Obs.Metrics.gauge_value g)

let test_histogram () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram ~bounds:[| 10.; 100. |] "test.hist" in
  List.iter (Obs.Metrics.observe h) [ 5.; 50.; 500.; 7. ];
  Alcotest.(check int) "count" 4 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 562. (Obs.Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "sum by name" 562. (Obs.Metrics.hist_sum_get "test.hist");
  Alcotest.check_raises "bounds must ascend" (Invalid_argument "Metrics.histogram: bounds")
    (fun () -> ignore (Obs.Metrics.histogram ~bounds:[| 2.; 1. |] "test.bad"))

let test_reset () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.reset" in
  Obs.Metrics.incr ~by:7 c;
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Alcotest.(check int) "registration survives reset" 1 (Obs.Metrics.counter_get "test.reset")

let test_renderers () =
  Obs.Metrics.reset ();
  Obs.Metrics.incr ~by:3 (Obs.Metrics.counter "test.render.hits");
  Obs.Metrics.observe (Obs.Metrics.histogram ~bounds:[| 10. |] "test.render.lat") 5.;
  let json = Obs.Metrics.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" needle) true
        (contains ~needle json))
    [ "\"test.render.hits\":3"; "\"test.render.lat\""; "+inf" ];
  let prom = Obs.Metrics.to_prometheus () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "prom has %s" needle) true
        (contains ~needle prom))
    [ "test_render_hits 3"; "test_render_lat_bucket{le=\"10\"} 1";
      "test_render_lat_bucket{le=\"+Inf\"} 1"; "test_render_lat_count 1" ]

(* ---- spans ---- *)

let test_span_nesting () =
  Obs.Trace.clear ();
  let r =
    Obs.Trace.with_span "outer" (fun () ->
        Obs.Trace.with_span "inner-a" (fun () -> Obs.Trace.add_meta "k" "v");
        Obs.Trace.with_span "inner-b" (fun () -> ());
        17)
  in
  Alcotest.(check int) "with_span returns" 17 r;
  match Obs.Trace.last () with
  | None -> Alcotest.fail "no root span recorded"
  | Some sp ->
    Alcotest.(check string) "root name" "outer" sp.Obs.Trace.sp_name;
    Alcotest.(check (list string)) "children in order" [ "inner-a"; "inner-b" ]
      (List.map (fun c -> c.Obs.Trace.sp_name) sp.Obs.Trace.sp_children);
    Alcotest.(check bool) "elapsed recorded" true (sp.Obs.Trace.sp_elapsed_ns >= 0.);
    (match Obs.Trace.find sp "inner-a" with
    | None -> Alcotest.fail "find missed inner-a"
    | Some inner ->
      Alcotest.(check (option string)) "meta" (Some "v") (Obs.Trace.meta inner "k"));
    Alcotest.(check bool) "pp renders names" true
      (contains ~needle:"inner-b" (Obs.Trace.to_string sp))

let test_span_exception_safety () =
  Obs.Trace.clear ();
  (try
     Obs.Trace.with_span "boom" (fun () ->
         Obs.Trace.with_span "child" (fun () -> failwith "expected"))
   with Failure _ -> ());
  match Obs.Trace.last () with
  | None -> Alcotest.fail "span lost on exception"
  | Some sp ->
    Alcotest.(check string) "root closed" "boom" sp.Obs.Trace.sp_name;
    (* the open-span stack must be empty again: a new root records cleanly *)
    Obs.Trace.with_span "after" (fun () -> ());
    match Obs.Trace.last () with
    | Some sp' -> Alcotest.(check string) "stack recovered" "after" sp'.Obs.Trace.sp_name
    | None -> Alcotest.fail "no span after recovery"

let test_span_disabled () =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled false;
  let r = Obs.Trace.with_span "invisible" (fun () -> 5) in
  Obs.Trace.set_enabled true;
  Alcotest.(check int) "body still runs" 5 r;
  Alcotest.(check bool) "nothing recorded" true (Obs.Trace.last () = None)

(* ---- end-to-end ---- *)

let test_explain_analyze_xnf () =
  let _, api = quickstart_api () in
  Obs.Trace.clear ();
  let report = Xnf.Api.explain_analyze api "OUT OF ALL-DEPS TAKE *" in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report has %s" needle) true
        (contains ~needle report))
    [ "xnf.fetch"; "translate"; "cache-fill"; "fixpoint"; "Operators:" ];
  (* every node and edge operator reports a positive actual row count *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "nonzero rows for %s" needle) true
        (contains ~needle report))
    [ "node xdept"; "rows=2"; "node xemp"; "rows=3"; "edge employment"; "conns=3" ]

let test_explain_analyze_sql () =
  let _, api = quickstart_api () in
  let report = Xnf.Api.explain_analyze api "SELECT * FROM emp WHERE sal < 2000" in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report has %s" needle) true
        (contains ~needle report))
    [ "Plan (actual):"; "SeqScan emp"; "rows=2"; "execute"; "(2 rows)" ]

let test_pipeline_counters () =
  let _, api = quickstart_api () in
  Obs.Metrics.reset ();
  let cache = Xnf.Api.fetch_string api "OUT OF ALL-DEPS TAKE *" in
  Alcotest.(check bool) "translate queries counted" true
    (Obs.Metrics.counter_get "xnf.translate.queries" > 0);
  Alcotest.(check bool) "fixpoint rounds counted" true
    (Obs.Metrics.counter_get "xnf.translate.rounds" > 0);
  (* a repeated cursor walk produces navigation hits *)
  let depts = Xnf.Cursor.open_independent cache "xdept" in
  let emps = Xnf.Cursor.open_dependent ~parent:depts (Xnf.Cursor.via "employment") in
  for _ = 1 to 2 do
    Xnf.Cursor.iter (fun _ -> Xnf.Cursor.iter (fun _ -> ()) emps) depts
  done;
  Alcotest.(check bool) "nav hits after walk" true
    (Obs.Metrics.counter_get "xnf.cache.nav_hits" > 0);
  Alcotest.(check bool) "cursor steps counted" true
    (Obs.Metrics.counter_get "xnf.cursor.steps" > 0)

let test_fetch_result_cache () =
  let db, api = quickstart_api () in
  Xnf.Api.set_result_cache api 4;
  Obs.Metrics.reset ();
  let q = "OUT OF ALL-DEPS TAKE *" in
  let c1 = Xnf.Api.fetch_string api q in
  let c2 = Xnf.Api.fetch_string api q in
  Alcotest.(check bool) "second fetch served from cache" true (c1 == c2);
  Alcotest.(check int) "one miss" 1 (Obs.Metrics.counter_get "xnf.fetchcache.misses");
  Alcotest.(check int) "one hit" 1 (Obs.Metrics.counter_get "xnf.fetchcache.hits");
  (* a base-table write invalidates the entry (staleness check) *)
  ignore (Db.exec db "UPDATE emp SET sal = 901 WHERE eno = 11");
  let c3 = Xnf.Api.fetch_string api q in
  Alcotest.(check bool) "stale entry re-fetched" true (c1 != c3);
  Alcotest.(check int) "stale counts as miss" 2
    (Obs.Metrics.counter_get "xnf.fetchcache.misses")

let test_bufpool_metrics () =
  Obs.Metrics.reset ();
  let pool = Buffer_pool.create ~capacity:2 () in
  List.iter (Buffer_pool.access pool) [ 1; 1; 2; 3; 1 ];
  Alcotest.(check int) "pool hits" 1 (Buffer_pool.hits pool);
  Alcotest.(check int) "pool misses" 4 (Buffer_pool.misses pool);
  Alcotest.(check bool) "pool evictions happen" true (Buffer_pool.evictions pool > 0);
  Alcotest.(check int) "global hits mirror" 1 (Obs.Metrics.counter_get "bufpool.hits");
  Alcotest.(check int) "global faults mirror" 4 (Obs.Metrics.counter_get "bufpool.faults")

let suite =
  [ Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "histogram semantics" `Quick test_histogram;
    Alcotest.test_case "reset keeps registrations" `Quick test_reset;
    Alcotest.test_case "json and prometheus renderers" `Quick test_renderers;
    Alcotest.test_case "span nesting and meta" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "tracing can be disabled" `Quick test_span_disabled;
    Alcotest.test_case "explain analyze on a CO query" `Quick test_explain_analyze_xnf;
    Alcotest.test_case "explain analyze on SQL" `Quick test_explain_analyze_sql;
    Alcotest.test_case "pipeline counters" `Quick test_pipeline_counters;
    Alcotest.test_case "fetch-result cache hit/miss/staleness" `Quick test_fetch_result_cache;
    Alcotest.test_case "buffer pool metrics" `Quick test_bufpool_metrics ]
