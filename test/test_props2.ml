(* Property-based tests, part 2: cross-strategy equivalences and
   round-trips on randomized databases. *)

open Relational

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000)

(* a random 3-level FK database, optionally indexed *)
let build ~indexes seed =
  let rng = Workload.Rng.create seed in
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE p (pid INTEGER PRIMARY KEY, tag INTEGER)");
  ignore (Db.exec db "CREATE TABLE c (cid INTEGER PRIMARY KEY, cpid INTEGER, w INTEGER)");
  ignore (Db.exec db "CREATE TABLE g (gid INTEGER PRIMARY KEY, gcid INTEGER)");
  if indexes then begin
    ignore (Db.exec db "CREATE INDEX c_parent ON c (cpid)");
    ignore (Db.exec db "CREATE INDEX g_parent ON g (gcid)")
  end;
  let np = 2 + Workload.Rng.int rng 6 in
  let nc = 2 + Workload.Rng.int rng 15 in
  let ng = 2 + Workload.Rng.int rng 15 in
  for i = 0 to np - 1 do
    ignore (Db.exec db (Printf.sprintf "INSERT INTO p VALUES (%d, %d)" i (Workload.Rng.int rng 2)))
  done;
  for i = 0 to nc - 1 do
    let parent =
      if Workload.Rng.bool rng 0.8 then string_of_int (Workload.Rng.int rng (np + 2)) else "NULL"
    in
    ignore
      (Db.exec db (Printf.sprintf "INSERT INTO c VALUES (%d, %s, %d)" i parent (Workload.Rng.int rng 10)))
  done;
  for i = 0 to ng - 1 do
    ignore
      (Db.exec db (Printf.sprintf "INSERT INTO g VALUES (%d, %d)" i (Workload.Rng.int rng (nc + 2))))
  done;
  db

let co_query =
  "OUT OF Xp AS (SELECT * FROM p WHERE tag = 0), Xc AS C, Xg AS G, \
   pc AS (RELATE Xp, Xc WHERE Xp.pid = Xc.cpid), \
   cg AS (RELATE Xc, Xg WHERE Xc.cid = Xg.gcid) TAKE *"

let node_keys cache node =
  Xnf.Cache.live_tuples (Xnf.Cache.node cache node)
  |> List.map (fun t -> Value.as_int (Xnf.Cache.col t 0))
  |> List.sort compare

(* the translator must compute the same CO through indexed probes and
   through generic engine-planned probes *)
let prop_indexed_equals_generic =
  QCheck.Test.make ~name:"indexed and generic probe paths agree" ~count:40 arb_seed (fun seed ->
      let with_idx = Xnf.Api.fetch_string (Xnf.Api.create (build ~indexes:true seed)) co_query in
      let without = Xnf.Api.fetch_string (Xnf.Api.create (build ~indexes:false seed)) co_query in
      List.for_all
        (fun node -> node_keys with_idx node = node_keys without node)
        [ "xp"; "xc"; "xg" ]
      && Xnf.Cache.total_conns with_idx = Xnf.Cache.total_conns without)

(* rewrite on/off agree on random select-join-aggregate queries *)
let queries =
  [| "SELECT * FROM c WHERE w > 5";
     "SELECT p.pid, c.cid FROM p, c WHERE p.pid = c.cpid AND c.w < 8";
     "SELECT c.w, COUNT(*) FROM c GROUP BY c.w HAVING COUNT(*) >= 1";
     "SELECT p.tag FROM p LEFT JOIN c ON p.pid = c.cpid WHERE p.tag = 0";
     "SELECT DISTINCT cpid FROM c WHERE cpid IS NOT NULL ORDER BY cpid DESC";
     "SELECT pid FROM p WHERE EXISTS (SELECT * FROM c WHERE c.cpid = p.pid AND c.w > 2)";
     "SELECT cid FROM c WHERE cpid IN (SELECT pid FROM p WHERE tag = 1)";
     "SELECT g.gid FROM g JOIN c ON g.gcid = c.cid JOIN p ON c.cpid = p.pid WHERE p.tag = 0" |]

let prop_rewrite_equivalence =
  QCheck.Test.make ~name:"rewrite preserves query results" ~count:60
    (QCheck.pair arb_seed (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 7)))
    (fun (seed, qi) ->
      let db = build ~indexes:true seed in
      let sql = queries.(qi) in
      Db.set_rewrite db true;
      let a = List.sort Row.compare (Db.rows_of db sql) in
      Db.set_rewrite db false;
      let b = List.sort Row.compare (Db.rows_of db sql) in
      List.length a = List.length b && List.for_all2 Row.equal a b)

(* ORDER BY really sorts, under the total order with NULLs first *)
let prop_order_by_sorts =
  QCheck.Test.make ~name:"ORDER BY sorts by the total order" ~count:40 arb_seed (fun seed ->
      let db = build ~indexes:false seed in
      let rows = Db.rows_of db "SELECT cpid FROM c ORDER BY cpid" in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Value.compare_total a.(0) b.(0) <= 0 && sorted rest
        | _ -> true
      in
      sorted rows)

(* udi update round-trip: cache -> base -> fresh fetch sees the value *)
let prop_udi_roundtrip =
  QCheck.Test.make ~name:"udi updates round-trip through the base" ~count:30
    (QCheck.pair arb_seed (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1000)))
    (fun (seed, v) ->
      let db = build ~indexes:true seed in
      let api = Xnf.Api.create db in
      let cache = Xnf.Api.fetch_string api co_query in
      let ni = Xnf.Cache.node cache "xc" in
      match Xnf.Cache.live_tuples ni with
      | [] -> true
      | t :: _ ->
        let ses = Xnf.Api.session api cache in
        Xnf.Udi.update ses ~node:"xc" ~pos:t.Xnf.Cache.t_pos [ ("w", Value.Int v) ];
        let cache2 = Xnf.Api.fetch_string api co_query in
        let ni2 = Xnf.Cache.node cache2 "xc" in
        let key = (Xnf.Cache.col t 0) in
        List.exists
          (fun t2 ->
            Value.equal (Xnf.Cache.col t2 0) key && Value.equal (Xnf.Cache.col t2 2) (Value.Int v))
          (Xnf.Cache.live_tuples ni2))

(* deleting a cached tuple removes it from subsequent fetches *)
let prop_udi_delete_roundtrip =
  QCheck.Test.make ~name:"udi deletes round-trip through the base" ~count:30 arb_seed (fun seed ->
      let db = build ~indexes:true seed in
      let api = Xnf.Api.create db in
      let cache = Xnf.Api.fetch_string api co_query in
      let ni = Xnf.Cache.node cache "xg" in
      match Xnf.Cache.live_tuples ni with
      | [] -> true
      | t :: _ ->
        let key = (Xnf.Cache.col t 0) in
        let ses = Xnf.Api.session api cache in
        Xnf.Udi.delete ses ~node:"xg" ~pos:t.Xnf.Cache.t_pos;
        let cache2 = Xnf.Api.fetch_string api co_query in
        not
          (List.exists
             (fun t2 -> Value.equal (Xnf.Cache.col t2 0) key)
             (Xnf.Cache.live_tuples (Xnf.Cache.node cache2 "xg"))))

(* connections always join live tuples of the right nodes *)
let prop_conns_well_formed =
  QCheck.Test.make ~name:"connections reference live partner tuples" ~count:40 arb_seed
    (fun seed ->
      let db = build ~indexes:true seed in
      let api = Xnf.Api.create db in
      let cache = Xnf.Api.fetch_string api co_query in
      List.for_all
        (fun (_, ei) ->
          let pn = Xnf.Cache.node cache ei.Xnf.Cache.ei_parent in
          let cn = Xnf.Cache.node cache ei.Xnf.Cache.ei_child in
          List.for_all
            (fun c ->
              (Xnf.Cache.tuple pn c.Xnf.Cache.cn_parent).Xnf.Cache.t_live
              && (Xnf.Cache.tuple cn c.Xnf.Cache.cn_child).Xnf.Cache.t_live)
            (Xnf.Cache.conns_live ei))
        cache.Xnf.Cache.c_edges)

(* xnf pretty-printer round-trips on composed random queries *)
let prop_xnf_roundtrip =
  QCheck.Test.make ~name:"XNF pretty-print round-trips" ~count:60 arb_seed (fun seed ->
      let rng = Workload.Rng.create seed in
      let maybe s = if Workload.Rng.bool rng 0.5 then s else "" in
      let text =
        Printf.sprintf
          "OUT OF xp AS (SELECT * FROM p WHERE tag = %d), xc AS C, pc AS (RELATE xp, xc WHERE \
           xp.pid = xc.cpid)%s TAKE %s"
          (Workload.Rng.int rng 2)
          (maybe " WHERE xc v SUCH THAT v.w > 3")
          (if Workload.Rng.bool rng 0.5 then "*" else "xp(*), xc(cid, w), pc")
      in
      let ast1 = Xnf.Xnf_parser.parse_stmt text in
      let ast2 = Xnf.Xnf_parser.parse_stmt (Xnf.Xnf_ast.stmt_to_string ast1) in
      ast1 = ast2)

(* reachability over a recursive CO equals an independently computed
   transitive closure of the FK graph *)
let prop_recursive_closure =
  QCheck.Test.make ~name:"recursive reachability equals transitive closure" ~count:30 arb_seed
    (fun seed ->
      let rng = Workload.Rng.create seed in
      let db = Db.create () in
      ignore (Db.exec db "CREATE TABLE memp (eno INTEGER PRIMARY KEY, mgrno INTEGER, tag INTEGER)");
      ignore (Db.exec db "CREATE INDEX memp_mgr ON memp (mgrno)");
      let n = 5 + Workload.Rng.int rng 40 in
      let mgr = Array.make n (-1) in
      let tag = Array.make n 0 in
      for i = 0 to n - 1 do
        (* parent pointer to an earlier employee, or none *)
        mgr.(i) <- (if i > 0 && Workload.Rng.bool rng 0.8 then Workload.Rng.int rng i else -1);
        tag.(i) <- (if mgr.(i) = -1 && Workload.Rng.bool rng 0.6 then 1 else 0);
        ignore
          (Db.exec db
             (Printf.sprintf "INSERT INTO memp VALUES (%d, %s, %d)" i
                (if mgr.(i) = -1 then "NULL" else string_of_int mgr.(i))
                tag.(i)))
      done;
      (* expected: transitive closure from tagged roots along mgr edges *)
      let reachable = Array.make n false in
      let children = Array.make n [] in
      for i = 0 to n - 1 do
        if mgr.(i) >= 0 then children.(mgr.(i)) <- i :: children.(mgr.(i))
      done;
      let rec visit i =
        if not reachable.(i) then begin
          reachable.(i) <- true;
          List.iter visit children.(i)
        end
      in
      for i = 0 to n - 1 do
        if tag.(i) = 1 then visit i
      done;
      let expected =
        List.filter (fun i -> reachable.(i)) (List.init n Fun.id) |> List.sort compare
      in
      (* actual: the recursive CO *)
      let api = Xnf.Api.create db in
      let cache =
        Xnf.Api.fetch_string api
          "OUT OF Xroot AS (SELECT * FROM memp WHERE tag = 1), Xemp AS MEMP, \
           top AS (RELATE Xroot r, Xemp e WHERE r.eno = e.mgrno), \
           manages AS (RELATE Xemp m, Xemp r WHERE m.eno = r.mgrno) TAKE *"
      in
      let actual =
        (node_keys cache "xroot" @ node_keys cache "xemp") |> List.sort_uniq compare
      in
      actual = expected)

(* a dependent cursor enumerates exactly the adjacency of the cache *)
let prop_dependent_cursor_matches_adjacency =
  QCheck.Test.make ~name:"dependent cursor equals cache adjacency" ~count:30 arb_seed (fun seed ->
      let db = build ~indexes:true seed in
      let api = Xnf.Api.create db in
      let cache = Xnf.Api.fetch_string api co_query in
      let ei = Xnf.Cache.edge cache "pc" in
      let parents = Xnf.Cursor.open_independent cache "xp" in
      let kids = Xnf.Cursor.open_dependent ~parent:parents (Xnf.Cursor.via "pc") in
      let ok = ref true in
      Xnf.Cursor.iter
        (fun p ->
          let via_cursor =
            List.sort compare
              (List.map (fun t -> t.Xnf.Cache.t_pos) (Xnf.Cursor.to_list kids))
          in
          let via_adjacency =
            List.sort compare (Xnf.Cache.children cache ei p.Xnf.Cache.t_pos)
          in
          if via_cursor <> via_adjacency then ok := false)
        parents;
      !ok)

(* COUNT(path) agrees with the equivalent SQL aggregate *)
let prop_count_path_equals_sql =
  QCheck.Test.make ~name:"COUNT(path) equals the SQL count" ~count:30 arb_seed (fun seed ->
      let db = build ~indexes:true seed in
      let api = Xnf.Api.create db in
      let cache =
        Xnf.Api.fetch_string api
          "OUT OF Xp AS P, Xc AS C, pc AS (RELATE Xp, Xc WHERE Xp.pid = Xc.cpid) TAKE *"
      in
      Xnf.Cache.live_tuples (Xnf.Cache.node cache "xp")
      |> List.for_all (fun t ->
             let pid = Value.as_int (Xnf.Cache.col t 0) in
             let env = [ ("v", { Xnf.Path.b_node = "xp"; b_pos = t.Xnf.Cache.t_pos }) ] in
             let count =
               match
                 Xnf.Path.eval_xexpr cache env
                   (Xnf.Xnf_ast.X_count_path
                      { Xnf.Xnf_ast.p_start = "v"; p_steps = [ Xnf.Xnf_ast.Step_edge "pc" ] })
               with
               | Value.Int n -> n
               | _ -> -1
             in
             let sql =
               Value.as_int
                 (List.hd
                    (Db.rows_of db
                       (Printf.sprintf "SELECT COUNT(*) FROM c WHERE cpid = %d" pid)))
                   .(0)
             in
             count = sql))

let suite seed =
  (* offset the per-test indexes so the two property suites draw distinct
     random states from the same session seed *)
  List.mapi
    (fun i t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed; 100 + i |]) t)
    [ prop_indexed_equals_generic; prop_rewrite_equivalence; prop_order_by_sorts;
      prop_udi_roundtrip; prop_udi_delete_roundtrip; prop_conns_well_formed; prop_xnf_roundtrip;
      prop_recursive_closure; prop_dependent_cursor_matches_adjacency; prop_count_path_equals_sql ]
