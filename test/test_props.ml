(* Property-based tests (qcheck, registered as alcotest cases). *)

open Relational

let gen_truth = QCheck.Gen.oneofl [ Value.True; Value.False; Value.Unknown ]

let arb_truth = QCheck.make ~print:(function
  | Value.True -> "T" | Value.False -> "F" | Value.Unknown -> "U")
  gen_truth

let gen_value =
  QCheck.Gen.(
    frequency
      [ (1, return Value.Null);
        (4, map (fun i -> Value.Int i) (int_range (-50) 50));
        (2, map (fun f -> Value.Float (Float.of_int f /. 4.)) (int_range (-50) 50));
        (3, map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 4)));
        (1, map (fun b -> Value.Bool b) bool) ])

let arb_value = QCheck.make ~print:Value.to_string gen_value

let gen_row = QCheck.Gen.(map Array.of_list (list_size (int_range 1 5) gen_value))

let arb_row = QCheck.make ~print:Row.to_string gen_row

(* ---- 3VL laws ---- *)

let prop_and_commutative =
  QCheck.Test.make ~name:"3VL AND commutative" ~count:200 (QCheck.pair arb_truth arb_truth)
    (fun (a, b) -> Value.truth_and a b = Value.truth_and b a)

let prop_de_morgan =
  QCheck.Test.make ~name:"3VL De Morgan" ~count:200 (QCheck.pair arb_truth arb_truth)
    (fun (a, b) ->
      Value.truth_not (Value.truth_and a b)
      = Value.truth_or (Value.truth_not a) (Value.truth_not b))

let prop_or_associative =
  QCheck.Test.make ~name:"3VL OR associative" ~count:200
    (QCheck.triple arb_truth arb_truth arb_truth)
    (fun (a, b, c) ->
      Value.truth_or a (Value.truth_or b c) = Value.truth_or (Value.truth_or a b) c)

(* ---- value ordering ---- *)

let prop_total_order_antisymmetric =
  QCheck.Test.make ~name:"compare_total antisymmetric" ~count:500 (QCheck.pair arb_value arb_value)
    (fun (a, b) -> compare (Value.compare_total a b) 0 = compare 0 (Value.compare_total b a))

let prop_total_order_transitive =
  QCheck.Test.make ~name:"compare_total transitive" ~count:500
    (QCheck.triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
      if Value.compare_total a b <= 0 && Value.compare_total b c <= 0 then
        Value.compare_total a c <= 0
      else true)

let prop_hash_equal =
  QCheck.Test.make ~name:"equal values hash equal" ~count:500 (QCheck.pair arb_value arb_value)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_sql_compare_null =
  QCheck.Test.make ~name:"compare_sql None iff NULL operand" ~count:500
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      Value.compare_sql a b = None = (Value.is_null a || Value.is_null b))

(* ---- rows ---- *)

let prop_row_project_concat =
  QCheck.Test.make ~name:"project of concat reads the right side" ~count:300
    (QCheck.pair arb_row arb_row) (fun (a, b) ->
      let c = Row.concat a b in
      let idx = Array.init (Array.length b) (fun i -> Array.length a + i) in
      Row.equal (Row.project c idx) b)

(* ---- LIKE ---- *)

let prop_like_literal =
  QCheck.Test.make ~name:"LIKE without wildcards is equality" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 6)) (string_of_size (QCheck.Gen.int_range 0 6)))
    (fun (s, p) ->
      let wildcard_free = not (String.exists (fun c -> c = '%' || c = '_') p) in
      QCheck.assume wildcard_free;
      Expr.like_match ~pattern:p s = String.equal s p)

let prop_like_percent_prefix =
  QCheck.Test.make ~name:"'prefix%' matches exactly prefixes" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 4)) (string_of_size (QCheck.Gen.int_range 0 4)))
    (fun (prefix, rest) ->
      QCheck.assume (not (String.exists (fun c -> c = '%' || c = '_') prefix));
      Expr.like_match ~pattern:(prefix ^ "%") (prefix ^ rest))

(* ---- index vs scan agreement under random DML ---- *)

type dml = Ins of int * int | Del of int | Upd of int * int

let gen_dml =
  QCheck.Gen.(
    frequency
      [ (5, map2 (fun k v -> Ins (k, v)) (int_range 0 20) (int_range 0 5));
        (2, map (fun k -> Del k) (int_range 0 40));
        (2, map2 (fun k v -> Upd (k, v)) (int_range 0 40) (int_range 0 5)) ])

let arb_dml_list =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Ins (k, v) -> Printf.sprintf "I(%d,%d)" k v
             | Del k -> Printf.sprintf "D%d" k
             | Upd (k, v) -> Printf.sprintf "U(%d,%d)" k v)
           ops))
    QCheck.Gen.(list_size (int_range 0 60) gen_dml)

let prop_index_scan_agree =
  QCheck.Test.make ~name:"index lookups agree with scans under DML" ~count:100 arb_dml_list
    (fun ops ->
      let t =
        Table.create ~name:"p"
          (Schema.make [ Schema.column "k" Schema.Ty_int; Schema.column "v" Schema.Ty_int ])
      in
      let idx = Table.add_index t ~name:"by_v" ~cols:[| 1 |] Index.Hash in
      List.iter
        (fun op ->
          match op with
          | Ins (k, v) -> ignore (Table.insert t [| Value.Int k; Value.Int v |])
          | Del rowid -> ignore (Table.delete t rowid)
          | Upd (rowid, v) -> begin
            match Table.get t rowid with
            | Some row -> ignore (Table.update t rowid [| row.(0); Value.Int v |])
            | None -> ()
          end)
        ops;
      (* for every v, index hits = scan hits *)
      List.for_all
        (fun v ->
          let via_idx =
            List.sort compare (List.map fst (Table.lookup_index t idx [| Value.Int v |]))
          in
          let via_scan =
            List.of_seq (Table.to_seq t)
            |> List.filter (fun (_, row) -> Value.equal row.(1) (Value.Int v))
            |> List.map fst |> List.sort compare
          in
          via_idx = via_scan)
        [ 0; 1; 2; 3; 4; 5 ])

(* ---- WAL rollback restores state ---- *)

let prop_rollback_restores =
  QCheck.Test.make ~name:"rollback restores table state" ~count:60 arb_dml_list (fun ops ->
      let db = Db.create () in
      ignore (Db.exec db "CREATE TABLE t (k INTEGER, v INTEGER)");
      for i = 0 to 9 do
        ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 2)))
      done;
      let before = List.sort Row.compare (Db.rows_of db "SELECT * FROM t") in
      ignore (Db.exec db "BEGIN");
      let table = Catalog.table (Db.catalog db) "t" in
      List.iter
        (fun op ->
          match op with
          | Ins (k, v) -> ignore (Db.insert_row db table [| Value.Int k; Value.Int v |])
          | Del rowid -> ignore (Db.delete_row db table rowid)
          | Upd (rowid, v) -> begin
            match Table.get table rowid with
            | Some row -> ignore (Db.update_row db table rowid [| row.(0); Value.Int v |])
            | None -> ()
          end)
        ops;
      ignore (Db.exec db "ROLLBACK");
      let after = List.sort Row.compare (Db.rows_of db "SELECT * FROM t") in
      List.length before = List.length after && List.for_all2 Row.equal before after)

(* ---- XNF reachability invariants on random instances ---- *)

let arb_co_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 10000)

let build_random_db seed =
  let rng = Workload.Rng.create seed in
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE p (pid INTEGER PRIMARY KEY, tag INTEGER)");
  ignore (Db.exec db "CREATE TABLE c (cid INTEGER PRIMARY KEY, cpid INTEGER, w INTEGER)");
  ignore (Db.exec db "CREATE TABLE g (gid INTEGER PRIMARY KEY, gcid INTEGER)");
  let np = 2 + Workload.Rng.int rng 6 in
  let nc = 2 + Workload.Rng.int rng 12 in
  let ng = 2 + Workload.Rng.int rng 12 in
  for i = 0 to np - 1 do
    ignore
      (Db.exec db (Printf.sprintf "INSERT INTO p VALUES (%d, %d)" i (Workload.Rng.int rng 2)))
  done;
  for i = 0 to nc - 1 do
    let parent =
      if Workload.Rng.bool rng 0.8 then string_of_int (Workload.Rng.int rng (np + 2)) else "NULL"
    in
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO c VALUES (%d, %s, %d)" i parent (Workload.Rng.int rng 10)))
  done;
  for i = 0 to ng - 1 do
    ignore
      (Db.exec db (Printf.sprintf "INSERT INTO g VALUES (%d, %d)" i (Workload.Rng.int rng (nc + 2))))
  done;
  db

let random_co_query =
  "OUT OF Xp AS (SELECT * FROM p WHERE tag = 0), Xc AS C, Xg AS G, \
   pc AS (RELATE Xp, Xc WHERE Xp.pid = Xc.cpid), \
   cg AS (RELATE Xc, Xg WHERE Xc.cid = Xg.gcid) TAKE *"

let prop_reachability_subset =
  QCheck.Test.make ~name:"reachable extents are subsets of derivations" ~count:40 arb_co_seed
    (fun seed ->
      let db = build_random_db seed in
      let api = Xnf.Api.create db in
      let cache = Xnf.Api.fetch_string api random_co_query in
      (* every xc tuple's parent key appears among the xp keys *)
      let p_keys =
        Xnf.Cache.live_tuples (Xnf.Cache.node cache "xp")
        |> List.map (fun t -> (Xnf.Cache.col t 0))
      in
      Xnf.Cache.live_tuples (Xnf.Cache.node cache "xc")
      |> List.for_all (fun t ->
             List.exists (fun k -> Value.equal k (Xnf.Cache.col t 1)) p_keys))

let prop_every_tuple_reachable =
  QCheck.Test.make ~name:"every non-root tuple has an incoming connection" ~count:40 arb_co_seed
    (fun seed ->
      let db = build_random_db seed in
      let api = Xnf.Api.create db in
      let cache = Xnf.Api.fetch_string api random_co_query in
      List.for_all
        (fun (node, edge) ->
          let ei = Xnf.Cache.edge cache edge in
          Xnf.Cache.live_tuples (Xnf.Cache.node cache node)
          |> List.for_all (fun t -> Xnf.Cache.parents cache ei t.Xnf.Cache.t_pos <> []))
        [ ("xc", "pc"); ("xg", "cg") ])

let prop_shared_equals_unshared =
  QCheck.Test.make ~name:"shared and unshared translation agree" ~count:25 arb_co_seed
    (fun seed ->
      let db = build_random_db seed in
      let api = Xnf.Api.create db in
      let q = Xnf.Xnf_parser.parse_query random_co_query in
      let def, _, _ = Xnf.View_registry.compose (Xnf.Api.registry api) q in
      (* classify up front: the oracle is only defined on DAG schemas *)
      QCheck.assume (Baseline.Naive_translate.supported def);
      let shared = Xnf.Api.fetch api q in
      let naive = Baseline.Naive_translate.extract_unshared db def in
      List.for_all
        (fun (name, rows) ->
          let ni = Xnf.Cache.node shared name in
          let a =
            List.sort Row.compare (List.map (fun t -> (Xnf.Cache.row t)) (Xnf.Cache.live_tuples ni))
          in
          let b = List.sort Row.compare rows in
          List.length a = List.length b && List.for_all2 Row.equal a b)
        naive.Baseline.Naive_translate.node_rows)

let prop_fixpoints_agree =
  QCheck.Test.make ~name:"semi-naive and naive fixpoints agree" ~count:25 arb_co_seed
    (fun seed ->
      let db = build_random_db seed in
      let api = Xnf.Api.create db in
      let q = Xnf.Xnf_parser.parse_query random_co_query in
      let a = Xnf.Api.fetch ~fixpoint:Xnf.Translate.Semi_naive api q in
      let b = Xnf.Api.fetch ~fixpoint:Xnf.Translate.Naive api q in
      List.for_all
        (fun node ->
          Xnf.Cache.live_count (Xnf.Cache.node a node) = Xnf.Cache.live_count (Xnf.Cache.node b node))
        [ "xp"; "xc"; "xg" ])

(* ---- udi connect/disconnect round-trips ----

   One parent and one child component joined by BOTH an FK relationship
   and an M:N USING relationship, so disconnecting either keeps the child
   reachable through the other (disconnect re-applies reachability). *)

let build_two_edge_db seed =
  let rng = Workload.Rng.create (seed + 17) in
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE a (aid INTEGER PRIMARY KEY, tag INTEGER)");
  ignore (Db.exec db "CREATE TABLE b (bid INTEGER PRIMARY KEY, fa INTEGER, v INTEGER)");
  ignore (Db.exec db "CREATE TABLE ab (la INTEGER, lb INTEGER, w INTEGER)");
  let na = 2 + Workload.Rng.int rng 4 in
  let nb = 2 + Workload.Rng.int rng 8 in
  for i = 0 to na - 1 do
    ignore (Db.exec db (Printf.sprintf "INSERT INTO a VALUES (%d, %d)" i (Workload.Rng.int rng 3)))
  done;
  for i = 0 to nb - 1 do
    (* every child has a valid FK parent and exactly one link row, so both
       relationships connect it and (la, lb) pairs stay unique *)
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO b VALUES (%d, %d, %d)" i (Workload.Rng.int rng na)
            (Workload.Rng.int rng 10)));
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO ab VALUES (%d, %d, %d)" (Workload.Rng.int rng na) i
            (Workload.Rng.int rng 5)))
  done;
  db

let two_edge_query =
  "OUT OF xa AS A, xb AS B, fk AS (RELATE xa, xb WHERE xa.aid = xb.fa), mn AS (RELATE xa, xb \
   WITH ATTRIBUTES l.w AS w USING ab l WHERE xa.aid = l.la AND xb.bid = l.lb) TAKE *"

let conn_sig cache edge =
  Xnf.Cache.conns_live (Xnf.Cache.edge cache edge)
  |> List.map (fun c ->
         (c.Xnf.Cache.cn_parent, c.Xnf.Cache.cn_child, Array.to_list (Xnf.Cache.conn_attrs c)))
  |> List.sort compare

let int_query db sql = (List.hd (Db.rows_of db sql)).(0)

let prop_udi_fk_roundtrip =
  QCheck.Test.make ~name:"udi FK disconnect/reconnect restores connections" ~count:30 arb_co_seed
    (fun seed ->
      let db = build_two_edge_db seed in
      let api = Xnf.Api.create db in
      let cache = Xnf.Api.fetch_string api two_edge_query in
      let ses = Xnf.Api.session api cache in
      let before = conn_sig cache "fk" in
      match Xnf.Cache.conns_live (Xnf.Cache.edge cache "fk") with
      | [] -> QCheck.assume_fail ()
      | c :: _ ->
        let parent = c.Xnf.Cache.cn_parent and child = c.Xnf.Cache.cn_child in
        let aid = Xnf.Cache.col (Xnf.Cache.tuple (Xnf.Cache.node cache "xa") parent) 0 in
        let bid = Xnf.Cache.col (Xnf.Cache.tuple (Xnf.Cache.node cache "xb") child) 0 in
        let fa_sql =
          Printf.sprintf "SELECT fa FROM b WHERE bid = %s" (Value.to_sql_literal bid)
        in
        Xnf.Udi.disconnect ses ~edge:"fk" ~parent ~child;
        (* propagation: the base foreign key is nullified... *)
        let nullified = Value.is_null (int_query db fa_sql) in
        (* ...and the child survived through the mn relationship *)
        let survived = (Xnf.Cache.tuple (Xnf.Cache.node cache "xb") child).Xnf.Cache.t_live in
        Xnf.Udi.connect ses ~edge:"fk" ~parent ~child ();
        let restored = Value.equal (int_query db fa_sql) aid in
        nullified && survived && restored && conn_sig cache "fk" = before)

let prop_udi_mn_roundtrip =
  QCheck.Test.make ~name:"udi M:N disconnect/reconnect restores connections" ~count:30 arb_co_seed
    (fun seed ->
      let db = build_two_edge_db seed in
      let api = Xnf.Api.create db in
      let cache = Xnf.Api.fetch_string api two_edge_query in
      let ses = Xnf.Api.session api cache in
      let before = conn_sig cache "mn" in
      match Xnf.Cache.conns_live (Xnf.Cache.edge cache "mn") with
      | [] -> QCheck.assume_fail ()
      | c :: _ ->
        let parent = c.Xnf.Cache.cn_parent and child = c.Xnf.Cache.cn_child in
        let w = (Xnf.Cache.conn_attrs c).(0) in
        let aid = Xnf.Cache.col (Xnf.Cache.tuple (Xnf.Cache.node cache "xa") parent) 0 in
        let bid = Xnf.Cache.col (Xnf.Cache.tuple (Xnf.Cache.node cache "xb") child) 0 in
        let link_sql =
          Printf.sprintf "SELECT COUNT(*) FROM ab WHERE la = %s AND lb = %s"
            (Value.to_sql_literal aid) (Value.to_sql_literal bid)
        in
        Xnf.Udi.disconnect ses ~edge:"mn" ~parent ~child;
        (* propagation: the link row is gone... *)
        let deleted = Value.equal (int_query db link_sql) (Value.Int 0) in
        (* ...and the child survived through the fk relationship *)
        let survived = (Xnf.Cache.tuple (Xnf.Cache.node cache "xb") child).Xnf.Cache.t_live in
        Xnf.Udi.connect ses ~edge:"mn" ~parent ~child ~attrs:[ ("w", w) ] ();
        let restored = Value.equal (int_query db link_sql) (Value.Int 1) in
        deleted && survived && restored && conn_sig cache "mn" = before)

(* the qcheck random state is derived from one session seed (printed by
   the runner, settable via QCHECK_SEED) plus the test's position, so any
   failure reproduces from CI logs *)
let suite seed =
  List.mapi
    (fun i t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed; i |]) t)
    [ prop_and_commutative; prop_de_morgan; prop_or_associative; prop_total_order_antisymmetric;
      prop_total_order_transitive; prop_hash_equal; prop_sql_compare_null; prop_row_project_concat;
      prop_like_literal; prop_like_percent_prefix; prop_index_scan_agree; prop_rollback_restores;
      prop_reachability_subset; prop_every_tuple_reachable; prop_shared_equals_unshared;
      prop_fixpoints_agree; prop_udi_fk_roundtrip; prop_udi_mn_roundtrip ]
