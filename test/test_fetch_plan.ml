(* Prepared fetch plans and the plan cache: warm-hit behavior, the DDL
   invalidation matrix (what must and must not invalidate a cached plan),
   parameter binding, and LRU eviction — with the xnf.plancache.* /
   xnf.plan.compiles observability counters asserted throughout. *)

open Relational

let hits () = Obs.Metrics.counter_get "xnf.plancache.hits"
let misses () = Obs.Metrics.counter_get "xnf.plancache.misses"
let invalidations () = Obs.Metrics.counter_get "xnf.plancache.invalidations"
let evictions () = Obs.Metrics.counter_get "xnf.plancache.evictions"
let compiles () = Obs.Metrics.counter_get "xnf.plan.compiles"

let mk () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 100), (2, 'd2', 200)";
      "INSERT INTO emp VALUES (1, 'c', 900, 1), (2, 'a', 300, 1), (3, 'b', 500, 2), (4, 'a', 100, 2)" ];
  let api = Xnf.Api.create db in
  Xnf.Api.set_plan_cache api 8;
  (db, api)

let q_all =
  "OUT OF Xdept AS DEPT, Xemp AS EMP, \
   employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *"

let live_rows cache node =
  List.map (fun t -> Array.to_list (Xnf.Cache.row t)) (Xnf.Cache.live_tuples (Xnf.Cache.node cache node))

(* ---- warm hits ---- *)

let test_warm_hit () =
  let _, api = mk () in
  let c0 = compiles () and h0 = hits () and m0 = misses () in
  let a = Xnf.Api.fetch_string api q_all in
  Alcotest.(check int) "first fetch compiles" (c0 + 1) (compiles ());
  Alcotest.(check int) "first fetch misses" (m0 + 1) (misses ());
  let b = Xnf.Api.fetch_string api q_all in
  Alcotest.(check int) "second fetch hits" (h0 + 1) (hits ());
  Alcotest.(check int) "no recompilation" (c0 + 1) (compiles ());
  Alcotest.(check int) "same instance: xemp" (List.length (live_rows a "xemp"))
    (List.length (live_rows b "xemp"));
  Alcotest.(check bool) "same rows" true (live_rows a "xemp" = live_rows b "xemp")

let test_disabled_cache_recompiles () =
  let _, api = mk () in
  Xnf.Api.set_plan_cache api 0;
  let c0 = compiles () and h0 = hits () in
  ignore (Xnf.Api.fetch_string api q_all);
  ignore (Xnf.Api.fetch_string api q_all);
  Alcotest.(check int) "no hits when disabled" h0 (hits ());
  (* the 0-capacity path takes the uncached Translate.fetch route *)
  Alcotest.(check int) "no plan compiles when disabled" c0 (compiles ())

(* ---- the invalidation matrix: what MUST invalidate ---- *)

let test_create_index_invalidates () =
  let db, api = mk () in
  let i0 = invalidations () and c0 = compiles () in
  ignore (Xnf.Api.fetch_string api q_all);
  ignore (Db.exec db "CREATE INDEX iedno ON emp (edno)");
  let cache = Xnf.Api.fetch_string api q_all in
  Alcotest.(check int) "invalidated" (i0 + 1) (invalidations ());
  Alcotest.(check int) "recompiled" (c0 + 2) (compiles ());
  Alcotest.(check int) "instance intact" 4 (List.length (live_rows cache "xemp"))

let test_drop_index_invalidates () =
  let db, api = mk () in
  ignore (Db.exec db "CREATE INDEX iedno ON emp (edno)");
  ignore (Xnf.Api.fetch_string api q_all);
  let i0 = invalidations () in
  ignore (Db.exec db "DROP INDEX iedno");
  ignore (Xnf.Api.fetch_string api q_all);
  Alcotest.(check int) "invalidated" (i0 + 1) (invalidations ())

let test_base_table_ddl_invalidates () =
  let db, api = mk () in
  ignore (Xnf.Api.fetch_string api q_all);
  let i0 = invalidations () in
  (* any catalog change conservatively invalidates, even an unrelated
     table: plans snapshot the catalog version *)
  ignore (Db.exec db "CREATE TABLE scratch (x INTEGER)");
  ignore (Xnf.Api.fetch_string api q_all);
  Alcotest.(check int) "create table invalidates" (i0 + 1) (invalidations ());
  let i1 = invalidations () in
  ignore (Db.exec db "DROP TABLE scratch");
  ignore (Xnf.Api.fetch_string api q_all);
  Alcotest.(check int) "drop table invalidates" (i1 + 1) (invalidations ())

let test_view_redefinition_invalidates () =
  let _, api = mk () in
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW V AS OUT OF Xdept AS DEPT, Xemp AS EMP, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *");
  let cache = Xnf.Api.fetch_string api "OUT OF V TAKE *" in
  Alcotest.(check int) "view fetch" 4 (List.length (live_rows cache "xemp"));
  let i0 = invalidations () in
  (* redefinition = drop + create; both bump the registry version *)
  ignore (Xnf.Api.exec api "DROP VIEW V");
  ignore
    (Xnf.Api.exec api
       "CREATE VIEW V AS OUT OF Xdept AS DEPT, Xemp AS (SELECT * FROM EMP WHERE sal > 400), \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *");
  let cache = Xnf.Api.fetch_string api "OUT OF V TAKE *" in
  Alcotest.(check int) "invalidated" (i0 + 1) (invalidations ());
  Alcotest.(check int) "new definition is served" 2 (List.length (live_rows cache "xemp"))

(* ---- the invalidation matrix: what must NOT invalidate ---- *)

let test_dml_does_not_invalidate () =
  let db, api = mk () in
  ignore (Xnf.Api.fetch_string api q_all);
  let i0 = invalidations () and h0 = hits () and c0 = compiles () in
  ignore (Db.exec db "INSERT INTO emp VALUES (5, 'e', 700, 1)");
  let cache = Xnf.Api.fetch_string api q_all in
  Alcotest.(check int) "no invalidation" i0 (invalidations ());
  Alcotest.(check int) "served warm" (h0 + 1) (hits ());
  Alcotest.(check int) "no recompilation" c0 (compiles ());
  (* the warm plan still re-reads base data *)
  Alcotest.(check int) "new row visible" 5 (List.length (live_rows cache "xemp"))

let test_udi_write_does_not_invalidate () =
  let _, api = mk () in
  let cache = Xnf.Api.fetch_string api q_all in
  let i0 = invalidations () and c0 = compiles () in
  (* a CO-level write through the udi layer: raises emp 1's salary *)
  let ses = Xnf.Api.session api cache in
  let ni = Xnf.Cache.node cache "xemp" in
  let pos = (List.hd (Xnf.Cache.live_tuples ni)).Xnf.Cache.t_pos in
  Xnf.Udi.update ses ~node:"xemp" ~pos [ ("sal", Value.Int 1000) ];
  let cache' = Xnf.Api.fetch_string api q_all in
  Alcotest.(check int) "no invalidation" i0 (invalidations ());
  Alcotest.(check int) "no recompilation" c0 (compiles ());
  Alcotest.(check bool) "write visible on refetch" true
    (List.exists (fun r -> List.nth r 2 = Value.Int 1000) (live_rows cache' "xemp"))

(* ---- PREPARE / EXECUTE ---- *)

let test_prepare_execute_params () =
  let _, api = mk () in
  (match
     Xnf.Api.exec api
       "PREPARE pd AS OUT OF Xdept AS DEPT, Xemp AS EMP, \
        employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) \
        WHERE Xdept SUCH THAT dno = ? TAKE *"
   with
  | Xnf.Api.Prepared name -> Alcotest.(check string) "prepared" "pd" name
  | _ -> Alcotest.fail "expected Prepared outcome");
  let run v =
    match Xnf.Api.exec api (Printf.sprintf "EXECUTE pd (%d)" v) with
    | Xnf.Api.Fetched cache -> cache
    | _ -> Alcotest.fail "expected Fetched outcome"
  in
  Alcotest.(check int) "dno=1 keeps 2 emps" 2 (List.length (live_rows (run 1) "xemp"));
  Alcotest.(check int) "dno=2 keeps 2 emps" 2 (List.length (live_rows (run 2) "xemp"));
  Alcotest.(check int) "dno=9 keeps none" 0 (List.length (live_rows (run 9) "xemp"));
  let one = live_rows (run 1) "xemp" and two = live_rows (run 2) "xemp" in
  Alcotest.(check bool) "bindings differ" true (one <> two)

let test_prepared_survives_dml_revalidates_after_ddl () =
  let db, api = mk () in
  ignore
    (Xnf.Api.exec api
       "PREPARE pq AS OUT OF Xemp AS EMP WHERE Xemp SUCH THAT sal > ? TAKE *");
  let run v =
    match Xnf.Api.exec api (Printf.sprintf "EXECUTE pq (%d)" v) with
    | Xnf.Api.Fetched cache -> List.length (live_rows cache "xemp")
    | _ -> Alcotest.fail "expected Fetched outcome"
  in
  Alcotest.(check int) "sal>400" 2 (run 400);
  ignore (Db.exec db "INSERT INTO emp VALUES (5, 'e', 700, 1)");
  Alcotest.(check int) "DML visible without recompile" 3 (run 400);
  let i0 = invalidations () in
  ignore (Db.exec db "CREATE INDEX isal ON emp (sal)");
  Alcotest.(check int) "still correct after DDL" 3 (run 400);
  Alcotest.(check int) "prepared plan revalidated" (i0 + 1) (invalidations ())

let test_execute_errors () =
  let _, api = mk () in
  ignore
    (Xnf.Api.exec api
       "PREPARE pq AS OUT OF Xemp AS EMP WHERE Xemp SUCH THAT sal > ? TAKE *");
  (try
     ignore (Xnf.Api.exec api "EXECUTE pq");
     Alcotest.fail "expected arity error"
   with Xnf.Api.Api_error _ -> ());
  (try
     ignore (Xnf.Api.exec api "EXECUTE pq (1, 2)");
     Alcotest.fail "expected arity error"
   with Xnf.Api.Api_error _ -> ());
  try
    ignore (Xnf.Api.exec api "EXECUTE nosuch (1)");
    Alcotest.fail "expected unknown-name error"
  with Xnf.Api.Api_error _ -> ()

(* ---- LRU eviction ---- *)

let test_lru_eviction () =
  let _, api = mk () in
  Xnf.Api.set_plan_cache api 2;
  let e0 = evictions () in
  ignore (Xnf.Api.fetch_string api "OUT OF Xemp AS EMP TAKE *");
  ignore (Xnf.Api.fetch_string api "OUT OF Xdept AS DEPT TAKE *");
  Alcotest.(check int) "within capacity" e0 (evictions ());
  ignore (Xnf.Api.fetch_string api q_all);
  Alcotest.(check int) "third distinct query evicts" (e0 + 1) (evictions ());
  Alcotest.(check int) "capacity respected" 2 (List.length (Xnf.Api.plans api));
  (* the evicted (least recently used) query now misses and recompiles *)
  let m0 = misses () in
  ignore (Xnf.Api.fetch_string api "OUT OF Xemp AS EMP TAKE *");
  Alcotest.(check int) "LRU entry was evicted" (m0 + 1) (misses ())

let suite =
  [ Alcotest.test_case "warm fetches hit the plan cache" `Quick test_warm_hit;
    Alcotest.test_case "disabled cache keeps fetch-per-call" `Quick test_disabled_cache_recompiles;
    Alcotest.test_case "CREATE INDEX invalidates" `Quick test_create_index_invalidates;
    Alcotest.test_case "DROP INDEX invalidates" `Quick test_drop_index_invalidates;
    Alcotest.test_case "base-table DDL invalidates" `Quick test_base_table_ddl_invalidates;
    Alcotest.test_case "XNF view redefinition invalidates" `Quick test_view_redefinition_invalidates;
    Alcotest.test_case "DML does not invalidate" `Quick test_dml_does_not_invalidate;
    Alcotest.test_case "udi writes do not invalidate" `Quick test_udi_write_does_not_invalidate;
    Alcotest.test_case "PREPARE/EXECUTE binds parameters" `Quick test_prepare_execute_params;
    Alcotest.test_case "prepared plans survive DML, revalidate after DDL" `Quick
      test_prepared_survives_dml_revalidates_after_ddl;
    Alcotest.test_case "EXECUTE arity and name errors" `Quick test_execute_errors;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction ]
