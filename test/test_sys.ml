(* The self-observing engine: sys.* virtual catalog views scanned and
   joined through the ordinary SQL pipeline, ANALYZE statistics (exact
   NDV / min / max / null fraction, equi-depth histograms, staleness
   flagging) and their consumption by the cost model, per-statement
   aggregation with the slow-query log, and the supporting Metrics
   additions (interpolated quantiles, prefix-filtered dumps). *)

open Relational

let rows db sql =
  match Db.exec db sql with
  | Db.Rows r -> r.Db.rrows
  | _ -> Alcotest.fail ("expected rows from: " ^ sql)

let one_int db sql =
  match rows db sql with
  | [ [| Value.Int n |] ] -> n
  | _ -> Alcotest.fail ("expected a single int from: " ^ sql)

let mk () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 100), (2, 'd2', 200)";
      "INSERT INTO emp VALUES (1, 'c', 900, 1), (2, 'a', 300, 1), (3, 'b', 500, 2), (4, 'a', 100, 2)" ];
  let api = Xnf.Api.create db in
  (db, api)

let q_all =
  "OUT OF Xdept AS DEPT, Xemp AS EMP, \
   employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *"

(* ---- every sys.* view is scannable through the normal pipeline ---- *)

let test_scan_all_views () =
  let db, api = mk () in
  ignore (Db.exec db "ANALYZE");
  ignore (Xnf.Api.fetch_string api q_all);
  List.iter
    (fun name ->
      match Db.exec db (Printf.sprintf "SELECT * FROM %s" name) with
      | Db.Rows _ -> ()
      | _ -> Alcotest.fail ("scan of " ^ name ^ " did not return rows"))
    (Catalog.virtual_names (Db.catalog db));
  (* the registration set is exactly the documented twelve *)
  Alcotest.(check (list string)) "registered views"
    [ "sys.advisories"; "sys.column_stats"; "sys.fetch_cache"; "sys.histograms"; "sys.indexes";
      "sys.metrics"; "sys.plans"; "sys.recovery"; "sys.slow_queries"; "sys.spans";
      "sys.statements"; "sys.tables" ]
    (Catalog.virtual_names (Db.catalog db))

let test_join_with_base_table () =
  let db, _ = mk () in
  (* join a sys view against a base table: every dept row pairs with its
     catalog entry *)
  let n =
    one_int db
      "SELECT count(*) FROM dept d, sys.tables t WHERE t.name = 'dept' AND d.budget > 0"
  in
  Alcotest.(check int) "dept rows joined to sys.tables" 2 n;
  let card =
    one_int db "SELECT t.rows FROM sys.tables t WHERE t.name = 'emp'"
  in
  Alcotest.(check int) "sys.tables live cardinality" 4 card

let test_metrics_view () =
  let db, _ = mk () in
  ignore (Db.exec db "SELECT 1");
  let n =
    one_int db
      "SELECT count(*) FROM sys.metrics WHERE name = 'db.stmts' AND kind = 'counter' AND value > 0"
  in
  Alcotest.(check int) "db.stmts visible via SQL" 1 n

let test_spans_view () =
  let db, _ = mk () in
  ignore (Db.exec db "SELECT count(*) FROM emp");
  let n = one_int db "SELECT count(*) FROM sys.spans WHERE depth = 0" in
  Alcotest.(check bool) "root spans recorded" true (n >= 1)

let test_histograms_view () =
  let db, _ = mk () in
  ignore (Db.exec db "SELECT count(*) FROM emp");
  (* per-bucket counts must sum back to the advertised total *)
  let ok =
    one_int db
      "SELECT count(*) FROM sys.histograms h WHERE h.name = 'span.sql.query' AND h.total > 0"
  in
  Alcotest.(check bool) "exec latency histogram has buckets" true (ok >= 1)

(* ---- ANALYZE: exact statistics and staleness ---- *)

let check_float what exp got =
  Alcotest.(check bool) what true (Float.abs (exp -. got) < 1e-9)

let test_analyze_exact () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INTEGER, b VARCHAR)");
  ignore
    (Db.exec db
       "INSERT INTO t VALUES (1, 'x'), (2, 'x'), (2, NULL), (5, 'y'), (NULL, NULL), (5, 'x')");
  ignore (Db.exec db "ANALYZE t");
  let st =
    match Catalog.stats_opt (Db.catalog db) "t" with
    | Some st -> st
    | None -> Alcotest.fail "ANALYZE stored no snapshot"
  in
  Alcotest.(check int) "rowcount" 6 st.Stats.ts_rowcount;
  let a = st.Stats.ts_cols.(0) and b = st.Stats.ts_cols.(1) in
  Alcotest.(check int) "a ndv" 3 a.Stats.cs_ndv;
  Alcotest.(check bool) "a min" true (Value.equal a.Stats.cs_min (Value.Int 1));
  Alcotest.(check bool) "a max" true (Value.equal a.Stats.cs_max (Value.Int 5));
  Alcotest.(check int) "a nulls" 1 a.Stats.cs_nulls;
  Alcotest.(check int) "b ndv" 2 b.Stats.cs_ndv;
  Alcotest.(check int) "b nulls" 2 b.Stats.cs_nulls;
  check_float "a null_frac" (1. /. 6.) (Stats.null_frac st a);
  check_float "b null_frac" (2. /. 6.) (Stats.null_frac st b);
  (* surfaced through the view, flagged fresh *)
  let ndv =
    one_int db "SELECT ndv FROM sys.column_stats WHERE table_name = 't' AND column_name = 'a'"
  in
  Alcotest.(check int) "sys.column_stats ndv" 3 ndv;
  let stale =
    one_int db
      "SELECT count(*) FROM sys.column_stats WHERE table_name = 't' AND stale = TRUE"
  in
  Alcotest.(check int) "no stale columns right after ANALYZE" 0 stale

let test_stale_flag_and_fresh_lookup () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (1), (2), (3)");
  ignore (Db.exec db "ANALYZE t");
  Alcotest.(check bool) "fresh right after ANALYZE" true
    (Catalog.fresh_stats_opt (Db.catalog db) "t" <> None);
  ignore (Db.exec db "INSERT INTO t VALUES (4)");
  (* version moved: snapshot kept, flagged stale, never served as fresh *)
  Alcotest.(check bool) "stale snapshot not served as fresh" true
    (Catalog.fresh_stats_opt (Db.catalog db) "t" = None);
  Alcotest.(check bool) "stale snapshot still stored" true
    (Catalog.stats_opt (Db.catalog db) "t" <> None);
  let stale = one_int db "SELECT count(*) FROM sys.column_stats WHERE stale = TRUE" in
  Alcotest.(check int) "flagged stale in the view" 1 stale;
  ignore (Db.exec db "ANALYZE t");
  let stale = one_int db "SELECT count(*) FROM sys.column_stats WHERE stale = TRUE" in
  Alcotest.(check int) "re-ANALYZE clears the flag" 0 stale

let test_cost_consumes_stats () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (n INTEGER)");
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "INSERT INTO t VALUES ";
  for i = 1 to 1000 do
    if i > 1 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "(%d)" i)
  done;
  ignore (Db.exec db (Buffer.contents buf));
  let cat = Db.catalog db in
  let access = Qgm.Access { table = "t"; alias = "t" } in
  let sel op lit =
    Qgm.Select { input = access; pred = Expr.Cmp (op, Expr.Col 0, Expr.Lit (Value.Int lit)) }
  in
  (* without statistics: the textbook default inequality selectivity *)
  let before = Cost.estimate cat (sel Expr.Le 500) in
  Alcotest.(check bool) "default 0.3 before ANALYZE" true (Float.abs (before -. 300.) < 1e-6);
  ignore (Db.exec db "ANALYZE t");
  (* with a fresh histogram: n <= 500 hits exactly half the buckets *)
  let after = Cost.estimate cat (sel Expr.Le 500) in
  Alcotest.(check bool) "histogram selectivity 0.5 after ANALYZE" true
    (Float.abs (after -. 500.) < 1e-6);
  (* equality uses the exact NDV from the snapshot *)
  let eq = Cost.estimate cat (sel Expr.Eq 7) in
  Alcotest.(check bool) "NDV-driven equality selectivity" true (Float.abs (eq -. 1.) < 1e-6);
  (* DML stales the snapshot: estimation falls back to the default *)
  ignore (Db.exec db "INSERT INTO t VALUES (1001)");
  let stale = Cost.estimate cat (sel Expr.Le 500) in
  Alcotest.(check bool) "stale stats are not consulted" true
    (Float.abs (stale -. (1001. *. 0.3)) < 1e-6)

let test_null_frac_selectivity () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (1), (NULL), (NULL), (NULL), (2), (3), (4), (5)");
  ignore (Db.exec db "ANALYZE t");
  let cat = Db.catalog db in
  let sel =
    Qgm.Select
      { input = Qgm.Access { table = "t"; alias = "t" }; pred = Expr.Is_null (Expr.Col 0) }
  in
  let est = Cost.estimate cat sel in
  (* 3 of 8 rows are NULL: the estimate uses the measured fraction *)
  Alcotest.(check bool) "IS NULL uses measured null fraction" true
    (Float.abs (est -. 3.) < 1e-6)

(* ---- DDL reflection ---- *)

let test_ddl_reflection () =
  let db, _ = mk () in
  ignore (Db.exec db "ANALYZE dept");
  ignore (Db.exec db "CREATE TABLE extra (x INTEGER)");
  Alcotest.(check int) "CREATE TABLE visible immediately" 1
    (one_int db "SELECT count(*) FROM sys.tables WHERE name = 'extra'");
  ignore (Db.exec db "DROP TABLE extra");
  Alcotest.(check int) "DROP TABLE visible immediately" 0
    (one_int db "SELECT count(*) FROM sys.tables WHERE name = 'extra'");
  ignore (Db.exec db "CREATE INDEX emp_edno ON emp (edno)");
  Alcotest.(check int) "CREATE INDEX visible immediately" 1
    (one_int db "SELECT count(*) FROM sys.indexes WHERE index_name = 'emp_edno'");
  ignore (Db.exec db "DROP INDEX emp_edno");
  Alcotest.(check int) "DROP INDEX visible immediately" 0
    (one_int db "SELECT count(*) FROM sys.indexes WHERE index_name = 'emp_edno'");
  (* dropping an analyzed table drops its statistics rows with it *)
  Alcotest.(check bool) "dept stats present" true
    (one_int db "SELECT count(*) FROM sys.column_stats WHERE table_name = 'dept'" > 0);
  ignore (Db.exec db "DROP TABLE dept");
  Alcotest.(check int) "dropped table's stats rows are gone" 0
    (one_int db "SELECT count(*) FROM sys.column_stats WHERE table_name = 'dept'")

let test_sys_plans_invalidation () =
  let db, api = mk () in
  Xnf.Api.set_plan_cache api 8;
  ignore (Xnf.Api.fetch_string api q_all);
  Alcotest.(check int) "cached plan visible and valid" 1
    (one_int db "SELECT count(*) FROM sys.plans WHERE source = 'cache' AND valid = TRUE");
  (* DDL moves the index epoch: the invalidated row disappears rather
     than lingering as stale *)
  ignore (Db.exec db "CREATE INDEX emp_edno ON emp (edno)");
  Alcotest.(check int) "invalidated plan row disappears" 0
    (one_int db "SELECT count(*) FROM sys.plans WHERE source = 'cache'")

let test_sys_fetch_cache () =
  let db, api = mk () in
  Xnf.Api.set_result_cache api 4;
  ignore (Xnf.Api.fetch_string api q_all);
  Alcotest.(check int) "cached result visible, not stale" 1
    (one_int db "SELECT count(*) FROM sys.fetch_cache WHERE stale = FALSE");
  ignore (Db.exec db "INSERT INTO emp VALUES (9, 'z', 1, 1)");
  Alcotest.(check int) "DML flips the staleness flag" 1
    (one_int db "SELECT count(*) FROM sys.fetch_cache WHERE stale = TRUE")

(* ---- per-statement statistics and the slow-query log ---- *)

let test_statement_aggregation () =
  Obs.Query_stats.reset ();
  let db, api = mk () in
  ignore (Xnf.Api.exec api "SELECT ename FROM emp WHERE sal > 100");
  ignore (Xnf.Api.exec api "SELECT ename FROM emp WHERE sal > 400");
  (* literals normalize to ?: both executions fold into one entry *)
  let n =
    one_int db
      "SELECT calls FROM sys.statements WHERE fingerprint = 'SELECT ename FROM emp WHERE sal > ?'"
  in
  Alcotest.(check int) "two calls, one fingerprint" 2 n;
  let k =
    match rows db "SELECT kind FROM sys.statements WHERE calls = 2" with
    | [ [| Value.Str k |] ] -> k
    | _ -> Alcotest.fail "expected one aggregated entry"
  in
  Alcotest.(check string) "classified as sql" "sql" k;
  let r =
    one_int db
      "SELECT rows FROM sys.statements WHERE fingerprint = 'SELECT ename FROM emp WHERE sal > ?'"
  in
  Alcotest.(check int) "cumulative rows" (3 + 2) r

let test_statement_errors_recorded () =
  Obs.Query_stats.reset ();
  let db, api = mk () in
  (try ignore (Xnf.Api.exec api "SELECT nosuch FROM emp") with _ -> ());
  let n = one_int db "SELECT errors FROM sys.statements WHERE errors > 0" in
  Alcotest.(check int) "failed execution counted as error" 1 n

let test_slowlog_threshold () =
  Obs.Query_stats.reset ();
  let saved = Obs.Query_stats.slowlog_ms () in
  Fun.protect
    ~finally:(fun () -> Obs.Query_stats.set_slowlog_ms saved)
    (fun () ->
      let db, api = mk () in
      Obs.Query_stats.set_slowlog_ms None;
      ignore (Xnf.Api.exec api "SELECT count(*) FROM emp");
      Alcotest.(check int) "disabled log records nothing" 0
        (one_int db "SELECT count(*) FROM sys.slow_queries");
      Obs.Query_stats.set_slowlog_ms (Some 0.);
      ignore (Xnf.Api.exec api "SELECT count(*) FROM emp");
      Alcotest.(check int) "zero threshold records the execution" 1
        (one_int db
           "SELECT count(*) FROM sys.slow_queries WHERE fingerprint = 'SELECT count ( * ) FROM emp'");
      Obs.Query_stats.set_slowlog_ms (Some 1e9);
      ignore (Xnf.Api.exec api "SELECT count(*) FROM dept");
      Alcotest.(check int) "huge threshold records nothing more" 1
        (one_int db "SELECT count(*) FROM sys.slow_queries");
      (* the slow row joins back to its aggregate *)
      Obs.Query_stats.set_slowlog_ms None;
      Alcotest.(check int) "slow row joins to sys.statements" 1
        (one_int db
           "SELECT count(*) FROM sys.statements s, sys.slow_queries q \
            WHERE s.fingerprint = q.fingerprint"))

let test_fingerprint_normalization () =
  Alcotest.(check string) "literals become ?" "SELECT a FROM t WHERE b = ? AND c = ?"
    (Sql_lexer.fingerprint "SELECT a FROM t WHERE b = 5 AND c = 'x'");
  Alcotest.(check string) "whitespace-insensitive"
    (Sql_lexer.fingerprint "SELECT a FROM t WHERE b = 5")
    (Sql_lexer.fingerprint "  SELECT   a FROM t   WHERE b =    9  ")

(* ---- metrics additions ---- *)

let test_hist_quantile () =
  let h = Obs.Metrics.histogram ~bounds:[| 10.; 20.; 40. |] "test.sys.quantile" in
  Alcotest.(check bool) "empty histogram is NaN" true
    (Float.is_nan (Obs.Metrics.hist_quantile h 0.5));
  for _ = 1 to 50 do Obs.Metrics.observe h 5. done;
  for _ = 1 to 50 do Obs.Metrics.observe h 15. done;
  let p50 = Obs.Metrics.hist_quantile h 0.5 in
  (* 50th observation sits exactly at the first bucket's upper bound *)
  Alcotest.(check bool) "p50 interpolates inside the first bucket" true
    (Float.abs (p50 -. 10.) < 1e-9);
  let p99 = Obs.Metrics.hist_quantile h 0.99 in
  Alcotest.(check bool) "p99 lands in the second bucket" true (p99 > 10. && p99 <= 20.)

let test_dump_prefix () =
  Obs.Metrics.incr ~by:3 (Obs.Metrics.counter "test.sysdump.alpha");
  Obs.Metrics.incr ~by:2 (Obs.Metrics.counter "other.sysdump.beta");
  let render prefix = Fmt.str "%a" (Obs.Metrics.dump ?prefix) () in
  let all = render None and only = render (Some "test.sysdump.") in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "unfiltered dump has both" true
    (contains all "test.sysdump.alpha" && contains all "other.sysdump.beta");
  Alcotest.(check bool) "prefix keeps matching" true (contains only "test.sysdump.alpha");
  Alcotest.(check bool) "prefix drops the rest" false (contains only "other.sysdump.beta")

let test_analyze_unknown_table () =
  let db = Db.create () in
  Alcotest.check_raises "ANALYZE nosuch" (Catalog.Unknown_table "nosuch") (fun () ->
      ignore (Db.exec db "ANALYZE nosuch"))

let suite =
  [ Alcotest.test_case "scan every sys view" `Quick test_scan_all_views;
    Alcotest.test_case "join sys view with base table" `Quick test_join_with_base_table;
    Alcotest.test_case "sys.metrics" `Quick test_metrics_view;
    Alcotest.test_case "sys.spans" `Quick test_spans_view;
    Alcotest.test_case "sys.histograms" `Quick test_histograms_view;
    Alcotest.test_case "ANALYZE exact statistics" `Quick test_analyze_exact;
    Alcotest.test_case "staleness flag and fresh lookup" `Quick test_stale_flag_and_fresh_lookup;
    Alcotest.test_case "cost model consumes statistics" `Quick test_cost_consumes_stats;
    Alcotest.test_case "null-fraction selectivity" `Quick test_null_frac_selectivity;
    Alcotest.test_case "DDL reflected immediately" `Quick test_ddl_reflection;
    Alcotest.test_case "sys.plans invalidation" `Quick test_sys_plans_invalidation;
    Alcotest.test_case "sys.fetch_cache staleness" `Quick test_sys_fetch_cache;
    Alcotest.test_case "statement aggregation" `Quick test_statement_aggregation;
    Alcotest.test_case "statement errors recorded" `Quick test_statement_errors_recorded;
    Alcotest.test_case "slow-query threshold" `Quick test_slowlog_threshold;
    Alcotest.test_case "fingerprint normalization" `Quick test_fingerprint_normalization;
    Alcotest.test_case "hist_quantile interpolation" `Quick test_hist_quantile;
    Alcotest.test_case "metrics dump prefix filter" `Quick test_dump_prefix;
    Alcotest.test_case "ANALYZE unknown table" `Quick test_analyze_unknown_table ]
