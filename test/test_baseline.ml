(* Integration tests: baselines agree with the XNF translator. *)

open Relational

let mk () =
  let db = Db.create () in
  Workload.Company.populate db ~seed:7 ~scale:Workload.Company.small ~repr:Workload.Company.Cdb1;
  let api = Xnf.Api.create db in
  Workload.Company.register_views api ~repr:Workload.Company.Cdb1;
  (db, api)

let compose api q = Xnf.View_registry.compose (Xnf.Api.registry api) q

let sorted_rows rows = List.sort Row.compare rows

let test_unshared_translation_equivalent () =
  let db, api = mk () in
  let q = Xnf.Xnf_parser.parse_query "OUT OF ALL-DEPS TAKE *" in
  let def, _, _ = compose api q in
  let shared = Xnf.Api.fetch api q in
  let naive = Baseline.Naive_translate.extract_unshared db def in
  List.iter
    (fun (name, rows) ->
      let ni = Xnf.Cache.node shared name in
      let shared_rows =
        sorted_rows (List.map (fun t -> (Xnf.Cache.row t)) (Xnf.Cache.live_tuples ni))
      in
      let naive_rows = sorted_rows rows in
      Alcotest.(check int) ("cardinality " ^ name) (List.length shared_rows) (List.length naive_rows);
      List.iter2
        (fun a b -> Alcotest.(check bool) ("row of " ^ name) true (Row.equal a b))
        shared_rows naive_rows)
    naive.Baseline.Naive_translate.node_rows

let test_unshared_issues_more_queries () =
  let db, api = mk () in
  let q = Xnf.Xnf_parser.parse_query "OUT OF ALL-DEPS-ORG TAKE *" in
  let def, _, _ = compose api q in
  Xnf.Translate.reset_stats ();
  ignore (Xnf.Api.fetch api q);
  let shared_queries = Xnf.Translate.stats.Xnf.Translate.queries_issued in
  let naive = Baseline.Naive_translate.extract_unshared db def in
  Alcotest.(check bool) "naive recomputes" true
    (naive.Baseline.Naive_translate.queries_issued >= shared_queries)

let test_navigational_extraction_counts () =
  let db, api = mk () in
  let q = Xnf.Xnf_parser.parse_query "OUT OF ALL-DEPS TAKE *" in
  let def, _, _ = compose api q in
  let nav = Baseline.Sql_navigator.create db in
  let fetched = Baseline.Sql_navigator.extract_navigational nav def in
  let shared = Xnf.Api.fetch api q in
  (* navigational fetches count repeats on shared children; the set-oriented
     extraction fetches every tuple once *)
  Alcotest.(check bool) "at least as many fetches" true (fetched >= Xnf.Cache.total_tuples shared);
  (* one query per parent tuple and relationship, plus one per root *)
  Alcotest.(check bool) "per-step calls dominate" true
    (Baseline.Sql_navigator.calls nav > List.length def.Xnf.Co_schema.co_nodes)

let test_lw90_instantiation () =
  let db, api = mk () in
  let q = Xnf.Xnf_parser.parse_query "OUT OF ALL-DEPS TAKE *" in
  let def, _, _ = compose api q in
  let nav = Baseline.Sql_navigator.create db in
  let objs = Baseline.Lw90.instantiate nav def in
  let shared = Xnf.Api.fetch api q in
  Alcotest.(check int) "one object tree per dept"
    (Xnf.Cache.live_count (Xnf.Cache.node shared "xdept"))
    (List.length objs);
  Alcotest.(check bool) "objects duplicated vs shared instance" true
    (Baseline.Lw90.count_objects objs >= Xnf.Cache.total_tuples shared)

let test_lw90_rejects_recursion () =
  let _, api = mk () in
  let q = Xnf.Xnf_parser.parse_query "OUT OF EXT-ALL-DEPS-ORG TAKE *" in
  let def, _, _ = compose api q in
  Alcotest.(check bool) "recursive CO unsupported" false (Baseline.Lw90.supported def)

(* the shared classifier agrees with what extract_unshared accepts: the
   supported branch runs, the unsupported branch raises Unsupported *)
let test_unshared_classifier_supported () =
  let db, api = mk () in
  let q = Xnf.Xnf_parser.parse_query "OUT OF ALL-DEPS TAKE *" in
  let def, _, _ = compose api q in
  Alcotest.(check bool) "DAG classified supported" true
    (Baseline.Naive_translate.supported def);
  let naive = Baseline.Naive_translate.extract_unshared db def in
  Alcotest.(check bool) "supported schema evaluates" true
    (naive.Baseline.Naive_translate.queries_issued > 0)

let test_unshared_classifier_unsupported () =
  let db, api = mk () in
  let q = Xnf.Xnf_parser.parse_query "OUT OF EXT-ALL-DEPS-ORG TAKE *" in
  let def, _, _ = compose api q in
  Alcotest.(check bool) "recursive CO classified unsupported" false
    (Baseline.Naive_translate.supported def);
  Alcotest.check_raises "extract_unshared raises on recursive schemas"
    (Baseline.Naive_translate.Unsupported
       "unshared inlining diverges on recursive composite objects")
    (fun () -> ignore (Baseline.Naive_translate.extract_unshared db def))

let test_modeled_ipc () =
  let db, _ = mk () in
  let nav = Baseline.Sql_navigator.create db in
  ignore (Baseline.Sql_navigator.query nav "SELECT * FROM dept");
  ignore (Baseline.Sql_navigator.query nav "SELECT * FROM emp");
  Alcotest.(check int) "two calls" 2 (Baseline.Sql_navigator.calls nav);
  Alcotest.(check (float 1e-9)) "modeled ipc" 0.0002
    (Baseline.Sql_navigator.modeled_ipc_seconds nav ~ipc_us:100.)

let suite =
  [ Alcotest.test_case "unshared translation equivalent" `Quick test_unshared_translation_equivalent;
    Alcotest.test_case "unshared issues more queries" `Quick test_unshared_issues_more_queries;
    Alcotest.test_case "navigational extraction counts" `Quick test_navigational_extraction_counts;
    Alcotest.test_case "LW90 instantiation" `Quick test_lw90_instantiation;
    Alcotest.test_case "LW90 rejects recursion" `Quick test_lw90_rejects_recursion;
    Alcotest.test_case "unshared classifier: supported branch" `Quick
      test_unshared_classifier_supported;
    Alcotest.test_case "unshared classifier: unsupported branch" `Quick
      test_unshared_classifier_unsupported;
    Alcotest.test_case "modeled IPC accounting" `Quick test_modeled_ipc ]
