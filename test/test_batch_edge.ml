(* Batch hash edge execution: strategy selection (indexed > hash-batch >
   generic, and forcing), the fused one-pass fixpoint (exact
   queries_issued / fixpoint_rounds / tuples_probed / hash_* counters on
   chain, recursive and USING schemas), build reuse across warm
   EXECUTE/plan-cache hits with DML invalidation, frontier dedup under
   instance sharing, and the EXPLAIN ANALYZE / \plans strategy display. *)

open Relational
open Workload

let s = Xnf.Translate.stats

let compose api q =
  let def, restrs, _take =
    Xnf.View_registry.compose (Xnf.Api.registry api) (Xnf.Xnf_parser.parse_query q)
  in
  (def, restrs)

let strategies_of api q =
  let def, _ = compose api q in
  Xnf.Translate.edge_strategies (Xnf.Translate.compile_def (Xnf.Api.db api) def)

let node_count cache node = Xnf.Cache.live_count (Xnf.Cache.node cache node)
let conn_count cache edge = List.length (Xnf.Cache.conns_live (Xnf.Cache.edge cache edge))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let strat =
  Alcotest.testable
    (fun ppf v -> Fmt.string ppf (Xnf.Translate.strategy_name v))
    (fun a b -> a = b)

(* ---- strategy selection matrix ---- *)

(* one schema, three edges: an indexed FK, an unindexed FK (batch hash),
   and a non-equality predicate (generic) *)
let mk_matrix_api () =
  let db = Db.create () in
  List.iter
    (fun stmt -> ignore (Db.exec db stmt))
    [ "CREATE TABLE a (ka INTEGER PRIMARY KEY, lo INTEGER, hi INTEGER)";
      "CREATE TABLE b (kb INTEGER PRIMARY KEY, pa INTEGER)";
      "CREATE TABLE c (kc INTEGER PRIMARY KEY, pa INTEGER)";
      "CREATE TABLE d (kd INTEGER PRIMARY KEY, v INTEGER)";
      "CREATE INDEX b_pa ON b (pa)";
      "INSERT INTO a VALUES (1, 0, 10)";
      "INSERT INTO b VALUES (1, 1), (2, 1)";
      "INSERT INTO c VALUES (1, 1), (2, 2)";
      "INSERT INTO d VALUES (3, 3), (20, 20)" ];
  Xnf.Api.create db

let q_matrix =
  "OUT OF Xa AS A, Xb AS B, Xc AS C, Xd AS D, \
   eb AS (RELATE Xa, Xb WHERE Xa.ka = Xb.pa), \
   ec AS (RELATE Xa, Xc WHERE Xa.ka = Xc.pa), \
   ed AS (RELATE Xa, Xd WHERE Xd.v > Xa.lo AND Xd.v < Xa.hi) TAKE *"

let test_selection_matrix () =
  let api = mk_matrix_api () in
  let ss = strategies_of api q_matrix in
  Alcotest.(check strat) "indexed FK -> indexed" Xnf.Translate.S_indexed (List.assoc "eb" ss);
  Alcotest.(check strat) "unindexed FK -> batch hash" Xnf.Translate.S_hash (List.assoc "ec" ss);
  Alcotest.(check strat) "non-equality -> generic" Xnf.Translate.S_generic (List.assoc "ed" ss)

let test_forcing_and_fallback () =
  let api = mk_matrix_api () in
  let db = Xnf.Api.db api in
  let def, _ = compose api q_matrix in
  let forced f = Xnf.Translate.edge_strategies (Xnf.Translate.compile_def ~force:f db def) in
  let g = forced Xnf.Translate.S_generic in
  List.iter
    (fun e -> Alcotest.(check strat) (e ^ " forced generic") Xnf.Translate.S_generic (List.assoc e g))
    [ "eb"; "ec"; "ed" ];
  let h = forced Xnf.Translate.S_hash in
  Alcotest.(check strat) "indexed edge forced to hash" Xnf.Translate.S_hash (List.assoc "eb" h);
  Alcotest.(check strat) "generic edge: hash infeasible, falls back" Xnf.Translate.S_generic
    (List.assoc "ed" h);
  let i = forced Xnf.Translate.S_indexed in
  Alcotest.(check strat) "hash edge: index infeasible, falls back" Xnf.Translate.S_generic
    (List.assoc "ec" i)

(* every strategy must deliver the identical instance *)
let test_forced_strategies_agree () =
  let api = mk_matrix_api () in
  let db = Xnf.Api.db api in
  let def, restrs = compose api q_matrix in
  let base = Xnf.Translate.fetch_def ~fixpoint:Xnf.Translate.Semi_naive db def restrs in
  List.iter
    (fun force ->
      let alt = Xnf.Translate.fetch_def ~force ~fixpoint:Xnf.Translate.Semi_naive db def restrs in
      match Fuzz.Oracle.compare_caches base alt with
      | None -> ()
      | Some d -> Alcotest.failf "%s diverged: %s" (Xnf.Translate.strategy_name force) d)
    [ Xnf.Translate.S_indexed; Xnf.Translate.S_hash; Xnf.Translate.S_generic ]

(* ---- fused one-pass execution: exact counters ---- *)

(* unindexed chain of depth 2: 1 roots query + 2 builds + 2 batch probe
   passes = 5 queries, and the connections phase issues nothing *)
let test_one_pass_chain_counters () =
  let db = Db.create () in
  Chain.populate ~indexes:false db ~seed:7 ~depth:2 ~n_roots:2 ~fanout:2;
  let api = Xnf.Api.create db in
  Xnf.Translate.reset_stats ();
  let cache = Xnf.Api.fetch_string api (Chain.co_query ~depth:2) in
  Alcotest.(check int) "x0 roots" 2 (node_count cache "x0");
  Alcotest.(check int) "x1 reached" 4 (node_count cache "x1");
  Alcotest.(check int) "x2 reached" 8 (node_count cache "x2");
  Alcotest.(check int) "link1 conns" 4 (conn_count cache "link1");
  Alcotest.(check int) "link2 conns" 8 (conn_count cache "link2");
  Alcotest.(check int) "exactly one pass: roots + 2 builds + 2 probe passes" 5 s.queries_issued;
  Alcotest.(check int) "hash edges selected" 2 s.hash_edges;
  Alcotest.(check int) "one build per edge" 2 s.hash_builds;
  Alcotest.(check int) "no reuse on a cold fetch" 0 s.hash_build_reuses;
  Alcotest.(check int) "one batch pass per edge" 2 s.hash_probes;
  Alcotest.(check int) "rounds" 3 s.fixpoint_rounds;
  Alcotest.(check int) "frontier sizes: 2 roots + 4 mid" 6 s.tuples_probed

(* the indexed path is fused too: the same chain with FK indexes must not
   re-probe full extents after the fixpoint (1 roots query + 2 probe
   passes, nothing else) *)
let test_one_pass_indexed_counters () =
  let db = Db.create () in
  Chain.populate ~indexes:true db ~seed:7 ~depth:2 ~n_roots:2 ~fanout:2;
  let api = Xnf.Api.create db in
  Xnf.Translate.reset_stats ();
  let cache = Xnf.Api.fetch_string api (Chain.co_query ~depth:2) in
  Alcotest.(check int) "link2 conns" 8 (conn_count cache "link2");
  Alcotest.(check int) "indexed edges selected" 2 s.indexed_probes;
  Alcotest.(check int) "exactly one pass: roots + 2 probe passes" 3 s.queries_issued

(* recursive CO over an unindexed management tree: per-round batch passes *)
let test_recursive_tree_counters () =
  let db = Db.create () in
  let n = Chain.mgmt_tree ~indexes:false db ~levels:3 ~fanout:2 in
  Alcotest.(check int) "tree size" 7 n;
  let api = Xnf.Api.create db in
  Xnf.Translate.reset_stats ();
  let cache = Xnf.Api.fetch_string api Chain.mgmt_query in
  Alcotest.(check int) "root extracted" 1 (node_count cache "xroot");
  Alcotest.(check int) "subordinates reached" 6 (node_count cache "xemp");
  Alcotest.(check int) "top conns" 2 (conn_count cache "top");
  Alcotest.(check int) "manages conns" 4 (conn_count cache "manages");
  Alcotest.(check int) "both edges batch hash" 2 s.hash_edges;
  Alcotest.(check int) "one build per edge over memp" 2 s.hash_builds;
  Alcotest.(check int) "top r1; manages r2, r3" 3 s.hash_probes;
  Alcotest.(check int) "rounds = tree levels" 3 s.fixpoint_rounds;
  Alcotest.(check int) "roots + 2 builds + 3 passes" 6 s.queries_issued;
  Alcotest.(check int) "frontier sizes 1 + 2 + 4" 7 s.tuples_probed

(* USING link table without indexes: the edge chains two builds *)
let test_using_chained_builds () =
  let db = Db.create () in
  List.iter
    (fun stmt -> ignore (Db.exec db stmt))
    [ "CREATE TABLE stu (sno INTEGER PRIMARY KEY, sname VARCHAR)";
      "CREATE TABLE crs (cno INTEGER PRIMARY KEY, cname VARCHAR)";
      "CREATE TABLE enr (esno INTEGER, ecno INTEGER, grade INTEGER)";
      "INSERT INTO stu VALUES (1, 's1'), (2, 's2')";
      "INSERT INTO crs VALUES (10, 'c1'), (20, 'c2'), (30, 'c3')";
      "INSERT INTO enr VALUES (1, 10, 80), (1, 20, 90), (2, 20, 70)" ];
  let api = Xnf.Api.create db in
  let q =
    "OUT OF Xs AS STU, Xc AS CRS, \
     taking AS (RELATE Xs, Xc WITH ATTRIBUTES en.grade AS grade \
     USING ENR en WHERE Xs.sno = en.esno AND en.ecno = Xc.cno) TAKE *"
  in
  Alcotest.(check strat) "USING without indexes -> batch hash" Xnf.Translate.S_hash
    (List.assoc "taking" (strategies_of api q));
  Xnf.Translate.reset_stats ();
  let cache = Xnf.Api.fetch_string api q in
  Alcotest.(check int) "courses reached" 2 (node_count cache "xc");
  Alcotest.(check int) "enrollments" 3 (conn_count cache "taking");
  Alcotest.(check int) "link + child builds" 2 s.hash_builds;
  Alcotest.(check int) "one batch pass" 1 s.hash_probes;
  (* 1 roots query + 2 builds + 1 pass; the connections readout is free *)
  Alcotest.(check int) "queries" 4 s.queries_issued;
  Alcotest.(check int) "only the student frontier is probed" 2 s.tuples_probed

(* ---- build reuse across warm executions ---- *)

let test_build_reuse_plan_cache () =
  let db = Db.create () in
  Chain.populate ~indexes:false db ~seed:3 ~depth:1 ~n_roots:2 ~fanout:2;
  let api = Xnf.Api.create db in
  Xnf.Api.set_plan_cache api 8;
  let q = Chain.co_query ~depth:1 in
  Xnf.Translate.reset_stats ();
  ignore (Xnf.Api.fetch_string api q);
  Alcotest.(check int) "cold: one build" 1 s.hash_builds;
  Alcotest.(check int) "cold: no reuse" 0 s.hash_build_reuses;
  ignore (Xnf.Api.fetch_string api q);
  ignore (Xnf.Api.fetch_string api q);
  Alcotest.(check int) "warm plan-cache hits rebuild nothing" 1 s.hash_builds;
  Alcotest.(check int) "one reuse per warm fetch" 2 s.hash_build_reuses;
  (* DML on the child table bumps its version: same plan, fresh build *)
  ignore (Db.exec db "INSERT INTO t1 VALUES (99, 0, 5)");
  let cache = Xnf.Api.fetch_string api q in
  Alcotest.(check int) "stale build rebuilt" 2 s.hash_builds;
  Alcotest.(check int) "no bogus reuse" 2 s.hash_build_reuses;
  Alcotest.(check int) "new child visible" 5 (node_count cache "x1")

let test_build_reuse_prepared_execute () =
  let db = Db.create () in
  Chain.populate ~indexes:false db ~seed:3 ~depth:1 ~n_roots:2 ~fanout:2;
  let api = Xnf.Api.create db in
  Xnf.Api.prepare api ~name:"p" (Xnf.Xnf_parser.parse_query (Chain.co_query ~depth:1));
  Xnf.Translate.reset_stats ();
  ignore (Xnf.Api.execute_prepared api "p" []);
  ignore (Xnf.Api.execute_prepared api "p" []);
  ignore (Xnf.Api.execute_prepared api "p" []);
  Alcotest.(check int) "EXECUTE builds once" 1 s.hash_builds;
  Alcotest.(check int) "then reuses" 2 s.hash_build_reuses

(* USING reuse is per source: DML on the link table rebuilds only it *)
let test_using_partial_invalidation () =
  let db = Db.create () in
  List.iter
    (fun stmt -> ignore (Db.exec db stmt))
    [ "CREATE TABLE stu (sno INTEGER PRIMARY KEY, sname VARCHAR)";
      "CREATE TABLE crs (cno INTEGER PRIMARY KEY, cname VARCHAR)";
      "CREATE TABLE enr (esno INTEGER, ecno INTEGER)";
      "INSERT INTO stu VALUES (1, 's1')";
      "INSERT INTO crs VALUES (10, 'c1'), (20, 'c2')";
      "INSERT INTO enr VALUES (1, 10)" ];
  let api = Xnf.Api.create db in
  Xnf.Api.set_plan_cache api 8;
  let q =
    "OUT OF Xs AS STU, Xc AS CRS, \
     taking AS (RELATE Xs, Xc USING ENR en WHERE Xs.sno = en.esno AND en.ecno = Xc.cno) TAKE *"
  in
  Xnf.Translate.reset_stats ();
  ignore (Xnf.Api.fetch_string api q);
  Alcotest.(check int) "cold: link + child builds" 2 s.hash_builds;
  ignore (Db.exec db "INSERT INTO enr VALUES (1, 20)");
  let cache = Xnf.Api.fetch_string api q in
  Alcotest.(check int) "only the link build refreshed" 3 s.hash_builds;
  Alcotest.(check int) "child build reused" 1 s.hash_build_reuses;
  Alcotest.(check int) "new enrollment delivered" 2 (conn_count cache "taking")

(* ---- frontier dedup under instance sharing ---- *)

(* diamond: d is delivered by two edges in the same round; it must enter
   the frontier (and be probed) once, while both connection sets stay
   complete *)
let test_shared_child_probed_once () =
  let db = Db.create () in
  List.iter
    (fun stmt -> ignore (Db.exec db stmt))
    [ "CREATE TABLE ta (ka INTEGER PRIMARY KEY)";
      "CREATE TABLE tb (kb INTEGER PRIMARY KEY, pa INTEGER)";
      "CREATE TABLE tc (kc INTEGER PRIMARY KEY, pa INTEGER)";
      "CREATE TABLE td (kd INTEGER PRIMARY KEY, pb INTEGER, pc INTEGER)";
      "INSERT INTO ta VALUES (1)";
      "INSERT INTO tb VALUES (5, 1)";
      "INSERT INTO tc VALUES (6, 1)";
      "INSERT INTO td VALUES (9, 5, 6)" ];
  let api = Xnf.Api.create db in
  let q =
    "OUT OF Xa AS TA, Xb AS TB, Xc AS TC, Xd AS TD, \
     ab AS (RELATE Xa, Xb WHERE Xa.ka = Xb.pa), \
     ac AS (RELATE Xa, Xc WHERE Xa.ka = Xc.pa), \
     bd AS (RELATE Xb, Xd WHERE Xb.kb = Xd.pb), \
     cd AS (RELATE Xc, Xd WHERE Xc.kc = Xd.pc) TAKE *"
  in
  Xnf.Translate.reset_stats ();
  let cache = Xnf.Api.fetch_string api q in
  Alcotest.(check int) "d delivered once" 1 (node_count cache "xd");
  Alcotest.(check int) "bd conn present" 1 (conn_count cache "bd");
  Alcotest.(check int) "cd conn present" 1 (conn_count cache "cd");
  (* round 1: a probes ab and ac (2); round 2: b probes bd, c probes cd
     (2); the shared d is pushed once and has no outgoing edge *)
  Alcotest.(check int) "no duplicate frontier pushes" 4 s.tuples_probed;
  Alcotest.(check int) "rounds" 3 s.fixpoint_rounds

(* ---- EXPLAIN ANALYZE / \plans surface the strategy ---- *)

let test_explain_shows_strategy () =
  let api = mk_matrix_api () in
  let report = Xnf.Api.explain_analyze api q_matrix in
  let has needle =
    Alcotest.(check bool) ("report mentions " ^ needle) true (contains report needle)
  in
  has "strategy=indexed";
  has "strategy=hash-batch";
  has "strategy=generic"

let test_plans_describe_shows_strategy () =
  let api = mk_matrix_api () in
  Xnf.Api.set_plan_cache api 4;
  ignore (Xnf.Api.fetch_string api q_matrix);
  match Xnf.Api.plans api with
  | [] -> Alcotest.fail "plan cache is empty"
  | (_, plan) :: _ ->
    let d = Xnf.Fetch_plan.describe plan in
    Alcotest.(check bool) "describe lists per-edge strategies" true
      (contains d "ec:hash-batch" && contains d "eb:indexed" && contains d "ed:generic")

(* ---- encoded key hashing allocates nothing ---- *)

(* [Gc.allocated_bytes] only advances at minor collections on OCaml 5;
   drain the minor heap on both sides of the bracket or the delta is
   quantized by the minor-heap size. *)
let alloc_bytes f =
  Gc.minor ();
  let before = Gc.allocated_bytes () in
  f ();
  Gc.minor ();
  let after = Gc.allocated_bytes () in
  after -. before

let test_encoded_hash_zero_alloc () =
  (* Float and Str cells go through dict ids, so hashing/comparing them
     must touch only ints — the whole point of the encoded hot path *)
  let keys =
    Array.map
      (fun vs -> Array.map (fun v -> Dict.key_cell (Dict.encode v)) vs)
      [| [| Value.Str "widget"; Value.Int 7 |];
         [| Value.Float 2.5; Value.Str "" |];
         [| Value.Float 7.0; Value.Int 7 |];
         [| Value.Null; Value.Str "n\xc3\xa9" |] |]
  in
  (* cross-equality sanity: Float 7.0 normalizes onto Int 7's key id *)
  Alcotest.(check bool) "Float 7.0 key = Int 7 key" true
    (keys.(2).(0) = Dict.key_cell (Dict.encode (Value.Int 7)));
  let iters = 100_000 in
  let acc = ref 0 in
  let bytes =
    alloc_bytes (fun () ->
        for i = 1 to iters do
          let k = Array.unsafe_get keys (i land 3) in
          acc := !acc lxor Expr.Row_key.hash k;
          if Expr.Row_key.equal k (Array.unsafe_get keys ((i + 1) land 3)) then incr acc;
          if Expr.Row_key.has_null k then incr acc
        done)
  in
  Alcotest.(check bool) "hash results consumed" true (!acc <> min_int);
  (* exact zero modulo measurement noise: < 0.01 bytes per iteration *)
  Alcotest.(check bool)
    (Printf.sprintf "Row_key hash/equal/has_null allocated %.0f bytes over %d iterations" bytes
       iters)
    true (bytes < 1024.);
  (* the boxed fallback must not allocate either: decoded comparators
     still run in the naive oracle and statistics layers *)
  let boxed =
    [| Value.Str "widget"; Value.Float 2.5; Value.Float 7.0; Value.Int 7; Value.Null |]
  in
  let vbytes =
    alloc_bytes (fun () ->
        for i = 1 to iters do
          acc := !acc lxor Value.hash (Array.unsafe_get boxed (i mod 5))
        done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "Value.hash allocated %.0f bytes over %d iterations" vbytes iters)
    true (vbytes < 1024.)

let suite =
  [ Alcotest.test_case "strategy selection matrix" `Quick test_selection_matrix;
    Alcotest.test_case "forcing and generic fallback" `Quick test_forcing_and_fallback;
    Alcotest.test_case "forced strategies agree" `Quick test_forced_strategies_agree;
    Alcotest.test_case "one-pass chain counters (hash)" `Quick test_one_pass_chain_counters;
    Alcotest.test_case "one-pass chain counters (indexed)" `Quick test_one_pass_indexed_counters;
    Alcotest.test_case "recursive tree counters" `Quick test_recursive_tree_counters;
    Alcotest.test_case "USING chains two builds" `Quick test_using_chained_builds;
    Alcotest.test_case "build reuse via plan cache + DML staleness" `Quick
      test_build_reuse_plan_cache;
    Alcotest.test_case "build reuse via PREPARE/EXECUTE" `Quick test_build_reuse_prepared_execute;
    Alcotest.test_case "USING partial build invalidation" `Quick test_using_partial_invalidation;
    Alcotest.test_case "shared child probed once" `Quick test_shared_child_probed_once;
    Alcotest.test_case "encoded key hashing allocates nothing" `Quick test_encoded_hash_zero_alloc;
    Alcotest.test_case "EXPLAIN ANALYZE shows strategy" `Quick test_explain_shows_strategy;
    Alcotest.test_case "\\plans describe shows strategy" `Quick test_plans_describe_shows_strategy ]
