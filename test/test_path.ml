(* Unit tests: path expressions and SUCH THAT predicate evaluation over a
   loaded composite object (§3.5). *)

open Relational

(* d1 -> {e1, e2}; d2 -> {e3}; e2 manages p1, p2; e3 manages p3;
   membership: e1 on p1, e3 on p1 *)
let mk () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [ "CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname VARCHAR, budget INTEGER)";
      "CREATE TABLE emp (eno INTEGER PRIMARY KEY, ename VARCHAR, sal INTEGER, edno INTEGER, descr VARCHAR)";
      "CREATE TABLE proj (pno INTEGER PRIMARY KEY, pname VARCHAR, pmgrno INTEGER, pbudget INTEGER)";
      "CREATE TABLE empproj (epeno INTEGER, eppno INTEGER)";
      "INSERT INTO dept VALUES (1, 'd1', 1000), (2, 'd2', 2000)";
      "INSERT INTO emp VALUES (1, 'e1', 500, 1, 'staff'), (2, 'e2', 900, 1, 'regular'), (3, 'e3', 700, 2, 'staff')";
      "INSERT INTO proj VALUES (1, 'p1', 2, 1500), (2, 'p2', 2, 400), (3, 'p3', 3, 900)";
      "INSERT INTO empproj VALUES (1, 1), (3, 1)" ];
  let api = Xnf.Api.create db in
  let cache =
    Xnf.Api.fetch_string api
      "OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ, \
       employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno), \
       projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno), \
       membership AS (RELATE Xproj, Xemp USING EMPPROJ ep \
       WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno) TAKE *"
  in
  cache

let pos_of cache node k =
  let ni = Xnf.Cache.node cache node in
  (List.find (fun t -> Value.equal (Xnf.Cache.col t 0) (Value.Int k)) (Xnf.Cache.live_tuples ni))
    .Xnf.Cache.t_pos

(* reuse the parser by wrapping the path in a predicate *)
let parse_path src =
  match
    Xnf.Xnf_parser.parse_stmt
      (Printf.sprintf "OUT OF v WHERE x SUCH THAT EXISTS %s TAKE *" src)
  with
  | Xnf.Xnf_ast.X_query
      { q_where = [ Xnf.Xnf_ast.R_node { rn_pred = Xnf.Xnf_ast.X_exists_path p; _ } ]; _ } ->
    p
  | _ -> Alcotest.fail "could not parse path"

let eval_path cache env src = Xnf.Path.eval_path cache env (parse_path src)

let env_d cache k = [ ("d", { Xnf.Path.b_node = "xdept"; b_pos = pos_of cache "xdept" k }) ]

let keys cache (node, positions) =
  let ni = Xnf.Cache.node cache node in
  List.map (fun p -> Value.as_int (Xnf.Cache.col (Xnf.Cache.tuple ni p) 0)) positions
  |> List.sort compare

let test_tuple_rooted_path () =
  let cache = mk () in
  let result = eval_path cache (env_d cache 1) "d->employment" in
  Alcotest.(check string) "lands on emp" "xemp" (fst result);
  Alcotest.(check (list int)) "d1's employees" [ 1; 2 ] (keys cache result)

let test_reduced_path () =
  let cache = mk () in
  (* edge -> edge without the node in between (paper's reduced form) *)
  let result = eval_path cache (env_d cache 1) "d->employment->projmanagement" in
  Alcotest.(check (list int)) "projects managed by d1 staff" [ 1; 2 ] (keys cache result)

let test_full_path_equals_reduced () =
  let cache = mk () in
  let full = eval_path cache (env_d cache 1) "d->employment->Xemp->projmanagement->Xproj" in
  let reduced = eval_path cache (env_d cache 1) "d->employment->projmanagement" in
  Alcotest.(check (list int)) "same denotation" (keys cache reduced) (keys cache full)

let test_set_rooted_path () =
  let cache = mk () in
  (* starting from the node name: all departments *)
  let result = eval_path cache [] "Xdept->employment->projmanagement" in
  Alcotest.(check (list int)) "all managed projects" [ 1; 2; 3 ] (keys cache result)

let test_qualified_path () =
  let cache = mk () in
  let result =
    eval_path cache (env_d cache 1) "d->employment->(Xemp e WHERE e.sal > 600)->projmanagement"
  in
  Alcotest.(check (list int)) "only via e2" [ 1; 2 ] (keys cache result)

let test_qualified_path_outer_var () =
  let cache = mk () in
  (* the qualification references the outer variable d *)
  let result =
    eval_path cache (env_d cache 1)
      "d->employment->projmanagement->(Xproj p WHERE p.pbudget > d.budget)"
  in
  Alcotest.(check (list int)) "projects bigger than d1's budget" [ 1 ] (keys cache result)

let test_reverse_traversal_path () =
  let cache = mk () in
  (* from a project back to the employees working on it, then to employers *)
  let env = [ ("p", { Xnf.Path.b_node = "xproj"; b_pos = pos_of cache "xproj" 1 }) ] in
  let members = eval_path cache env "p->membership" in
  Alcotest.(check (list int)) "members of p1" [ 1; 3 ] (keys cache members);
  let employers = eval_path cache env "p->membership->employment" in
  Alcotest.(check (list int)) "their employers" [ 1; 2 ] (keys cache employers)

let test_path_dedupes () =
  let cache = mk () in
  (* both e1 and e3 work on p1: the target set contains p1 once *)
  let env = [ ("d", { Xnf.Path.b_node = "xdept"; b_pos = pos_of cache "xdept" 1 }) ] in
  let result = eval_path cache env "d->employment->membership" in
  (* e1 works on p1 (e2 works on none) *)
  Alcotest.(check (list int)) "distinct projects" [ 1 ] (keys cache result)

let test_count_and_exists () =
  let cache = mk () in
  let eval e = Xnf.Path.eval_xexpr cache (env_d cache 1) e in
  let parse s =
    match
      Xnf.Xnf_parser.parse_stmt (Printf.sprintf "OUT OF v WHERE x SUCH THAT %s TAKE *" s)
    with
    | Xnf.Xnf_ast.X_query { q_where = [ Xnf.Xnf_ast.R_node { rn_pred; _ } ]; _ } -> rn_pred
    | _ -> Alcotest.fail "parse"
  in
  Alcotest.(check bool) "count" true
    (Value.equal (eval (parse "COUNT(d->employment)")) (Value.Int 2));
  Alcotest.(check bool) "exists true" true
    (Value.equal (eval (parse "EXISTS d->employment")) (Value.Bool true));
  Alcotest.(check bool) "count in arithmetic" true
    (Value.equal (eval (parse "COUNT(d->employment->projmanagement) + 1")) (Value.Int 3))

let test_predicate_mix () =
  let cache = mk () in
  let parse s =
    match
      Xnf.Xnf_parser.parse_stmt (Printf.sprintf "OUT OF v WHERE x SUCH THAT %s TAKE *" s)
    with
    | Xnf.Xnf_ast.X_query { q_where = [ Xnf.Xnf_ast.R_node { rn_pred; _ } ]; _ } -> rn_pred
    | _ -> Alcotest.fail "parse"
  in
  let holds k s =
    Value.is_true (Xnf.Path.eval_pred cache (env_d cache k) (parse s))
  in
  Alcotest.(check bool) "d1 qualifies" true
    (holds 1 "COUNT(d->employment) >= 2 AND d.budget < 1500");
  Alcotest.(check bool) "d2 fails the count" false
    (holds 2 "COUNT(d->employment) >= 2 AND d.budget < 5000");
  Alcotest.(check bool) "OR with path" true (holds 2 "COUNT(d->employment) >= 2 OR d.budget = 2000");
  Alcotest.(check bool) "NOT EXISTS" false (holds 1 "NOT EXISTS d->employment")

let test_errors () =
  let cache = mk () in
  (try
     ignore (eval_path cache [] "nosuch->employment");
     Alcotest.fail "expected unknown start error"
   with Xnf.Path.Path_error _ -> ());
  (try
     ignore (eval_path cache (env_d cache 1) "d->nosuchedge");
     Alcotest.fail "expected unknown edge error"
   with Xnf.Path.Path_error _ -> ());
  try
    (* node checkpoint that does not match the current component *)
    ignore (eval_path cache (env_d cache 1) "d->employment->Xproj");
    Alcotest.fail "expected mismatch error"
  with Xnf.Path.Path_error _ -> ()

let suite =
  [ Alcotest.test_case "tuple-rooted path" `Quick test_tuple_rooted_path;
    Alcotest.test_case "reduced path (edge->edge)" `Quick test_reduced_path;
    Alcotest.test_case "full form equals reduced form" `Quick test_full_path_equals_reduced;
    Alcotest.test_case "set-rooted path" `Quick test_set_rooted_path;
    Alcotest.test_case "qualified path" `Quick test_qualified_path;
    Alcotest.test_case "qualification sees outer variables" `Quick test_qualified_path_outer_var;
    Alcotest.test_case "reverse traversal" `Quick test_reverse_traversal_path;
    Alcotest.test_case "target sets are distinct" `Quick test_path_dedupes;
    Alcotest.test_case "COUNT and EXISTS atoms" `Quick test_count_and_exists;
    Alcotest.test_case "mixed predicates" `Quick test_predicate_mix;
    Alcotest.test_case "path errors" `Quick test_errors ]
