(* Property tests over the WAL file format: frame / decode / boundaries.

   The invariants the crash oracle leans on, checked in isolation:
   a framed log decodes to itself, every byte-prefix decodes to exactly
   the fully-contained frames, a corrupted byte never parses past the
   frame it hits, and decode never raises — on any input. *)

open Relational

let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 6))

let gen_value =
  QCheck.Gen.(
    frequency
      [ (1, return Value.Null);
        (4, map (fun i -> Value.Int i) (int_range (-50) 50));
        (2, map (fun f -> Value.Float (Float.of_int f /. 4.)) (int_range (-50) 50));
        (3, map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 4)));
        (1, map (fun b -> Value.Bool b) bool) ])

let gen_row = QCheck.Gen.(map Array.of_list (list_size (int_range 0 4) gen_value))

let gen_schema =
  QCheck.Gen.(
    map
      (fun tys ->
        Schema.make (List.mapi (fun i ty -> Schema.column (Printf.sprintf "c%d" i) ty) tys))
      (list_size (int_range 1 4)
         (oneofl [ Schema.Ty_int; Schema.Ty_float; Schema.Ty_string; Schema.Ty_bool ])))

let gen_record =
  QCheck.Gen.(
    frequency
      [ ( 4,
          map3
            (fun t rid row -> Wal.R_insert { table = t; rowid = rid; row })
            gen_name small_nat gen_row );
        ( 2,
          map3
            (fun t rid row -> Wal.R_delete { table = t; rowid = rid; row })
            gen_name small_nat gen_row );
        ( 2,
          map
            (fun ((t, rid), (before, after)) -> Wal.R_update { table = t; rowid = rid; before; after })
            (pair (pair gen_name small_nat) (pair gen_row gen_row)) );
        (1, map (fun i -> Wal.R_begin i) small_nat);
        (1, map (fun i -> Wal.R_commit i) small_nat);
        (1, map (fun i -> Wal.R_abort i) small_nat);
        ( 1,
          map3
            (fun n schema pk ->
              Wal.R_create_table { name = n; schema; pk = (if pk then Some [| 0 |] else None) })
            gen_name gen_schema bool );
        (1, map (fun n -> Wal.R_drop_table n) gen_name);
        ( 1,
          map3
            (fun t i ordered -> Wal.R_create_index { table = t; index = i; cols = [| 0; 1 |]; ordered })
            gen_name gen_name bool );
        (1, map (fun n -> Wal.R_drop_index n) gen_name);
        (1, map (fun (n, sql) -> Wal.R_create_view { name = n; sql }) (pair gen_name gen_name));
        (1, map (fun n -> Wal.R_drop_view n) gen_name);
        (1, map (fun (tag, payload) -> Wal.R_ext { tag; payload }) (pair gen_name gen_name)) ])

let gen_log = QCheck.Gen.(list_size (int_range 0 10) (pair small_nat gen_record))

let arb_log =
  QCheck.make ~print:(fun l -> Printf.sprintf "<log of %d records>" (List.length l)) gen_log

let encode entries =
  Wal.header ^ String.concat "" (List.map (fun (lsn, r) -> Wal.frame ~lsn r) entries)

(* records are compared through their frame bytes: the format is the
   canonical equality (Schema.t etc. have no derived [equal]) *)
let frame_eq (l1, r1) (l2, r2) = Wal.frame ~lsn:l1 r1 = Wal.frame ~lsn:l2 r2

let prop_roundtrip =
  QCheck.Test.make ~name:"framed log decodes to itself" ~count:300 arb_log (fun entries ->
      let s = encode entries in
      let recs, valid = Wal.decode s in
      valid = String.length s
      && List.length recs = List.length entries
      && List.for_all2 frame_eq entries recs)

let prop_boundaries =
  QCheck.Test.make ~name:"boundaries are cumulative frame ends" ~count:300 arb_log
    (fun entries ->
      let s = encode entries in
      let bounds = Wal.boundaries s in
      List.length bounds = List.length entries + 1
      && List.hd bounds = String.length Wal.header
      && List.for_all2 ( < ) bounds (List.tl bounds @ [ max_int ])
      && (match List.rev bounds with last :: _ -> last = String.length s | [] -> false))

(* every byte-prefix decodes to exactly the frames fully contained in it;
   the valid-byte count is the greatest frame boundary inside the cut *)
let prop_prefix =
  QCheck.Test.make ~name:"every byte-prefix decodes to the contained frames" ~count:500
    (QCheck.pair arb_log QCheck.small_nat) (fun (entries, n) ->
      let s = encode entries in
      let cut = n mod (String.length s + 1) in
      let recs, valid = Wal.decode (String.sub s 0 cut) in
      if cut < String.length Wal.header then recs = [] && valid = 0
      else begin
        let bounds = Wal.boundaries s in
        let exp_valid = List.fold_left (fun acc b -> if b <= cut then max acc b else acc) 0 bounds in
        let exp_count = List.length (List.filter (fun b -> b > 8 && b <= cut) bounds) in
        valid = exp_valid
        && List.length recs = exp_count
        && List.for_all2 frame_eq (List.filteri (fun i _ -> i < exp_count) entries) recs
      end)

(* a corrupted byte stops parsing at the frame it hits: the len/crc check
   rejects the frame, everything before it still decodes *)
let prop_corrupt =
  QCheck.Test.make ~name:"corruption never parses past its frame" ~count:500
    (QCheck.triple arb_log QCheck.small_nat (QCheck.int_range 1 255)) (fun (entries, pos, mask) ->
      QCheck.assume (entries <> []);
      let s = encode entries in
      let header_len = String.length Wal.header in
      let pos = header_len + (pos mod (String.length s - header_len)) in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
      let recs, valid = Wal.decode (Bytes.to_string b) in
      (* the frame containing [pos] starts at the greatest boundary <= pos *)
      let bounds = Wal.boundaries s in
      let exp_valid = List.fold_left (fun acc bd -> if bd <= pos then max acc bd else acc) 0 bounds in
      let exp_count = List.length (List.filter (fun bd -> bd > 8 && bd <= pos) bounds) in
      valid = exp_valid
      && List.length recs = exp_count
      && List.for_all2 frame_eq (List.filteri (fun i _ -> i < exp_count) entries) recs)

let prop_garbage =
  QCheck.Test.make ~name:"decode never raises on arbitrary bytes" ~count:500
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun s ->
      let _, valid = Wal.decode s in
      valid <= String.length s)

(* the semantic face of the prefix property: the commits visible in any
   byte-prefix are a list-prefix of the full log's commits — recovery can
   only land on a committed history the full run also went through *)
let prop_commit_prefix =
  QCheck.Test.make ~name:"prefix commits are a prefix of the log's commits" ~count:500
    (QCheck.pair arb_log QCheck.small_nat) (fun (entries, n) ->
      let s = encode entries in
      let cut = n mod (String.length s + 1) in
      let commits img =
        fst (Wal.decode img)
        |> List.filter_map (function _, Wal.R_commit t -> Some t | _ -> None)
      in
      let all = commits s and seen = commits (String.sub s 0 cut) in
      List.length seen <= List.length all
      && seen = List.filteri (fun i _ -> i < List.length seen) all)

let suite seed =
  List.mapi
    (fun i t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed; i |]) t)
    [ prop_roundtrip; prop_boundaries; prop_prefix; prop_corrupt; prop_garbage; prop_commit_prefix ]
