(* Unit tests: WAL, transactions, recovery, buffer pool, page layouts. *)

open Relational

let mk_db () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (1, 10), (2, 20)");
  db

let test_rollback_insert () =
  let db = mk_db () in
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO t VALUES (3, 30)");
  Alcotest.(check int) "visible in txn" 3 (List.length (Db.rows_of db "SELECT * FROM t"));
  ignore (Db.exec db "ROLLBACK");
  Alcotest.(check int) "gone after rollback" 2 (List.length (Db.rows_of db "SELECT * FROM t"))

let test_rollback_update_delete () =
  let db = mk_db () in
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE t SET v = 99 WHERE id = 1");
  ignore (Db.exec db "DELETE FROM t WHERE id = 2");
  ignore (Db.exec db "ROLLBACK");
  let rows = Db.rows_of db "SELECT v FROM t ORDER BY id" in
  Alcotest.(check int) "both rows back" 2 (List.length rows);
  Alcotest.(check bool) "value restored" true (Value.equal (List.hd rows).(0) (Value.Int 10))

let test_commit_persists () =
  let db = mk_db () in
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE t SET v = 99 WHERE id = 1");
  ignore (Db.exec db "COMMIT");
  Alcotest.(check bool) "committed" true
    (Value.equal (List.hd (Db.rows_of db "SELECT v FROM t WHERE id = 1")).(0) (Value.Int 99))

let test_rollback_restores_indexes () =
  let db = mk_db () in
  ignore (Db.exec db "CREATE INDEX t_v ON t (v)");
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE t SET v = 999 WHERE id = 1");
  ignore (Db.exec db "ROLLBACK");
  (* index lookup must see the restored value *)
  Alcotest.(check int) "index sees old value" 1
    (List.length (Db.rows_of db "SELECT * FROM t WHERE v = 10"))

let test_nested_begin_rejected () =
  let db = mk_db () in
  ignore (Db.exec db "BEGIN");
  (try
     ignore (Db.exec db "BEGIN");
     Alcotest.fail "expected nested-begin error"
   with Txn.Txn_error _ -> ());
  ignore (Db.exec db "ROLLBACK")

let test_commit_without_begin () =
  let db = mk_db () in
  try
    ignore (Db.exec db "COMMIT");
    Alcotest.fail "expected error"
  with Txn.Txn_error _ -> ()

let test_recovery_replay () =
  let db = mk_db () in
  (* committed txn + aborted txn + autocommit ops *)
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO t VALUES (3, 30)");
  ignore (Db.exec db "COMMIT");
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO t VALUES (4, 40)");
  ignore (Db.exec db "ROLLBACK");
  ignore (Db.exec db "UPDATE t SET v = 11 WHERE id = 1");
  (* replay the log onto a fresh catalog with empty same-schema tables *)
  let db2 = Db.create () in
  ignore (Db.exec db2 "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  Wal.replay (Txn.wal (Db.txn db)) (Db.catalog db2);
  let dump d = Db.rows_of d "SELECT id, v FROM t ORDER BY id" in
  let a = dump db and b = dump db2 in
  Alcotest.(check int) "same cardinality" (List.length a) (List.length b);
  List.iter2 (fun x y -> Alcotest.(check bool) "same row" true (Row.equal x y)) a b

let test_wal_grows () =
  let db = mk_db () in
  let before = Wal.length (Txn.wal (Db.txn db)) in
  ignore (Db.exec db "INSERT INTO t VALUES (5, 50)");
  Alcotest.(check bool) "logged" true (Wal.length (Txn.wal (Db.txn db)) > before)

(* ---- buffer pool and page layouts (E4 machinery) ---- *)

let test_buffer_pool_lru () =
  let pool = Buffer_pool.create ~capacity:2 () in
  Buffer_pool.access pool 1;
  Buffer_pool.access pool 2;
  Buffer_pool.access pool 1;
  (* 1 is MRU *)
  Buffer_pool.access pool 3;
  (* evicts 2 *)
  Buffer_pool.access pool 2;
  (* fault *)
  Alcotest.(check int) "faults" 4 (Buffer_pool.faults pool);
  Alcotest.(check int) "hits" 1 (Buffer_pool.hits pool)

let test_table_clustered_layout () =
  let t = Table.create ~name:"x" (Schema.make [ Schema.column "a" Schema.Ty_int ]) in
  for i = 0 to 9 do
    ignore (Table.insert t [| Value.Int i |])
  done;
  let layout = Page.table_clustered ~rows_per_page:4 [ t ] in
  Alcotest.(check int) "3 pages for 10 rows" 3 (Page.page_count layout);
  Alcotest.(check int) "row 0 page" (Page.page_of layout t 0) (Page.page_of layout t 3);
  Alcotest.(check bool) "row 4 different page" true
    (Page.page_of layout t 4 <> Page.page_of layout t 0)

let test_co_clustered_layout_interleaves () =
  let a = Table.create ~name:"pa" (Schema.make [ Schema.column "k" Schema.Ty_int ]) in
  let b = Table.create ~name:"ch" (Schema.make [ Schema.column "k" Schema.Ty_int ]) in
  for i = 0 to 3 do
    ignore (Table.insert a [| Value.Int i |]);
    ignore (Table.insert b [| Value.Int i |])
  done;
  (* interleave parent i with child i *)
  let order = List.concat_map (fun i -> [ (a, i); (b, i) ]) [ 0; 1; 2; 3 ] in
  let layout = Page.co_clustered ~rows_per_page:2 ~order [ a; b ] in
  Alcotest.(check int) "parent 0 and child 0 share a page" (Page.page_of layout a 0)
    (Page.page_of layout b 0);
  Alcotest.(check bool) "pairs separated" true
    (Page.page_of layout a 0 <> Page.page_of layout a 1)

let test_layout_attach_counts_faults () =
  let t = Table.create ~name:"y" (Schema.make [ Schema.column "a" Schema.Ty_int ]) in
  for i = 0 to 19 do
    ignore (Table.insert t [| Value.Int i |])
  done;
  let layout = Page.table_clustered ~rows_per_page:5 [ t ] in
  let pool = Buffer_pool.create ~capacity:100 () in
  let detach = Page.attach layout pool [ t ] in
  Table.iter (fun _ _ -> ()) t;
  detach ();
  (* a full scan of 20 rows on 4 pages = 4 faults, 16 hits *)
  Alcotest.(check int) "4 faults" 4 (Buffer_pool.faults pool);
  Alcotest.(check int) "16 hits" 16 (Buffer_pool.hits pool)

let suite =
  [ Alcotest.test_case "rollback undoes insert" `Quick test_rollback_insert;
    Alcotest.test_case "rollback undoes update+delete" `Quick test_rollback_update_delete;
    Alcotest.test_case "commit persists" `Quick test_commit_persists;
    Alcotest.test_case "rollback restores indexes" `Quick test_rollback_restores_indexes;
    Alcotest.test_case "nested BEGIN rejected" `Quick test_nested_begin_rejected;
    Alcotest.test_case "COMMIT without BEGIN" `Quick test_commit_without_begin;
    Alcotest.test_case "recovery replay" `Quick test_recovery_replay;
    Alcotest.test_case "WAL grows" `Quick test_wal_grows;
    Alcotest.test_case "buffer pool LRU" `Quick test_buffer_pool_lru;
    Alcotest.test_case "table-clustered layout" `Quick test_table_clustered_layout;
    Alcotest.test_case "CO-clustered layout" `Quick test_co_clustered_layout_interleaves;
    Alcotest.test_case "layout+pool fault counting" `Quick test_layout_attach_counts_faults ]
