(* Translation ablations (E5/E6).

   [extract_unshared] evaluates a (DAG) CO definition with one relational
   query per node and per edge but WITHOUT common-subexpression sharing:
   instead of reusing the materialized parent extents, every query inlines
   the full derivation of every ancestor — exactly the recomputation the
   paper's translator avoids by "using the parent tuples again to find the
   tuples of the associated children".

   The naive-fixpoint ablation for recursive COs lives in the main
   translator ({!Xnf.Translate.fetch} with [~fixpoint:Naive]); this module
   covers the sharing dimension, which only type-checks on DAG schemas
   (inlining diverges on cycles). *)

open Relational

exception Unsupported of string

(* inlining ancestor derivations diverges on cycles, so only DAG schemas
   are supported; callers classify up front instead of catching *)
let supported (def : Xnf.Co_schema.t) : bool = not (Xnf.Co_schema.is_recursive def)

(* the reachable extent of a node as one self-contained SQL query:
     root:      its derivation;
     non-root:  SELECT DISTINCT c.* FROM (parent-extent) p, (derivation) c
                [, using u] WHERE pred      -- one per incoming edge *)
let rec extent_queries (def : Xnf.Co_schema.t) (name : string) : Sql_ast.select list =
  let nd = Xnf.Co_schema.node def name in
  match Xnf.Co_schema.incoming def name with
  | [] -> [ nd.Xnf.Co_schema.nd_query ]
  | edges ->
    List.concat_map
      (fun (ed : Xnf.Co_schema.edge_def) ->
        List.map
          (fun parent_extent ->
            let from =
              Sql_ast.From_select (parent_extent, ed.Xnf.Co_schema.ed_parent_alias)
              :: Sql_ast.From_select (nd.Xnf.Co_schema.nd_query, ed.Xnf.Co_schema.ed_child_alias)
              ::
              (match ed.Xnf.Co_schema.ed_using with
              | None -> []
              | Some (t, a) -> [ Sql_ast.From_table (t, Some a) ])
            in
            { (Sql_ast.simple_select ~distinct:true
                 [ Sql_ast.Sel_table_star ed.Xnf.Co_schema.ed_child_alias ]
                 from
                 (Some ed.Xnf.Co_schema.ed_pred))
              with Sql_ast.sel_distinct = true })
          (extent_queries def ed.Xnf.Co_schema.ed_parent))
      edges

type result = {
  node_rows : (string * Row.t list) list;  (** deduplicated reachable extents *)
  edge_rows : (string * Row.t list) list;  (** parent-row ++ child-row pairs *)
  queries_issued : int;
}

(** [extract_unshared db def] evaluates [def] without shared temporaries.
    @raise Unsupported on recursive schemas. *)
let extract_unshared db (def : Xnf.Co_schema.t) : result =
  if not (supported def) then
    raise (Unsupported "unshared inlining diverges on recursive composite objects");
  let queries = ref 0 in
  let run q =
    incr queries;
    (Db.query_ast db q).Db.rrows
  in
  let dedupe rows =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun r ->
        let key = (Row.hash r, Array.to_list r) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      rows
  in
  let node_rows =
    List.map
      (fun (nd : Xnf.Co_schema.node_def) ->
        let rows =
          List.concat_map run (extent_queries def nd.Xnf.Co_schema.nd_name) |> dedupe
        in
        (nd.Xnf.Co_schema.nd_name, rows))
      def.Xnf.Co_schema.co_nodes
  in
  (* each edge joins fully re-derived reachable extents of both partners *)
  let edge_rows =
    List.map
      (fun (ed : Xnf.Co_schema.edge_def) ->
        let parent_extents = extent_queries def ed.Xnf.Co_schema.ed_parent in
        let child_extents = extent_queries def ed.Xnf.Co_schema.ed_child in
        let rows =
          List.concat_map
            (fun pq ->
              List.concat_map
                (fun cq ->
                  let from =
                    Sql_ast.From_select (pq, ed.Xnf.Co_schema.ed_parent_alias)
                    :: Sql_ast.From_select (cq, ed.Xnf.Co_schema.ed_child_alias)
                    ::
                    (match ed.Xnf.Co_schema.ed_using with
                    | None -> []
                    | Some (t, a) -> [ Sql_ast.From_table (t, Some a) ])
                  in
                  run
                    (Sql_ast.simple_select ~distinct:true
                       [ Sql_ast.Sel_table_star ed.Xnf.Co_schema.ed_parent_alias;
                         Sql_ast.Sel_table_star ed.Xnf.Co_schema.ed_child_alias ]
                       from
                       (Some ed.Xnf.Co_schema.ed_pred)))
                child_extents)
            parent_extents
          |> dedupe
        in
        (ed.Xnf.Co_schema.ed_name, rows))
      def.Xnf.Co_schema.co_edges
  in
  { node_rows; edge_rows; queries_issued = !queries }
