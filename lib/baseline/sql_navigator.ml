(* The "regular SQL interface" baseline (E1/E2).

   Applications without the XNF cache navigate structured data by issuing
   one SQL statement per step: fetch a tuple, fetch its related tuples,
   and so on. Every call pays the full pipeline (parse, bind, rewrite,
   optimize, execute); on the paper's systems it additionally paid an
   inter-process round trip between the application and the DBMS.

   This module counts calls so that benchmarks can report both the real
   measured cost and the modeled cost with a configurable per-call IPC
   overhead — the gap XNF's in-process cache eliminates. *)

open Relational

type t = {
  nav_db : Db.t;
  mutable calls : int;  (** SQL statements issued so far *)
  mutable rows_fetched : int;
}

(** [create db] is a navigator session over [db]. *)
let create db = { nav_db = db; calls = 0; rows_fetched = 0 }

(** [calls nav] / [rows_fetched nav]: counters since creation/reset. *)
let calls nav = nav.calls

let rows_fetched nav = nav.rows_fetched

(** [reset nav] zeroes the counters. *)
let reset nav =
  nav.calls <- 0;
  nav.rows_fetched <- 0

(** [query nav sql] issues one SQL call and returns its rows. *)
let query nav sql =
  nav.calls <- nav.calls + 1;
  let rows = (Db.query nav.nav_db sql).Db.rrows in
  nav.rows_fetched <- nav.rows_fetched + List.length rows;
  rows

(** [query_one nav sql] issues one call expecting at most one row. *)
let query_one nav sql = match query nav sql with [] -> None | r :: _ -> Some r

(** [modeled_ipc_seconds nav ~ipc_us] is the additional time the paper's
    setting would have spent on inter-process round trips: one per call at
    [ipc_us] microseconds. *)
let modeled_ipc_seconds nav ~ipc_us = float_of_int nav.calls *. ipc_us *. 1e-6

(* ---- generic per-step navigation over a CO definition ----

   [children_of] mirrors what a hand-written application does: for a parent
   row, fetch the related child rows of one relationship with a fresh,
   parameter-substituted query. *)

let literal v = Sql_ast.E_lit v

(* substitute parent column references in an edge predicate with the
   parent row's values, leaving child/using references intact *)
let rec subst_parent ~alias ~(schema : Schema.t) ~(row : Row.t) (e : Sql_ast.expr) : Sql_ast.expr =
  let s = subst_parent ~alias ~schema ~row in
  match e with
  | Sql_ast.E_col (Some q, n) when String.equal (String.lowercase_ascii q) alias -> begin
    match Schema.find_opt schema n with
    | Some i -> literal row.(i)
    | None -> e
  end
  | Sql_ast.E_col _ | Sql_ast.E_lit _ | Sql_ast.E_count_star | Sql_ast.E_param _ -> e
  | Sql_ast.E_cmp (op, a, b) -> Sql_ast.E_cmp (op, s a, s b)
  | Sql_ast.E_arith (op, a, b) -> Sql_ast.E_arith (op, s a, s b)
  | Sql_ast.E_neg a -> Sql_ast.E_neg (s a)
  | Sql_ast.E_and (a, b) -> Sql_ast.E_and (s a, s b)
  | Sql_ast.E_or (a, b) -> Sql_ast.E_or (s a, s b)
  | Sql_ast.E_not a -> Sql_ast.E_not (s a)
  | Sql_ast.E_is_null a -> Sql_ast.E_is_null (s a)
  | Sql_ast.E_is_not_null a -> Sql_ast.E_is_not_null (s a)
  | Sql_ast.E_like (a, p) -> Sql_ast.E_like (s a, s p)
  | Sql_ast.E_in_list (a, items) -> Sql_ast.E_in_list (s a, List.map s items)
  | Sql_ast.E_case (branches, else_) ->
    Sql_ast.E_case (List.map (fun (c, r) -> (s c, s r)) branches, Option.map s else_)
  | Sql_ast.E_fn (n, args) -> Sql_ast.E_fn (n, List.map s args)
  | Sql_ast.E_fn_distinct (n, a) -> Sql_ast.E_fn_distinct (n, s a)
  | Sql_ast.E_exists _ | Sql_ast.E_in_query _ | Sql_ast.E_scalar _ -> e

(** [children_of nav ed ~parent_schema ~parent_row] issues the per-step
    query of edge [ed] for one parent tuple: the child derivation joined
    with the USING table if any, with the parent's values substituted into
    the predicate. [child_query] is the child node's derivation. *)
let children_of nav (ed : Xnf.Co_schema.edge_def) ~child_query ~parent_schema ~parent_row =
  let pred =
    subst_parent ~alias:ed.Xnf.Co_schema.ed_parent_alias ~schema:parent_schema ~row:parent_row
      ed.Xnf.Co_schema.ed_pred
  in
  (* a bare star-select child goes in as the table itself, so that the
     optimizer can pick an index — what a hand-written application does *)
  let child_ref =
    match child_query with
    | { Sql_ast.sel_items = [ Sql_ast.Sel_star ]; sel_from = [ Sql_ast.From_table (t, _) ];
        sel_where = None; sel_distinct = false; sel_group_by = []; sel_having = None;
        sel_unions = []; sel_order_by = []; sel_limit = None } ->
      Sql_ast.From_table (t, Some ed.Xnf.Co_schema.ed_child_alias)
    | _ -> Sql_ast.From_select (child_query, ed.Xnf.Co_schema.ed_child_alias)
  in
  let from =
    match ed.Xnf.Co_schema.ed_using with
    | None -> [ child_ref ]
    | Some (t, a) -> [ child_ref; Sql_ast.From_table (t, Some a) ]
  in
  let q =
    Sql_ast.simple_select
      [ Sql_ast.Sel_table_star ed.Xnf.Co_schema.ed_child_alias ]
      from (Some pred)
  in
  nav.calls <- nav.calls + 1;
  let rows = (Db.query_ast nav.nav_db q).Db.rrows in
  nav.rows_fetched <- nav.rows_fetched + List.length rows;
  rows

(** [extract_navigational nav def] loads a whole CO the pre-XNF way: fetch
    the root extents with one query each, then walk the schema graph
    issuing one query per (parent tuple, relationship). Returns the number
    of tuples fetched (with sharing-induced repeats — the application
    cannot see that two parents reach the same child). *)
let extract_navigational nav (def : Xnf.Co_schema.t) =
  let catalog = Db.catalog nav.nav_db in
  let schema_of_node (nd : Xnf.Co_schema.node_def) =
    let qgm = Db.bind_select nav.nav_db nd.Xnf.Co_schema.nd_query in
    Qgm.schema_of catalog qgm
  in
  let fetched = ref 0 in
  let rec visit (nd : Xnf.Co_schema.node_def) (row : Row.t) (depth : int) =
    incr fetched;
    if depth < 64 then
      List.iter
        (fun (ed : Xnf.Co_schema.edge_def) ->
          let child_nd = Xnf.Co_schema.node def ed.Xnf.Co_schema.ed_child in
          let rows =
            children_of nav ed ~child_query:child_nd.Xnf.Co_schema.nd_query
              ~parent_schema:(schema_of_node nd) ~parent_row:row
          in
          List.iter (fun r -> visit child_nd r (depth + 1)) rows)
        (Xnf.Co_schema.outgoing def nd.Xnf.Co_schema.nd_name)
  in
  List.iter
    (fun (root : Xnf.Co_schema.node_def) ->
      let rows = query nav (Sql_ast.select_to_string root.Xnf.Co_schema.nd_query) in
      List.iter (fun r -> visit root r 0) rows)
    (Xnf.Co_schema.roots def);
  !fetched
