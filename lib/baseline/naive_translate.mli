(** Translation ablation (experiment E5): XNF evaluation WITHOUT
    common-subexpression sharing — every query re-derives the full
    derivation of every ancestor instead of reusing materialized extents.
    Only defined on DAG schemas (inlining diverges on cycles). *)

open Relational

exception Unsupported of string

(** [supported def] holds when [def] is a DAG; callers should classify
    schemas with this predicate up front rather than catching
    {!Unsupported}. *)
val supported : Xnf.Co_schema.t -> bool

type result = {
  node_rows : (string * Row.t list) list;  (** deduplicated reachable extents *)
  edge_rows : (string * Row.t list) list;  (** parent-row ++ child-row pairs *)
  queries_issued : int;
}

(** [extract_unshared db def] evaluates [def] with fully inlined,
    recomputing queries.
    @raise Unsupported on recursive schemas. *)
val extract_unshared : Db.t -> Xnf.Co_schema.t -> result
