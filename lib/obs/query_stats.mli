(** Per-statement execution statistics and the slow-query log.

    A pg_stat_statements-style aggregator: executions are folded into one
    entry per statement fingerprint (normalized text with literals
    replaced by [?] — computed by the caller; this module only
    aggregates), and executions at or over the slow-log threshold are
    additionally kept verbatim in a bounded ring (newest
    first). Process-global and unlocked, like {!Metrics}; materialized by
    the [sys.statements] / [sys.slow_queries] catalog views.

    The threshold starts disabled; the [XNF_SLOWLOG_MS] environment
    variable (milliseconds) enables it at startup, and the shell's
    [\slowlog] meta command adjusts it at runtime. *)

type entry = {
  qs_fingerprint : string;
  qs_kind : string;  (** "sql" | "xnf" *)
  mutable qs_calls : int;
  mutable qs_errors : int;
  mutable qs_rows : int;  (** cumulative rows returned / tuples loaded *)
  mutable qs_total_ns : float;
  mutable qs_min_ns : float;
  mutable qs_max_ns : float;
  mutable qs_cache_hits : int;
  mutable qs_cache_misses : int;
  mutable qs_hash_probes : int;
}

type slow = {
  sl_seq : int;  (** monotonically increasing id, 1-based *)
  sl_fingerprint : string;
  sl_text : string;  (** the exact statement text as executed *)
  sl_ns : float;
  sl_rows : int;
  sl_at_ns : float;  (** wall-clock completion time (epoch ns) *)
}

(** [set_slowlog_ms t] sets the slow-query threshold in milliseconds
    ([Some 0.] records every execution); [None] disables the log. *)
val set_slowlog_ms : float option -> unit

(** [slowlog_ms ()] is the current threshold in milliseconds, if set. *)
val slowlog_ms : unit -> float option

(** [record ~kind ~fingerprint ~text ~elapsed_ns ~rows ~error
    ~cache_hits ~cache_misses ~hash_probes] folds one execution into the
    aggregate for [fingerprint], and into the slow ring when the
    threshold is enabled and [elapsed_ns] meets it. *)
val record :
  kind:string ->
  fingerprint:string ->
  text:string ->
  elapsed_ns:float ->
  rows:int ->
  error:bool ->
  cache_hits:int ->
  cache_misses:int ->
  hash_probes:int ->
  unit

(** [entries ()] lists the aggregates, most total time first. *)
val entries : unit -> entry list

(** [find fingerprint] is the aggregate for [fingerprint], if tracked. *)
val find : string -> entry option

(** [slow_queries ()] lists over-threshold executions, newest first. *)
val slow_queries : unit -> slow list

(** [reset ()] drops every aggregate and the slow ring; the threshold is
    kept. *)
val reset : unit -> unit

(** [to_json_top n] renders the top [n] aggregates by total time as a
    JSON array (the [bench --json] statement dump). *)
val to_json_top : int -> string
