(* Per-statement execution statistics and the slow-query log.

   A pg_stat_statements-style aggregator: statements are keyed by a
   normalized fingerprint (literals replaced by [?]; computed by the SQL
   layer, which owns the lexer — this module only aggregates), and each
   execution folds its latency, row count, error flag and cache/probe
   deltas into the fingerprint's entry. Executions slower than the
   slow-log threshold are additionally kept verbatim in a bounded ring.

   Like {!Metrics}, the registry is process-global and unlocked (one
   session per process); [reset] gives tests and benchmark iterations a
   clean window. The [sys.statements] and [sys.slow_queries] catalog
   views materialize from here. *)

type entry = {
  qs_fingerprint : string;
  qs_kind : string;  (** "sql" | "xnf" — classification of the statement *)
  mutable qs_calls : int;
  mutable qs_errors : int;
  mutable qs_rows : int;  (** cumulative rows returned / tuples loaded *)
  mutable qs_total_ns : float;
  mutable qs_min_ns : float;
  mutable qs_max_ns : float;
  mutable qs_cache_hits : int;  (** result+plan cache hits during executions *)
  mutable qs_cache_misses : int;
  mutable qs_hash_probes : int;  (** batch hash probe passes during executions *)
}

type slow = {
  sl_seq : int;  (** monotonically increasing id, 1-based *)
  sl_fingerprint : string;
  sl_text : string;  (** the exact statement text as executed *)
  sl_ns : float;
  sl_rows : int;
  sl_at_ns : float;  (** wall-clock completion time (epoch ns) *)
}

(* at most this many distinct fingerprints are tracked; beyond it new
   fingerprints are dropped (counted) rather than evicting hot entries *)
let max_entries = 1024

(* the slow ring keeps the newest [slow_cap] over-threshold executions *)
let slow_cap = 64

let entries_tbl : (string, entry) Hashtbl.t = Hashtbl.create 64
let slow_ring : slow list ref = ref []
let slow_seq = ref 0
let m_dropped = Metrics.counter "obs.querystats.dropped"
let m_slow = Metrics.counter "obs.querystats.slow"

(* slow-log threshold in nanoseconds; None = disabled (the default) *)
let slowlog_ns : float option ref = ref None

(** [set_slowlog_ms t] sets the slow-query threshold in milliseconds
    ([Some 0.] records every execution); [None] disables the log. *)
let set_slowlog_ms = function
  | Some ms when ms >= 0. -> slowlog_ns := Some (ms *. 1e6)
  | Some _ | None -> slowlog_ns := None

(** [slowlog_ms ()] is the current threshold in milliseconds, if set. *)
let slowlog_ms () = Option.map (fun ns -> ns /. 1e6) !slowlog_ns

(* environment override, read once at startup *)
let () =
  match Sys.getenv_opt "XNF_SLOWLOG_MS" with
  | Some s -> begin
    match float_of_string_opt (String.trim s) with
    | Some ms when ms >= 0. -> set_slowlog_ms (Some ms)
    | _ -> ()
  end
  | None -> ()

(** [record ~kind ~fingerprint ~text ~elapsed_ns ~rows ~error ~cache_hits
    ~cache_misses ~hash_probes] folds one execution into the aggregate for
    [fingerprint] and appends it to the slow ring when the threshold is
    enabled and met. *)
let record ~kind ~fingerprint ~text ~elapsed_ns ~rows ~error ~cache_hits ~cache_misses
    ~hash_probes =
  (match Hashtbl.find_opt entries_tbl fingerprint with
  | Some e ->
    e.qs_calls <- e.qs_calls + 1;
    if error then e.qs_errors <- e.qs_errors + 1;
    e.qs_rows <- e.qs_rows + rows;
    e.qs_total_ns <- e.qs_total_ns +. elapsed_ns;
    if elapsed_ns < e.qs_min_ns then e.qs_min_ns <- elapsed_ns;
    if elapsed_ns > e.qs_max_ns then e.qs_max_ns <- elapsed_ns;
    e.qs_cache_hits <- e.qs_cache_hits + cache_hits;
    e.qs_cache_misses <- e.qs_cache_misses + cache_misses;
    e.qs_hash_probes <- e.qs_hash_probes + hash_probes
  | None ->
    if Hashtbl.length entries_tbl >= max_entries then Metrics.incr m_dropped
    else
      Hashtbl.replace entries_tbl fingerprint
        { qs_fingerprint = fingerprint; qs_kind = kind; qs_calls = 1;
          qs_errors = (if error then 1 else 0); qs_rows = rows; qs_total_ns = elapsed_ns;
          qs_min_ns = elapsed_ns; qs_max_ns = elapsed_ns; qs_cache_hits = cache_hits;
          qs_cache_misses = cache_misses; qs_hash_probes = hash_probes });
  match !slowlog_ns with
  | Some thr when elapsed_ns >= thr ->
    incr slow_seq;
    Metrics.incr m_slow;
    let s =
      { sl_seq = !slow_seq; sl_fingerprint = fingerprint; sl_text = text; sl_ns = elapsed_ns;
        sl_rows = rows; sl_at_ns = Metrics.now_ns () }
    in
    slow_ring := s :: List.filteri (fun i _ -> i < slow_cap - 1) !slow_ring
  | _ -> ()

(** [entries ()] lists the aggregates, most total time first. *)
let entries () =
  Hashtbl.fold (fun _ e acc -> e :: acc) entries_tbl []
  |> List.sort (fun a b -> compare (b.qs_total_ns, a.qs_fingerprint) (a.qs_total_ns, b.qs_fingerprint))

(** [find fingerprint] is the aggregate for [fingerprint], if tracked. *)
let find fingerprint = Hashtbl.find_opt entries_tbl fingerprint

(** [slow_queries ()] lists the over-threshold executions, newest
    first. *)
let slow_queries () = !slow_ring

(** [reset ()] drops every aggregate and the slow ring (the threshold is
    kept). *)
let reset () =
  Hashtbl.reset entries_tbl;
  slow_ring := [];
  slow_seq := 0

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** [to_json_top n] renders the top [n] aggregates by total time as a
    JSON array (the [bench --json] statement dump). *)
let to_json_top n =
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i e ->
      if i < n then begin
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b
          "{\"fingerprint\":\"%s\",\"kind\":\"%s\",\"calls\":%d,\"errors\":%d,\"rows\":%d,\
           \"total_ms\":%.3f,\"min_ms\":%.3f,\"max_ms\":%.3f,\"cache_hits\":%d,\
           \"cache_misses\":%d,\"hash_probes\":%d}"
          (json_escape e.qs_fingerprint) (json_escape e.qs_kind) e.qs_calls e.qs_errors e.qs_rows
          (e.qs_total_ns /. 1e6) (e.qs_min_ns /. 1e6) (e.qs_max_ns /. 1e6) e.qs_cache_hits
          e.qs_cache_misses e.qs_hash_probes
      end)
    (entries ());
  Buffer.add_char b ']';
  Buffer.contents b
