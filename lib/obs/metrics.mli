(** Process-global metrics registry: named counters, gauges and
    fixed-bucket latency histograms.

    Instruments are memoized by name — [counter n] returns the same cell
    on every call, so hot paths resolve their instrument once at module
    initialization and pay one field update per event. Renders to JSON and
    Prometheus text; [reset] zeroes values (registrations survive) so
    tests and benchmark iterations can diff clean windows.

    The engine is single-threaded; the registry does no locking. *)

type counter
type gauge
type histogram

(** [now_ns ()] is a wall-clock timestamp in nanoseconds (the time source
    shared by {!Trace} and plan instrumentation). *)
val now_ns : unit -> float

(** [counter name] registers (or finds) the counter [name]. *)
val counter : string -> counter

(** [incr ?by c] adds [by] (default 1) to [c]. *)
val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

(** [counter_get name] is the value of counter [name], 0 when never
    registered. *)
val counter_get : string -> int

(** [gauge name] registers (or finds) the gauge [name]. *)
val gauge : string -> gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Default latency histogram buckets, nanoseconds: 1us..10s in decades. *)
val default_buckets : float array

(** [histogram ?bounds name] registers (or finds) a histogram; [bounds]
    (strictly ascending upper bounds; an overflow bucket is implicit) is
    honored only on first registration.
    @raise Invalid_argument when [bounds] is not strictly ascending. *)
val histogram : ?bounds:float array -> string -> histogram

(** [observe h v] records one observation. *)
val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

(** [hist_buckets h] lists buckets as [(upper_bound, count)] pairs in
    ascending order; the overflow bucket carries [None]. *)
val hist_buckets : histogram -> (float option * int) list

(** [hist_quantile h q] is the interpolated [q]-quantile (0..1) of the
    recorded observations, reconstructed from bucket counts (overflow
    observations are attributed to the last finite bound). NaN when
    empty. *)
val hist_quantile : histogram -> float -> float

(** [hist_sum_get name] / [hist_count_get name]: read-side lookups by
    name; 0 when never registered. *)

val hist_sum_get : string -> float
val hist_count_get : string -> int

(** [reset ()] zeroes every instrument but keeps registrations. *)
val reset : unit -> unit

(** Registry enumeration (name-sorted), for renderers and the [sys.*]
    catalog views. *)

val counters_list : unit -> (string * int) list
val gauges_list : unit -> (string * float) list
val histograms_list : unit -> (string * histogram) list

(** [to_json ()] renders the registry as one JSON object. *)
val to_json : unit -> string

(** [to_prometheus ()] renders the registry in the Prometheus text
    exposition format. *)
val to_prometheus : unit -> string

(** [dump ?prefix ppf ()] prints a human-oriented snapshot of every
    nonzero instrument (the shell's [\metrics]); histograms include
    interpolated p50/p95/p99. [prefix] restricts the dump to instruments
    whose name starts with it. *)
val dump : ?prefix:string -> Format.formatter -> unit -> unit
