(** Lightweight pipeline tracing: nested timed spans.

    [with_span name f] times [f] as one node of the current trace tree;
    completed root spans land in a ring buffer and every completion feeds
    the ["span.<name>"] latency histogram in {!Metrics}. EXPLAIN ANALYZE
    and the shell's [\trace] print these trees. *)

type span = {
  sp_name : string;
  mutable sp_elapsed_ns : float;  (** inclusive (children included) *)
  mutable sp_meta : (string * string) list;
  mutable sp_children : span list;
}

(** [set_enabled flag] turns tracing on/off (default on); off makes
    [with_span] a passthrough. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** [with_span ?meta name f] runs [f] inside a span named [name]; the span
    closes (and is observed) even when [f] raises. *)
val with_span : ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [add_meta key value] attaches metadata to the innermost open span
    (no-op outside any span). Operators report ["rows"] counts this way. *)
val add_meta : string -> string -> unit

(** [recent ()] lists completed root spans, newest first (ring of 32). *)
val recent : unit -> span list

(** [last ()] is the most recently completed root span. *)
val last : unit -> span option

(** [clear ()] drops the ring buffer. *)
val clear : unit -> unit

(** [pp ppf sp] prints the span tree, one line per span with inclusive
    milliseconds and trailing metadata. *)
val pp : Format.formatter -> span -> unit

val to_string : span -> string

(** [find sp name] is the first span named [name] in pre-order. *)
val find : span -> string -> span option

(** [meta sp key] is the last metadata value recorded for [key]. *)
val meta : span -> string -> string option
