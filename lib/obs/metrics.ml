(* Process-global metrics registry.

   Counters, gauges and fixed-bucket latency histograms, registered by
   dotted name ("bufpool.hits", "xnf.fetch.miss", "span.execute_ns").
   Instruments are memoized by name: [counter n] returns the same cell on
   every call, so hot paths resolve their instrument once at module
   initialization and pay one unboxed field update per event. The registry
   renders to JSON and to the Prometheus text exposition format; [reset]
   zeroes every value but keeps registrations, so tests and benchmark
   iterations can diff clean windows.

   The engine is single-threaded (one session per process); no locking. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array;  (** ascending upper bounds; +inf bucket implicit *)
  h_counts : int array;  (** length = |bounds| + 1, non-cumulative *)
  mutable h_count : int;
  mutable h_sum : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

(** [now_ns ()] is a wall-clock timestamp in nanoseconds (the time source
    shared by {!Trace} and plan instrumentation). *)
let now_ns () = Unix.gettimeofday () *. 1e9

(** [counter name] registers (or finds) the counter [name]. *)
let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace counters name c;
    c

(** [incr ?by c] adds [by] (default 1) to [c]. *)
let incr ?(by = 1) c = c.c_value <- c.c_value + by

let counter_value c = c.c_value

(** [counter_get name] is the current value of [name], 0 when never
    registered (read-side convenience for tests and renderers). *)
let counter_get name =
  match Hashtbl.find_opt counters name with Some c -> c.c_value | None -> 0

(** [gauge name] registers (or finds) the gauge [name]. *)
let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0. } in
    Hashtbl.replace gauges name g;
    g

let set g v = g.g_value <- v
let gauge_value g = g.g_value

(** Default latency buckets, nanoseconds: 1us .. 10s in decades. *)
let default_buckets = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 |]

(** [histogram ?bounds name] registers (or finds) the histogram [name].
    [bounds] (ascending upper bounds) is honored only on first
    registration.
    @raise Invalid_argument when [bounds] is not strictly ascending. *)
let histogram ?(bounds = default_buckets) name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    Array.iteri
      (fun i b -> if i > 0 && b <= bounds.(i - 1) then invalid_arg "Metrics.histogram: bounds")
      bounds;
    let h =
      { h_name = name; h_bounds = bounds; h_counts = Array.make (Array.length bounds + 1) 0;
        h_count = 0; h_sum = 0. }
    in
    Hashtbl.replace histograms name h;
    h

(** [observe h v] records one observation. *)
let observe h v =
  let n = Array.length h.h_bounds in
  let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

let hist_count h = h.h_count
let hist_sum h = h.h_sum

(** [hist_buckets h] lists the buckets as [(upper_bound, count)] pairs in
    ascending order; the overflow bucket carries [None]. *)
let hist_buckets h =
  Array.to_list
    (Array.mapi
       (fun i n ->
         ((if i < Array.length h.h_bounds then Some h.h_bounds.(i) else None), n))
       h.h_counts)

(** [hist_quantile h q] is the interpolated [q]-quantile (0..1) of the
    observations, reconstructed from the bucket counts: the target rank is
    located in its bucket and linearly interpolated between the bucket's
    bounds. Observations in the overflow bucket are attributed to its
    lower bound (no upper bound exists to interpolate toward). NaN when
    the histogram is empty. *)
let hist_quantile h q =
  if h.h_count = 0 then Float.nan
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let target = q *. float_of_int h.h_count in
    let nb = Array.length h.h_bounds in
    let rec go i cum =
      let here = float_of_int h.h_counts.(i) in
      if cum +. here >= target || i >= nb then begin
        let lo = if i = 0 then 0. else h.h_bounds.(i - 1) in
        let hi = if i < nb then h.h_bounds.(i) else lo in
        if here <= 0. then hi else lo +. ((hi -. lo) *. ((target -. cum) /. here))
      end
      else go (i + 1) (cum +. here)
    in
    go 0 0.
  end

(** [hist_sum_get name] is the sum of observations of [name], 0 when never
    registered. *)
let hist_sum_get name =
  match Hashtbl.find_opt histograms name with Some h -> h.h_sum | None -> 0.

let hist_count_get name =
  match Hashtbl.find_opt histograms name with Some h -> h.h_count | None -> 0

(** [reset ()] zeroes every instrument but keeps registrations. *)
let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_count <- 0;
      h.h_sum <- 0.)
    histograms

let sorted tbl =
  List.sort (fun (a, _) (b, _) -> compare a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(** Registry enumeration (name-sorted), for renderers and the sys.*
    catalog views. *)

let counters_list () = List.map (fun (n, c) -> (n, c.c_value)) (sorted counters)
let gauges_list () = List.map (fun (n, g) -> (n, g.g_value)) (sorted gauges)
let histograms_list () = sorted histograms

(* floats rendered compactly but losslessly enough for tooling *)
let jf v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(** [to_json ()] renders the whole registry as one JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,buckets:[[le,n],..]}}}]. *)
let to_json () =
  let b = Buffer.create 1024 in
  let comma first = if !first then first := false else Buffer.add_char b ',' in
  Buffer.add_string b "{\"counters\":{";
  let first = ref true in
  List.iter
    (fun (name, c) -> comma first; Printf.bprintf b "%S:%d" name c.c_value)
    (sorted counters);
  Buffer.add_string b "},\"gauges\":{";
  let first = ref true in
  List.iter
    (fun (name, g) -> comma first; Printf.bprintf b "%S:%s" name (jf g.g_value))
    (sorted gauges);
  Buffer.add_string b "},\"histograms\":{";
  let first = ref true in
  List.iter
    (fun (name, h) ->
      comma first;
      Printf.bprintf b "%S:{\"count\":%d,\"sum\":%s,\"buckets\":[" name h.h_count (jf h.h_sum);
      let bfirst = ref true in
      Array.iteri
        (fun i n ->
          comma bfirst;
          let le = if i < Array.length h.h_bounds then jf h.h_bounds.(i) else "\"+inf\"" in
          Printf.bprintf b "[%s,%d]" le n)
        h.h_counts;
      Buffer.add_string b "]}")
    (sorted histograms);
  Buffer.add_string b "}}";
  Buffer.contents b

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let prom_name name =
  String.map (fun ch -> match ch with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch | _ -> '_') name

(** [to_prometheus ()] renders the registry in the Prometheus text
    exposition format (histogram buckets cumulative, with [+Inf]). *)
let to_prometheus () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, c) ->
      let n = prom_name name in
      Printf.bprintf b "# TYPE %s counter\n%s %d\n" n n c.c_value)
    (sorted counters);
  List.iter
    (fun (name, g) ->
      let n = prom_name name in
      Printf.bprintf b "# TYPE %s gauge\n%s %s\n" n n (jf g.g_value))
    (sorted gauges);
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      Printf.bprintf b "# TYPE %s histogram\n" n;
      let cum = ref 0 in
      Array.iteri
        (fun i cnt ->
          cum := !cum + cnt;
          let le =
            if i < Array.length h.h_bounds then jf h.h_bounds.(i) else "+Inf"
          in
          Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" n le !cum)
        h.h_counts;
      Printf.bprintf b "%s_sum %s\n%s_count %d\n" n (jf h.h_sum) n h.h_count)
    (sorted histograms);
  Buffer.contents b

(** [dump ?prefix ppf ()] prints a human-oriented snapshot: every nonzero
    counter and gauge, and count/mean/p50/p95/p99 per histogram (the
    shell's [\metrics]). [prefix] restricts the dump to instruments whose
    name starts with it (e.g. ["xnf.translate."]). *)
let dump ?(prefix = "") ppf () =
  let keep name = String.starts_with ~prefix name in
  List.iter
    (fun (name, c) ->
      if c.c_value <> 0 && keep name then Format.fprintf ppf "%-40s %d@." name c.c_value)
    (sorted counters);
  List.iter
    (fun (name, g) ->
      if g.g_value <> 0. && keep name then Format.fprintf ppf "%-40s %s@." name (jf g.g_value))
    (sorted gauges);
  List.iter
    (fun (name, h) ->
      if h.h_count > 0 && keep name then
        Format.fprintf ppf "%-40s count=%d mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus@." name
          h.h_count
          (h.h_sum /. float_of_int h.h_count /. 1e3)
          (hist_quantile h 0.5 /. 1e3) (hist_quantile h 0.95 /. 1e3)
          (hist_quantile h 0.99 /. 1e3))
    (sorted histograms)
