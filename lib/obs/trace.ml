(* Lightweight pipeline tracing.

   [with_span ~name f] times [f] and records a node in the current trace
   tree; nested calls build the parse → semantic → translate → rewrite →
   optimize → execute → cache-fill hierarchy that EXPLAIN ANALYZE prints.
   Completed root spans land in a small ring buffer ([recent]) and every
   span completion also feeds the latency histogram ["span.<name>"] in
   {!Metrics}, which is where per-stage aggregate timings come from.

   Spans carry string metadata ([add_meta]) — operators report
   "rows=<n>" through it. Tracing is on by default; the cost per span is
   two clock reads and one allocation. [set_enabled false] turns the whole
   layer into a no-op passthrough. *)

type span = {
  sp_name : string;
  mutable sp_elapsed_ns : float;  (** inclusive (children included) *)
  mutable sp_meta : (string * string) list;  (** in insertion order *)
  mutable sp_children : span list;  (** newest first while open; in order once closed *)
}

let enabled = ref true
let set_enabled flag = enabled := flag
let is_enabled () = !enabled

(* innermost-first stack of open spans *)
let stack : span list ref = ref []

let ring_capacity = 32
let completed : span list ref = ref []  (* newest first, capped *)

let rec take n = function [] -> [] | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs

let record_root sp =
  completed := sp :: take (ring_capacity - 1) !completed

(** [clear ()] drops the ring buffer (open spans are untouched). *)
let clear () = completed := []

(** [recent ()] lists completed root spans, newest first. *)
let recent () = !completed

(** [last ()] is the most recently completed root span. *)
let last () = match !completed with sp :: _ -> Some sp | [] -> None

(** [add_meta key value] attaches metadata to the innermost open span
    (no-op outside any span or when tracing is off). *)
let add_meta key value =
  match !stack with
  | sp :: _ -> sp.sp_meta <- sp.sp_meta @ [ (key, value) ]
  | [] -> ()

(** [with_span ?meta name f] runs [f] inside a span named [name]. The span
    is closed — and its time observed in the ["span.<name>"] histogram —
    even when [f] raises. *)
let with_span ?(meta = []) name f =
  if not !enabled then f ()
  else begin
    let sp = { sp_name = name; sp_elapsed_ns = 0.; sp_meta = meta; sp_children = [] } in
    (match !stack with parent :: _ -> parent.sp_children <- sp :: parent.sp_children | [] -> ());
    stack := sp :: !stack;
    let t0 = Metrics.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        sp.sp_elapsed_ns <- Metrics.now_ns () -. t0;
        sp.sp_children <- List.rev sp.sp_children;
        (match !stack with s :: rest when s == sp -> stack := rest | _ -> ());
        if !stack = [] then record_root sp;
        Metrics.observe (Metrics.histogram ("span." ^ name)) sp.sp_elapsed_ns)
      f
  end

(* ---- rendering ---- *)

let pp_meta ppf meta =
  List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) meta

(** [pp ppf sp] prints the span tree with per-span inclusive timings:
    one line per span, indented by depth, metadata trailing. *)
let pp ppf sp =
  let rec go depth sp =
    let label = String.make (2 * depth) ' ' ^ sp.sp_name in
    Format.fprintf ppf "%-36s %10.3f ms%a@." label (sp.sp_elapsed_ns /. 1e6) pp_meta sp.sp_meta;
    List.iter (go (depth + 1)) sp.sp_children
  in
  go 0 sp

let to_string sp = Format.asprintf "%a" pp sp

(** [find sp name] is the first span named [name] in a pre-order walk of
    [sp] (tests and reports drill into stages with it). *)
let rec find sp name =
  if String.equal sp.sp_name name then Some sp
  else
    List.fold_left
      (fun acc child -> match acc with Some _ -> acc | None -> find child name)
      None sp.sp_children

(** [meta sp key] is the last value recorded for [key] on [sp]. *)
let meta sp key =
  List.fold_left (fun acc (k, v) -> if String.equal k key then Some v else acc) None sp.sp_meta
