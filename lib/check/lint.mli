(** CO/XNF semantic linter (XNF0xx diagnostics).

    Statically validates an XNF statement against the resolved relational
    schema before (or instead of) executing it: component and relationship
    declarations, the reachability constraint of §2 of the paper
    (components unreachable from any root can never hold tuples),
    predicate scoping and column resolution, path expressions following
    schema-graph edges, TAKE projections, and view closure. The checks
    mirror the executable semantics of {!Xnf.View_registry.compose},
    {!Xnf.Co_schema} and {!Xnf.Path}, so a clean lint means composition
    will not fail on these rules — but reported as a full diagnostic list
    with source spans, not a first-error exception.

    Node derivations are resolved through the real binder, so column and
    type information always agrees with execution. *)

open Relational

(** [lint_query db reg ?src q] lints one [OUT OF ... TAKE] query; [src]
    (the original query text) enables source spans on diagnostics. *)
val lint_query : Db.t -> Xnf.View_registry.t -> ?src:string -> Xnf.Xnf_ast.query -> Diag.t list

(** [lint_stmt db reg ?src stmt] lints one XNF statement (queries, view
    definitions, CO updates/deletes, plain SQL). *)
val lint_stmt : Db.t -> Xnf.View_registry.t -> ?src:string -> Xnf.Xnf_ast.stmt -> Diag.t list

(** [lint_string db reg src] parses and lints one statement. Parse
    failures come back as a single [XNF000] diagnostic; stray semantic
    exceptions from shared helpers as [XNF099]. Never raises. *)
val lint_string : Db.t -> Xnf.View_registry.t -> string -> Diag.t list
