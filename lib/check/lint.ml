(* CO/XNF semantic linter (XNF0xx).

   Statically checks the paper's well-formedness rules on an XNF statement
   against the resolved schema: component/relationship declarations
   (duplicates, dangling RELATE endpoints, USING base tables, role
   variables), the reachability constraint (orphan components never
   reached from a root), predicate scoping and column resolution, path
   expressions following schema edges with Path.eval's exact step
   semantics, TAKE projections, and view closure. It mirrors
   View_registry.compose / Co_schema / Path but collects diagnostics
   instead of raising on the first problem, and attaches source spans by
   re-tokenizing the query text with the span-aware lexer.

   Node derivations are resolved through the real binder (Db.bind_select),
   so lint results always agree with execution. *)

open Relational
module A = Xnf.Xnf_ast
module CS = Xnf.Co_schema
module VR = Xnf.View_registry

let m_runs = Obs.Metrics.counter "check.lint.runs"
let m_errors = Obs.Metrics.counter "check.lint.errors"

type ctx = {
  db : Db.t;
  reg : VR.t;
  src : string option;  (** original query text, for source spans *)
  mutable diags : Diag.t list;  (** reversed *)
  schemas : (string, Schema.t option) Hashtbl.t;  (** node name -> resolved schema *)
}

let lc = String.lowercase_ascii
let add ctx d = ctx.diags <- d :: ctx.diags

(* Span of the first occurrence of an identifier in the query text. Good
   enough in practice: lint messages name the construct, the span locates
   it. *)
let ident_span ctx name =
  match ctx.src with
  | None -> None
  | Some s -> begin
    match Sql_lexer.tokenize_spanned s with
    | exception Sql_lexer.Parse_error _ -> None
    | toks, spans ->
      let name = lc name in
      let n = Array.length toks in
      let rec find i =
        if i >= n then None
        else
          match toks.(i) with
          | Sql_lexer.IDENT id when String.equal id name -> Some spans.(i)
          | _ -> find (i + 1)
      in
      find 0
  end

(* [about] names the identifier whose span the diagnostic points at *)
let err ctx ~code ?about ?hint fmt =
  Fmt.kstr (fun msg -> add ctx (Diag.err ~code ?span:(Option.bind about (ident_span ctx)) ?hint msg)) fmt

let warn ctx ~code ?about ?hint fmt =
  Fmt.kstr (fun msg -> add ctx (Diag.warn ~code ?span:(Option.bind about (ident_span ctx)) ?hint msg)) fmt

(* ---- node schema resolution (through the real binder) ---- *)

let node_schema ctx (nd : CS.node_def) : Schema.t option =
  match Hashtbl.find_opt ctx.schemas nd.CS.nd_name with
  | Some cached -> cached
  | None ->
    let resolved =
      match Db.bind_select ctx.db nd.CS.nd_query with
      | qgm -> Some (Qgm.schema_of (Db.catalog ctx.db) qgm)
      | exception Binder.Bind_error msg ->
        err ctx ~code:"XNF009" ~about:nd.CS.nd_name "component %s: invalid derivation: %s"
          nd.CS.nd_name msg;
        None
      | exception Catalog.Unknown_table t ->
        err ctx ~code:"XNF009" ~about:nd.CS.nd_name "component %s: derivation reads unknown table %s"
          nd.CS.nd_name t;
        None
    in
    Hashtbl.replace ctx.schemas nd.CS.nd_name resolved;
    resolved

let schema_of_name ctx def name =
  Option.bind (CS.node_opt def name) (fun nd -> node_schema ctx nd)

(* ---- phase 1: build the CO definition from the bindings ---- *)

(* Co_schema.add_node/add_edge semantics, but diagnosing instead of
   raising: bad components are reported and skipped, so later checks run
   on the well-formed remainder. *)
let build_def ctx (q : A.query) : CS.t =
  let def = ref CS.empty in
  let add_node_checked nd =
    if CS.node_opt !def nd.CS.nd_name <> None || CS.edge_opt !def nd.CS.nd_name <> None then
      err ctx ~code:"XNF001" ~about:nd.CS.nd_name "duplicate component name %s" nd.CS.nd_name
    else def := { !def with CS.co_nodes = !def.CS.co_nodes @ [ nd ] }
  in
  let add_edge_checked ed =
    let ok = ref true in
    if CS.edge_opt !def ed.CS.ed_name <> None || CS.node_opt !def ed.CS.ed_name <> None then begin
      err ctx ~code:"XNF001" ~about:ed.CS.ed_name "duplicate component name %s" ed.CS.ed_name;
      ok := false
    end;
    if CS.node_opt !def ed.CS.ed_parent = None then begin
      err ctx ~code:"XNF002" ~about:ed.CS.ed_parent
        ~hint:"RELATE partners must be component tables declared earlier in the OUT OF clause"
        "relationship %s: parent %s is not a declared component table" ed.CS.ed_name ed.CS.ed_parent;
      ok := false
    end;
    if CS.node_opt !def ed.CS.ed_child = None then begin
      err ctx ~code:"XNF002" ~about:ed.CS.ed_child
        ~hint:"RELATE partners must be component tables declared earlier in the OUT OF clause"
        "relationship %s: child %s is not a declared component table" ed.CS.ed_name ed.CS.ed_child;
      ok := false
    end;
    if !ok then def := { !def with CS.co_edges = !def.CS.co_edges @ [ ed ] }
  in
  List.iter
    (fun b ->
      match b with
      | A.B_node { bn_name; bn_query } ->
        add_node_checked { CS.nd_name = lc bn_name; nd_query = bn_query; nd_cols = None }
      | A.B_edge { be_name; be_parent; be_parent_var; be_child; be_child_var; be_attrs; be_using;
                   be_pred } ->
        let parent_alias = lc (Option.value ~default:be_parent be_parent_var) in
        let child_alias = lc (Option.value ~default:be_child be_child_var) in
        if String.equal parent_alias child_alias then
          err ctx ~code:"XNF004" ~about:be_name
            ~hint:"give each partner a role variable, e.g. RELATE emp m, emp r"
            "relationship %s: cyclic partners need distinct role names" be_name;
        (match be_using with
        | Some (t, _) ->
          if Catalog.table_opt (Db.catalog ctx.db) t = None then
            err ctx ~code:"XNF005" ~about:t "relationship %s: USING table %s is not a base table"
              be_name t
        | None -> ());
        add_edge_checked
          { CS.ed_name = lc be_name; ed_parent = lc be_parent; ed_child = lc be_child;
            ed_parent_alias = parent_alias; ed_child_alias = child_alias;
            ed_using = Option.map (fun (t, a) -> (t, lc a)) be_using; ed_attrs = be_attrs;
            ed_pred = be_pred }
      | A.B_view name -> begin
        match VR.find_opt ctx.reg name with
        | None -> err ctx ~code:"XNF003" ~about:name "unknown XNF view %s" name
        | Some v ->
          List.iter add_node_checked v.VR.v_def.CS.co_nodes;
          List.iter add_edge_checked v.VR.v_def.CS.co_edges
      end)
    q.A.q_out_of;
  !def

(* ---- phase 2: RELATE predicate scoping and endpoint types ---- *)

(* resolve a SQL column ref against the edge scope (alias -> schema);
   returns its type when uniquely resolved *)
let resolve_scoped ctx ~what (scope : (string * Schema.t option) list) qualifier name :
    Schema.ty option =
  let name = lc name in
  match qualifier with
  | Some q -> begin
    match List.assoc_opt (lc q) scope with
    | None ->
      err ctx ~code:"XNF006" ~about:q "%s references %s.%s, but %s is not in scope (in scope: %s)"
        what q name q
        (String.concat ", " (List.map fst scope));
      None
    | Some None -> None
    | Some (Some s) -> begin
      match Schema.find_opt s name with
      | Some i -> Some (Schema.col s i).Schema.col_ty
      | None ->
        err ctx ~code:"XNF007" ~about:name "%s: no column %s in %s" what name (lc q);
        None
    end
  end
  | None -> begin
    let hits =
      List.filter_map
        (fun (_, s) -> Option.bind s (fun s -> Option.map (fun i -> (Schema.col s i).Schema.col_ty) (Schema.find_opt s name)))
        scope
    in
    let unknown_schemas = List.exists (fun (_, s) -> s = None) scope in
    match hits with
    | [ ty ] -> Some ty
    | [] ->
      if not unknown_schemas then
        err ctx ~code:"XNF007" ~about:name "%s: unknown column %s" what name;
      None
    | _ :: _ :: _ ->
      err ctx ~code:"XNF007" ~about:name "%s: ambiguous column %s (qualify it)" what name;
      None
  end

(* walk a SQL expression, resolving every column against the scope;
   subqueries are skipped (they carry their own scopes) *)
let rec check_sql_expr ctx ~what scope (e : Sql_ast.expr) =
  let r = check_sql_expr ctx ~what scope in
  match e with
  | Sql_ast.E_col (q, n) -> ignore (resolve_scoped ctx ~what scope q n)
  | Sql_ast.E_lit _ | Sql_ast.E_count_star | Sql_ast.E_param _ -> ()
  | Sql_ast.E_cmp (_, a, b) | Sql_ast.E_arith (_, a, b) | Sql_ast.E_and (a, b)
  | Sql_ast.E_or (a, b) | Sql_ast.E_like (a, b) ->
    r a;
    r b
  | Sql_ast.E_neg a | Sql_ast.E_not a | Sql_ast.E_is_null a | Sql_ast.E_is_not_null a
  | Sql_ast.E_fn_distinct (_, a) ->
    r a
  | Sql_ast.E_in_list (a, items) ->
    r a;
    List.iter r items
  | Sql_ast.E_case (branches, else_) ->
    List.iter
      (fun (c, v) ->
        r c;
        r v)
      branches;
    Option.iter r else_
  | Sql_ast.E_fn (_, args) -> List.iter r args
  | Sql_ast.E_exists _ | Sql_ast.E_in_query _ | Sql_ast.E_scalar _ -> ()

(* top-level equality conjuncts with plain columns on both sides: flag
   joins that can never match because the endpoint types are
   incompatible *)
let rec check_eq_types ctx ~edge scope (e : Sql_ast.expr) =
  match e with
  | Sql_ast.E_and (a, b) ->
    check_eq_types ctx ~edge scope a;
    check_eq_types ctx ~edge scope b
  | Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (q1, n1), Sql_ast.E_col (q2, n2)) -> begin
    (* re-resolution without re-reporting: scope errors were already
       diagnosed by check_sql_expr *)
    let quiet = { ctx with diags = []; schemas = ctx.schemas } in
    let t1 = resolve_scoped quiet ~what:"" scope q1 n1 in
    let t2 = resolve_scoped quiet ~what:"" scope q2 n2 in
    match (t1, t2) with
    | Some a, Some b when not (Qgm_check.ty_compatible a b) ->
      err ctx ~code:"XNF008" ~about:n1
        ~hint:"the relationship joins values of incompatible types and can never connect tuples"
        "relationship %s: %s (%s) and %s (%s) are type-incompatible" edge n1
        (Schema.ty_to_string a) n2 (Schema.ty_to_string b)
    | _ -> ()
  end
  | _ -> ()

let check_edge ctx def ed =
  let scope =
    [ (ed.CS.ed_parent_alias, schema_of_name ctx def ed.CS.ed_parent);
      (ed.CS.ed_child_alias, schema_of_name ctx def ed.CS.ed_child) ]
    @ (match ed.CS.ed_using with
      | Some (t, a) -> [ (a, Option.map Table.schema (Catalog.table_opt (Db.catalog ctx.db) t)) ]
      | None -> [])
  in
  let what = Printf.sprintf "relationship %s" ed.CS.ed_name in
  check_sql_expr ctx ~what scope ed.CS.ed_pred;
  List.iter (fun (e, _) -> check_sql_expr ctx ~what:(what ^ " attribute") scope e) ed.CS.ed_attrs;
  check_eq_types ctx ~edge:ed.CS.ed_name scope ed.CS.ed_pred

(* ---- phase 3: graph checks (reachability, recursion) ---- *)

(* nodes reachable from [seeds] following parent -> child edges, the
   direction the translator materializes extents in *)
let reachable_from def seeds =
  let seen = Hashtbl.create 16 in
  let rec visit n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      List.iter (fun e -> visit e.CS.ed_child) (CS.outgoing def n)
    end
  in
  List.iter visit seeds;
  seen

let check_graph ctx (def : CS.t) =
  if def.CS.co_nodes = [] then
    err ctx ~code:"XNF010" "composite object has no component tables"
  else begin
    let roots = CS.roots def in
    if roots = [] then
      err ctx ~code:"XNF010"
        ~hint:"every component is the child of some relationship, so every tuple is unreachable"
        "composite object has no root component table"
    else begin
      let reached = reachable_from def (List.map (fun nd -> nd.CS.nd_name) roots) in
      List.iter
        (fun nd ->
          if not (Hashtbl.mem reached nd.CS.nd_name) then
            err ctx ~code:"XNF011" ~about:nd.CS.nd_name
              ~hint:"under the reachability constraint its extent is always empty; RELATE it to a reachable component"
              "component table %s is unreachable from any root by a RELATE chain" nd.CS.nd_name)
        def.CS.co_nodes
    end;
    (* an edge closing a cycle whose predicate does not mention both
       partners lets the fixpoint grow without a join constraint *)
    List.iter
      (fun ed ->
        let closes_cycle = Hashtbl.mem (reachable_from def [ ed.CS.ed_child ]) ed.CS.ed_parent in
        if closes_cycle then begin
          let rec quals acc (e : Sql_ast.expr) =
            match e with
            | Sql_ast.E_col (Some q, _) -> lc q :: acc
            | Sql_ast.E_col (None, _) | Sql_ast.E_lit _ | Sql_ast.E_count_star
            | Sql_ast.E_param _ ->
              acc
            | Sql_ast.E_cmp (_, a, b) | Sql_ast.E_arith (_, a, b) | Sql_ast.E_and (a, b)
            | Sql_ast.E_or (a, b) | Sql_ast.E_like (a, b) ->
              quals (quals acc a) b
            | Sql_ast.E_neg a | Sql_ast.E_not a | Sql_ast.E_is_null a | Sql_ast.E_is_not_null a
            | Sql_ast.E_fn_distinct (_, a) ->
              quals acc a
            | Sql_ast.E_in_list (a, items) -> List.fold_left quals (quals acc a) items
            | Sql_ast.E_case (branches, else_) ->
              let acc = List.fold_left (fun acc (c, v) -> quals (quals acc c) v) acc branches in
              Option.fold ~none:acc ~some:(quals acc) else_
            | Sql_ast.E_fn (_, args) -> List.fold_left quals acc args
            | Sql_ast.E_exists _ | Sql_ast.E_in_query _ | Sql_ast.E_scalar _ -> acc
          in
          let qs = quals [] ed.CS.ed_pred in
          if not (List.mem ed.CS.ed_parent_alias qs && List.mem ed.CS.ed_child_alias qs) then
            warn ctx ~code:"XNF012" ~about:ed.CS.ed_name
              ~hint:"guard the recursion with a predicate relating both role variables"
              "recursive relationship %s does not constrain both partners" ed.CS.ed_name
        end)
      def.CS.co_edges
  end

(* ---- phase 4: SUCH THAT predicates and path expressions ---- *)

(* env: restriction/path variable -> node name, mirroring Path.env *)
let rec check_xexpr ctx def (env : (string * string) list) (e : A.xexpr) =
  let r = check_xexpr ctx def env in
  match e with
  | A.X_col (q, n) -> begin
    let n = lc n in
    match q with
    | Some q -> begin
      match List.assoc_opt (lc q) env with
      | None ->
        err ctx ~code:"XNF014" ~about:q
          "SUCH THAT predicate references %s.%s, but %s is not a bound variable (in scope: %s)" q n
          q
          (String.concat ", " (List.map fst env))
      | Some node -> begin
        match schema_of_name ctx def node with
        | None -> ()
        | Some s ->
          if Schema.find_opt s n = None then
            err ctx ~code:"XNF007" ~about:n "no column %s in component %s" n node
      end
    end
    | None -> begin
      let known = ref true in
      let hits =
        List.filter
          (fun (_, node) ->
            match schema_of_name ctx def node with
            | None ->
              known := false;
              false
            | Some s -> Schema.find_opt s n <> None)
          env
      in
      match hits with
      | [ _ ] -> ()
      | [] ->
        if !known then
          err ctx ~code:"XNF007" ~about:n "unknown column %s in SUCH THAT predicate" n
      | _ :: _ :: _ ->
        err ctx ~code:"XNF007" ~about:n "ambiguous column %s in SUCH THAT predicate (qualify it)" n
    end
  end
  | A.X_lit _ | A.X_param _ -> ()
  | A.X_cmp (_, a, b) | A.X_arith (_, a, b) | A.X_and (a, b) | A.X_or (a, b) | A.X_like (a, b) ->
    r a;
    r b
  | A.X_neg a | A.X_not a | A.X_is_null a | A.X_is_not_null a -> r a
  | A.X_in_list (a, items) ->
    r a;
    List.iter r items
  | A.X_fn (_, args) -> List.iter r args
  | A.X_count_path p | A.X_exists_path p -> check_path ctx def env p

(* Path.eval's exact step semantics, statically: an edge step moves to the
   other partner (direction inferred); a bare node name or an explicit
   node step is a checkpoint on the current component, never a move. *)
and check_path ctx def env (p : A.path) =
  let start = lc p.A.p_start in
  let cur =
    match List.assoc_opt start env with
    | Some node -> Some node
    | None -> begin
      match CS.node_opt def start with
      | Some _ -> Some start
      | None ->
        err ctx ~code:"XNF014" ~about:p.A.p_start
          "path start %s is neither a bound variable nor a component table" p.A.p_start;
        None
    end
  in
  let checkpoint cur name =
    (* [cur] = None means an earlier step already failed; stay quiet *)
    (match cur with
    | Some cn when not (String.equal cn (lc name)) ->
      err ctx ~code:"XNF015" ~about:name "path step %s does not match current component %s" name cn
    | _ -> ());
    Some (lc name)
  in
  let step cur (s : A.step) =
    match s with
    | A.Step_edge name -> begin
      match CS.edge_opt def name with
      | Some ed -> begin
        match cur with
        | None -> None
        | Some cn ->
          if String.equal cn ed.CS.ed_parent then Some ed.CS.ed_child
          else if String.equal cn ed.CS.ed_child then Some ed.CS.ed_parent
          else begin
            err ctx ~code:"XNF015" ~about:name
              ~hint:"path steps must follow RELATE relationships of the schema graph"
              "path step %s does not connect component %s (it relates %s to %s)" name cn
              ed.CS.ed_parent ed.CS.ed_child;
            None
          end
      end
      | None -> begin
        match CS.node_opt def name with
        | Some _ -> checkpoint cur name
        | None ->
          err ctx ~code:"XNF013" ~about:name "unknown relationship or component %s in path" name;
          None
      end
    end
    | A.Step_node { sn_node; sn_var; sn_pred } -> begin
      match CS.node_opt def sn_node with
      | None ->
        err ctx ~code:"XNF013" ~about:sn_node "unknown component %s in path" sn_node;
        None
      | Some _ ->
        let cur = checkpoint cur sn_node in
        (match sn_pred with
        | Some pred ->
          let var = lc (Option.value ~default:sn_node sn_var) in
          check_xexpr ctx def ((var, lc sn_node) :: env) pred
        | None -> ());
        cur
    end
  in
  ignore (List.fold_left step cur p.A.p_steps)

let check_restrictions ctx def (q : A.query) =
  List.iter
    (fun r ->
      match r with
      | A.R_node { rn_node; rn_var; rn_pred } -> begin
        match CS.node_opt def rn_node with
        | None -> err ctx ~code:"XNF013" ~about:rn_node "restriction on unknown component %s" rn_node
        | Some nd ->
          let var = lc (Option.value ~default:nd.CS.nd_name rn_var) in
          check_xexpr ctx def [ (var, nd.CS.nd_name) ] rn_pred
      end
      | A.R_edge { re_edge; re_parent_var; re_child_var; re_pred } -> begin
        match CS.edge_opt def re_edge with
        | None ->
          err ctx ~code:"XNF013" ~about:re_edge "restriction on unknown relationship %s" re_edge
        | Some ed ->
          check_xexpr ctx def
            [ (lc re_parent_var, ed.CS.ed_parent); (lc re_child_var, ed.CS.ed_child) ]
            re_pred
      end)
    q.A.q_where

(* ---- phase 5: TAKE projection ---- *)

(* mirrors Co_schema.project; returns the surviving (nodes, edges) for the
   view-closure check *)
let check_take ctx def (take : A.take) : (string list * string list) =
  match take with
  | A.Take_star ->
    ( List.map (fun nd -> nd.CS.nd_name) def.CS.co_nodes,
      List.map (fun e -> e.CS.ed_name) def.CS.co_edges )
  | A.Take_items items ->
    let seen = Hashtbl.create 8 in
    let kept_nodes = ref [] and kept_edges = ref [] in
    let keep_node n = if not (List.mem n !kept_nodes) then kept_nodes := n :: !kept_nodes in
    let keep_edge e = if not (List.mem e !kept_edges) then kept_edges := e :: !kept_edges in
    let dup name =
      if Hashtbl.mem seen (lc name) then
        warn ctx ~code:"XNF017" ~about:name "duplicate TAKE item %s" name;
      Hashtbl.replace seen (lc name) ()
    in
    let check_cols node cols =
      match cols with
      | A.Take_all_cols -> ()
      | A.Take_cols cs -> begin
        let col_seen = Hashtbl.create 8 in
        List.iter
          (fun c ->
            if Hashtbl.mem col_seen (lc c) then
              warn ctx ~code:"XNF017" ~about:c "duplicate column %s in TAKE projection of %s" c node;
            Hashtbl.replace col_seen (lc c) ();
            match schema_of_name ctx def node with
            | None -> ()
            | Some s ->
              if Schema.find_opt s (lc c) = None then
                err ctx ~code:"XNF007" ~about:c "TAKE projects unknown column %s of %s" c node)
          cs
      end
    in
    List.iter
      (fun item ->
        match item with
        | A.Take_node (n, cols) -> begin
          dup n;
          match (CS.node_opt def n, CS.edge_opt def n, cols) with
          | Some _, _, _ ->
            keep_node (lc n);
            check_cols (lc n) cols
          | None, Some _, A.Take_all_cols -> keep_edge (lc n)
          | None, Some _, A.Take_cols _ ->
            err ctx ~code:"XNF018" ~about:n "column projection on relationship %s" n
          | None, None, _ -> err ctx ~code:"XNF016" ~about:n "TAKE references unknown component %s" n
        end
        | A.Take_edge e -> begin
          dup e;
          match (CS.edge_opt def e, CS.node_opt def e) with
          | Some _, _ -> keep_edge (lc e)
          | None, Some _ -> keep_node (lc e)
          | None, None -> err ctx ~code:"XNF016" ~about:e "TAKE references unknown component %s" e
        end)
      items;
    (* an explicitly kept edge whose partner is projected away *)
    List.iter
      (fun e ->
        match CS.edge_opt def e with
        | None -> ()
        | Some ed ->
          List.iter
            (fun partner ->
              if not (List.mem partner !kept_nodes) then
                err ctx ~code:"XNF019" ~about:e
                  "TAKE keeps relationship %s but drops its partner %s" e partner)
            (List.sort_uniq compare [ ed.CS.ed_parent; ed.CS.ed_child ]))
      !kept_edges;
    (!kept_nodes, !kept_edges)

(* ---- entry points ---- *)

let lint_query_ctx ctx (q : A.query) : CS.t * (string list * string list) =
  let def = build_def ctx q in
  List.iter (fun nd -> ignore (node_schema ctx nd)) def.CS.co_nodes;
  List.iter (check_edge ctx def) def.CS.co_edges;
  check_graph ctx def;
  check_restrictions ctx def q;
  let surviving = check_take ctx def q.A.q_take in
  (def, surviving)

let make_ctx db reg src = { db; reg; src; diags = []; schemas = Hashtbl.create 16 }

let finish ctx =
  let ds = List.rev ctx.diags in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:(Diag.count_errors ds) m_errors;
  ds

(** [lint_query db reg ?src q] lints one OUT OF query; [src] (the original
    text) enables source spans. *)
let lint_query db reg ?src (q : A.query) : Diag.t list =
  let ctx = make_ctx db reg src in
  ignore (lint_query_ctx ctx q);
  finish ctx

(* path-based restrictions of [q] itself plus those imported from views;
   these stay symbolic past composition, so view closure must keep their
   components *)
let path_restrictions reg (q : A.query) =
  let own = List.filter (fun r ->
      match r with
      | A.R_node { rn_pred; _ } -> A.has_path rn_pred
      | A.R_edge { re_pred; _ } -> A.has_path re_pred)
      q.A.q_where
  in
  let imported =
    List.concat_map
      (fun b ->
        match b with
        | A.B_view name ->
          (match VR.find_opt reg name with Some v -> v.VR.v_path_restrs | None -> [])
        | A.B_node _ | A.B_edge _ -> [])
      q.A.q_out_of
  in
  own @ imported

(** [lint_stmt db reg ?src stmt] lints one XNF statement. *)
let lint_stmt db reg ?src (stmt : A.stmt) : Diag.t list =
  let ctx = make_ctx db reg src in
  (match stmt with
  | A.X_query q | A.X_delete q -> ignore (lint_query_ctx ctx q)
  | A.X_create_view (name, q) ->
    if VR.find_opt reg name <> None then
      err ctx ~code:"XNF021" ~about:name "XNF view %s already exists" name;
    let def, (kept_nodes, kept_edges) = lint_query_ctx ctx q in
    ignore def;
    (* a view's TAKE is schema-level projection: its residual path
       restrictions must reference surviving components *)
    List.iter
      (fun r ->
        match r with
        | A.R_node { rn_node; _ } ->
          if not (List.mem (lc rn_node) kept_nodes) then
            err ctx ~code:"XNF020" ~about:rn_node
              "view %s: path restriction references projected-away component %s" name rn_node
        | A.R_edge { re_edge; _ } ->
          if not (List.mem (lc re_edge) kept_edges) then
            err ctx ~code:"XNF020" ~about:re_edge
              "view %s: path restriction references projected-away relationship %s" name re_edge)
      (path_restrictions reg q)
  | A.X_update (q, cu) ->
    let def, _ = lint_query_ctx ctx q in
    (match CS.node_opt def cu.A.cu_node with
    | None ->
      err ctx ~code:"XNF013" ~about:cu.A.cu_node "UPDATE targets unknown component %s" cu.A.cu_node
    | Some nd -> begin
      match node_schema ctx nd with
      | None -> ()
      | Some s ->
        List.iter
          (fun (col, _) ->
            if Schema.find_opt s (lc col) = None then
              err ctx ~code:"XNF007" ~about:col "UPDATE sets unknown column %s of %s" col
                cu.A.cu_node)
          cu.A.cu_sets
    end)
  | A.X_drop_view name ->
    if VR.find_opt reg name = None && Catalog.view_opt (Db.catalog db) name = None then
      err ctx ~code:"XNF003" ~about:name "unknown XNF view %s" name
  | A.X_prepare (_, q) -> ignore (lint_query_ctx ctx q)
  | A.X_execute _ -> ()  (* prepared-statement names live in the Api session *)
  | A.X_sql (Sql_ast.S_select q) -> begin
    match Db.bind_select db q with
    | (_ : Qgm.t) -> ()
    | exception Binder.Bind_error msg -> err ctx ~code:"XNF009" "invalid SQL query: %s" msg
    | exception Catalog.Unknown_table t -> err ctx ~code:"XNF009" "unknown table %s" t
  end
  | A.X_sql _ -> ());
  finish ctx

(** [lint_string db reg src] parses and lints one statement; parse
    failures come back as an [XNF000] diagnostic and semantic exceptions
    out of shared helpers as [XNF099]. Never raises. *)
let lint_string db reg (src : string) : Diag.t list =
  match Xnf.Xnf_parser.parse_stmt_diag src with
  | Error d ->
    Obs.Metrics.incr m_runs;
    Obs.Metrics.incr m_errors;
    [ d ]
  | Ok stmt -> begin
    match lint_stmt db reg ~src stmt with
    | ds -> ds
    | exception CS.Schema_error msg -> [ Diag.err ~code:"XNF099" msg ]
    | exception VR.View_error msg -> [ Diag.err ~code:"XNF099" msg ]
    | exception Invalid_argument msg -> [ Diag.err ~code:"XNF099" msg ]
  end
