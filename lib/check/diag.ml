(* Shared diagnostics core for the static checker.

   A Diag.t is one finding: a stable code, a severity, a message, and
   optionally a source span (from the shared lexer) and a hint. Code
   families are documented in LANGUAGE.md §6:

     XNF0xx  CO/XNF semantic lint findings (user-facing)
     QGM1xx  QGM well-formedness violations (internal invariants)
     PLAN2xx physical-plan validation violations (internal invariants)

   Codes are stable across releases; tests assert on them. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable code, e.g. ["XNF011"] *)
  severity : severity;
  message : string;
  span : Relational.Srcloc.span option;
  hint : string option;
}

(** [make ~code ~severity ?span ?hint msg] builds a diagnostic. *)
let make ~code ~severity ?span ?hint message = { code; severity; message; span; hint }

(** [err] / [warn] / [info] build a diagnostic of the given severity. *)
let err ~code ?span ?hint message = make ~code ~severity:Error ?span ?hint message

let warn ~code ?span ?hint message = make ~code ~severity:Warning ?span ?hint message
let info ~code ?span ?hint message = make ~code ~severity:Info ?span ?hint message

(** [of_parse_error ?span msg] wraps a parser/lexer failure as the XNF000
    syntax diagnostic. *)
let of_parse_error ?span message = err ~code:"XNF000" ?span message

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

(** [is_error d] holds for severity [Error]. *)
let is_error d = d.severity = Error

(** [has_errors ds] holds when any diagnostic is an error. *)
let has_errors ds = List.exists is_error ds

(** [count_errors ds] / [count_warnings ds] tally by severity. *)
let count_errors ds = List.length (List.filter is_error ds)

let count_warnings ds = List.length (List.filter (fun d -> d.severity = Warning) ds)

(** [sort ds] orders errors before warnings before infos, keeping the
    original order within a severity. *)
let sort ds =
  let rank d = match d.severity with Error -> 0 | Warning -> 1 | Info -> 2 in
  List.stable_sort (fun a b -> compare (rank a) (rank b)) ds

(** [pp] renders the human form:
    [error[XNF011]: message (line 1, column 42). hint] *)
let pp ppf d =
  Fmt.pf ppf "%s[%s]: %s" (severity_to_string d.severity) d.code d.message;
  (match d.span with
  | Some sp -> Fmt.pf ppf " (%a)" Relational.Srcloc.pp sp
  | None -> ());
  match d.hint with Some h -> Fmt.pf ppf ". %s" h | None -> ()

(** [to_string d] is [pp] as a string. *)
let to_string d = Fmt.str "%a" pp d

(** [pp_list] renders one diagnostic per line, errors first. *)
let pp_list ppf ds = List.iter (fun d -> Fmt.pf ppf "%a@." pp d) (sort ds)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_diag d =
  let span_json =
    match d.span with
    | None -> ""
    | Some sp ->
      Printf.sprintf ",\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d"
        sp.Relational.Srcloc.sp_line sp.Relational.Srcloc.sp_col sp.Relational.Srcloc.sp_end_line
        sp.Relational.Srcloc.sp_end_col
  in
  let hint_json =
    match d.hint with None -> "" | Some h -> Printf.sprintf ",\"hint\":\"%s\"" (json_escape h)
  in
  Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"%s%s}" d.code
    (severity_to_string d.severity)
    (json_escape d.message) span_json hint_json

(** [to_json ds] renders a JSON array of diagnostics (errors first), each
    with code, severity, message, and optional span/hint fields. *)
let to_json ds = "[" ^ String.concat "," (List.map json_of_diag (sort ds)) ^ "]"
