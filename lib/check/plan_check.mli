(** Physical-plan validator ([PLAN2xx]).

    Checks that operator input/output widths line up after optimizer
    lowering: no unbound column indexes, join [right_width] caches that
    agree with the actual right input, join key lists of matching arity,
    UNION ALL branches of equal width. [Expr.Param] is not flagged —
    correlated subquery subplans legitimately contain parameters. *)

(** [check p] returns all violations found in [p] (empty when valid).
    Never raises. *)
val check : Relational.Plan.t -> Diag.t list
