(** Shared diagnostics core for the static checker.

    A {!t} is one finding: a stable code, a severity, a message, and
    optionally a source span (from the shared lexer) and a hint. Code
    families (documented in LANGUAGE.md §6):

    - [XNF0xx] — CO/XNF semantic lint findings (user-facing)
    - [QGM1xx] — QGM well-formedness violations (internal invariants)
    - [PLAN2xx] — physical-plan validation violations (internal
      invariants)

    Codes are stable across releases; tests assert on them. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable code, e.g. ["XNF011"] *)
  severity : severity;
  message : string;
  span : Relational.Srcloc.span option;
  hint : string option;
}

(** [make ~code ~severity ?span ?hint msg] builds a diagnostic; [err] /
    [warn] / [info] fix the severity. *)

val make :
  code:string ->
  severity:severity ->
  ?span:Relational.Srcloc.span ->
  ?hint:string ->
  string ->
  t

val err : code:string -> ?span:Relational.Srcloc.span -> ?hint:string -> string -> t
val warn : code:string -> ?span:Relational.Srcloc.span -> ?hint:string -> string -> t
val info : code:string -> ?span:Relational.Srcloc.span -> ?hint:string -> string -> t

(** [of_parse_error ?span msg] wraps a parser/lexer failure as the XNF000
    syntax diagnostic. *)
val of_parse_error : ?span:Relational.Srcloc.span -> string -> t

val severity_to_string : severity -> string

(** [is_error d] / [has_errors ds] / [count_errors ds] /
    [count_warnings ds]: severity queries. *)

val is_error : t -> bool
val has_errors : t list -> bool
val count_errors : t list -> int
val count_warnings : t list -> int

(** [sort ds] orders errors before warnings before infos, keeping the
    original order within a severity. *)
val sort : t list -> t list

(** Human renderers: [pp] is
    [error[XNF011]: message (line 1, column 42). hint]; [pp_list] prints
    one per line, errors first. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_list : Format.formatter -> t list -> unit

(** [to_json ds] renders a JSON array of diagnostics (errors first), each
    with code, severity, message, and optional span/hint fields. *)
val to_json : t list -> string
