(** Pipeline invariant validators: installation and policy.

    Wires {!Qgm_check} / {!Plan_check} into the stage-boundary hooks
    ({!Relational.Hooks}) that the query pipeline calls after binding,
    after the QGM rewrite, and after optimizer lowering. Violations
    increment the [check.qgm.violations] / [check.plan.violations]
    counters; error-severity violations abort the statement with
    {!Invariant_violation}. *)

exception Invariant_violation of Diag.t list

(** The validator bodies the hooks run (exposed so tests can drive them
    directly against hand-built malformed structures). *)

val validate_qgm : Relational.Catalog.t -> Relational.Qgm.t -> unit
val validate_plan : Relational.Catalog.t -> Relational.Plan.t -> unit

(** [install ()] enables the validators at all three hook points;
    [uninstall ()] restores the no-op hooks; [installed ()] reports the
    current state. *)

val install : unit -> unit
val uninstall : unit -> unit
val installed : unit -> bool

(** [install_from_env ()] installs when [XNF_CHECK] is [1]/[true]/[on]
    (case-insensitive); returns whether it did. *)
val install_from_env : unit -> bool
