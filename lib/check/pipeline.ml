(* Pipeline invariant validators: installation and policy.

   Wires Qgm_check/Plan_check into the stage-boundary hooks that db.ml
   calls after binding, after the QGM rewrite, and after optimizer
   lowering. Violations increment lib/obs counters; error-severity
   violations abort the statement with Invariant_violation. Tests install
   unconditionally; the shell and bench install when XNF_CHECK=1 (or
   \check on). *)

exception Invariant_violation of Diag.t list

let () =
  Printexc.register_printer (function
    | Invariant_violation ds ->
      Some (Printf.sprintf "Invariant_violation:\n%s" (String.concat "\n" (List.map Diag.to_string ds)))
    | _ -> None)

let m_qgm = Obs.Metrics.counter "check.qgm.violations"
let m_plan = Obs.Metrics.counter "check.plan.violations"
let m_runs = Obs.Metrics.counter "check.validations"

let installed_flag = ref false

let report ~counter diags =
  match diags with
  | [] -> ()
  | ds ->
    Obs.Metrics.incr ~by:(List.length ds) counter;
    if Diag.has_errors ds then raise (Invariant_violation ds)

let validate_qgm catalog qgm =
  Obs.Metrics.incr m_runs;
  report ~counter:m_qgm (Qgm_check.check catalog qgm)

let validate_plan _catalog plan =
  Obs.Metrics.incr m_runs;
  report ~counter:m_plan (Plan_check.check plan)

(** [install ()] enables the validators at all three hook points. *)
let install () =
  Relational.Hooks.post_bind := validate_qgm;
  Relational.Hooks.post_rewrite := validate_qgm;
  Relational.Hooks.post_optimize := validate_plan;
  installed_flag := true

(** [uninstall ()] restores the no-op hooks. *)
let uninstall () =
  Relational.Hooks.reset ();
  installed_flag := false

(** [installed ()] reports whether the validators are active. *)
let installed () = !installed_flag

(** [install_from_env ()] installs when [XNF_CHECK] is [1]/[true]/[on]
    (case-insensitive); returns whether it did. *)
let install_from_env () =
  match Sys.getenv_opt "XNF_CHECK" with
  | Some v when List.mem (String.lowercase_ascii v) [ "1"; "true"; "on"; "yes" ] ->
    install ();
    true
  | _ -> false
