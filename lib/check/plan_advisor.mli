(** Static plan advisor: cost-annotated analysis of compiled fetch plans.

    A pure, post-compile pass that walks a {!Xnf.Fetch_plan.t} (or a raw
    {!Xnf.Translate.compiled}) together with the catalog's ANALYZE
    statistics and emits advisories in the PLAN3xx range — the analysis
    layer in front of cost-based strategy selection (ROADMAP item 4).
    Nothing here executes queries or mutates plans, caches or tables:
    running the advisor perturbs no fetch result.

    Codes (documented in LANGUAGE.md §6):

    - [PLAN300] (warning) — an edge probes a base table with no usable
      index and an estimated probe cost above threshold; hints the
      [CREATE INDEX] that would serve it.
    - [PLAN301] (warning) — a [?force]d strategy contradicts the cost
      estimate (selected cost ≫ best candidate's).
    - [PLAN302] (warning) — cyclic schema whose fixpoint has no
      restriction bounding recursion: no derivation predicate on the
      cycle or its ancestors, no residual edge predicate on the cycle,
      and no SUCH THAT restriction referencing it.
    - [PLAN303] (info) — a component is fetched but never delivered:
      dropped by TAKE, unreferenced by restrictions, and no delivered
      component is reached through it.
    - [PLAN304] (info) — missing or stale statistics on a base table the
      cost model consulted.
    - [PLAN305] (info) — hash build over a child extent far larger than
      the probing frontier (build-side inversion).
    - [PLAN310] (warning, {!drift}) — estimated vs. observed per-edge /
      per-node row counts diverge by more than a configurable factor
      after a fetch.

    Estimates deliberately prefer the last ANALYZE snapshot even when
    stale — they model what a cost-based planner would believe — so a
    skewed bulk load after ANALYZE produces PLAN310 drift (plus PLAN304)
    until re-ANALYZE. *)

open Relational
open Xnf

(** Cost/cardinality annotations for one relationship of the plan. *)
type edge_cost = {
  ec_edge : string;
  ec_strategy : Translate.strategy;  (** access path the plan selected *)
  ec_frontier : float;  (** estimated probing frontier (reached parent rows) *)
  ec_child : float;  (** estimated child extent *)
  ec_fanout : float;  (** estimated children per parent row *)
  ec_conns : float;  (** estimated connections *)
  ec_cost : float;  (** estimated probe work under the selected strategy *)
  ec_best : Translate.strategy;  (** cheapest candidate by estimate *)
  ec_best_cost : float;
}

(** One finding, with the relationship / base table it concerns (for the
    [sys.advisories] columns). *)
type advisory = { ad_diag : Diag.t; ad_edge : string option; ad_table : string option }

type report = {
  rp_nodes : (string * float) list;  (** estimated reached rows per node *)
  rp_edges : edge_cost list;
  rp_advisories : advisory list;
}

(** [diags rp] is the bare diagnostics of [rp], in report order. *)
val diags : report -> Diag.t list

(** [entries rp] is the report's findings in the triple form
    {!Xnf.Api.add_advisories} consumes. *)
val entries : report -> (Diag.t * string option * string option) list

(** [analyze_compiled db cp] runs the static analysis on a compiled
    definition. [take] and [restrs] (the query's TAKE and path
    restrictions; defaults [TAKE *] and none) feed the dead-component
    and recursion-bounding checks. Thresholds: [probe_threshold] (est
    probe cost, in rows, under which PLAN300 stays quiet; default 1000),
    [force_factor] (selected-vs-best cost ratio for PLAN301; default 2),
    [inversion_factor] (build-vs-frontier ratio for PLAN305; default
    4). *)
val analyze_compiled :
  ?probe_threshold:float ->
  ?force_factor:float ->
  ?inversion_factor:float ->
  ?take:Xnf_ast.take ->
  ?restrs:Xnf_ast.restriction list ->
  Db.t ->
  Translate.compiled ->
  report

(** [analyze db plan] is {!analyze_compiled} over a prepared fetch plan
    (its own TAKE and restrictions supplied). *)
val analyze :
  ?probe_threshold:float ->
  ?force_factor:float ->
  ?inversion_factor:float ->
  Db.t ->
  Fetch_plan.t ->
  report

(** [drift db plan cache] compares the plan's estimates against the
    observed instance [cache] (live rows per component, live connections
    per edge) and returns PLAN310 advisories where they diverge by more
    than [factor] (default 8) with at least [min_rows] rows involved
    (default 64). Overestimates are only flagged on restriction-free
    plans — SUCH THAT legitimately shrinks the instance. *)
val drift : ?factor:float -> ?min_rows:int -> Db.t -> Fetch_plan.t -> Cache.t -> advisory list

(** [install api] injects {!drift} as the session's drift detector
    ({!Xnf.Api.set_drift_advisor}): every plan-executed fetch is compared
    against its estimates and divergence lands in [sys.advisories]. *)
val install : ?factor:float -> ?min_rows:int -> Api.t -> unit

(** [advise_text api text] implements [EXPLAIN ADVISE] / [\advise]:
    parses [text] as an [OUT OF ... TAKE] query, compiles a FRESH plan
    (the session's plan cache is neither consulted nor populated — the
    advisor must not perturb cache validity), analyzes it, logs the
    findings with source ["advise"], and returns the report. [Error]
    carries diagnostics when the text fails to parse, compose or
    compile. *)
val advise_text :
  ?probe_threshold:float ->
  ?force_factor:float ->
  ?inversion_factor:float ->
  Api.t ->
  string ->
  (report, Diag.t list) result

(** [render rp] is the human form: per-node and per-edge estimate lines
    followed by the advisory list. *)
val render : report -> string
