(* Physical-plan validator (PLAN2xx).

   Checks that operator input/output widths line up after optimizer
   lowering: every column index lands inside its operator's input width,
   every join's cached right_width agrees with the actual right input,
   join key lists agree in arity with each other / with the index they
   probe, UNION ALL branches have equal widths. Plans embed their tables,
   so no catalog is needed. Expr.Param is NOT flagged: correlated subquery
   subplans legitimately contain parameters. *)

open Relational

let check (p : Plan.t) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let table_width t = Schema.arity (Table.schema t) in
  (* [width] is None when not statically known (empty VALUES, or an
     already-reported violation below this operator). *)
  let check_expr ~what width e =
    match width with
    | None -> ()
    | Some n ->
      List.iter
        (fun i ->
          if i < 0 || i >= n then
            add
              (Diag.err ~code:"PLAN201"
                 (Printf.sprintf "%s references column $%d outside its input width %d" what i n)))
        (Expr.cols e)
  in
  let check_right_width ~op ~declared actual =
    match actual with
    | Some w when w <> declared ->
      add
        (Diag.err ~code:"PLAN202"
           (Printf.sprintf "%s declares right_width %d but its right input has width %d" op declared w))
    | _ -> ()
  in
  let sum a b = match (a, b) with Some a, Some b -> Some (a + b) | _ -> None in
  let rec width p =
    match p with
    | Plan.Seq_scan t -> Some (table_width t)
    | Plan.Index_scan { table; index; key } ->
      let keylen = List.length key and idxlen = Array.length (Index.cols index) in
      if keylen <> idxlen then
        add
          (Diag.err ~code:"PLAN203"
             (Printf.sprintf "Index_scan probes %s with %d key expressions, index has %d columns"
                (Index.name index) keylen idxlen));
      Some (table_width table)
    | Plan.Values rows -> begin
      match rows with
      | [] -> None
      | r0 :: rest ->
        let w = Array.length r0 in
        List.iteri
          (fun i r ->
            if Array.length r <> w then
              add
                (Diag.err ~code:"PLAN206"
                   (Printf.sprintf "VALUES row %d has width %d, row 0 has width %d" (i + 1)
                      (Array.length r) w)))
          rest;
        Some w
    end
    | Plan.Filter (input, pred) ->
      let w = width input in
      check_expr ~what:"Filter predicate" w pred;
      w
    | Plan.Project (input, exprs) ->
      let w = width input in
      Array.iter (fun e -> check_expr ~what:"Project expression" w e) exprs;
      Some (Array.length exprs)
    | Plan.Nl_join { kind; left; right; pred; right_width } ->
      let lw = width left and rw = width right in
      check_right_width ~op:"Nl_join" ~declared:right_width rw;
      (match pred with
      | Some p -> check_expr ~what:"Nl_join predicate" (sum lw (Some right_width)) p
      | None -> ());
      (match kind with
      | Plan.Semi | Plan.Anti -> lw
      | Plan.Inner | Plan.Left -> sum lw (Some right_width))
    | Plan.Index_nl_join { kind; left; table; index; key_of_left; extra; right_width } ->
      let lw = width left in
      let tw = table_width table in
      check_right_width ~op:"Index_nl_join" ~declared:right_width (Some tw);
      let keylen = List.length key_of_left and idxlen = Array.length (Index.cols index) in
      if keylen <> idxlen then
        add
          (Diag.err ~code:"PLAN203"
             (Printf.sprintf "Index_nl_join probes %s with %d key expressions, index has %d columns"
                (Index.name index) keylen idxlen));
      List.iter (fun e -> check_expr ~what:"Index_nl_join key" lw e) key_of_left;
      (match extra with
      | Some e -> check_expr ~what:"Index_nl_join residual predicate" (sum lw (Some tw)) e
      | None -> ());
      (match kind with
      | Plan.Semi | Plan.Anti -> lw
      | Plan.Inner | Plan.Left -> sum lw (Some tw))
    | Plan.Hash_join { kind; left; right; left_keys; right_keys; extra; right_width } ->
      let lw = width left and rw = width right in
      check_right_width ~op:"Hash_join" ~declared:right_width rw;
      if List.length left_keys <> List.length right_keys then
        add
          (Diag.err ~code:"PLAN203"
             (Printf.sprintf "Hash_join has %d left keys but %d right keys" (List.length left_keys)
                (List.length right_keys)));
      List.iter (fun e -> check_expr ~what:"Hash_join left key" lw e) left_keys;
      List.iter (fun e -> check_expr ~what:"Hash_join right key" rw e) right_keys;
      (match extra with
      | Some e -> check_expr ~what:"Hash_join residual predicate" (sum lw (Some right_width)) e
      | None -> ());
      (match kind with
      | Plan.Semi | Plan.Anti -> lw
      | Plan.Inner | Plan.Left -> sum lw (Some right_width))
    | Plan.Group { input; keys; aggs } ->
      let w = width input in
      List.iter (fun e -> check_expr ~what:"Group key" w e) keys;
      List.iter
        (fun (fn, arg, _distinct) ->
          match arg with
          | Some e -> check_expr ~what:"Group aggregate argument" w e
          | None ->
            if fn <> Expr.Count_star then
              add (Diag.err ~code:"PLAN205" "Group aggregate other than COUNT(*) has no argument"))
        aggs;
      Some (List.length keys + List.length aggs)
    | Plan.Sort { input; keys } ->
      let w = width input in
      List.iter (fun (e, _) -> check_expr ~what:"Sort key" w e) keys;
      w
    | Plan.Distinct input -> width input
    | Plan.Limit (input, _) -> width input
    | Plan.Union_all (a, b) -> begin
      let wa = width a and wb = width b in
      match (wa, wb) with
      | Some x, Some y when x <> y ->
        add
          (Diag.err ~code:"PLAN204"
             (Printf.sprintf "UNION ALL branches have widths %d and %d" x y));
        Some x
      | Some _, _ -> wa
      | None, _ -> wb
    end
  in
  ignore (width p);
  List.rev !diags
