(** QGM well-formedness validator ([QGM1xx]).

    Checks the internal invariants on a bound or rewritten QGM tree:
    column references inside their box's input arity (no dangling
    quantifier refs), arity/type agreement across box boundaries, every
    aggregate carrying its argument, base-table quantifiers resolving in
    the catalog. A violation here is an engine bug, not a user error. *)

(** [ty_compatible a b]: equal types, or both numeric. *)
val ty_compatible : Relational.Schema.ty -> Relational.Schema.ty -> bool

(** [check catalog q] returns all violations found in [q] (empty when
    well-formed). Never raises. *)
val check : Relational.Catalog.t -> Relational.Qgm.t -> Diag.t list
