(* QGM well-formedness validator (QGM1xx).

   Checks the Starburst-style internal invariants on a bound or rewritten
   QGM tree: every column reference ("quantifier ref") lands inside its
   box's input arity, arity/type agreement across box boundaries (VALUES
   rows vs. declared schema, UNION ALL branches), aggregates carry their
   arguments, and base-table quantifiers resolve in the catalog. Run by the
   pipeline hooks after binding and after the rewrite; a violation here is
   an engine bug, not a user error. *)

open Relational

(* Int and Float interconvert in comparisons and arithmetic; everything
   else must match exactly. *)
let ty_compatible a b =
  let numeric = function Schema.Ty_int | Schema.Ty_float -> true | _ -> false in
  a = b || (numeric a && numeric b)

let check (catalog : Catalog.t) (q : Qgm.t) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let schema_opt q = try Some (Qgm.schema_of catalog q) with _ -> None in
  let arity_opt q = Option.map Schema.arity (schema_opt q) in
  (* [arity] None means the subtree's schema is not derivable (already
     reported deeper down); skip dependent checks instead of cascading. *)
  let check_expr ~what arity e =
    (match arity with
    | Some n ->
      List.iter
        (fun i ->
          if i < 0 || i >= n then
            add
              (Diag.err ~code:"QGM101"
                 (Printf.sprintf "%s references column $%d outside its input arity %d" what i n)))
        (Expr.cols e)
    | None -> ());
    if Expr.has_param e then
      add (Diag.err ~code:"QGM101" (Printf.sprintf "%s contains an unbound correlation parameter" what))
  in
  let rec walk q =
    match q with
    | Qgm.Access { table; alias = _ } -> begin
      match Catalog.table_opt catalog table with
      | None ->
        add (Diag.err ~code:"QGM104" (Printf.sprintf "Access box references unknown base table %s" table))
      | Some _ -> ()
    end
    | Qgm.Temp _ -> ()
    | Qgm.Values { schema; rows } ->
      let n = Schema.arity schema in
      List.iteri
        (fun ri row ->
          if Array.length row <> n then
            add
              (Diag.err ~code:"QGM102"
                 (Printf.sprintf "VALUES row %d has width %d, declared schema arity is %d" ri
                    (Array.length row) n))
          else
            Array.iteri
              (fun ci v ->
                if not (Schema.value_matches (Schema.col schema ci).Schema.col_ty v) then
                  add
                    (Diag.err ~code:"QGM103"
                       (Printf.sprintf "VALUES row %d column %d: %s does not inhabit type %s" ri ci
                          (Value.to_string v)
                          (Schema.ty_to_string (Schema.col schema ci).Schema.col_ty))))
              row)
        rows
    | Qgm.Select { input; pred } ->
      walk input;
      check_expr ~what:"selection predicate" (arity_opt input) pred
    | Qgm.Project { input; cols } ->
      walk input;
      let ar = arity_opt input in
      List.iter
        (fun (e, c) ->
          check_expr ~what:(Printf.sprintf "projection of output column %s" c.Schema.col_name) ar e)
        cols
    | Qgm.Join { kind = _; left; right; pred } -> begin
      walk left;
      walk right;
      (* join predicates see the concatenation of both inputs, whatever
         the join kind's output schema is *)
      match pred with
      | None -> ()
      | Some p ->
        let ar =
          match (arity_opt left, arity_opt right) with
          | Some a, Some b -> Some (a + b)
          | _ -> None
        in
        check_expr ~what:"join predicate" ar p
    end
    | Qgm.Group { input; keys; aggs } ->
      walk input;
      let ar = arity_opt input in
      List.iter (fun (e, _) -> check_expr ~what:"grouping key" ar e) keys;
      List.iter
        (fun a ->
          match a.Qgm.agg_arg with
          | Some e -> check_expr ~what:"aggregate argument" ar e
          | None ->
            if a.Qgm.agg_fn <> Expr.Count_star then
              add
                (Diag.err ~code:"QGM105"
                   (Printf.sprintf "aggregate output %s has no argument" a.Qgm.agg_out.Schema.col_name)))
        aggs
    | Qgm.Distinct input -> walk input
    | Qgm.Order { input; keys } ->
      walk input;
      let ar = arity_opt input in
      List.iter (fun (e, _) -> check_expr ~what:"sort key" ar e) keys
    | Qgm.Limit (input, n) ->
      walk input;
      if n < 0 then add (Diag.err ~code:"QGM106" (Printf.sprintf "LIMIT is negative (%d)" n))
    | Qgm.Union_all (a, b) -> begin
      walk a;
      walk b;
      match (schema_opt a, schema_opt b) with
      | Some sa, Some sb ->
        if Schema.arity sa <> Schema.arity sb then
          add
            (Diag.err ~code:"QGM102"
               (Printf.sprintf "UNION ALL branches have arities %d and %d" (Schema.arity sa)
                  (Schema.arity sb)))
        else
          List.iteri
            (fun i (ca, cb) ->
              if not (ty_compatible ca.Schema.col_ty cb.Schema.col_ty) then
                add
                  (Diag.err ~code:"QGM103"
                     (Printf.sprintf "UNION ALL column %d has incompatible types %s and %s" i
                        (Schema.ty_to_string ca.Schema.col_ty)
                        (Schema.ty_to_string cb.Schema.col_ty))))
            (List.combine (Schema.columns sa) (Schema.columns sb))
      | _ -> ()
    end
  in
  walk q;
  List.rev !diags
