(* Static plan advisor (PLAN3xx).

   A read-only analysis pass over compiled fetch plans. The cost model
   mirrors what a cost-based planner would believe at compile time: base
   cardinalities and NDVs come from the last ANALYZE snapshot when one
   exists — even a stale one — and fall back to live table state
   otherwise. That choice is deliberate: the estimate side of the
   PLAN310 drift check must reflect the recorded statistics, so a skewed
   bulk load after ANALYZE shows up as drift and re-ANALYZE clears it.

   Estimation is coarse (uniform keys, independence, fixed default
   selectivities) — advisories are hints, and every threshold errs
   toward silence. Nothing here executes queries or writes anywhere:
   running the advisor cannot perturb a plan, a cache or a fetch
   result. *)

open Relational
open Xnf

type edge_cost = {
  ec_edge : string;
  ec_strategy : Translate.strategy;
  ec_frontier : float;
  ec_child : float;
  ec_fanout : float;
  ec_conns : float;
  ec_cost : float;
  ec_best : Translate.strategy;
  ec_best_cost : float;
}

type advisory = { ad_diag : Diag.t; ad_edge : string option; ad_table : string option }

type report = {
  rp_nodes : (string * float) list;
  rp_edges : edge_cost list;
  rp_advisories : advisory list;
}

let diags rp = List.map (fun a -> a.ad_diag) rp.rp_advisories
let entries rp = List.map (fun a -> (a.ad_diag, a.ad_edge, a.ad_table)) rp.rp_advisories

let m_runs = Obs.Metrics.counter "check.advisor.runs"
let m_findings = Obs.Metrics.counter "check.advisor.findings"
let m_drift_runs = Obs.Metrics.counter "check.advisor.drift_runs"
let m_drift_findings = Obs.Metrics.counter "check.advisor.drift_findings"

let lc = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Schema-graph reachability helpers                                  *)

let succs (def : Co_schema.t) n =
  List.filter_map
    (fun (ed : Co_schema.edge_def) -> if lc ed.ed_parent = lc n then Some ed.ed_child else None)
    def.co_edges

(* Nodes from which some member of [targets] is reachable (reverse
   closure, targets included). Lowercased. *)
let ancestors_of (def : Co_schema.t) targets =
  let preds n =
    List.filter_map
      (fun (ed : Co_schema.edge_def) -> if lc ed.ed_child = lc n then Some ed.ed_parent else None)
      def.co_edges
  in
  let seen = Hashtbl.create 8 in
  let rec go n =
    if not (Hashtbl.mem seen (lc n)) then begin
      Hashtbl.replace seen (lc n) ();
      List.iter go (preds n)
    end
  in
  List.iter go targets;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

(* [on_cycle def n]: n reaches itself through at least one edge. *)
let on_cycle (def : Co_schema.t) n =
  let seen = Hashtbl.create 8 in
  let rec go m =
    lc m = lc n
    || (not (Hashtbl.mem seen (lc m)))
       && begin
            Hashtbl.replace seen (lc m) ();
            List.exists go (succs def m)
          end
  in
  List.exists go (succs def n)

(* Node names referenced by SUCH THAT restrictions — directly (R_node,
   path starts, Step_node landings) or as endpoints of a restricted or
   traversed edge. Lowercased, deduplicated. *)
let restriction_nodes (def : Co_schema.t) (restrs : Xnf_ast.restriction list) =
  let open Xnf_ast in
  let acc = ref [] in
  let push n = acc := lc n :: !acc in
  let edge_endpoints e =
    match Co_schema.edge_opt def e with
    | Some ed ->
      push ed.Co_schema.ed_parent;
      push ed.Co_schema.ed_child
    | None -> ()
  in
  let rec xe = function
    | X_col _ | X_lit _ | X_param _ -> ()
    | X_cmp (_, a, b) | X_arith (_, a, b) | X_and (a, b) | X_or (a, b) | X_like (a, b) ->
      xe a;
      xe b
    | X_neg a | X_not a | X_is_null a | X_is_not_null a -> xe a
    | X_in_list (a, es) ->
      xe a;
      List.iter xe es
    | X_fn (_, es) -> List.iter xe es
    | X_count_path p | X_exists_path p -> path p
  and path p =
    (* p_start is a restriction variable or a node name; pushing a
       variable is harmless (it matches no component). *)
    push p.p_start;
    List.iter
      (function
        | Step_edge e -> edge_endpoints e
        | Step_node { sn_node; sn_pred; _ } ->
          push sn_node;
          Option.iter xe sn_pred)
      p.p_steps
  in
  List.iter
    (function
      | R_node { rn_node; rn_pred; _ } ->
        push rn_node;
        xe rn_pred
      | R_edge { re_edge; re_pred; _ } ->
        edge_endpoints re_edge;
        xe re_pred)
    restrs;
  List.sort_uniq compare !acc

(* A derivation is restricted when any (possibly nested) SELECT carries
   a WHERE clause. *)
let rec select_restricted (q : Sql_ast.select) =
  q.Sql_ast.sel_where <> None || List.exists table_ref_restricted q.Sql_ast.sel_from

and table_ref_restricted = function
  | Sql_ast.From_table _ -> false
  | Sql_ast.From_select (inner, _) -> select_restricted inner
  | Sql_ast.From_join (l, _, r, _) -> table_ref_restricted l || table_ref_restricted r

(* ------------------------------------------------------------------ *)
(* The cost model — shared with the planner                           *)

(* The estimation core (snapshot-first row counts, NDVs, derivation and
   fanout estimates, per-strategy costs) lives in
   [Relational.Edge_cost]: the exact same arithmetic drives the
   planner's per-edge pick at [Translate.compile_def] and the advisories
   here, so advice and decision cannot disagree. The advisor keeps only
   the report shaping and the PLAN3xx thresholds. *)

let health = Edge_cost.health

(* ------------------------------------------------------------------ *)
(* The analysis pass                                                  *)

let analyze_compiled ?(probe_threshold = 1000.) ?(force_factor = 2.) ?(inversion_factor = 4.)
    ?(take = Xnf_ast.Take_star) ?(restrs = []) db (cp : Translate.compiled) : report =
  Obs.Metrics.incr m_runs;
  let ctx = Edge_cost.mk_ctx db in
  let def = Translate.compiled_def cp in
  let nodes = Translate.node_shapes cp in
  let shapes = Translate.edge_shapes cp in
  let advs = ref [] in
  let add ?edge ?table d = advs := { ad_diag = d; ad_edge = edge; ad_table = table } :: !advs in

  (* Node reach and per-edge cost inputs from the shared estimator — the
     same numbers [Translate.compile_def] picks strategies from. *)
  let rp_nodes, ests = Edge_cost.annotate ctx ~nodes ~shapes in

  (* Cost-annotate every edge and pick the cheapest candidate strategy
     among those the compiled shape could support. *)
  let cost_edge (es : Translate.edge_shape) (ee : Edge_cost.edge_est) =
    let frontier = ee.Edge_cost.ee_frontier and conns = ee.Edge_cost.ee_conns in
    let cost s = Edge_cost.cost_of ee ~frontier ~conns s in
    let best, best_cost =
      Edge_cost.best ee ~candidates:(Edge_cost.candidates es) ~frontier ~conns
    in
    { ec_edge = es.Translate.es_name;
      ec_strategy = es.Translate.es_strategy;
      ec_frontier = frontier;
      ec_child = ee.Edge_cost.ee_child;
      ec_fanout = ee.Edge_cost.ee_fanout;
      ec_conns = conns;
      ec_cost = cost es.Translate.es_strategy;
      ec_best = best;
      ec_best_cost = best_cost }
  in
  let rp_edges = List.map2 cost_edge shapes ests in

  let catalog = Db.catalog db in
  let has_index tbl cols =
    match Catalog.table_opt catalog (lc tbl) with
    | None -> true (* not a base table: an index suggestion makes no sense *)
    | Some t ->
      let idx = List.filter_map (fun c -> Schema.find_opt (Table.schema t) (lc c)) cols in
      List.length idx = List.length cols && Table.find_index t ~cols:(Array.of_list idx) <> None
  in
  let sname = Translate.strategy_name in

  (* Per-edge advisories: PLAN300 / PLAN301 / PLAN305. *)
  List.iter2
    (fun (es : Translate.edge_shape) ec ->
      (match es.Translate.es_child_table with
      | Some ct
        when es.Translate.es_strategy <> Translate.S_indexed
             && es.Translate.es_child_cols <> []
             && (not es.Translate.es_indexed)
             && ec.ec_cost >= probe_threshold -> (
        (* Which index is missing? FK form: a single-column index on the
           first child join column unlocks the indexed chain. USING form:
           whichever of the link-side or child-side indexes is absent. *)
        let target =
          match es.Translate.es_using with
          | None -> Some (ct, [ List.hd es.Translate.es_child_cols ])
          | Some (link, lcols) ->
            if not (has_index link lcols) then Some (link, lcols)
            else if not (has_index ct es.Translate.es_child_cols) then
              Some (ct, es.Translate.es_child_cols)
            else None
        in
        match target with
        | None -> ()
        | Some (tbl, cols) ->
          let cols_s = String.concat ", " cols in
          add ~edge:es.Translate.es_name ~table:tbl
            (Diag.warn ~code:"PLAN300"
               ~hint:
                 (Printf.sprintf "CREATE INDEX idx_%s_%s ON %s (%s)" (lc tbl)
                    (String.concat "_" (List.map lc cols))
                    tbl cols_s)
               (Printf.sprintf
                  "relationship %s probes %s without a usable index (strategy %s, est cost %.0f \
                   rows); an index on %s (%s) would serve it"
                  es.Translate.es_name tbl (sname es.Translate.es_strategy) ec.ec_cost tbl cols_s)))
      | _ -> ());
      (match Translate.forced cp with
      | Some f
        when ec.ec_best <> es.Translate.es_strategy
             && ec.ec_cost > (force_factor *. ec.ec_best_cost) +. 1. ->
        add ~edge:es.Translate.es_name ?table:es.Translate.es_child_table
          (Diag.warn ~code:"PLAN301"
             ~hint:
               (Printf.sprintf "drop ?force=%s or pin ?force=%s for this query" (sname f)
                  (sname ec.ec_best))
             (Printf.sprintf
                "relationship %s runs %s pinned by ?force=%s at est cost %.0f rows; %s is \
                 estimated at %.0f"
                es.Translate.es_name
                (sname es.Translate.es_strategy)
                (sname f) ec.ec_cost (sname ec.ec_best) ec.ec_best_cost))
      | _ -> ());
      if
        es.Translate.es_strategy = Translate.S_hash
        && ec.ec_child >= inversion_factor *. Float.max 1. ec.ec_frontier
        && ec.ec_child >= 256.
      then
        add ~edge:es.Translate.es_name ?table:es.Translate.es_child_table
          (Diag.info ~code:"PLAN305"
             ~hint:
               "an index-nested-loop probe would touch only the frontier; consider CREATE INDEX \
                on the child join column"
             (Printf.sprintf
                "relationship %s builds a hash over the child extent (est %.0f rows) to serve a \
                 much smaller frontier (est %.0f) — build-side inversion"
                es.Translate.es_name ec.ec_child ec.ec_frontier)))
    shapes rp_edges;

  (* PLAN302: unbounded recursion. A cyclic fixpoint is considered
     bounded when a restricted derivation (or a residual edge predicate)
     sits on the cycle or on an ancestor feeding it, or when a SUCH THAT
     restriction references the cycle. *)
  if Co_schema.is_recursive def then begin
    let cycle_nodes =
      List.filter_map
        (fun (nd : Co_schema.node_def) ->
          if on_cycle def nd.Co_schema.nd_name then Some nd.Co_schema.nd_name else None)
        def.co_nodes
    in
    let feeding = ancestors_of def cycle_nodes in
    let referenced = restriction_nodes def restrs in
    let der_restricted =
      List.exists
        (fun (ns : Translate.node_shape) ->
          List.mem (lc ns.Translate.ns_name) feeding
          && (ns.Translate.ns_pred <> None || select_restricted ns.Translate.ns_query))
        nodes
    in
    let cycle_edge_residual =
      List.exists
        (fun (es : Translate.edge_shape) ->
          es.Translate.es_residual
          && List.mem (lc es.Translate.es_parent) feeding
          && List.mem (lc es.Translate.es_child) feeding)
        shapes
    in
    let restr_bounded = List.exists (fun n -> List.mem n referenced) feeding in
    if cycle_nodes <> [] && (not der_restricted) && (not cycle_edge_residual) && not restr_bounded
    then
      add
        (Diag.warn ~code:"PLAN302"
           ~hint:
             "restrict a derivation feeding the cycle (e.g. a WHERE on the root component) so \
              the fixpoint seeds from a bounded set"
           (Printf.sprintf
              "recursive schema: the fixpoint over the cycle through %s has no restriction \
               bounding recursion — it can reach the entire extent"
              (String.concat ", " (List.sort compare cycle_nodes))))
  end;

  (* PLAN303: components fetched but never delivered. Only meaningful
     under a structural projection: the node is dropped by TAKE, no
     restriction mentions it, and no delivered component is reached
     through it. *)
  (match take with
  | Xnf_ast.Take_star -> ()
  | Xnf_ast.Take_items _ ->
    let final_def = try Co_schema.project def take with Co_schema.Schema_error _ -> def in
    let kept = List.map (fun (nd : Co_schema.node_def) -> lc nd.Co_schema.nd_name) final_def.co_nodes in
    let needed = ancestors_of def kept in
    let referenced = restriction_nodes def restrs in
    List.iter
      (fun (nd : Co_schema.node_def) ->
        let n = lc nd.Co_schema.nd_name in
        if (not (List.mem n kept)) && (not (List.mem n needed)) && not (List.mem n referenced)
        then
          add
            (Diag.info ~code:"PLAN303"
               ~hint:(Printf.sprintf "add %s to TAKE, or drop it from OUT OF" nd.Co_schema.nd_name)
               (Printf.sprintf
                  "component %s is fetched but never delivered: dropped by TAKE, unreferenced by \
                   restrictions, and no delivered component is reached through it"
                  nd.Co_schema.nd_name)))
      def.co_nodes);

  (* PLAN304: statistics health of every base table the estimates
     consulted. *)
  List.iter
    (fun t ->
      match health ctx t with
      | `Fresh | `Unknown -> ()
      | `Missing ->
        add ~table:t
          (Diag.info ~code:"PLAN304"
             ~hint:(Printf.sprintf "ANALYZE %s" t)
             (Printf.sprintf
                "table %s has no statistics; cost estimates fall back to live cardinalities" t))
      | `Stale (v0, v1) ->
        add ~table:t
          (Diag.info ~code:"PLAN304"
             ~hint:(Printf.sprintf "ANALYZE %s" t)
             (Printf.sprintf
                "statistics for table %s are stale (collected at version %d, table now at \
                 version %d)"
                t v0 v1)))
    (List.sort_uniq compare (List.map lc (Translate.base_tables cp)));

  let rp_advisories = List.rev !advs in
  List.iter (fun _ -> Obs.Metrics.incr m_findings) rp_advisories;
  { rp_nodes; rp_edges; rp_advisories }

let analyze ?probe_threshold ?force_factor ?inversion_factor db (plan : Fetch_plan.t) =
  analyze_compiled ?probe_threshold ?force_factor ?inversion_factor ~take:(Fetch_plan.take plan)
    ~restrs:(Fetch_plan.path_restrs plan) db (Fetch_plan.compiled plan)

(* ------------------------------------------------------------------ *)
(* Estimate-vs-actual drift (PLAN310)                                 *)

let drift ?(factor = 8.) ?(min_rows = 64) db (plan : Fetch_plan.t) (cache : Cache.t) :
    advisory list =
  Obs.Metrics.incr m_drift_runs;
  let rp = analyze db plan in
  let shapes = Translate.edge_shapes (Fetch_plan.compiled plan) in
  let nodes = Translate.node_shapes (Fetch_plan.compiled plan) in
  (* Overestimates are only meaningful on restriction-free plans: SUCH
     THAT legitimately shrinks the observed instance below any
     statistics-based estimate. *)
  let flag_over = Fetch_plan.path_restrs plan = [] in
  let fmin = float_of_int min_rows in
  let table_of_node n =
    List.find_map
      (fun (ns : Translate.node_shape) ->
        if ns.Translate.ns_name = n then ns.Translate.ns_table else None)
      nodes
  in
  let check ~what ~name ~edge ~table est actual =
    let under = actual > est *. factor && actual >= fmin in
    let over = flag_over && est > actual *. factor && est >= fmin in
    if under || over then begin
      Obs.Metrics.incr m_drift_findings;
      let ratio =
        if under then actual /. Float.max 1. est else est /. Float.max 1. actual
      in
      Some
        { ad_diag =
            Diag.warn ~code:"PLAN310"
              ~hint:
                (match table with
                | Some t -> Printf.sprintf "ANALYZE %s" t
                | None -> "ANALYZE the involved base tables")
              (Printf.sprintf
                 "%s %s: estimated %.0f rows but observed %.0f (%.1fx off) — statistics no \
                  longer match the data"
                 what name est actual ratio);
          ad_edge = edge;
          ad_table = table }
    end
    else None
  in
  let node_drift =
    List.filter_map
      (fun (name, est) ->
        match List.assoc_opt name cache.Cache.c_nodes with
        | None -> None
        | Some ni ->
          check ~what:"component" ~name ~edge:None ~table:(table_of_node name) est
            (float_of_int (Cache.live_count ni)))
      rp.rp_nodes
  in
  let edge_drift =
    List.filter_map
      (fun ec ->
        match List.assoc_opt ec.ec_edge cache.Cache.c_edges with
        | None -> None
        | Some ei ->
          let table =
            List.find_map
              (fun (es : Translate.edge_shape) ->
                if es.Translate.es_name = ec.ec_edge then es.Translate.es_child_table else None)
              shapes
          in
          check ~what:"relationship" ~name:ec.ec_edge ~edge:(Some ec.ec_edge) ~table ec.ec_conns
            (float_of_int (List.length (Cache.conns_live ei))))
      rp.rp_edges
  in
  node_drift @ edge_drift

let install ?factor ?min_rows api =
  Api.set_drift_advisor api
    (Some
       (fun db plan cache ->
         List.map
           (fun a -> (a.ad_diag, a.ad_edge, a.ad_table))
           (drift ?factor ?min_rows db plan cache)))

(* ------------------------------------------------------------------ *)
(* EXPLAIN ADVISE / \advise                                           *)

(* Compose/translate failures carry "[CODE] message" prefixes; lift the
   code into the diagnostic when present. *)
let diag_of_failure msg =
  let code, text =
    if String.length msg > 2 && msg.[0] = '[' then
      match String.index_opt msg ']' with
      | Some i when i > 1 ->
        let rest = String.sub msg (i + 1) (String.length msg - i - 1) in
        (String.sub msg 1 (i - 1), String.trim rest)
      | _ -> ("XNF000", msg)
    else ("XNF000", msg)
  in
  Diag.err ~code text

let advise_text ?probe_threshold ?force_factor ?inversion_factor api text :
    (report, Diag.t list) result =
  match Xnf_parser.parse_stmt_diag text with
  | Error d -> Error [ d ]
  | Ok (Xnf_ast.X_query q) -> (
    (* A fresh compile, never the session's plan cache: advising must not
       touch cache order, hit counters or stored plans. *)
    match Fetch_plan.compile (Api.db api) (Api.registry api) q with
    | exception Translate.Translate_error msg -> Error [ diag_of_failure msg ]
    | exception Co_schema.Schema_error msg -> Error [ diag_of_failure msg ]
    | exception View_registry.View_error msg -> Error [ diag_of_failure msg ]
    | exception Db.Exec_error msg -> Error [ diag_of_failure msg ]
    | exception Binder.Bind_error msg -> Error [ diag_of_failure msg ]
    | exception Sql_lexer.Parse_error msg -> Error [ diag_of_failure msg ]
    | exception Catalog.Unknown_table t -> Error [ diag_of_failure ("unknown table: " ^ t) ]
    | plan ->
      let rp =
        analyze ?probe_threshold ?force_factor ?inversion_factor (Api.db api) plan
      in
      Api.add_advisories api ~source:"advise" ~query:(Fetch_plan.text plan) (entries rp);
      Ok rp)
  | Ok _ ->
    Error
      [ Diag.err ~code:"PLAN399" "EXPLAIN ADVISE expects an OUT OF ... TAKE query" ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)

let render rp =
  let b = Buffer.create 256 in
  Buffer.add_string b "Cost estimates:\n";
  List.iter (fun (n, est) -> Printf.bprintf b "  node %-20s est_rows=%.0f\n" n est) rp.rp_nodes;
  List.iter
    (fun ec ->
      Printf.bprintf b
        "  edge %-20s strategy=%s est_frontier=%.0f est_child=%.0f est_fanout=%.2f \
         est_conns=%.0f est_cost=%.0f best=%s(%.0f)\n"
        ec.ec_edge
        (Translate.strategy_name ec.ec_strategy)
        ec.ec_frontier ec.ec_child ec.ec_fanout ec.ec_conns ec.ec_cost
        (Translate.strategy_name ec.ec_best)
        ec.ec_best_cost)
    rp.rp_edges;
  Buffer.add_string b "Advisories:\n";
  (match rp.rp_advisories with
  | [] -> Buffer.add_string b "  (none)\n"
  | advs -> List.iter (fun a -> Printf.bprintf b "  %s\n" (Diag.to_string a.ad_diag)) advs);
  Buffer.contents b
