(** Checkpoint snapshots: the whole logical database — tables with exact
    slot arrays (tombstones included), primary keys, index definitions,
    tabular view texts, ANALYZE statistics, opaque upper-layer sections —
    in one CRC-sealed file, written atomically (tmp + fsync + rename).

    File layout: magic "XNFCKPT1" | u32 body_len | u32 crc32(body) | body. *)

type table_image = {
  ti_name : string;
  ti_schema : Schema.t;
  ti_pk : int array option;
  ti_version : int;  (** {!Table.version} at snapshot time *)
  ti_slots : Row.t option array;  (** exact slot array, tombstones included *)
  ti_indexes : (string * int array * bool) list;  (** name, key cols, ordered? *)
}

type image = {
  im_lsn : int;  (** WAL LSN at snapshot time; replay skips records at or below *)
  im_tables : table_image list;
  im_views : (string * string) list;  (** name, re-parsable SELECT text *)
  im_stats : Stats.table_stats list;
  im_sections : (string * string) list;  (** opaque upper-layer (tag, payload) *)
}

exception Corrupt of string

(** [of_catalog catalog ~lsn ~sections] snapshots the catalog's current
    logical state. *)
val of_catalog : Catalog.t -> lsn:int -> sections:(string * string) list -> image

(** [encode image] is the full file image (header and CRC seal included). *)
val encode : image -> string

(** [decode s] parses a full file image. @raise Corrupt on any damage. *)
val decode : string -> image

(** [write ~path image] writes atomically (tmp, fsync, rename); counts
    [recovery.checkpoints]. *)
val write : path:string -> image -> unit

(** [read ~path] is the stored image, [None] when the file is absent.
    @raise Corrupt on damage. *)
val read : path:string -> image option

(** [apply image catalog] restores the snapshot into a blank catalog
    (tables, PKs, indexes, rows at exact rowids, views, stats). Table
    versions are restored exactly. *)
val apply : image -> Catalog.t -> unit
