(** Stage-boundary validation hook points.

    The query pipeline calls these after binding ([post_bind]), after the
    QGM rewrite ([post_rewrite]), and after optimizer lowering
    ([post_optimize]). All default to no-ops; [lib/check] installs
    invariant validators here. Hook bodies may raise to abort the
    statement. *)

val post_bind : (Catalog.t -> Qgm.t -> unit) ref
val post_rewrite : (Catalog.t -> Qgm.t -> unit) ref
val post_optimize : (Catalog.t -> Plan.t -> unit) ref

(** [reset ()] restores all hooks to no-ops. *)
val reset : unit -> unit
