(** Heap tables: mutable row storage with stable row ids, tombstoned
    deletion, automatic index maintenance and basic statistics.

    The optional touch hook lets the paged-storage simulation observe every
    row access the executor makes (see {!Buffer_pool} and {!Page}). *)

type t

exception Schema_violation of string

val create : name:string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

(** [cardinality t] is the number of live rows. *)
val cardinality : t -> int

(** [version t] changes whenever the table content changes (used for cache
    staleness detection). *)
val version : t -> int

(** [set_touch t hook] installs (or clears) the row-access observer. *)
val set_touch : t -> (int -> unit) option -> unit

(** [insert t row] appends [row], returning its row id.
    @raise Schema_violation on arity/type/nullability errors. *)
val insert : t -> Row.t -> int

(** [install t rowid row] materializes [row] at exactly [rowid]
    (recovery replay; preserves row ids). Grows the slot vector with
    tombstones; replaces a live occupant.
    @raise Schema_violation on invalid [row]. *)
val install : t -> int -> Row.t -> unit

(** [pad_slots t n] extends the slot vector with tombstones to at least
    [n] slots (checkpoint restore of trailing deletions). *)
val pad_slots : t -> int -> unit

(** [slot_count t] is the total slot count, live + tombstoned. *)
val slot_count : t -> int

(** [slot t rowid] is the raw slot content (no touch notification). *)
val slot : t -> int -> Row.t option

(** [set_version t v] forces the version counter (recovery only). *)
val set_version : t -> int -> unit

(** [get t rowid] is the live row at [rowid], if any (notifies touch). *)
val get : t -> int -> Row.t option

(** [delete t rowid] tombstones the row; returns the deleted row. *)
val delete : t -> int -> Row.t option

(** [update t rowid row] replaces the row; returns the previous row.
    @raise Schema_violation on invalid [row]. *)
val update : t -> int -> Row.t -> Row.t option

(** [restore t rowid row] re-materializes a previously deleted row at its
    original slot — transaction rollback.
    @raise Invalid_argument when the slot is live. *)
val restore : t -> int -> Row.t -> unit

(** [iter f t] applies [f rowid row] to every live row. *)
val iter : (int -> Row.t -> unit) -> t -> unit

(** [to_seq t] enumerates [(rowid, row)] for live rows; do not mutate the
    table during consumption. *)
val to_seq : t -> (int * Row.t) Seq.t

(** [rows t] is a materialized snapshot of the live rows. *)
val rows : t -> Row.t list

(** [rowids t] lists live row ids. *)
val rowids : t -> int list

(** [add_index t ~name ~cols kind] creates and backfills an index. *)
val add_index : t -> name:string -> cols:int array -> Index.kind -> Index.t

val indexes : t -> Index.t list

(** [drop_index t ~name] removes the index named [name] (case-insensitive);
    returns whether one was removed. Bumps the global index epoch. *)
val drop_index : t -> name:string -> bool

(** [find_index t ~cols] is an index keyed exactly by [cols], if any. *)
val find_index : t -> cols:int array -> Index.t option

(** [lookup_index t idx key] resolves index hits to live rows (notifies
    touch per fetched row). *)
val lookup_index : t -> Index.t -> Row.t -> (int * Row.t) list

(** [set_primary_key t cols] records the PK column positions (uniqueness is
    enforced by the executor through the PK index). *)
val set_primary_key : t -> int array -> unit

val primary_key : t -> int array option

(** [clear t] removes all rows and resets indexes. *)
val clear : t -> unit

(** [distinct_estimate t col] is the exact distinct count of column [col]
    over live rows (tables are in memory, exact statistics are
    affordable). *)
val distinct_estimate : t -> int -> int
