(** Transaction manager: explicit BEGIN/COMMIT/ROLLBACK with WAL-based
    undo. Outside an explicit transaction every statement auto-commits
    (multi-record statements under an implicit commit envelope — see
    {!statement}). *)

type t

exception Txn_error of string

(** [create ?wal catalog] is a transaction manager logging to [wal]
    (default: a fresh in-memory WAL). *)
val create : ?wal:Wal.t -> Catalog.t -> t

(** [wal t] exposes the log (recovery tests, inspection). *)
val wal : t -> Wal.t

(** [swap_wal t wal] repoints the manager at a new log (recovery);
    discards any active transaction or envelope. *)
val swap_wal : t -> Wal.t -> unit

(** [in_txn t] is whether an explicit transaction is open. *)
val in_txn : t -> bool

(** @raise Txn_error if a transaction is already open. *)
val begin_txn : t -> unit

(** @raise Txn_error if none is open. *)
val commit : t -> unit

(** Undoes the open transaction's DML newest-first using the log's
    before-images. @raise Txn_error if none is open. *)
val rollback : t -> unit

(** [statement t f] runs [f] under an implicit commit envelope when no
    explicit transaction is open: DML logged inside shares one
    R_begin/R_commit pair and one sync point, keeping every durable
    frame boundary statement-consistent. Nested calls and calls inside
    an explicit transaction just run [f]. *)
val statement : t -> (unit -> 'a) -> 'a

(** [log_dml t r] appends a DML record, tracking it for rollback when a
    transaction is open. *)
val log_dml : t -> Wal.record -> unit

(** [log_meta t r] appends a DDL/meta record (replayed unconditionally,
    never undone). *)
val log_meta : t -> Wal.record -> unit
