(* ANALYZE-collected table and column statistics.

   One pass over a table computes, per column: the exact distinct count
   (NDV, via {!Expr.Row_key_boxed} hashing so Int/Float compare across types
   and NULLs never inflate the count), min/max under the total order, the
   null count, and an equi-depth histogram (bucket upper boundaries over
   the sorted non-null values). The snapshot records the table version it
   was collected at; consumers ({!Cost}, the [sys.column_stats] view)
   treat a version mismatch as staleness — flagged, never silently
   reused.

   Tables are in memory, so "statistics" here are exact at collection
   time; what ANALYZE buys over {!Table.distinct_estimate} is O(1) reads
   on the optimizer's hot path plus value-distribution information
   (histograms, null fractions) that no on-the-fly scan provides. *)

type col_stats = {
  cs_name : string;
  cs_ndv : int;  (** distinct non-null values (>= 1 by convention) *)
  cs_min : Value.t;  (** [Null] when the column has no non-null values *)
  cs_max : Value.t;
  cs_nulls : int;
  cs_hist : Value.t array;  (** equi-depth bucket upper boundaries, ascending *)
}

type table_stats = {
  ts_table : string;  (** catalog name, as registered *)
  ts_version : int;  (** {!Table.version} at collection time *)
  ts_collected_ns : float;  (** wall-clock collection time (epoch ns) *)
  ts_rowcount : int;
  ts_cols : col_stats array;
}

(* target number of histogram buckets; fewer when NDV is small *)
let hist_target = 8

let equi_depth (values : Value.t array) : Value.t array =
  let len = Array.length values in
  if len = 0 then [||]
  else begin
    Array.sort Value.compare_total values;
    let b = min hist_target len in
    Array.init b (fun k -> values.(((k + 1) * len / b) - 1))
  end

(** [analyze t] is a statistics snapshot of [t]'s current contents. *)
let analyze (t : Table.t) : table_stats =
  let schema = Table.schema t in
  let arity = Schema.arity schema in
  let seen = Array.init arity (fun _ -> Expr.Row_key_boxed_tbl.create 64) in
  let nulls = Array.make arity 0 in
  let mins = Array.make arity Value.Null in
  let maxs = Array.make arity Value.Null in
  let non_null : Value.t list array = Array.make arity [] in
  let rowcount = ref 0 in
  Table.iter
    (fun _ row ->
      incr rowcount;
      for i = 0 to arity - 1 do
        let v = row.(i) in
        if Value.is_null v then nulls.(i) <- nulls.(i) + 1
        else begin
          Expr.Row_key_boxed_tbl.replace seen.(i) [| v |] ();
          (match mins.(i) with
          | Value.Null -> mins.(i) <- v
          | m -> if Value.compare_total v m < 0 then mins.(i) <- v);
          (match maxs.(i) with
          | Value.Null -> maxs.(i) <- v
          | m -> if Value.compare_total v m > 0 then maxs.(i) <- v);
          non_null.(i) <- v :: non_null.(i)
        end
      done)
    t;
  let cols =
    Array.init arity (fun i ->
        { cs_name = (Schema.col schema i).Schema.col_name;
          cs_ndv = max 1 (Expr.Row_key_boxed_tbl.length seen.(i));
          cs_min = mins.(i);
          cs_max = maxs.(i);
          cs_nulls = nulls.(i);
          cs_hist = equi_depth (Array.of_list non_null.(i)) })
  in
  { ts_table = Table.name t; ts_version = Table.version t;
    ts_collected_ns = Obs.Metrics.now_ns (); ts_rowcount = !rowcount; ts_cols = cols }

(** [null_frac st cs] is the fraction of NULLs in the column at collection
    time (0 on empty tables). *)
let null_frac (st : table_stats) (cs : col_stats) =
  if st.ts_rowcount = 0 then 0. else float_of_int cs.cs_nulls /. float_of_int st.ts_rowcount

(** [range_fraction cs op v] estimates the fraction of the column's
    non-null values satisfying [col op v] from the equi-depth histogram:
    each bucket holds ~1/B of the values, so the satisfied fraction is the
    share of buckets whose upper boundary clears [v]. [None] without a
    histogram (empty column). *)
let range_fraction (cs : col_stats) (op : [ `Lt | `Le | `Gt | `Ge ]) (v : Value.t) :
    float option =
  let b = Array.length cs.cs_hist in
  if b = 0 then None
  else begin
    let le =
      Array.fold_left
        (fun acc bound -> if Value.compare_total bound v <= 0 then acc + 1 else acc)
        0 cs.cs_hist
    in
    let frac_le = float_of_int le /. float_of_int b in
    let frac = match op with `Lt | `Le -> frac_le | `Gt | `Ge -> 1. -. frac_le in
    Some (Float.min 1. (Float.max 0.01 frac))
  end
