(* Secondary indexes: hash (equality) and ordered (range) multimaps from
   key rows to row ids. Indexes are maintained by {!Table} on every DML
   operation; they never own the data. *)

module Key = struct
  type t = Row.t

  let compare = Row.compare
  let equal = Row.equal
  let hash = Row.hash
end

module KeyHash = Hashtbl.Make (Key)
module KeyMap = Map.Make (Key)

type kind = Hash | Ordered

type t = {
  idx_name : string;
  idx_cols : int array;  (** key column positions in the indexed table *)
  idx_kind : kind;
  hash : int list KeyHash.t;  (** used when [idx_kind = Hash] *)
  mutable ordered : int list KeyMap.t;  (** used when [idx_kind = Ordered] *)
}

(* Global index epoch: bumped whenever an index is created or dropped
   anywhere. Cached fetch plans bake index choices in at compile time and
   record the epoch they compiled against; a moved epoch invalidates them. *)
let epoch_counter = ref 0

(** [epoch ()] is the global index epoch. *)
let epoch () = !epoch_counter

(** [bump_epoch ()] advances the global index epoch (called on index
    creation here and on index drop by {!Table.drop_index}). *)
let bump_epoch () = incr epoch_counter

(** [create ~name ~cols kind] is an empty index over key columns [cols]. *)
let create ~name ~cols kind =
  bump_epoch ();
  { idx_name = name; idx_cols = cols; idx_kind = kind; hash = KeyHash.create 64; ordered = KeyMap.empty }

let name t = t.idx_name
let cols t = t.idx_cols
let kind t = t.idx_kind

(** [key_of_row t row] extracts the index key from a full table row. *)
let key_of_row t (row : Row.t) : Key.t = Row.project row t.idx_cols

(** [insert t row rowid] registers [rowid] under [row]'s key. *)
let insert t row rowid =
  let key = key_of_row t row in
  match t.idx_kind with
  | Hash ->
    let cur = Option.value ~default:[] (KeyHash.find_opt t.hash key) in
    KeyHash.replace t.hash key (rowid :: cur)
  | Ordered ->
    let cur = Option.value ~default:[] (KeyMap.find_opt key t.ordered) in
    t.ordered <- KeyMap.add key (rowid :: cur) t.ordered

(** [remove t row rowid] unregisters [rowid] from [row]'s key. *)
let remove t row rowid =
  let key = key_of_row t row in
  match t.idx_kind with
  | Hash -> begin
    match KeyHash.find_opt t.hash key with
    | None -> ()
    | Some ids ->
      let ids = List.filter (fun id -> id <> rowid) ids in
      if ids = [] then KeyHash.remove t.hash key else KeyHash.replace t.hash key ids
  end
  | Ordered -> begin
    match KeyMap.find_opt key t.ordered with
    | None -> ()
    | Some ids ->
      let ids = List.filter (fun id -> id <> rowid) ids in
      t.ordered <-
        (if ids = [] then KeyMap.remove key t.ordered else KeyMap.add key ids t.ordered)
  end

(** [lookup t key] is the row ids whose key equals [key]. *)
let lookup t (key : Key.t) : int list =
  match t.idx_kind with
  | Hash -> Option.value ~default:[] (KeyHash.find_opt t.hash key)
  | Ordered -> Option.value ~default:[] (KeyMap.find_opt key t.ordered)

(** [range t ?lo ?hi ()] enumerates row ids with keys in the interval;
    bounds are inclusive when the flag is [`Incl], exclusive for [`Excl].
    Only valid on [Ordered] indexes. *)
let range t ?lo ?hi () : int list =
  match t.idx_kind with
  | Hash -> invalid_arg "Index.range: hash index"
  | Ordered ->
    let in_lo key =
      match lo with
      | None -> true
      | Some (`Incl k) -> Row.compare key k >= 0
      | Some (`Excl k) -> Row.compare key k > 0
    in
    let in_hi key =
      match hi with
      | None -> true
      | Some (`Incl k) -> Row.compare key k <= 0
      | Some (`Excl k) -> Row.compare key k < 0
    in
    KeyMap.fold
      (fun key ids acc -> if in_lo key && in_hi key then List.rev_append ids acc else acc)
      t.ordered []
    |> List.rev

(** [distinct_keys t] counts distinct keys currently present. *)
let distinct_keys t =
  match t.idx_kind with
  | Hash -> KeyHash.length t.hash
  | Ordered -> KeyMap.cardinal t.ordered

(** [clear t] empties the index. *)
let clear t =
  match t.idx_kind with
  | Hash -> KeyHash.reset t.hash
  | Ordered -> t.ordered <- KeyMap.empty
