(** Global value dictionary: every {!Value.t} maps to a dense tagged int
    id, and the execution core runs on those ids instead of boxed values.

    Id layout (2 tag bits in OCaml's 63-bit native int):

    - tag [00] — inline integer: [id asr 2] is the value. Covers every
      [Int v] with [-2^60 <= v < 2^60], so ordinary integer columns never
      touch the dictionary at all.
    - tag [01] — dictionary slot: [id asr 2] indexes the intern table.
      Holds [Str], [Float], and the (rare) out-of-inline-range [Int].
    - tag [10] — specials: {!null_id} (NULL), {!false_id}, {!true_id}.

    Exact ids are structural: [Int 1] and [Float 1.] have different ids,
    so [decode (encode v)] round-trips the constructor. Join keys instead
    need SQL equality ([Value.equal]: Int/Float cross-equal, NULL = NULL);
    {!key_cell} normalizes an exact id to a key id such that
    [key_cell a = key_cell b <-> Value.equal (decode a) (decode b)] —
    integral floats normalize to the id of the integer they equal. NULL
    keys keep {!null_id}; SQL's NULL-never-joins rule stays with the
    caller (skip keys containing {!null_id}).

    The dictionary only grows; ids are never relocated, so encoded rows
    held by caches stay decodable across {!restore}. *)

(** Reserved special ids. *)

val null_id : int
val false_id : int
val true_id : int

(** [is_null id] is [id = null_id]. *)
val is_null : int -> bool

(** [encode v] is the exact id for [v], interning it if needed. *)
val encode : Value.t -> int

(** [decode id] is the value for [id].
    @raise Invalid_argument on an id no dictionary entry backs. *)
val decode : int -> Value.t

(** [find_exact v] is [encode v] without interning: [None] when [v] has no
    id yet (so no encoded row anywhere can contain it). *)
val find_exact : Value.t -> int option

(** [key_cell id] is the normalized join-key id for exact id [id]. O(1),
    allocation-free (an array read for slot ids, identity otherwise). *)
val key_cell : int -> int

(** [encode_row r] / [decode_row e] map {!encode}/{!decode} over a row. *)

val encode_row : Value.t array -> int array
val decode_row : int array -> Value.t array

(** [size ()] is the number of interned slots (inline ints and specials
    excluded). *)
val size : unit -> int

(** [snapshot ()] is the interned entries in slot order — the persistent
    image written at checkpoint. *)
val snapshot : unit -> Value.t array

(** [restore entries] re-interns [entries] in order. In a fresh process
    this reproduces the snapshotting process's slots exactly; in a warm
    one existing ids never move (new entries get fresh slots), so rows
    encoded before the restore stay valid. *)
val restore : Value.t array -> unit
