(** File-backed page store: fixed-size pages in a single file.

    The storage backend under {!Buffer_pool} when a layout is
    materialized ({!Page.materialize}): page [i] occupies bytes
    [i * page_bytes .. (i+1) * page_bytes) of the file. Reads of pages
    beyond the end of file come back zero-filled (a fresh store is all
    empty pages). Traffic is counted in the global metrics registry as
    [pagestore.reads] / [pagestore.writes] / [pagestore.flushes] plus
    [pagestore.bytes_read] / [pagestore.bytes_written]. *)

type t

(** [create ~path ~page_bytes] opens (creating if necessary) the store.
    @raise Invalid_argument when [page_bytes <= 0]. *)
val create : path:string -> page_bytes:int -> t

val page_bytes : t -> int
val path : t -> string

(** [read store pid] is the current content of page [pid] (always
    [page_bytes] long; zero-filled beyond the end of file). *)
val read : t -> int -> bytes

(** [write store pid data] overwrites page [pid]. [data] is truncated or
    zero-padded to the page size. Buffered by the OS until {!flush}. *)
val write : t -> int -> bytes -> unit

(** [flush store] fsyncs the file. *)
val flush : t -> unit

val close : t -> unit

(** Per-store traffic since [create]. *)

val reads : t -> int
val writes : t -> int
