(** ANALYZE-collected table and column statistics.

    One pass over a table computes per-column NDV (via {!Expr.Row_key_boxed}
    hashing), min/max under the total order, null counts and equi-depth
    histograms. The snapshot records the {!Table.version} it was
    collected at; consumers treat a version mismatch as staleness —
    flagged (see [sys.column_stats]), never silently reused. *)

type col_stats = {
  cs_name : string;
  cs_ndv : int;  (** distinct non-null values (>= 1 by convention) *)
  cs_min : Value.t;  (** [Null] when the column has no non-null values *)
  cs_max : Value.t;
  cs_nulls : int;
  cs_hist : Value.t array;  (** equi-depth bucket upper boundaries, ascending *)
}

type table_stats = {
  ts_table : string;
  ts_version : int;  (** {!Table.version} at collection time *)
  ts_collected_ns : float;  (** wall-clock collection time (epoch ns) *)
  ts_rowcount : int;
  ts_cols : col_stats array;
}

(** [analyze t] is a statistics snapshot of [t]'s current contents. *)
val analyze : Table.t -> table_stats

(** [null_frac st cs] is the column's NULL fraction at collection time. *)
val null_frac : table_stats -> col_stats -> float

(** [range_fraction cs op v] estimates the fraction of the column's
    non-null values satisfying [col op v] from the histogram; [None]
    without one. Clamped to [0.01, 1]. *)
val range_fraction : col_stats -> [ `Lt | `Le | `Gt | `Ge ] -> Value.t -> float option
