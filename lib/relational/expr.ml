(* Bound scalar expressions.

   Column references are positional into the operator's input row (for a
   join, the concatenation of the outer and inner rows). Predicates evaluate
   under SQL three-valued logic; [eval] returns a value where boolean-typed
   expressions use [Value.Bool]/[Value.Null] to represent TRUE/FALSE/UNKNOWN.

   [Subplan] nodes carry correlated subqueries: a delayed plan evaluated
   with the current input row bound to its parameters. The indirection
   through a closure keeps this module independent of the planner. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type arith_op = Add | Sub | Mul | Div | Mod

type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type t =
  | Col of int  (** positional reference into the input row *)
  | Param of int  (** correlation parameter, substituted before evaluation *)
  | Lit of Value.t
  | Cmp of cmp * t * t
  | Arith of arith_op * t * t
  | Neg of t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t
  | Like of t * t  (** pattern with SQL wildcards [%] and [_] *)
  | In_list of t * t list
  | Case of (t * t) list * t option  (** searched CASE: WHEN pred THEN expr ... ELSE *)
  | Fn of string * t list  (** scalar function by name: abs, lower, upper, length, mod, coalesce *)
  | Exists_plan of subplan
  | In_plan of t * subplan
  | Scalar_plan of subplan

and subplan = {
  sp_eval : Row.t -> Row.t Seq.t;
      (** run the subquery with the outer row as correlation context *)
  sp_descr : string;  (** for pretty-printing *)
  sp_ty : ty_hint;  (** output type of column 0, for scalar subqueries *)
}

and ty_hint = Hint_int | Hint_float | Hint_string | Hint_bool

let truth_of_value : Value.t -> Value.truth = function
  | Value.Bool true -> True
  | Value.Bool false -> False
  | Value.Null -> Unknown
  | v -> invalid_arg ("Expr: non-boolean predicate value " ^ Value.to_string v)

let value_of_truth : Value.truth -> Value.t = function
  | True -> Value.Bool true
  | False -> Value.Bool false
  | Unknown -> Value.Null

(* SQL LIKE: '%' matches any run, '_' any single char. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= np then si >= ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && Char.equal s.[si] c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

let apply_fn name (args : Value.t list) : Value.t =
  match String.lowercase_ascii name, args with
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "abs", [ Value.Null ] -> Value.Null
  | "lower", [ Value.Str s ] -> Value.Str (String.lowercase_ascii s)
  | "lower", [ Value.Null ] -> Value.Null
  | "upper", [ Value.Str s ] -> Value.Str (String.uppercase_ascii s)
  | "upper", [ Value.Null ] -> Value.Null
  | "length", [ Value.Str s ] -> Value.Int (String.length s)
  | "length", [ Value.Null ] -> Value.Null
  | "mod", [ a; b ] -> Value.arith `Mod a b
  | "coalesce", args ->
    (try List.find (fun v -> not (Value.is_null v)) args with Not_found -> Value.Null)
  | name, _ -> invalid_arg ("Expr: unknown function or arity: " ^ name)

(** [eval row e] evaluates [e] against [row]. Boolean results are encoded
    as [Bool]/[Null] per 3VL. *)
let rec eval (row : Row.t) (e : t) : Value.t =
  match e with
  | Col i -> row.(i)
  | Param i -> invalid_arg (Printf.sprintf "Expr: unsubstituted parameter $p%d" i)
  | Lit v -> v
  | Cmp (op, a, b) -> begin
    match Value.compare_sql (eval row a) (eval row b) with
    | None -> Value.Null
    | Some c ->
      let r =
        match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
      in
      Value.Bool r
  end
  | Arith (op, a, b) ->
    let op = match op with Add -> `Add | Sub -> `Sub | Mul -> `Mul | Div -> `Div | Mod -> `Mod in
    Value.arith op (eval row a) (eval row b)
  | Neg a -> begin
    match eval row a with
    | Value.Int i -> Value.Int (-i)
    | Value.Float f -> Value.Float (-.f)
    | Value.Null -> Value.Null
    | v -> invalid_arg ("Expr: cannot negate " ^ Value.to_string v)
  end
  | And (a, b) -> value_of_truth (Value.truth_and (eval_pred row a) (eval_pred row b))
  | Or (a, b) -> value_of_truth (Value.truth_or (eval_pred row a) (eval_pred row b))
  | Not a -> value_of_truth (Value.truth_not (eval_pred row a))
  | Is_null a -> Value.Bool (Value.is_null (eval row a))
  | Is_not_null a -> Value.Bool (not (Value.is_null (eval row a)))
  | Like (a, p) -> begin
    match eval row a, eval row p with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | Value.Str s, Value.Str pattern -> Value.Bool (like_match ~pattern s)
    | _ -> invalid_arg "Expr: LIKE on non-strings"
  end
  | In_list (a, items) ->
    let v = eval row a in
    if Value.is_null v then Value.Null
    else
      let rec go unknown = function
        | [] -> if unknown then Value.Null else Value.Bool false
        | item :: rest -> begin
          match Value.compare_sql v (eval row item) with
          | Some 0 -> Value.Bool true
          | Some _ -> go unknown rest
          | None -> go true rest
        end
      in
      go false items
  | Case (branches, else_) ->
    let rec go = function
      | [] -> ( match else_ with Some e -> eval row e | None -> Value.Null)
      | (cond, result) :: rest ->
        if Value.is_true (eval_pred row cond) then eval row result else go rest
    in
    go branches
  | Fn (name, args) -> apply_fn name (List.map (eval row) args)
  | Exists_plan sp ->
    Value.Bool (not (Seq.is_empty (sp.sp_eval row)))
  | In_plan (a, sp) ->
    let v = eval row a in
    if Value.is_null v then Value.Null
    else
      let unknown = ref false in
      let found =
        Seq.exists
          (fun (r : Row.t) ->
            match Value.compare_sql v r.(0) with
            | Some 0 -> true
            | Some _ -> false
            | None ->
              unknown := true;
              false)
          (sp.sp_eval row)
      in
      if found then Value.Bool true else if !unknown then Value.Null else Value.Bool false
  | Scalar_plan sp -> begin
    match (sp.sp_eval row) () with
    | Seq.Nil -> Value.Null
    | Seq.Cons (r, rest) ->
      if not (Seq.is_empty rest) then invalid_arg "Expr: scalar subquery returned more than one row";
      if Array.length r <> 1 then invalid_arg "Expr: scalar subquery returned more than one column";
      r.(0)
  end

(** [eval_pred row e] evaluates [e] as a predicate, yielding a 3VL truth. *)
and eval_pred row e = truth_of_value (eval row e)

(** [shift k e] adds [k] to every column index — used when an expression
    built against one side of a join must read the concatenated row. *)
let rec shift k e =
  match e with
  | Col i -> Col (i + k)
  | Param _ | Lit _ -> e
  | Cmp (op, a, b) -> Cmp (op, shift k a, shift k b)
  | Arith (op, a, b) -> Arith (op, shift k a, shift k b)
  | Neg a -> Neg (shift k a)
  | And (a, b) -> And (shift k a, shift k b)
  | Or (a, b) -> Or (shift k a, shift k b)
  | Not a -> Not (shift k a)
  | Is_null a -> Is_null (shift k a)
  | Is_not_null a -> Is_not_null (shift k a)
  | Like (a, p) -> Like (shift k a, shift k p)
  | In_list (a, items) -> In_list (shift k a, List.map (shift k) items)
  | Case (branches, else_) ->
    Case (List.map (fun (c, r) -> (shift k c, shift k r)) branches, Option.map (shift k) else_)
  | Fn (name, args) -> Fn (name, List.map (shift k) args)
  | Exists_plan _ | In_plan _ | Scalar_plan _ -> e

(** [map_cols f e] rewrites every column index through [f]; raises whatever
    [f] raises (used to re-base expressions after projections). Subplan
    nodes are kept as-is (their correlation is by full input row). *)
let rec map_cols f e =
  match e with
  | Col i -> Col (f i)
  | Param _ | Lit _ -> e
  | Cmp (op, a, b) -> Cmp (op, map_cols f a, map_cols f b)
  | Arith (op, a, b) -> Arith (op, map_cols f a, map_cols f b)
  | Neg a -> Neg (map_cols f a)
  | And (a, b) -> And (map_cols f a, map_cols f b)
  | Or (a, b) -> Or (map_cols f a, map_cols f b)
  | Not a -> Not (map_cols f a)
  | Is_null a -> Is_null (map_cols f a)
  | Is_not_null a -> Is_not_null (map_cols f a)
  | Like (a, p) -> Like (map_cols f a, map_cols f p)
  | In_list (a, items) -> In_list (map_cols f a, List.map (map_cols f) items)
  | Case (branches, else_) ->
    Case
      ( List.map (fun (c, r) -> (map_cols f c, map_cols f r)) branches,
        Option.map (map_cols f) else_ )
  | Fn (name, args) -> Fn (name, List.map (map_cols f) args)
  | Exists_plan _ | In_plan _ | Scalar_plan _ -> e

(** [cols e] is the set (sorted, deduplicated) of column indexes read by
    [e], excluding columns read inside subplans. *)
let cols e =
  let acc = ref [] in
  let rec go = function
    | Col i -> acc := i :: !acc
    | Param _ | Lit _ -> ()
    | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) | Like (a, b) ->
      go a;
      go b
    | Neg a | Not a | Is_null a | Is_not_null a -> go a
    | In_list (a, items) ->
      go a;
      List.iter go items
    | Case (branches, else_) ->
      List.iter
        (fun (c, r) ->
          go c;
          go r)
        branches;
      Option.iter go else_
    | Fn (_, args) -> List.iter go args
    | Exists_plan _ | Scalar_plan _ -> ()
    | In_plan (a, _) -> go a
  in
  go e;
  List.sort_uniq compare !acc

(** [has_subplan e] detects correlated-subquery nodes (these block certain
    rewrites). *)
let rec has_subplan = function
  | Exists_plan _ | In_plan _ | Scalar_plan _ -> true
  | Col _ | Param _ | Lit _ -> false
  | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) | Like (a, b) ->
    has_subplan a || has_subplan b
  | Neg a | Not a | Is_null a | Is_not_null a -> has_subplan a
  | In_list (a, items) -> has_subplan a || List.exists has_subplan items
  | Case (branches, else_) ->
    List.exists (fun (c, r) -> has_subplan c || has_subplan r) branches
    || (match else_ with Some e -> has_subplan e | None -> false)
  | Fn (_, args) -> List.exists has_subplan args

(** [subst_params env e] replaces every [Param i] with [Lit env.(i)] —
    applied by the executor before evaluating a correlated subplan body. *)
let rec subst_params (env : Value.t array) e =
  match e with
  | Param i -> Lit env.(i)
  | Col _ | Lit _ -> e
  | Cmp (op, a, b) -> Cmp (op, subst_params env a, subst_params env b)
  | Arith (op, a, b) -> Arith (op, subst_params env a, subst_params env b)
  | Neg a -> Neg (subst_params env a)
  | And (a, b) -> And (subst_params env a, subst_params env b)
  | Or (a, b) -> Or (subst_params env a, subst_params env b)
  | Not a -> Not (subst_params env a)
  | Is_null a -> Is_null (subst_params env a)
  | Is_not_null a -> Is_not_null (subst_params env a)
  | Like (a, p) -> Like (subst_params env a, subst_params env p)
  | In_list (a, items) -> In_list (subst_params env a, List.map (subst_params env) items)
  | Case (branches, else_) ->
    Case
      ( List.map (fun (c, r) -> (subst_params env c, subst_params env r)) branches,
        Option.map (subst_params env) else_ )
  | Fn (name, args) -> Fn (name, List.map (subst_params env) args)
  | In_plan (a, sp) -> In_plan (subst_params env a, sp)
  | Exists_plan _ | Scalar_plan _ -> e

(** [has_param e] holds when [e] contains an unsubstituted parameter. *)
let rec has_param = function
  | Param _ -> true
  | Col _ | Lit _ -> false
  | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) | Like (a, b) ->
    has_param a || has_param b
  | Neg a | Not a | Is_null a | Is_not_null a -> has_param a
  | In_list (a, items) -> has_param a || List.exists has_param items
  | Case (branches, else_) ->
    List.exists (fun (c, r) -> has_param c || has_param r) branches
    || (match else_ with Some e -> has_param e | None -> false)
  | Fn (_, args) -> List.exists has_param args
  | Exists_plan _ | In_plan _ | Scalar_plan _ -> false

(** [conjuncts e] splits a conjunction into its factors. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(** [conjoin es] rebuilds a conjunction ([Lit TRUE] when empty). *)
let conjoin = function
  | [] -> Lit (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc x -> And (acc, x)) e rest

let pp_cmp ppf op =
  Fmt.string ppf
    (match op with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

(** [pp] prints the expression with positional columns as [$i]. *)
let rec pp ppf = function
  | Col i -> Fmt.pf ppf "$%d" i
  | Param i -> Fmt.pf ppf "$p%d" i
  | Lit v -> Value.pp ppf v
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a pp_cmp op pp b
  | Arith (op, a, b) ->
    let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%" in
    Fmt.pf ppf "(%a %s %a)" pp a s pp b
  | Neg a -> Fmt.pf ppf "(-%a)" pp a
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Not a -> Fmt.pf ppf "(NOT %a)" pp a
  | Is_null a -> Fmt.pf ppf "(%a IS NULL)" pp a
  | Is_not_null a -> Fmt.pf ppf "(%a IS NOT NULL)" pp a
  | Like (a, p) -> Fmt.pf ppf "(%a LIKE %a)" pp a pp p
  | In_list (a, items) -> Fmt.pf ppf "(%a IN (%a))" pp a (Fmt.list ~sep:(Fmt.any ", ") pp) items
  | Case (branches, else_) ->
    Fmt.pf ppf "CASE";
    List.iter (fun (c, r) -> Fmt.pf ppf " WHEN %a THEN %a" pp c pp r) branches;
    Option.iter (fun e -> Fmt.pf ppf " ELSE %a" pp e) else_;
    Fmt.pf ppf " END"
  | Fn (name, args) -> Fmt.pf ppf "%s(%a)" name (Fmt.list ~sep:(Fmt.any ", ") pp) args
  | Exists_plan sp -> Fmt.pf ppf "EXISTS(%s)" sp.sp_descr
  | In_plan (a, sp) -> Fmt.pf ppf "(%a IN (%s))" pp a sp.sp_descr
  | Scalar_plan sp -> Fmt.pf ppf "(%s)" sp.sp_descr

(** Hash-key view of an {e encoded} row: equality and hashing over
    {!Dict} id arrays. Comparison and hashing touch only unboxed ints —
    no allocation, no polymorphic compare. Callers must normalize each
    cell through [Dict.key_cell] before building a key so SQL-engine
    semantics hold: Int/Float cross-type equality (an integral float's
    key id is the int's id) and NULL = NULL (all NULLs are [Dict.null_id],
    so a build bucket holds all NULL-keyed rows — callers enforce SQL's
    NULL-never-matches rule by skipping keys for which [has_null] holds).
    Shared by the relational hash join/group operators and the XNF batch
    edge probers so both sides of a differential test agree on key
    semantics. *)
module Row_key = struct
  type t = int array

  (* top-level recursion, not local closures or refs: these run once per
     hash probe on the encoded hot path and must not allocate *)
  let rec eq_from (a : t) (b : t) i =
    i >= Array.length a
    || ((Array.unsafe_get a i : int) = Array.unsafe_get b i && eq_from a b (i + 1))

  let equal (a : t) (b : t) = Array.length a = Array.length b && eq_from a b 0

  let rec hash_from (k : t) i acc =
    if i >= Array.length k then acc land max_int
    else hash_from k (i + 1) ((acc * 31) + Array.unsafe_get k i)

  let hash (k : t) = hash_from k 0 7

  let rec null_from (k : t) i =
    i < Array.length k && (Dict.is_null (Array.unsafe_get k i) || null_from k (i + 1))

  let has_null (k : t) = null_from k 0
end

module Row_key_tbl = Hashtbl.Make (Row_key)

(** The pre-dictionary boxed key view ([Value.equal] / [Value.hash] over
    [Value.t] arrays). Kept for the layers that still work on decoded
    values — column statistics, the naive oracles, and the E14 bench
    baseline that measures the old boxed hot path. *)
module Row_key_boxed = struct
  type t = Value.t array

  let equal (a : t) (b : t) =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash (k : t) = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
  let has_null (k : t) = Array.exists Value.is_null k
end

module Row_key_boxed_tbl = Hashtbl.Make (Row_key_boxed)
