(* SQL values and three-valued logic.

   Values are dynamically typed at this layer; static typing is enforced by
   the binder. Comparison follows SQL semantics: any comparison involving
   NULL is [Unknown]; numeric values compare across Int/Float. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** Three-valued logic truth values (SQL's TRUE / FALSE / UNKNOWN). *)
type truth = True | False | Unknown

(** [truth_of_bool b] embeds booleans into 3VL. *)
let truth_of_bool b = if b then True else False

(** [is_true t] holds only for [True] — the filter semantics of SQL WHERE
    (UNKNOWN rows are rejected). *)
let is_true = function True -> true | False | Unknown -> false

(** [truth_and a b] is Kleene conjunction. *)
let truth_and a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | Unknown, (True | Unknown) | True, Unknown -> Unknown

(** [truth_or a b] is Kleene disjunction. *)
let truth_or a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | Unknown, (False | Unknown) | False, Unknown -> Unknown

(** [truth_not a] is Kleene negation. *)
let truth_not = function True -> False | False -> True | Unknown -> Unknown

(** [is_null v] holds for [Null]. *)
let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

(** [compare_total a b] is a total order used for sorting and index keys.
    NULLs sort first; numbers compare across Int/Float; distinct runtime
    types are ordered by an arbitrary fixed rank. *)
let compare_total a b =
  let rank = function
    | Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Float _ -> 2 | Str _ -> 3
  in
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> compare x y
  | Float x, Float y -> compare x y
  | Int x, Float y -> compare (float_of_int x) y
  | Float x, Int y -> compare x (float_of_int y)
  | Str x, Str y -> compare x y
  | Bool x, Bool y -> compare x y
  | _ -> compare (rank a) (rank b)

(** [compare_sql a b] is SQL comparison: [None] when either side is NULL
    (the comparison is UNKNOWN), otherwise [Some c] with [c] as in
    [compare_total]. *)
let compare_sql a b =
  if is_null a || is_null b then None else Some (compare_total a b)

(** [equal a b] is structural equality under the total order (used for
    grouping and index keys, where NULL = NULL). *)
let equal a b = compare_total a b = 0

(** [hash v] hashes consistently with [equal] (Int 1 and Float 1.0 collide
    intentionally since they compare equal). *)
let hash = function
  | Null -> 17
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash i
  | Float f ->
    (* integral floats hash as the int they equal (Int 1 = Float 1.0);
       the conversion guard keeps out-of-int-range floats on the float
       hash. Ints hash allocation-free — they dominate join keys. *)
    if Float.is_integer f && Float.abs f < 4.611686018427388e18 then Hashtbl.hash (int_of_float f)
    else Hashtbl.hash f
  | Str s -> Hashtbl.hash s

(** [to_string v] renders [v] for display (not SQL-quoted). *)
let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> if b then "TRUE" else "FALSE"

(** [to_sql_literal v] renders [v] as a SQL literal (strings quoted). *)
let to_sql_literal = function
  | Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c) s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | v -> to_string v

(** [pp] is a {!Fmt} pretty-printer for values. *)
let pp ppf v = Fmt.string ppf (to_string v)

(** [as_float v] coerces numeric values to float. @raise Invalid_argument
    on non-numeric input. *)
let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Null | Str _ | Bool _ -> invalid_arg "Value.as_float"

(** [as_int v] coerces to int (floats truncate). @raise Invalid_argument on
    non-numeric input. *)
let as_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Null | Str _ | Bool _ -> invalid_arg "Value.as_int"

(** [as_string v] extracts a string. @raise Invalid_argument otherwise. *)
let as_string = function
  | Str s -> s
  | Null | Int _ | Float _ | Bool _ -> invalid_arg "Value.as_string"

(** [arith op a b] applies integer/float arithmetic with SQL NULL
    propagation: any NULL operand yields NULL. Division by zero yields NULL
    (engines vary; NULL keeps queries total). [op] is one of
    [`Add | `Sub | `Mul | `Div | `Mod]. *)
let arith op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> begin
    match op with
    | `Add -> Int (x + y)
    | `Sub -> Int (x - y)
    | `Mul -> Int (x * y)
    | `Div -> if y = 0 then Null else Int (x / y)
    | `Mod -> if y = 0 then Null else Int (x mod y)
  end
  | (Int _ | Float _), (Int _ | Float _) ->
    let x = as_float a and y = as_float b in
    begin
      match op with
      | `Add -> Float (x +. y)
      | `Sub -> Float (x -. y)
      | `Mul -> Float (x *. y)
      | `Div -> if y = 0. then Null else Float (x /. y)
      | `Mod -> if y = 0. then Null else Float (Float.rem x y)
    end
  | Str x, Str y when op = `Add -> Str (x ^ y)
  | _ -> invalid_arg "Value.arith: type mismatch"
