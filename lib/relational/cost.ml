(* Cardinality estimation over QGM trees.

   Estimates drive join-method selection in the optimizer. They use exact
   base-table cardinalities (tables are in memory) and, when a fresh
   ANALYZE snapshot exists in the catalog, its column statistics: NDV for
   equality selectivity, equi-depth histograms for range predicates, null
   fractions for IS [NOT] NULL. Stale snapshots (table version moved since
   collection) are never consulted — estimation falls back to the textbook
   defaults: 1/distinct for equality against a literal, fixed fractions
   for other comparisons, independence across conjuncts. *)

let default_ineq_selectivity = 0.3
let default_pred_selectivity = 0.1

(* resolve output column [i] of [node] to a base-table column with fresh
   ANALYZE statistics, when the column is a direct passthrough *)
let rec base_col_stats catalog node i : (Stats.table_stats * Stats.col_stats) option =
  match node with
  | Qgm.Access { table; _ } -> begin
    match Catalog.fresh_stats_opt catalog table with
    | Some st when i < Array.length st.Stats.ts_cols -> Some (st, st.Stats.ts_cols.(i))
    | _ -> None
  end
  | Qgm.Select { input; _ } | Qgm.Distinct input | Qgm.Order { input; _ } ->
    base_col_stats catalog input i
  | Qgm.Limit (input, _) -> base_col_stats catalog input i
  | Qgm.Project { input; cols } -> begin
    match List.nth_opt cols i with
    | Some (Expr.Col j, _) -> base_col_stats catalog input j
    | _ -> None
  end
  | Qgm.Join { kind; left; right; _ } -> begin
    let lw = Schema.arity (Qgm.schema_of catalog left) in
    match kind with
    | Qgm.Semi | Qgm.Anti -> base_col_stats catalog left i
    | Qgm.Inner | Qgm.Left ->
      if i < lw then base_col_stats catalog left i
      else base_col_stats catalog right (i - lw)
  end
  | Qgm.Temp _ | Qgm.Group _ | Qgm.Values _ | Qgm.Union_all _ -> None

(* selectivity of one conjunct over [node]'s output *)
let rec conjunct_selectivity catalog node (e : Expr.t) =
  match e with
  | Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Lit _)
  | Expr.Cmp (Expr.Eq, Expr.Lit _, Expr.Col i)
  | Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Param _)
  | Expr.Cmp (Expr.Eq, Expr.Param _, Expr.Col i) ->
    1.0 /. float_of_int (distinct_of catalog node i)
  | Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Col j) ->
    1.0 /. float_of_int (max (distinct_of catalog node i) (distinct_of catalog node j))
  | Expr.Cmp (((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), Expr.Col i, Expr.Lit v) ->
    range_selectivity catalog node i op v
  | Expr.Cmp (((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), Expr.Lit v, Expr.Col i) ->
    (* flip: lit < col  <=>  col > lit *)
    let flipped =
      match op with
      | Expr.Lt -> Expr.Gt
      | Expr.Le -> Expr.Ge
      | Expr.Gt -> Expr.Lt
      | Expr.Ge -> Expr.Le
      | _ -> op
    in
    range_selectivity catalog node i flipped v
  | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> default_ineq_selectivity
  | Expr.Cmp (Expr.Ne, _, _) -> 0.9
  | Expr.And (a, b) -> conjunct_selectivity catalog node a *. conjunct_selectivity catalog node b
  | Expr.Or (a, b) ->
    let sa = conjunct_selectivity catalog node a and sb = conjunct_selectivity catalog node b in
    min 1.0 (sa +. sb)
  | Expr.Not a -> 1.0 -. conjunct_selectivity catalog node a
  | Expr.Is_null (Expr.Col i) -> begin
    match base_col_stats catalog node i with
    | Some (st, cs) -> Float.min 1.0 (Float.max 0.001 (Stats.null_frac st cs))
    | None -> 0.05
  end
  | Expr.Is_null _ -> 0.05
  | Expr.Is_not_null (Expr.Col i) -> begin
    match base_col_stats catalog node i with
    | Some (st, cs) -> Float.min 0.999 (Float.max 0.0 (1.0 -. Stats.null_frac st cs))
    | None -> 0.95
  end
  | Expr.Is_not_null _ -> 0.95
  | Expr.In_list (_, items) -> min 1.0 (0.05 *. float_of_int (List.length items))
  | _ -> default_pred_selectivity

(* range selectivity for [col op lit]: histogram-based when a fresh
   ANALYZE snapshot covers the column, the textbook default otherwise *)
and range_selectivity catalog node i op v =
  let frac =
    match base_col_stats catalog node i with
    | Some (_, cs) ->
      let o =
        match op with
        | Expr.Lt -> Some `Lt
        | Expr.Le -> Some `Le
        | Expr.Gt -> Some `Gt
        | Expr.Ge -> Some `Ge
        | _ -> None
      in
      Option.bind o (fun o -> Stats.range_fraction cs o v)
    | None -> None
  in
  match frac with Some f -> f | None -> default_ineq_selectivity

(* distinct-count estimate for output column [i] of [node]: resolved down to
   a base-table column when the column is a direct passthrough; fresh
   ANALYZE NDV is preferred over the on-the-fly table scan *)
and distinct_of catalog node i =
  match node with
  | Qgm.Access { table; _ } -> begin
    match Catalog.fresh_stats_opt catalog table with
    | Some st when i < Array.length st.Stats.ts_cols -> max 1 st.Stats.ts_cols.(i).Stats.cs_ndv
    | _ -> Table.distinct_estimate (Catalog.table catalog table) i
  end
  | Qgm.Temp { table; _ } -> Table.distinct_estimate table i
  | Qgm.Select { input; _ } | Qgm.Distinct input | Qgm.Order { input; _ } -> distinct_of catalog input i
  | Qgm.Limit (input, _) -> distinct_of catalog input i
  | Qgm.Project { input; cols } -> begin
    match List.nth_opt cols i with
    | Some (Expr.Col j, _) -> distinct_of catalog input j
    | _ -> max 1 (int_of_float (estimate catalog node) / 10)
  end
  | Qgm.Join { kind; left; right; _ } -> begin
    let lw = Schema.arity (Qgm.schema_of catalog left) in
    match kind with
    | Qgm.Semi | Qgm.Anti -> distinct_of catalog left i
    | Qgm.Inner | Qgm.Left ->
      if i < lw then distinct_of catalog left i else distinct_of catalog right (i - lw)
  end
  | Qgm.Group _ | Qgm.Values _ | Qgm.Union_all _ ->
    max 1 (int_of_float (estimate catalog node) / 10)

(** [estimate catalog node] is the estimated output cardinality of
    [node]. *)
and estimate catalog node =
  match node with
  | Qgm.Access { table; _ } -> float_of_int (Table.cardinality (Catalog.table catalog table))
  | Qgm.Temp { table; _ } -> float_of_int (Table.cardinality table)
  | Qgm.Values { rows; _ } -> float_of_int (List.length rows)
  | Qgm.Select { input; pred } ->
    estimate catalog input *. conjunct_selectivity catalog input pred
  | Qgm.Project { input; _ } -> estimate catalog input
  | Qgm.Join { kind; left; right; pred } -> begin
    let cl = estimate catalog left and cr = estimate catalog right in
    match kind with
    | Qgm.Semi -> cl *. 0.5
    | Qgm.Anti -> cl *. 0.5
    | Qgm.Inner | Qgm.Left ->
      let cross = cl *. cr in
      let sel =
        match pred with
        | None -> 1.0
        | Some p ->
          (* join-predicate selectivity over the concatenated schema *)
          let joined = Qgm.Join { kind = Qgm.Inner; left; right; pred = None } in
          conjunct_selectivity catalog joined p
      in
      let est = cross *. sel in
      if kind = Qgm.Left then Float.max est cl else est
  end
  | Qgm.Group { input; keys; _ } ->
    if keys = [] then 1.0 else Float.min (estimate catalog input) (estimate catalog input /. 3.0)
  | Qgm.Distinct input -> estimate catalog input *. 0.9
  | Qgm.Order { input; _ } -> estimate catalog input
  | Qgm.Limit (input, n) -> Float.min (float_of_int n) (estimate catalog input)
  | Qgm.Union_all (a, b) -> estimate catalog a +. estimate catalog b
