(* Global value dictionary — see dict.mli for the id layout.

   Interning is exact (per-constructor): the table's equality must never
   merge values that [decode] should distinguish, and must merge values
   [Value.equal] callers could intern twice. Floats use [Float.compare]
   equality, which collapses every NaN onto one slot (polymorphic
   hashing of NaN payloads is not stable) and treats -0. and 0. as the
   same slot — consistent with [Value.equal] in both cases. *)

let null_id = 0b010 (* tag 10, payload 0 *)
let false_id = 0b110 (* tag 10, payload 1 *)
let true_id = 0b1010 (* tag 10, payload 2 *)

let is_null id = id = null_id

(* Inline-int range: [v lsl 2] must round-trip through [asr 2]. *)
let min_inline = -(1 lsl 60)
let max_inline = (1 lsl 60) - 1

(* Largest float magnitude for which [int_of_float] is exact and defined:
   2^62. Integral floats at or beyond this cannot be normalized to the
   int they (approximately) equal and keep their own slot. *)
let float_int_bound = 4.611686018427387904e18

module VKey = struct
  type t = Value.t

  let equal a b =
    match a, b with
    | Value.Str x, Value.Str y -> String.equal x y
    | Value.Float x, Value.Float y -> Float.compare x y = 0
    | Value.Int x, Value.Int y -> x = y
    | Value.Bool x, Value.Bool y -> x = y
    | Value.Null, Value.Null -> true
    | _ -> false

  let hash = function
    | Value.Str s -> Hashtbl.hash s
    | Value.Float f ->
      (* must agree for Float.compare-equal bit patterns: -0./0. fall in
         the integral branch, NaN payloads on the fixed constant *)
      if Float.is_nan f then 0x5bd1e995
      else if Float.is_integer f && Float.abs f < float_int_bound then
        Hashtbl.hash (int_of_float f)
      else Hashtbl.hash f
    | v -> Hashtbl.hash v
end

module VTbl = Hashtbl.Make (VKey)

(* slot -> entry value, and slot -> normalized join-key id *)
let values : Value.t Vec.t = Vec.create ~dummy:Value.Null ()
let keys : int Vec.t = Vec.create ~dummy:0 ()
let slots : int VTbl.t = VTbl.create 4096

let size () = Vec.length values

let id_of_slot slot = (slot lsl 2) lor 1

let rec intern (v : Value.t) : int =
  match VTbl.find_opt slots v with
  | Some slot -> id_of_slot slot
  | None ->
    (* compute the key id FIRST: normalizing an integral float may intern
       the out-of-inline-range int it equals, which must get its slot
       before ours so [restore] replays in snapshot order. *)
    let key =
      match v with
      | Value.Float f
        when Float.is_integer f
             && Float.abs f < float_int_bound
             && not (Float.is_nan f) ->
        let n = int_of_float f in
        if n >= min_inline && n <= max_inline then n lsl 2 else intern (Value.Int n)
      | _ -> -1 (* own id, patched below *)
    in
    let slot = Vec.length values in
    Vec.push values v;
    Vec.push keys (if key = -1 then id_of_slot slot else key);
    VTbl.add slots v slot;
    id_of_slot slot

let encode = function
  | Value.Null -> null_id
  | Value.Bool false -> false_id
  | Value.Bool true -> true_id
  | Value.Int v when v >= min_inline && v <= max_inline -> v lsl 2
  | v -> intern v

let decode id =
  match id land 3 with
  | 0 -> Value.Int (id asr 2)
  | 1 ->
    let slot = id lsr 2 in
    if slot >= Vec.length values then
      invalid_arg (Printf.sprintf "Dict.decode: unknown slot id %d" id)
    else Vec.get values slot
  | 2 -> begin
    match id asr 2 with
    | 0 -> Value.Null
    | 1 -> Value.Bool false
    | 2 -> Value.Bool true
    | _ -> invalid_arg (Printf.sprintf "Dict.decode: unknown special id %d" id)
  end
  | _ -> invalid_arg (Printf.sprintf "Dict.decode: bad tag in id %d" id)

let find_exact = function
  | Value.Null -> Some null_id
  | Value.Bool false -> Some false_id
  | Value.Bool true -> Some true_id
  | Value.Int v when v >= min_inline && v <= max_inline -> Some (v lsl 2)
  | v -> ( match VTbl.find_opt slots v with Some slot -> Some (id_of_slot slot) | None -> None)

let key_cell id = if id land 3 = 1 then Vec.get keys (id lsr 2) else id

let encode_row (r : Value.t array) : int array = Array.map encode r
let decode_row (e : int array) : Value.t array = Array.map decode e

let snapshot () = Array.init (Vec.length values) (Vec.get values)

let restore entries = Array.iter (fun v -> ignore (intern v)) entries
