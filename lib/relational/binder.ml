(* Name resolution and typing: SQL AST -> QGM.

   The binder resolves table and column names against the catalog, expands
   tabular views inline (the first half of "view merging"; the rewrite phase
   then flattens the resulting operator stack), types projection outputs,
   and lowers subqueries to subplan expression nodes.

   Correlated subqueries may reference the immediately enclosing scope;
   such references become [Expr.Param] indexes into the outer row, and the
   subquery body is compiled through the [compile] callback supplied by the
   session (this keeps the binder independent of the optimizer). *)

open Sql_ast

exception Bind_error of string

let err fmt = Fmt.kstr (fun s -> raise (Bind_error s)) fmt

type env = {
  catalog : Catalog.t;
  compile : Qgm.t -> Row.t -> Row.t Seq.t;
      (** compile a (possibly parameterized) subquery body *)
  outer : Schema.t option;  (** enclosing scope, for correlated subqueries *)
  views_in_progress : string list;  (** cycle detection for view expansion *)
}

(** [make_env catalog ~compile] is a top-level binding environment. *)
let make_env catalog ~compile = { catalog; compile; outer = None; views_in_progress = [] }

let hint_of_ty = function
  | Schema.Ty_int -> Expr.Hint_int
  | Schema.Ty_float -> Expr.Hint_float
  | Schema.Ty_string -> Expr.Hint_string
  | Schema.Ty_bool -> Expr.Hint_bool

let ty_of_hint = function
  | Expr.Hint_int -> Schema.Ty_int
  | Expr.Hint_float -> Schema.Ty_float
  | Expr.Hint_string -> Schema.Ty_string
  | Expr.Hint_bool -> Schema.Ty_bool

(* ---- expression typing (over bound expressions) ---- *)

let rec infer_ty env (schema : Schema.t) (e : Expr.t) : Schema.ty =
  match e with
  | Expr.Col i -> (Schema.col schema i).Schema.col_ty
  | Expr.Param i -> begin
    match env.outer with
    | Some outer -> (Schema.col outer i).Schema.col_ty
    | None -> err "parameter outside a subquery"
  end
  | Expr.Lit v -> begin
    match v with
    | Value.Int _ -> Schema.Ty_int
    | Value.Float _ -> Schema.Ty_float
    | Value.Str _ -> Schema.Ty_string
    | Value.Bool _ -> Schema.Ty_bool
    | Value.Null -> Schema.Ty_string (* polymorphic NULL: any type fits *)
  end
  | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.Is_null _ | Expr.Is_not_null _
  | Expr.Like _ | Expr.In_list _ | Expr.Exists_plan _ | Expr.In_plan _ ->
    Schema.Ty_bool
  | Expr.Arith (op, a, b) -> begin
    match op, infer_ty env schema a, infer_ty env schema b with
    | Expr.Add, Schema.Ty_string, _ -> Schema.Ty_string
    | _, Schema.Ty_float, _ | _, _, Schema.Ty_float -> Schema.Ty_float
    | _, _, _ -> Schema.Ty_int
  end
  | Expr.Neg a -> infer_ty env schema a
  | Expr.Case (branches, else_) -> begin
    match branches, else_ with
    | (_, r) :: _, _ -> infer_ty env schema r
    | [], Some e -> infer_ty env schema e
    | [], None -> Schema.Ty_string
  end
  | Expr.Fn (name, args) -> begin
    match String.lowercase_ascii name, args with
    | ("lower" | "upper"), _ -> Schema.Ty_string
    | "length", _ -> Schema.Ty_int
    | "mod", _ -> Schema.Ty_int
    | "abs", [ a ] -> infer_ty env schema a
    | "coalesce", a :: _ -> infer_ty env schema a
    | n, _ -> err "unknown function %s" n
  end
  | Expr.Scalar_plan sp -> ty_of_hint sp.Expr.sp_ty

(* ---- helpers ---- *)

let is_agg_fn name =
  match String.lowercase_ascii name with
  | "count" | "sum" | "avg" | "min" | "max" -> true
  | _ -> false

let agg_of_name name =
  match String.lowercase_ascii name with
  | "count" -> Expr.Count
  | "sum" -> Expr.Sum
  | "avg" -> Expr.Avg
  | "min" -> Expr.Min
  | "max" -> Expr.Max
  | n -> err "not an aggregate: %s" n

(* aggregate detection never descends into subqueries: those have their own
   scope and their own grouping *)
let rec contains_aggregate = function
  | E_count_star -> true
  | E_fn (name, _) when is_agg_fn name -> true
  | E_fn_distinct _ -> true
  | E_col _ | E_lit _ | E_exists _ | E_scalar _ | E_param _ -> false
  | E_cmp (_, a, b) | E_arith (_, a, b) | E_and (a, b) | E_or (a, b) | E_like (a, b) ->
    contains_aggregate a || contains_aggregate b
  | E_neg a | E_not a | E_is_null a | E_is_not_null a -> contains_aggregate a
  | E_in_list (a, items) -> contains_aggregate a || List.exists contains_aggregate items
  | E_in_query (a, _) -> contains_aggregate a
  | E_case (branches, else_) ->
    List.exists (fun (c, r) -> contains_aggregate c || contains_aggregate r) branches
    || (match else_ with Some e -> contains_aggregate e | None -> false)
  | E_fn (_, args) -> List.exists contains_aggregate args

let default_item_name i = function
  | E_col (_, n) -> n
  | E_fn (n, _) -> String.lowercase_ascii n
  | E_count_star -> "count"
  | _ -> Printf.sprintf "col%d" i

(* ---- expression binding ---- *)

let rec bind_expr env (schema : Schema.t) (e : expr) : Expr.t =
  match e with
  | E_col (qualifier, name) -> begin
    match Schema.find schema ?qualifier name with
    | i -> Expr.Col i
    | exception Schema.Unknown_column _ -> begin
      (* try the enclosing scope: correlated reference *)
      match env.outer with
      | Some outer -> begin
        match Schema.find outer ?qualifier name with
        | i -> Expr.Param i
        | exception Schema.Unknown_column c -> err "unknown column %s" c
      end
      | None ->
        err "unknown column %s"
          (match qualifier with Some q -> q ^ "." ^ name | None -> name)
    end
    | exception Schema.Ambiguous_column c -> err "ambiguous column %s" c
  end
  | E_lit v -> Expr.Lit v
  | E_cmp (op, a, b) -> Expr.Cmp (op, bind_expr env schema a, bind_expr env schema b)
  | E_arith (op, a, b) -> Expr.Arith (op, bind_expr env schema a, bind_expr env schema b)
  | E_neg a -> Expr.Neg (bind_expr env schema a)
  | E_and (a, b) -> Expr.And (bind_expr env schema a, bind_expr env schema b)
  | E_or (a, b) -> Expr.Or (bind_expr env schema a, bind_expr env schema b)
  | E_not a -> Expr.Not (bind_expr env schema a)
  | E_is_null a -> Expr.Is_null (bind_expr env schema a)
  | E_is_not_null a -> Expr.Is_not_null (bind_expr env schema a)
  | E_like (a, p) -> Expr.Like (bind_expr env schema a, bind_expr env schema p)
  | E_in_list (a, items) ->
    Expr.In_list (bind_expr env schema a, List.map (bind_expr env schema) items)
  | E_case (branches, else_) ->
    Expr.Case
      ( List.map (fun (c, r) -> (bind_expr env schema c, bind_expr env schema r)) branches,
        Option.map (bind_expr env schema) else_ )
  | E_fn (name, _) when is_agg_fn name -> err "aggregate %s not allowed here" name
  | E_fn_distinct (name, _) -> err "aggregate %s(DISTINCT) not allowed here" name
  | E_count_star -> err "COUNT(*) not allowed here"
  | E_fn (name, args) -> Expr.Fn (name, List.map (bind_expr env schema) args)
  | E_exists q -> Expr.Exists_plan (bind_subplan env schema q)
  | E_in_query (a, q) -> Expr.In_plan (bind_expr env schema a, bind_subplan env schema q)
  | E_scalar q -> Expr.Scalar_plan (bind_subplan env schema q)
  | E_param i -> Expr.Param i

and bind_subplan env (outer_schema : Schema.t) (q : select) : Expr.subplan =
  let sub_env = { env with outer = Some outer_schema } in
  let qgm = bind_select sub_env q in
  let out = Qgm.schema_of env.catalog qgm in
  let ty = if Schema.arity out > 0 then (Schema.col out 0).Schema.col_ty else Schema.Ty_bool in
  { Expr.sp_eval = env.compile qgm; sp_descr = select_to_string q; sp_ty = hint_of_ty ty }

(* ---- FROM clause ---- *)

(** wrap [node] in an identity projection that renames all columns to
    qualifier [alias] *)
and requalify_node env alias node =
  let schema = Qgm.schema_of env.catalog node in
  let alias = String.lowercase_ascii alias in
  let cols =
    List.mapi
      (fun i c -> (Expr.Col i, { c with Schema.col_qualifier = alias }))
      (Schema.columns schema)
  in
  Qgm.Project { input = node; cols }

and bind_table_ref env (tr : table_ref) : Qgm.t =
  match tr with
  | From_table (name, alias) -> begin
    (* default alias of a dotted name ("sys.tables") is the last segment,
       so unqualified references pick the short form: sys.tables.name
       binds as tables.name *)
    let default_alias =
      match String.rindex_opt name '.' with
      | Some i -> String.sub name (i + 1) (String.length name - i - 1)
      | None -> name
    in
    let alias = Option.value ~default:default_alias alias in
    match Catalog.view_opt env.catalog name with
    | Some view ->
      if List.mem (String.lowercase_ascii name) env.views_in_progress then
        err "cyclic view definition: %s" name;
      let env' =
        { env with
          views_in_progress = String.lowercase_ascii name :: env.views_in_progress;
          outer = None }
      in
      requalify_node env alias (bind_select env' view.Catalog.view_query)
    | None ->
      if Catalog.table_opt env.catalog name <> None then Qgm.Access { table = name; alias }
      else begin
        match Catalog.virtual_opt env.catalog name with
        | Some table -> Qgm.Temp { table; alias }
        | None -> err "unknown table or view: %s" name
      end
  end
  | From_select (q, alias) ->
    requalify_node env alias (bind_select { env with outer = None } q)
  | From_join (l, kind, r, on) ->
    let lq = bind_table_ref env l in
    let rq = bind_table_ref env r in
    let kind = match kind with Join_inner -> Qgm.Inner | Join_left -> Qgm.Left in
    let joined = Qgm.Join { kind; left = lq; right = rq; pred = None } in
    let schema = Qgm.schema_of env.catalog joined in
    let pred = Option.map (bind_expr env schema) on in
    Qgm.Join { kind; left = lq; right = rq; pred }

(* ---- SELECT binding ---- *)

and bind_select env (q : select) : Qgm.t =
  if q.sel_unions = [] then bind_select_single env q
  else begin
    (* UNION chain: bind each branch independently, fold left-associatively
       (UNION deduplicates everything accumulated so far, UNION ALL keeps
       duplicates), then apply ORDER BY / LIMIT to the whole chain *)
    let head =
      bind_select_single env { q with sel_unions = []; sel_order_by = []; sel_limit = None }
    in
    let head_schema = Qgm.schema_of env.catalog head in
    let folded =
      List.fold_left
        (fun acc (op, branch) ->
          let b = bind_select_single env branch in
          let bs = Qgm.schema_of env.catalog b in
          if Schema.arity bs <> Schema.arity head_schema then
            err "UNION branches produce different numbers of columns";
          let u = Qgm.Union_all (acc, b) in
          match op with Sql_ast.Union_all -> u | Sql_ast.Union_distinct -> Qgm.Distinct u)
        head q.sel_unions
    in
    let node =
      if q.sel_order_by = [] then folded
      else begin
        let bind_key (e, dir) =
          match e with
          | E_lit (Value.Int n) when n >= 1 && n <= Schema.arity head_schema ->
            (Expr.Col (n - 1), dir)
          | _ -> (bind_expr { env with outer = None } head_schema e, dir)
        in
        Qgm.Order { input = folded; keys = List.map bind_key q.sel_order_by }
      end
    in
    match q.sel_limit with None -> node | Some n -> Qgm.Limit (node, n)
  end

and bind_select_single env (q : select) : Qgm.t =
  (* 1. FROM *)
  let from_node, from_schema =
    match q.sel_from with
    | [] ->
      let schema = Schema.make [] in
      (Qgm.Values { schema; rows = [ [||] ] }, schema)
    | first :: rest ->
      let node =
        List.fold_left
          (fun acc tr ->
            Qgm.Join { kind = Qgm.Inner; left = acc; right = bind_table_ref env tr; pred = None })
          (bind_table_ref env first) rest
      in
      (node, Qgm.schema_of env.catalog node)
  in
  (* 2. WHERE *)
  let node =
    match q.sel_where with
    | None -> from_node
    | Some w -> begin
      if contains_aggregate w then err "aggregates are not allowed in WHERE";
      Qgm.Select { input = from_node; pred = bind_expr env from_schema w }
    end
  in
  (* 3. grouping decision *)
  let grouped =
    q.sel_group_by <> []
    || (match q.sel_having with Some _ -> true | None -> false)
    || List.exists
         (function Sel_expr (e, _) -> contains_aggregate e | Sel_star | Sel_table_star _ -> false)
         q.sel_items
  in
  let node, out_cols =
    if not grouped then bind_plain_projection env from_schema node q
    else bind_grouped env from_schema node q
  in
  (* ORDER BY: prefer keys over the output schema (aliases, positions,
     item matches); keys naming non-projected input columns sort below the
     projection (only possible for non-grouped queries). *)
  let bind_order_above out_schema (e, dir) =
    match e with
    | E_lit (Value.Int n) when n >= 1 && n <= Schema.arity out_schema -> Some (Expr.Col (n - 1), dir)
    | _ -> begin
      match bind_expr { env with outer = None } out_schema e with
      | bound -> Some (bound, dir)
      | exception Bind_error _ -> begin
        let indexed = List.mapi (fun i item -> (i, item)) q.sel_items in
        match
          List.find_opt
            (function _, Sel_expr (ie, _) -> ie = e | _, (Sel_star | Sel_table_star _) -> false)
            indexed
        with
        | Some (i, _) -> Some (Expr.Col i, dir)
        | None -> None
      end
    end
  in
  let node =
    if q.sel_order_by = [] then begin
      let node = Qgm.Project { input = node; cols = out_cols } in
      if q.sel_distinct then Qgm.Distinct node else node
    end
    else begin
      let out_schema = Schema.make (List.map snd out_cols) in
      let above = List.map (bind_order_above out_schema) q.sel_order_by in
      if List.for_all Option.is_some above then begin
        let node = Qgm.Project { input = node; cols = out_cols } in
        let node = if q.sel_distinct then Qgm.Distinct node else node in
        Qgm.Order { input = node; keys = List.map Option.get above }
      end
      else if grouped then err "cannot resolve ORDER BY expression over grouped output"
      else begin
        (* sort on the pre-projection row, then project (Distinct preserves
           encounter order) *)
        let keys =
          List.map (fun (e, dir) -> (bind_expr { env with outer = None } from_schema e, dir))
            q.sel_order_by
        in
        let node = Qgm.Project { input = Qgm.Order { input = node; keys }; cols = out_cols } in
        if q.sel_distinct then Qgm.Distinct node else node
      end
    end
  in
  match q.sel_limit with None -> node | Some n -> Qgm.Limit (node, n)

(* expand stars and bind plain (non-grouped) projection items *)
and bind_plain_projection env from_schema node q =
  let cols =
    List.concat_map
      (fun item ->
        match item with
        | Sel_star ->
          List.mapi (fun i c -> (Expr.Col i, c)) (Schema.columns from_schema)
        | Sel_table_star t ->
          let t = String.lowercase_ascii t in
          let matching =
            List.filteri
              (fun _ c -> String.equal c.Schema.col_qualifier t)
              (Schema.columns from_schema)
          in
          if matching = [] then err "unknown table in %s.*" t;
          List.filter_map
            (fun (i, c) -> if String.equal c.Schema.col_qualifier t then Some (Expr.Col i, c) else None)
            (List.mapi (fun i c -> (i, c)) (Schema.columns from_schema))
        | Sel_expr (e, alias) ->
          let bound = bind_expr env from_schema e in
          let i = 0 in
          let name = match alias with Some a -> a | None -> default_item_name i e in
          let ty = infer_ty env from_schema bound in
          let nullable =
            match bound with
            | Expr.Col i -> (Schema.col from_schema i).Schema.col_nullable
            | _ -> true
          in
          [ (bound, Schema.column ~nullable name ty) ])
      q.sel_items
  in
  (* deduplicate generated names (col0, col0 -> col0, col1) — only names
     of the generated shape col<digits>, so user columns that merely start
     with "col" (column_name, color) keep their names *)
  let generated name =
    String.length name > 3
    && String.sub name 0 3 = "col"
    && String.for_all (fun ch -> ch >= '0' && ch <= '9')
         (String.sub name 3 (String.length name - 3))
  in
  let cols =
    List.mapi
      (fun i (e, c) ->
        if generated c.Schema.col_name then
          (e, { c with Schema.col_name = Printf.sprintf "col%d" i })
        else (e, c))
      cols
  in
  (node, cols)

(* grouped query: build the Group box, then bind items/having over its
   output *)
and bind_grouped env from_schema node q =
  List.iter
    (function
      | Sel_star | Sel_table_star _ -> err "SELECT * is not allowed with GROUP BY"
      | Sel_expr _ -> ())
    q.sel_items;
  (* bind group keys over the input *)
  let keys =
    List.mapi
      (fun i ast ->
        let bound = bind_expr env from_schema ast in
        let name =
          match ast with E_col (_, n) -> n | _ -> Printf.sprintf "key%d" i
        in
        let ty = infer_ty env from_schema bound in
        (ast, (bound, Schema.column name ty)))
      q.sel_group_by
  in
  (* aggregates are collected on demand while binding post-group exprs *)
  let aggs : Qgm.agg list ref = ref [] in
  let agg_asts : expr list ref = ref [] in
  let key_count = List.length keys in
  let find_or_add_agg ast ~distinct fn arg_ast =
    let existing =
      List.find_opt (fun (a, _) -> a = ast) (List.combine !agg_asts (List.init (List.length !agg_asts) Fun.id))
    in
    match existing with
    | Some (_, i) -> Expr.Col (key_count + i)
    | None ->
      let arg = Option.map (bind_expr env from_schema) arg_ast in
      let name =
        match ast with
        | E_count_star -> "count"
        | E_fn (n, _) | E_fn_distinct (n, _) -> String.lowercase_ascii n
        | _ -> "agg"
      in
      let ty =
        match fn, arg with
        | Expr.Count_star, _ | Expr.Count, _ -> Schema.Ty_int
        | Expr.Avg, _ -> Schema.Ty_float
        | (Expr.Sum | Expr.Min | Expr.Max), Some a -> infer_ty env from_schema a
        | (Expr.Sum | Expr.Min | Expr.Max), None -> err "aggregate needs an argument"
      in
      let idx = List.length !aggs in
      aggs :=
        !aggs
        @ [ { Qgm.agg_fn = fn; agg_arg = arg; agg_distinct = distinct;
              agg_out = Schema.column name ty } ];
      agg_asts := !agg_asts @ [ ast ];
      Expr.Col (key_count + idx)
  in
  (* bind an expression over the group output: group keys match by AST
     equality; aggregate calls allocate output columns; anything else must
     be built from those. *)
  let rec bind_post (e : expr) : Expr.t =
    match List.find_opt (fun (ast, _) -> ast = e) keys with
    | Some (_, (_, col)) ->
      let i =
        match
          List.find_opt (fun (_, (ast2, _)) -> ast2 = e) (List.mapi (fun i k -> (i, (fst k, ()))) keys)
        with
        | Some (i, _) -> i
        | None -> assert false
      in
      ignore col;
      Expr.Col i
    | None -> begin
      match e with
      | E_count_star -> find_or_add_agg e ~distinct:false Expr.Count_star None
      | E_fn (name, [ arg ]) when is_agg_fn name -> begin
        if contains_aggregate arg then err "nested aggregates";
        match String.lowercase_ascii name with
        | "count" -> find_or_add_agg e ~distinct:false Expr.Count (Some arg)
        | _ -> find_or_add_agg e ~distinct:false (agg_of_name name) (Some arg)
      end
      | E_fn_distinct (name, arg) when is_agg_fn name -> begin
        if contains_aggregate arg then err "nested aggregates";
        match String.lowercase_ascii name with
        | "count" -> find_or_add_agg e ~distinct:true Expr.Count (Some arg)
        | _ -> find_or_add_agg e ~distinct:true (agg_of_name name) (Some arg)
      end
      | E_fn_distinct (name, _) -> err "%s does not take DISTINCT" name
      | E_fn (name, args) ->
        if is_agg_fn name then err "aggregate %s takes one argument" name
        else Expr.Fn (name, List.map bind_post args)
      | E_col (q_, n) ->
        err "column %s must appear in GROUP BY or inside an aggregate"
          (match q_ with Some q_ -> q_ ^ "." ^ n | None -> n)
      | E_lit v -> Expr.Lit v
      | E_cmp (op, a, b) -> Expr.Cmp (op, bind_post a, bind_post b)
      | E_arith (op, a, b) -> Expr.Arith (op, bind_post a, bind_post b)
      | E_neg a -> Expr.Neg (bind_post a)
      | E_and (a, b) -> Expr.And (bind_post a, bind_post b)
      | E_or (a, b) -> Expr.Or (bind_post a, bind_post b)
      | E_not a -> Expr.Not (bind_post a)
      | E_is_null a -> Expr.Is_null (bind_post a)
      | E_is_not_null a -> Expr.Is_not_null (bind_post a)
      | E_like (a, p) -> Expr.Like (bind_post a, bind_post p)
      | E_in_list (a, items) -> Expr.In_list (bind_post a, List.map bind_post items)
      | E_case (branches, else_) ->
        Expr.Case
          ( List.map (fun (c, r) -> (bind_post c, bind_post r)) branches,
            Option.map bind_post else_ )
      | E_exists _ | E_in_query _ | E_scalar _ -> err "subqueries over grouped output are unsupported"
      | E_param i -> Expr.Param i
    end
  in
  let bound_items =
    List.mapi
      (fun i item ->
        match item with
        | Sel_expr (e, alias) ->
          let bound = bind_post e in
          let name = match alias with Some a -> a | None -> default_item_name i e in
          (e, bound, name)
        | Sel_star | Sel_table_star _ -> assert false)
      q.sel_items
  in
  let bound_having = Option.map bind_post q.sel_having in
  (* the Group box is complete only now that all aggregates are known *)
  let group = Qgm.Group { input = node; keys = List.map snd keys; aggs = !aggs } in
  let group_schema = Qgm.schema_of env.catalog group in
  let node = match bound_having with None -> group | Some pred -> Qgm.Select { input = group; pred } in
  let out_cols =
    List.map
      (fun (_, bound, name) ->
        let ty = infer_ty env group_schema bound in
        (bound, Schema.column name ty))
      bound_items
  in
  (node, out_cols)

(** [bind env q] binds a parsed SELECT to QGM. *)
let bind env q = bind_select env q
