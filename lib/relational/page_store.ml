(* File-backed page store: fixed-size pages in a single file.

   Page [i] lives at byte offset [i * page_bytes]. Reads past the end of
   file are zero-filled so a fresh store presents as all-empty pages;
   writes extend the file as needed. The store does no caching at all —
   that is {!Buffer_pool}'s job — so every [read]/[write] here is a real
   pread/pwrite, which is exactly what experiment E4 measures. *)

type t = {
  path : string;
  fd : Unix.file_descr;
  page_bytes : int;
  mutable reads : int;
  mutable writes : int;
  mutable closed : bool;
}

let m_reads = Obs.Metrics.counter "pagestore.reads"
let m_writes = Obs.Metrics.counter "pagestore.writes"
let m_flushes = Obs.Metrics.counter "pagestore.flushes"
let m_bytes_read = Obs.Metrics.counter "pagestore.bytes_read"
let m_bytes_written = Obs.Metrics.counter "pagestore.bytes_written"

(** [create ~path ~page_bytes] opens (creating if necessary) the store. *)
let create ~path ~page_bytes =
  if page_bytes <= 0 then invalid_arg "Page_store.create";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  { path; fd; page_bytes; reads = 0; writes = 0; closed = false }

let page_bytes store = store.page_bytes
let path store = store.path

(** [read store pid] is page [pid]'s content, zero-filled beyond EOF. *)
let read store pid =
  if store.closed then invalid_arg "Page_store.read: closed";
  let buf = Bytes.make store.page_bytes '\000' in
  ignore (Unix.lseek store.fd (pid * store.page_bytes) Unix.SEEK_SET);
  let rec fill off =
    if off < store.page_bytes then begin
      let n = Unix.read store.fd buf off (store.page_bytes - off) in
      if n > 0 then fill (off + n)
    end
  in
  fill 0;
  store.reads <- store.reads + 1;
  Obs.Metrics.incr m_reads;
  Obs.Metrics.incr ~by:store.page_bytes m_bytes_read;
  buf

(** [write store pid data] overwrites page [pid], padding or truncating
    [data] to the page size. *)
let write store pid data =
  if store.closed then invalid_arg "Page_store.write: closed";
  let page = Bytes.make store.page_bytes '\000' in
  Bytes.blit data 0 page 0 (min (Bytes.length data) store.page_bytes);
  ignore (Unix.lseek store.fd (pid * store.page_bytes) Unix.SEEK_SET);
  let rec drain off =
    if off < store.page_bytes then
      drain (off + Unix.write store.fd page off (store.page_bytes - off))
  in
  drain 0;
  store.writes <- store.writes + 1;
  Obs.Metrics.incr m_writes;
  Obs.Metrics.incr ~by:store.page_bytes m_bytes_written

(** [flush store] fsyncs the backing file. *)
let flush store =
  if not store.closed then begin
    Unix.fsync store.fd;
    Obs.Metrics.incr m_flushes
  end

let close store =
  if not store.closed then begin
    store.closed <- true;
    Unix.close store.fd
  end

let reads store = store.reads
let writes store = store.writes
