(* Write-ahead log.

   Every DML operation appends a logical log record before the table is
   touched. The log serves two purposes: transaction rollback (undo, in
   {!Txn}) and recovery replay ([replay] re-applies a committed history
   onto empty tables — exercised by the recovery tests). Records carry
   before-images so that undo needs no further table reads. *)

type record =
  | R_insert of { table : string; rowid : int; row : Row.t }
  | R_delete of { table : string; rowid : int; row : Row.t  (** before-image *) }
  | R_update of { table : string; rowid : int; before : Row.t; after : Row.t }
  | R_begin of int  (** transaction id *)
  | R_commit of int
  | R_abort of int

type t = { mutable records : record list  (** newest first *); mutable lsn : int }

let m_appends = Obs.Metrics.counter "wal.appends"
let m_syncs = Obs.Metrics.counter "wal.syncs"
let m_replayed = Obs.Metrics.counter "wal.records_replayed"

(** [create ()] is an empty log. *)
let create () = { records = []; lsn = 0 }

(** [append log r] appends [r] and returns its LSN. Appends feed
    [wal.appends]; commit/abort records additionally count as
    [wal.syncs] — the points where a durable log would fsync. *)
let append log r =
  log.records <- r :: log.records;
  log.lsn <- log.lsn + 1;
  Obs.Metrics.incr m_appends;
  (match r with R_commit _ | R_abort _ -> Obs.Metrics.incr m_syncs | _ -> ());
  log.lsn

(** [records log] lists records oldest-first. *)
let records log = List.rev log.records

(** [length log] is the number of records. *)
let length log = log.lsn

(** [undo_record catalog r] reverses the effect of a DML record on the
    current table state. *)
let undo_record catalog = function
  | R_insert { table; rowid; _ } -> ignore (Table.delete (Catalog.table catalog table) rowid)
  | R_delete { table; rowid; row } -> Table.restore (Catalog.table catalog table) rowid row
  | R_update { table; rowid; before; _ } ->
    ignore (Table.update (Catalog.table catalog table) rowid before)
  | R_begin _ | R_commit _ | R_abort _ -> ()

(** [replay log catalog] re-applies the committed history onto [catalog]
    (whose tables must be empty with the right schemas): records of
    transactions that committed are redone; records of aborted or
    unfinished transactions are skipped. Auto-committed records (outside
    any BEGIN) are always redone. *)
let replay log catalog =
  (* first pass: outcome of each txn id *)
  let committed = Hashtbl.create 16 in
  List.iter
    (function R_commit id -> Hashtbl.replace committed id true | _ -> ())
    (records log);
  let current_txn = ref None in
  let should_apply () =
    match !current_txn with None -> true | Some id -> Hashtbl.mem committed id
  in
  List.iter
    (fun r ->
      Obs.Metrics.incr m_replayed;
      match r with
      | R_begin id -> current_txn := Some id
      | R_commit _ | R_abort _ -> current_txn := None
      | R_insert { table; row; _ } ->
        if should_apply () then ignore (Table.insert (Catalog.table catalog table) row)
      | R_delete { table; rowid; _ } ->
        if should_apply () then ignore (Table.delete (Catalog.table catalog table) rowid)
      | R_update { table; rowid; after; _ } ->
        if should_apply () then ignore (Table.update (Catalog.table catalog table) rowid after))
    (records log)
