(* Write-ahead log.

   Every DML operation appends a logical log record before the table is
   touched; DDL statements append schema records. The log serves three
   purposes: transaction rollback (undo, in {!Txn}), recovery replay
   ([replay]/[replay_records] re-apply a committed history), and — when
   attached to a file — durability.

   On-disk format: an 8-byte magic header, then a sequence of frames

     u32 len | u32 crc32(payload) | payload      (little-endian)

   where payload = i64 lsn + one encoded record. Appends accumulate in a
   pending buffer; a sync point (commit, abort, DDL, or any auto-committed
   record) flushes and fsyncs. Loading stops at the first incomplete or
   CRC-mismatching frame — the torn tail — and reports how many bytes
   were valid, so recovery can physically truncate there. *)

type record =
  | R_insert of { table : string; rowid : int; row : Row.t }
  | R_delete of { table : string; rowid : int; row : Row.t  (** before-image *) }
  | R_update of { table : string; rowid : int; before : Row.t; after : Row.t }
  | R_begin of int  (** transaction id *)
  | R_commit of int
  | R_abort of int
  | R_create_table of { name : string; schema : Schema.t; pk : int array option }
  | R_drop_table of string
  | R_create_index of { table : string; index : string; cols : int array; ordered : bool }
  | R_drop_index of string
  | R_create_view of { name : string; sql : string  (** re-parsable SELECT text *) }
  | R_drop_view of string
  | R_ext of { tag : string; payload : string }
      (** opaque upper-layer record (e.g. XNF view DDL); replay hands it
          to the [on_ext] callback instead of interpreting it *)

type file = {
  path : string;
  fd : Unix.file_descr;  (** opened O_APPEND; we track the logical size ourselves *)
  pending : Buffer.t;  (** appended but not yet written to the OS *)
  mutable size : int;  (** logical bytes (header + all frames appended) *)
  mutable durable : int;  (** bytes known flushed + fsynced *)
  mutable fsync_enabled : bool;  (** defect hook: [false] silently skips sync *)
}

type t = {
  mutable records : record list;  (** newest first, this attachment only *)
  mutable lsn : int;
  mutable file : file option;
}

let m_appends = Obs.Metrics.counter "wal.appends"
let m_syncs = Obs.Metrics.counter "wal.syncs"
let m_replayed = Obs.Metrics.counter "wal.records_replayed"
let m_truncated = Obs.Metrics.counter "wal.truncated_bytes"

(** [create ()] is an empty in-memory log (no durability). *)
let create () = { records = []; lsn = 0; file = None }

(* ---- record framing ---- *)

let header = "XNFWAL01"
let header_len = String.length header

let put_record b = function
  | R_insert { table; rowid; row } ->
    Buffer.add_char b '\001';
    Bincode.put_string b table;
    Bincode.put_int b rowid;
    Bincode.put_row b row
  | R_delete { table; rowid; row } ->
    Buffer.add_char b '\002';
    Bincode.put_string b table;
    Bincode.put_int b rowid;
    Bincode.put_row b row
  | R_update { table; rowid; before; after } ->
    Buffer.add_char b '\003';
    Bincode.put_string b table;
    Bincode.put_int b rowid;
    Bincode.put_row b before;
    Bincode.put_row b after
  | R_begin id ->
    Buffer.add_char b '\004';
    Bincode.put_int b id
  | R_commit id ->
    Buffer.add_char b '\005';
    Bincode.put_int b id
  | R_abort id ->
    Buffer.add_char b '\006';
    Bincode.put_int b id
  | R_create_table { name; schema; pk } ->
    Buffer.add_char b '\007';
    Bincode.put_string b name;
    Bincode.put_schema b schema;
    Bincode.put_option b Bincode.put_int_array pk
  | R_drop_table name ->
    Buffer.add_char b '\008';
    Bincode.put_string b name
  | R_create_index { table; index; cols; ordered } ->
    Buffer.add_char b '\009';
    Bincode.put_string b table;
    Bincode.put_string b index;
    Bincode.put_int_array b cols;
    Bincode.put_bool b ordered
  | R_drop_index name ->
    Buffer.add_char b '\010';
    Bincode.put_string b name
  | R_create_view { name; sql } ->
    Buffer.add_char b '\011';
    Bincode.put_string b name;
    Bincode.put_string b sql
  | R_drop_view name ->
    Buffer.add_char b '\012';
    Bincode.put_string b name
  | R_ext { tag; payload } ->
    Buffer.add_char b '\013';
    Bincode.put_string b tag;
    Bincode.put_string b payload

let get_record r : record =
  match Bincode.get_byte r with
  | 1 ->
    let table = Bincode.get_string r in
    let rowid = Bincode.get_int r in
    let row = Bincode.get_row r in
    R_insert { table; rowid; row }
  | 2 ->
    let table = Bincode.get_string r in
    let rowid = Bincode.get_int r in
    let row = Bincode.get_row r in
    R_delete { table; rowid; row }
  | 3 ->
    let table = Bincode.get_string r in
    let rowid = Bincode.get_int r in
    let before = Bincode.get_row r in
    let after = Bincode.get_row r in
    R_update { table; rowid; before; after }
  | 4 -> R_begin (Bincode.get_int r)
  | 5 -> R_commit (Bincode.get_int r)
  | 6 -> R_abort (Bincode.get_int r)
  | 7 ->
    let name = Bincode.get_string r in
    let schema = Bincode.get_schema r in
    let pk = Bincode.get_option r Bincode.get_int_array in
    R_create_table { name; schema; pk }
  | 8 -> R_drop_table (Bincode.get_string r)
  | 9 ->
    let table = Bincode.get_string r in
    let index = Bincode.get_string r in
    let cols = Bincode.get_int_array r in
    let ordered = Bincode.get_bool r in
    R_create_index { table; index; cols; ordered }
  | 10 -> R_drop_index (Bincode.get_string r)
  | 11 ->
    let name = Bincode.get_string r in
    let sql = Bincode.get_string r in
    R_create_view { name; sql }
  | 12 -> R_drop_view (Bincode.get_string r)
  | 13 ->
    let tag = Bincode.get_string r in
    let payload = Bincode.get_string r in
    R_ext { tag; payload }
  | n -> raise (Bincode.Decode_error (Printf.sprintf "bad WAL record tag %d" n))

(** [frame ~lsn r] is the on-disk bytes of one framed record. *)
let frame ~lsn r =
  let payload = Buffer.create 64 in
  Bincode.put_int payload lsn;
  put_record payload r;
  let payload = Buffer.contents payload in
  let b = Buffer.create (String.length payload + 8) in
  Bincode.put_u32 b (String.length payload);
  Bincode.put_u32 b (Crc32.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(** [decode s] parses the longest valid prefix of a full log image
    (header + frames): the [(lsn, record)] list and the number of valid
    bytes. A missing/invalid header decodes as the empty log. Never
    raises — torn or corrupt tails simply end the valid prefix. *)
let decode s =
  if String.length s < header_len || String.sub s 0 header_len <> header then ([], 0)
  else begin
    let acc = ref [] in
    let pos = ref header_len in
    let total = String.length s in
    (try
       let continue = ref true in
       while !continue do
         if !pos + 8 > total then continue := false
         else begin
           let r = Bincode.reader ~pos:!pos s in
           let len = Bincode.get_u32 r in
           let crc = Bincode.get_u32 r in
           if !pos + 8 + len > total then continue := false
           else if Crc32.update 0 s (!pos + 8) len <> crc then continue := false
           else begin
             let pr = Bincode.reader ~pos:(!pos + 8) s in
             let lsn = Bincode.get_int pr in
             let record = get_record pr in
             if Bincode.pos pr <> !pos + 8 + len then continue := false
             else begin
               acc := (lsn, record) :: !acc;
               pos := !pos + 8 + len
             end
           end
         end
       done
     with Bincode.Decode_error _ -> ());
    (List.rev !acc, !pos)
  end

(** [boundaries s] lists the crash-consistent byte offsets of a log image:
    the position just after the header and after every valid frame. Empty
    when [s] has no valid header. *)
let boundaries s =
  if String.length s < header_len || String.sub s 0 header_len <> header then []
  else begin
    let records, _ = decode s in
    let pos = ref header_len in
    header_len
    :: List.map
         (fun (lsn, r) ->
           pos := !pos + String.length (frame ~lsn r);
           !pos)
         records
  end

(* ---- file attachment ---- *)

(** [open_file ~path ~lsn] attaches (creating if necessary) the log file
    at [path] for appending, with the LSN counter continuing from [lsn].
    The caller is responsible for having loaded and truncated any torn
    tail first (see {!load} / {!truncate_path}). *)
let open_file ~path ~lsn =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let size =
    if size < header_len then begin
      (* fresh (or impossibly short) file: start it with the magic *)
      if size > 0 then Unix.ftruncate fd 0;
      let n = Unix.write_substring fd header 0 header_len in
      assert (n = header_len);
      Unix.fsync fd;
      header_len
    end
    else size
  in
  { records = [];
    lsn;
    file =
      Some { path; fd; pending = Buffer.create 4096; size; durable = size; fsync_enabled = true }
  }

(** [close log] flushes, syncs and closes the attached file, if any. *)
let close log =
  match log.file with
  | None -> ()
  | Some f ->
    if f.fsync_enabled && Buffer.length f.pending > 0 then begin
      let s = Buffer.contents f.pending in
      ignore (Unix.write_substring f.fd s 0 (String.length s));
      Buffer.clear f.pending;
      Unix.fsync f.fd
    end;
    Unix.close f.fd;
    log.file <- None

(** [sync log] makes everything appended so far durable: flush + fsync.
    With the fsync defect hook engaged ({!set_fsync} [false]) this is a
    silent no-op — exactly the bug the crash oracle must catch. *)
let sync log =
  match log.file with
  | None -> Obs.Metrics.incr m_syncs
  | Some f ->
    if f.fsync_enabled then begin
      if Buffer.length f.pending > 0 then begin
        let s = Buffer.contents f.pending in
        ignore (Unix.write_substring f.fd s 0 (String.length s));
        Buffer.clear f.pending
      end;
      Unix.fsync f.fd;
      f.durable <- f.size;
      Obs.Metrics.incr m_syncs
    end

(** [set_fsync log flag] toggles real syncing (defect injection for the
    crash oracle; production code never calls this with [false]). *)
let set_fsync log flag = match log.file with None -> () | Some f -> f.fsync_enabled <- flag

(** [file_path log] is the attached file's path, if any. *)
let file_path log = Option.map (fun f -> f.path) log.file

(** [file_size log] is the logical size in bytes (header + every frame
    appended, flushed or not); 0 when memory-only. *)
let file_size log = match log.file with None -> 0 | Some f -> f.size

(** [durable_size log] is the bytes known to have reached stable storage. *)
let durable_size log = match log.file with None -> 0 | Some f -> f.durable

(* a record whose append must immediately become durable: transaction
   outcomes and DDL. Plain DML records rely on the enclosing commit *)
let is_sync_point = function
  | R_commit _ | R_abort _ | R_create_table _ | R_drop_table _ | R_create_index _
  | R_drop_index _ | R_create_view _ | R_drop_view _ | R_ext _ ->
    true
  | R_insert _ | R_delete _ | R_update _ | R_begin _ -> false

let sync_now = sync

(** [append ?sync log r] appends [r] and returns its LSN. [sync] (or a
    commit/abort/DDL record) forces a sync point. *)
let append ?(sync = false) log r =
  log.records <- r :: log.records;
  log.lsn <- log.lsn + 1;
  Obs.Metrics.incr m_appends;
  (match log.file with
  | None -> ()
  | Some f ->
    let bytes = frame ~lsn:log.lsn r in
    Buffer.add_string f.pending bytes;
    f.size <- f.size + String.length bytes);
  if sync || is_sync_point r then begin
    match log.file with
    | None -> (match r with R_commit _ | R_abort _ -> Obs.Metrics.incr m_syncs | _ -> ())
    | Some _ -> sync_now log
  end;
  log.lsn

(** [records log] lists records appended through this attachment,
    oldest-first. *)
let records log = List.rev log.records

(** [length log] is the LSN high-water mark (number of appends, continued
    across re-attachments). *)
let length log = log.lsn

(** [lsn log] is a synonym for {!length} — the last assigned LSN. *)
let lsn log = log.lsn

(** [truncate_file log] discards every frame of the attached file (used
    after a checkpoint has absorbed the history): the file shrinks back
    to its header, the in-memory mirror clears, the LSN keeps rising. *)
let truncate_file log =
  log.records <- [];
  match log.file with
  | None -> ()
  | Some f ->
    Buffer.clear f.pending;
    Unix.ftruncate f.fd header_len;
    Unix.fsync f.fd;
    f.size <- header_len;
    f.durable <- header_len

(* ---- loading ---- *)

type loaded = {
  ld_records : (int * record) list;  (** (lsn, record), oldest first *)
  ld_valid : int;  (** bytes of the valid prefix (header + whole frames) *)
  ld_total : int;  (** file size on disk *)
}

(** [load ~path] reads and parses the log file; a missing file is the
    empty log. Parsing never fails: it stops at the torn tail. *)
let load ~path =
  if not (Sys.file_exists path) then { ld_records = []; ld_valid = 0; ld_total = 0 }
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let records, valid = decode s in
    { ld_records = records; ld_valid = valid; ld_total = String.length s }
  end

(** [truncate_path ~path n] physically truncates the file to [n] bytes —
    recovery cutting off a torn tail. Counts the removed bytes as
    [wal.truncated_bytes]. *)
let truncate_path ~path n =
  let total = (Unix.stat path).Unix.st_size in
  if total > n then begin
    Unix.truncate path n;
    Obs.Metrics.incr ~by:(total - n) m_truncated
  end

(* ---- undo and replay ---- *)

(** [undo_record catalog r] reverses the effect of a DML record on the
    current table state. DDL records are not undone (DDL is not
    transactional — matching live execution semantics). *)
let undo_record catalog = function
  | R_insert { table; rowid; _ } -> ignore (Table.delete (Catalog.table catalog table) rowid)
  | R_delete { table; rowid; row } -> Table.restore (Catalog.table catalog table) rowid row
  | R_update { table; rowid; before; _ } ->
    ignore (Table.update (Catalog.table catalog table) rowid before)
  | R_begin _ | R_commit _ | R_abort _ | R_create_table _ | R_drop_table _ | R_create_index _
  | R_drop_index _ | R_create_view _ | R_drop_view _ | R_ext _ ->
    ()

(* DDL replay is idempotent-tolerant: re-creating an existing object or
   dropping a missing one is a no-op. This keeps replay total both when
   the catalog was seeded from a checkpoint and when (as in the legacy
   in-memory tests) the schema was pre-created by hand. *)
let apply_ddl catalog = function
  | R_create_table { name; schema; pk } ->
    if Catalog.table_opt catalog name = None then begin
      let table = Catalog.create_table catalog ~name schema in
      match pk with
      | None -> ()
      | Some cols ->
        Table.set_primary_key table cols;
        ignore (Table.add_index table ~name:(name ^ "_pk") ~cols Index.Hash)
    end
  | R_drop_table name -> if Catalog.table_opt catalog name <> None then Catalog.drop_table catalog name
  | R_create_index { table; index; cols; ordered } -> begin
    match Catalog.table_opt catalog table with
    | None -> ()
    | Some t ->
      let exists =
        List.exists
          (fun i -> String.lowercase_ascii (Index.name i) = String.lowercase_ascii index)
          (Table.indexes t)
      in
      if not exists then
        ignore (Table.add_index t ~name:index ~cols (if ordered then Index.Ordered else Index.Hash))
  end
  | R_drop_index name ->
    ignore (List.exists (fun t -> Table.drop_index t ~name) (Catalog.tables catalog))
  | R_create_view { name; sql } ->
    if Catalog.view_opt catalog name = None then
      Catalog.add_view catalog ~name (Sql_parser.parse_select sql)
  | R_drop_view name -> Catalog.drop_view catalog name
  | R_insert _ | R_delete _ | R_update _ | R_begin _ | R_commit _ | R_abort _ | R_ext _ -> ()

(** [replay_records ?on_ext catalog records] re-applies a committed
    history onto [catalog]: DML records of transactions that committed
    are redone row-id-directed (rowids are preserved exactly); records
    of aborted or unfinished transactions are skipped. Auto-committed
    records (outside any BEGIN) and DDL records are always applied — DDL
    is not transactional. [R_ext] records go to [on_ext] in order. *)
let replay_records ?(on_ext = fun ~tag:_ ~payload:_ -> ()) catalog records =
  (* first pass: outcome of each txn id *)
  let committed = Hashtbl.create 16 in
  List.iter (function R_commit id -> Hashtbl.replace committed id true | _ -> ()) records;
  let current_txn = ref None in
  let should_apply () =
    match !current_txn with None -> true | Some id -> Hashtbl.mem committed id
  in
  List.iter
    (fun r ->
      Obs.Metrics.incr m_replayed;
      match r with
      | R_begin id -> current_txn := Some id
      | R_commit _ | R_abort _ -> current_txn := None
      | R_insert { table; rowid; row } ->
        if should_apply () then Table.install (Catalog.table catalog table) rowid row
      | R_delete { table; rowid; _ } ->
        if should_apply () then ignore (Table.delete (Catalog.table catalog table) rowid)
      | R_update { table; rowid; after; _ } ->
        if should_apply () then begin
          let t = Catalog.table catalog table in
          match Table.update t rowid after with
          | Some _ -> ()
          | None -> Table.install t rowid after
        end
      | R_ext { tag; payload } -> if should_apply () then on_ext ~tag ~payload
      | R_create_table _ | R_drop_table _ | R_create_index _ | R_drop_index _ | R_create_view _
      | R_drop_view _ ->
        apply_ddl catalog r)
    records

(** [replay log catalog] re-applies this attachment's records onto
    [catalog] (see {!replay_records}). *)
let replay log catalog = replay_records catalog (records log)
