(** Source locations for diagnostics.

    The shared SQL/XNF lexer attaches one span per token; parsers and the
    static checker (lib/check) carry them into error messages and [Diag]
    values. Lines and columns are 1-based. *)

type span = {
  sp_line : int;  (** 1-based line of the first character *)
  sp_col : int;  (** 1-based column of the first character *)
  sp_end_line : int;
  sp_end_col : int;  (** column one past the last character *)
}

(** [make ~line ~col ~end_line ~end_col] builds a span. *)
val make : line:int -> col:int -> end_line:int -> end_col:int -> span

(** [point ~line ~col] is a zero-width span (end = start). *)
val point : line:int -> col:int -> span

(** [pp] renders as [line L, column C]; [to_string] is the same as a
    string. *)

val pp : Format.formatter -> span -> unit
val to_string : span -> string
