(** Write-ahead log: logical records with before-images, serving
    transaction rollback (undo), recovery replay, and — when attached to
    a file — durability.

    On disk the log is an 8-byte magic header followed by frames of
    [u32 len | u32 crc32(payload) | payload] (little-endian), where the
    payload is an i64 LSN plus one encoded record. Loading stops at the
    first incomplete or CRC-mismatching frame (the torn tail). *)

type record =
  | R_insert of { table : string; rowid : int; row : Row.t }
  | R_delete of { table : string; rowid : int; row : Row.t  (** before-image *) }
  | R_update of { table : string; rowid : int; before : Row.t; after : Row.t }
  | R_begin of int  (** transaction id *)
  | R_commit of int
  | R_abort of int
  | R_create_table of { name : string; schema : Schema.t; pk : int array option }
  | R_drop_table of string
  | R_create_index of { table : string; index : string; cols : int array; ordered : bool }
  | R_drop_index of string
  | R_create_view of { name : string; sql : string  (** re-parsable SELECT text *) }
  | R_drop_view of string
  | R_ext of { tag : string; payload : string }
      (** opaque upper-layer record (e.g. XNF view DDL); replay hands it
          to [on_ext] instead of interpreting it *)

type t

(** [create ()] is an empty in-memory log (no durability). *)
val create : unit -> t

(** [open_file ~path ~lsn] attaches (creating if necessary) the log file
    for appending; the LSN counter continues from [lsn]. Load and
    truncate any torn tail first ({!load} / {!truncate_path}). *)
val open_file : path:string -> lsn:int -> t

(** [close log] flushes, syncs and closes the attached file, if any. *)
val close : t -> unit

(** [append ?sync log r] appends [r] and returns its LSN. Commit, abort
    and DDL records are sync points; [~sync:true] forces one (used for
    auto-committed DML). *)
val append : ?sync:bool -> t -> record -> int

(** [sync log] flushes and fsyncs everything appended so far. A no-op
    while the {!set_fsync} defect hook is engaged. *)
val sync : t -> unit

(** [set_fsync log flag] toggles real syncing — defect injection for the
    crash oracle only. *)
val set_fsync : t -> bool -> unit

(** [records log] lists records appended through this attachment,
    oldest-first. *)
val records : t -> record list

(** [length log] is the LSN high-water mark (continues across
    re-attachments and checkpoint truncation). *)
val length : t -> int

(** [lsn log] is the last assigned LSN (synonym for {!length}). *)
val lsn : t -> int

val file_path : t -> string option

(** [file_size log] is the logical byte size (header + every appended
    frame, flushed or not); 0 when memory-only. *)
val file_size : t -> int

(** [durable_size log] is the bytes known flushed + fsynced. *)
val durable_size : t -> int

(** [truncate_file log] discards every frame of the attached file (after
    a checkpoint absorbed the history); the LSN keeps rising. *)
val truncate_file : t -> unit

(** {2 Frame-level access (crash oracle, property tests)} *)

(** The 8-byte magic that starts every log file. *)
val header : string

(** [frame ~lsn r] is the on-disk bytes of one framed record. *)
val frame : lsn:int -> record -> string

(** [decode s] parses the longest valid prefix of a log image: the
    [(lsn, record)] list and the count of valid bytes. Never raises. *)
val decode : string -> (int * record) list * int

(** [boundaries s] lists the crash-consistent offsets of a log image:
    after the header and after every valid frame. *)
val boundaries : string -> int list

type loaded = {
  ld_records : (int * record) list;  (** (lsn, record), oldest first *)
  ld_valid : int;  (** bytes of the valid prefix *)
  ld_total : int;  (** file size on disk *)
}

(** [load ~path] reads and parses the log file (missing file = empty
    log); stops at the torn tail, never raises. *)
val load : path:string -> loaded

(** [truncate_path ~path n] physically truncates the file to [n] bytes,
    counting removed bytes as [wal.truncated_bytes]. *)
val truncate_path : path:string -> int -> unit

(** {2 Undo and replay} *)

(** [undo_record catalog r] reverses a DML record's effect; DDL records
    are not undone. *)
val undo_record : Catalog.t -> record -> unit

(** [replay_records ?on_ext catalog records] re-applies a committed
    history onto [catalog]: committed and auto-committed DML is redone
    row-id-directed; aborted/unfinished transactions are skipped; DDL is
    always applied (it is not transactional); [R_ext] records go to
    [on_ext] in order. *)
val replay_records :
  ?on_ext:(tag:string -> payload:string -> unit) -> Catalog.t -> record list -> unit

(** [replay log catalog] is [replay_records] over this attachment's
    records. *)
val replay : t -> Catalog.t -> unit
