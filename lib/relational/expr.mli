(** Bound scalar expressions.

    Column references are positional into the operator's input row (for a
    join, the concatenation of the outer and inner rows). Predicates
    evaluate under SQL three-valued logic, encoding TRUE/FALSE/UNKNOWN as
    [Bool]/[Null] values. [*_plan] nodes carry correlated subqueries as
    closures over the outer row. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type arith_op = Add | Sub | Mul | Div | Mod

type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type t =
  | Col of int  (** positional reference into the input row *)
  | Param of int  (** correlation parameter, substituted before evaluation *)
  | Lit of Value.t
  | Cmp of cmp * t * t
  | Arith of arith_op * t * t
  | Neg of t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t
  | Like of t * t  (** pattern with SQL wildcards [%] and [_] *)
  | In_list of t * t list
  | Case of (t * t) list * t option  (** searched CASE *)
  | Fn of string * t list  (** scalar function by name *)
  | Exists_plan of subplan
  | In_plan of t * subplan
  | Scalar_plan of subplan

and subplan = {
  sp_eval : Row.t -> Row.t Seq.t;
      (** run the subquery with the outer row as correlation context *)
  sp_descr : string;  (** for pretty-printing *)
  sp_ty : ty_hint;  (** output type of column 0, for scalar subqueries *)
}

and ty_hint = Hint_int | Hint_float | Hint_string | Hint_bool

(** Conversions between 3VL truth values and their value encoding.
    @raise Invalid_argument on non-boolean values. *)

val truth_of_value : Value.t -> Value.truth
val value_of_truth : Value.truth -> Value.t

(** [like_match ~pattern s] is SQL LIKE matching ([%] any run, [_] any
    character). *)
val like_match : pattern:string -> string -> bool

(** [apply_fn name args] applies a scalar function (abs, lower, upper,
    length, mod, coalesce). @raise Invalid_argument on unknown names. *)
val apply_fn : string -> Value.t list -> Value.t

(** [eval row e] evaluates [e] against [row].
    @raise Invalid_argument on type errors or unsubstituted parameters. *)
val eval : Row.t -> t -> Value.t

(** [eval_pred row e] evaluates [e] as a predicate. *)
val eval_pred : Row.t -> t -> Value.truth

(** [shift k e] adds [k] to every column index. *)
val shift : int -> t -> t

(** [map_cols f e] rewrites every column index through [f]; subplan nodes
    are kept as-is. *)
val map_cols : (int -> int) -> t -> t

(** [cols e] is the sorted set of column indexes read by [e] (excluding
    columns read inside subplans). *)
val cols : t -> int list

(** [has_subplan e] / [has_param e]: these block predicate movement during
    rewrite (a subplan's correlation closure captures its bind layout). *)

val has_subplan : t -> bool
val has_param : t -> bool

(** [subst_params env e] replaces every [Param i] with [Lit env.(i)]. *)
val subst_params : Value.t array -> t -> t

(** [conjuncts e] splits a conjunction; [conjoin es] rebuilds one
    ([Lit TRUE] when empty). *)

val conjuncts : t -> t list
val conjoin : t list -> t

val pp_cmp : Format.formatter -> cmp -> unit

(** [pp] prints the expression with positional columns as [$i]. *)
val pp : Format.formatter -> t -> unit

(** Hash-key view of an {e encoded} row: int-only equality and hashing
    over {!Dict} id arrays (allocation-free). Cells must be normalized
    through [Dict.key_cell] so Int/Float cross-equality holds; NULLs
    ([Dict.null_id]) hash/compare equal — callers implement SQL's
    NULL-never-joins rule by skipping keys for which [has_null] holds.
    Shared by the relational hash operators and the XNF batch edge
    probers. *)
module Row_key : sig
  type t = int array

  val equal : t -> t -> bool
  val hash : t -> int
  val has_null : t -> bool
end

(** Hash tables keyed by {!Row_key}. *)
module Row_key_tbl : Hashtbl.S with type key = Row_key.t

(** The pre-dictionary boxed key view ([Value.equal]/[Value.hash] over
    [Value.t array]): kept for layers that work on decoded values
    (statistics, naive oracles, the boxed-baseline bench). *)
module Row_key_boxed : sig
  type t = Value.t array

  val equal : t -> t -> bool
  val hash : t -> int
  val has_null : t -> bool
end

(** Hash tables keyed by {!Row_key_boxed}. *)
module Row_key_boxed_tbl : Hashtbl.S with type key = Row_key_boxed.t
