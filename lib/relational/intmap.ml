(* Open-addressing int -> int hash map.

   The execution core's hot paths (rowid -> cache position, extent tid ->
   position) key dense non-negative ints and run millions of probes per
   fetch; [Hashtbl] costs one boxed bucket cell per binding plus an
   option per [find_opt]. This map stores bindings inline in one
   interleaved [key; value] int array — lookups and inserts allocate
   nothing (growth aside), and absence is a sentinel, not an option.

   Keys must be >= 0. Capacity is a power of two; multiplicative hashing
   spreads dense keys; linear probing resolves collisions. There is no
   delete — the uses are per-fetch build-up-then-drop maps. *)

type t = {
  mutable slots : int array;  (** interleaved [key; value], key [-1] = empty *)
  mutable mask : int;  (** capacity - 1, capacity a power of two *)
  mutable len : int;
}

let absent = -1

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let make_slots cap = Array.make (2 * cap) (-1)

(** [create ~size] is an empty map presized for about [size] bindings. *)
let create ~size =
  let cap = pow2 (max 8 ((size * 4 / 3) + 1)) 8 in
  { slots = make_slots cap; mask = cap - 1; len = 0 }

let length m = m.len

(* Fibonacci hashing: dense and strided keys spread uniformly *)
let slot_of m k = (k * 0x2545F4914F6CDD1D) lsr 8 land m.mask

(* top-level (not a local closure): [get] runs millions of times per
   fetch and must not allocate *)
let rec get_probe slots mask k i =
  let j = 2 * (i land mask) in
  let kj = Array.unsafe_get slots j in
  if kj = k then Array.unsafe_get slots (j + 1)
  else if kj = -1 then absent
  else get_probe slots mask k (i + 1)

(** [get m k] is the value bound to [k], or [absent] (-1) when unbound. *)
let get m k = get_probe m.slots m.mask k (slot_of m k)

let rec insert slots mask k v i =
  let j = 2 * (i land mask) in
  let kj = Array.unsafe_get slots j in
  if kj = -1 || kj = k then begin
    let fresh = kj = -1 in
    Array.unsafe_set slots j k;
    Array.unsafe_set slots (j + 1) v;
    fresh
  end
  else insert slots mask k v (i + 1)

let grow m =
  let cap = 4 * (m.mask + 1) in
  let slots = make_slots cap in
  let mask = cap - 1 in
  for i = 0 to m.mask do
    let k = m.slots.(2 * i) in
    if k >= 0 then
      ignore
        (insert slots mask k m.slots.((2 * i) + 1) ((k * 0x2545F4914F6CDD1D) lsr 8 land mask))
  done;
  m.slots <- slots;
  m.mask <- mask

(** [set m k v] binds [k] to [v], replacing any previous binding. *)
let set m k v =
  if k < 0 then invalid_arg "Intmap.set: negative key";
  if 4 * (m.len + 1) > 3 * (m.mask + 1) then grow m;
  if insert m.slots m.mask k v (slot_of m k) then m.len <- m.len + 1

(** [iter f m] applies [f key value] to every binding (unspecified order). *)
let iter f m =
  for i = 0 to m.mask do
    let k = m.slots.(2 * i) in
    if k >= 0 then f k m.slots.((2 * i) + 1)
  done
