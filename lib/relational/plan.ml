(* Physical plans and their execution.

   Plans are trees of iterator-style operators; [run] compiles a plan to a
   lazy row sequence. Blocking operators (hash build, sort, group) force
   their input on first demand. All expressions are positional over the
   operator's input row; join predicates see the concatenation of the left
   and right rows.

   NULL semantics for equi-joins follow SQL: a NULL key never matches. *)

type join_kind = Inner | Left | Semi | Anti

(** (function, argument, distinct): [distinct] dedupes argument values per
    group before aggregating, e.g. COUNT(DISTINCT x). *)
type agg_spec = Expr.agg_fn * Expr.t option * bool

type t =
  | Seq_scan of Table.t
  | Index_scan of { table : Table.t; index : Index.t; key : Expr.t list }
      (** point lookup with a key built from literals/parameters *)
  | Values of Row.t list
  | Filter of t * Expr.t
  | Project of t * Expr.t array
  | Nl_join of { kind : join_kind; left : t; right : t; pred : Expr.t option; right_width : int }
  | Index_nl_join of {
      kind : join_kind;
      left : t;
      table : Table.t;
      index : Index.t;
      key_of_left : Expr.t list;  (** evaluated against each left row *)
      extra : Expr.t option;  (** residual predicate over the concat row *)
      right_width : int;
    }
  | Hash_join of {
      kind : join_kind;
      left : t;
      right : t;
      left_keys : Expr.t list;
      right_keys : Expr.t list;
      extra : Expr.t option;
      right_width : int;
    }
  | Group of { input : t; keys : Expr.t list; aggs : agg_spec list }
  | Sort of { input : t; keys : (Expr.t * Sql_ast.order_dir) list }
  | Distinct of t
  | Limit of t * int
  | Union_all of t * t

(* ---- parameter substitution (correlated subplans) ---- *)

(** [subst_params env p] replaces every [Expr.Param i] with the value
    [env.(i)] throughout the plan. *)
let rec subst_params env p =
  let s = Expr.subst_params env in
  match p with
  | Seq_scan _ | Values _ -> p
  | Index_scan r -> Index_scan { r with key = List.map s r.key }
  | Filter (input, pred) -> Filter (subst_params env input, s pred)
  | Project (input, exprs) -> Project (subst_params env input, Array.map s exprs)
  | Nl_join r ->
    Nl_join
      { r with left = subst_params env r.left; right = subst_params env r.right;
        pred = Option.map s r.pred }
  | Index_nl_join r ->
    Index_nl_join
      { r with left = subst_params env r.left; key_of_left = List.map s r.key_of_left;
        extra = Option.map s r.extra }
  | Hash_join r ->
    Hash_join
      { r with left = subst_params env r.left; right = subst_params env r.right;
        left_keys = List.map s r.left_keys; right_keys = List.map s r.right_keys;
        extra = Option.map s r.extra }
  | Group r ->
    Group { input = subst_params env r.input; keys = List.map s r.keys;
            aggs = List.map (fun (f, a, d) -> (f, Option.map s a, d)) r.aggs }
  | Sort r ->
    Sort { input = subst_params env r.input; keys = List.map (fun (e, d) -> (s e, d)) r.keys }
  | Distinct input -> Distinct (subst_params env input)
  | Limit (input, n) -> Limit (subst_params env input, n)
  | Union_all (a, b) -> Union_all (subst_params env a, subst_params env b)

(** [has_params p] tests whether any expression still contains parameters
    (used to memoize uncorrelated subplans). *)
let rec has_params p =
  let h = Expr.has_param in
  let ho = function Some e -> h e | None -> false in
  match p with
  | Seq_scan _ | Values _ -> false
  | Index_scan r -> List.exists h r.key
  | Filter (input, pred) -> h pred || has_params input
  | Project (input, exprs) -> Array.exists h exprs || has_params input
  | Nl_join r -> ho r.pred || has_params r.left || has_params r.right
  | Index_nl_join r -> List.exists h r.key_of_left || ho r.extra || has_params r.left
  | Hash_join r ->
    List.exists h r.left_keys || List.exists h r.right_keys || ho r.extra || has_params r.left
    || has_params r.right
  | Group r ->
    List.exists h r.keys
    || List.exists (fun (_, a, _) -> ho a) r.aggs
    || has_params r.input
  | Sort r -> List.exists (fun (e, _) -> h e) r.keys || has_params r.input
  | Distinct input -> has_params input
  | Limit (input, _) -> has_params input
  | Union_all (a, b) -> has_params a || has_params b

(* ---- aggregation states ---- *)

type agg_state = {
  mutable count : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable saw_float : bool;
  mutable minmax : Value.t;  (** Null until the first non-null input *)
  seen : (int, unit) Hashtbl.t option;
      (** DISTINCT deduplication, keyed by exact dictionary id *)
}

let new_agg_state (_, _, distinct) =
  { count = 0; sum_i = 0; sum_f = 0.; saw_float = false; minmax = Value.Null;
    seen = (if distinct then Some (Hashtbl.create 16) else None) }

let agg_feed (fn, arg, _) st (row : Row.t) =
  match fn, arg with
  | Expr.Count_star, _ -> st.count <- st.count + 1
  | _, None -> invalid_arg "Plan: aggregate without argument"
  | fn, Some e -> begin
    let v = Expr.eval row e in
    let fresh =
      match st.seen with
      | None -> true
      | Some tbl ->
        let key = Dict.encode v in
        if Hashtbl.mem tbl key then false
        else begin
          Hashtbl.add tbl key ();
          true
        end
    in
    if fresh && not (Value.is_null v) then begin
      st.count <- st.count + 1;
      match fn with
      | Expr.Count -> ()
      | Expr.Sum | Expr.Avg -> begin
        match v with
        | Value.Int i ->
          st.sum_i <- st.sum_i + i;
          st.sum_f <- st.sum_f +. float_of_int i
        | Value.Float f ->
          st.saw_float <- true;
          st.sum_f <- st.sum_f +. f
        | _ -> invalid_arg "Plan: SUM/AVG over non-numeric value"
      end
      | Expr.Min ->
        if Value.is_null st.minmax || Value.compare_total v st.minmax < 0 then st.minmax <- v
      | Expr.Max ->
        if Value.is_null st.minmax || Value.compare_total v st.minmax > 0 then st.minmax <- v
      | Expr.Count_star -> assert false
    end
  end

let agg_result ((fn, _, _) : agg_spec) st : Value.t =
  match fn with
  | Expr.Count_star | Expr.Count -> Value.Int st.count
  | Expr.Sum ->
    if st.count = 0 then Value.Null
    else if st.saw_float then Value.Float st.sum_f
    else Value.Int st.sum_i
  | Expr.Avg -> if st.count = 0 then Value.Null else Value.Float (st.sum_f /. float_of_int st.count)
  | Expr.Min | Expr.Max -> st.minmax

(* ---- execution ---- *)

let null_row width : Row.t = Array.make width Value.Null

(* join/group keys are dictionary-encoded and key-normalized: comparison
   and hashing in the hash operators touch only ints, with Int/Float
   cross-equality and NULL handling folded into the ids by
   [Dict.key_cell]. Key equality/hashing is shared with the XNF batch
   edge probers ([Expr.Row_key]), so both layers agree on semantics. *)
let key_values row keys : Expr.Row_key.t =
  let ks = Array.of_list keys in
  Array.map (fun e -> Dict.key_cell (Dict.encode (Expr.eval row e))) ks

let key_has_null = Expr.Row_key.has_null

module RowKeyTbl = Expr.Row_key_tbl

(** [run p] compiles [p] to a lazy row sequence. The plan must be free of
    parameters (see {!subst_params}). [exec ~recur] is the one-level
    compiler — [run] ties the knot directly; {!run_analyzed} ties it
    through per-operator row/time accounting. *)
let rec run (p : t) : Row.t Seq.t = exec ~recur:run p

and exec ~(recur : t -> Row.t Seq.t) (p : t) : Row.t Seq.t =
  let run = recur in
  match p with
  | Seq_scan table -> Seq.map snd (Table.to_seq table)
  | Index_scan { table; index; key } ->
    fun () ->
      let kv = Array.of_list (List.map (fun e -> Expr.eval [||] e) key) in
      List.to_seq (List.map snd (Table.lookup_index table index kv)) ()
  | Values rows -> List.to_seq rows
  | Filter (input, pred) ->
    Seq.filter (fun row -> Value.is_true (Expr.eval_pred row pred)) (run input)
  | Project (input, exprs) ->
    Seq.map (fun row -> Array.map (fun e -> Expr.eval row e) exprs) (run input)
  | Nl_join { kind; left; right; pred; right_width } ->
    let right_rows = lazy (List.of_seq (run right)) in
    let matches l =
      List.filter
        (fun r ->
          let joined = Row.concat l r in
          match pred with None -> true | Some e -> Value.is_true (Expr.eval_pred joined e))
        (Lazy.force right_rows)
    in
    join_emit kind right_width matches (run left)
  | Index_nl_join { kind; left; table; index; key_of_left; extra; right_width } ->
    let matches l =
      let kv = Array.of_list (List.map (fun e -> Expr.eval l e) key_of_left) in
      if Array.exists Value.is_null kv then []
      else
        List.filter_map
          (fun (_, r) ->
            let joined = Row.concat l r in
            match extra with
            | None -> Some r
            | Some e -> if Value.is_true (Expr.eval_pred joined e) then Some r else None)
          (Table.lookup_index table index kv)
    in
    join_emit kind right_width matches (run left)
  | Hash_join { kind; left; right; left_keys; right_keys; extra; right_width } ->
    let build =
      lazy
        (let tbl = RowKeyTbl.create 256 in
         Seq.iter
           (fun r ->
             let kv = key_values r right_keys in
             if not (key_has_null kv) then
               RowKeyTbl.replace tbl kv (r :: (Option.value ~default:[] (RowKeyTbl.find_opt tbl kv))))
           (run right);
         tbl)
    in
    let matches l =
      let kv = key_values l left_keys in
      if key_has_null kv then []
      else
        let candidates = Option.value ~default:[] (RowKeyTbl.find_opt (Lazy.force build) kv) in
        List.filter
          (fun r ->
            match extra with
            | None -> true
            | Some e -> Value.is_true (Expr.eval_pred (Row.concat l r) e))
          candidates
    in
    join_emit kind right_width matches (run left)
  | Group { input; keys; aggs } ->
    fun () ->
      let groups = RowKeyTbl.create 64 in
      let order = ref [] in
      Seq.iter
        (fun row ->
          (* group identity is the normalized ids; the first-seen decoded
             key row is kept as the group's representative output (so
             e.g. a group reached first through Float 1. renders 1.0) *)
          let kv_vals = Array.of_list (List.map (fun e -> Expr.eval row e) keys) in
          let kv = Array.map (fun v -> Dict.key_cell (Dict.encode v)) kv_vals in
          let states =
            match RowKeyTbl.find_opt groups kv with
            | Some st -> st
            | None ->
              let st = List.map new_agg_state aggs in
              RowKeyTbl.add groups kv st;
              order := (kv, kv_vals) :: !order;
              st
          in
          List.iter2 (fun spec st -> agg_feed spec st row) aggs states)
        (run input);
      let emit (kv, kv_vals) =
        let states = RowKeyTbl.find groups kv in
        Array.append kv_vals (Array.of_list (List.map2 agg_result aggs states))
      in
      let result =
        if RowKeyTbl.length groups = 0 && keys = [] then
          (* global aggregate over an empty input: one default row *)
          [ Array.of_list (List.map (fun spec -> agg_result spec (new_agg_state spec)) aggs) ]
        else List.rev_map emit !order
      in
      List.to_seq result ()
  | Sort { input; keys } ->
    fun () ->
      let rows = List.of_seq (run input) in
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (e, dir) :: rest ->
            let c = Value.compare_total (Expr.eval a e) (Expr.eval b e) in
            let c = match dir with Sql_ast.Asc -> c | Sql_ast.Desc -> -c in
            if c <> 0 then c else go rest
        in
        go keys
      in
      List.to_seq (List.stable_sort cmp rows) ()
  | Distinct input ->
    fun () ->
      (* exact (unnormalized) ids: structural distinctness, so Int 1 and
         Float 1.0 stay distinct rows, matching value-level behavior *)
      let seen = RowKeyTbl.create 256 in
      Seq.filter
        (fun row ->
          let key = Array.map Dict.encode row in
          if RowKeyTbl.mem seen key then false
          else begin
            RowKeyTbl.add seen key ();
            true
          end)
        (run input)
        ()
  | Limit (input, n) -> Seq.take n (run input)
  | Union_all (a, b) -> Seq.append (run a) (run b)

and join_emit kind right_width matches left_seq : Row.t Seq.t =
  match kind with
  | Inner -> Seq.concat_map (fun l -> List.to_seq (List.map (fun r -> Row.concat l r) (matches l))) left_seq
  | Left ->
    Seq.concat_map
      (fun l ->
        match matches l with
        | [] -> Seq.return (Row.concat l (null_row right_width))
        | rs -> List.to_seq (List.map (fun r -> Row.concat l r) rs))
      left_seq
  | Semi -> Seq.filter (fun l -> matches l <> []) left_seq
  | Anti -> Seq.filter (fun l -> matches l = []) left_seq

(** [run_with_params env p] substitutes [env] for the parameters and runs. *)
let run_with_params env p = run (subst_params env p)

let kind_name = function Inner -> "inner" | Left -> "left" | Semi -> "semi" | Anti -> "anti"

(** [children p] lists the direct operator inputs of [p] (in the order
    {!exec} recurses into them). *)
let children = function
  | Seq_scan _ | Index_scan _ | Values _ -> []
  | Filter (input, _) | Project (input, _) | Distinct input | Limit (input, _) -> [ input ]
  | Nl_join { left; right; _ } | Hash_join { left; right; _ } | Union_all (left, right) ->
    [ left; right ]
  | Index_nl_join { left; _ } -> [ left ]
  | Group { input; _ } | Sort { input; _ } -> [ input ]

(** [label p] is the one-line operator header (no children). *)
let label = function
  | Seq_scan t -> Fmt.str "SeqScan %s" (Table.name t)
  | Index_scan { table; index; key } ->
    Fmt.str "IndexScan %s.%s key=[%a]" (Table.name table) (Index.name index)
      (Fmt.list ~sep:(Fmt.any ", ") Expr.pp) key
  | Values rows -> Fmt.str "Values (%d rows)" (List.length rows)
  | Filter (_, pred) -> Fmt.str "Filter %a" Expr.pp pred
  | Project (_, exprs) -> Fmt.str "Project [%a]" (Fmt.array ~sep:(Fmt.any ", ") Expr.pp) exprs
  | Nl_join { kind; pred; _ } ->
    Fmt.str "NLJoin(%s)%a" (kind_name kind)
      (Fmt.option (fun ppf e -> Fmt.pf ppf " on %a" Expr.pp e))
      pred
  | Index_nl_join { kind; table; index; key_of_left; extra; _ } ->
    Fmt.str "IndexNLJoin(%s) %s.%s key=[%a]%a" (kind_name kind) (Table.name table)
      (Index.name index)
      (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
      key_of_left
      (Fmt.option (fun ppf e -> Fmt.pf ppf " extra %a" Expr.pp e))
      extra
  | Hash_join { kind; left_keys; right_keys; _ } ->
    Fmt.str "HashJoin(%s) [%a]=[%a]" (kind_name kind)
      (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
      left_keys
      (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
      right_keys
  | Group { keys; aggs; _ } ->
    Fmt.str "Group keys=[%a] (%d aggs)" (Fmt.list ~sep:(Fmt.any ", ") Expr.pp) keys
      (List.length aggs)
  | Sort _ -> "Sort"
  | Distinct _ -> "Distinct"
  | Limit (_, n) -> Fmt.str "Limit %d" n
  | Union_all _ -> "UnionAll"

(** [pp] prints an indented physical plan. *)
let pp ppf p =
  let rec go indent p =
    Fmt.pf ppf "%s%s@." (String.make indent ' ') (label p);
    List.iter (go (indent + 2)) (children p)
  in
  go 0 p

(** [to_string p] renders the plan for EXPLAIN-style output. *)
let to_string p = Fmt.str "%a" pp p

(* ---- analyzed execution (EXPLAIN ANALYZE) ----

   [run_analyzed] mirrors [run] but threads every operator's output
   through a counting/timing shim, so after the sequence is drained each
   operator knows how many rows it emitted and how long pulls through it
   took (inclusive of its inputs, like EXPLAIN ANALYZE "actual time").
   The shim costs one clock pair per pull, so this path is for
   diagnostics; the plain [run] stays untouched. *)

type op_stats = { mutable rows_out : int; mutable elapsed_ns : float }

type analyzed = { a_plan : t; a_stats : op_stats; a_children : analyzed list }

let rec annotate p =
  { a_plan = p; a_stats = { rows_out = 0; elapsed_ns = 0. };
    a_children = List.map annotate (children p) }

let counted st (s : Row.t Seq.t) : Row.t Seq.t =
  let rec go s () =
    let t0 = Obs.Metrics.now_ns () in
    let node = s () in
    st.elapsed_ns <- st.elapsed_ns +. (Obs.Metrics.now_ns () -. t0);
    match node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (row, rest) ->
      st.rows_out <- st.rows_out + 1;
      Seq.Cons (row, go rest)
  in
  go s

let rec analyzed_seq a : Row.t Seq.t =
  let recur q =
    (* children are matched by physical identity; a subplan synthesized
       after annotation (none today) would fall back to the plain runner *)
    let rec find = function
      | [] -> run q
      | c :: rest -> if c.a_plan == q then analyzed_seq c else find rest
    in
    find a.a_children
  in
  counted a.a_stats (exec ~recur a.a_plan)

(** [run_analyzed p] is [run p] plus per-operator accounting: returns the
    row sequence and the annotated tree; stats are final once the sequence
    is drained. *)
let run_analyzed p =
  let a = annotate p in
  (analyzed_seq a, a)

(** [pp_analyzed] prints the plan with per-operator actuals:
    [(rows=N time=T ms)], time inclusive of the operator's inputs. *)
let pp_analyzed ppf a =
  let rec go indent a =
    Fmt.pf ppf "%s%s  (rows=%d time=%.3f ms)@." (String.make indent ' ') (label a.a_plan)
      a.a_stats.rows_out
      (a.a_stats.elapsed_ns /. 1e6);
    List.iter (go (indent + 2)) a.a_children
  in
  go 0 a

let analyzed_to_string a = Fmt.str "%a" pp_analyzed a
