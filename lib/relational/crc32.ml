(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.

   Used to frame WAL records and to seal checkpoint snapshots: a torn or
   bit-flipped tail must be detectable without trusting anything beyond
   the frame header itself. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

(** [update crc s pos len] folds [len] bytes of [s] starting at [pos] into
    a running CRC (start from [0]). *)
let update crc s pos len =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(** [string s] is the CRC-32 of the whole string. *)
let string s = update 0 s 0 (String.length s)
