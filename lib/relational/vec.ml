(* Growable arrays.

   OCaml 5.1 does not ship [Dynarray]; this small module provides the subset
   we need: amortized O(1) push, O(1) random access, in-place iteration. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

(** [create ?capacity ~dummy ()] is an empty vector. [dummy] fills unused
    slots; it is never observable through the public API. [capacity]
    presizes the backing array (hot paths avoid growth-doubling churn). *)
let create ?(capacity = 8) ~dummy () = { data = Array.make (max 8 capacity) dummy; len = 0; dummy }

(** [length v] is the number of elements pushed and not truncated. *)
let length v = v.len

let ensure v n =
  if n > Array.length v.data then begin
    let cap = max n (2 * Array.length v.data) in
    let data = Array.make cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

(** [push v x] appends [x] at index [length v]. *)
let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(** [get v i] is the element at index [i]. @raise Invalid_argument when out
    of bounds. *)
let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

(** [set v i x] replaces the element at index [i]. *)
let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

(** [iter f v] applies [f] to every element in index order. *)
let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

(** [iteri f v] is [iter] with the index passed first. *)
let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

(** [fold f acc v] folds over elements in index order. *)
let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

(** [to_list v] is the elements in index order. *)
let to_list v = List.init v.len (fun i -> v.data.(i))

(** [of_list ~dummy xs] is a vector holding [xs] in order. *)
let of_list ~dummy xs =
  let v = create ~dummy () in
  List.iter (push v) xs;
  v

(** [clear v] removes all elements (capacity is kept). *)
let clear v = v.len <- 0

(** [truncate v n] keeps only the first [n] elements. *)
let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  v.len <- n

(** [exists p v] tests whether some element satisfies [p]. *)
let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

(** [to_seq v] enumerates elements lazily; the vector must not shrink while
    the sequence is being consumed. *)
let to_seq v =
  let rec go i () = if i >= v.len then Seq.Nil else Seq.Cons (v.data.(i), go (i + 1)) in
  go 0
