(** Shared edge-cost estimation: the one cost model both the planner
    ([Xnf.Translate.compile_def]'s per-edge access-path pick) and the
    static plan advisor ([Check.Plan_advisor]) consult, so advice and
    decision cannot disagree. Pure read-only estimation over the catalog
    and ANALYZE snapshots — no queries run, nothing is written. *)

(** Edge access paths, in static selection-priority order. *)
type strategy = S_indexed | S_hash | S_generic

(** Display names used by [EXPLAIN ANALYZE] and [\plans]: ["indexed"],
    ["hash-batch"], ["generic"]. *)
val strategy_name : strategy -> string

(** The structural join shape of one relationship as compiled — names
    only, no closures or data (re-exported by [Xnf.Translate]). *)
type edge_shape = {
  es_name : string;
  es_parent : string;  (** parent node name *)
  es_child : string;  (** child node name *)
  es_strategy : strategy;  (** access path selected for this plan *)
  es_child_table : string option;  (** child's base table when the child is simple *)
  es_parent_cols : string list;  (** parent-side equality join columns (node output names) *)
  es_child_cols : string list;  (** child-side equality join columns (base-table names) *)
  es_using : (string * string list) option;
      (** link table and the link-side columns the parent binds, for USING edges *)
  es_indexed : bool;  (** an index chain serves the probe as compiled *)
  es_residual : bool;  (** non-key conjuncts remain after key extraction *)
}

(** The derivation shape of one node (re-exported by [Xnf.Translate]). *)
type node_shape = {
  ns_name : string;
  ns_table : string option;
  ns_pred : Expr.t option;
  ns_query : Sql_ast.select;
}

(** Statistics health of one base table: the ANALYZE snapshot matches
    the live [Table.version] ([`Fresh]), lags it ([`Stale (snap, live)]),
    does not exist ([`Missing]), or the name is no base table at all
    ([`Unknown]). *)
type health = [ `Fresh | `Stale of int * int | `Missing | `Unknown ]

(** Per-analysis estimation context; memoizes health lookups so
    staleness verdicts and estimates agree within one pass. *)
type ctx

val mk_ctx : Db.t -> ctx
val health : ctx -> string -> health

(** [rows_est ctx table] is the planner-believed row count: ANALYZE
    snapshot first (even stale), live cardinality otherwise. *)
val rows_est : ctx -> string -> float

(** [ndv ctx table col] is the planner-believed NDV of one column,
    >= 1. *)
val ndv : ctx -> string -> string -> float

(** [key_ndv ctx table cols] estimates distinct combinations of [cols],
    bounded by the table's row count. *)
val key_ndv : ctx -> string -> string list -> float

(** [derivation_est ctx ns] is the estimated extent of one node's
    derivation. *)
val derivation_est : ctx -> node_shape -> float

(** [fanout_est ctx es ~child_est] estimates children per probing parent
    row. *)
val fanout_est : ctx -> edge_shape -> child_est:float -> float

(** Cost inputs of one edge, as estimated by {!annotate}. *)
type edge_est = {
  ee_edge : string;
  ee_frontier : float;  (** est. parent rows probing this edge *)
  ee_child : float;  (** est. child derivation extent *)
  ee_fanout : float;  (** est. children per probing parent row *)
  ee_conns : float;  (** est. connections produced ([frontier * fanout]) *)
  ee_build : float;  (** est. hash build input (child + link extents) *)
  ee_cand_fan : float;  (** est. candidate rows scanned per index probe *)
}

(** [candidates es] are the strategies the compiled shape could support,
    in static selection-priority order. *)
val candidates : edge_shape -> strategy list

(** [cost_of ee ~frontier ~conns s] is the estimated row cost of serving
    the edge with [s]: indexed probes pay the frontier plus the larger
    of the connections produced and the candidate rows scanned; hash
    pays its build plus frontier plus connections; generic joins the
    frontier against the whole child extent. [frontier]/[conns] are
    parameters so the adaptive runtime check can re-cost with observed
    counts. *)
val cost_of : edge_est -> frontier:float -> conns:float -> strategy -> float

(** [best ee ~candidates ~frontier ~conns] is the cheapest candidate and
    its cost; ties keep the earlier candidate (static priority order
    when [candidates] comes from {!candidates}). *)
val best :
  edge_est -> candidates:strategy list -> frontier:float -> conns:float -> strategy * float

(** [annotate ctx ~nodes ~shapes] estimates every node's reached extent
    and every edge's cost inputs, propagating reach along a topological
    order of the shape graph (derivation-estimate fallback on recursive
    schemas). *)
val annotate :
  ctx -> nodes:node_shape list -> shapes:edge_shape list -> (string * float) list * edge_est list
