(* Hand-written lexer shared by the SQL and XNF parsers.

   Keywords cover both plain SQL and the XNF extensions (OUT OF, TAKE,
   RELATE, SUCH THAT, ...) so that the XNF parser (lib/core) can reuse the
   same token stream. The token cursor with one-token lookahead lives here
   too, together with the error type both parsers raise.

   Every token carries a Srcloc.span so parse errors and lib/check
   diagnostics can point at the offending line/column. *)

type token =
  | IDENT of string  (** lowercased identifier *)
  | KW of string  (** uppercased keyword *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | SYM of string  (** punctuation / operator, e.g. "(", ",", "<=", "->" *)
  | EOF

exception Parse_error of string

let keywords =
  [ (* SQL *)
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "ASC"; "DESC";
    "LIMIT"; "AND"; "OR"; "NOT"; "NULL"; "IS"; "LIKE"; "IN"; "EXISTS"; "BETWEEN"; "CASE";
    "WHEN"; "THEN"; "ELSE"; "END"; "AS"; "JOIN"; "LEFT"; "INNER"; "ON"; "TRUE"; "FALSE";
    "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE"; "CREATE"; "TABLE"; "INDEX"; "VIEW";
    "DROP"; "PRIMARY"; "KEY"; "INTEGER"; "INT"; "FLOAT"; "VARCHAR"; "BOOLEAN"; "USING";
    "ORDERED"; "UNION"; "ALL"; "BEGIN"; "COMMIT"; "ROLLBACK"; "EXPLAIN"; "PREPARE"; "EXECUTE";
    "ANALYZE";
    (* XNF extensions *)
    "OUT"; "OF"; "TAKE"; "RELATE"; "SUCH"; "THAT"; "WITH"; "ATTRIBUTES"; "CONNECT";
    "DISCONNECT" ]

let keyword_set : (string, unit) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

(* Offsets of the first character of each line, for offset -> line/column
   translation. *)
let line_starts s =
  let n = String.length s in
  let starts = ref [ 0 ] in
  for i = 0 to n - 1 do
    if s.[i] = '\n' then starts := (i + 1) :: !starts
  done;
  Array.of_list (List.rev !starts)

(* (line, col) of an offset, both 1-based: binary-search the largest line
   start <= off. *)
let loc_of starts off =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= off then lo := mid else hi := mid - 1
  done;
  (!lo + 1, off - starts.(!lo) + 1)

(** [tokenize_spanned s] lexes [s] into tokens terminated by [EOF], with a
    source span per token (same length as the token array).
    @raise Parse_error on malformed input. *)
let tokenize_spanned (s : string) : token array * Srcloc.span array =
  let n = String.length s in
  let starts = line_starts s in
  let span_of ~start ~stop =
    let line, col = loc_of starts start in
    let end_line, end_col = loc_of starts stop in
    Srcloc.make ~line ~col ~end_line ~end_col
  in
  let fail_at off msg =
    let line, col = loc_of starts off in
    raise (Parse_error (Printf.sprintf "%s at line %d, column %d" msg line col))
  in
  let toks = ref [] in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-' in
  (* '-' inside identifiers supports the paper's view names like ALL-DEPS;
     a '-' is part of an identifier only when letters surround it. *)
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let tok_start = !i in
    (* emit after [i] has been advanced past the token *)
    let emit t = toks := (t, span_of ~start:tok_start ~stop:!i) :: !toks in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while
        !i < n
        && is_ident_char s.[!i]
        && not (s.[!i] = '-' && not (!i + 1 < n && is_ident_start s.[!i + 1]))
      do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      let upper = String.uppercase_ascii word in
      if Hashtbl.mem keyword_set upper then emit (KW upper)
      else emit (IDENT (String.lowercase_ascii word))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      if !i < n && s.[!i] = '.' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9' then begin
        incr i;
        while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
          incr i
        done;
        emit (FLOAT (float_of_string (String.sub s start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub s start (!i - start))))
    end
    else if c = '\'' then begin
      (* SQL string literal with '' escaping *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then fail_at tok_start "unterminated string literal";
        if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" | "->" ->
        i := !i + 2;
        emit (SYM (if two = "!=" then "<>" else two))
      | _ -> begin
        match c with
        | '(' | ')' | ',' | '.' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | '%' | ';' | '?' ->
          incr i;
          emit (SYM (String.make 1 c))
        | _ -> fail_at !i (Printf.sprintf "unexpected character %C" c)
      end
    end
  done;
  let eof_line, eof_col = loc_of starts n in
  toks := (EOF, Srcloc.point ~line:eof_line ~col:eof_col) :: !toks;
  let pairs = Array.of_list (List.rev !toks) in
  (Array.map fst pairs, Array.map snd pairs)

(** [tokenize s] lexes [s] into tokens terminated by [EOF].
    @raise Parse_error on malformed input. *)
let tokenize (s : string) : token array = fst (tokenize_spanned s)

(** [fingerprint s] is the statement-statistics key for [s]: the token
    stream re-rendered with canonical case and spacing and every literal
    (numbers, strings, and explicit [?] markers) replaced by [?], so
    executions differing only in constants aggregate under one entry.
    Unlexable text falls back to its trimmed form (the parser will reject
    it anyway; the error still gets an aggregate). *)
let fingerprint (s : string) : string =
  match tokenize s with
  | exception Parse_error _ -> String.trim s
  | toks ->
    let b = Buffer.create (String.length s) in
    Array.iter
      (fun t ->
        let piece =
          match t with
          | IDENT n -> n
          | KW k -> k
          | INT _ | FLOAT _ | STRING _ -> "?"
          | SYM sym -> sym
          | EOF -> ""
        in
        if piece <> "" then begin
          if Buffer.length b > 0 then Buffer.add_char b ' ';
          Buffer.add_string b piece
        end)
      toks;
    Buffer.contents b

(** Token cursors: mutable position over a token array, shared by the SQL
    and XNF recursive-descent parsers. [spans] is parallel to [toks].
    [params] counts the [?] parameter markers seen so far, so the two
    parsers assign slots in lexical order across the whole statement. *)
type cursor = {
  toks : token array;
  spans : Srcloc.span array;
  mutable pos : int;
  mutable params : int;
}

(** [cursor_of_string s] tokenizes [s] and positions a cursor at the
    start. *)
let cursor_of_string s =
  let toks, spans = tokenize_spanned s in
  { toks; spans; pos = 0; params = 0 }

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | SYM s -> Printf.sprintf "%S" s
  | EOF -> "end of input"

(** [peek c] is the current token without consuming it. *)
let peek c = c.toks.(c.pos)

(** [peek2 c] is the token after the current one. *)
let peek2 c = if c.pos + 1 < Array.length c.toks then c.toks.(c.pos + 1) else EOF

(** [span c] is the source span of the current token. *)
let span c = c.spans.(c.pos)

(** [advance c] consumes and returns the current token. *)
let advance c =
  let t = c.toks.(c.pos) in
  if t <> EOF then c.pos <- c.pos + 1;
  t

(** [error c msg] raises a parse error carrying the current token's
    line/column. *)
let error c msg =
  let sp = span c in
  raise
    (Parse_error
       (Printf.sprintf "%s at line %d, column %d (found %s)" msg sp.Srcloc.sp_line
          sp.Srcloc.sp_col (token_to_string (peek c))))

(** [accept_kw c kw] consumes the keyword if present; returns whether it
    did. *)
let accept_kw c kw =
  match peek c with
  | KW k when String.equal k kw ->
    ignore (advance c);
    true
  | _ -> false

(** [expect_kw c kw] consumes the keyword or fails. *)
let expect_kw c kw = if not (accept_kw c kw) then error c (Printf.sprintf "expected %s" kw)

(** [accept_sym c sym] consumes the symbol if present; returns whether it
    did. *)
let accept_sym c sym =
  match peek c with
  | SYM s when String.equal s sym ->
    ignore (advance c);
    true
  | _ -> false

(** [expect_sym c sym] consumes the symbol or fails. *)
let expect_sym c sym = if not (accept_sym c sym) then error c (Printf.sprintf "expected %S" sym)

(** [expect_ident c] consumes and returns an identifier or fails. *)
let expect_ident c =
  match peek c with
  | IDENT name ->
    ignore (advance c);
    name
  | _ -> error c "expected identifier"

(** [at_kw c kw] tests the current token without consuming. *)
let at_kw c kw = match peek c with KW k -> String.equal k kw | _ -> false

(** [at_sym c sym] tests the current token without consuming. *)
let at_sym c sym = match peek c with SYM s -> String.equal s sym | _ -> false
