(* Heap tables: mutable row storage with stable row ids, tombstoned
   deletion, automatic index maintenance and basic statistics.

   The optional [touch] hook lets the paged-storage simulation observe every
   row access made by the executor (see {!Buffer_pool} and experiment E4). *)

type t = {
  tbl_name : string;
  schema : Schema.t;
  rows : Row.t option Vec.t;  (** [None] marks a deleted slot (tombstone) *)
  mutable live : int;
  mutable indexes : Index.t list;
  mutable version : int;  (** bumped by every DML, for cache invalidation *)
  mutable touch : (int -> unit) option;  (** row-access observer (rowid) *)
  mutable primary_key : int array option;  (** column positions of the PK *)
}

exception Schema_violation of string

(** [create ~name schema] is an empty table. *)
let create ~name schema =
  { tbl_name = name; schema; rows = Vec.create ~dummy:None (); live = 0; indexes = [];
    version = 0; touch = None; primary_key = None }

let name t = t.tbl_name
let schema t = t.schema

(** [cardinality t] is the number of live rows. *)
let cardinality t = t.live

(** [version t] changes whenever the table content changes. *)
let version t = t.version

(** [set_touch t hook] installs (or clears) the row-access observer. *)
let set_touch t hook = t.touch <- hook

let notify_touch t rowid = match t.touch with None -> () | Some f -> f rowid

let check_row t (row : Row.t) =
  if Array.length row <> Schema.arity t.schema then
    raise (Schema_violation
             (Printf.sprintf "%s: arity %d, got %d" t.tbl_name (Schema.arity t.schema)
                (Array.length row)));
  Array.iteri
    (fun i v ->
      let c = Schema.col t.schema i in
      if not (Schema.value_matches c.Schema.col_ty v) then
        raise (Schema_violation
                 (Printf.sprintf "%s.%s: expected %s, got %s" t.tbl_name c.Schema.col_name
                    (Schema.ty_to_string c.Schema.col_ty) (Value.to_string v)));
      if Value.is_null v && not c.Schema.col_nullable then
        raise (Schema_violation (Printf.sprintf "%s.%s: NOT NULL violated" t.tbl_name c.Schema.col_name)))
    row

(** [insert t row] appends [row], returning its row id.
    @raise Schema_violation on arity/type/nullability errors. *)
let insert t row =
  check_row t row;
  let rowid = Vec.length t.rows in
  Vec.push t.rows (Some row);
  t.live <- t.live + 1;
  t.version <- t.version + 1;
  List.iter (fun idx -> Index.insert idx row rowid) t.indexes;
  rowid

(** [install t rowid row] materializes [row] at exactly [rowid] —
    recovery replay, where row ids must be preserved. The vector grows
    with tombstones as needed; a live occupant is replaced (its index
    entries removed first).
    @raise Schema_violation on invalid [row]. *)
let install t rowid row =
  check_row t row;
  if rowid < 0 then invalid_arg "Table.install: negative rowid";
  while Vec.length t.rows <= rowid do
    Vec.push t.rows None
  done;
  (match Vec.get t.rows rowid with
  | Some old ->
    t.live <- t.live - 1;
    List.iter (fun idx -> Index.remove idx old rowid) t.indexes
  | None -> ());
  Vec.set t.rows rowid (Some row);
  t.live <- t.live + 1;
  t.version <- t.version + 1;
  List.iter (fun idx -> Index.insert idx row rowid) t.indexes

(** [pad_slots t n] extends the slot vector with tombstones until it has
    at least [n] slots — checkpoint restore reproducing trailing deleted
    slots, so the next insert gets the same rowid it would have live. *)
let pad_slots t n =
  while Vec.length t.rows < n do
    Vec.push t.rows None
  done

(** [slot_count t] is the total number of slots (live + tombstoned). *)
let slot_count t = Vec.length t.rows

(** [slot t rowid] is the raw slot content, without touch notification —
    checkpoint serialization. *)
let slot t rowid = if rowid < 0 || rowid >= Vec.length t.rows then None else Vec.get t.rows rowid

(** [set_version t v] forces the version counter — recovery restoring a
    checkpointed version, or bumping past a pre-recovery one so caches
    notice. *)
let set_version t v = t.version <- v

(** [get t rowid] is the live row at [rowid], if any. *)
let get t rowid =
  if rowid < 0 || rowid >= Vec.length t.rows then None
  else
    match Vec.get t.rows rowid with
    | Some _ as r ->
      notify_touch t rowid;
      r
    | None -> None

(** [delete t rowid] tombstones the row. Returns the deleted row, or [None]
    if the slot was already empty. *)
let delete t rowid =
  if rowid < 0 || rowid >= Vec.length t.rows then None
  else
    match Vec.get t.rows rowid with
    | None -> None
    | Some row ->
      Vec.set t.rows rowid None;
      t.live <- t.live - 1;
      t.version <- t.version + 1;
      List.iter (fun idx -> Index.remove idx row rowid) t.indexes;
      Some row

(** [update t rowid row] replaces the row at [rowid]. Returns the previous
    row. @raise Schema_violation on invalid [row]. *)
let update t rowid row =
  check_row t row;
  match Vec.get t.rows rowid with
  | None -> None
  | Some old ->
    Vec.set t.rows rowid (Some row);
    t.version <- t.version + 1;
    List.iter
      (fun idx ->
        Index.remove idx old rowid;
        Index.insert idx row rowid)
      t.indexes;
    Some old

(** [restore t rowid row] re-materializes a previously deleted row at its
    original slot — used by transaction rollback. *)
let restore t rowid row =
  check_row t row;
  (match Vec.get t.rows rowid with
  | Some _ -> invalid_arg "Table.restore: slot is live"
  | None -> ());
  Vec.set t.rows rowid (Some row);
  t.live <- t.live + 1;
  t.version <- t.version + 1;
  List.iter (fun idx -> Index.insert idx row rowid) t.indexes

(** [iter f t] applies [f rowid row] to every live row, notifying the touch
    hook (a full scan reads every row). *)
let iter f t =
  Vec.iteri
    (fun rowid slot ->
      match slot with
      | Some row ->
        notify_touch t rowid;
        f rowid row
      | None -> ())
    t.rows

(** [to_seq t] enumerates [(rowid, row)] for live rows. The table must not
    be mutated during consumption (the executor materializes first when it
    mutates). *)
let to_seq t =
  Vec.to_seq t.rows
  |> Seq.zip (Seq.ints 0)
  |> Seq.filter_map (fun (rowid, slot) ->
         match slot with
         | Some row ->
           notify_touch t rowid;
           Some (rowid, row)
         | None -> None)

(** [rows t] is the list of live rows (materialized snapshot). *)
let rows t =
  List.rev (Vec.fold (fun acc slot -> match slot with Some r -> r :: acc | None -> acc) [] t.rows)

(** [rowids t] is the list of live row ids. *)
let rowids t =
  let acc = ref [] in
  Vec.iteri (fun i slot -> if Option.is_some slot then acc := i :: !acc) t.rows;
  List.rev !acc

(** [add_index t ~name ~cols kind] creates and backfills an index on key
    columns [cols]; returns it. *)
let add_index t ~name ~cols kind =
  let idx = Index.create ~name ~cols kind in
  Vec.iteri
    (fun rowid slot -> match slot with Some row -> Index.insert idx row rowid | None -> ())
    t.rows;
  t.indexes <- idx :: t.indexes;
  idx

(** [indexes t] lists the table's indexes. *)
let indexes t = t.indexes

(** [drop_index t ~name] removes the index named [name] (case-insensitive);
    returns whether one was removed. Bumps the global index epoch. *)
let drop_index t ~name =
  let key = String.lowercase_ascii name in
  let keep, dropped =
    List.partition (fun idx -> String.lowercase_ascii (Index.name idx) <> key) t.indexes
  in
  if dropped = [] then false
  else begin
    t.indexes <- keep;
    Index.bump_epoch ();
    true
  end

(** [find_index t ~cols] is an index whose key is exactly [cols], if any. *)
let find_index t ~cols =
  List.find_opt (fun idx -> Index.cols idx = cols) t.indexes

(** [lookup_index t idx key] resolves index hits to live rows, notifying the
    touch hook per fetched row. *)
let lookup_index t idx key =
  List.filter_map
    (fun rowid ->
      match Vec.get t.rows rowid with
      | Some row ->
        notify_touch t rowid;
        Some (rowid, row)
      | None -> None)
    (Index.lookup idx key)

(** [set_primary_key t cols] records the PK column positions (uniqueness is
    enforced by the executor through the PK index). *)
let set_primary_key t cols = t.primary_key <- Some cols

(** [primary_key t] is the PK column positions, if declared. *)
let primary_key t = t.primary_key

(** [clear t] removes all rows and resets indexes. *)
let clear t =
  Vec.clear t.rows;
  t.live <- 0;
  t.version <- t.version + 1;
  List.iter Index.clear t.indexes

(** [distinct_estimate t col] estimates the number of distinct values in
    column [col] (exact count over live rows; tables are in-memory so exact
    statistics are affordable). *)
let distinct_estimate t col =
  let seen = Hashtbl.create 64 in
  Vec.iter
    (fun slot ->
      match slot with
      | Some row -> Hashtbl.replace seen (Value.hash row.(col), row.(col)) ()
      | None -> ())
    t.rows;
  max 1 (Hashtbl.length seen)
