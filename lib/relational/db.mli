(** The engine facade: a database session.

    {!exec} takes SQL text through the full pipeline of the paper's Fig. 8
    — parse, bind (semantic checking), query rewrite, plan optimization,
    execution — and is the entry point both the XNF layer and the "regular
    SQL interface" baseline call into. *)

type t

type result = { rschema : Schema.t; rrows : Row.t list }

type exec_result =
  | Rows of result
  | Affected of int
  | Done of string  (** DDL / transaction-control acknowledgement *)

exception Exec_error of string

(** [create ?data_dir ()] is a fresh database session. With [data_dir] the
    session is durable: the directory is created if needed, an existing
    checkpoint/WAL pair is recovered, and every change is logged to
    [data_dir]/wal.log. *)
val create : ?data_dir:string -> unit -> t

val catalog : t -> Catalog.t
val txn : t -> Txn.t

(** [data_dir db] is the attached durable directory, if any. *)
val data_dir : t -> string option

type recovery_stats = {
  rs_checkpoint_lsn : int;  (** LSN of the checkpoint recovery started from *)
  rs_replayed : int;  (** WAL records replayed past the checkpoint *)
  rs_truncated_bytes : int;  (** torn-tail bytes cut from the log *)
}

(** [checkpoint db] snapshots the whole logical state into
    [data_dir]/checkpoint.db (atomically: tmp + fsync + rename) and
    truncates the WAL. Returns the checkpoint LSN.
    @raise Exec_error without a data dir or inside a transaction. *)
val checkpoint : t -> int

(** [recover db] rebuilds state from the data directory: last checkpoint,
    torn-tail truncation, replay to the last committed transaction, and
    version floors that invalidate stale cached plans/results.
    @raise Exec_error without a data dir or inside a transaction. *)
val recover : t -> recovery_stats

(** [set_checkpoint_extra db f] registers a provider of opaque upper-layer
    checkpoint sections (the XNF view registry snapshot). *)
val set_checkpoint_extra : t -> (unit -> (string * string) list) option -> unit

(** [set_ext_handler db h] registers the consumer of recovered [R_ext]
    payloads and checkpoint sections; payloads recovered before a handler
    is installed queue and flush on installation, in original order. *)
val set_ext_handler : t -> (tag:string -> payload:string -> unit) option -> unit

(** [with_statement db f] runs [f] under the implicit statement-commit
    envelope ({!Txn.statement}); multi-record callers outside [exec] use
    it so every durable frame boundary stays statement-consistent. *)
val with_statement : t -> (unit -> 'a) -> 'a

(** [set_rewrite db flag] enables/disables the QGM rewrite phase (the E7
    ablation). *)
val set_rewrite : t -> bool -> unit

(** [stmt_count db] counts statements executed through [exec]/[query]. *)
val stmt_count : t -> int

(** [bind_env db] is a binder environment for this session (subqueries are
    compiled through the session's optimizer). *)
val bind_env : t -> Binder.env

(** [bind_select db q] binds a parsed SELECT to QGM. *)
val bind_select : t -> Sql_ast.select -> Qgm.t

(** [run_qgm db qgm] optimizes and runs a QGM tree — the XNF translator's
    entry point. *)
val run_qgm : t -> Qgm.t -> Row.t Seq.t

(** [query_ast db q] executes a parsed SELECT. *)
val query_ast : t -> Sql_ast.select -> result

(** [query db sql] parses and executes a SELECT. *)
val query : t -> string -> result

(** [explain_ast db q] returns the rewritten QGM and physical plan of a
    parsed SELECT as text. *)
val explain_ast : t -> Sql_ast.select -> string

(** [explain db sql] parses a SELECT and returns its plans as text (also
    reachable as the [EXPLAIN SELECT ...] statement). *)
val explain : t -> string -> string

(** [explain_analyze_ast db q] executes a parsed SELECT under the
    instrumented executor and returns a report with per-operator actual
    row counts and timings plus the pipeline span tree. *)
val explain_analyze_ast : t -> Sql_ast.select -> string

(** [explain_analyze db sql] parses a SELECT, runs it instrumented, and
    returns the report. *)
val explain_analyze : t -> string -> string

(** Row-level DML with primary-key enforcement and WAL logging — used by
    the executor and by the XNF udi layer. *)

val insert_row : t -> Table.t -> Row.t -> int
val delete_row : t -> Table.t -> int -> bool
val update_row : t -> Table.t -> int -> Row.t -> bool

(** [exec_stmt_ast db stmt] executes one parsed statement. *)
val exec_stmt_ast : t -> Sql_ast.stmt -> exec_result

(** [exec db sql] parses and executes one statement. *)
val exec : t -> string -> exec_result

(** [exec_script db sql] executes a ';'-separated script, returning the
    last result. *)
val exec_script : t -> string -> exec_result

(** [rows_of db sql] runs a SELECT and returns only the rows. *)
val rows_of : t -> string -> Row.t list
