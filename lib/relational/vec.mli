(** Growable arrays: amortized O(1) push, O(1) random access. (OCaml 5.1
    does not ship [Dynarray].) *)

type 'a t

(** [create ?capacity ~dummy ()] is an empty vector. [dummy] fills unused capacity;
    it is never observable through the API. *)
val create : ?capacity:int -> dummy:'a -> unit -> 'a t

val length : 'a t -> int

(** [push v x] appends [x] at index [length v]. *)
val push : 'a t -> 'a -> unit

(** @raise Invalid_argument when out of bounds. *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument when out of bounds. *)
val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val clear : 'a t -> unit

(** [truncate v n] keeps only the first [n] elements. *)
val truncate : 'a t -> int -> unit

val exists : ('a -> bool) -> 'a t -> bool

(** [to_seq v] enumerates lazily; the vector must not shrink during
    consumption. *)
val to_seq : 'a t -> 'a Seq.t
