(** Virtual system catalog: the relational-level sys.* views.

    Read-only virtual tables materialized on demand from live engine
    state and registered with {!Catalog}, so plain SQL can scan and join
    them through the normal pipeline:

    - [sys.metrics] — counters and gauges (name, kind, value)
    - [sys.histograms] — one row per latency-histogram bucket, with
      interpolated p50/p95/p99 milliseconds
    - [sys.spans] — the trace ring flattened pre-order
    - [sys.statements] — per-fingerprint execution aggregates
    - [sys.slow_queries] — the over-threshold execution ring
    - [sys.tables] / [sys.indexes] — schema objects with live
      cardinalities and an [analyzed] freshness flag
    - [sys.column_stats] — stored ANALYZE snapshots, one row per column,
      with an explicit [stale] flag on table-version mismatch

    Core-layer views ([sys.plans], [sys.fetch_cache]) are registered by
    [Api.create], which owns those caches. *)

(** [install cat] registers the relational-level sys.* views on [cat].
    Registration does not bump the catalog version. *)
val install : Catalog.t -> unit
