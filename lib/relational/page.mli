(** Simulated page layouts (experiment E4).

    A layout assigns every row of every table to a page id, mirroring the
    clustering discussion of the paper (§4): [table_clustered] gives each
    table its own run of pages in row order (naive relational clustering);
    [co_clustered] interleaves parents with their children (like
    Starburst's IMS attachment / DB2 catalog clusters). [rows_per_page]
    abstracts page size; rows are treated as equal width so fault counts
    stay interpretable. *)

type t

(** [page_of layout table rowid] is the page holding that row; rows the
    layout never placed land on a per-table overflow page. *)
val page_of : t -> Table.t -> int -> int

(** [page_count layout] is the number of pages allocated. *)
val page_count : t -> int

(** [table_clustered ~rows_per_page tables] lays each table out
    contiguously in row-id order. *)
val table_clustered : rows_per_page:int -> Table.t list -> t

(** [co_clustered ~rows_per_page ~order tables] lays rows out in the order
    produced by [order] — typically a parent-children interleaving from a
    CO instance — then appends unvisited rows table-clustered. *)
val co_clustered : rows_per_page:int -> order:(Table.t * int) list -> Table.t list -> t

(** [materialize layout store tables] writes the actual row data into the
    backing store page by page in the layout's clustered order (each page
    image is the Bincode encoding of its resident rows); returns the
    number of pages written. Rows on overflow pages are skipped. *)
val materialize : t -> Page_store.t -> Table.t list -> int

(** [attach layout pool tables] wires the layout to a buffer pool: every
    row access on [tables] becomes a page access. Returns the detach
    function. *)
val attach : t -> Buffer_pool.t -> Table.t list -> unit -> unit
