(* The database catalog: named tables and (tabular) view definitions.

   View definitions are stored as unbound SQL ASTs and expanded by the
   binder; XNF views live in their own registry (lib/core/view_registry). *)

type view = {
  view_name : string;
  view_query : Sql_ast.select;  (** the defining query, re-bound on use *)
}

type t = {
  tables : (string, Table.t) Hashtbl.t;
  views : (string, view) Hashtbl.t;
  virtuals : (string, unit -> Table.t) Hashtbl.t;
      (** read-only system tables ([sys.*]), materialized on demand by a
          provider thunk; registration does NOT bump [version] (virtual
          contents are derived state, not schema) *)
  stats : (string, Stats.table_stats) Hashtbl.t;
      (** ANALYZE snapshots, keyed like [tables]; freshness is checked
          against {!Table.version} on every read *)
  mutable version : int;
      (** bumped on every schema change (table/view added or dropped);
          cached fetch plans are valid only for the version they were
          compiled against *)
}

exception Unknown_table of string
exception Duplicate_name of string

(** [create ()] is an empty catalog. *)
let create () =
  { tables = Hashtbl.create 16; views = Hashtbl.create 16; virtuals = Hashtbl.create 16;
    stats = Hashtbl.create 16; version = 0 }

(** [version cat] is the schema version, bumped by every DDL change. *)
let version cat = cat.version

let norm = String.lowercase_ascii

(** [add_table cat table] registers [table].
    @raise Duplicate_name when the name is taken. *)
let add_table cat table =
  let key = norm (Table.name table) in
  if Hashtbl.mem cat.tables key || Hashtbl.mem cat.views key || Hashtbl.mem cat.virtuals key
  then raise (Duplicate_name key);
  Hashtbl.replace cat.tables key table;
  cat.version <- cat.version + 1

(** [create_table cat ~name schema] creates, registers and returns a fresh
    table. *)
let create_table cat ~name schema =
  let table = Table.create ~name schema in
  add_table cat table;
  table

(** [table cat name] looks a table up. @raise Unknown_table when absent. *)
let table cat name =
  match Hashtbl.find_opt cat.tables (norm name) with
  | Some t -> t
  | None -> raise (Unknown_table name)

(** [table_opt cat name] is [table] returning an option. *)
let table_opt cat name = Hashtbl.find_opt cat.tables (norm name)

(** [drop_table cat name] unregisters a table.
    @raise Unknown_table when absent. *)
let drop_table cat name =
  let key = norm name in
  if not (Hashtbl.mem cat.tables key) then raise (Unknown_table name);
  Hashtbl.remove cat.tables key;
  Hashtbl.remove cat.stats key;
  cat.version <- cat.version + 1

(** [add_view cat ~name query] registers a tabular view.
    @raise Duplicate_name when the name is taken. *)
let add_view cat ~name query =
  let key = norm name in
  if Hashtbl.mem cat.tables key || Hashtbl.mem cat.views key || Hashtbl.mem cat.virtuals key
  then raise (Duplicate_name key);
  Hashtbl.replace cat.views key { view_name = name; view_query = query };
  cat.version <- cat.version + 1

(** [view_opt cat name] is the view definition, if registered. *)
let view_opt cat name = Hashtbl.find_opt cat.views (norm name)

(** [drop_view cat name] unregisters a view. *)
let drop_view cat name =
  if Hashtbl.mem cat.views (norm name) then begin
    Hashtbl.remove cat.views (norm name);
    cat.version <- cat.version + 1
  end

(** [views cat] lists registered tabular views, sorted by name. *)
let views cat =
  List.sort
    (fun a b -> compare (norm a.view_name) (norm b.view_name))
    (Hashtbl.fold (fun _ v acc -> v :: acc) cat.views [])

(** [set_version cat v] forces the schema version — recovery only, which
    must leave the version strictly above every pre-recovery value so
    cached plans compiled before the crash can never validate. *)
let set_version cat v = cat.version <- v

(** [reset_storage cat] drops every table, tabular view and statistics
    snapshot, keeping virtual ([sys.*]) registrations; bumps the
    version. Recovery starts from this blank slate before restoring the
    checkpoint image. *)
let reset_storage cat =
  Hashtbl.reset cat.tables;
  Hashtbl.reset cat.views;
  Hashtbl.reset cat.stats;
  cat.version <- cat.version + 1

(** [tables cat] lists registered tables (unordered). *)
let tables cat = Hashtbl.fold (fun _ t acc -> t :: acc) cat.tables []

(** [table_names cat] lists registered table names, sorted. *)
let table_names cat =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) cat.tables [])

(** [register_virtual cat ~name provider] registers a read-only virtual
    table materialized by [provider] on every reference. Does NOT bump the
    schema version: virtual contents are derived state, and registering
    them must not invalidate cached fetch plans. *)
let register_virtual cat ~name provider =
  Hashtbl.replace cat.virtuals (norm name) provider

(** [virtual_opt cat name] materializes the virtual table, if registered. *)
let virtual_opt cat name =
  Option.map (fun provider -> provider ()) (Hashtbl.find_opt cat.virtuals (norm name))

(** [virtual_names cat] lists registered virtual table names, sorted. *)
let virtual_names cat =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) cat.virtuals [])

(** [set_stats cat st] stores an ANALYZE snapshot (keyed by table name). *)
let set_stats cat (st : Stats.table_stats) =
  Hashtbl.replace cat.stats (norm st.Stats.ts_table) st

(** [stats_opt cat name] is the last ANALYZE snapshot, fresh or stale. *)
let stats_opt cat name = Hashtbl.find_opt cat.stats (norm name)

(** [fresh_stats_opt cat name] is the last ANALYZE snapshot only when its
    collection version still matches the live table's version; stale
    snapshots yield [None] so consumers fall back rather than trust them. *)
let fresh_stats_opt cat name =
  match stats_opt cat name with
  | Some st when
      (match table_opt cat name with
      | Some t -> Table.version t = st.Stats.ts_version
      | None -> false) ->
    Some st
  | _ -> None

(** [all_stats cat] lists stored snapshots, sorted by table name. *)
let all_stats cat =
  List.sort
    (fun a b -> compare a.Stats.ts_table b.Stats.ts_table)
    (Hashtbl.fold (fun _ st acc -> st :: acc) cat.stats [])
