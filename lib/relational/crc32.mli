(** CRC-32 (IEEE, reflected 0xEDB88320) over strings — seals WAL frames
    and checkpoint snapshots against torn writes and bit flips. *)

(** [update crc s pos len] folds [len] bytes of [s] at [pos] into a
    running CRC; start from [0]. *)
val update : int -> string -> int -> int -> int

(** [string s] is the CRC-32 of all of [s]. *)
val string : string -> int
