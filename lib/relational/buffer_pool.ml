(* LRU buffer pool over pages.

   Two modes share one LRU policy:

   - Accounting-only (no store attached, the original E4 simulation):
     faults and evictions are counted but no data moves.
   - File-backed (a {!Page_store} attached): a fault really reads the
     page from the store into a frame, evicting a dirty victim really
     writes it back, and [flush] writes back every dirty frame and
     fsyncs. The observable fault counts are identical to the
     accounting mode — attaching a store adds I/O, not policy. *)

type t = {
  capacity : int;  (** number of page frames *)
  mutable clock : int;
  resident : (int, int) Hashtbl.t;  (** page id -> last-use time *)
  frames : (int, bytes) Hashtbl.t;  (** page contents (store mode only) *)
  dirty : (int, unit) Hashtbl.t;  (** pages needing writeback *)
  mutable store : Page_store.t option;
  mutable faults : int;
  mutable hits : int;
  mutable evictions : int;
  mutable writebacks : int;
}

(* every pool also feeds the process-global metrics registry, so
   [\metrics] and the benchmark harness see aggregate hit/miss/eviction
   traffic without holding a pool reference *)
let m_hits = Obs.Metrics.counter "bufpool.hits"
let m_faults = Obs.Metrics.counter "bufpool.faults"
let m_evictions = Obs.Metrics.counter "bufpool.evictions"
let m_writebacks = Obs.Metrics.counter "bufpool.writebacks"

(** [create ?store ~capacity ()] is an empty pool with [capacity] frames,
    optionally backed by a page store. *)
let create ?store ~capacity () =
  if capacity <= 0 then invalid_arg "Buffer_pool.create";
  { capacity; clock = 0; resident = Hashtbl.create (2 * capacity);
    frames = Hashtbl.create (2 * capacity); dirty = Hashtbl.create (2 * capacity); store;
    faults = 0; hits = 0; evictions = 0; writebacks = 0 }

let write_back pool page =
  match pool.store with
  | Some store when page >= 0 && Hashtbl.mem pool.dirty page ->
    let data = try Hashtbl.find pool.frames page with Not_found -> Bytes.create 0 in
    Page_store.write store page data;
    Hashtbl.remove pool.dirty page;
    pool.writebacks <- pool.writebacks + 1;
    Obs.Metrics.incr m_writebacks
  | _ -> Hashtbl.remove pool.dirty page

(** [access ?dirty pool page] records an access to [page], faulting it in
    (with LRU eviction, writing back a dirty victim) when non-resident.
    [~dirty:true] marks the page modified so eviction or {!flush} will
    write it to the attached store. *)
let access ?(dirty = false) pool page =
  pool.clock <- pool.clock + 1;
  (match Hashtbl.find_opt pool.resident page with
  | Some _ ->
    pool.hits <- pool.hits + 1;
    Obs.Metrics.incr m_hits;
    Hashtbl.replace pool.resident page pool.clock
  | None ->
    pool.faults <- pool.faults + 1;
    Obs.Metrics.incr m_faults;
    if Hashtbl.length pool.resident >= pool.capacity then begin
      (* evict the LRU page *)
      let victim =
        Hashtbl.fold
          (fun p t acc ->
            match acc with
            | Some (_, bt) when bt <= t -> acc
            | _ -> Some (p, t))
          pool.resident None
      in
      match victim with
      | Some (p, _) ->
        pool.evictions <- pool.evictions + 1;
        Obs.Metrics.incr m_evictions;
        write_back pool p;
        Hashtbl.remove pool.resident p;
        Hashtbl.remove pool.frames p
      | None -> ()
    end;
    (match pool.store with
    (* negative ids are per-table overflow pages — not backed by the store *)
    | Some store when page >= 0 -> Hashtbl.replace pool.frames page (Page_store.read store page)
    | Some _ | None -> ());
    Hashtbl.replace pool.resident page pool.clock);
  if dirty then Hashtbl.replace pool.dirty page ()

(** [page pool pid] is the resident frame content, if faulted in
    (store mode only). *)
let page pool pid = Hashtbl.find_opt pool.frames pid

(** [set_page pool pid data] replaces a resident frame's content and
    marks it dirty (store mode only; a non-resident page is ignored). *)
let set_page pool pid data =
  if Hashtbl.mem pool.resident pid then begin
    Hashtbl.replace pool.frames pid data;
    Hashtbl.replace pool.dirty pid ()
  end

(** [flush pool] writes every dirty frame back to the attached store and
    fsyncs it. A no-op without a store. *)
let flush pool =
  match pool.store with
  | None -> Hashtbl.reset pool.dirty
  | Some store ->
    let pages = Hashtbl.fold (fun p () acc -> p :: acc) pool.dirty [] in
    List.iter (write_back pool) (List.sort compare pages);
    Page_store.flush store

(** [faults pool] is the number of page faults (misses) since
    creation/reset. *)
let faults pool = pool.faults

(** [hits pool] is the number of hits since creation/reset. *)
let hits pool = pool.hits

(** [misses pool] is a synonym for {!faults} — the miss side of the
    hit/miss pair. *)
let misses pool = pool.faults

(** [evictions pool] counts LRU evictions since creation/reset. *)
let evictions pool = pool.evictions

(** [writebacks pool] counts dirty-page writes to the store. *)
let writebacks pool = pool.writebacks

(** [reset pool] clears residency, frames and per-pool counters (the
    global metrics registry is left alone — reset it via
    [Obs.Metrics.reset]). Dirty frames are dropped, not written back. *)
let reset pool =
  Hashtbl.reset pool.resident;
  Hashtbl.reset pool.frames;
  Hashtbl.reset pool.dirty;
  pool.clock <- 0;
  pool.faults <- 0;
  pool.hits <- 0;
  pool.evictions <- 0;
  pool.writebacks <- 0
