(* LRU buffer pool over simulated pages.

   The paged-storage simulation (experiment E4) maps every row of the
   database to a page id through a {!Page.layout}; the executor's row
   accesses are funneled here via {!Table.set_touch}. The pool tracks hits
   and faults; a fault on a full pool evicts the least recently used page.
   There is no data movement — only accounting — because the observable of
   the clustering experiment is the fault count, not the bytes. *)

type t = {
  capacity : int;  (** number of page frames *)
  mutable clock : int;
  resident : (int, int) Hashtbl.t;  (** page id -> last-use time *)
  mutable faults : int;
  mutable hits : int;
  mutable evictions : int;
}

(* every pool also feeds the process-global metrics registry, so
   [\metrics] and the benchmark harness see aggregate hit/miss/eviction
   traffic without holding a pool reference *)
let m_hits = Obs.Metrics.counter "bufpool.hits"
let m_faults = Obs.Metrics.counter "bufpool.faults"
let m_evictions = Obs.Metrics.counter "bufpool.evictions"

(** [create ~capacity] is an empty pool with [capacity] frames. *)
let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create";
  { capacity; clock = 0; resident = Hashtbl.create (2 * capacity); faults = 0; hits = 0;
    evictions = 0 }

(** [access pool page] records an access to [page], faulting it in (with
    LRU eviction) when non-resident. *)
let access pool page =
  pool.clock <- pool.clock + 1;
  match Hashtbl.find_opt pool.resident page with
  | Some _ ->
    pool.hits <- pool.hits + 1;
    Obs.Metrics.incr m_hits;
    Hashtbl.replace pool.resident page pool.clock
  | None ->
    pool.faults <- pool.faults + 1;
    Obs.Metrics.incr m_faults;
    if Hashtbl.length pool.resident >= pool.capacity then begin
      (* evict the LRU page *)
      let victim =
        Hashtbl.fold
          (fun p t acc ->
            match acc with
            | Some (_, bt) when bt <= t -> acc
            | _ -> Some (p, t))
          pool.resident None
      in
      match victim with
      | Some (p, _) ->
        pool.evictions <- pool.evictions + 1;
        Obs.Metrics.incr m_evictions;
        Hashtbl.remove pool.resident p
      | None -> ()
    end;
    Hashtbl.replace pool.resident page pool.clock

(** [faults pool] is the number of page faults (misses) since
    creation/reset. *)
let faults pool = pool.faults

(** [hits pool] is the number of hits since creation/reset. *)
let hits pool = pool.hits

(** [misses pool] is a synonym for {!faults} — the miss side of the
    hit/miss pair. *)
let misses pool = pool.faults

(** [evictions pool] counts LRU evictions since creation/reset. *)
let evictions pool = pool.evictions

(** [reset pool] clears residency and per-pool counters (the global
    metrics registry is left alone — reset it via [Obs.Metrics.reset]). *)
let reset pool =
  Hashtbl.reset pool.resident;
  pool.clock <- 0;
  pool.faults <- 0;
  pool.hits <- 0;
  pool.evictions <- 0
