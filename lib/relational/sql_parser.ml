(* Recursive-descent SQL parser.

   Entry points take either a string or a token cursor; the cursor entry
   points are shared with the XNF parser (lib/core), which parses embedded
   SELECTs and predicates by calling back in here.

   Expression precedence, loosest first:
     OR < AND < NOT < comparison / IS / LIKE / IN / BETWEEN
        < + -  <  * / %  < unary - < primary *)

open Sql_ast

module L = Sql_lexer

let parse_error = L.error

(* A table name in FROM position: [ident] or the qualified [ident.ident]
   form used by the virtual system catalog ([sys.metrics], ...). The dot
   is consumed only when an identifier follows, so ordinary punctuation
   after a table name still parses. *)
let parse_table_name c =
  let name = L.expect_ident c in
  if L.at_sym c "." then begin
    match L.peek2 c with
    | L.IDENT _ ->
      ignore (L.advance c);
      name ^ "." ^ L.expect_ident c
    | _ -> name
  end
  else name

(* ---- expressions ---- *)

let rec parse_expr c : expr = parse_or c

and parse_or c =
  let lhs = parse_and c in
  if L.accept_kw c "OR" then E_or (lhs, parse_or c) else lhs

and parse_and c =
  let lhs = parse_not c in
  if L.accept_kw c "AND" then E_and (lhs, parse_and c) else lhs

and parse_not c = if L.accept_kw c "NOT" then E_not (parse_not c) else parse_comparison c

and parse_comparison c =
  let lhs = parse_additive c in
  let cmp op =
    ignore (L.advance c);
    E_cmp (op, lhs, parse_additive c)
  in
  match L.peek c with
  | L.SYM "=" -> cmp Expr.Eq
  | L.SYM "<>" -> cmp Expr.Ne
  | L.SYM "<" -> cmp Expr.Lt
  | L.SYM "<=" -> cmp Expr.Le
  | L.SYM ">" -> cmp Expr.Gt
  | L.SYM ">=" -> cmp Expr.Ge
  | L.KW "IS" ->
    ignore (L.advance c);
    let negated = L.accept_kw c "NOT" in
    L.expect_kw c "NULL";
    if negated then E_is_not_null lhs else E_is_null lhs
  | L.KW "LIKE" ->
    ignore (L.advance c);
    E_like (lhs, parse_additive c)
  | L.KW "BETWEEN" ->
    ignore (L.advance c);
    let lo = parse_additive c in
    L.expect_kw c "AND";
    let hi = parse_additive c in
    E_and (E_cmp (Expr.Ge, lhs, lo), E_cmp (Expr.Le, lhs, hi))
  | L.KW "NOT" when L.peek2 c = L.KW "IN" ->
    ignore (L.advance c);
    ignore (L.advance c);
    E_not (parse_in_rhs c lhs)
  | L.KW "NOT" when L.peek2 c = L.KW "LIKE" ->
    ignore (L.advance c);
    ignore (L.advance c);
    E_not (E_like (lhs, parse_additive c))
  | L.KW "IN" ->
    ignore (L.advance c);
    parse_in_rhs c lhs
  | _ -> lhs

and parse_in_rhs c lhs =
  L.expect_sym c "(";
  let result =
    if L.at_kw c "SELECT" then E_in_query (lhs, parse_select_cursor c)
    else begin
      let rec items acc =
        let e = parse_expr c in
        if L.accept_sym c "," then items (e :: acc) else List.rev (e :: acc)
      in
      E_in_list (lhs, items [])
    end
  in
  L.expect_sym c ")";
  result

and parse_additive c =
  let rec go lhs =
    if L.at_sym c "+" then begin
      ignore (L.advance c);
      go (E_arith (Expr.Add, lhs, parse_multiplicative c))
    end
    else if L.at_sym c "-" then begin
      ignore (L.advance c);
      go (E_arith (Expr.Sub, lhs, parse_multiplicative c))
    end
    else lhs
  in
  go (parse_multiplicative c)

and parse_multiplicative c =
  let rec go lhs =
    if L.at_sym c "*" then begin
      ignore (L.advance c);
      go (E_arith (Expr.Mul, lhs, parse_unary c))
    end
    else if L.at_sym c "/" then begin
      ignore (L.advance c);
      go (E_arith (Expr.Div, lhs, parse_unary c))
    end
    else if L.at_sym c "%" then begin
      ignore (L.advance c);
      go (E_arith (Expr.Mod, lhs, parse_unary c))
    end
    else lhs
  in
  go (parse_unary c)

and parse_unary c = if L.accept_sym c "-" then E_neg (parse_unary c) else parse_primary c

and parse_primary c =
  match L.peek c with
  | L.INT i ->
    ignore (L.advance c);
    E_lit (Value.Int i)
  | L.FLOAT f ->
    ignore (L.advance c);
    E_lit (Value.Float f)
  | L.STRING s ->
    ignore (L.advance c);
    E_lit (Value.Str s)
  | L.KW "TRUE" ->
    ignore (L.advance c);
    E_lit (Value.Bool true)
  | L.KW "FALSE" ->
    ignore (L.advance c);
    E_lit (Value.Bool false)
  | L.KW "NULL" ->
    ignore (L.advance c);
    E_lit Value.Null
  | L.SYM "?" ->
    ignore (L.advance c);
    let i = c.L.params in
    c.L.params <- i + 1;
    E_param i
  | L.KW "CASE" ->
    ignore (L.advance c);
    let rec branches acc =
      if L.accept_kw c "WHEN" then begin
        let cond = parse_expr c in
        L.expect_kw c "THEN";
        let result = parse_expr c in
        branches ((cond, result) :: acc)
      end
      else List.rev acc
    in
    let bs = branches [] in
    if bs = [] then parse_error c "CASE without WHEN";
    let else_ = if L.accept_kw c "ELSE" then Some (parse_expr c) else None in
    L.expect_kw c "END";
    E_case (bs, else_)
  | L.KW "EXISTS" ->
    ignore (L.advance c);
    L.expect_sym c "(";
    let q = parse_select_cursor c in
    L.expect_sym c ")";
    E_exists q
  | L.SYM "(" ->
    ignore (L.advance c);
    if L.at_kw c "SELECT" then begin
      let q = parse_select_cursor c in
      L.expect_sym c ")";
      E_scalar q
    end
    else begin
      let e = parse_expr c in
      L.expect_sym c ")";
      e
    end
  | L.IDENT name -> begin
    ignore (L.advance c);
    if L.at_sym c "(" then begin
      (* function call, possibly aggregate *)
      ignore (L.advance c);
      if String.lowercase_ascii name = "count" && L.accept_sym c "*" then begin
        L.expect_sym c ")";
        E_count_star
      end
      else if L.accept_kw c "DISTINCT" then begin
        let e = parse_expr c in
        L.expect_sym c ")";
        E_fn_distinct (name, e)
      end
      else begin
        let rec args acc =
          if L.at_sym c ")" then List.rev acc
          else begin
            let e = parse_expr c in
            if L.accept_sym c "," then args (e :: acc) else List.rev (e :: acc)
          end
        in
        let a = args [] in
        L.expect_sym c ")";
        E_fn (name, a)
      end
    end
    else if L.at_sym c "." && (match L.peek2 c with L.IDENT _ -> true | _ -> false) then begin
      ignore (L.advance c);
      let col = L.expect_ident c in
      E_col (Some name, col)
    end
    else E_col (None, name)
  end
  | _ -> parse_error c "expected expression"

(* ---- SELECT ---- *)

and parse_select_item c =
  if L.accept_sym c "*" then Sel_star
  else
    match L.peek c, L.peek2 c with
    | L.IDENT t, L.SYM "." when (c.L.pos + 2 < Array.length c.L.toks && c.L.toks.(c.L.pos + 2) = L.SYM "*") ->
      ignore (L.advance c);
      ignore (L.advance c);
      ignore (L.advance c);
      Sel_table_star t
    | _ ->
      let e = parse_expr c in
      let alias =
        if L.accept_kw c "AS" then Some (L.expect_ident c)
        else match L.peek c with
          | L.IDENT a when not (L.at_sym c ",") ->
            ignore (L.advance c);
            Some a
          | _ -> None
      in
      Sel_expr (e, alias)

and parse_table_ref c =
  let base =
    if L.accept_sym c "(" then begin
      let q = parse_select_cursor c in
      L.expect_sym c ")";
      ignore (L.accept_kw c "AS");
      let alias = L.expect_ident c in
      From_select (q, alias)
    end
    else begin
      let name = parse_table_name c in
      let alias =
        if L.accept_kw c "AS" then Some (L.expect_ident c)
        else match L.peek c with
          | L.IDENT a ->
            ignore (L.advance c);
            Some a
          | _ -> None
      in
      From_table (name, alias)
    end
  in
  parse_join_tail c base

and parse_join_tail c lhs =
  if L.at_kw c "JOIN" || L.at_kw c "INNER" || L.at_kw c "LEFT" then begin
    let kind =
      if L.accept_kw c "LEFT" then Join_left
      else begin
        ignore (L.accept_kw c "INNER");
        Join_inner
      end
    in
    L.expect_kw c "JOIN";
    let rhs =
      if L.accept_sym c "(" then begin
        let q = parse_select_cursor c in
        L.expect_sym c ")";
        ignore (L.accept_kw c "AS");
        let alias = L.expect_ident c in
        From_select (q, alias)
      end
      else begin
        let name = parse_table_name c in
        let alias =
          if L.accept_kw c "AS" then Some (L.expect_ident c)
          else match L.peek c with
            | L.IDENT a ->
              ignore (L.advance c);
              Some a
            | _ -> None
        in
        From_table (name, alias)
      end
    in
    let on = if L.accept_kw c "ON" then Some (parse_expr c) else None in
    parse_join_tail c (From_join (lhs, kind, rhs, on))
  end
  else lhs

(* one SELECT "core": everything up to (but excluding) UNION / ORDER BY /
   LIMIT, which belong to the whole union chain *)
and parse_select_core c : select =
  L.expect_kw c "SELECT";
  let distinct = L.accept_kw c "DISTINCT" in
  let rec items acc =
    let item = parse_select_item c in
    if L.accept_sym c "," then items (item :: acc) else List.rev (item :: acc)
  in
  let sel_items = items [] in
  let sel_from =
    if L.accept_kw c "FROM" then begin
      let rec refs acc =
        let r = parse_table_ref c in
        if L.accept_sym c "," then refs (r :: acc) else List.rev (r :: acc)
      in
      refs []
    end
    else []
  in
  let sel_where = if L.accept_kw c "WHERE" then Some (parse_expr c) else None in
  let sel_group_by =
    if L.accept_kw c "GROUP" then begin
      L.expect_kw c "BY";
      let rec keys acc =
        let e = parse_expr c in
        if L.accept_sym c "," then keys (e :: acc) else List.rev (e :: acc)
      in
      keys []
    end
    else []
  in
  let sel_having = if L.accept_kw c "HAVING" then Some (parse_expr c) else None in
  { sel_distinct = distinct; sel_items; sel_from; sel_where; sel_group_by; sel_having;
    sel_unions = []; sel_order_by = []; sel_limit = None }

(** [parse_select_cursor c] parses a SELECT starting at the cursor (the
    [SELECT] keyword must be next), including any UNION chain; ORDER BY and
    LIMIT apply to the whole chain. Shared with the XNF parser. *)
and parse_select_cursor c : select =
  let head = parse_select_core c in
  let rec unions acc =
    if L.accept_kw c "UNION" then begin
      let op = if L.accept_kw c "ALL" then Union_all else Union_distinct in
      unions ((op, parse_select_core c) :: acc)
    end
    else List.rev acc
  in
  let sel_unions = unions [] in
  let sel_order_by =
    if L.accept_kw c "ORDER" then begin
      L.expect_kw c "BY";
      let rec keys acc =
        let e = parse_expr c in
        let dir = if L.accept_kw c "DESC" then Desc else begin ignore (L.accept_kw c "ASC"); Asc end in
        if L.accept_sym c "," then keys ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      keys []
    end
    else []
  in
  let sel_limit =
    if L.accept_kw c "LIMIT" then begin
      match L.advance c with
      | L.INT n -> Some n
      | _ -> parse_error c "expected integer after LIMIT"
    end
    else None
  in
  { head with sel_unions; sel_order_by; sel_limit }

(* ---- statements ---- *)

let parse_column_def c =
  let name = L.expect_ident c in
  let ty =
    match L.advance c with
    | L.KW "INTEGER" | L.KW "INT" -> Schema.Ty_int
    | L.KW "FLOAT" -> Schema.Ty_float
    | L.KW "VARCHAR" ->
      (* optional length, ignored *)
      if L.accept_sym c "(" then begin
        (match L.advance c with L.INT _ -> () | _ -> parse_error c "expected length");
        L.expect_sym c ")"
      end;
      Schema.Ty_string
    | L.KW "BOOLEAN" -> Schema.Ty_bool
    | _ -> parse_error c "expected column type"
  in
  let primary = ref false in
  let nullable = ref true in
  let rec modifiers () =
    if L.accept_kw c "PRIMARY" then begin
      L.expect_kw c "KEY";
      primary := true;
      nullable := false;
      modifiers ()
    end
    else if L.accept_kw c "NOT" then begin
      L.expect_kw c "NULL";
      nullable := false;
      modifiers ()
    end
  in
  modifiers ();
  { cd_name = name; cd_ty = ty; cd_nullable = !nullable; cd_primary = !primary }

(** [parse_stmt_cursor c] parses one statement at the cursor (shared with
    the XNF parser for the plain-SQL statement forms). *)
let parse_stmt_cursor c : stmt =
  match L.peek c with
  | L.KW "SELECT" -> S_select (parse_select_cursor c)
  | L.KW "INSERT" ->
    ignore (L.advance c);
    L.expect_kw c "INTO";
    let table = L.expect_ident c in
    let cols =
      if L.at_sym c "(" then begin
        ignore (L.advance c);
        let rec go acc =
          let col = L.expect_ident c in
          if L.accept_sym c "," then go (col :: acc) else List.rev (col :: acc)
        in
        let cs = go [] in
        L.expect_sym c ")";
        Some cs
      end
      else None
    in
    L.expect_kw c "VALUES";
    let parse_tuple () =
      L.expect_sym c "(";
      let rec go acc =
        let e = parse_expr c in
        if L.accept_sym c "," then go (e :: acc) else List.rev (e :: acc)
      in
      let vs = go [] in
      L.expect_sym c ")";
      vs
    in
    let rec tuples acc =
      let t = parse_tuple () in
      if L.accept_sym c "," then tuples (t :: acc) else List.rev (t :: acc)
    in
    S_insert { ins_table = table; ins_cols = cols; ins_values = tuples [] }
  | L.KW "UPDATE" ->
    ignore (L.advance c);
    let table = L.expect_ident c in
    L.expect_kw c "SET";
    let rec sets acc =
      let col = L.expect_ident c in
      L.expect_sym c "=";
      let e = parse_expr c in
      if L.accept_sym c "," then sets ((col, e) :: acc) else List.rev ((col, e) :: acc)
    in
    let upd_sets = sets [] in
    let upd_where = if L.accept_kw c "WHERE" then Some (parse_expr c) else None in
    S_update { upd_table = table; upd_sets; upd_where }
  | L.KW "DELETE" ->
    ignore (L.advance c);
    L.expect_kw c "FROM";
    let table = L.expect_ident c in
    let del_where = if L.accept_kw c "WHERE" then Some (parse_expr c) else None in
    S_delete { del_table = table; del_where }
  | L.KW "CREATE" -> begin
    ignore (L.advance c);
    match L.advance c with
    | L.KW "TABLE" ->
      let name = L.expect_ident c in
      L.expect_sym c "(";
      let rec cols acc =
        let cd = parse_column_def c in
        if L.accept_sym c "," then cols (cd :: acc) else List.rev (cd :: acc)
      in
      let ct_cols = cols [] in
      L.expect_sym c ")";
      S_create_table { ct_name = name; ct_cols }
    | L.KW "INDEX" ->
      let name = L.expect_ident c in
      L.expect_kw c "ON";
      let table = L.expect_ident c in
      L.expect_sym c "(";
      let rec cols acc =
        let col = L.expect_ident c in
        if L.accept_sym c "," then cols (col :: acc) else List.rev (col :: acc)
      in
      let ci_cols = cols [] in
      L.expect_sym c ")";
      let ordered =
        if L.accept_kw c "USING" then begin
          L.expect_kw c "ORDERED";
          true
        end
        else false
      in
      S_create_index { ci_name = name; ci_table = table; ci_cols; ci_ordered = ordered }
    | L.KW "VIEW" ->
      let name = L.expect_ident c in
      L.expect_kw c "AS";
      let q = parse_select_cursor c in
      S_create_view { cv_name = name; cv_query = q }
    | _ -> parse_error c "expected TABLE, INDEX or VIEW after CREATE"
  end
  | L.KW "DROP" -> begin
    ignore (L.advance c);
    match L.advance c with
    | L.KW "TABLE" -> S_drop_table (L.expect_ident c)
    | L.KW "VIEW" -> S_drop_view (L.expect_ident c)
    | L.KW "INDEX" -> S_drop_index (L.expect_ident c)
    | _ -> parse_error c "expected TABLE, VIEW or INDEX after DROP"
  end
  | L.KW "EXPLAIN" ->
    ignore (L.advance c);
    S_explain (parse_select_cursor c)
  | L.KW "ANALYZE" ->
    ignore (L.advance c);
    let target = match L.peek c with L.IDENT _ -> Some (L.expect_ident c) | _ -> None in
    S_analyze target
  | L.KW "BEGIN" ->
    ignore (L.advance c);
    S_begin
  | L.KW "COMMIT" ->
    ignore (L.advance c);
    S_commit
  | L.KW "ROLLBACK" ->
    ignore (L.advance c);
    S_rollback
  | _ -> parse_error c "expected statement"

let finish c =
  ignore (L.accept_sym c ";");
  match L.peek c with
  | L.EOF -> ()
  | _ -> parse_error c "trailing input after statement"

(** [parse_stmt s] parses exactly one statement from [s].
    @raise Sql_lexer.Parse_error on malformed input. *)
let parse_stmt s =
  let c = L.cursor_of_string s in
  let stmt = parse_stmt_cursor c in
  finish c;
  stmt

(** [parse_select s] parses exactly one SELECT query from [s]. *)
let parse_select s =
  let c = L.cursor_of_string s in
  let q = parse_select_cursor c in
  finish c;
  q

(** [parse_expr_string s] parses a standalone expression (used in tests and
    by the XNF parser for predicates supplied as strings). *)
let parse_expr_string s =
  let c = L.cursor_of_string s in
  let e = parse_expr c in
  (match L.peek c with L.EOF -> () | _ -> parse_error c "trailing input after expression");
  e
