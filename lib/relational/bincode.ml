(* Binary encoding for WAL records and checkpoint snapshots.

   A minimal, self-describing-enough codec: fixed-width little-endian
   64-bit integers, IEEE-754 bit-pattern floats, length-prefixed strings,
   tag bytes for sums. No versioning beyond the container magic — the
   on-disk formats are sealed by the WAL/checkpoint headers, and a format
   change is a new magic. Decoding is strict: any malformed input raises
   {!Decode_error}, which the WAL reader treats as a torn tail and the
   checkpoint reader as a corrupt snapshot. *)

exception Decode_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Decode_error s)) fmt

(* ---- encoding (into a Buffer) ---- *)

let put_int64 b (n : int64) =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xFFL)))
  done

let put_int b n = put_int64 b (Int64.of_int n)
let put_u32 b n =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let put_float b f = put_int64 b (Int64.bits_of_float f)
let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let put_string b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_option b put = function
  | None -> Buffer.add_char b '\000'
  | Some v ->
    Buffer.add_char b '\001';
    put b v

let put_list b put items =
  put_int b (List.length items);
  List.iter (put b) items

let put_int_array b (a : int array) =
  put_int b (Array.length a);
  Array.iter (put_int b) a

let put_value b (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char b '\000'
  | Value.Int n ->
    Buffer.add_char b '\001';
    put_int b n
  | Value.Float f ->
    Buffer.add_char b '\002';
    put_float b f
  | Value.Str s ->
    Buffer.add_char b '\003';
    put_string b s
  | Value.Bool v ->
    Buffer.add_char b '\004';
    put_bool b v

let put_row b (r : Row.t) =
  put_int b (Array.length r);
  Array.iter (put_value b) r

let ty_tag = function
  | Schema.Ty_int -> '\000'
  | Schema.Ty_float -> '\001'
  | Schema.Ty_string -> '\002'
  | Schema.Ty_bool -> '\003'

let put_schema b (s : Schema.t) =
  let cols = Schema.columns s in
  put_int b (List.length cols);
  List.iter
    (fun (c : Schema.column) ->
      put_string b c.Schema.col_name;
      put_string b c.Schema.col_qualifier;
      Buffer.add_char b (ty_tag c.Schema.col_ty);
      put_bool b c.Schema.col_nullable)
    cols

(* ---- decoding (from a string + mutable cursor) ---- *)

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }
let pos r = r.pos
let at_end r = r.pos >= String.length r.src

let need r n =
  if r.pos + n > String.length r.src then fail "unexpected end of input (need %d at %d)" n r.pos

let get_byte r =
  need r 1;
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_int64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.src.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  !v

let get_int r = Int64.to_int (get_int64 r)

let get_u32 r =
  need r 4;
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code r.src.[r.pos + i]
  done;
  r.pos <- r.pos + 4;
  !v

let get_float r = Int64.float_of_bits (get_int64 r)

let get_bool r =
  match get_byte r with
  | 0 -> false
  | 1 -> true
  | n -> fail "bad bool tag %d" n

let get_string r =
  let n = get_int r in
  if n < 0 then fail "negative string length %d" n;
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_option r get =
  match get_byte r with
  | 0 -> None
  | 1 -> Some (get r)
  | n -> fail "bad option tag %d" n

let get_list r get =
  let n = get_int r in
  if n < 0 then fail "negative list length %d" n;
  List.init n (fun _ -> get r)

let get_int_array r =
  let n = get_int r in
  if n < 0 then fail "negative array length %d" n;
  Array.init n (fun _ -> get_int r)

let get_value r : Value.t =
  match get_byte r with
  | 0 -> Value.Null
  | 1 -> Value.Int (get_int r)
  | 2 -> Value.Float (get_float r)
  | 3 -> Value.Str (get_string r)
  | 4 -> Value.Bool (get_bool r)
  | n -> fail "bad value tag %d" n

let get_row r : Row.t =
  let n = get_int r in
  if n < 0 then fail "negative row arity %d" n;
  Array.init n (fun _ -> get_value r)

let get_ty r =
  match get_byte r with
  | 0 -> Schema.Ty_int
  | 1 -> Schema.Ty_float
  | 2 -> Schema.Ty_string
  | 3 -> Schema.Ty_bool
  | n -> fail "bad type tag %d" n

let get_schema r : Schema.t =
  let n = get_int r in
  if n < 0 then fail "negative schema arity %d" n;
  Schema.make
    (List.init n (fun _ ->
         let name = get_string r in
         let qualifier = get_string r in
         let ty = get_ty r in
         let nullable = get_bool r in
         Schema.column ~qualifier ~nullable name ty))
