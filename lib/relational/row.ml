(* Rows are flat arrays of values; row identity inside a table is an
   integer row id (slot index), stable until the row is deleted. *)

type t = Value.t array

(** Row ids identify a row slot within one table. *)
type rowid = int

(** [concat a b] concatenates two rows — the runtime counterpart of
    {!Schema.concat}. *)
let concat (a : t) (b : t) : t = Array.append a b

(** [equal a b] is pointwise {!Value.equal}. *)
let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && begin
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0
  end

(** [compare a b] is lexicographic {!Value.compare_total}. *)
let compare (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then compare (Array.length a) (Array.length b)
    else
      let c = Value.compare_total a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(** [hash r] hashes consistently with [equal]. *)
let hash (r : t) = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 r

(** [project r idxs] extracts the columns at [idxs] in order. *)
let project (r : t) (idxs : int array) : t = Array.map (fun i -> r.(i)) idxs

(** Encoded rows: the same columns as dense {!Dict} ids. The execution
    core (extents, fixpoint frontiers, hash builds, the CO cache) carries
    these; decode happens at TAKE/projection, cursor delivery, and sys.*
    rendering. *)
type enc = int array

(** [encode r] / [decode e] map {!Dict.encode}/{!Dict.decode} pointwise. *)
let encode (r : t) : enc = Dict.encode_row r

let decode (e : enc) : t = Dict.decode_row e

(** [project_enc e idxs] is {!project} over an encoded row. *)
let project_enc (e : enc) (idxs : int array) : enc = Array.map (fun i -> e.(i)) idxs

(** [pp] prints a row as [(v1, v2, ...)]. *)
let pp ppf (r : t) =
  Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") Value.pp) r

(** [to_string r] is [pp] rendered to a string. *)
let to_string (r : t) = Fmt.str "%a" pp r
