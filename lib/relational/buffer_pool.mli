(** LRU buffer pool over pages, optionally file-backed.

    The paged-storage layer of experiment E4 maps every row to a page id
    through a {!Page} layout; row accesses are funneled here via
    {!Table.set_touch}. The pool tracks hits and faults; a fault on a
    full pool evicts the least recently used page.

    Without a store the pool is pure accounting (the original
    simulation). With a {!Page_store} attached, a fault really reads the
    page into a frame, evicting a dirty victim really writes it back,
    and {!flush} writes back all dirty frames and fsyncs — same policy,
    real I/O. *)

type t

(** [create ?store ~capacity ()] is an empty pool with [capacity] frames,
    optionally backed by a page store.
    @raise Invalid_argument when [capacity <= 0]. *)
val create : ?store:Page_store.t -> capacity:int -> unit -> t

(** [access ?dirty pool page] records an access, faulting the page in
    (with LRU eviction and dirty-victim writeback) when non-resident.
    [~dirty:true] marks the page modified. Every access also feeds the
    global metrics registry ([bufpool.hits] / [bufpool.faults] /
    [bufpool.evictions] / [bufpool.writebacks]). *)
val access : ?dirty:bool -> t -> int -> unit

(** [page pool pid] is the resident frame content, if faulted in (store
    mode only). *)
val page : t -> int -> bytes option

(** [set_page pool pid data] replaces a resident frame's content and
    marks it dirty (store mode only; ignored when non-resident). *)
val set_page : t -> int -> bytes -> unit

(** [flush pool] writes every dirty frame back to the attached store and
    fsyncs it; a no-op without a store. *)
val flush : t -> unit

val faults : t -> int
val hits : t -> int

(** [misses pool] is a synonym for {!faults} — the miss side of the
    hit/miss pair. *)
val misses : t -> int

(** [evictions pool] counts LRU evictions since creation/reset. *)
val evictions : t -> int

(** [writebacks pool] counts dirty-page writes to the store. *)
val writebacks : t -> int

(** [reset pool] clears residency, frames and per-pool counters (global
    metrics are left alone). Dirty frames are dropped, not written
    back. *)
val reset : t -> unit
