(** LRU buffer pool over simulated pages.

    The paged-storage simulation (experiment E4) maps every row to a page
    id through a {!Page} layout; row accesses are funneled here via
    {!Table.set_touch}. The pool tracks hits and faults; a fault on a full
    pool evicts the least recently used page. Only accounting — no data
    moves — because the clustering experiments observe fault counts. *)

type t

(** [create ~capacity] is an empty pool with [capacity] frames.
    @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> t

(** [access pool page] records an access, faulting the page in (with LRU
    eviction) when non-resident. Every access also feeds the global
    metrics registry ([bufpool.hits] / [bufpool.faults] /
    [bufpool.evictions]). *)
val access : t -> int -> unit

val faults : t -> int
val hits : t -> int

(** [misses pool] is a synonym for {!faults} — the miss side of the
    hit/miss pair. *)
val misses : t -> int

(** [evictions pool] counts LRU evictions since creation/reset. *)
val evictions : t -> int

(** [reset pool] clears residency and per-pool counters (global metrics
    are left alone). *)
val reset : t -> unit
