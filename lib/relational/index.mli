(** Secondary indexes: hash (equality) and ordered (range) multimaps from
    key rows to row ids. Maintained by {!Table} on every DML operation;
    they never own the data. *)

type kind = Hash | Ordered

type t

(** [create ~name ~cols kind] is an empty index over the key column
    positions [cols] of the indexed table. Bumps the global epoch. *)
val create : name:string -> cols:int array -> kind -> t

(** [epoch ()] is the global index epoch: bumped whenever an index is
    created or dropped anywhere. Cached fetch plans bake index choices in
    at compile time and record this; a moved epoch invalidates them. *)
val epoch : unit -> int

(** [bump_epoch ()] advances the global index epoch. *)
val bump_epoch : unit -> unit

val name : t -> string
val cols : t -> int array
val kind : t -> kind

(** [key_of_row t row] extracts the index key from a full table row. *)
val key_of_row : t -> Row.t -> Row.t

(** [insert t row rowid] registers [rowid] under [row]'s key. *)
val insert : t -> Row.t -> int -> unit

(** [remove t row rowid] unregisters [rowid] from [row]'s key. *)
val remove : t -> Row.t -> int -> unit

(** [lookup t key] is the row ids whose key equals [key]. *)
val lookup : t -> Row.t -> int list

(** [range t ?lo ?hi ()] enumerates row ids with keys in the interval.
    @raise Invalid_argument on hash indexes. *)
val range : t -> ?lo:[ `Incl of Row.t | `Excl of Row.t ] -> ?hi:[ `Incl of Row.t | `Excl of Row.t ] -> unit -> int list

(** [distinct_keys t] counts distinct keys currently present. *)
val distinct_keys : t -> int

val clear : t -> unit
