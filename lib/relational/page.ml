(* Simulated page layouts.

   A layout assigns every row of every table to a page id. Two policies are
   provided, mirroring the clustering discussion in the paper (§4):

   - [table_clustered]: each table fills its own run of pages in row order —
     the "naive table clustering" of relational systems.
   - [co_clustered]: pages interleave a parent row with its children across
     relationships (like Starburst's IMS attachment / DB2 catalog clusters),
     so that extracting a composite object touches far fewer pages.

   Rows are identified globally by (table name, rowid). [rows_per_page]
   abstracts page size; all rows are treated as equal width, which keeps
   fault counts interpretable (the paper's claim is about locality, not
   variable-length record packing). *)

type rowref = string * int (* table name, rowid *)

type t = {
  pages : (rowref, int) Hashtbl.t;
  mutable next_page : int;
  rows_per_page : int;
}

let create ~rows_per_page =
  if rows_per_page <= 0 then invalid_arg "Page.create";
  { pages = Hashtbl.create 1024; next_page = 0; rows_per_page }

(** [page_of layout table rowid] is the page holding that row; rows never
    assigned by the layout (e.g. inserted after layout time) land on a
    per-table overflow page. *)
let page_of layout table rowid =
  match Hashtbl.find_opt layout.pages (Table.name table, rowid) with
  | Some p -> p
  | None -> -1 - Hashtbl.hash (Table.name table) mod 1024

(** [page_count layout] is the number of pages allocated so far. *)
let page_count layout = layout.next_page

let place layout seq =
  (* [seq] enumerates rowrefs in intended storage order; chunks of
     [rows_per_page] share a page. *)
  let filled = ref 0 in
  let page = ref layout.next_page in
  Seq.iter
    (fun rowref ->
      if not (Hashtbl.mem layout.pages rowref) then begin
        if !filled >= layout.rows_per_page then begin
          incr page;
          filled := 0
        end;
        Hashtbl.replace layout.pages rowref !page;
        incr filled
      end)
    seq;
  layout.next_page <- !page + (if !filled > 0 then 1 else 0)

(** [table_clustered ~rows_per_page tables] lays each table out contiguously
    in row-id order. *)
let table_clustered ~rows_per_page tables =
  let layout = create ~rows_per_page in
  List.iter
    (fun table ->
      let refs = List.to_seq (Table.rowids table) |> Seq.map (fun rid -> (Table.name table, rid)) in
      place layout refs)
    tables;
  layout

(** [co_clustered ~rows_per_page ~order tables] lays rows out in the order
    produced by [order] — typically a parent-children interleaving computed
    from the CO's relationships — then appends any unvisited rows of
    [tables] table-clustered. [order] enumerates [(table, rowid)] pairs. *)
let co_clustered ~rows_per_page ~order tables =
  let layout = create ~rows_per_page in
  place layout (List.to_seq order |> Seq.map (fun (t, rid) -> (Table.name t, rid)));
  List.iter
    (fun table ->
      let refs = List.to_seq (Table.rowids table) |> Seq.map (fun rid -> (Table.name table, rid)) in
      place layout refs)
    tables;
  layout

(** [materialize layout store tables] writes the actual row data into the
    backing store, page by page, in the layout's clustered order: each
    page image is the Bincode encoding of its resident rows (truncated to
    the page size — the layout's fixed [rows_per_page] abstracts packing,
    the store makes the I/O real). Returns the number of pages written. *)
let materialize layout store tables =
  let images = Hashtbl.create 256 in
  List.iter
    (fun table ->
      Table.iter
        (fun rowid row ->
          let pid = page_of layout table rowid in
          if pid >= 0 then begin
          let buf =
            match Hashtbl.find_opt images pid with
            | Some b -> b
            | None ->
              let b = Buffer.create (Page_store.page_bytes store) in
              Hashtbl.replace images pid b;
              b
          in
          Bincode.put_string buf (Table.name table);
          Bincode.put_int buf rowid;
          Bincode.put_row buf row
          end)
        table)
    tables;
  let pages = Hashtbl.fold (fun pid _ acc -> pid :: acc) images [] in
  List.iter
    (fun pid -> Page_store.write store pid (Buffer.to_bytes (Hashtbl.find images pid)))
    (List.sort compare pages);
  Page_store.flush store;
  List.length pages

(** [attach layout pool tables] wires the layout to a buffer pool: every row
    access on [tables] becomes a page access on [pool]. Returns a function
    that detaches the hooks. *)
let attach layout pool tables =
  List.iter
    (fun table ->
      Table.set_touch table (Some (fun rowid -> Buffer_pool.access pool (page_of layout table rowid))))
    tables;
  fun () -> List.iter (fun table -> Table.set_touch table None) tables
