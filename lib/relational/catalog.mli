(** The database catalog: named tables and tabular view definitions.

    View definitions are stored as unbound SQL ASTs and expanded inline by
    the binder; XNF views live in their own registry
    ({!Xnf.View_registry}). Names are case-insensitive. *)

type view = { view_name : string; view_query : Sql_ast.select }

type t

exception Unknown_table of string
exception Duplicate_name of string

val create : unit -> t

(** [version cat] is the schema version: a counter bumped by every DDL
    change (table/view added or dropped). Cached fetch plans record it and
    are invalidated when it moves. *)
val version : t -> int

(** @raise Duplicate_name when the name is taken by a table or view. *)
val add_table : t -> Table.t -> unit

(** [create_table cat ~name schema] creates, registers and returns a fresh
    table. *)
val create_table : t -> name:string -> Schema.t -> Table.t

(** @raise Unknown_table when absent. *)
val table : t -> string -> Table.t

val table_opt : t -> string -> Table.t option

(** @raise Unknown_table when absent. *)
val drop_table : t -> string -> unit

(** @raise Duplicate_name when the name is taken. *)
val add_view : t -> name:string -> Sql_ast.select -> unit

val view_opt : t -> string -> view option
val drop_view : t -> string -> unit

(** [views cat] lists registered tabular views, sorted by name. *)
val views : t -> view list

(** [set_version cat v] forces the schema version (recovery only). *)
val set_version : t -> int -> unit

(** [reset_storage cat] drops every table, tabular view and statistics
    snapshot, keeping virtual ([sys.*]) registrations (recovery's blank
    slate). Bumps the version. *)
val reset_storage : t -> unit

val tables : t -> Table.t list
val table_names : t -> string list

(** [register_virtual cat ~name provider] registers a read-only virtual
    table ([sys.*]) materialized by [provider] on every reference. Does not
    bump the schema version. *)
val register_virtual : t -> name:string -> (unit -> Table.t) -> unit

(** [virtual_opt cat name] materializes the named virtual table, if any. *)
val virtual_opt : t -> string -> Table.t option

val virtual_names : t -> string list

(** [set_stats cat st] stores an ANALYZE snapshot for [st]'s table. *)
val set_stats : t -> Stats.table_stats -> unit

(** [stats_opt cat name] is the last ANALYZE snapshot, fresh or stale. *)
val stats_opt : t -> string -> Stats.table_stats option

(** [fresh_stats_opt cat name] is the snapshot only when collected at the
    live table's current {!Table.version}; [None] when stale or absent. *)
val fresh_stats_opt : t -> string -> Stats.table_stats option

val all_stats : t -> Stats.table_stats list
