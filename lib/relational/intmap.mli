(** Open-addressing int -> int hash map for the execution core's hot
    paths: inline storage, allocation-free lookup and insert (growth
    aside), sentinel-based absence. Keys must be non-negative; there is
    no delete. *)

type t

val absent : int
(** Sentinel returned by {!get} for unbound keys: [-1]. *)

val create : size:int -> t
(** [create ~size] is an empty map presized for about [size] bindings. *)

val length : t -> int

val get : t -> int -> int
(** [get m k] is the value bound to [k], or {!absent} when unbound.
    Allocation-free. *)

val set : t -> int -> int -> unit
(** [set m k v] binds [k] to [v], replacing any previous binding.
    @raise Invalid_argument on a negative key. *)

val iter : (int -> int -> unit) -> t -> unit
