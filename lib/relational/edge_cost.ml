(* Shared edge-cost estimation.

   One cost model serves two callers that must never disagree: the
   planner ([Xnf.Translate.compile_def] picks an access path per
   relationship edge from fresh ANALYZE snapshots) and the static plan
   advisor ([Check.Plan_advisor] annotates compiled plans and raises
   PLAN3xx findings against the same numbers). Everything here is pure
   read-only estimation over the catalog — no queries run, nothing is
   written.

   The model is deliberately coarse (uniform keys, independence, fixed
   default selectivities): base cardinalities and NDVs come from the
   last ANALYZE snapshot when one exists — even a stale one — and fall
   back to live table state otherwise. The planner only trusts the
   numbers when every base table's snapshot is fresh; the advisor reads
   them unconditionally so the PLAN310 drift check reflects recorded
   statistics. *)

let lc = String.lowercase_ascii

(** Edge access paths, in static selection-priority order. *)
type strategy = S_indexed | S_hash | S_generic

let strategy_name = function
  | S_indexed -> "indexed"
  | S_hash -> "hash-batch"
  | S_generic -> "generic"

(* ---- structural shapes ----

   The join structure of each relationship and the derivation shape of
   each node, as extracted by [Xnf.Translate] at compile time (which
   re-exports these types). Shapes carry no closures or data, only
   names: both the planner's pick and the advisor's analysis reason over
   them without executing anything. *)

type edge_shape = {
  es_name : string;
  es_parent : string;  (** parent node name *)
  es_child : string;  (** child node name *)
  es_strategy : strategy;  (** access path selected for this plan *)
  es_child_table : string option;  (** child's base table when the child is simple *)
  es_parent_cols : string list;  (** parent-side equality join columns (node output names) *)
  es_child_cols : string list;  (** child-side equality join columns (base-table names) *)
  es_using : (string * string list) option;
      (** link table and the link-side columns the parent binds, for USING edges *)
  es_indexed : bool;  (** an index chain serves the probe as compiled *)
  es_residual : bool;  (** non-key conjuncts remain after key extraction *)
}

type node_shape = {
  ns_name : string;
  ns_table : string option;  (** base table when the derivation is simple *)
  ns_pred : Expr.t option;  (** combined simple predicate over the base row *)
  ns_query : Sql_ast.select;  (** the (composed) derivation *)
}

(* ---- estimation context ---- *)

type health = [ `Fresh | `Stale of int * int | `Missing | `Unknown ]

(* Per-analysis context: memoizes snapshot-health lookups so staleness
   verdicts (PLAN304, the planner's all-fresh gate) and the estimates
   agree within one pass. *)
type ctx = { cx_db : Db.t; cx_health : (string, health) Hashtbl.t }

let mk_ctx db = { cx_db = db; cx_health = Hashtbl.create 8 }

let health ctx name : health =
  let key = lc name in
  match Hashtbl.find_opt ctx.cx_health key with
  | Some h -> h
  | None ->
    let cat = Db.catalog ctx.cx_db in
    let h =
      match Catalog.table_opt cat key with
      | None -> `Unknown (* tabular view or vanished table: nothing to say *)
      | Some tbl -> (
        match Catalog.stats_opt cat key with
        | None -> `Missing
        | Some st ->
          if st.Stats.ts_version = Table.version tbl then `Fresh
          else `Stale (st.Stats.ts_version, Table.version tbl))
    in
    Hashtbl.replace ctx.cx_health key h;
    h

(* Planner-believed row count: ANALYZE snapshot first (even stale),
   live cardinality otherwise. *)
let rows_est ctx name =
  let cat = Db.catalog ctx.cx_db in
  match Catalog.stats_opt cat (lc name) with
  | Some st -> float_of_int st.Stats.ts_rowcount
  | None -> (
    match Catalog.table_opt cat (lc name) with
    | Some t -> float_of_int (Table.cardinality t)
    | None -> 0.)

(* Planner-believed NDV of one column, >= 1. *)
let ndv ctx name col =
  let cat = Db.catalog ctx.cx_db in
  let snapshot =
    match Catalog.stats_opt cat (lc name) with
    | Some st ->
      Array.fold_left
        (fun acc (cs : Stats.col_stats) -> if cs.Stats.cs_name = lc col then Some cs.Stats.cs_ndv else acc)
        None st.Stats.ts_cols
    | None -> None
  in
  let n =
    match snapshot with
    | Some n -> n
    | None -> (
      match Catalog.table_opt cat (lc name) with
      | None -> 1
      | Some t -> (
        match Schema.find_opt (Table.schema t) (lc col) with
        | Some i -> Table.distinct_estimate t i
        | None -> 1))
  in
  float_of_int (max 1 n)

(* Distinct combinations of [cols], bounded by the table's row count. *)
let key_ndv ctx name cols =
  let rows = Float.max 1. (rows_est ctx name) in
  let product = List.fold_left (fun acc c -> acc *. ndv ctx name c) 1. cols in
  Float.max 1. (Float.min rows product)

(* Estimated extent of one node's derivation. Simple nodes scale the
   base cardinality by the predicate's estimated selectivity; composed
   derivations go through the relational cost model. *)
let derivation_est ctx (ns : node_shape) =
  let cat = Db.catalog ctx.cx_db in
  match ns.ns_table with
  | Some t ->
    let base = rows_est ctx t in
    let sel =
      match ns.ns_pred with
      | None -> 1.
      | Some pred -> (
        try
          let access = Qgm.Access { table = lc t; alias = lc t } in
          let unfiltered = Float.max 1. (Cost.estimate cat access) in
          Cost.estimate cat (Qgm.Select { input = access; pred }) /. unfiltered
        with _ -> 0.1)
    in
    Float.max 0. (base *. sel)
  | None -> ( try Cost.estimate cat (Db.bind_select ctx.cx_db ns.ns_query) with _ -> 0.)

(* Estimated children per probing parent row. *)
let fanout_est ctx (es : edge_shape) ~child_est =
  match (es.es_child_table, es.es_using) with
  | Some ct, Some (link, lcols) when es.es_child_cols <> [] ->
    let link_fan = rows_est ctx link /. key_ndv ctx link lcols in
    let child_fan = child_est /. key_ndv ctx ct es.es_child_cols in
    link_fan *. child_fan
  | Some ct, None when es.es_child_cols <> [] ->
    child_est /. key_ndv ctx ct es.es_child_cols
  | _ ->
    (* No equality key extracted: default join selectivity of 10%. *)
    child_est *. 0.1

(* Candidate rows one index probe scans before residual filtering.

   The indexed FK prober keys on ONE join column — the first equality
   conjunct whose child column carries a single-column index — and
   filters the remaining key conjuncts as residuals. When the key is
   composite that per-probe bucket ([rows / ndv(probe col)]) can far
   exceed the edge's true fanout ([rows / ndv(all cols)]), which is
   exactly the case where a hash build over the full composite key
   wins. USING chains probe on the whole bound key; their scan
   approximates the fanout itself. *)
let cand_fanout ctx (es : edge_shape) ~fanout =
  match (es.es_child_table, es.es_using) with
  | Some ct, None when es.es_child_cols <> [] -> begin
    let cat = Db.catalog ctx.cx_db in
    match Catalog.table_opt cat (lc ct) with
    | None -> fanout
    | Some t -> begin
      let probe_col =
        List.find_opt
          (fun c ->
            match Schema.find_opt (Table.schema t) (lc c) with
            | Some i -> Table.find_index t ~cols:[| i |] <> None
            | None -> false)
          es.es_child_cols
      in
      match probe_col with
      | Some c -> rows_est ctx ct /. ndv ctx ct c
      | None -> fanout
    end
  end
  | _ -> fanout

(* ---- per-edge estimates and costs ---- *)

type edge_est = {
  ee_edge : string;
  ee_frontier : float;  (** est. parent rows probing this edge *)
  ee_child : float;  (** est. child derivation extent *)
  ee_fanout : float;  (** est. children per probing parent row *)
  ee_conns : float;  (** est. connections produced ([frontier * fanout]) *)
  ee_build : float;  (** est. hash build input (child + link extents) *)
  ee_cand_fan : float;  (** est. candidate rows scanned per index probe *)
}

(** [candidates es] are the strategies the compiled shape could support,
    in static selection-priority order. *)
let candidates (es : edge_shape) : strategy list =
  (if es.es_indexed then [ S_indexed ] else [])
  @ (if es.es_child_table <> None && es.es_child_cols <> [] then [ S_hash ] else [])
  @ [ S_generic ]

(** [cost_of ee ~frontier ~conns s] is the estimated row cost of serving
    the edge with [s], parameterized over the frontier/connection counts
    so the adaptive runtime check can re-cost with observed numbers. *)
let cost_of (ee : edge_est) ~frontier ~conns = function
  | S_indexed -> frontier +. Float.max conns (frontier *. Float.max 1. ee.ee_cand_fan)
  | S_hash -> ee.ee_build +. frontier +. conns
  | S_generic -> frontier *. Float.max 1. ee.ee_child

(** [best ee ~candidates ~frontier ~conns] is the cheapest candidate and
    its cost. Ties keep the earlier candidate, i.e. the static
    priority order when [candidates] comes from {!candidates}. *)
let best (ee : edge_est) ~candidates ~frontier ~conns : strategy * float =
  match candidates with
  | [] -> (S_generic, cost_of ee ~frontier ~conns S_generic)
  | c :: cs ->
    List.fold_left
      (fun (bs, bc) s ->
        let x = cost_of ee ~frontier ~conns s in
        if x < bc then (s, x) else (bs, bc))
      (c, cost_of ee ~frontier ~conns c)
      cs

(* Kahn topological order over the shape graph (the advisor and planner
   see the same definition through its shapes). [None] on a cycle —
   recursive schemas have no topo order. *)
let topo_order ~(nodes : node_shape list) ~(shapes : edge_shape list) : string list option =
  let names = List.map (fun ns -> ns.ns_name) nodes in
  let indeg = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace indeg n 0) names;
  List.iter
    (fun es ->
      match Hashtbl.find_opt indeg es.es_child with
      | Some d -> Hashtbl.replace indeg es.es_child (d + 1)
      | None -> ())
    shapes;
  let out = ref [] in
  let remaining = ref names in
  let progress = ref true in
  while !remaining <> [] && !progress do
    let ready, rest = List.partition (fun n -> Hashtbl.find indeg n = 0) !remaining in
    progress := ready <> [];
    List.iter
      (fun n ->
        out := n :: !out;
        List.iter
          (fun es ->
            if es.es_parent = n then
              match Hashtbl.find_opt indeg es.es_child with
              | Some d -> Hashtbl.replace indeg es.es_child (d - 1)
              | None -> ())
          shapes)
      ready;
    remaining := rest
  done;
  if !remaining = [] then Some (List.rev !out) else None

(** [annotate ctx ~nodes ~shapes] estimates every node's reached extent
    and every edge's cost inputs: per-node derivation estimates, then
    reached-extent propagation in topological order (roots keep their
    derivation estimate; a child's reached extent is bounded by its
    derivation and by the connections arriving over incoming edges).
    Recursive schemas have no topo order — fall back to derivation
    estimates, which over-approximate the fixpoint's reach. *)
let annotate ctx ~(nodes : node_shape list) ~(shapes : edge_shape list) :
    (string * float) list * edge_est list =
  let der = List.map (fun ns -> (ns.ns_name, derivation_est ctx ns)) nodes in
  let der_of n = try List.assoc n der with Not_found -> 0. in
  let reached = Hashtbl.create 8 in
  let reached_of n = Option.value ~default:(der_of n) (Hashtbl.find_opt reached n) in
  (match topo_order ~nodes ~shapes with
  | None -> List.iter (fun (n, e) -> Hashtbl.replace reached n e) der
  | Some order ->
    List.iter
      (fun n ->
        let est =
          match List.filter (fun es -> es.es_child = n) shapes with
          | [] -> der_of n
          | inc ->
            let arriving =
              List.fold_left
                (fun acc es ->
                  acc +. (reached_of es.es_parent *. fanout_est ctx es ~child_est:(der_of n)))
                0. inc
            in
            Float.min (der_of n) arriving
        in
        Hashtbl.replace reached n est)
      order);
  let node_ests = List.map (fun ns -> (ns.ns_name, reached_of ns.ns_name)) nodes in
  let edge_ests =
    List.map
      (fun es ->
        let frontier = reached_of es.es_parent in
        let child = der_of es.es_child in
        let fanout = fanout_est ctx es ~child_est:child in
        let build =
          match es.es_using with Some (link, _) -> child +. rows_est ctx link | None -> child
        in
        { ee_edge = es.es_name; ee_frontier = frontier; ee_child = child; ee_fanout = fanout;
          ee_conns = frontier *. fanout; ee_build = build;
          ee_cand_fan = cand_fanout ctx es ~fanout })
      shapes
  in
  (node_ests, edge_ests)
