(* The engine facade: a database session.

   [exec] takes SQL text through the full pipeline of Fig. 8 — parse, bind
   (semantic checking), query rewrite, plan optimization, execution — and
   is also the entry point the XNF layer and the "regular SQL interface"
   baseline call into. Rewrite can be disabled per session for the E7
   ablation; [stmt_count]/[rows_touched] feed the benchmark harness. *)

type t = {
  catalog : Catalog.t;
  txn : Txn.t;
  mutable rewrite_enabled : bool;
  mutable stmt_count : int;  (** statements executed through [exec]/[query] *)
  mutable data_dir : string option;  (** durable home: wal.log + checkpoint.db *)
  mutable ckpt_extra : (unit -> (string * string) list) option;
      (** upper-layer checkpoint sections (the XNF view registry) *)
  mutable ext_handler : (tag:string -> payload:string -> unit) option;
      (** upper-layer consumer of recovered R_ext records / sections *)
  mutable pending_ext : (string * string) list;
      (** recovered ext payloads awaiting a handler, oldest first *)
}

type result = { rschema : Schema.t; rrows : Row.t list }

type exec_result =
  | Rows of result
  | Affected of int
  | Done of string  (** DDL / transaction-control acknowledgement *)

exception Exec_error of string

let err fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

let m_stmts = Obs.Metrics.counter "db.stmts"
let m_rows_returned = Obs.Metrics.counter "db.rows_returned"
let m_recoveries = Obs.Metrics.counter "recovery.recoveries"
let m_replayed = Obs.Metrics.counter "recovery.wal_replayed"
let g_ckpt_lsn = Obs.Metrics.gauge "recovery.checkpoint_lsn"

(* ---- durability: checkpoint + recovery ---- *)

let wal_file dir = Filename.concat dir "wal.log"
let ckpt_file dir = Filename.concat dir "checkpoint.db"

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

type recovery_stats = {
  rs_checkpoint_lsn : int;
  rs_replayed : int;
  rs_truncated_bytes : int;
}

let set_checkpoint_extra db f = db.ckpt_extra <- f

(* ---- dictionary persistence ----

   The value dictionary travels in its own checkpoint section: caches and
   materialized results hold dictionary-encoded rows, so a recovered
   process must re-intern the same entries in the same slot order before
   anything re-encodes. [Dict.restore] is idempotent and append-only, so
   re-recovering a warm session never relocates an id. *)

let dict_section_tag = "xnf.dict"

let dict_section_payload () =
  let entries = Dict.snapshot () in
  let b = Buffer.create (64 + (8 * Array.length entries)) in
  Bincode.put_int b (Array.length entries);
  Array.iter (Bincode.put_value b) entries;
  Buffer.contents b

let restore_dict_section payload =
  let r = Bincode.reader payload in
  let n = Bincode.get_int r in
  Dict.restore (Array.init n (fun _ -> Bincode.get_value r))

(* Recovered ext payloads are delivered in original order; when no handler
   is installed yet (the XNF layer attaches after [create]) they queue in
   [pending_ext] and flush when the handler arrives. *)
let deliver_ext db items =
  match db.ext_handler with
  | Some h -> List.iter (fun (tag, payload) -> h ~tag ~payload) items
  | None -> db.pending_ext <- db.pending_ext @ items

let set_ext_handler db h =
  db.ext_handler <- h;
  match h with
  | Some f when db.pending_ext <> [] ->
    let items = db.pending_ext in
    db.pending_ext <- [];
    List.iter (fun (tag, payload) -> f ~tag ~payload) items
  | _ -> ()

(** [recover db] rebuilds the logical state from the data directory: load
    the last checkpoint, truncate the WAL's torn tail, replay records past
    the checkpoint LSN to the last committed transaction, re-attach the
    log, and floor every schema/table version strictly above its
    pre-recovery value so cached plans and results invalidate. *)
let recover db =
  match db.data_dir with
  | None -> err "no data directory attached (open the session with a data dir)"
  | Some dir ->
    if Txn.in_txn db.txn then err "cannot recover inside a transaction";
    let prev_tables =
      List.map
        (fun t -> (String.lowercase_ascii (Table.name t), Table.version t))
        (Catalog.tables db.catalog)
    in
    let prev_cat = Catalog.version db.catalog in
    Wal.close (Txn.wal db.txn);
    Catalog.reset_storage db.catalog;
    db.pending_ext <- [];
    let ck_lsn, sections =
      match Checkpoint.read ~path:(ckpt_file dir) with
      | None -> (0, [])
      | Some im ->
        Checkpoint.apply im db.catalog;
        (im.Checkpoint.im_lsn, im.Checkpoint.im_sections)
    in
    (* re-intern the dictionary before any replay/re-encode can mint ids *)
    let dict_sections, sections =
      List.partition (fun (tag, _) -> String.equal tag dict_section_tag) sections
    in
    List.iter (fun (_, payload) -> restore_dict_section payload) dict_sections;
    let loaded = Wal.load ~path:(wal_file dir) in
    if loaded.Wal.ld_total > loaded.Wal.ld_valid then
      Wal.truncate_path ~path:(wal_file dir) loaded.Wal.ld_valid;
    let exts = ref [] in
    let replayable =
      List.filter (fun (lsn, _) -> lsn > ck_lsn) loaded.Wal.ld_records
    in
    Wal.replay_records
      ~on_ext:(fun ~tag ~payload -> exts := (tag, payload) :: !exts)
      db.catalog (List.map snd replayable);
    let max_lsn =
      List.fold_left (fun acc (lsn, _) -> max acc lsn) ck_lsn loaded.Wal.ld_records
    in
    Txn.swap_wal db.txn (Wal.open_file ~path:(wal_file dir) ~lsn:max_lsn);
    List.iter
      (fun t ->
        match List.assoc_opt (String.lowercase_ascii (Table.name t)) prev_tables with
        | Some prev when Table.version t <= prev -> Table.set_version t (prev + 1)
        | _ -> ())
      (Catalog.tables db.catalog);
    if Catalog.version db.catalog <= prev_cat then
      Catalog.set_version db.catalog (prev_cat + 1);
    Index.bump_epoch ();
    deliver_ext db (sections @ List.rev !exts);
    Obs.Metrics.incr m_recoveries;
    Obs.Metrics.incr ~by:(List.length replayable) m_replayed;
    Obs.Metrics.set g_ckpt_lsn (float_of_int ck_lsn);
    { rs_checkpoint_lsn = ck_lsn;
      rs_replayed = List.length replayable;
      rs_truncated_bytes = loaded.Wal.ld_total - loaded.Wal.ld_valid }

(** [checkpoint db] snapshots the whole logical state to
    [checkpoint.db] (atomic tmp+rename) and truncates the WAL, whose
    history the snapshot absorbs. Returns the checkpoint LSN. *)
let checkpoint db =
  match db.data_dir with
  | None -> err "no data directory attached (open the session with a data dir)"
  | Some dir ->
    if Txn.in_txn db.txn then err "cannot checkpoint inside a transaction";
    let wal = Txn.wal db.txn in
    Wal.sync wal;
    let sections =
      (dict_section_tag, dict_section_payload ())
      :: (match db.ckpt_extra with None -> [] | Some f -> f ())
    in
    let image = Checkpoint.of_catalog db.catalog ~lsn:(Wal.lsn wal) ~sections in
    Checkpoint.write ~path:(ckpt_file dir) image;
    Wal.truncate_file wal;
    Obs.Metrics.set g_ckpt_lsn (float_of_int image.Checkpoint.im_lsn);
    image.Checkpoint.im_lsn

(** [create ?data_dir ()] is a fresh database session. With [data_dir]
    the session is durable: the directory is created if needed, an
    existing checkpoint/WAL pair is recovered, and all further changes
    are logged to [data_dir]/wal.log. *)
let create ?data_dir () =
  let catalog = Catalog.create () in
  Sys_catalog.install catalog;
  let db =
    { catalog; txn = Txn.create catalog; rewrite_enabled = true; stmt_count = 0;
      data_dir; ckpt_extra = None; ext_handler = None; pending_ext = [] }
  in
  (match data_dir with
  | None -> ()
  | Some dir ->
    mkdir_p dir;
    if Sys.file_exists (ckpt_file dir) || Sys.file_exists (wal_file dir) then
      ignore (recover db)
    else Txn.swap_wal db.txn (Wal.open_file ~path:(wal_file dir) ~lsn:0));
  db

(** [data_dir db] is the attached durable directory, if any. *)
let data_dir db = db.data_dir

(** [with_statement db f] runs [f] under the implicit statement-commit
    envelope (see {!Txn.statement}) — multi-record callers outside
    [exec] (the XNF udi layer) use it to keep frame boundaries
    statement-consistent. *)
let with_statement db f = Txn.statement db.txn f

(** [catalog db] exposes the catalog (for the XNF layer and tests). *)
let catalog db = db.catalog

(** [txn db] exposes the transaction manager. *)
let txn db = db.txn

(** [set_rewrite db flag] enables/disables the QGM rewrite phase. *)
let set_rewrite db flag = db.rewrite_enabled <- flag

(** [stmt_count db] counts statements executed so far (the per-call cost
    the XNF cache avoids — measured in E1/E2). *)
let stmt_count db = db.stmt_count

(* the binder's subquery-compile callback: optimize lazily, memoize
   uncorrelated results *)
let rec compile_qgm db qgm =
  let plan = lazy (Optimizer.optimize ~rewrite:db.rewrite_enabled db.catalog qgm) in
  let memo = ref None in
  fun (outer : Row.t) ->
    let plan = Lazy.force plan in
    if Plan.has_params plan then Plan.run (Plan.subst_params outer plan)
    else begin
      match !memo with
      | Some rows -> List.to_seq rows
      | None ->
        let rows = List.of_seq (Plan.run plan) in
        memo := Some rows;
        List.to_seq rows
    end

(** [bind_env db] is a binder environment for this session. *)
and bind_env db = Binder.make_env db.catalog ~compile:(compile_qgm db)

(** [bind_select db q] binds a parsed SELECT to QGM and runs the post-bind
    validation hook on the result. *)
let bind_select db q =
  let qgm = Binder.bind (bind_env db) q in
  !Hooks.post_bind db.catalog qgm;
  qgm

(* rewrite + lower, each under its pipeline span, with the stage-boundary
   validation hooks run on each stage's output *)
let plan_of_qgm db qgm =
  let qgm =
    if db.rewrite_enabled then
      Obs.Trace.with_span "rewrite" (fun () -> Rewrite.rewrite db.catalog qgm)
    else qgm
  in
  !Hooks.post_rewrite db.catalog qgm;
  let plan = Obs.Trace.with_span "optimize" (fun () -> Optimizer.lower db.catalog qgm) in
  !Hooks.post_optimize db.catalog plan;
  plan

(** [run_qgm db qgm] optimizes and runs a QGM tree (the XNF translator's
    entry point). The result is materialized inside the "execute" span so
    per-stage timings are attributed correctly; every current caller
    consumes the sequence eagerly anyway. *)
let run_qgm db qgm =
  let plan = plan_of_qgm db qgm in
  Obs.Trace.with_span "execute" (fun () ->
      let rows = List.of_seq (Plan.run plan) in
      Obs.Trace.add_meta "rows" (string_of_int (List.length rows));
      Obs.Metrics.incr ~by:(List.length rows) m_rows_returned;
      List.to_seq rows)

(** [query_ast db q] executes a parsed SELECT. *)
let query_ast db q =
  db.stmt_count <- db.stmt_count + 1;
  Obs.Metrics.incr m_stmts;
  Obs.Trace.with_span "sql.query" (fun () ->
      let qgm = Obs.Trace.with_span "semantic" (fun () -> bind_select db q) in
      let schema = Qgm.schema_of db.catalog qgm in
      { rschema = schema; rrows = List.of_seq (run_qgm db qgm) })

(** [query db sql] parses and executes a SELECT, returning all rows. *)
let query db sql =
  query_ast db (Obs.Trace.with_span "parse" (fun () -> Sql_parser.parse_select sql))

(** [explain_ast db q] returns the rewritten QGM and physical plan of a
    parsed SELECT as text. *)
let explain_ast db q =
  let qgm = bind_select db q in
  let rewritten =
    if db.rewrite_enabled then Rewrite.rewrite db.catalog qgm else qgm
  in
  !Hooks.post_rewrite db.catalog rewritten;
  let plan = Optimizer.lower db.catalog rewritten in
  !Hooks.post_optimize db.catalog plan;
  Fmt.str "QGM:@.%sPlan:@.%s" (Qgm.to_string rewritten) (Plan.to_string plan)

(** [explain db sql] parses a SELECT and returns its plans as text. *)
let explain db sql = explain_ast db (Sql_parser.parse_select sql)

(** [explain_analyze_ast db q] executes a parsed SELECT under the analyzed
    executor and reports per-operator actual rows/time plus the pipeline
    span tree. *)
let explain_analyze_ast db q =
  db.stmt_count <- db.stmt_count + 1;
  Obs.Metrics.incr m_stmts;
  let rows, analyzed =
    Obs.Trace.with_span "sql.query" (fun () ->
        let qgm = Obs.Trace.with_span "semantic" (fun () -> bind_select db q) in
        let plan = plan_of_qgm db qgm in
        let seq, analyzed = Plan.run_analyzed plan in
        let rows =
          Obs.Trace.with_span "execute" (fun () ->
              let rows = List.of_seq seq in
              Obs.Trace.add_meta "rows" (string_of_int (List.length rows));
              rows)
        in
        (rows, analyzed))
  in
  let b = Buffer.create 256 in
  Buffer.add_string b "Plan (actual):\n";
  Buffer.add_string b (Plan.analyzed_to_string analyzed);
  (match Obs.Trace.last () with
  | Some sp ->
    Buffer.add_string b "Stages:\n";
    Buffer.add_string b (Obs.Trace.to_string sp)
  | None -> ());
  Buffer.add_string b (Printf.sprintf "(%d rows)\n" (List.length rows));
  Buffer.contents b

(** [explain_analyze db sql] parses a SELECT, runs it instrumented, and
    returns the report. *)
let explain_analyze db sql =
  explain_analyze_ast db
    (Obs.Trace.with_span "parse" (fun () -> Sql_parser.parse_select sql))

(* ---- DML helpers ---- *)

let eval_const db (e : Sql_ast.expr) : Value.t =
  let bound = Binder.bind_expr (bind_env db) (Schema.make []) e in
  Expr.eval [||] bound

let check_pk_unique table row ~except =
  match Table.primary_key table with
  | None -> ()
  | Some cols -> begin
    let key = Row.project row cols in
    if Array.exists Value.is_null key then
      err "NULL in primary key of %s" (Table.name table);
    match Table.find_index table ~cols with
    | None -> ()
    | Some idx ->
      let hits = Index.lookup idx key in
      let hits = match except with None -> hits | Some rid -> List.filter (fun i -> i <> rid) hits in
      if hits <> [] then
        err "duplicate primary key %s in %s" (Row.to_string key) (Table.name table)
  end

(** [insert_row db table row] inserts with PK enforcement and WAL logging;
    returns the new rowid. Used by the executor and by the XNF udi layer. *)
let insert_row db table row =
  check_pk_unique table row ~except:None;
  let rowid = Table.insert table row in
  Txn.log_dml db.txn (Wal.R_insert { table = Table.name table; rowid; row });
  rowid

(** [delete_row db table rowid] deletes with WAL logging; returns whether a
    live row was removed. *)
let delete_row db table rowid =
  match Table.delete table rowid with
  | None -> false
  | Some row ->
    Txn.log_dml db.txn (Wal.R_delete { table = Table.name table; rowid; row });
    true

(** [update_row db table rowid row] updates with PK enforcement and WAL
    logging; returns whether the row existed. *)
let update_row db table rowid row =
  check_pk_unique table row ~except:(Some rowid);
  match Table.update table rowid row with
  | None -> false
  | Some before ->
    Txn.log_dml db.txn (Wal.R_update { table = Table.name table; rowid; before; after = row });
    true

(* rows matching a WHERE clause on a single table, as (rowid, row) *)
let matching_rows db table where =
  let schema = Schema.requalify (Table.name table) (Table.schema table) in
  let pred = Option.map (Binder.bind_expr (bind_env db) schema) where in
  List.filter
    (fun (_, row) ->
      match pred with None -> true | Some p -> Value.is_true (Expr.eval_pred row p))
    (List.of_seq (Table.to_seq table))

(* ---- statement execution ---- *)

let exec_create_table db (name, col_defs) =
  let cols =
    List.map
      (fun cd ->
        Schema.column ~nullable:cd.Sql_ast.cd_nullable cd.Sql_ast.cd_name cd.Sql_ast.cd_ty)
      col_defs
  in
  let table = Catalog.create_table db.catalog ~name (Schema.make cols) in
  let pk_cols =
    List.filteri (fun _ cd -> cd.Sql_ast.cd_primary) col_defs
    |> List.map (fun cd -> Schema.find (Table.schema table) cd.Sql_ast.cd_name)
  in
  if pk_cols <> [] then begin
    let cols = Array.of_list pk_cols in
    Table.set_primary_key table cols;
    ignore (Table.add_index table ~name:(name ^ "_pk") ~cols Index.Hash)
  end;
  Txn.log_meta db.txn
    (Wal.R_create_table { name; schema = Table.schema table; pk = Table.primary_key table });
  Done (Printf.sprintf "created table %s" name)

let exec_stmt_ast db (stmt : Sql_ast.stmt) : exec_result =
  db.stmt_count <- db.stmt_count + 1;
  match stmt with
  | Sql_ast.S_select q ->
    db.stmt_count <- db.stmt_count - 1;
    (* query_ast counts it *)
    Rows (query_ast db q)
  | Sql_ast.S_insert { ins_table; ins_cols; ins_values } ->
    Txn.statement db.txn (fun () ->
        let table = Catalog.table db.catalog ins_table in
        let schema = Table.schema table in
        let positions =
          match ins_cols with
          | None -> List.init (Schema.arity schema) Fun.id
          | Some cols -> List.map (fun c -> Schema.find schema c) cols
        in
        let count = ref 0 in
        List.iter
          (fun exprs ->
            if List.length exprs <> List.length positions then
              err "INSERT arity mismatch on %s" ins_table;
            let row = Array.make (Schema.arity schema) Value.Null in
            List.iter2 (fun pos e -> row.(pos) <- eval_const db e) positions exprs;
            ignore (insert_row db table row);
            incr count)
          ins_values;
        Affected !count)
  | Sql_ast.S_update { upd_table; upd_sets; upd_where } ->
    Txn.statement db.txn (fun () ->
        let table = Catalog.table db.catalog upd_table in
        let schema = Schema.requalify (Table.name table) (Table.schema table) in
        let env = bind_env db in
        let sets =
          List.map (fun (c, e) -> (Schema.find schema c, Binder.bind_expr env schema e)) upd_sets
        in
        let victims = matching_rows db table upd_where in
        List.iter
          (fun (rowid, row) ->
            let row' = Array.copy row in
            List.iter (fun (pos, e) -> row'.(pos) <- Expr.eval row e) sets;
            ignore (update_row db table rowid row'))
          victims;
        Affected (List.length victims))
  | Sql_ast.S_delete { del_table; del_where } ->
    Txn.statement db.txn (fun () ->
        let table = Catalog.table db.catalog del_table in
        let victims = matching_rows db table del_where in
        List.iter (fun (rowid, _) -> ignore (delete_row db table rowid)) victims;
        Affected (List.length victims))
  | Sql_ast.S_create_table { ct_name; ct_cols } -> exec_create_table db (ct_name, ct_cols)
  | Sql_ast.S_create_index { ci_name; ci_table; ci_cols; ci_ordered } ->
    let table = Catalog.table db.catalog ci_table in
    let schema = Table.schema table in
    let cols = Array.of_list (List.map (fun c -> Schema.find schema c) ci_cols) in
    let kind = if ci_ordered then Index.Ordered else Index.Hash in
    ignore (Table.add_index table ~name:ci_name ~cols kind);
    Txn.log_meta db.txn
      (Wal.R_create_index { table = ci_table; index = ci_name; cols; ordered = ci_ordered });
    Done (Printf.sprintf "created index %s" ci_name)
  | Sql_ast.S_create_view { cv_name; cv_query } ->
    (* validate eagerly so errors surface at definition time *)
    ignore (bind_select db cv_query);
    Catalog.add_view db.catalog ~name:cv_name cv_query;
    Txn.log_meta db.txn
      (Wal.R_create_view { name = cv_name; sql = Fmt.str "%a" Sql_ast.pp_select cv_query });
    Done (Printf.sprintf "created view %s" cv_name)
  | Sql_ast.S_drop_table name ->
    Catalog.drop_table db.catalog name;
    Txn.log_meta db.txn (Wal.R_drop_table name);
    Done (Printf.sprintf "dropped table %s" name)
  | Sql_ast.S_drop_view name ->
    Catalog.drop_view db.catalog name;
    Txn.log_meta db.txn (Wal.R_drop_view name);
    Done (Printf.sprintf "dropped view %s" name)
  | Sql_ast.S_drop_index name ->
    let dropped =
      List.exists (fun table -> Table.drop_index table ~name) (Catalog.tables db.catalog)
    in
    if not dropped then err "unknown index %s" name;
    Txn.log_meta db.txn (Wal.R_drop_index name);
    Done (Printf.sprintf "dropped index %s" name)
  | Sql_ast.S_explain q -> Done (explain_ast db q)
  | Sql_ast.S_analyze target ->
    let targets =
      match target with
      | Some name -> [ Catalog.table db.catalog name ]
      | None -> Catalog.tables db.catalog
    in
    List.iter (fun t -> Catalog.set_stats db.catalog (Stats.analyze t)) targets;
    Done (Printf.sprintf "analyzed %d table(s)" (List.length targets))
  | Sql_ast.S_begin ->
    Txn.begin_txn db.txn;
    Done "transaction started"
  | Sql_ast.S_commit ->
    Txn.commit db.txn;
    Done "committed"
  | Sql_ast.S_rollback ->
    Txn.rollback db.txn;
    Done "rolled back"

(** [exec db sql] parses and executes one statement. *)
let exec db sql = exec_stmt_ast db (Sql_parser.parse_stmt sql)

(** [exec_script db sql] executes a ';'-separated script, returning the
    last result. *)
let exec_script db sql =
  let stmts =
    String.split_on_char ';' sql
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match stmts with
  | [] -> Done "empty script"
  | _ -> List.fold_left (fun _ s -> exec db s) (Done "") stmts

(** [rows_of db sql] runs a SELECT and returns only the rows (test
    convenience). *)
let rows_of db sql = (query db sql).rrows
