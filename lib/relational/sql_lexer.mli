(** Hand-written lexer shared by the SQL and XNF parsers, plus the token
    cursor both recursive-descent parsers drive.

    Keywords cover plain SQL and the XNF extensions (OUT OF, TAKE, RELATE,
    SUCH THAT, ...). Identifiers may contain hyphens between letters (the
    paper's [ALL-DEPS] style); [--] starts a line comment; strings use SQL
    [''] escaping.

    Every token carries a {!Srcloc.span}; parse errors include the
    line/column of the offending token. *)

type token =
  | IDENT of string  (** lowercased identifier *)
  | KW of string  (** uppercased keyword *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | SYM of string  (** punctuation / operator, e.g. "(", ",", "<=", "->" *)
  | EOF

exception Parse_error of string

(** [tokenize s] lexes [s] into tokens terminated by [EOF].
    @raise Parse_error on malformed input. *)
val tokenize : string -> token array

(** [tokenize_spanned s] additionally returns the source span of each
    token (the arrays have equal length).
    @raise Parse_error on malformed input. *)
val tokenize_spanned : string -> token array * Srcloc.span array

(** [fingerprint s] is the statement-statistics key for [s]: canonical
    case/spacing with every literal replaced by [?]. Unlexable input falls
    back to its trimmed text. Never raises. *)
val fingerprint : string -> string

(** Mutable cursor with arbitrary lookahead over a token array. [spans] is
    parallel to [toks]; [params] counts the [?] parameter markers consumed
    so far, so slots are numbered in lexical order across the whole
    statement even when the SQL and XNF parsers share the cursor. *)
type cursor = {
  toks : token array;
  spans : Srcloc.span array;
  mutable pos : int;
  mutable params : int;
}

val cursor_of_string : string -> cursor
val token_to_string : token -> string

(** [peek c] / [peek2 c]: current and next token, without consuming. *)

val peek : cursor -> token
val peek2 : cursor -> token

(** [span c] is the source span of the current token. *)
val span : cursor -> Srcloc.span

(** [advance c] consumes and returns the current token ([EOF] sticks). *)
val advance : cursor -> token

(** [error c msg] raises a parse error carrying the current token's
    line/column. *)
val error : cursor -> string -> 'a

(** [accept_kw] / [accept_sym] consume the token if it matches and report
    whether they did; [expect_*] fail instead. *)

val accept_kw : cursor -> string -> bool
val expect_kw : cursor -> string -> unit
val accept_sym : cursor -> string -> bool
val expect_sym : cursor -> string -> unit

(** [expect_ident c] consumes and returns an identifier or fails. *)
val expect_ident : cursor -> string

(** [at_kw] / [at_sym] test the current token without consuming. *)

val at_kw : cursor -> string -> bool
val at_sym : cursor -> string -> bool
