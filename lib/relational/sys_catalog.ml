(* Virtual system catalog: the relational-level sys.* views.

   Each view is a provider thunk registered with {!Catalog} that builds a
   fresh ordinary {!Table.t} from live engine state (metrics registry,
   query-stats aggregator, trace ring, catalog itself) every time a query
   references it. The binder lowers the materialized table to a
   [Qgm.Temp] node, so the full parser -> QGM -> optimizer -> executor
   pipeline applies unchanged and sys.* tables join against base tables
   like any other relation.

   Materialization never bumps the catalog version or any table the
   executor reads through caches — observing the engine must not
   invalidate its plans.

   The engine-level views that need {!Catalog} only ([sys.metrics],
   [sys.statements], ...) live here; views over core-layer state
   ([sys.plans], [sys.fetch_cache]) are registered by [Api.create], which
   can see the caches. *)

let col = Schema.column

let make ~name cols rows =
  let t = Table.create ~name (Schema.make cols) in
  List.iter (fun r -> ignore (Table.insert t r)) rows;
  t

let ms ns = ns /. 1e6

(* sys.metrics: one row per counter or gauge. *)
let metrics () =
  let rows =
    List.map
      (fun (n, v) -> [| Value.Str n; Value.Str "counter"; Value.Float (float_of_int v) |])
      (Obs.Metrics.counters_list ())
    @ List.map
        (fun (n, v) -> [| Value.Str n; Value.Str "gauge"; Value.Float v |])
        (Obs.Metrics.gauges_list ())
  in
  make ~name:"sys.metrics"
    [ col "name" Schema.Ty_string; col "kind" Schema.Ty_string; col "value" Schema.Ty_float ]
    rows

(* sys.histograms: one row per bucket of every non-empty histogram; [le]
   is the bucket upper bound in nanoseconds (NULL for the overflow
   bucket), quantiles are interpolated milliseconds repeated on each
   row of the histogram. *)
let histograms () =
  let rows =
    List.concat_map
      (fun (n, h) ->
        if Obs.Metrics.hist_count h = 0 then []
        else begin
          let total = Obs.Metrics.hist_count h in
          let p q = ms (Obs.Metrics.hist_quantile h q) in
          let p50 = p 0.5 and p95 = p 0.95 and p99 = p 0.99 in
          let cum = ref 0 in
          List.map
            (fun (bound, count) ->
              cum := !cum + count;
              [| Value.Str n;
                 (match bound with Some b -> Value.Float b | None -> Value.Null);
                 Value.Int count; Value.Int !cum; Value.Int total;
                 Value.Float (Obs.Metrics.hist_sum h);
                 Value.Float p50; Value.Float p95; Value.Float p99 |])
            (Obs.Metrics.hist_buckets h)
        end)
      (Obs.Metrics.histograms_list ())
  in
  make ~name:"sys.histograms"
    [ col "name" Schema.Ty_string; col "le" Schema.Ty_float; col "count" Schema.Ty_int;
      col "cum_count" Schema.Ty_int; col "total" Schema.Ty_int; col "sum" Schema.Ty_float;
      col "p50_ms" Schema.Ty_float; col "p95_ms" Schema.Ty_float; col "p99_ms" Schema.Ty_float ]
    rows

(* sys.spans: the trace ring flattened pre-order; [root] numbers the root
   spans newest-first, [seq]/[depth] locate a span within its tree. *)
let spans () =
  let rows = ref [] in
  let seq = ref 0 in
  let rec walk root depth (sp : Obs.Trace.span) =
    incr seq;
    let meta =
      String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) sp.Obs.Trace.sp_meta)
    in
    rows :=
      [| Value.Int root; Value.Int !seq; Value.Int depth;
         Value.Str sp.Obs.Trace.sp_name; Value.Float (ms sp.Obs.Trace.sp_elapsed_ns);
         Value.Str meta |]
      :: !rows;
    List.iter (walk root (depth + 1)) sp.Obs.Trace.sp_children
  in
  List.iteri (fun i sp -> seq := 0; walk i 0 sp) (Obs.Trace.recent ());
  make ~name:"sys.spans"
    [ col "root" Schema.Ty_int; col "seq" Schema.Ty_int; col "depth" Schema.Ty_int;
      col "name" Schema.Ty_string; col "elapsed_ms" Schema.Ty_float;
      col "meta" Schema.Ty_string ]
    (List.rev !rows)

(* sys.statements: the per-fingerprint aggregates, most total time first. *)
let statements () =
  let rows =
    List.map
      (fun (e : Obs.Query_stats.entry) ->
        let mean =
          if e.qs_calls = 0 then 0. else e.qs_total_ns /. float_of_int e.qs_calls
        in
        [| Value.Str e.qs_fingerprint; Value.Str e.qs_kind; Value.Int e.qs_calls;
           Value.Int e.qs_errors; Value.Int e.qs_rows; Value.Float (ms e.qs_total_ns);
           Value.Float (ms mean); Value.Float (ms e.qs_min_ns); Value.Float (ms e.qs_max_ns);
           Value.Int e.qs_cache_hits; Value.Int e.qs_cache_misses;
           Value.Int e.qs_hash_probes |])
      (Obs.Query_stats.entries ())
  in
  make ~name:"sys.statements"
    [ col "fingerprint" Schema.Ty_string; col "kind" Schema.Ty_string;
      col "calls" Schema.Ty_int; col "errors" Schema.Ty_int; col "rows" Schema.Ty_int;
      col "total_ms" Schema.Ty_float; col "mean_ms" Schema.Ty_float;
      col "min_ms" Schema.Ty_float; col "max_ms" Schema.Ty_float;
      col "cache_hits" Schema.Ty_int; col "cache_misses" Schema.Ty_int;
      col "hash_probes" Schema.Ty_int ]
    rows

(* sys.slow_queries: the over-threshold ring, newest first. *)
let slow_queries () =
  let rows =
    List.map
      (fun (s : Obs.Query_stats.slow) ->
        [| Value.Int s.sl_seq; Value.Str s.sl_fingerprint; Value.Str s.sl_text;
           Value.Float (ms s.sl_ns); Value.Int s.sl_rows;
           Value.Float (s.sl_at_ns /. 1e9) |])
      (Obs.Query_stats.slow_queries ())
  in
  make ~name:"sys.slow_queries"
    [ col "seq" Schema.Ty_int; col "fingerprint" Schema.Ty_string;
      col "text" Schema.Ty_string; col "elapsed_ms" Schema.Ty_float;
      col "rows" Schema.Ty_int; col "at_s" Schema.Ty_float ]
    rows

(* sys.recovery: the durability counters in one stable two-column shape —
   checkpoints written, recoveries run, WAL records replayed/appended,
   sync calls, torn-tail bytes truncated, last checkpoint LSN. *)
let recovery () =
  let c n = Value.Int (Obs.Metrics.counter_get n) in
  let rows =
    [ [| Value.Str "checkpoints"; c "recovery.checkpoints" |];
      [| Value.Str "recoveries"; c "recovery.recoveries" |];
      [| Value.Str "wal.replayed"; c "recovery.wal_replayed" |];
      [| Value.Str "wal.appends"; c "wal.appends" |];
      [| Value.Str "wal.syncs"; c "wal.syncs" |];
      [| Value.Str "wal.truncated_bytes"; c "wal.truncated_bytes" |];
      [| Value.Str "checkpoint_lsn";
         Value.Int
           (int_of_float
              (Obs.Metrics.gauge_value (Obs.Metrics.gauge "recovery.checkpoint_lsn"))) |] ]
  in
  make ~name:"sys.recovery"
    [ col "name" Schema.Ty_string; col "value" Schema.Ty_int ]
    rows

(* sys.tables: one row per base table; [analyzed] is true only when a
   stats snapshot exists AND is still fresh (collected at the live table
   version). *)
let tables cat () =
  let rows =
    List.map
      (fun t ->
        let name = Table.name t in
        [| Value.Str name; Value.Int (Schema.arity (Table.schema t));
           Value.Int (Table.cardinality t); Value.Int (Table.version t);
           Value.Int (List.length (Table.indexes t));
           Value.Bool (Table.primary_key t <> None);
           Value.Bool (Catalog.fresh_stats_opt cat name <> None) |])
      (List.sort (fun a b -> compare (Table.name a) (Table.name b)) (Catalog.tables cat))
  in
  make ~name:"sys.tables"
    [ col "name" Schema.Ty_string; col "columns" Schema.Ty_int; col "rows" Schema.Ty_int;
      col "version" Schema.Ty_int; col "indexes" Schema.Ty_int;
      col "has_pk" Schema.Ty_bool; col "analyzed" Schema.Ty_bool ]
    rows

(* sys.indexes: one row per secondary index. *)
let indexes cat () =
  let rows =
    List.concat_map
      (fun t ->
        let schema = Table.schema t in
        List.map
          (fun idx ->
            let cols_s =
              String.concat ","
                (List.map
                   (fun i -> (Schema.col schema i).Schema.col_name)
                   (Array.to_list (Index.cols idx)))
            in
            [| Value.Str (Table.name t); Value.Str (Index.name idx);
               Value.Str (match Index.kind idx with Index.Hash -> "hash" | Index.Ordered -> "ordered");
               Value.Str cols_s; Value.Int (Index.distinct_keys idx) |])
          (Table.indexes t))
      (List.sort (fun a b -> compare (Table.name a) (Table.name b)) (Catalog.tables cat))
  in
  make ~name:"sys.indexes"
    [ col "table_name" Schema.Ty_string; col "index_name" Schema.Ty_string;
      col "kind" Schema.Ty_string; col "columns" Schema.Ty_string;
      col "distinct_keys" Schema.Ty_int ]
    rows

(* sys.column_stats: every stored ANALYZE snapshot, one row per column,
   with an explicit [stale] flag (collected version <> live table
   version) — stale statistics are surfaced, never hidden. *)
let column_stats cat () =
  let rows =
    List.concat_map
      (fun (st : Stats.table_stats) ->
        let table_version =
          match Catalog.table_opt cat st.ts_table with
          | Some t -> Some (Table.version t)
          | None -> None
        in
        let stale = table_version <> Some st.ts_version in
        Array.to_list
          (Array.map
             (fun (cs : Stats.col_stats) ->
               let str_of v = match v with
                 | Value.Null -> Value.Null
                 | v -> Value.Str (Value.to_string v)
               in
               let hist =
                 String.concat ","
                   (List.map Value.to_string (Array.to_list cs.cs_hist))
               in
               [| Value.Str st.ts_table; Value.Str cs.cs_name; Value.Int cs.cs_ndv;
                  str_of cs.cs_min; str_of cs.cs_max;
                  Value.Float (Stats.null_frac st cs); Value.Int st.ts_rowcount;
                  Value.Int st.ts_version;
                  (match table_version with Some v -> Value.Int v | None -> Value.Null);
                  Value.Bool stale; Value.Float (st.ts_collected_ns /. 1e9);
                  Value.Str hist |])
             st.ts_cols))
      (Catalog.all_stats cat)
  in
  make ~name:"sys.column_stats"
    [ col "table_name" Schema.Ty_string; col "column_name" Schema.Ty_string;
      col "ndv" Schema.Ty_int; col "min" Schema.Ty_string; col "max" Schema.Ty_string;
      col "null_frac" Schema.Ty_float; col "rowcount" Schema.Ty_int;
      col "collected_version" Schema.Ty_int; col "table_version" Schema.Ty_int;
      col "stale" Schema.Ty_bool; col "collected_at_s" Schema.Ty_float;
      col "histogram" Schema.Ty_string ]
    rows

(** [install cat] registers the relational-level sys.* views on [cat]. *)
let install cat =
  Catalog.register_virtual cat ~name:"sys.metrics" metrics;
  Catalog.register_virtual cat ~name:"sys.histograms" histograms;
  Catalog.register_virtual cat ~name:"sys.spans" spans;
  Catalog.register_virtual cat ~name:"sys.statements" statements;
  Catalog.register_virtual cat ~name:"sys.slow_queries" slow_queries;
  Catalog.register_virtual cat ~name:"sys.recovery" recovery;
  Catalog.register_virtual cat ~name:"sys.tables" (tables cat);
  Catalog.register_virtual cat ~name:"sys.indexes" (indexes cat);
  Catalog.register_virtual cat ~name:"sys.column_stats" (column_stats cat)
