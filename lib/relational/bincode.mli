(** Binary codec shared by the WAL and checkpoint on-disk formats:
    little-endian fixed-width integers, bit-pattern floats,
    length-prefixed strings, tag bytes for sums. Strict decoding — any
    malformed input raises {!Decode_error} (the WAL reader treats it as a
    torn tail; the checkpoint reader as a corrupt snapshot). *)

exception Decode_error of string

(** {2 Encoding, into a [Buffer.t]} *)

val put_int : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_float : Buffer.t -> float -> unit
val put_bool : Buffer.t -> bool -> unit
val put_string : Buffer.t -> string -> unit
val put_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val put_int_array : Buffer.t -> int array -> unit
val put_value : Buffer.t -> Value.t -> unit
val put_row : Buffer.t -> Row.t -> unit
val put_schema : Buffer.t -> Schema.t -> unit

(** {2 Decoding, from a string with a mutable cursor} *)

type reader

(** [reader ?pos s] starts a cursor over [s] (default position 0). *)
val reader : ?pos:int -> string -> reader

(** [pos r] is the current cursor position. *)
val pos : reader -> int

(** [at_end r] is whether the cursor consumed all input. *)
val at_end : reader -> bool

val get_byte : reader -> int
val get_int : reader -> int
val get_u32 : reader -> int
val get_float : reader -> float
val get_bool : reader -> bool
val get_string : reader -> string
val get_option : reader -> (reader -> 'a) -> 'a option
val get_list : reader -> (reader -> 'a) -> 'a list
val get_int_array : reader -> int array
val get_value : reader -> Value.t
val get_row : reader -> Row.t
val get_schema : reader -> Schema.t
