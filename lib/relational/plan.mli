(** Physical plans and their execution.

    Plans are trees of iterator-style operators; {!run} compiles a plan to
    a lazy row sequence. Blocking operators (hash build, sort, group) force
    their input on first demand. Join predicates see the concatenation of
    the left and right rows; NULL equi-join keys never match (SQL
    semantics). *)

type join_kind = Inner | Left | Semi | Anti

(** (function, argument, distinct): [distinct] dedupes argument values per
    group before aggregating (COUNT(DISTINCT x)). *)
type agg_spec = Expr.agg_fn * Expr.t option * bool

type t =
  | Seq_scan of Table.t
  | Index_scan of { table : Table.t; index : Index.t; key : Expr.t list }
      (** point lookup with a key built from literals/parameters *)
  | Values of Row.t list
  | Filter of t * Expr.t
  | Project of t * Expr.t array
  | Nl_join of { kind : join_kind; left : t; right : t; pred : Expr.t option; right_width : int }
  | Index_nl_join of {
      kind : join_kind;
      left : t;
      table : Table.t;
      index : Index.t;
      key_of_left : Expr.t list;  (** evaluated against each left row *)
      extra : Expr.t option;  (** residual predicate over the concat row *)
      right_width : int;
    }
  | Hash_join of {
      kind : join_kind;
      left : t;
      right : t;
      left_keys : Expr.t list;
      right_keys : Expr.t list;
      extra : Expr.t option;
      right_width : int;
    }
  | Group of { input : t; keys : Expr.t list; aggs : agg_spec list }
  | Sort of { input : t; keys : (Expr.t * Sql_ast.order_dir) list }
  | Distinct of t
  | Limit of t * int
  | Union_all of t * t

(** [subst_params env p] replaces every [Expr.Param i] with [env.(i)]
    throughout the plan. *)
val subst_params : Value.t array -> t -> t

(** [has_params p] tests whether any expression still contains parameters
    (used to memoize uncorrelated subplans). *)
val has_params : t -> bool

(** [run p] compiles [p] to a lazy row sequence; the plan must be free of
    parameters. *)
val run : t -> Row.t Seq.t

(** [run_with_params env p] substitutes [env] and runs. *)
val run_with_params : Value.t array -> t -> Row.t Seq.t

val kind_name : join_kind -> string

(** [children p] lists the direct operator inputs of [p]. *)
val children : t -> t list

(** [label p] is the one-line operator header (no children). *)
val label : t -> string

(** [pp] prints an indented physical plan; [to_string] renders it
    (EXPLAIN-style output). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Analyzed execution (EXPLAIN ANALYZE)} *)

(** Per-operator actuals, final once the analyzed sequence is drained. *)
type op_stats = { mutable rows_out : int; mutable elapsed_ns : float }

(** The plan tree annotated with {!op_stats}; [elapsed_ns] is inclusive of
    the operator's inputs (EXPLAIN ANALYZE "actual time"). *)
type analyzed = { a_plan : t; a_stats : op_stats; a_children : analyzed list }

(** [run_analyzed p] is {!run} plus per-operator row/time accounting:
    returns the row sequence and the annotated tree. The shim costs one
    clock pair per pull — a diagnostics path; {!run} stays untouched. *)
val run_analyzed : t -> Row.t Seq.t * analyzed

(** [pp_analyzed] prints the plan with [(rows=N time=T ms)] per operator;
    [analyzed_to_string] renders it. *)

val pp_analyzed : Format.formatter -> analyzed -> unit
val analyzed_to_string : analyzed -> string
