(* Stage-boundary validation hook points.

   The query pipeline (db.ml) invokes these after binding, after the QGM
   rewrite, and after optimizer lowering. They default to no-ops; lib/check
   installs invariant validators here (lib/check depends on this library,
   so the dependency cannot point the other way). Hook bodies may raise to
   abort the statement. *)

let nop_qgm : Catalog.t -> Qgm.t -> unit = fun _ _ -> ()
let nop_plan : Catalog.t -> Plan.t -> unit = fun _ _ -> ()

let post_bind = ref nop_qgm
let post_rewrite = ref nop_qgm
let post_optimize = ref nop_plan

(** [reset ()] restores all hooks to no-ops. *)
let reset () =
  post_bind := nop_qgm;
  post_rewrite := nop_qgm;
  post_optimize := nop_plan
