(* Source locations for diagnostics.

   The shared SQL/XNF lexer attaches one span per token; parsers and the
   static checker (lib/check) carry them into error messages and Diag
   values. Lines and columns are 1-based; a span covers [start, stop) in
   character terms but is rendered by its start position. *)

type span = {
  sp_line : int;  (** 1-based line of the first character *)
  sp_col : int;  (** 1-based column of the first character *)
  sp_end_line : int;
  sp_end_col : int;  (** column one past the last character *)
}

(** [make ~line ~col ~end_line ~end_col] builds a span. *)
let make ~line ~col ~end_line ~end_col =
  { sp_line = line; sp_col = col; sp_end_line = end_line; sp_end_col = end_col }

(** [point ~line ~col] is a zero-width span (end = start). *)
let point ~line ~col = { sp_line = line; sp_col = col; sp_end_line = line; sp_end_col = col }

(** [pp] renders as [line L, column C]. *)
let pp ppf s = Fmt.pf ppf "line %d, column %d" s.sp_line s.sp_col

(** [to_string s] is [pp] as a string. *)
let to_string s = Fmt.str "%a" pp s
