(** Rows are flat arrays of values; row identity inside a table is an
    integer row id (slot index), stable until the row is deleted. *)

type t = Value.t array

type rowid = int

(** [concat a b] is the runtime counterpart of {!Schema.concat}. *)
val concat : t -> t -> t

(** Pointwise {!Value.equal}. *)
val equal : t -> t -> bool

(** Lexicographic {!Value.compare_total}. *)
val compare : t -> t -> int

(** Consistent with {!equal}. *)
val hash : t -> int

(** [project r idxs] extracts the columns at [idxs], in order. *)
val project : t -> int array -> t

(** Encoded rows: the same columns as dense {!Dict} ids — what the
    execution core carries between encode (at base-table scan / build
    time) and decode (at TAKE/projection, cursor delivery, sys.*
    rendering). *)
type enc = int array

val encode : t -> enc
val decode : enc -> t

(** [project_enc e idxs] is {!project} over an encoded row. *)
val project_enc : enc -> int array -> enc

val pp : Format.formatter -> t -> unit
val to_string : t -> string
