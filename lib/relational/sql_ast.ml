(* Unbound SQL abstract syntax.

   This is the parser's output; names are unresolved and expressions are
   untyped. The binder (see {!Binder}) turns it into QGM. The XNF language
   (lib/core) embeds [select] and [expr] wholesale — the CO constructor's
   node definitions are ordinary SQL derivations, per the paper (§3). *)

type expr =
  | E_col of string option * string  (** optionally qualified column ref *)
  | E_lit of Value.t
  | E_cmp of Expr.cmp * expr * expr
  | E_arith of Expr.arith_op * expr * expr
  | E_neg of expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_is_null of expr
  | E_is_not_null of expr
  | E_like of expr * expr
  | E_in_list of expr * expr list
  | E_case of (expr * expr) list * expr option
  | E_fn of string * expr list  (** scalar function or aggregate, resolved at bind time *)
  | E_fn_distinct of string * expr  (** aggregate over distinct inputs, e.g. COUNT(DISTINCT x) *)
  | E_count_star
  | E_exists of select
  | E_in_query of expr * select
  | E_scalar of select  (** scalar subquery *)
  | E_param of int  (** [?] placeholder, numbered in lexical order *)

and select_item =
  | Sel_star  (** [*] *)
  | Sel_table_star of string  (** [t.*] *)
  | Sel_expr of expr * string option  (** expression with optional alias *)

and join_kind = Join_inner | Join_left

and table_ref =
  | From_table of string * string option  (** table or view name, alias *)
  | From_select of select * string  (** derived table with mandatory alias *)
  | From_join of table_ref * join_kind * table_ref * expr option  (** explicit JOIN ... ON *)

and order_dir = Asc | Desc

and set_op = Union_all | Union_distinct

and select = {
  sel_distinct : bool;
  sel_items : select_item list;
  sel_from : table_ref list;  (** comma-separated FROM list *)
  sel_where : expr option;
  sel_group_by : expr list;
  sel_having : expr option;
  sel_unions : (set_op * select) list;
      (** UNION branches, left-associative; branches carry no ORDER BY or
          LIMIT of their own — those of the head select apply to the whole
          chain, as in standard SQL *)
  sel_order_by : (expr * order_dir) list;
  sel_limit : int option;
}

type column_def = {
  cd_name : string;
  cd_ty : Schema.ty;
  cd_nullable : bool;
  cd_primary : bool;  (** PRIMARY KEY marker: implies NOT NULL + hash index *)
}

type stmt =
  | S_select of select
  | S_insert of { ins_table : string; ins_cols : string list option; ins_values : expr list list }
  | S_update of { upd_table : string; upd_sets : (string * expr) list; upd_where : expr option }
  | S_delete of { del_table : string; del_where : expr option }
  | S_create_table of { ct_name : string; ct_cols : column_def list }
  | S_create_index of {
      ci_name : string;
      ci_table : string;
      ci_cols : string list;
      ci_ordered : bool;  (** [USING ORDERED]; default hash *)
    }
  | S_create_view of { cv_name : string; cv_query : select }
  | S_drop_table of string
  | S_drop_view of string
  | S_drop_index of string
  | S_explain of select  (** show the rewritten QGM and the physical plan *)
  | S_analyze of string option  (** collect table/column statistics; [None] = all tables *)
  | S_begin
  | S_commit
  | S_rollback

(** [simple_select items from where] builds a bare SELECT. *)
let simple_select ?(distinct = false) items from where =
  { sel_distinct = distinct; sel_items = items; sel_from = from; sel_where = where;
    sel_group_by = []; sel_having = None; sel_unions = []; sel_order_by = []; sel_limit = None }

(** [select_star_from table] is [SELECT * FROM table]. *)
let select_star_from table = simple_select [ Sel_star ] [ From_table (table, None) ] None

let pp_cmp = Expr.pp_cmp

let arith_sym = function
  | Expr.Add -> "+" | Expr.Sub -> "-" | Expr.Mul -> "*" | Expr.Div -> "/" | Expr.Mod -> "%"

(** [pp_expr] prints an expression in re-parsable SQL syntax. *)
let rec pp_expr ppf = function
  | E_col (None, n) -> Fmt.string ppf n
  | E_col (Some q, n) -> Fmt.pf ppf "%s.%s" q n
  | E_lit v -> Fmt.string ppf (Value.to_sql_literal v)
  | E_cmp (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp_expr a pp_cmp op pp_expr b
  | E_arith (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (arith_sym op) pp_expr b
  | E_neg a -> Fmt.pf ppf "(-%a)" pp_expr a
  | E_and (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_expr a pp_expr b
  | E_or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_expr a pp_expr b
  | E_not a -> Fmt.pf ppf "(NOT %a)" pp_expr a
  | E_is_null a -> Fmt.pf ppf "(%a IS NULL)" pp_expr a
  | E_is_not_null a -> Fmt.pf ppf "(%a IS NOT NULL)" pp_expr a
  | E_like (a, p) -> Fmt.pf ppf "(%a LIKE %a)" pp_expr a pp_expr p
  | E_in_list (a, items) ->
    Fmt.pf ppf "(%a IN (%a))" pp_expr a (Fmt.list ~sep:(Fmt.any ", ") pp_expr) items
  | E_case (branches, else_) ->
    Fmt.pf ppf "CASE";
    List.iter (fun (c, r) -> Fmt.pf ppf " WHEN %a THEN %a" pp_expr c pp_expr r) branches;
    Option.iter (fun e -> Fmt.pf ppf " ELSE %a" pp_expr e) else_;
    Fmt.pf ppf " END"
  | E_fn (name, args) -> Fmt.pf ppf "%s(%a)" name (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | E_fn_distinct (name, arg) -> Fmt.pf ppf "%s(DISTINCT %a)" name pp_expr arg
  | E_count_star -> Fmt.string ppf "COUNT(*)"
  | E_exists q -> Fmt.pf ppf "EXISTS (%a)" pp_select q
  | E_in_query (a, q) -> Fmt.pf ppf "(%a IN (%a))" pp_expr a pp_select q
  | E_scalar q -> Fmt.pf ppf "(%a)" pp_select q
  | E_param _ -> Fmt.string ppf "?"

and pp_item ppf = function
  | Sel_star -> Fmt.string ppf "*"
  | Sel_table_star t -> Fmt.pf ppf "%s.*" t
  | Sel_expr (e, None) -> pp_expr ppf e
  | Sel_expr (e, Some a) -> Fmt.pf ppf "%a AS %s" pp_expr e a

and pp_table_ref ppf = function
  | From_table (n, None) -> Fmt.string ppf n
  | From_table (n, Some a) -> Fmt.pf ppf "%s %s" n a
  | From_select (q, a) -> Fmt.pf ppf "(%a) %s" pp_select q a
  | From_join (l, k, r, on) ->
    let kw = match k with Join_inner -> "JOIN" | Join_left -> "LEFT JOIN" in
    Fmt.pf ppf "%a %s %a" pp_table_ref l kw pp_table_ref r;
    Option.iter (fun e -> Fmt.pf ppf " ON %a" pp_expr e) on

and pp_select ppf q =
  Fmt.pf ppf "SELECT %s%a"
    (if q.sel_distinct then "DISTINCT " else "")
    (Fmt.list ~sep:(Fmt.any ", ") pp_item)
    q.sel_items;
  if q.sel_from <> [] then
    Fmt.pf ppf " FROM %a" (Fmt.list ~sep:(Fmt.any ", ") pp_table_ref) q.sel_from;
  Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) q.sel_where;
  if q.sel_group_by <> [] then
    Fmt.pf ppf " GROUP BY %a" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) q.sel_group_by;
  Option.iter (fun e -> Fmt.pf ppf " HAVING %a" pp_expr e) q.sel_having;
  List.iter
    (fun (op, branch) ->
      Fmt.pf ppf " %s %a"
        (match op with Union_all -> "UNION ALL" | Union_distinct -> "UNION")
        pp_select branch)
    q.sel_unions;
  if q.sel_order_by <> [] then begin
    let pp_key ppf (e, d) =
      Fmt.pf ppf "%a%s" pp_expr e (match d with Asc -> "" | Desc -> " DESC")
    in
    Fmt.pf ppf " ORDER BY %a" (Fmt.list ~sep:(Fmt.any ", ") pp_key) q.sel_order_by
  end;
  Option.iter (fun n -> Fmt.pf ppf " LIMIT %d" n) q.sel_limit

(** [pp_stmt] prints a statement in re-parsable SQL syntax. *)
let pp_stmt ppf = function
  | S_select q -> pp_select ppf q
  | S_insert { ins_table; ins_cols; ins_values } ->
    Fmt.pf ppf "INSERT INTO %s" ins_table;
    Option.iter (fun cols -> Fmt.pf ppf " (%a)" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) cols) ins_cols;
    let pp_tuple ppf vs = Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) vs in
    Fmt.pf ppf " VALUES %a" (Fmt.list ~sep:(Fmt.any ", ") pp_tuple) ins_values
  | S_update { upd_table; upd_sets; upd_where } ->
    let pp_set ppf (c, e) = Fmt.pf ppf "%s = %a" c pp_expr e in
    Fmt.pf ppf "UPDATE %s SET %a" upd_table (Fmt.list ~sep:(Fmt.any ", ") pp_set) upd_sets;
    Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) upd_where
  | S_delete { del_table; del_where } ->
    Fmt.pf ppf "DELETE FROM %s" del_table;
    Option.iter (fun e -> Fmt.pf ppf " WHERE %a" pp_expr e) del_where
  | S_create_table { ct_name; ct_cols } ->
    let pp_col ppf cd =
      Fmt.pf ppf "%s %s%s%s" cd.cd_name (Schema.ty_to_string cd.cd_ty)
        (if cd.cd_primary then " PRIMARY KEY" else "")
        (if (not cd.cd_nullable) && not cd.cd_primary then " NOT NULL" else "")
    in
    Fmt.pf ppf "CREATE TABLE %s (%a)" ct_name (Fmt.list ~sep:(Fmt.any ", ") pp_col) ct_cols
  | S_create_index { ci_name; ci_table; ci_cols; ci_ordered } ->
    Fmt.pf ppf "CREATE INDEX %s ON %s (%a)%s" ci_name ci_table
      (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
      ci_cols
      (if ci_ordered then " USING ORDERED" else "")
  | S_create_view { cv_name; cv_query } -> Fmt.pf ppf "CREATE VIEW %s AS %a" cv_name pp_select cv_query
  | S_drop_table n -> Fmt.pf ppf "DROP TABLE %s" n
  | S_drop_view n -> Fmt.pf ppf "DROP VIEW %s" n
  | S_drop_index n -> Fmt.pf ppf "DROP INDEX %s" n
  | S_explain q -> Fmt.pf ppf "EXPLAIN %a" pp_select q
  | S_analyze None -> Fmt.string ppf "ANALYZE"
  | S_analyze (Some t) -> Fmt.pf ppf "ANALYZE %s" t
  | S_begin -> Fmt.string ppf "BEGIN"
  | S_commit -> Fmt.string ppf "COMMIT"
  | S_rollback -> Fmt.string ppf "ROLLBACK"

(** [subst_params_expr env e] replaces every [E_param i] with the literal
    [env.(i)]. @raise Invalid_argument when a slot is out of range. *)
let rec subst_params_expr (env : Value.t array) (e : expr) : expr =
  let s = subst_params_expr env in
  let sq = subst_params_select env in
  match e with
  | E_param i ->
    if i < 0 || i >= Array.length env then
      invalid_arg (Printf.sprintf "parameter ?%d has no bound value (%d given)" (i + 1)
           (Array.length env));
    E_lit env.(i)
  | E_col _ | E_lit _ | E_count_star -> e
  | E_cmp (op, a, b) -> E_cmp (op, s a, s b)
  | E_arith (op, a, b) -> E_arith (op, s a, s b)
  | E_neg a -> E_neg (s a)
  | E_and (a, b) -> E_and (s a, s b)
  | E_or (a, b) -> E_or (s a, s b)
  | E_not a -> E_not (s a)
  | E_is_null a -> E_is_null (s a)
  | E_is_not_null a -> E_is_not_null (s a)
  | E_like (a, p) -> E_like (s a, s p)
  | E_in_list (a, items) -> E_in_list (s a, List.map s items)
  | E_case (branches, else_) ->
    E_case (List.map (fun (c, r) -> (s c, s r)) branches, Option.map s else_)
  | E_fn (name, args) -> E_fn (name, List.map s args)
  | E_fn_distinct (name, arg) -> E_fn_distinct (name, s arg)
  | E_exists q -> E_exists (sq q)
  | E_in_query (a, q) -> E_in_query (s a, sq q)
  | E_scalar q -> E_scalar (sq q)

(** [subst_params_select env q] substitutes parameters through every
    expression position of [q], including derived tables, subqueries and
    UNION branches. *)
and subst_params_select env (q : select) : select =
  let s = subst_params_expr env in
  let sq = subst_params_select env in
  let item = function
    | (Sel_star | Sel_table_star _) as it -> it
    | Sel_expr (e, a) -> Sel_expr (s e, a)
  in
  let rec tref = function
    | From_table _ as t -> t
    | From_select (sub, a) -> From_select (sq sub, a)
    | From_join (l, k, r, on) -> From_join (tref l, k, tref r, Option.map s on)
  in
  { q with
    sel_items = List.map item q.sel_items;
    sel_from = List.map tref q.sel_from;
    sel_where = Option.map s q.sel_where;
    sel_group_by = List.map s q.sel_group_by;
    sel_having = Option.map s q.sel_having;
    sel_unions = List.map (fun (op, b) -> (op, sq b)) q.sel_unions;
    sel_order_by = List.map (fun (e, d) -> (s e, d)) q.sel_order_by }

(** [count_params_expr e] / [count_params_select q]: number of parameter
    slots, i.e. 1 + the highest [E_param] index (0 when none). *)
let rec count_params_expr (e : expr) : int =
  let c = count_params_expr in
  let cq = count_params_select in
  let cl es = List.fold_left (fun acc x -> max acc (c x)) 0 es in
  match e with
  | E_param i -> i + 1
  | E_col _ | E_lit _ | E_count_star -> 0
  | E_cmp (_, a, b) | E_arith (_, a, b) | E_and (a, b) | E_or (a, b) | E_like (a, b) ->
    max (c a) (c b)
  | E_neg a | E_not a | E_is_null a | E_is_not_null a -> c a
  | E_in_list (a, items) -> max (c a) (cl items)
  | E_case (branches, else_) ->
    List.fold_left
      (fun acc (cond, r) -> max acc (max (c cond) (c r)))
      (match else_ with Some e -> c e | None -> 0)
      branches
  | E_fn (_, args) -> cl args
  | E_fn_distinct (_, arg) -> c arg
  | E_exists q -> cq q
  | E_in_query (a, q) -> max (c a) (cq q)
  | E_scalar q -> cq q

and count_params_select (q : select) : int =
  let c = count_params_expr in
  let cq = count_params_select in
  let copt = function Some e -> c e | None -> 0 in
  let item = function Sel_star | Sel_table_star _ -> 0 | Sel_expr (e, _) -> c e in
  let rec tref = function
    | From_table _ -> 0
    | From_select (sub, _) -> cq sub
    | From_join (l, _, r, on) -> max (max (tref l) (tref r)) (copt on)
  in
  let fold f xs = List.fold_left (fun acc x -> max acc (f x)) 0 xs in
  List.fold_left max 0
    [ fold item q.sel_items; fold tref q.sel_from; copt q.sel_where; fold c q.sel_group_by;
      copt q.sel_having; fold (fun (_, b) -> cq b) q.sel_unions;
      fold (fun (e, _) -> c e) q.sel_order_by ]

(** [select_to_string q] renders [q] as SQL text. *)
let select_to_string q = Fmt.str "%a" pp_select q

(** [stmt_to_string s] renders [s] as SQL text. *)
let stmt_to_string s = Fmt.str "%a" pp_stmt s
