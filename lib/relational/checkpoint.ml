(* Checkpoint snapshots.

   A checkpoint serializes the whole logical database — tables with their
   exact slot arrays (tombstones included, so rowid allocation survives),
   primary keys, index definitions, tabular view texts, ANALYZE statistics
   and opaque upper-layer sections (the XNF view registry travels in one)
   — into a single CRC-sealed file:

     magic "XNFCKPT1" | u32 body_len | u32 crc32(body) | body

   Writing is atomic: the image goes to [path ^ ".tmp"], is fsynced, and
   renamed over the target. After a successful write the WAL is truncated
   (its history is absorbed); [im_lsn] records the WAL LSN at snapshot
   time so replay can skip records the snapshot already contains. *)

type table_image = {
  ti_name : string;
  ti_schema : Schema.t;
  ti_pk : int array option;
  ti_version : int;  (** {!Table.version} at snapshot time *)
  ti_slots : Row.t option array;  (** exact slot array, tombstones included *)
  ti_indexes : (string * int array * bool) list;  (** name, key cols, ordered? *)
}

type image = {
  im_lsn : int;  (** WAL LSN at snapshot time *)
  im_tables : table_image list;
  im_views : (string * string) list;  (** name, re-parsable SELECT text *)
  im_stats : Stats.table_stats list;
  im_sections : (string * string) list;  (** opaque upper-layer (tag, payload) *)
}

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

let magic = "XNFCKPT1"
let magic_len = String.length magic

let m_checkpoints = Obs.Metrics.counter "recovery.checkpoints"

(* ---- building an image from a live catalog ---- *)

(** [of_catalog catalog ~lsn ~sections] snapshots the catalog's current
    logical state. *)
let of_catalog catalog ~lsn ~sections =
  let tables =
    List.map
      (fun name ->
        let t = Catalog.table catalog name in
        { ti_name = Table.name t;
          ti_schema = Table.schema t;
          ti_pk = Table.primary_key t;
          ti_version = Table.version t;
          ti_slots = Array.init (Table.slot_count t) (fun i -> Table.slot t i);
          ti_indexes =
            List.rev_map
              (fun idx -> (Index.name idx, Index.cols idx, Index.kind idx = Index.Ordered))
              (Table.indexes t) })
      (Catalog.table_names catalog)
  in
  let views =
    List.map
      (fun (v : Catalog.view) -> (v.Catalog.view_name, Fmt.str "%a" Sql_ast.pp_select v.Catalog.view_query))
      (Catalog.views catalog)
  in
  { im_lsn = lsn; im_tables = tables; im_views = views; im_stats = Catalog.all_stats catalog;
    im_sections = sections }

(* ---- serialization ---- *)

let put_col_stats b (cs : Stats.col_stats) =
  Bincode.put_string b cs.Stats.cs_name;
  Bincode.put_int b cs.Stats.cs_ndv;
  Bincode.put_value b cs.Stats.cs_min;
  Bincode.put_value b cs.Stats.cs_max;
  Bincode.put_int b cs.Stats.cs_nulls;
  Bincode.put_int b (Array.length cs.Stats.cs_hist);
  Array.iter (Bincode.put_value b) cs.Stats.cs_hist

let get_col_stats r : Stats.col_stats =
  let cs_name = Bincode.get_string r in
  let cs_ndv = Bincode.get_int r in
  let cs_min = Bincode.get_value r in
  let cs_max = Bincode.get_value r in
  let cs_nulls = Bincode.get_int r in
  let n = Bincode.get_int r in
  let cs_hist = Array.init n (fun _ -> Bincode.get_value r) in
  { Stats.cs_name; cs_ndv; cs_min; cs_max; cs_nulls; cs_hist }

let put_table_stats b (ts : Stats.table_stats) =
  Bincode.put_string b ts.Stats.ts_table;
  Bincode.put_int b ts.Stats.ts_version;
  Bincode.put_float b ts.Stats.ts_collected_ns;
  Bincode.put_int b ts.Stats.ts_rowcount;
  Bincode.put_int b (Array.length ts.Stats.ts_cols);
  Array.iter (put_col_stats b) ts.Stats.ts_cols

let get_table_stats r : Stats.table_stats =
  let ts_table = Bincode.get_string r in
  let ts_version = Bincode.get_int r in
  let ts_collected_ns = Bincode.get_float r in
  let ts_rowcount = Bincode.get_int r in
  let n = Bincode.get_int r in
  let ts_cols = Array.init n (fun _ -> get_col_stats r) in
  { Stats.ts_table; ts_version; ts_collected_ns; ts_rowcount; ts_cols }

let put_table b ti =
  Bincode.put_string b ti.ti_name;
  Bincode.put_schema b ti.ti_schema;
  Bincode.put_option b Bincode.put_int_array ti.ti_pk;
  Bincode.put_int b ti.ti_version;
  Bincode.put_int b (Array.length ti.ti_slots);
  Array.iter (fun slot -> Bincode.put_option b Bincode.put_row slot) ti.ti_slots;
  Bincode.put_list b
    (fun b (name, cols, ordered) ->
      Bincode.put_string b name;
      Bincode.put_int_array b cols;
      Bincode.put_bool b ordered)
    ti.ti_indexes

let get_table r =
  let ti_name = Bincode.get_string r in
  let ti_schema = Bincode.get_schema r in
  let ti_pk = Bincode.get_option r Bincode.get_int_array in
  let ti_version = Bincode.get_int r in
  let nslots = Bincode.get_int r in
  let ti_slots = Array.init nslots (fun _ -> Bincode.get_option r Bincode.get_row) in
  let ti_indexes =
    Bincode.get_list r (fun r ->
        let name = Bincode.get_string r in
        let cols = Bincode.get_int_array r in
        let ordered = Bincode.get_bool r in
        (name, cols, ordered))
  in
  { ti_name; ti_schema; ti_pk; ti_version; ti_slots; ti_indexes }

let put_pair b (a, c) =
  Bincode.put_string b a;
  Bincode.put_string b c

let get_pair r =
  let a = Bincode.get_string r in
  let c = Bincode.get_string r in
  (a, c)

(** [encode image] is the full file image, header and seal included. *)
let encode image =
  let body = Buffer.create 4096 in
  Bincode.put_int body image.im_lsn;
  Bincode.put_list body put_table image.im_tables;
  Bincode.put_list body put_pair image.im_views;
  Bincode.put_int body (List.length image.im_stats);
  List.iter (put_table_stats body) image.im_stats;
  Bincode.put_list body put_pair image.im_sections;
  let body = Buffer.contents body in
  let b = Buffer.create (String.length body + 16) in
  Buffer.add_string b magic;
  Bincode.put_u32 b (String.length body);
  Bincode.put_u32 b (Crc32.string body);
  Buffer.add_string b body;
  Buffer.contents b

(** [decode s] parses a full file image. @raise Corrupt on any damage. *)
let decode s =
  if String.length s < magic_len + 8 then corrupt "checkpoint too short (%d bytes)" (String.length s);
  if String.sub s 0 magic_len <> magic then corrupt "bad checkpoint magic";
  let r = Bincode.reader ~pos:magic_len s in
  let len = Bincode.get_u32 r in
  let crc = Bincode.get_u32 r in
  if magic_len + 8 + len <> String.length s then
    corrupt "checkpoint length mismatch (%d body bytes expected, %d present)" len
      (String.length s - magic_len - 8);
  if Crc32.update 0 s (magic_len + 8) len <> crc then corrupt "checkpoint CRC mismatch";
  try
    let im_lsn = Bincode.get_int r in
    let im_tables = Bincode.get_list r get_table in
    let im_views = Bincode.get_list r get_pair in
    let nstats = Bincode.get_int r in
    let im_stats = List.init nstats (fun _ -> get_table_stats r) in
    let im_sections = Bincode.get_list r get_pair in
    { im_lsn; im_tables; im_views; im_stats; im_sections }
  with Bincode.Decode_error msg -> corrupt "checkpoint body: %s" msg

(* ---- file I/O ---- *)

(** [write ~path image] writes atomically: tmp file, fsync, rename.
    Counts [recovery.checkpoints]. *)
let write ~path image =
  let tmp = path ^ ".tmp" in
  let bytes = encode image in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.write_substring fd bytes 0 (String.length bytes));
      Unix.fsync fd);
  Unix.rename tmp path;
  (* best-effort directory sync so the rename itself is durable *)
  (try
     let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
     Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () -> Unix.fsync dfd)
   with Unix.Unix_error _ -> ());
  Obs.Metrics.incr m_checkpoints

(** [read ~path] loads a checkpoint image; [None] when the file does not
    exist. @raise Corrupt on damage. *)
let read ~path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Some (decode s)
  end

(** [apply image catalog] restores the snapshot into [catalog] (which
    must not already hold any of the snapshot's names — recovery calls
    {!Catalog.reset_storage} first). Table versions are restored exactly;
    the caller decides whether to bump them further. *)
let apply image catalog =
  List.iter
    (fun ti ->
      let t = Catalog.create_table catalog ~name:ti.ti_name ti.ti_schema in
      (match ti.ti_pk with None -> () | Some cols -> Table.set_primary_key t cols);
      List.iter
        (fun (name, cols, ordered) ->
          ignore (Table.add_index t ~name ~cols (if ordered then Index.Ordered else Index.Hash)))
        ti.ti_indexes;
      Array.iteri
        (fun rowid slot -> match slot with Some row -> Table.install t rowid row | None -> ())
        ti.ti_slots;
      Table.pad_slots t (Array.length ti.ti_slots);
      Table.set_version t ti.ti_version)
    image.im_tables;
  List.iter
    (fun (name, sql) -> Catalog.add_view catalog ~name (Sql_parser.parse_select sql))
    image.im_views;
  List.iter (fun ts -> Catalog.set_stats catalog ts) image.im_stats
