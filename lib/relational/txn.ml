(* Transaction manager: explicit BEGIN/COMMIT/ROLLBACK with WAL-based undo.

   Outside an explicit transaction every statement auto-commits. Inside
   one, DML records accumulate; ROLLBACK undoes them newest-first using the
   before-images in the log. The single-session engine needs no locking;
   the XNF cache layer (lib/core) adds optimistic validation on top via
   table versions. *)

type t = {
  wal : Wal.t;
  catalog : Catalog.t;
  mutable active : int option;  (** current transaction id *)
  mutable next_id : int;
  mutable pending : Wal.record list;  (** records of the active txn, newest first *)
}

exception Txn_error of string

let m_begins = Obs.Metrics.counter "txn.begins"
let m_commits = Obs.Metrics.counter "txn.commits"
let m_aborts = Obs.Metrics.counter "txn.aborts"

(** [create catalog] is a transaction manager logging to a fresh WAL. *)
let create catalog = { wal = Wal.create (); catalog; active = None; next_id = 1; pending = [] }

(** [wal t] exposes the log (for recovery tests and inspection). *)
let wal t = t.wal

(** [in_txn t] is whether an explicit transaction is open. *)
let in_txn t = Option.is_some t.active

(** [begin_txn t] opens a transaction.
    @raise Txn_error if one is already open. *)
let begin_txn t =
  if in_txn t then raise (Txn_error "transaction already in progress");
  let id = t.next_id in
  t.next_id <- id + 1;
  t.active <- Some id;
  t.pending <- [];
  Obs.Metrics.incr m_begins;
  ignore (Wal.append t.wal (Wal.R_begin id))

(** [commit t] commits the open transaction.
    @raise Txn_error if none is open. *)
let commit t =
  match t.active with
  | None -> raise (Txn_error "no transaction in progress")
  | Some id ->
    Obs.Metrics.incr m_commits;
    ignore (Wal.append t.wal (Wal.R_commit id));
    t.active <- None;
    t.pending <- []

(** [rollback t] undoes and closes the open transaction.
    @raise Txn_error if none is open. *)
let rollback t =
  match t.active with
  | None -> raise (Txn_error "no transaction in progress")
  | Some id ->
    Obs.Metrics.incr m_aborts;
    List.iter (Wal.undo_record t.catalog) t.pending;
    ignore (Wal.append t.wal (Wal.R_abort id));
    t.active <- None;
    t.pending <- []

(** [log_dml t r] appends a DML record, tracking it for rollback when a
    transaction is open. Call after validating, before or after applying —
    records carry explicit images so ordering does not matter here. *)
let log_dml t r =
  ignore (Wal.append t.wal r);
  if in_txn t then t.pending <- r :: t.pending
