(* Transaction manager: explicit BEGIN/COMMIT/ROLLBACK with WAL-based undo.

   Outside an explicit transaction every statement auto-commits. Inside
   one, DML records accumulate; ROLLBACK undoes them newest-first using the
   before-images in the log. The single-session engine needs no locking;
   the XNF cache layer (lib/core) adds optimistic validation on top via
   table versions.

   Statement atomicity for durability: an auto-committed statement that
   logs more than zero DML records is wrapped in an implicit
   R_begin/R_commit envelope (see {!statement}), so every frame boundary
   in the durable log corresponds to a statement-consistent state — the
   invariant the crash-point oracle checks at every truncation offset. *)

type t = {
  mutable wal : Wal.t;
  catalog : Catalog.t;
  mutable active : int option;  (** current transaction id *)
  mutable next_id : int;
  mutable pending : Wal.record list;  (** records of the active txn, newest first *)
  mutable envelope : int option;  (** implicit statement-envelope txn id *)
  mutable envelope_begun : bool;  (** R_begin emitted for the envelope? *)
}

exception Txn_error of string

let m_begins = Obs.Metrics.counter "txn.begins"
let m_commits = Obs.Metrics.counter "txn.commits"
let m_aborts = Obs.Metrics.counter "txn.aborts"

(** [create ?wal catalog] is a transaction manager logging to [wal]
    (default: a fresh in-memory WAL). *)
let create ?wal catalog =
  { wal = (match wal with Some w -> w | None -> Wal.create ()); catalog; active = None;
    next_id = 1; pending = []; envelope = None; envelope_begun = false }

(** [wal t] exposes the log (for recovery tests and inspection). *)
let wal t = t.wal

(** [swap_wal t wal] repoints the manager at a new log — recovery
    replacing the replayed log with a freshly attached one. Any active
    transaction or statement envelope is discarded. *)
let swap_wal t wal =
  t.wal <- wal;
  t.active <- None;
  t.pending <- [];
  t.envelope <- None;
  t.envelope_begun <- false

(** [in_txn t] is whether an explicit transaction is open. *)
let in_txn t = Option.is_some t.active

(** [begin_txn t] opens a transaction.
    @raise Txn_error if one is already open. *)
let begin_txn t =
  if in_txn t then raise (Txn_error "transaction already in progress");
  let id = t.next_id in
  t.next_id <- id + 1;
  t.active <- Some id;
  t.pending <- [];
  Obs.Metrics.incr m_begins;
  ignore (Wal.append t.wal (Wal.R_begin id))

(** [commit t] commits the open transaction.
    @raise Txn_error if none is open. *)
let commit t =
  match t.active with
  | None -> raise (Txn_error "no transaction in progress")
  | Some id ->
    Obs.Metrics.incr m_commits;
    ignore (Wal.append t.wal (Wal.R_commit id));
    t.active <- None;
    t.pending <- []

(** [rollback t] undoes and closes the open transaction.
    @raise Txn_error if none is open. *)
let rollback t =
  match t.active with
  | None -> raise (Txn_error "no transaction in progress")
  | Some id ->
    Obs.Metrics.incr m_aborts;
    List.iter (Wal.undo_record t.catalog) t.pending;
    ignore (Wal.append t.wal (Wal.R_abort id));
    t.active <- None;
    t.pending <- []

(** [statement t f] runs [f] under an implicit commit envelope when no
    explicit transaction is open: the first DML record logged inside
    emits R_begin lazily, and R_commit follows when [f] returns — one
    sync point per statement instead of one per record, and a durable
    log whose every frame boundary is statement-consistent. If [f]
    raises after logging records, the partial work is still committed
    (matching live semantics, where a failed statement leaves its
    already-applied changes) and the exception rethrown. Inside an
    explicit transaction, or nested, [f] just runs. *)
let statement t f =
  if in_txn t || Option.is_some t.envelope then f ()
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    t.envelope <- Some id;
    t.envelope_begun <- false;
    let finish () =
      if t.envelope_begun then ignore (Wal.append t.wal (Wal.R_commit id));
      t.envelope <- None;
      t.envelope_begun <- false
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(** [log_dml t r] appends a DML record, tracking it for rollback when a
    transaction is open. Call after validating, before or after applying —
    records carry explicit images so ordering does not matter here.
    Outside any transaction or envelope the record auto-commits: its
    append is a sync point. *)
let log_dml t r =
  (match t.envelope with
  | Some id when not t.envelope_begun ->
    ignore (Wal.append t.wal (Wal.R_begin id));
    t.envelope_begun <- true
  | _ -> ());
  let autocommit = t.active = None && t.envelope = None in
  ignore (Wal.append ~sync:autocommit t.wal r);
  if in_txn t then t.pending <- r :: t.pending

(** [log_meta t r] appends a DDL/meta record (always applied on replay,
    never undone by rollback). DDL records are their own sync points. *)
let log_meta t r = ignore (Wal.append t.wal r)
