(** Synthetic chain/hierarchy databases for the translation ablations
    (E5: common-subexpression sharing, E6: fixpoint strategy, E7: rewrite,
    E8: blocked delivery). *)

open Relational

(** [populate db ~seed ~depth ~n_roots ~fanout] creates tables
    [t0..t<depth>]: [n_roots] tagged roots (plus as many untagged ones) and
    [fanout] children per parent at every level, linked by foreign keys.
    [indexes:false] omits the FK indexes, forcing the translator's generic
    (engine-planned) probe path. *)
val populate : ?indexes:bool -> Db.t -> seed:int -> depth:int -> n_roots:int -> fanout:int -> unit

(** [co_query ~depth] is the XNF query extracting the tagged chain CO. *)
val co_query : depth:int -> string

(** [co_query_sel ~max_root ~depth] narrows the roots to [k0 < max_root]:
    the CO stays a fixed working set while the database scales (E12). *)
val co_query_sel : max_root:int -> depth:int -> string

(** [mgmt_chain db ~chain_len] builds an employee table forming one
    [chain_len]-long management chain — the recursive-CO workload. *)
val mgmt_chain : Db.t -> chain_len:int -> unit

(** The recursive CO over the management chain: the root plus the
    transitive 'manages' closure. *)
val mgmt_query : string

(** [mgmt_tree db ?indexes ~levels ~fanout] builds a complete [fanout]-ary
    management tree of [levels] levels under one root (the scalable
    recursive workload, bench E12); [indexes:false] omits the manager-FK
    index. Returns the employee count. *)
val mgmt_tree : ?indexes:bool -> Db.t -> levels:int -> fanout:int -> int
