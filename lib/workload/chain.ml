(* Synthetic chain/hierarchy databases for the translation ablations
   (E5: common-subexpression sharing, E7: rewrite, E8: blocked delivery).

   A chain of depth d is a set of tables t0 .. td where every t(i+1) row
   points to a t(i) parent by FK; the CO relates each level to the next.
   Roots are restricted by a tag column so extraction is selective. *)

open Relational

(** [populate db ~seed ~depth ~n_roots ~fanout] creates tables
    [t0..t<depth>]: [n_roots] tagged roots (plus as many untagged ones) and
    [fanout] children per parent at every level. [indexes:false] omits the
    FK indexes, forcing the translator's generic (engine-planned) probe
    path — used by the rewrite ablation E7. *)
let populate ?(indexes = true) db ~seed ~depth ~n_roots ~fanout =
  let rng = Rng.create seed in
  ignore (Db.exec db "CREATE TABLE t0 (k0 INTEGER PRIMARY KEY, tag INTEGER, payload INTEGER)");
  for level = 1 to depth do
    ignore
      (Db.exec db
         (Printf.sprintf "CREATE TABLE t%d (k%d INTEGER PRIMARY KEY, parent%d INTEGER, payload INTEGER)"
            level level level));
    if indexes then
      ignore
        (Db.exec db (Printf.sprintf "CREATE INDEX t%d_parent ON t%d (parent%d)" level level level))
  done;
  let t0 = Catalog.table (Db.catalog db) "t0" in
  for i = 0 to (2 * n_roots) - 1 do
    ignore
      (Table.insert t0
         [| Value.Int i; Value.Int (if i < n_roots then 1 else 0); Value.Int (Rng.int rng 1000) |])
  done;
  let prev_count = ref (2 * n_roots) in
  for level = 1 to depth do
    let t = Catalog.table (Db.catalog db) (Printf.sprintf "t%d" level) in
    let n = !prev_count * fanout in
    for i = 0 to n - 1 do
      ignore
        (Table.insert t [| Value.Int i; Value.Int (i / fanout); Value.Int (Rng.int rng 1000) |])
    done;
    prev_count := n
  done

(** [co_query ~depth] is the XNF query extracting the tagged chain CO;
    [co_query_sel ~max_root ~depth] further narrows the roots to
    [k0 < max_root] — working-set extraction whose CO size is independent
    of the database size (bench E12). *)
let co_query_root root ~depth =
  let buf = Buffer.create 256 in
  Buffer.add_string buf root;
  for level = 1 to depth do
    Buffer.add_string buf (Printf.sprintf ", x%d AS T%d" level level)
  done;
  for level = 1 to depth do
    Buffer.add_string buf
      (Printf.sprintf ", link%d AS (RELATE x%d, x%d WHERE x%d.k%d = x%d.parent%d)" level (level - 1)
         level (level - 1) (level - 1) level level)
  done;
  Buffer.add_string buf " TAKE *";
  Buffer.contents buf

let co_query ~depth = co_query_root "OUT OF x0 AS (SELECT * FROM t0 WHERE tag = 1)" ~depth

let co_query_sel ~max_root ~depth =
  co_query_root
    (Printf.sprintf "OUT OF x0 AS (SELECT * FROM t0 WHERE tag = 1 AND k0 < %d)" max_root)
    ~depth

(** [mgmt_chain db ~chain_len] builds an employee table forming [chain_len]-
    long management chains under a single root — the recursive-CO workload
    for the fixpoint ablation (E6). *)
let mgmt_chain db ~chain_len =
  ignore (Db.exec db "CREATE TABLE memp (eno INTEGER PRIMARY KEY, mgrno INTEGER, payload INTEGER)");
  ignore (Db.exec db "CREATE INDEX memp_mgr ON memp (mgrno)");
  let t = Catalog.table (Db.catalog db) "memp" in
  ignore (Table.insert t [| Value.Int 0; Value.Null; Value.Int 0 |]);
  for i = 1 to chain_len - 1 do
    ignore (Table.insert t [| Value.Int i; Value.Int (i - 1); Value.Int i |])
  done

(** [mgmt_query] is the recursive CO over [memp]: the root plus the
    transitive 'manages' closure. *)
let mgmt_query =
  "OUT OF Xroot AS (SELECT * FROM memp WHERE mgrno IS NULL), Xemp AS MEMP, \
   top AS (RELATE Xroot r, Xemp e WHERE r.eno = e.mgrno), \
   manages AS (RELATE Xemp m, Xemp r WHERE m.eno = r.mgrno) TAKE *"

(** [mgmt_tree db ?indexes ~levels ~fanout] builds an employee table
    forming a complete [fanout]-ary management tree of [levels] levels
    under one root — a recursive CO whose fixpoint converges in [levels]
    rounds (unlike [mgmt_chain], node count grows without making the round
    count pathological, so it scales to the E12 bench sizes).
    [indexes:false] omits the manager-FK index so access-path selection
    must fall back to batch hash or generic probes. Returns the number of
    employees inserted. *)
let mgmt_tree ?(indexes = true) db ~levels ~fanout =
  ignore (Db.exec db "CREATE TABLE memp (eno INTEGER PRIMARY KEY, mgrno INTEGER, payload INTEGER)");
  if indexes then ignore (Db.exec db "CREATE INDEX memp_mgr ON memp (mgrno)");
  let t = Catalog.table (Db.catalog db) "memp" in
  ignore (Table.insert t [| Value.Int 0; Value.Null; Value.Int 0 |]);
  let next = ref 1 in
  let prev_level = ref [ 0 ] in
  for _ = 2 to levels do
    let this_level = ref [] in
    List.iter
      (fun mgr ->
        for _ = 1 to fanout do
          let eno = !next in
          incr next;
          ignore (Table.insert t [| Value.Int eno; Value.Int mgr; Value.Int (eno mod 1000) |]);
          this_level := eno :: !this_level
        done)
      !prev_level;
    prev_level := List.rev !this_level
  done;
  !next
